# Empty dependencies file for bench_fig08_skew.
# This may be replaced when dependencies are built.
