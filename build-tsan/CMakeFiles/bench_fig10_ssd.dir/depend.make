# Empty dependencies file for bench_fig10_ssd.
# This may be replaced when dependencies are built.
