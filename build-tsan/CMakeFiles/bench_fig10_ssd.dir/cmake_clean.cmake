file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_ssd.dir/bench/bench_fig10_ssd.cc.o"
  "CMakeFiles/bench_fig10_ssd.dir/bench/bench_fig10_ssd.cc.o.d"
  "bench_fig10_ssd"
  "bench_fig10_ssd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_ssd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
