
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/access/access_path.cc" "CMakeFiles/smoothscan.dir/src/access/access_path.cc.o" "gcc" "CMakeFiles/smoothscan.dir/src/access/access_path.cc.o.d"
  "/root/repo/src/access/full_scan.cc" "CMakeFiles/smoothscan.dir/src/access/full_scan.cc.o" "gcc" "CMakeFiles/smoothscan.dir/src/access/full_scan.cc.o.d"
  "/root/repo/src/access/index_scan.cc" "CMakeFiles/smoothscan.dir/src/access/index_scan.cc.o" "gcc" "CMakeFiles/smoothscan.dir/src/access/index_scan.cc.o.d"
  "/root/repo/src/access/morsel_source.cc" "CMakeFiles/smoothscan.dir/src/access/morsel_source.cc.o" "gcc" "CMakeFiles/smoothscan.dir/src/access/morsel_source.cc.o.d"
  "/root/repo/src/access/parallel_scan.cc" "CMakeFiles/smoothscan.dir/src/access/parallel_scan.cc.o" "gcc" "CMakeFiles/smoothscan.dir/src/access/parallel_scan.cc.o.d"
  "/root/repo/src/access/result_cache.cc" "CMakeFiles/smoothscan.dir/src/access/result_cache.cc.o" "gcc" "CMakeFiles/smoothscan.dir/src/access/result_cache.cc.o.d"
  "/root/repo/src/access/smooth_scan.cc" "CMakeFiles/smoothscan.dir/src/access/smooth_scan.cc.o" "gcc" "CMakeFiles/smoothscan.dir/src/access/smooth_scan.cc.o.d"
  "/root/repo/src/access/sort_scan.cc" "CMakeFiles/smoothscan.dir/src/access/sort_scan.cc.o" "gcc" "CMakeFiles/smoothscan.dir/src/access/sort_scan.cc.o.d"
  "/root/repo/src/access/switch_scan.cc" "CMakeFiles/smoothscan.dir/src/access/switch_scan.cc.o" "gcc" "CMakeFiles/smoothscan.dir/src/access/switch_scan.cc.o.d"
  "/root/repo/src/common/rng.cc" "CMakeFiles/smoothscan.dir/src/common/rng.cc.o" "gcc" "CMakeFiles/smoothscan.dir/src/common/rng.cc.o.d"
  "/root/repo/src/common/status.cc" "CMakeFiles/smoothscan.dir/src/common/status.cc.o" "gcc" "CMakeFiles/smoothscan.dir/src/common/status.cc.o.d"
  "/root/repo/src/common/types.cc" "CMakeFiles/smoothscan.dir/src/common/types.cc.o" "gcc" "CMakeFiles/smoothscan.dir/src/common/types.cc.o.d"
  "/root/repo/src/cost/cost_model.cc" "CMakeFiles/smoothscan.dir/src/cost/cost_model.cc.o" "gcc" "CMakeFiles/smoothscan.dir/src/cost/cost_model.cc.o.d"
  "/root/repo/src/exec/merge_join.cc" "CMakeFiles/smoothscan.dir/src/exec/merge_join.cc.o" "gcc" "CMakeFiles/smoothscan.dir/src/exec/merge_join.cc.o.d"
  "/root/repo/src/exec/morphing_index_join.cc" "CMakeFiles/smoothscan.dir/src/exec/morphing_index_join.cc.o" "gcc" "CMakeFiles/smoothscan.dir/src/exec/morphing_index_join.cc.o.d"
  "/root/repo/src/exec/operator.cc" "CMakeFiles/smoothscan.dir/src/exec/operator.cc.o" "gcc" "CMakeFiles/smoothscan.dir/src/exec/operator.cc.o.d"
  "/root/repo/src/exec/operators.cc" "CMakeFiles/smoothscan.dir/src/exec/operators.cc.o" "gcc" "CMakeFiles/smoothscan.dir/src/exec/operators.cc.o.d"
  "/root/repo/src/exec/task_scheduler.cc" "CMakeFiles/smoothscan.dir/src/exec/task_scheduler.cc.o" "gcc" "CMakeFiles/smoothscan.dir/src/exec/task_scheduler.cc.o.d"
  "/root/repo/src/index/bplus_tree.cc" "CMakeFiles/smoothscan.dir/src/index/bplus_tree.cc.o" "gcc" "CMakeFiles/smoothscan.dir/src/index/bplus_tree.cc.o.d"
  "/root/repo/src/plan/access_path_chooser.cc" "CMakeFiles/smoothscan.dir/src/plan/access_path_chooser.cc.o" "gcc" "CMakeFiles/smoothscan.dir/src/plan/access_path_chooser.cc.o.d"
  "/root/repo/src/plan/table_stats.cc" "CMakeFiles/smoothscan.dir/src/plan/table_stats.cc.o" "gcc" "CMakeFiles/smoothscan.dir/src/plan/table_stats.cc.o.d"
  "/root/repo/src/storage/buffer_pool.cc" "CMakeFiles/smoothscan.dir/src/storage/buffer_pool.cc.o" "gcc" "CMakeFiles/smoothscan.dir/src/storage/buffer_pool.cc.o.d"
  "/root/repo/src/storage/heap_file.cc" "CMakeFiles/smoothscan.dir/src/storage/heap_file.cc.o" "gcc" "CMakeFiles/smoothscan.dir/src/storage/heap_file.cc.o.d"
  "/root/repo/src/storage/page.cc" "CMakeFiles/smoothscan.dir/src/storage/page.cc.o" "gcc" "CMakeFiles/smoothscan.dir/src/storage/page.cc.o.d"
  "/root/repo/src/storage/schema.cc" "CMakeFiles/smoothscan.dir/src/storage/schema.cc.o" "gcc" "CMakeFiles/smoothscan.dir/src/storage/schema.cc.o.d"
  "/root/repo/src/storage/sim_disk.cc" "CMakeFiles/smoothscan.dir/src/storage/sim_disk.cc.o" "gcc" "CMakeFiles/smoothscan.dir/src/storage/sim_disk.cc.o.d"
  "/root/repo/src/storage/storage_manager.cc" "CMakeFiles/smoothscan.dir/src/storage/storage_manager.cc.o" "gcc" "CMakeFiles/smoothscan.dir/src/storage/storage_manager.cc.o.d"
  "/root/repo/src/tpch/queries.cc" "CMakeFiles/smoothscan.dir/src/tpch/queries.cc.o" "gcc" "CMakeFiles/smoothscan.dir/src/tpch/queries.cc.o.d"
  "/root/repo/src/tpch/tpch_gen.cc" "CMakeFiles/smoothscan.dir/src/tpch/tpch_gen.cc.o" "gcc" "CMakeFiles/smoothscan.dir/src/tpch/tpch_gen.cc.o.d"
  "/root/repo/src/workload/micro_bench.cc" "CMakeFiles/smoothscan.dir/src/workload/micro_bench.cc.o" "gcc" "CMakeFiles/smoothscan.dir/src/workload/micro_bench.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
