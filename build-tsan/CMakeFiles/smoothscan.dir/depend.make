# Empty dependencies file for smoothscan.
# This may be replaced when dependencies are built.
