file(REMOVE_RECURSE
  "libsmoothscan.a"
)
