file(REMOVE_RECURSE
  "CMakeFiles/morphing_join.dir/examples/morphing_join.cpp.o"
  "CMakeFiles/morphing_join.dir/examples/morphing_join.cpp.o.d"
  "morphing_join"
  "morphing_join.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/morphing_join.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
