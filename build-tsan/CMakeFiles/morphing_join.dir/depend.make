# Empty dependencies file for morphing_join.
# This may be replaced when dependencies are built.
