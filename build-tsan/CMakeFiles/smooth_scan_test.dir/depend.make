# Empty dependencies file for smooth_scan_test.
# This may be replaced when dependencies are built.
