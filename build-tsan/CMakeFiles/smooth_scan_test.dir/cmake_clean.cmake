file(REMOVE_RECURSE
  "CMakeFiles/smooth_scan_test.dir/tests/smooth_scan_test.cc.o"
  "CMakeFiles/smooth_scan_test.dir/tests/smooth_scan_test.cc.o.d"
  "smooth_scan_test"
  "smooth_scan_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smooth_scan_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
