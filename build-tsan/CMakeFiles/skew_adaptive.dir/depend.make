# Empty dependencies file for skew_adaptive.
# This may be replaced when dependencies are built.
