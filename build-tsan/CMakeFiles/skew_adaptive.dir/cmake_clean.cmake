file(REMOVE_RECURSE
  "CMakeFiles/skew_adaptive.dir/examples/skew_adaptive.cpp.o"
  "CMakeFiles/skew_adaptive.dir/examples/skew_adaptive.cpp.o.d"
  "skew_adaptive"
  "skew_adaptive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skew_adaptive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
