# Empty dependencies file for bench_ablation_region_cap.
# This may be replaced when dependencies are built.
