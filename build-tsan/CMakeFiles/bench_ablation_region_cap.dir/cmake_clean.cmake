file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_region_cap.dir/bench/bench_ablation_region_cap.cc.o"
  "CMakeFiles/bench_ablation_region_cap.dir/bench/bench_ablation_region_cap.cc.o.d"
  "bench_ablation_region_cap"
  "bench_ablation_region_cap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_region_cap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
