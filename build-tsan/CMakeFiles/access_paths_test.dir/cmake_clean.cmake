file(REMOVE_RECURSE
  "CMakeFiles/access_paths_test.dir/tests/access_paths_test.cc.o"
  "CMakeFiles/access_paths_test.dir/tests/access_paths_test.cc.o.d"
  "access_paths_test"
  "access_paths_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/access_paths_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
