# Empty dependencies file for access_paths_test.
# This may be replaced when dependencies are built.
