# Empty dependencies file for bench_cost_model_validation.
# This may be replaced when dependencies are built.
