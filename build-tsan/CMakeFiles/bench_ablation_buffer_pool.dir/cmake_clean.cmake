file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_buffer_pool.dir/bench/bench_ablation_buffer_pool.cc.o"
  "CMakeFiles/bench_ablation_buffer_pool.dir/bench/bench_ablation_buffer_pool.cc.o.d"
  "bench_ablation_buffer_pool"
  "bench_ablation_buffer_pool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_buffer_pool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
