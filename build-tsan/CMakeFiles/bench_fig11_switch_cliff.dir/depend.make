# Empty dependencies file for bench_fig11_switch_cliff.
# This may be replaced when dependencies are built.
