file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_switch_cliff.dir/bench/bench_fig11_switch_cliff.cc.o"
  "CMakeFiles/bench_fig11_switch_cliff.dir/bench/bench_fig11_switch_cliff.cc.o.d"
  "bench_fig11_switch_cliff"
  "bench_fig11_switch_cliff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_switch_cliff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
