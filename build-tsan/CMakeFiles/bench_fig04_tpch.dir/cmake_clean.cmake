file(REMOVE_RECURSE
  "CMakeFiles/bench_fig04_tpch.dir/bench/bench_fig04_tpch.cc.o"
  "CMakeFiles/bench_fig04_tpch.dir/bench/bench_fig04_tpch.cc.o.d"
  "bench_fig04_tpch"
  "bench_fig04_tpch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_tpch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
