# Empty dependencies file for bench_fig04_tpch.
# This may be replaced when dependencies are built.
