file(REMOVE_RECURSE
  "CMakeFiles/bench_fig07_policies_triggers.dir/bench/bench_fig07_policies_triggers.cc.o"
  "CMakeFiles/bench_fig07_policies_triggers.dir/bench/bench_fig07_policies_triggers.cc.o.d"
  "bench_fig07_policies_triggers"
  "bench_fig07_policies_triggers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_policies_triggers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
