# Empty dependencies file for bench_fig07_policies_triggers.
# This may be replaced when dependencies are built.
