# Empty dependencies file for bench_fig05_selectivity.
# This may be replaced when dependencies are built.
