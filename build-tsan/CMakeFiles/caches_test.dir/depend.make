# Empty dependencies file for caches_test.
# This may be replaced when dependencies are built.
