file(REMOVE_RECURSE
  "CMakeFiles/caches_test.dir/tests/caches_test.cc.o"
  "CMakeFiles/caches_test.dir/tests/caches_test.cc.o.d"
  "caches_test"
  "caches_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/caches_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
