# Empty dependencies file for bench_ablation_device_ratio.
# This may be replaced when dependencies are built.
