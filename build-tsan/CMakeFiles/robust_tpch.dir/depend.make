# Empty dependencies file for robust_tpch.
# This may be replaced when dependencies are built.
