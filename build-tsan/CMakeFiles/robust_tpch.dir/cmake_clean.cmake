file(REMOVE_RECURSE
  "CMakeFiles/robust_tpch.dir/examples/robust_tpch.cpp.o"
  "CMakeFiles/robust_tpch.dir/examples/robust_tpch.cpp.o.d"
  "robust_tpch"
  "robust_tpch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/robust_tpch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
