# Empty dependencies file for bench_ext_morphing_join.
# This may be replaced when dependencies are built.
