# Empty dependencies file for bench_ablation_batch_size.
# This may be replaced when dependencies are built.
