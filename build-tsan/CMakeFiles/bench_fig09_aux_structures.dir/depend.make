# Empty dependencies file for bench_fig09_aux_structures.
# This may be replaced when dependencies are built.
