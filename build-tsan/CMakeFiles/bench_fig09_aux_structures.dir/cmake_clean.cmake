file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_aux_structures.dir/bench/bench_fig09_aux_structures.cc.o"
  "CMakeFiles/bench_fig09_aux_structures.dir/bench/bench_fig09_aux_structures.cc.o.d"
  "bench_fig09_aux_structures"
  "bench_fig09_aux_structures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_aux_structures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
