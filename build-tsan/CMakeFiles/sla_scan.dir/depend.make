# Empty dependencies file for sla_scan.
# This may be replaced when dependencies are built.
