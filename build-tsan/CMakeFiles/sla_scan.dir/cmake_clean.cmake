file(REMOVE_RECURSE
  "CMakeFiles/sla_scan.dir/examples/sla_scan.cpp.o"
  "CMakeFiles/sla_scan.dir/examples/sla_scan.cpp.o.d"
  "sla_scan"
  "sla_scan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sla_scan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
