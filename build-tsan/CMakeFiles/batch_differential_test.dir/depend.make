# Empty dependencies file for batch_differential_test.
# This may be replaced when dependencies are built.
