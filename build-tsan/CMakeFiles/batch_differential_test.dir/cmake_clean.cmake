file(REMOVE_RECURSE
  "CMakeFiles/batch_differential_test.dir/tests/batch_differential_test.cc.o"
  "CMakeFiles/batch_differential_test.dir/tests/batch_differential_test.cc.o.d"
  "batch_differential_test"
  "batch_differential_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/batch_differential_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
