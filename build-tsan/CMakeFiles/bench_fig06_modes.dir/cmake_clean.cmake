file(REMOVE_RECURSE
  "CMakeFiles/bench_fig06_modes.dir/bench/bench_fig06_modes.cc.o"
  "CMakeFiles/bench_fig06_modes.dir/bench/bench_fig06_modes.cc.o.d"
  "bench_fig06_modes"
  "bench_fig06_modes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_modes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
