# Empty dependencies file for bench_fig06_modes.
# This may be replaced when dependencies are built.
