# Empty dependencies file for bench_fig01_tuned_regression.
# This may be replaced when dependencies are built.
