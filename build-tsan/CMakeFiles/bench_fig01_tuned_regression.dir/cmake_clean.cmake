file(REMOVE_RECURSE
  "CMakeFiles/bench_fig01_tuned_regression.dir/bench/bench_fig01_tuned_regression.cc.o"
  "CMakeFiles/bench_fig01_tuned_regression.dir/bench/bench_fig01_tuned_regression.cc.o.d"
  "bench_fig01_tuned_regression"
  "bench_fig01_tuned_regression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig01_tuned_regression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
