#!/usr/bin/env python3
"""Self-test of the trace validator: doctored traces prove every check fires
on its violation shape and stays quiet on valid exports. Run directly (CI)
or via ctest.
"""

import json
import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import check_trace  # noqa: E402


def ev(ph, name, tid=1, ts=0, **args):
    e = {"name": name, "ph": ph, "ts": ts, "pid": 1, "tid": tid}
    if args:
        e["args"] = args
    return e


def trace(events, rings=None):
    doc = {"traceEvents": events}
    if rings is not None:
        doc["smoothscanMeta"] = {"rings": rings}
    return doc


class CheckTraceTest(unittest.TestCase):
    def setUp(self):
        self.tmp = tempfile.TemporaryDirectory()

    def tearDown(self):
        self.tmp.cleanup()

    def run_check(self, doc, flags=()):
        path = os.path.join(self.tmp.name, "t.json")
        with open(path, "w", encoding="utf-8") as f:
            json.dump(doc, f)
        return check_trace.main([path, *flags])

    def valid_doc(self):
        return trace([
            ev("M", "thread_name", ts=0),
            ev("i", "submit", ts=1, qid=7, lane="batch"),
            ev("B", "query", ts=2, qid=7, lane=0),
            ev("B", "scan", ts=3, qid=7, kind=2),
            ev("i", "morph_grow", ts=4, qid=7, region_pages=8,
               policy="elastic"),
            ev("E", "scan", ts=5),
            ev("E", "query", ts=6),
        ], rings=[{"tid": 1, "recorded": 6, "dropped": 0}])

    def test_valid_trace_passes(self):
        self.assertEqual(self.run_check(self.valid_doc()), 0)

    def test_acceptance_flags_pass_on_valid(self):
        self.assertEqual(
            self.run_check(self.valid_doc(),
                           ["--require-query-span",
                            "--require-morph-instants"]), 0)

    def test_non_monotonic_ts_fails(self):
        doc = trace([ev("i", "a", ts=5), ev("i", "b", ts=4)])
        self.assertEqual(self.run_check(doc), 1)

    def test_ts_monotonic_per_tid_not_globally(self):
        # Interleaved tracks may go "backwards" across tids — that's fine.
        doc = trace([ev("i", "a", tid=1, ts=5), ev("i", "b", tid=2, ts=1)])
        self.assertEqual(self.run_check(doc), 0)

    def test_unbalanced_end_fails(self):
        doc = trace([ev("E", "query", ts=1)])
        self.assertEqual(self.run_check(doc), 1)

    def test_unclosed_begin_fails(self):
        doc = trace([ev("B", "query", ts=1, qid=3)])
        self.assertEqual(self.run_check(doc), 1)

    def test_mismatched_end_name_fails(self):
        doc = trace([ev("B", "query", ts=1), ev("E", "scan", ts=2)])
        self.assertEqual(self.run_check(doc), 1)

    def test_overflow_marker_without_meta_drops_fails(self):
        doc = trace([ev("i", "ring_overflow", ts=1, dropped=4)],
                    rings=[{"tid": 1, "recorded": 9, "dropped": 0}])
        self.assertEqual(self.run_check(doc), 1)

    def test_meta_drops_without_overflow_marker_fails(self):
        doc = trace([ev("i", "submit", ts=1, qid=1),
                     ev("B", "query", ts=2, qid=1),
                     ev("E", "query", ts=3)],
                    rings=[{"tid": 1, "recorded": 9, "dropped": 4}])
        self.assertEqual(self.run_check(doc), 1)

    def test_overflow_marker_matching_meta_passes(self):
        doc = trace([ev("i", "ring_overflow", ts=1, dropped=4)],
                    rings=[{"tid": 1, "recorded": 9, "dropped": 4}])
        self.assertEqual(self.run_check(doc), 0)

    def test_qid_without_query_span_fails_when_nothing_dropped(self):
        doc = trace([ev("i", "morph_grow", ts=1, qid=9, policy="elastic")],
                    rings=[{"tid": 1, "recorded": 1, "dropped": 0}])
        self.assertEqual(self.run_check(doc), 1)

    def test_qid_without_query_span_tolerated_under_drops(self):
        # The query span may have been overwritten by ring overflow.
        doc = trace([ev("i", "ring_overflow", ts=0, dropped=2),
                     ev("i", "morph_grow", ts=1, qid=9, policy="elastic")],
                    rings=[{"tid": 1, "recorded": 3, "dropped": 2}])
        self.assertEqual(self.run_check(doc), 0)

    def test_require_query_span_fails_without_one(self):
        doc = trace([ev("i", "submit", ts=1)])
        self.assertEqual(self.run_check(doc, ["--require-query-span"]), 1)

    def test_require_morph_fails_without_policy_payload(self):
        doc = trace([ev("B", "query", ts=1, qid=1),
                     ev("i", "morph_grow", ts=2, qid=1, region_pages=4),
                     ev("E", "query", ts=3)])
        self.assertEqual(
            self.run_check(doc, ["--require-morph-instants"]), 1)

    def test_malformed_json_fails(self):
        path = os.path.join(self.tmp.name, "bad.json")
        with open(path, "w", encoding="utf-8") as f:
            f.write("not json")
        self.assertEqual(check_trace.main([path]), 1)

    def test_missing_trace_events_fails(self):
        self.assertEqual(self.run_check({"foo": []}), 1)


if __name__ == "__main__":
    unittest.main()
