#!/usr/bin/env python3
"""Project-invariant linter over src/ — the static companion of the thread
safety annotations (src/common/thread_annotations.h) and the latch-rank
validator (src/common/latch_rank.h). Fails (exit 1) when a source line breaks
one of the engine's structural invariants:

  batch-allocation   No heap allocation of batch/Value storage (new /
                     make_unique / make_shared of TupleBatch or Value)
                     outside src/mem/ — kernels recycle through the
                     BatchPool; a stray allocation reintroduces the
                     steady-state tax PR 7 removed.
  ctx-charging       No direct SimDisk charging from src/access/ or
                     src/exec/ (engine_->disk() / engine()->disk()):
                     operators charge their ExecContext stream, which is
                     what keeps per-query cost bit-identical under
                     concurrency.
  raw-page-member    No retained raw `const Page&` / `Page*` data members:
                     pages are held through PageGuard (pin-aware), never
                     cached across an eviction boundary.
  value-variant      No std::variant in the Value path (or anywhere in
                     src/): Value is a hand-rolled tagged union precisely
                     to keep the scan hot loop free of variant dispatch.
  raw-mutex          No raw standard mutex primitives (std::mutex,
                     lock_guard, unique_lock, condition_variable, ...)
                     anywhere in src/ outside the latch wrapper: all
                     latching goes through latch::Latch so the rank
                     validator and the thread safety analysis see it.
  obs-accounting     No SimDisk / CpuMeter / Charge references inside
                     src/obs/: observability is bookkeeping only (atomics
                     and the wall clock), which is what keeps simulated
                     per-query cost bit-identical with metrics/tracing on
                     or off.

A deliberate exception is suppressed with `lint:allow(<rule>)` in a comment
on the offending line or the line directly above it — greppable, per-rule,
and visible in review.

Usage:
  lint_invariants.py [--root src] [rule ...]

With no rule names, every rule runs. Exit 0 = clean.
"""

import argparse
import os
import re
import sys

HEADER_EXTS = (".h",)
SOURCE_EXTS = (".h", ".cc")

# Files implementing the machinery the rules enforce (the latch wrapper may
# hold the one std::mutex; PageGuard may hold the one raw Page pointer).
WRAPPER_FILES = {
    os.path.join("common", "latch_rank.h"),
    os.path.join("common", "latch_rank.cc"),
    os.path.join("common", "thread_annotations.h"),
}

RULES = [
    {
        "name": "batch-allocation",
        "pattern": re.compile(
            r"\bnew\s+(TupleBatch|Value)\b"
            r"|\bmake_(?:unique|shared)\s*<\s*(?:TupleBatch|Value)\b"
        ),
        "message": "heap allocation of batch/Value storage outside src/mem/ "
                   "(acquire through the BatchPool)",
        "applies": lambda rel: not rel.startswith("mem" + os.sep),
    },
    {
        "name": "ctx-charging",
        "pattern": re.compile(r"\bengine(?:_|\(\))->disk\(\)"),
        "message": "direct SimDisk charging bypassing ExecContext "
                   "(charge ctx.disk instead)",
        "applies": lambda rel: rel.startswith(("access" + os.sep,
                                               "exec" + os.sep)),
    },
    {
        "name": "raw-page-member",
        "pattern": re.compile(
            r"^\s*(?:const\s+)?Page\s*[*&]\s*\w+_\s*(?:=\s*\w+)?;"
        ),
        "message": "retained raw Page pointer/reference member "
                   "(hold pages through PageGuard)",
        "applies": lambda rel: rel.endswith(HEADER_EXTS),
    },
    {
        "name": "value-variant",
        "pattern": re.compile(r"std::variant\s*<|#include\s*<variant>"),
        "message": "std::variant in the Value path (Value is a tagged "
                   "union by design)",
        "applies": lambda rel: True,
    },
    {
        "name": "raw-mutex",
        "pattern": re.compile(
            r"std::(?:recursive_mutex|shared_mutex|timed_mutex|mutex"
            r"|lock_guard|unique_lock|scoped_lock|shared_lock"
            r"|condition_variable(?!_any))\b"
        ),
        "message": "raw mutex primitive outside the latch wrapper "
                   "(use latch::Latch / LatchGuard / UniqueLatch)",
        "applies": lambda rel: rel not in WRAPPER_FILES,
    },
    {
        "name": "obs-accounting",
        "pattern": re.compile(r"\bSimDisk\b|\bCpuMeter\b|\bCharge\w*\b"),
        "message": "accounting primitive referenced from src/obs/ "
                   "(observability must never touch simulated cost)",
        "applies": lambda rel: rel.startswith("obs" + os.sep),
    },
]

ALLOW_RE = re.compile(r"lint:allow\(([a-z-]+)\)")


def strip_comment(line):
    """Drops a trailing // comment (naive: good enough for this tree —
    string literals containing '//' do not occur on guarded constructs)."""
    idx = line.find("//")
    return line if idx < 0 else line[:idx]


def allowed_rules(line):
    return set(ALLOW_RE.findall(line))


def lint_file(rel, lines, rules):
    """Returns a list of (rel, lineno, rule_name, message) violations."""
    violations = []
    pending_allows = set()  # From the comment block directly above.
    for lineno, raw in enumerate(lines, start=1):
        allows = allowed_rules(raw) | pending_allows
        code = strip_comment(raw)
        for rule in rules:
            if not rule["applies"](rel):
                continue
            if rule["name"] in allows:
                continue
            if rule["pattern"].search(code):
                violations.append((rel, lineno, rule["name"],
                                   rule["message"]))
        # An allow in a comment block covers the first code line after it.
        if raw.lstrip().startswith("//"):
            pending_allows |= allowed_rules(raw)
        else:
            pending_allows = set()
    return violations


def iter_source_files(root):
    for dirpath, _, filenames in os.walk(root):
        for filename in sorted(filenames):
            if filename.endswith(SOURCE_EXTS):
                path = os.path.join(dirpath, filename)
                yield path, os.path.relpath(path, root)


def run(root, rule_names):
    rules = [r for r in RULES if not rule_names or r["name"] in rule_names]
    violations = []
    for path, rel in iter_source_files(root):
        with open(path, encoding="utf-8") as f:
            violations.extend(lint_file(rel, f.read().splitlines(), rules))
    return violations


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Project-invariant linter (see module docstring).")
    parser.add_argument("--root", default="src",
                        help="source tree to lint (default: src)")
    parser.add_argument("rules", nargs="*",
                        help="rules to run (default: all)")
    args = parser.parse_args(argv)

    known = {r["name"] for r in RULES}
    for name in args.rules:
        if name not in known:
            parser.error(f"unknown rule: {name}")

    violations = run(args.root, set(args.rules))
    for rel, lineno, name, message in violations:
        print(f"{os.path.join(args.root, rel)}:{lineno}: [{name}] {message}")
    if violations:
        print(f"lint_invariants: {len(violations)} violation(s)",
              file=sys.stderr)
        return 1
    print("lint_invariants: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
