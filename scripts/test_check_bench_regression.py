#!/usr/bin/env python3
"""Self-test of the CI perf-regression gate: proves, with doctored bench
JSONs, that the gate passes on unchanged results and demonstrably fails on a
>25% simulated-cost regression, a shared-scan fetch-ratio regression, and a
dropped row. Run directly (CI) or via ctest.
"""

import copy
import json
import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import check_bench_regression as gate  # noqa: E402

BASELINE = {
    "bench": "shared_scan",
    "rows": [
        {"series": "shared", "sel_pct": 1.0, "sim_time": 1000.0,
         "clients": 4.0, "pages_vs_solo": 1.0, "wall_ms": 5.0},
        {"series": "full unshared", "sel_pct": 1.0, "sim_time": 4000.0,
         "clients": 4.0, "pages_vs_solo": 4.0, "wall_ms": 9.0},
    ],
}


class GateTest(unittest.TestCase):
    def setUp(self):
        self.tmp = tempfile.TemporaryDirectory()
        self.base_dir = os.path.join(self.tmp.name, "base")
        self.fresh_dir = os.path.join(self.tmp.name, "fresh")
        os.makedirs(self.base_dir)
        os.makedirs(self.fresh_dir)

    def tearDown(self):
        self.tmp.cleanup()

    def write(self, dirname, payload):
        with open(os.path.join(dirname, "BENCH_shared_scan.json"), "w") as f:
            json.dump(payload, f)

    def run_gate(self):
        return gate.main(["--baseline-dir", self.base_dir,
                          "--fresh-dir", self.fresh_dir, "shared_scan"])

    def test_identical_results_pass(self):
        self.write(self.base_dir, BASELINE)
        self.write(self.fresh_dir, BASELINE)
        self.assertEqual(self.run_gate(), 0)

    def test_wall_clock_jitter_is_ignored(self):
        fresh = copy.deepcopy(BASELINE)
        fresh["rows"][0]["wall_ms"] = 500.0  # 100x wall noise: irrelevant.
        fresh["rows"][0]["sim_time"] = 1100.0  # +10%: inside threshold.
        self.write(self.base_dir, BASELINE)
        self.write(self.fresh_dir, fresh)
        self.assertEqual(self.run_gate(), 0)

    def test_sim_time_regression_fails(self):
        fresh = copy.deepcopy(BASELINE)
        fresh["rows"][0]["sim_time"] = 1300.0  # +30% > 25% threshold.
        self.write(self.base_dir, BASELINE)
        self.write(self.fresh_dir, fresh)
        self.assertEqual(self.run_gate(), 1)

    def test_sim_time_improvement_passes(self):
        fresh = copy.deepcopy(BASELINE)
        fresh["rows"][0]["sim_time"] = 100.0
        self.write(self.base_dir, BASELINE)
        self.write(self.fresh_dir, fresh)
        self.assertEqual(self.run_gate(), 0)

    def test_fetch_ratio_regression_fails(self):
        fresh = copy.deepcopy(BASELINE)
        # Sharing quietly stopped collapsing passes: 1.0 -> 1.5 pages/solo,
        # even though sim_time is unchanged.
        fresh["rows"][0]["pages_vs_solo"] = 1.5
        self.write(self.base_dir, BASELINE)
        self.write(self.fresh_dir, fresh)
        self.assertEqual(self.run_gate(), 1)

    def test_dropped_row_fails(self):
        fresh = copy.deepcopy(BASELINE)
        del fresh["rows"][1]
        self.write(self.base_dir, BASELINE)
        self.write(self.fresh_dir, fresh)
        self.assertEqual(self.run_gate(), 1)

    def test_new_row_without_baseline_passes(self):
        fresh = copy.deepcopy(BASELINE)
        fresh["rows"].append({"series": "shared", "sel_pct": 2.0,
                              "sim_time": 2000.0, "clients": 8.0})
        self.write(self.base_dir, BASELINE)
        self.write(self.fresh_dir, fresh)
        self.assertEqual(self.run_gate(), 0)

    def test_rows_differing_only_in_threads_gate_independently(self):
        base = copy.deepcopy(BASELINE)
        # A parallel leg of the same series/sel_pct: distinct by threads.
        base["rows"].append({"series": "shared", "sel_pct": 1.0,
                             "sim_time": 1000.0, "clients": 4.0,
                             "threads": 4.0})
        fresh = copy.deepcopy(base)
        fresh["rows"][-1]["sim_time"] = 2000.0  # Only the parallel leg.
        self.write(self.base_dir, base)
        self.write(self.fresh_dir, fresh)
        self.assertEqual(self.run_gate(), 1)  # Not shadowed by the serial leg.

    def test_duplicate_row_keys_fail(self):
        base = copy.deepcopy(BASELINE)
        base["rows"].append(copy.deepcopy(base["rows"][0]))  # True shadow.
        self.write(self.base_dir, base)
        self.write(self.fresh_dir, base)
        self.assertEqual(self.run_gate(), 1)

    def test_timing_dependent_rows_not_gated(self):
        base = copy.deepcopy(BASELINE)
        base["rows"][0]["timing_dependent"] = 1.0
        fresh = copy.deepcopy(base)
        fresh["rows"][0]["sim_time"] = 9000.0     # Way past threshold...
        fresh["rows"][0]["pages_vs_solo"] = 3.0   # ...and ratio: advisory.
        self.write(self.base_dir, base)
        self.write(self.fresh_dir, fresh)
        self.assertEqual(self.run_gate(), 0)
        del fresh["rows"][0]                      # But presence still gates.
        self.write(self.fresh_dir, fresh)
        self.assertEqual(self.run_gate(), 1)

    def test_missing_baseline_file_is_skipped(self):
        self.write(self.fresh_dir, BASELINE)
        self.assertEqual(self.run_gate(), 0)

    def test_missing_fresh_file_fails(self):
        self.write(self.base_dir, BASELINE)
        self.assertEqual(self.run_gate(), 1)


if __name__ == "__main__":
    unittest.main()
