#!/usr/bin/env python3
"""CI perf-regression gate over the BENCH_*.json trajectory.

Compares freshly-run bench JSONs against the baselines committed at the repo
root and fails (exit 1) when a row's *simulated* cost regresses by more than
the threshold, or when a shared-scan row's aggregate fetch ratio
(pages_vs_solo) regresses at all. Wall-clock columns are deliberately
ignored: CI hardware jitters, simulated cost does not.

Rows are matched by (series, sel_pct[, clients]) within a bench. A baseline
row missing from the fresh run fails the gate (a bench silently dropped
coverage); fresh rows without a baseline are reported but pass (new
coverage). A fresh bench file with no committed baseline is skipped with a
note — bless it by copying the JSON to the repo root.

Usage:
  check_bench_regression.py --baseline-dir . --fresh-dir bench-json \
      [--threshold 0.25] [bench names...]

With no bench names, every BENCH_*.json present in --fresh-dir is checked.
"""

import argparse
import glob
import json
import os
import sys

# Default gated benches when none are named: the per-PR trajectory files.
DEFAULT_BENCHES = [
    "fig04_tpch",
    "fig05_selectivity",
    "shared_scan",
    "concurrent",
    "write_mix",
    "compressed",
    "mem",
    "result_cache_spill",
    "server",
]

# Relative sim_time increase tolerated before the gate trips.
DEFAULT_THRESHOLD = 0.25
# Ignore regressions on rows whose baseline cost is below this (noise floor).
MIN_BASELINE_SIM_TIME = 1.0
# Absolute slack for fetch-ratio comparisons (pages_vs_solo is a ratio ~1-8).
FETCH_RATIO_SLACK = 0.01


def row_key(row):
    # series + x-axis + every sweep dimension present: serial vs parallel
    # legs of one series differ only in `threads`, client sweeps in
    # `clients` — both must key, or legs shadow each other in the dict.
    key = (row.get("series"), round(float(row.get("sel_pct", 0.0)), 6))
    for dim in ("clients", "threads"):
        if dim in row:
            key += (dim, round(float(row[dim]), 6))
    return key


def load_bench(path):
    """Returns ({key: row}, [duplicate keys])."""
    with open(path) as f:
        data = json.load(f)
    rows = {}
    duplicates = []
    for row in data.get("rows", []):
        key = row_key(row)
        if key in rows:
            duplicates.append(key)
        rows[key] = row
    return rows, duplicates


def error(msg):
    # GitHub annotation when running in Actions; plain line otherwise.
    print(f"::error::{msg}" if os.environ.get("GITHUB_ACTIONS") else
          f"ERROR: {msg}")


def check_bench(name, baseline_path, fresh_path, threshold):
    """Returns (failures, notes) for one bench."""
    failures = []
    notes = []
    if not os.path.exists(baseline_path):
        notes.append(f"{name}: no committed baseline at {baseline_path} — "
                     "skipped (bless by committing the fresh JSON)")
        return failures, notes
    baseline, base_dups = load_bench(baseline_path)
    fresh, fresh_dups = load_bench(fresh_path)
    # A duplicate key means rows shadow each other in this comparison and
    # some are silently ungated — refuse to pretend the gate covered them.
    for key in base_dups:
        failures.append(f"{name} {key}: duplicate row key in baseline "
                        "(rows shadow each other; extend row_key dims)")
    for key in fresh_dups:
        failures.append(f"{name} {key}: duplicate row key in fresh run")

    for key, base_row in baseline.items():
        fresh_row = fresh.get(key)
        label = f"{name} {key}"
        if fresh_row is None:
            failures.append(f"{label}: row missing from fresh run "
                            "(bench dropped coverage)")
            continue
        # Rows a bench marks timing_dependent (e.g. shared-SmoothScan
        # savings, which hinge on wall-clock races between peers) cannot be
        # gated on magnitude — presence is the whole check.
        if float(base_row.get("timing_dependent", 0.0)) != 0.0 or \
                float(fresh_row.get("timing_dependent", 0.0)) != 0.0:
            continue
        base_sim = float(base_row.get("sim_time", 0.0))
        fresh_sim = float(fresh_row.get("sim_time", 0.0))
        if base_sim >= MIN_BASELINE_SIM_TIME:
            ratio = fresh_sim / base_sim
            if ratio > 1.0 + threshold:
                failures.append(
                    f"{label}: sim_time regressed {ratio:.3f}x "
                    f"({base_sim:.1f} -> {fresh_sim:.1f}, "
                    f"threshold {1.0 + threshold:.2f}x)")
        if "pages_vs_solo" in base_row:
            base_ratio = float(base_row["pages_vs_solo"])
            fresh_ratio = float(fresh_row.get("pages_vs_solo", float("inf")))
            if fresh_ratio > base_ratio + FETCH_RATIO_SLACK:
                failures.append(
                    f"{label}: shared-scan fetch ratio regressed "
                    f"{base_ratio:.3f} -> {fresh_ratio:.3f}")
    for key in fresh.keys() - baseline.keys():
        notes.append(f"{name} {key}: new row without baseline (passes; "
                     "bless to start gating it)")
    return failures, notes


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline-dir", default=".",
                        help="directory of committed BENCH_*.json baselines")
    parser.add_argument("--fresh-dir", required=True,
                        help="directory of freshly-run BENCH_*.json files")
    parser.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD,
                        help="relative sim_time regression tolerated")
    parser.add_argument("benches", nargs="*",
                        help="bench names (default: all fresh BENCH_*.json)")
    args = parser.parse_args(argv)

    benches = args.benches
    if not benches:
        benches = sorted(
            os.path.basename(p)[len("BENCH_"):-len(".json")]
            for p in glob.glob(os.path.join(args.fresh_dir, "BENCH_*.json")))
        if not benches:
            error(f"no BENCH_*.json files in {args.fresh_dir}")
            return 1

    all_failures = []
    for name in benches:
        fresh_path = os.path.join(args.fresh_dir, f"BENCH_{name}.json")
        if not os.path.exists(fresh_path):
            all_failures.append(f"{name}: fresh run produced no {fresh_path}")
            continue
        failures, notes = check_bench(
            name, os.path.join(args.baseline_dir, f"BENCH_{name}.json"),
            fresh_path, args.threshold)
        for note in notes:
            print(f"note: {note}")
        if failures:
            all_failures.extend(failures)
        else:
            print(f"ok: {name}")

    if all_failures:
        for failure in all_failures:
            error(failure)
        print(f"\nperf gate FAILED: {len(all_failures)} regression(s). "
              "If intentional, bless new baselines by copying the fresh "
              "BENCH_*.json over the repo-root copies in the same PR.")
        return 1
    print("\nperf gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
