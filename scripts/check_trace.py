#!/usr/bin/env python3
"""Validator for the engine's Chrome trace-event exports
(obs::TraceCollector::ExportJson) — the CI gate behind the traced
bench_concurrent_throughput run. Checks, per thread track:

  monotonic-ts    Timestamps never go backwards within a tid (the collector
                  stamps events from one steady clock per thread, in push
                  order, and export preserves ring order).
  balance         B/E events form a proper span stack: every E closes the
                  innermost open B of the same name, and nothing stays open
                  at the end of a track. Export repairs overflow damage
                  (drops orphan Es, synthesizes missing Es), so a valid
                  export must pass this *strictly*.
  overflow        A `ring_overflow` instant appears on a tid if and only if
                  the `smoothscanMeta.rings` entry for that tid reports
                  dropped > 0 — the overflow marker and the side-channel
                  count must agree.
  qid-integrity   When no ring dropped events, every nonzero args.qid seen
                  anywhere belongs to a query with a complete "query" span
                  (a query can't be referenced by a morsel/scan/morph event
                  without its admission span in the trace). Skipped when
                  events were dropped — the span may legitimately be gone.

Acceptance flags (CI asserts the traced run produced real content):
  --require-query-span      >= 1 complete "query" span with a nonzero qid.
  --require-morph-instants  >= 1 SmoothScan morph instant (morph_trigger /
                            morph_grow / morph_shrink) carrying a "policy"
                            string payload.

Usage: check_trace.py TRACE.json [--require-query-span]
                      [--require-morph-instants]
Exit 0 = valid, 1 = violations (each printed on its own line).
"""

import argparse
import json
import sys

SPAN_PHASES = {"B", "E"}
KNOWN_PHASES = {"B", "E", "i", "M"}
MORPH_NAMES = {"morph_trigger", "morph_grow", "morph_shrink"}


def load(path):
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        raise ValueError("not an object-form Chrome trace "
                         "(missing traceEvents)")
    return doc


def check_events(events):
    """Structural checks over the event list. Returns (errors, facts) where
    facts feed the meta cross-checks and acceptance flags."""
    errors = []
    last_ts = {}       # tid -> last seen ts
    stacks = {}        # tid -> [(name, qid)] open spans
    overflow_tids = set()
    qids_referenced = set()
    complete_queries = set()  # qids with a balanced "query" span
    morph_with_policy = 0

    for i, e in enumerate(events):
        ph = e.get("ph")
        if ph not in KNOWN_PHASES:
            errors.append(f"event {i}: unknown phase {ph!r}")
            continue
        if ph == "M":
            continue  # Metadata (thread_name): no ts semantics.
        tid = e.get("tid")
        ts = e.get("ts")
        name = e.get("name")
        if not isinstance(tid, int) or not isinstance(ts, (int, float)):
            errors.append(f"event {i}: missing/malformed tid or ts")
            continue
        if tid in last_ts and ts < last_ts[tid]:
            errors.append(f"event {i} ({name!r}): ts {ts} < {last_ts[tid]} "
                          f"on tid {tid} (non-monotonic)")
        last_ts[tid] = ts

        args = e.get("args", {})
        qid = args.get("qid", 0)
        if isinstance(qid, int) and qid > 0:
            qids_referenced.add(qid)

        if ph == "i":
            if name == "ring_overflow":
                overflow_tids.add(tid)
            if name in MORPH_NAMES and isinstance(args.get("policy"), str):
                morph_with_policy += 1
        elif ph == "B":
            stacks.setdefault(tid, []).append((name, qid))
        elif ph == "E":
            stack = stacks.setdefault(tid, [])
            if not stack:
                errors.append(f"event {i}: E {name!r} on tid {tid} with no "
                              f"open span (unbalanced)")
                continue
            open_name, open_qid = stack.pop()
            if name is not None and name != open_name:
                errors.append(f"event {i}: E {name!r} closes B "
                              f"{open_name!r} on tid {tid} (mismatched)")
            elif open_name == "query" and open_qid > 0:
                complete_queries.add(open_qid)

    for tid, stack in stacks.items():
        for name, _ in stack:
            errors.append(f"tid {tid}: span {name!r} never closed "
                          f"(unbalanced)")

    facts = {
        "overflow_tids": overflow_tids,
        "qids_referenced": qids_referenced,
        "complete_queries": complete_queries,
        "morph_with_policy": morph_with_policy,
    }
    return errors, facts


def check_meta(doc, facts):
    """Cross-checks smoothscanMeta.rings against the event stream."""
    errors = []
    rings = doc.get("smoothscanMeta", {}).get("rings", [])
    dropped_tids = set()
    total_dropped = 0
    for ring in rings:
        tid = ring.get("tid")
        dropped = ring.get("dropped", 0)
        total_dropped += dropped
        if dropped > 0:
            dropped_tids.add(tid)
    for tid in facts["overflow_tids"] - dropped_tids:
        errors.append(f"tid {tid}: ring_overflow instant but meta reports "
                      f"no drops")
    for tid in dropped_tids - facts["overflow_tids"]:
        errors.append(f"tid {tid}: meta reports dropped events but no "
                      f"ring_overflow instant")
    if total_dropped == 0:
        # Nothing was lost, so every referenced query must have its full
        # admission span in the trace.
        for qid in sorted(facts["qids_referenced"]
                          - facts["complete_queries"]):
            errors.append(f"qid {qid}: referenced by events but has no "
                          f"complete 'query' span (and nothing was dropped)")
    return errors


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Validate a smoothscan Chrome trace export "
                    "(see module docstring).")
    parser.add_argument("trace", help="trace JSON file")
    parser.add_argument("--require-query-span", action="store_true",
                        help="fail unless >= 1 complete query span exists")
    parser.add_argument("--require-morph-instants", action="store_true",
                        help="fail unless >= 1 morph instant with a policy "
                             "payload exists")
    args = parser.parse_args(argv)

    try:
        doc = load(args.trace)
    except (OSError, ValueError, json.JSONDecodeError) as e:
        print(f"check_trace: {args.trace}: {e}", file=sys.stderr)
        return 1

    events = doc["traceEvents"]
    errors, facts = check_events(events)
    errors.extend(check_meta(doc, facts))
    if args.require_query_span and not facts["complete_queries"]:
        errors.append("no complete 'query' span in trace "
                      "(--require-query-span)")
    if args.require_morph_instants and facts["morph_with_policy"] == 0:
        errors.append("no morph instant with a policy payload "
                      "(--require-morph-instants)")

    for err in errors:
        print(f"{args.trace}: {err}")
    if errors:
        print(f"check_trace: {len(errors)} violation(s)", file=sys.stderr)
        return 1
    print(f"check_trace: ok — {len(events)} events, "
          f"{len(facts['complete_queries'])} complete query span(s), "
          f"{facts['morph_with_policy']} morph instant(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
