#!/usr/bin/env python3
"""Self-test of the project-invariant linter: proves, with doctored source
trees, that every rule fires on its violation shape, stays quiet on clean
code, honors lint:allow suppressions (same-line and comment-block), and
scopes rules to the right subtrees. Run directly (CI) or via ctest.
"""

import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import lint_invariants as lint  # noqa: E402


class LintTest(unittest.TestCase):
    def setUp(self):
        self.tmp = tempfile.TemporaryDirectory()
        self.root = self.tmp.name

    def tearDown(self):
        self.tmp.cleanup()

    def write(self, rel, text):
        path = os.path.join(self.root, rel)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w", encoding="utf-8") as f:
            f.write(text)

    def lint(self, rules=()):
        return lint.run(self.root, set(rules))

    def names(self, rules=()):
        return [name for (_, _, name, _) in self.lint(rules)]

    def test_clean_tree_passes(self):
        self.write("access/scan.cc", "void F() { ctx.disk->Access(1); }\n")
        self.write("mem/pool.cc", "auto* b = new TupleBatch();\n")
        self.assertEqual(self.lint(), [])

    def test_batch_allocation_fires_outside_mem(self):
        self.write("access/scan.cc",
                   "auto b = std::make_unique<TupleBatch>();\n"
                   "Value* v = new Value();\n")
        self.assertEqual(self.names(), ["batch-allocation",
                                        "batch-allocation"])

    def test_ctx_charging_fires_in_access_and_exec_only(self):
        line = "engine_->disk().Access(ReadRequest{});\n"
        self.write("access/scan.cc", line)
        self.write("exec/op.cc", line)
        self.write("engine/query_engine.cc", line)  # Out of rule scope.
        self.assertEqual(self.names(), ["ctx-charging", "ctx-charging"])

    def test_raw_page_member_fires_in_headers_only(self):
        member = "  const Page* page_ = nullptr;\n"
        self.write("access/scan.h", "class S {\n" + member + "};\n")
        self.write("access/scan.cc", member)  # .cc members out of scope.
        self.write("access/local.h",
                   "inline void F(const Page& page) { (void)page; }\n")
        violations = self.lint()
        self.assertEqual(len(violations), 1)
        rel, lineno, name, _ = violations[0]
        self.assertEqual((rel, lineno, name),
                         (os.path.join("access", "scan.h"), 2,
                          "raw-page-member"))

    def test_value_variant_fires_everywhere_but_not_in_comments(self):
        self.write("common/types.h",
                   "// Value deliberately avoids std::variant<...>.\n"
                   "#include <variant>\n")
        self.assertEqual(self.names(), ["value-variant"])

    def test_raw_mutex_fires_outside_wrapper(self):
        self.write("sharing/group.h", "  std::mutex mu_;\n")
        self.write("sharing/group.cc",
                   "std::lock_guard<std::mutex> lock(mu_);\n")
        self.write("common/latch_rank.h", "  std::mutex mu_;\n")  # Wrapper.
        # condition_variable_any is the sanctioned cv type.
        self.write("exec/sched.h", "  std::condition_variable_any cv_;\n")
        names = self.names()
        # One violation per offending line (the .cc line holds two mentions).
        self.assertEqual(names.count("raw-mutex"), 2)
        rels = [rel for (rel, _, _, _) in self.lint()]
        self.assertNotIn(os.path.join("common", "latch_rank.h"), rels)

    def test_obs_accounting_fires_in_obs_only(self):
        self.write("obs/sampler.cc",
                   "void F(SimDisk* d) { d->Access(r); }\n"
                   "void G(CpuMeter* c) { c->ChargeTuples(1); }\n")
        self.write("access/scan.cc",  # Accounting is access/'s whole job.
                   "void H(SimDisk* d, CpuMeter* c) { (void)d; (void)c; }\n")
        self.assertEqual(self.names(), ["obs-accounting", "obs-accounting"])

    def test_same_line_allow_suppresses(self):
        self.write("access/scan.cc",
                   "engine_->disk().Access(r);  // lint:allow(ctx-charging)\n")
        self.assertEqual(self.lint(), [])

    def test_comment_block_allow_covers_following_code_line(self):
        self.write("access/scan.cc",
                   "// lint:allow(ctx-charging) — spill I/O is communal\n"
                   "// maintenance, like write-backs.\n"
                   "engine_->disk().WriteExtent(f, 0, pages);\n")
        self.assertEqual(self.lint(), [])

    def test_allow_does_not_leak_past_first_code_line(self):
        self.write("access/scan.cc",
                   "// lint:allow(ctx-charging)\n"
                   "engine_->disk().WriteExtent(f, 0, pages);\n"
                   "engine_->disk().ReadExtent(f, 0, pages);\n")
        self.assertEqual(self.names(), ["ctx-charging"])

    def test_allow_is_per_rule(self):
        self.write("access/scan.cc",
                   "// lint:allow(raw-mutex)\n"
                   "engine_->disk().Access(r);\n")
        self.assertEqual(self.names(), ["ctx-charging"])

    def test_rule_filter_runs_subset(self):
        self.write("access/scan.h", "  std::mutex mu_;\n")
        self.write("access/scan.cc", "engine_->disk().Access(r);\n")
        self.assertEqual(self.names(["raw-mutex"]), ["raw-mutex"])

    def test_cli_exit_codes(self):
        self.write("access/scan.cc", "int x = 0;\n")
        self.assertEqual(lint.main(["--root", self.root]), 0)
        self.write("access/bad.cc", "engine_->disk().Access(r);\n")
        self.assertEqual(lint.main(["--root", self.root]), 1)


if __name__ == "__main__":
    unittest.main()
