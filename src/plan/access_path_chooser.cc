#include "plan/access_path_chooser.h"

#include <cmath>

namespace smoothscan {

const char* PathKindToString(PathKind kind) {
  switch (kind) {
    case PathKind::kFullScan:
      return "FullScan";
    case PathKind::kIndexScan:
      return "IndexScan";
    case PathKind::kSortScan:
      return "SortScan";
    case PathKind::kSwitchScan:
      return "SwitchScan";
    case PathKind::kSmoothScan:
      return "SmoothScan";
  }
  return "?";
}

PlanChoice AccessPathChooser::Choose(const TableStats& stats,
                                     const CostModel& model, int64_t lo,
                                     int64_t hi, bool need_order) {
  PlanChoice choice;
  choice.estimated_selectivity = stats.EstimateSelectivity(lo, hi);
  choice.estimated_cardinality = stats.EstimateCardinality(lo, hi);
  const uint64_t card = choice.estimated_cardinality;

  // Posterior-sort surcharge for order-destroying paths, in the same units
  // as page I/O (rough CPU-equivalent of n log2 n comparisons).
  const double sort_penalty =
      !need_order || card < 2
          ? 0.0
          : 2e-4 * static_cast<double>(card) *
                std::log2(static_cast<double>(card));

  const double full = model.FullScanCost() + sort_penalty;
  const double index = model.IndexScanCost(card);
  // Sort Scan: leaf traversal + one nearly-sequential pass over the result
  // pages + the TID sort (and the posterior key sort when order is needed).
  const uint64_t result_pages =
      std::min<uint64_t>(card, model.NumPages());
  const double tid_sort =
      card < 2 ? 0.0
               : 2e-4 * static_cast<double>(card) *
                     std::log2(static_cast<double>(card));
  const double sort_scan =
      static_cast<double>(model.LeavesForResults(card)) *
          model.params().seq_cost +
      static_cast<double>(result_pages) * model.params().seq_cost + tid_sort +
      sort_penalty;

  choice.kind = PathKind::kFullScan;
  choice.estimated_cost = full;
  if (index < choice.estimated_cost) {
    choice.kind = PathKind::kIndexScan;
    choice.estimated_cost = index;
  }
  if (sort_scan < choice.estimated_cost) {
    choice.kind = PathKind::kSortScan;
    choice.estimated_cost = sort_scan;
  }
  return choice;
}

std::unique_ptr<AccessPath> MakePath(PathKind kind, const BPlusTree* index,
                                     const ScanPredicate& predicate,
                                     bool need_order, uint64_t estimate) {
  switch (kind) {
    case PathKind::kFullScan:
      return std::make_unique<FullScan>(index->heap(), predicate);
    case PathKind::kIndexScan:
      return std::make_unique<IndexScan>(index, predicate);
    case PathKind::kSortScan: {
      SortScanOptions options;
      options.preserve_order = need_order;
      return std::make_unique<SortScan>(index, predicate, options);
    }
    case PathKind::kSwitchScan: {
      SwitchScanOptions options;
      options.estimated_cardinality = estimate;
      return std::make_unique<SwitchScan>(index, predicate, options);
    }
    case PathKind::kSmoothScan: {
      SmoothScanOptions options;
      options.preserve_order = need_order;
      return std::make_unique<SmoothScan>(index, predicate, options);
    }
  }
  return nullptr;
}

}  // namespace smoothscan
