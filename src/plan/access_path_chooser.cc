#include "plan/access_path_chooser.h"

#include <algorithm>
#include <cmath>

namespace smoothscan {

const char* PathKindToString(PathKind kind) {
  switch (kind) {
    case PathKind::kFullScan:
      return "FullScan";
    case PathKind::kIndexScan:
      return "IndexScan";
    case PathKind::kSortScan:
      return "SortScan";
    case PathKind::kSwitchScan:
      return "SwitchScan";
    case PathKind::kSmoothScan:
      return "SmoothScan";
    case PathKind::kSharedScan:
      return "SharedScan";
    case PathKind::kCompressedScan:
      return "CompressedScan";
  }
  return "?";
}

PlanChoice AccessPathChooser::Choose(const TableStats& stats,
                                     const CostModel& model, int64_t lo,
                                     int64_t hi, bool need_order) {
  ChooserOptions options;
  options.need_order = need_order;
  return Choose(stats, model, lo, hi, options);
}

PlanChoice AccessPathChooser::Choose(const TableStats& stats,
                                     const CostModel& model, int64_t lo,
                                     int64_t hi,
                                     const ChooserOptions& options) {
  const bool need_order = options.need_order;
  PlanChoice choice;
  choice.estimated_selectivity = stats.EstimateSelectivity(lo, hi);
  choice.estimated_cardinality = stats.EstimateCardinality(lo, hi);
  const uint64_t card = choice.estimated_cardinality;

  // Posterior-sort surcharge for order-destroying paths, in the same units
  // as page I/O (rough CPU-equivalent of n log2 n comparisons).
  const double sort_penalty =
      !need_order || card < 2
          ? 0.0
          : 2e-4 * static_cast<double>(card) *
                std::log2(static_cast<double>(card));

  const double full = model.FullScanCost() + sort_penalty;
  const double index = model.IndexScanCost(card);
  // Sort Scan: leaf traversal + one nearly-sequential pass over the result
  // pages + the TID sort (and the posterior key sort when order is needed).
  const uint64_t result_pages =
      std::min<uint64_t>(card, model.NumPages());
  const double tid_sort =
      card < 2 ? 0.0
               : 2e-4 * static_cast<double>(card) *
                     std::log2(static_cast<double>(card));
  const double sort_scan =
      static_cast<double>(model.LeavesForResults(card)) *
          model.params().seq_cost +
      static_cast<double>(result_pages) * model.params().seq_cost + tid_sort +
      sort_penalty;

  // Wall-clock estimates under `dop` workers: Amdahl over each path's serial
  // prolog fraction. The heap pass of every path parallelizes over morsels;
  // posterior sorts, TID sorts and leaf walks stay on the consumer thread.
  const uint32_t dop = std::max<uint32_t>(1, options.dop);
  const double d = static_cast<double>(dop);
  // Order-preserving consumers have no parallel plan at all (MakeParallelPath
  // returns null), so every wall estimate stays serial under need_order.
  const double full_wall =
      need_order ? full : (full - sort_penalty) / d + sort_penalty;
  // The parallel index kernel has no serial prolog: each key-range morsel
  // seeks and walks its own leaf slice concurrently.
  const double index_wall = need_order ? index : index / d;
  // The sort-scan prolog (leaf walk + TID sort) does run serially.
  const double sort_scan_serial = static_cast<double>(model.LeavesForResults(
                                      card)) * model.params().seq_cost +
                                  tid_sort + sort_penalty;
  const double sort_scan_wall =
      need_order ? sort_scan
                 : (sort_scan - sort_scan_serial) / d + sort_scan_serial;

  // Optional CPU surcharges from the calibrated model: only when a caller
  // passes one — the default ranking stays the paper's I/O-only comparison.
  const CalibratedCpuModel* cpu = options.cpu;
  const double full_cpu =
      cpu != nullptr ? cpu->FullScanCpu(model.params().num_tuples, card) : 0.0;
  const double index_cpu = cpu != nullptr ? cpu->IndexScanCpu(card) : 0.0;

  // Rank by simulated cost at dop = 1 (the paper's setting) and by the wall
  // estimate when parallelism is available.
  struct Candidate {
    PathKind kind;
    double cost;
    double wall;
  };
  Candidate candidates[4] = {
      {PathKind::kFullScan, full + full_cpu,
       full_wall + (need_order ? full_cpu : full_cpu / d)},
      {PathKind::kIndexScan, index + index_cpu,
       index_wall + (need_order ? index_cpu : index_cpu / d)},
      {PathKind::kSortScan, sort_scan + index_cpu,
       sort_scan_wall + (need_order ? index_cpu : index_cpu / d)},
  };
  int num_candidates = 3;
  // The compressed sibling extent, when published: a sequential pass over
  // pages already shrunk by the measured compression ratio. Heap-order
  // output only — an order-requiring consumer falls back to the heap paths.
  if (options.compressed != nullptr && !need_order) {
    const CompressedPathInfo& info = *options.compressed;
    const uint64_t key_checks = static_cast<uint64_t>(
        static_cast<double>(info.tuples) /
        std::max(1.0, info.avg_run_length));
    const double compressed_cpu =
        cpu != nullptr
            ? cpu->CompressedScanCpu(info.pages, key_checks, card)
            : 0.0;
    const double compressed =
        model.CompressedScanCost(info.pages) + compressed_cpu;
    candidates[num_candidates++] =
        {PathKind::kCompressedScan, compressed, compressed / d};
  }
  choice.kind = candidates[0].kind;
  choice.estimated_cost = candidates[0].cost;
  choice.estimated_wall_cost = candidates[0].wall;
  for (int i = 0; i < num_candidates; ++i) {
    const Candidate& c = candidates[i];
    const double rank = dop > 1 ? c.wall : c.cost;
    const double best = dop > 1 ? choice.estimated_wall_cost
                                : choice.estimated_cost;
    if (rank < best) {
      choice.kind = c.kind;
      choice.estimated_cost = c.cost;
      choice.estimated_wall_cost = c.wall;
    }
  }
  // Scan-bound regime with a coordinator on hand: run the winning full pass
  // cooperatively. The estimates stay the solo full scan's — sharing can only
  // cheapen the lap, never widen it. Only at dop == 1: the shared consumer
  // drains its lap serially, so upgrading a plan that was ranked on a
  // parallel full scan's wall estimate would discard the speedup the ranking
  // was based on.
  if (options.sharing_available && !need_order && dop == 1 &&
      choice.kind == PathKind::kFullScan) {
    choice.kind = PathKind::kSharedScan;
  }
  choice.dop = dop;
  return choice;
}

std::unique_ptr<AccessPath> MakePath(PathKind kind, const BPlusTree* index,
                                     const ScanPredicate& predicate,
                                     bool need_order, uint64_t estimate) {
  switch (kind) {
    case PathKind::kFullScan:
      return std::make_unique<FullScan>(index->heap(), predicate);
    case PathKind::kIndexScan:
      return std::make_unique<IndexScan>(index, predicate);
    case PathKind::kSortScan: {
      SortScanOptions options;
      options.preserve_order = need_order;
      return std::make_unique<SortScan>(index, predicate, options);
    }
    case PathKind::kSwitchScan: {
      SwitchScanOptions options;
      options.estimated_cardinality = estimate;
      return std::make_unique<SwitchScan>(index, predicate, options);
    }
    case PathKind::kSmoothScan: {
      SmoothScanOptions options;
      options.preserve_order = need_order;
      return std::make_unique<SmoothScan>(index, predicate, options);
    }
    case PathKind::kSharedScan:
      // A shared scan needs the engine's ScanSharingCoordinator (see
      // sharing/shared_scan_path.h); without one, a plain full scan is the
      // exact solo-equivalent plan.
      return std::make_unique<FullScan>(index->heap(), predicate);
    case PathKind::kCompressedScan:
      // The compressed path needs the engine's CompressedExtentMap (see
      // compress/compressed_scan.h); without one — or once the extent was
      // invalidated by a publish — the heap full scan produces the identical
      // multiset from the identical snapshot.
      return std::make_unique<FullScan>(index->heap(), predicate);
  }
  return nullptr;
}

std::unique_ptr<ParallelScan> MakeParallelPath(
    PathKind kind, const BPlusTree* index, const ScanPredicate& predicate,
    bool need_order, uint64_t estimate, const ParallelScanOptions& parallel) {
  if (need_order) return nullptr;  // Cross-morsel order needs a merge: serial.
  switch (kind) {
    case PathKind::kFullScan:
      return MakeParallelFullScan(index->heap(), predicate, FullScanOptions(),
                                  parallel);
    case PathKind::kIndexScan:
      return MakeParallelIndexScan(index, predicate, parallel);
    case PathKind::kSortScan:
      return MakeParallelSortScan(index, predicate, SortScanOptions(),
                                  parallel);
    case PathKind::kSwitchScan: {
      SwitchScanOptions options;
      options.estimated_cardinality = estimate;
      return MakeParallelSwitchScan(index, predicate, options, parallel);
    }
    case PathKind::kSmoothScan:
      // The paper's preferred Eager trigger parallelizes; non-eager triggers
      // gate on global cardinality and keep the serial operator.
      return MakeParallelSmoothScan(index, predicate, SmoothScanOptions(),
                                    parallel);
    case PathKind::kSharedScan:
      // Sharing is inter-query parallelism already; the consumer itself
      // stays a serial drain of the cooperative scan.
      return nullptr;
    case PathKind::kCompressedScan:
      // Needs the extent ref only the QueryEngine holds; it calls
      // MakeParallelCompressedScan directly.
      return nullptr;
  }
  return nullptr;
}

std::unique_ptr<AccessPath> MakePath(PathKind kind, const BPlusTree* index,
                                     const ScanPredicate& predicate,
                                     bool need_order, uint64_t estimate,
                                     const ParallelScanOptions& parallel) {
  if (parallel.dop > 1) {
    std::unique_ptr<ParallelScan> par =
        MakeParallelPath(kind, index, predicate, need_order, estimate,
                         parallel);
    if (par != nullptr) return par;
  }
  return MakePath(kind, index, predicate, need_order, estimate);
}

}  // namespace smoothscan
