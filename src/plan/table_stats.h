// TableStats: the optimizer statistics whose staleness the paper blames for
// suboptimal access-path choices. An equi-width histogram over the indexed
// column provides selectivity estimates; Corrupt* methods produce the stale /
// wrong statistics scenarios of Fig. 1 and the trigger experiments.

#ifndef SMOOTHSCAN_PLAN_TABLE_STATS_H_
#define SMOOTHSCAN_PLAN_TABLE_STATS_H_

#include <cstdint>
#include <vector>

#include "storage/heap_file.h"

namespace smoothscan {

class TableStats {
 public:
  TableStats() = default;

  /// Scans the heap (build time, free of charge) and builds an equi-width
  /// histogram with `buckets` buckets over INT64/DATE column `column`.
  static TableStats Compute(const HeapFile& heap, int column,
                            size_t buckets = 64);

  /// Estimated selectivity of the half-open range [lo, hi).
  double EstimateSelectivity(int64_t lo, int64_t hi) const;

  /// Estimated result cardinality for [lo, hi).
  uint64_t EstimateCardinality(int64_t lo, int64_t hi) const;

  uint64_t num_tuples() const { return num_tuples_; }
  uint64_t num_pages() const { return num_pages_; }

  /// Simulates stale statistics by scaling every estimate by `factor`
  /// (e.g. 0.01 = the optimizer believes 100x fewer tuples qualify —
  /// the underestimation that makes it pick an index scan).
  void CorruptScale(double factor) { corruption_ = factor; }
  double corruption() const { return corruption_; }

 private:
  uint64_t num_tuples_ = 0;
  uint64_t num_pages_ = 0;
  int64_t min_key_ = 0;
  int64_t max_key_ = 0;
  std::vector<uint64_t> histogram_;
  double corruption_ = 1.0;
};

}  // namespace smoothscan

#endif  // SMOOTHSCAN_PLAN_TABLE_STATS_H_
