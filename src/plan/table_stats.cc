#include "plan/table_stats.h"

#include <algorithm>

namespace smoothscan {

TableStats TableStats::Compute(const HeapFile& heap, int column,
                               size_t buckets) {
  SMOOTHSCAN_CHECK(buckets > 0);
  TableStats stats;
  stats.num_pages_ = heap.num_pages();

  // Pass 1: domain bounds.
  bool first = true;
  heap.ForEachDirect([&](Tid, const Tuple& t) {
    const int64_t key = t[column].AsInt64();
    if (first) {
      stats.min_key_ = stats.max_key_ = key;
      first = false;
    } else {
      stats.min_key_ = std::min(stats.min_key_, key);
      stats.max_key_ = std::max(stats.max_key_, key);
    }
    ++stats.num_tuples_;
  });
  if (stats.num_tuples_ == 0) {
    stats.histogram_.assign(buckets, 0);
    return stats;
  }

  // Pass 2: equi-width bucket counts.
  stats.histogram_.assign(buckets, 0);
  const double width =
      static_cast<double>(stats.max_key_ - stats.min_key_ + 1) /
      static_cast<double>(buckets);
  heap.ForEachDirect([&](Tid, const Tuple& t) {
    const int64_t key = t[column].AsInt64();
    size_t b = static_cast<size_t>(
        static_cast<double>(key - stats.min_key_) / width);
    b = std::min(b, buckets - 1);
    ++stats.histogram_[b];
  });
  return stats;
}

double TableStats::EstimateSelectivity(int64_t lo, int64_t hi) const {
  if (num_tuples_ == 0 || hi <= lo) return 0.0;
  const size_t buckets = histogram_.size();
  const double width = static_cast<double>(max_key_ - min_key_ + 1) /
                       static_cast<double>(buckets);
  double matched = 0.0;
  for (size_t b = 0; b < buckets; ++b) {
    const double b_lo = static_cast<double>(min_key_) + width * b;
    const double b_hi = b_lo + width;
    const double o_lo = std::max(b_lo, static_cast<double>(lo));
    const double o_hi = std::min(b_hi, static_cast<double>(hi));
    if (o_hi <= o_lo) continue;
    matched += static_cast<double>(histogram_[b]) * (o_hi - o_lo) / width;
  }
  const double sel =
      corruption_ * matched / static_cast<double>(num_tuples_);
  return std::clamp(sel, 0.0, 1.0);
}

uint64_t TableStats::EstimateCardinality(int64_t lo, int64_t hi) const {
  return static_cast<uint64_t>(EstimateSelectivity(lo, hi) *
                               static_cast<double>(num_tuples_));
}

}  // namespace smoothscan
