// Textual query front for the plan layer: the SQL-ish grammar the network
// protocol (src/net/) carries, parsed into a ParsedStatement and bound
// against a QueryCatalog into the engine's internal QuerySpec.
//
// Grammar (keywords case-insensitive, one statement per line; write
// statements may be chained with ';' into one batched write query):
//
//   SELECT * FROM <table> WHERE C<col> >= <lo> AND C<col> < <hi>
//       [ORDER BY KEY]
//       [WITH (POLICY=<auto|full|index|sort|switch|smooth|shared|compressed>,
//              DOP=<n>, LANE=<batch|sla>, ESTIMATE=<n>,
//              SHARING=<0|1>, KEYS=<0|1>)]
//   INSERT INTO <table> VALUES (<v>, ...) [, (<v>, ...)]...
//   UPDATE <table> SET ROW (<v>, ...) WHERE TID (<page>, <slot>)
//   DELETE FROM <table> WHERE TID (<page>, <slot>)
//
// POLICY=auto (the default) runs the cost-based chooser against the bound
// table's statistics — faithfully wrong when they lie, exactly like an
// in-process chooser query. All values are INT64 (the engine's schema
// currency). The parser owns syntax, the binder owns resolution; neither
// touches execution or accounting.

#ifndef SMOOTHSCAN_PLAN_QUERY_TEXT_H_
#define SMOOTHSCAN_PLAN_QUERY_TEXT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "engine/query_engine.h"
#include "plan/access_path_chooser.h"
#include "write/table_writer.h"

namespace smoothscan {

enum class StatementKind { kSelect, kWrite };

/// One parsed mutation (all payloads INT64 columns).
struct ParsedWriteOp {
  WriteOp::Kind kind = WriteOp::Kind::kInsert;
  std::vector<int64_t> values;  ///< Row image (insert/update).
  Tid tid;                      ///< Target (update/delete).
};

/// Parse result: syntax only — table names are unresolved strings until
/// BindStatement.
struct ParsedStatement {
  StatementKind kind = StatementKind::kSelect;
  std::string table;

  // SELECT.
  int column = 0;
  int64_t lo = 0;
  int64_t hi = 0;
  bool need_order = false;
  /// POLICY=auto → cost-based chooser; else the fixed kind below.
  bool use_chooser = true;
  PathKind policy = PathKind::kSmoothScan;
  uint32_t dop = 0;
  bool has_lane = false;  ///< LANE given (else the session default applies).
  QueryLane lane = QueryLane::kBatch;
  uint64_t estimate = 0;
  bool allow_sharing = true;
  bool collect_keys = false;

  // WRITE (possibly several chained statements batched into one query).
  std::vector<ParsedWriteOp> ops;
};

/// Parses one request payload: a single SELECT, or one-or-more ';'-chained
/// write statements on the same table (batched into one ParsedStatement, the
/// unit the engine admits as one write query). kInvalidArgument on any
/// syntax error — the caller (the server) answers with an error frame and
/// keeps the connection.
Result<ParsedStatement> ParseQueryText(std::string_view text);

/// What a table name resolves to. `stats` + `cost_model` enable POLICY=auto;
/// `writer` enables DML.
struct TableBinding {
  const BPlusTree* index = nullptr;
  const TableStats* stats = nullptr;
  const CostModel* cost_model = nullptr;
  TableWriter* writer = nullptr;
};

/// Name → binding map the server owns (register once before serving; lookups
/// are read-only thereafter).
class QueryCatalog {
 public:
  void Register(std::string name, TableBinding binding) {
    tables_[std::move(name)] = binding;
  }
  const TableBinding* Lookup(const std::string& name) const {
    auto it = tables_.find(name);
    return it == tables_.end() ? nullptr : &it->second;
  }

 private:
  std::unordered_map<std::string, TableBinding> tables_;
};

/// Resolves a ParsedStatement into the engine's QuerySpec. Errors: unknown
/// table, POLICY=auto without statistics, DML without a writer.
Result<QuerySpec> BindStatement(const QueryCatalog& catalog,
                                const ParsedStatement& stmt);

}  // namespace smoothscan

#endif  // SMOOTHSCAN_PLAN_QUERY_TEXT_H_
