#include "plan/query_text.h"

#include <cctype>
#include <cstdlib>
#include <limits>
#include <utility>

namespace smoothscan {
namespace {

/// Hand-rolled tokenizer: identifiers/numbers are maximal runs of
/// [A-Za-z0-9_.-]; everything else meaningful is a single-char symbol.
/// Keywords compare case-insensitively; table names are taken verbatim.
struct Lexer {
  explicit Lexer(std::string_view text) : text_(text) {}

  /// Next token, or empty at end of input.
  std::string_view Peek() {
    if (!peeked_) {
      tok_ = Lex();
      peeked_ = true;
    }
    return tok_;
  }
  std::string_view Next() {
    std::string_view t = Peek();
    peeked_ = false;
    return t;
  }
  bool AtEnd() { return Peek().empty(); }

 private:
  std::string_view Lex() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
    if (pos_ >= text_.size()) return {};
    const char c = text_[pos_];
    const auto is_word = [](char ch) {
      return std::isalnum(static_cast<unsigned char>(ch)) != 0 || ch == '_' ||
             ch == '.';
    };
    // A '-' only glues to a word when it starts a negative number.
    if (is_word(c) ||
        (c == '-' && pos_ + 1 < text_.size() &&
         std::isdigit(static_cast<unsigned char>(text_[pos_ + 1])) != 0)) {
      size_t begin = pos_++;
      while (pos_ < text_.size() && is_word(text_[pos_])) ++pos_;
      return text_.substr(begin, pos_ - begin);
    }
    // Two-char comparison operators.
    if ((c == '>' || c == '<' || c == '!') && pos_ + 1 < text_.size() &&
        text_[pos_ + 1] == '=') {
      size_t begin = pos_;
      pos_ += 2;
      return text_.substr(begin, 2);
    }
    return text_.substr(pos_++, 1);
  }

  std::string_view text_;
  size_t pos_ = 0;
  std::string_view tok_;
  bool peeked_ = false;
};

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

Status SyntaxError(std::string_view what, std::string_view got) {
  std::string msg = "expected ";
  msg.append(what);
  msg.append(", got '");
  msg.append(got.empty() ? std::string_view("<end>") : got);
  msg.append("'");
  return Status::InvalidArgument(std::move(msg));
}

/// Consumes one keyword (case-insensitive) or fails.
Status Expect(Lexer& lex, std::string_view kw) {
  std::string_view t = lex.Next();
  if (!EqualsIgnoreCase(t, kw)) return SyntaxError(kw, t);
  return Status::OK();
}

Status ParseInt64(std::string_view tok, int64_t* out) {
  if (tok.empty()) return SyntaxError("integer", tok);
  std::string buf(tok);
  char* end = nullptr;
  errno = 0;
  const long long v = std::strtoll(buf.c_str(), &end, 10);
  if (errno != 0 || end == nullptr || *end != '\0') {
    return SyntaxError("integer", tok);
  }
  *out = static_cast<int64_t>(v);
  return Status::OK();
}

Status ParseUInt64(std::string_view tok, uint64_t* out) {
  int64_t v = 0;
  Status s = ParseInt64(tok, &v);
  if (!s.ok()) return s;
  if (v < 0) return SyntaxError("non-negative integer", tok);
  *out = static_cast<uint64_t>(v);
  return Status::OK();
}

/// `C<n>` column reference → n.
Status ParseColumnRef(std::string_view tok, int* out) {
  if (tok.size() < 2 ||
      (tok[0] != 'C' && tok[0] != 'c')) {
    return SyntaxError("column reference C<n>", tok);
  }
  int64_t n = 0;
  Status s = ParseInt64(tok.substr(1), &n);
  if (!s.ok() || n < 0) return SyntaxError("column reference C<n>", tok);
  *out = static_cast<int>(n);
  return Status::OK();
}

Status ParsePolicy(std::string_view tok, ParsedStatement* stmt) {
  if (EqualsIgnoreCase(tok, "auto")) {
    stmt->use_chooser = true;
    return Status::OK();
  }
  stmt->use_chooser = false;
  if (EqualsIgnoreCase(tok, "full")) {
    stmt->policy = PathKind::kFullScan;
  } else if (EqualsIgnoreCase(tok, "index")) {
    stmt->policy = PathKind::kIndexScan;
  } else if (EqualsIgnoreCase(tok, "sort")) {
    stmt->policy = PathKind::kSortScan;
  } else if (EqualsIgnoreCase(tok, "switch")) {
    stmt->policy = PathKind::kSwitchScan;
  } else if (EqualsIgnoreCase(tok, "smooth")) {
    stmt->policy = PathKind::kSmoothScan;
  } else if (EqualsIgnoreCase(tok, "shared")) {
    stmt->policy = PathKind::kSharedScan;
  } else if (EqualsIgnoreCase(tok, "compressed")) {
    stmt->policy = PathKind::kCompressedScan;
  } else {
    return SyntaxError("POLICY value", tok);
  }
  return Status::OK();
}

/// WITH (K=V, ...) hint list; the paren is already consumed.
Status ParseHints(Lexer& lex, ParsedStatement* stmt) {
  for (;;) {
    std::string_view key = lex.Next();
    Status s = Expect(lex, "=");
    if (!s.ok()) return s;
    std::string_view val = lex.Next();
    if (EqualsIgnoreCase(key, "POLICY")) {
      s = ParsePolicy(val, stmt);
    } else if (EqualsIgnoreCase(key, "DOP")) {
      uint64_t v = 0;
      s = ParseUInt64(val, &v);
      stmt->dop = static_cast<uint32_t>(v);
    } else if (EqualsIgnoreCase(key, "LANE")) {
      stmt->has_lane = true;
      if (EqualsIgnoreCase(val, "batch")) {
        stmt->lane = QueryLane::kBatch;
      } else if (EqualsIgnoreCase(val, "sla")) {
        stmt->lane = QueryLane::kSla;
      } else {
        s = SyntaxError("LANE value (batch|sla)", val);
      }
    } else if (EqualsIgnoreCase(key, "ESTIMATE")) {
      s = ParseUInt64(val, &stmt->estimate);
    } else if (EqualsIgnoreCase(key, "SHARING")) {
      uint64_t v = 0;
      s = ParseUInt64(val, &v);
      stmt->allow_sharing = v != 0;
    } else if (EqualsIgnoreCase(key, "KEYS")) {
      uint64_t v = 0;
      s = ParseUInt64(val, &v);
      stmt->collect_keys = v != 0;
    } else {
      s = SyntaxError("hint key", key);
    }
    if (!s.ok()) return s;
    std::string_view sep = lex.Next();
    if (sep == ")") return Status::OK();
    if (sep != ",") return SyntaxError("',' or ')'", sep);
  }
}

Status ParseSelect(Lexer& lex, ParsedStatement* stmt) {
  stmt->kind = StatementKind::kSelect;
  Status s = Expect(lex, "*");
  if (!s.ok()) return s;
  if (!(s = Expect(lex, "FROM")).ok()) return s;
  std::string_view table = lex.Next();
  if (table.empty()) return SyntaxError("table name", table);
  stmt->table = std::string(table);
  if (!(s = Expect(lex, "WHERE")).ok()) return s;

  int col_lo = 0;
  if (!(s = ParseColumnRef(lex.Next(), &col_lo)).ok()) return s;
  if (!(s = Expect(lex, ">=")).ok()) return s;
  if (!(s = ParseInt64(lex.Next(), &stmt->lo)).ok()) return s;
  if (!(s = Expect(lex, "AND")).ok()) return s;
  int col_hi = 0;
  if (!(s = ParseColumnRef(lex.Next(), &col_hi)).ok()) return s;
  if (col_hi != col_lo) {
    return Status::InvalidArgument(
        "range predicate must bound a single column");
  }
  stmt->column = col_lo;
  if (!(s = Expect(lex, "<")).ok()) return s;
  if (!(s = ParseInt64(lex.Next(), &stmt->hi)).ok()) return s;

  while (!lex.AtEnd()) {
    std::string_view t = lex.Next();
    if (EqualsIgnoreCase(t, "ORDER")) {
      if (!(s = Expect(lex, "BY")).ok()) return s;
      if (!(s = Expect(lex, "KEY")).ok()) return s;
      stmt->need_order = true;
    } else if (EqualsIgnoreCase(t, "WITH")) {
      if (!(s = Expect(lex, "(")).ok()) return s;
      if (!(s = ParseHints(lex, stmt)).ok()) return s;
    } else {
      return SyntaxError("ORDER BY KEY, WITH (...), or end", t);
    }
  }
  return Status::OK();
}

/// `(<v>, <v>, ...)` integer tuple; the open paren is consumed here.
Status ParseValueList(Lexer& lex, std::vector<int64_t>* out) {
  Status s = Expect(lex, "(");
  if (!s.ok()) return s;
  for (;;) {
    int64_t v = 0;
    if (!(s = ParseInt64(lex.Next(), &v)).ok()) return s;
    out->push_back(v);
    std::string_view sep = lex.Next();
    if (sep == ")") return Status::OK();
    if (sep != ",") return SyntaxError("',' or ')'", sep);
  }
}

/// `TID (<page>, <slot>)`; the TID keyword is consumed here.
Status ParseTid(Lexer& lex, Tid* out) {
  Status s = Expect(lex, "TID");
  if (!s.ok()) return s;
  std::vector<int64_t> v;
  if (!(s = ParseValueList(lex, &v)).ok()) return s;
  if (v.size() != 2 || v[0] < 0 ||
      v[0] > std::numeric_limits<PageId>::max() || v[1] < 0 ||
      v[1] > std::numeric_limits<SlotId>::max()) {
    return Status::InvalidArgument("TID wants (page, slot) in range");
  }
  out->page_id = static_cast<PageId>(v[0]);
  out->slot = static_cast<SlotId>(v[1]);
  return Status::OK();
}

/// One write statement; `kw` (INSERT/UPDATE/DELETE) is already consumed.
/// Appends ops and sets/validates the statement's table.
Status ParseWrite(Lexer& lex, std::string_view kw, ParsedStatement* stmt) {
  stmt->kind = StatementKind::kWrite;
  Status s = Status::OK();
  std::string table;
  if (EqualsIgnoreCase(kw, "INSERT")) {
    if (!(s = Expect(lex, "INTO")).ok()) return s;
    table = std::string(lex.Next());
    if (!(s = Expect(lex, "VALUES")).ok()) return s;
    for (;;) {
      ParsedWriteOp op;
      op.kind = WriteOp::Kind::kInsert;
      if (!(s = ParseValueList(lex, &op.values)).ok()) return s;
      stmt->ops.push_back(std::move(op));
      if (lex.Peek() != ",") break;
      lex.Next();
    }
  } else if (EqualsIgnoreCase(kw, "UPDATE")) {
    table = std::string(lex.Next());
    if (!(s = Expect(lex, "SET")).ok()) return s;
    if (!(s = Expect(lex, "ROW")).ok()) return s;
    ParsedWriteOp op;
    op.kind = WriteOp::Kind::kUpdate;
    if (!(s = ParseValueList(lex, &op.values)).ok()) return s;
    if (!(s = Expect(lex, "WHERE")).ok()) return s;
    if (!(s = ParseTid(lex, &op.tid)).ok()) return s;
    stmt->ops.push_back(std::move(op));
  } else if (EqualsIgnoreCase(kw, "DELETE")) {
    if (!(s = Expect(lex, "FROM")).ok()) return s;
    table = std::string(lex.Next());
    if (!(s = Expect(lex, "WHERE")).ok()) return s;
    ParsedWriteOp op;
    op.kind = WriteOp::Kind::kDelete;
    if (!(s = ParseTid(lex, &op.tid)).ok()) return s;
    stmt->ops.push_back(std::move(op));
  } else {
    return SyntaxError("SELECT, INSERT, UPDATE, or DELETE", kw);
  }
  if (table.empty()) return SyntaxError("table name", table);
  if (stmt->table.empty()) {
    stmt->table = std::move(table);
  } else if (stmt->table != table) {
    // One batched write query charges one table's writer; cross-table
    // batches would need two admission records.
    return Status::InvalidArgument(
        "chained write statements must target one table");
  }
  return Status::OK();
}

Tuple MakeTuple(const std::vector<int64_t>& values) {
  Tuple t;
  t.reserve(values.size());
  for (int64_t v : values) t.push_back(Value::Int64(v));
  return t;
}

}  // namespace

Result<ParsedStatement> ParseQueryText(std::string_view text) {
  Lexer lex(text);
  ParsedStatement stmt;
  bool any = false;
  while (!lex.AtEnd()) {
    std::string_view kw = lex.Next();
    if (kw == ";") continue;  // Empty statement / trailing terminator.
    if (EqualsIgnoreCase(kw, "SELECT")) {
      if (any) {
        return Status::InvalidArgument(
            "SELECT cannot be chained with other statements");
      }
      Status s = ParseSelect(lex, &stmt);
      if (!s.ok()) return s;
      if (!lex.AtEnd()) {
        return Status::InvalidArgument(
            "SELECT cannot be chained with other statements");
      }
      return stmt;
    }
    Status s = ParseWrite(lex, kw, &stmt);
    if (!s.ok()) return s;
    any = true;
    if (!lex.AtEnd()) {
      std::string_view sep = lex.Next();
      if (sep != ";") return SyntaxError("';' between statements", sep);
    }
  }
  if (!any) return Status::InvalidArgument("empty query text");
  return stmt;
}

Result<QuerySpec> BindStatement(const QueryCatalog& catalog,
                                const ParsedStatement& stmt) {
  const TableBinding* binding = catalog.Lookup(stmt.table);
  if (binding == nullptr) {
    return Status::InvalidArgument("unknown table '" + stmt.table + "'");
  }
  QuerySpec spec;
  if (stmt.kind == StatementKind::kWrite) {
    if (binding->writer == nullptr) {
      return Status::InvalidArgument("table '" + stmt.table +
                                     "' is read-only (no writer bound)");
    }
    spec.writer = binding->writer;
    spec.index = binding->index;
    for (const ParsedWriteOp& op : stmt.ops) {
      switch (op.kind) {
        case WriteOp::Kind::kInsert:
          spec.write_ops.push_back(WriteOp::MakeInsert(MakeTuple(op.values)));
          break;
        case WriteOp::Kind::kUpdate:
          spec.write_ops.push_back(
              WriteOp::MakeUpdate(op.tid, MakeTuple(op.values)));
          break;
        case WriteOp::Kind::kDelete:
          spec.write_ops.push_back(WriteOp::MakeDelete(op.tid));
          break;
      }
    }
    if (stmt.has_lane) spec.lane = stmt.lane;
    return spec;
  }

  if (binding->index == nullptr) {
    return Status::InvalidArgument("table '" + stmt.table +
                                   "' has no index bound");
  }
  spec.index = binding->index;
  spec.predicate = ScanPredicate{};
  spec.predicate.column = stmt.column;
  spec.predicate.lo = stmt.lo;
  spec.predicate.hi = stmt.hi;
  spec.need_order = stmt.need_order;
  spec.dop = stmt.dop;
  spec.collect_keys = stmt.collect_keys;
  spec.allow_sharing = stmt.allow_sharing;
  spec.estimate = stmt.estimate;
  if (stmt.has_lane) spec.lane = stmt.lane;
  if (stmt.use_chooser) {
    if (binding->stats == nullptr || binding->cost_model == nullptr) {
      return Status::InvalidArgument(
          "POLICY=auto needs statistics and a cost model bound for table '" +
          stmt.table + "'");
    }
    spec.use_chooser = true;
    spec.stats = binding->stats;
    spec.cost_model = binding->cost_model;
  } else {
    spec.use_chooser = false;
    spec.kind = stmt.policy;
  }
  return spec;
}

}  // namespace smoothscan
