// AccessPathChooser: a textbook cost-based access-path optimizer — the
// component whose statistics-sensitivity Smooth Scan removes. Given (possibly
// corrupted) TableStats it estimates the predicate selectivity, prices Full
// Scan / Index Scan / Sort Scan with the Section-V cost model and picks the
// cheapest. MakePath materializes the chosen operator.

#ifndef SMOOTHSCAN_PLAN_ACCESS_PATH_CHOOSER_H_
#define SMOOTHSCAN_PLAN_ACCESS_PATH_CHOOSER_H_

#include <memory>

#include "access/full_scan.h"
#include "access/index_scan.h"
#include "access/parallel_scan.h"
#include "access/smooth_scan.h"
#include "access/sort_scan.h"
#include "access/switch_scan.h"
#include "cost/cost_model.h"
#include "plan/table_stats.h"

namespace smoothscan {

enum class PathKind {
  kFullScan,
  kIndexScan,
  kSortScan,
  kSwitchScan,
  kSmoothScan,
  /// Cooperative circular scan shared with concurrent same-table queries
  /// (src/sharing/). Materialized by the QueryEngine via its
  /// ScanSharingCoordinator — MakePath cannot build it alone.
  kSharedScan,
  /// Run-encoded scan over the table's compressed sibling extent
  /// (src/compress/). Materialized by the QueryEngine via its
  /// CompressedExtentMap — MakePath falls back to FullScan without one (or
  /// when the extent was invalidated by a publish after planning).
  kCompressedScan,
};

/// Number of PathKind values (sizing per-path counters). Derived from the
/// last enumerator so adding a kind cannot leave counters undersized.
inline constexpr int kNumPathKinds =
    static_cast<int>(PathKind::kCompressedScan) + 1;

const char* PathKindToString(PathKind kind);

/// What the chooser needs to know about a table's published compressed
/// extent (filled from CompressedExtentMap::Lookup by the caller; the plan
/// layer itself never touches src/compress/).
struct CompressedPathInfo {
  /// Compressed sibling pages — the measured compression ratio is
  /// heap_pages / pages, baked in by construction.
  uint64_t pages = 0;
  uint64_t tuples = 0;
  /// Tuples per key run (run density); 1.0 = incompressible key.
  double avg_run_length = 1.0;
};

/// Chooser knobs beyond the predicate itself.
struct ChooserOptions {
  /// The consumer requires index-key order.
  bool need_order = false;
  /// Degree of parallelism available to the plan. Simulated cost is
  /// DOP-invariant by design (see parallel_scan.h); the knob only changes the
  /// *wall-clock* estimate, so with dop > 1 the chooser ranks paths by
  /// estimated_wall_cost instead.
  uint32_t dop = 1;
  /// A ScanSharingCoordinator is available to the executing engine. When the
  /// ranking favors the full scan anyway (the scan-bound regime), no
  /// interesting order is required and dop == 1 (the shared consumer drains
  /// serially), the chooser upgrades the choice to kSharedScan: a shared lap
  /// costs at most a solo pass and attaching to an in-flight scan costs a
  /// fraction of one.
  bool sharing_available = false;
  /// The table's current compressed extent, when one is published (null:
  /// no compressed tier, or invalidated — the path is simply not offered,
  /// which is the graceful-staleness fallback). Borrowed for the call.
  const CompressedPathInfo* compressed = nullptr;
  /// Calibrated per-path CPU constants. Null (default) ranks on I/O alone,
  /// exactly as before; non-null adds each candidate's CPU estimate so paths
  /// that trade CPU for I/O (the compressed tier) are priced fairly.
  const CalibratedCpuModel* cpu = nullptr;
};

/// The optimizer's verdict for one selection.
struct PlanChoice {
  PathKind kind = PathKind::kFullScan;
  double estimated_selectivity = 0.0;
  uint64_t estimated_cardinality = 0;
  /// Simulated-time estimate (identical at every DOP).
  double estimated_cost = 0.0;
  /// Wall-clock estimate under `dop` workers (Amdahl over the path's serial
  /// prolog fraction). Equals estimated_cost at dop = 1.
  double estimated_wall_cost = 0.0;
  uint32_t dop = 1;
};

class AccessPathChooser {
 public:
  /// `need_order`: the consumer requires index-key order. A full scan (and,
  /// in the blocking sense, a sort scan) then pays a posterior sort, priced
  /// here as a CPU surcharge proportional to n log n.
  static PlanChoice Choose(const TableStats& stats, const CostModel& model,
                           int64_t lo, int64_t hi, bool need_order);

  /// Degree-of-parallelism-aware variant (see ChooserOptions::dop).
  static PlanChoice Choose(const TableStats& stats, const CostModel& model,
                           int64_t lo, int64_t hi,
                           const ChooserOptions& options);
};

/// Materializes an access path of `kind` over `index` (its heap) with
/// `predicate`. `estimate` parameterizes Switch Scan's threshold and Smooth
/// Scan's optimizer-driven trigger; Smooth Scan defaults to the paper's
/// preferred Eager + Elastic configuration.
std::unique_ptr<AccessPath> MakePath(PathKind kind, const BPlusTree* index,
                                     const ScanPredicate& predicate,
                                     bool need_order, uint64_t estimate);

/// Materializes the morsel-driven parallel variant of `kind`, or null when
/// the combination has no parallel form (order-preserving consumers; the
/// non-eager Smooth Scan triggers keep their serial operator). `parallel.dop`
/// may be 1 — the same morsel machinery on one worker, same simulated cost.
std::unique_ptr<ParallelScan> MakeParallelPath(
    PathKind kind, const BPlusTree* index, const ScanPredicate& predicate,
    bool need_order, uint64_t estimate, const ParallelScanOptions& parallel);

/// MakePath with a parallelism knob: returns the parallel variant when
/// `parallel.dop > 1` and the combination supports one, else the serial path.
std::unique_ptr<AccessPath> MakePath(PathKind kind, const BPlusTree* index,
                                     const ScanPredicate& predicate,
                                     bool need_order, uint64_t estimate,
                                     const ParallelScanOptions& parallel);

}  // namespace smoothscan

#endif  // SMOOTHSCAN_PLAN_ACCESS_PATH_CHOOSER_H_
