// TableVersionRegistry: the concurrency story of the write path — table-level
// intent latches with page-level copy-on-write, so scans and writers coexist
// without scans ever observing a half-applied mutation.
//
// The model is snapshot isolation with a single pending era per table:
//
//   * Readers take a ReadLease (intent-shared) for the lifetime of their
//     scan. A leased reader only ever touches the table's *base* pages — the
//     published snapshot — so an in-flight Full/Smooth/Switch/Sort/Index or
//     shared scan sees a frozen, consistent table and charges exactly what a
//     solo run against that snapshot charges (bit-identical simulated cost).
//   * Writers take a WriteTicket (intent-exclusive: one writer batch per
//     table at a time, concurrent with any number of readers). Mutations
//     never touch base pages: the first write to an existing page copies it
//     into the era's overlay (copy-on-write) and all further writes hit the
//     copy; inserts that grow the table go to era-buffered append pages, so
//     NumPages stays frozen for in-flight scans. Index maintenance is queued
//     per era, not applied — B+-tree structure mutates only at publish, which
//     is what lets readers traverse the tree latch-free.
//   * Publish happens at quiescence: when the last lease or ticket drops
//     with an era pending — or a new lease arrives while the table is idle —
//     the era is folded into the base *in place* (Page::CopyFrom keeps every
//     Page pointer and pinned PageGuard valid), appended pages materialize,
//     queued index ops apply in order, the heap's tuple count adjusts, and
//     every published page is marked dirty in the engine's buffer pool for
//     pin-aware write-back accounting. An invalidate hook (wired by the
//     QueryEngine to the ScanSharingCoordinator) then retires parked shared
//     scans whose chunk decomposition the publish staled.
//
// Restart semantics are recovery-free by construction: the simulated
// substrate holds all state in memory, and a "restart" (Engine::ColdRestart)
// only drops caches — publish is atomic under the table latch, so the base
// snapshot is always consistent and there is no redo/undo log to replay.

#ifndef SMOOTHSCAN_WRITE_TABLE_VERSION_H_
#define SMOOTHSCAN_WRITE_TABLE_VERSION_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/latch_rank.h"
#include "common/thread_annotations.h"
#include "index/bplus_tree.h"
#include "storage/engine.h"
#include "storage/heap_file.h"

namespace smoothscan {

namespace obs {
class TraceCollector;
}  // namespace obs

class TableVersionRegistry {
 public:
  explicit TableVersionRegistry(Engine* engine) : engine_(engine) {}

  TableVersionRegistry(const TableVersionRegistry&) = delete;
  TableVersionRegistry& operator=(const TableVersionRegistry&) = delete;

  /// Intent-shared table latch held for the lifetime of a scan. Move-only;
  /// releases (and possibly publishes) on destruction.
  class ReadLease {
   public:
    ReadLease() = default;
    ReadLease(const ReadLease&) = delete;
    ReadLease& operator=(const ReadLease&) = delete;
    ReadLease(ReadLease&& other) noexcept { Swap(&other); }
    ReadLease& operator=(ReadLease&& other) noexcept {
      if (this != &other) {
        Release();
        Swap(&other);
      }
      return *this;
    }
    ~ReadLease() { Release(); }

    /// Drops the lease early (idempotent). The last reader out publishes any
    /// pending era.
    void Release();
    bool held() const { return registry_ != nullptr; }

   private:
    friend class TableVersionRegistry;
    ReadLease(TableVersionRegistry* registry, FileId file)
        : registry_(registry), file_(file) {}
    void Swap(ReadLease* other) {
      std::swap(registry_, other->registry_);
      std::swap(file_, other->file_);
    }
    TableVersionRegistry* registry_ = nullptr;
    FileId file_ = 0;
  };

  /// Intent-exclusive writer admission: one op batch per table at a time,
  /// concurrent with readers. Move-only; releases (and possibly publishes)
  /// on destruction.
  class WriteTicket {
   public:
    WriteTicket() = default;
    WriteTicket(const WriteTicket&) = delete;
    WriteTicket& operator=(const WriteTicket&) = delete;
    WriteTicket(WriteTicket&& other) noexcept { Swap(&other); }
    WriteTicket& operator=(WriteTicket&& other) noexcept {
      if (this != &other) {
        Release();
        Swap(&other);
      }
      return *this;
    }
    ~WriteTicket() { Release(); }

    void Release();
    bool held() const { return registry_ != nullptr; }

   private:
    friend class TableVersionRegistry;
    WriteTicket(TableVersionRegistry* registry, FileId file)
        : registry_(registry), file_(file) {}
    void Swap(WriteTicket* other) {
      std::swap(registry_, other->registry_);
      std::swap(file_, other->file_);
    }
    TableVersionRegistry* registry_ = nullptr;
    FileId file_ = 0;
  };

  /// Registers a reader. If the table is quiescent with a pending era, the
  /// era publishes first, so a fresh reader always sees every mutation that
  /// completed before it arrived (read-your-writes at quiescence).
  ReadLease AcquireRead(FileId file);

  /// Blocks until the table's writer slot is free and opens (or joins) the
  /// pending era. `heap` is remembered for the publish-time tuple-count
  /// adjustment and must be the table `file` belongs to.
  WriteTicket BeginWrite(FileId file, HeapFile* heap);

  // --- Era-view accessors. Caller must hold the table's WriteTicket. ---

  /// Writable era page for `pid`: the copy-on-write overlay of a base page
  /// (copied on first touch) or an era-append page.
  Page* PageForWrite(FileId file, PageId pid);

  /// The era's read view of `pid` — overlay/append page when one exists,
  /// null when the base page is current (writer-reads-own-writes).
  const Page* ResolveOverlay(FileId file, PageId pid) const;

  /// Appends a fresh era-buffered page; it materializes in the
  /// StorageManager only at publish. Returns its (future) page id.
  PageId AppendPage(FileId file);

  /// Base pages + era appends: the page count the *writer* sees.
  PageId NumPagesInEra(FileId file) const;

  /// Queues index maintenance to apply, in call order, at publish.
  void QueueIndexInsert(FileId file, BPlusTree* tree, int64_t key, Tid tid);
  void QueueIndexRemove(FileId file, BPlusTree* tree, int64_t key, Tid tid);

  /// Accumulates the era's net tuple-count change.
  void AddTupleDelta(FileId file, int64_t delta);

  // --- Observability / wiring. ---

  /// Publishes completed so far (a fresh table is at epoch 0).
  uint64_t published_epoch(FileId file) const;
  /// True while unpublished mutations are pending.
  bool era_open(FileId file) const;
  /// Readers currently holding leases.
  uint32_t readers(FileId file) const;

  /// Registers a hook called after each publish with the published table's
  /// id — the QueryEngine wires shared-scan invalidation and compressed-tier
  /// rebuild, and ResultCaches attach their own invalidation. Hooks run *in
  /// registration order, under the table latch*, so no reader can attach to
  /// stale shared state between the fold and the fan-out; a hook must not
  /// call back into the registry. Returns a token for RemovePublishHook.
  uint64_t AddPublishHook(std::function<void(FileId)> hook);
  /// Unregisters `token` (idempotent; unknown tokens are ignored). Must not
  /// be called from inside a hook.
  void RemovePublishHook(uint64_t token);

  Engine* engine() const { return engine_; }

  /// Attaches a trace collector: every publish-at-quiescence emits a
  /// "publish" instant (file, epoch, folded page count) on the publishing
  /// thread's ring. Set before the first lease (read without a latch); null
  /// to detach. Bookkeeping only — publish cost accounting is unchanged.
  void SetTrace(obs::TraceCollector* trace) { trace_ = trace; }

 private:
  struct IndexOp {
    BPlusTree* tree;
    bool insert;
    int64_t key;
    Tid tid;
  };
  struct TableState {
    /// Publish holds this latch while folding pages (storage + pool dirty
    /// marks) and running the publish hooks (hook latch → coordinator →
    /// compressed map), hence its rank above all of them.
    mutable latch::Latch mu{latch::LatchRank::kRegistryTable,
                            "TableVersionRegistry::TableState::mu"};
    std::condition_variable_any cv;
    uint32_t readers GUARDED_BY(mu) = 0;
    bool writer_active GUARDED_BY(mu) = false;
    uint64_t published_epoch GUARDED_BY(mu) = 0;
    // Pending era (valid while `open`).
    bool open GUARDED_BY(mu) = false;
    HeapFile* heap GUARDED_BY(mu) = nullptr;
    PageId base_pages GUARDED_BY(mu) = 0;
    std::unordered_map<PageId, std::unique_ptr<Page>> cow GUARDED_BY(mu);
    std::vector<std::unique_ptr<Page>> appends GUARDED_BY(mu);
    std::vector<IndexOp> index_ops GUARDED_BY(mu);
    int64_t tuple_delta GUARDED_BY(mu) = 0;
  };

  TableState& GetState(FileId file) EXCLUDES(map_mu_);
  const TableState* FindState(FileId file) const EXCLUDES(map_mu_);

  void ReleaseRead(FileId file);
  void ReleaseWrite(FileId file);
  /// Folds the era into the base snapshot. Requires zero readers, no active
  /// writer and an open era.
  void PublishLocked(FileId file, TableState* s) REQUIRES(s->mu);
  void RunPublishHook(FileId file) EXCLUDES(hook_mu_);

  Engine* const engine_;
  obs::TraceCollector* trace_ = nullptr;

  /// Guards tables_ (not per-table state); dropped before any table latch is
  /// acquired, ranked above them so a future nesting stays legal.
  mutable latch::Latch map_mu_{latch::LatchRank::kRegistryMap,
                               "TableVersionRegistry::map_mu_"};
  std::unordered_map<FileId, std::unique_ptr<TableState>> tables_
      GUARDED_BY(map_mu_);
  latch::Latch hook_mu_{latch::LatchRank::kRegistryHooks,
                        "TableVersionRegistry::hook_mu_"};
  std::vector<std::pair<uint64_t, std::function<void(FileId)>>>
      publish_hooks_ GUARDED_BY(hook_mu_);  ///< (token, hook), in order.
  uint64_t next_hook_token_ GUARDED_BY(hook_mu_) = 1;
};

}  // namespace smoothscan

#endif  // SMOOTHSCAN_WRITE_TABLE_VERSION_H_
