#include "write/table_writer.h"

namespace smoothscan {

namespace {

/// Bytes an insert of `size` needs on a page (image + one slot entry; a
/// recycled tombstone slot only makes this conservative).
uint32_t NeedFor(uint32_t size) { return size + 4; }

}  // namespace

TableWriter::TableWriter(HeapFile* heap, std::vector<BPlusTree*> indexes,
                         TableVersionRegistry* registry)
    : heap_(heap),
      indexes_(std::move(indexes)),
      registry_(registry),
      file_(heap->file_id()),
      empty_page_usable_(
          Page(heap->engine()->storage().page_size()).usable_space()) {
  SMOOTHSCAN_CHECK(heap_ != nullptr && registry_ != nullptr);
  for (const BPlusTree* index : indexes_) {
    SMOOTHSCAN_CHECK(index != nullptr && index->heap() == heap_);
  }
}

void TableWriter::EnsureFsm() {
  if (fsm_built_) return;
  // Maintenance walk over the era view: free of charge, like statistics.
  const PageId pages = registry_->NumPagesInEra(file_);
  fsm_.Reset();
  for (PageId p = 0; p < pages; ++p) {
    const Page* overlay = registry_->ResolveOverlay(file_, p);
    const Page& page =
        overlay != nullptr ? *overlay
                           : heap_->engine()->storage().GetPage(file_, p);
    fsm_.SetPage(p, page.usable_space());
  }
  fsm_built_ = true;
}

void TableWriter::UpdateFsm(PageId pid, const Page& page) {
  fsm_.SetPage(pid, page.usable_space());
}

const Page* TableWriter::ReadView(PageId pid, const ExecContext& ctx,
                                  PageGuard* guard) {
  // Charge the buffer fetch a real system performs before touching a frame.
  // Era-append pages exist only in writer memory: no fetch, no charge.
  const PageId base_pages =
      static_cast<PageId>(heap_->engine()->storage().NumPages(file_));
  const Page* overlay = registry_->ResolveOverlay(file_, pid);
  if (pid < base_pages) *guard = ctx.pool->Fetch(file_, pid);
  if (overlay != nullptr) return overlay;
  SMOOTHSCAN_CHECK(*guard);  // A non-overlaid page must be a base page.
  return guard->get();
}

bool TableWriter::DecodeLive(const Page& page, Tid tid, Tuple* out) const {
  if (tid.slot >= page.num_slots() || !page.IsLive(tid.slot)) return false;
  uint32_t size = 0;
  const uint8_t* data = page.GetTuple(tid.slot, &size);
  *out = heap_->schema().Deserialize(data, size);
  return true;
}

void TableWriter::MaintainIndexes(const Tuple& old_tuple, Tid old_tid,
                                  const Tuple* new_tuple, Tid new_tid) {
  for (BPlusTree* index : indexes_) {
    const int col = index->key_column();
    const int64_t old_key = old_tuple[col].AsInt64();
    if (new_tuple == nullptr) {
      registry_->QueueIndexRemove(file_, index, old_key, old_tid);
      continue;
    }
    const int64_t new_key = (*new_tuple)[col].AsInt64();
    if (old_key == new_key && old_tid == new_tid) continue;  // Untouched.
    registry_->QueueIndexRemove(file_, index, old_key, old_tid);
    registry_->QueueIndexInsert(file_, index, new_key, new_tid);
  }
}

Result<Tid> TableWriter::Insert(const Tuple& tuple, const ExecContext& ctx) {
  TableVersionRegistry::WriteTicket ticket =
      registry_->BeginWrite(file_, heap_);
  return DoInsert(tuple, ctx);
}

Result<Tid> TableWriter::Update(Tid tid, const Tuple& tuple,
                                const ExecContext& ctx) {
  TableVersionRegistry::WriteTicket ticket =
      registry_->BeginWrite(file_, heap_);
  return DoUpdate(tid, tuple, ctx);
}

Status TableWriter::Delete(Tid tid, const ExecContext& ctx) {
  TableVersionRegistry::WriteTicket ticket =
      registry_->BeginWrite(file_, heap_);
  return DoDelete(tid, ctx);
}

Status TableWriter::Apply(const std::vector<WriteOp>& ops,
                          const ExecContext& ctx, uint64_t* applied) {
  if (applied != nullptr) *applied = 0;
  TableVersionRegistry::WriteTicket ticket =
      registry_->BeginWrite(file_, heap_);
  for (const WriteOp& op : ops) {
    Status status = Status::OK();
    switch (op.kind) {
      case WriteOp::Kind::kInsert:
        status = DoInsert(op.tuple, ctx).status();
        break;
      case WriteOp::Kind::kUpdate:
        status = DoUpdate(op.tid, op.tuple, ctx).status();
        break;
      case WriteOp::Kind::kDelete:
        status = DoDelete(op.tid, ctx);
        break;
    }
    if (!status.ok() && status.code() != StatusCode::kNotFound) {
      return status;  // Ops so far stay in the era and will publish.
    }
    if (!status.ok()) ++stats_.skipped_dead;  // Deterministic no-op.
    if (applied != nullptr) ++*applied;
  }
  return Status::OK();
}

Result<Tid> TableWriter::DoInsert(const Tuple& tuple, const ExecContext& ctx) {
  EnsureFsm();
  scratch_.clear();
  heap_->schema().Serialize(tuple, &scratch_);
  const uint32_t size = static_cast<uint32_t>(scratch_.size());

  if (NeedFor(size) > empty_page_usable_) {
    return Status::ResourceExhausted("tuple larger than an empty page");
  }
  PageId pid = fsm_.FindPageWithSpace(NeedFor(size));
  const PageId base_pages =
      static_cast<PageId>(heap_->engine()->storage().NumPages(file_));
  if (pid == kInvalidPageId) {
    pid = registry_->AppendPage(file_);
    fsm_.SetPage(pid, empty_page_usable_);
    ++stats_.pages_appended;
  } else if (pid < base_pages) {
    // Re-using an existing page: the frame is read before being modified.
    ctx.pool->Fetch(file_, pid).Release();
    ++stats_.recycled_inserts;
  }
  Page* page = registry_->PageForWrite(file_, pid);
  Result<SlotId> slot = page->Insert(scratch_.data(), size);
  SMOOTHSCAN_CHECK(slot.ok());  // The FSM guaranteed fit.
  const Tid tid{pid, slot.value()};

  for (BPlusTree* index : indexes_) {
    registry_->QueueIndexInsert(file_, index,
                                tuple[index->key_column()].AsInt64(), tid);
  }
  registry_->AddTupleDelta(file_, +1);
  UpdateFsm(pid, *page);
  ctx.cpu->ChargeWriteTuple();
  ++stats_.inserts;
  return tid;
}

Result<Tid> TableWriter::DoUpdate(Tid tid, const Tuple& tuple,
                                  const ExecContext& ctx) {
  EnsureFsm();
  if (tid.page_id >= registry_->NumPagesInEra(file_)) {
    return Status::NotFound("update target past end of table");
  }
  PageGuard guard;
  const Page* view = ReadView(tid.page_id, ctx, &guard);
  Tuple old_tuple;
  if (!DecodeLive(*view, tid, &old_tuple)) {
    return Status::NotFound("update target is dead");
  }
  ctx.cpu->ChargeInspect();

  scratch_.clear();
  heap_->schema().Serialize(tuple, &scratch_);
  const uint32_t size = static_cast<uint32_t>(scratch_.size());
  // Checked before any mutation: the moved-update path tombstones the old
  // image first and must never be left half-applied.
  if (NeedFor(size) > empty_page_usable_) {
    return Status::ResourceExhausted("tuple larger than an empty page");
  }

  Page* page = registry_->PageForWrite(file_, tid.page_id);
  Tid new_tid = tid;
  if (page->Update(tid.slot, scratch_.data(), size).ok()) {
    UpdateFsm(tid.page_id, *page);
  } else {
    // No room in place: tombstone here, re-insert elsewhere (a moved Tid,
    // like PostgreSQL's cross-page update without HOT).
    page->Delete(tid.slot);
    UpdateFsm(tid.page_id, *page);
    registry_->AddTupleDelta(file_, -1);  // DoInsert re-adds it.
    Result<Tid> moved = DoInsert(tuple, ctx);
    if (!moved.ok()) return moved.status();
    --stats_.inserts;  // Count the op as one update, not insert + update.
    new_tid = moved.value();
    ++stats_.moved_updates;
    MaintainIndexes(old_tuple, tid, nullptr, Tid{});
    // DoInsert queued the inserts for the new image already.
    ctx.cpu->ChargeWriteTuple();
    ++stats_.updates;
    return new_tid;
  }
  MaintainIndexes(old_tuple, tid, &tuple, new_tid);
  ctx.cpu->ChargeWriteTuple();
  ++stats_.updates;
  return new_tid;
}

Status TableWriter::DoDelete(Tid tid, const ExecContext& ctx) {
  EnsureFsm();
  if (tid.page_id >= registry_->NumPagesInEra(file_)) {
    return Status::NotFound("delete target past end of table");
  }
  PageGuard guard;
  const Page* view = ReadView(tid.page_id, ctx, &guard);
  Tuple old_tuple;
  if (!DecodeLive(*view, tid, &old_tuple)) {
    return Status::NotFound("delete target is dead");
  }
  ctx.cpu->ChargeInspect();

  Page* page = registry_->PageForWrite(file_, tid.page_id);
  page->Delete(tid.slot);
  UpdateFsm(tid.page_id, *page);
  MaintainIndexes(old_tuple, tid, nullptr, Tid{});
  registry_->AddTupleDelta(file_, -1);
  ctx.cpu->ChargeWriteTuple();
  ++stats_.deletes;
  return Status::OK();
}

}  // namespace smoothscan
