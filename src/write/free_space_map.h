// FreeSpaceMap: per-page usable-byte tracking for a heap table, the structure
// an insert consults to re-use holes left by deletes instead of growing the
// file (PostgreSQL's FSM, reduced to the simulator's needs). "Usable" is the
// page's contiguous free space plus compactable fragmentation — exactly
// Page::usable_space() — so a hit guarantees Page::Insert succeeds, possibly
// via an automatic compaction.
//
// The map is a maintenance structure kept in memory by the table's
// TableWriter: consulting it is free of charge, like the optimizer's
// statistics, while the page accesses the chosen placement causes are
// I/O-accounted as usual. Placement is deterministic first-fit in page order,
// so the physical layout a write stream produces is a pure function of the
// op sequence — the property the write-path differential tests pin.

#ifndef SMOOTHSCAN_WRITE_FREE_SPACE_MAP_H_
#define SMOOTHSCAN_WRITE_FREE_SPACE_MAP_H_

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace smoothscan {

class FreeSpaceMap {
 public:
  FreeSpaceMap() = default;

  /// Forgets all pages (followed by SetPage calls to rebuild).
  void Reset() { usable_.clear(); }

  /// Records `usable` bytes for `page`, which must be < num_pages() + 1
  /// (appending the next page id grows the map).
  void SetPage(PageId page, uint32_t usable);

  /// First page (lowest id) with at least `need` usable bytes, or
  /// kInvalidPageId. O(num_pages) worst case — tables here are a few
  /// thousand pages and the scan is branch-predictable.
  PageId FindPageWithSpace(uint32_t need) const;

  uint32_t usable(PageId page) const { return usable_[page]; }
  size_t num_pages() const { return usable_.size(); }

 private:
  std::vector<uint32_t> usable_;
};

}  // namespace smoothscan

#endif  // SMOOTHSCAN_WRITE_FREE_SPACE_MAP_H_
