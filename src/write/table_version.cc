#include "write/table_version.h"

#include "obs/trace.h"

namespace smoothscan {

void TableVersionRegistry::ReadLease::Release() {
  if (registry_ != nullptr) {
    registry_->ReleaseRead(file_);
    registry_ = nullptr;
  }
}

void TableVersionRegistry::WriteTicket::Release() {
  if (registry_ != nullptr) {
    registry_->ReleaseWrite(file_);
    registry_ = nullptr;
  }
}

TableVersionRegistry::TableState& TableVersionRegistry::GetState(FileId file) {
  latch::LatchGuard lock(map_mu_);
  std::unique_ptr<TableState>& s = tables_[file];
  if (s == nullptr) s = std::make_unique<TableState>();
  return *s;
}

const TableVersionRegistry::TableState* TableVersionRegistry::FindState(
    FileId file) const {
  latch::LatchGuard lock(map_mu_);
  auto it = tables_.find(file);
  return it == tables_.end() ? nullptr : it->second.get();
}

TableVersionRegistry::ReadLease TableVersionRegistry::AcquireRead(
    FileId file) {
  TableState& s = GetState(file);
  {
    latch::LatchGuard lock(s.mu);
    if (s.readers == 0 && !s.writer_active && s.open) {
      PublishLocked(file, &s);
    }
    ++s.readers;
  }
  return ReadLease(this, file);
}

void TableVersionRegistry::ReleaseRead(FileId file) {
  TableState& s = GetState(file);
  {
    latch::LatchGuard lock(s.mu);
    SMOOTHSCAN_CHECK(s.readers > 0);
    --s.readers;
    if (s.readers == 0 && !s.writer_active && s.open) {
      PublishLocked(file, &s);
    }
  }
  s.cv.notify_all();
}

TableVersionRegistry::WriteTicket TableVersionRegistry::BeginWrite(
    FileId file, HeapFile* heap) {
  SMOOTHSCAN_CHECK(heap != nullptr && heap->file_id() == file);
  TableState& s = GetState(file);
  latch::UniqueLatch lock(s.mu);
  // Explicit loop: the analysis does not carry the held latch into a
  // predicate lambda reading the guarded writer_active flag.
  while (s.writer_active) s.cv.wait(lock);
  s.writer_active = true;
  if (!s.open) {
    s.open = true;
    s.heap = heap;
    s.base_pages =
        static_cast<PageId>(engine_->storage().NumPages(file));
  } else {
    SMOOTHSCAN_CHECK(s.heap == heap);
  }
  return WriteTicket(this, file);
}

void TableVersionRegistry::ReleaseWrite(FileId file) {
  TableState& s = GetState(file);
  {
    latch::LatchGuard lock(s.mu);
    SMOOTHSCAN_CHECK(s.writer_active);
    s.writer_active = false;
    if (s.readers == 0 && s.open) {
      PublishLocked(file, &s);
    }
  }
  s.cv.notify_all();
}

Page* TableVersionRegistry::PageForWrite(FileId file, PageId pid) {
  TableState& s = GetState(file);
  latch::LatchGuard lock(s.mu);
  SMOOTHSCAN_CHECK(s.writer_active && s.open);
  if (pid >= s.base_pages) {
    const size_t idx = pid - s.base_pages;
    SMOOTHSCAN_CHECK(idx < s.appends.size());
    return s.appends[idx].get();
  }
  std::unique_ptr<Page>& copy = s.cow[pid];
  if (copy == nullptr) {
    copy = std::make_unique<Page>(engine_->storage().page_size());
    copy->CopyFrom(engine_->storage().GetPage(file, pid));
  }
  return copy.get();
}

const Page* TableVersionRegistry::ResolveOverlay(FileId file,
                                                 PageId pid) const {
  const TableState* s = FindState(file);
  if (s == nullptr) return nullptr;
  latch::LatchGuard lock(s->mu);
  if (!s->open) return nullptr;
  if (pid >= s->base_pages) {
    const size_t idx = pid - s->base_pages;
    SMOOTHSCAN_CHECK(idx < s->appends.size());
    return s->appends[idx].get();
  }
  auto it = s->cow.find(pid);
  return it == s->cow.end() ? nullptr : it->second.get();
}

PageId TableVersionRegistry::AppendPage(FileId file) {
  TableState& s = GetState(file);
  latch::LatchGuard lock(s.mu);
  SMOOTHSCAN_CHECK(s.writer_active && s.open);
  s.appends.push_back(
      std::make_unique<Page>(engine_->storage().page_size()));
  return s.base_pages + static_cast<PageId>(s.appends.size() - 1);
}

PageId TableVersionRegistry::NumPagesInEra(FileId file) const {
  const TableState* s = FindState(file);
  if (s != nullptr) {
    latch::LatchGuard lock(s->mu);
    if (s->open) {
      return s->base_pages + static_cast<PageId>(s->appends.size());
    }
  }
  return static_cast<PageId>(engine_->storage().NumPages(file));
}

void TableVersionRegistry::QueueIndexInsert(FileId file, BPlusTree* tree,
                                            int64_t key, Tid tid) {
  TableState& s = GetState(file);
  latch::LatchGuard lock(s.mu);
  SMOOTHSCAN_CHECK(s.writer_active && s.open);
  s.index_ops.push_back(IndexOp{tree, /*insert=*/true, key, tid});
}

void TableVersionRegistry::QueueIndexRemove(FileId file, BPlusTree* tree,
                                            int64_t key, Tid tid) {
  TableState& s = GetState(file);
  latch::LatchGuard lock(s.mu);
  SMOOTHSCAN_CHECK(s.writer_active && s.open);
  s.index_ops.push_back(IndexOp{tree, /*insert=*/false, key, tid});
}

void TableVersionRegistry::AddTupleDelta(FileId file, int64_t delta) {
  TableState& s = GetState(file);
  latch::LatchGuard lock(s.mu);
  SMOOTHSCAN_CHECK(s.writer_active && s.open);
  s.tuple_delta += delta;
}

void TableVersionRegistry::PublishLocked(FileId file, TableState* s) {
  SMOOTHSCAN_CHECK(s->open && s->readers == 0 && !s->writer_active);
  StorageManager& storage = engine_->storage();
  BufferPool& pool = engine_->pool();

  // Fold overlay copies into their base pages *in place*: every Page pointer
  // (and pinned PageGuard) issued for the table stays valid, only content
  // changes — and no reader can be looking, by the lease invariant. Each
  // published page is marked dirty in the engine pool so write I/O is
  // charged at the next (pin-aware) flush.
  for (const auto& [pid, copy] : s->cow) {
    storage.GetPageForWrite(file, pid)->CopyFrom(*copy);
    pool.MarkDirty(file, pid);
  }
  for (size_t i = 0; i < s->appends.size(); ++i) {
    const PageId pid = storage.AppendPage(file);
    SMOOTHSCAN_CHECK(pid == s->base_pages + i);
    storage.GetPageForWrite(file, pid)->CopyFrom(*s->appends[i]);
    pool.MarkDirty(file, pid);
  }
  // Index maintenance applies in op order; a remove queued for an entry
  // inserted earlier in the same era therefore always finds it.
  for (const IndexOp& op : s->index_ops) {
    if (op.insert) {
      op.tree->Insert(op.key, op.tid);
    } else {
      SMOOTHSCAN_CHECK(op.tree->Remove(op.key, op.tid));
    }
  }
  s->heap->AddTuples(s->tuple_delta);

  ++s->published_epoch;
  if (trace_ != nullptr) {
    // Emitted under the table latch: TraceRing is a strict leaf (rank 102),
    // so this nests legally, and the instant lands exactly at the moment the
    // era became visible.
    trace_->Instant(/*query_id=*/0, "publish", "file",
                    static_cast<int64_t>(file), "epoch",
                    static_cast<int64_t>(s->published_epoch), "folded_pages",
                    static_cast<int64_t>(s->cow.size() + s->appends.size()));
  }
  s->open = false;
  s->cow.clear();
  s->appends.clear();
  s->index_ops.clear();
  s->tuple_delta = 0;

  // Still under the table latch: no reader can slip in between the fold and
  // the hook, so any shared-scan group the hook retires is provably parked
  // and no consumer can attach to a stale decomposition first. (Lock order
  // table latch → coordinator latch; the coordinator never calls back into
  // the registry.)
  RunPublishHook(file);
}

void TableVersionRegistry::RunPublishHook(FileId file) {
  // Copy the fan-out under the hook latch, run it outside: a hook may take
  // its own latches (coordinator, extent map, cache) and must never nest
  // under hook_mu_.
  std::vector<std::function<void(FileId)>> hooks;
  {
    latch::LatchGuard lock(hook_mu_);
    hooks.reserve(publish_hooks_.size());
    for (const auto& [token, hook] : publish_hooks_) hooks.push_back(hook);
  }
  for (const auto& hook : hooks) hook(file);
}

uint64_t TableVersionRegistry::AddPublishHook(
    std::function<void(FileId)> hook) {
  latch::LatchGuard lock(hook_mu_);
  const uint64_t token = next_hook_token_++;
  publish_hooks_.emplace_back(token, std::move(hook));
  return token;
}

void TableVersionRegistry::RemovePublishHook(uint64_t token) {
  latch::LatchGuard lock(hook_mu_);
  for (auto it = publish_hooks_.begin(); it != publish_hooks_.end(); ++it) {
    if (it->first == token) {
      publish_hooks_.erase(it);
      return;
    }
  }
}

uint64_t TableVersionRegistry::published_epoch(FileId file) const {
  const TableState* s = FindState(file);
  if (s == nullptr) return 0;
  latch::LatchGuard lock(s->mu);
  return s->published_epoch;
}

bool TableVersionRegistry::era_open(FileId file) const {
  const TableState* s = FindState(file);
  if (s == nullptr) return false;
  latch::LatchGuard lock(s->mu);
  return s->open;
}

uint32_t TableVersionRegistry::readers(FileId file) const {
  const TableState* s = FindState(file);
  if (s == nullptr) return 0;
  latch::LatchGuard lock(s->mu);
  return s->readers;
}

}  // namespace smoothscan
