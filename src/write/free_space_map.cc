#include "write/free_space_map.h"

#include "common/status.h"

namespace smoothscan {

void FreeSpaceMap::SetPage(PageId page, uint32_t usable) {
  SMOOTHSCAN_CHECK(page <= usable_.size());
  if (page == usable_.size()) {
    usable_.push_back(usable);
  } else {
    usable_[page] = usable;
  }
}

PageId FreeSpaceMap::FindPageWithSpace(uint32_t need) const {
  for (size_t p = 0; p < usable_.size(); ++p) {
    if (usable_[p] >= need) return static_cast<PageId>(p);
  }
  return kInvalidPageId;
}

}  // namespace smoothscan
