// TableWriter: the mutation API of a heap table — INSERT / UPDATE / DELETE
// through the buffer pool, with free-space-map placement, B+-tree index
// maintenance and snapshot semantics from the TableVersionRegistry.
//
// Accounting: reading a target page into the buffer (the fetch a real system
// performs before modifying a frame) is charged through the caller's
// ExecContext — under the multi-query engine that is the write query's
// private QueryContext, so write queries cost-isolate exactly like reads.
// Per-tuple mutation work charges CpuMeter::ChargeWriteTuple. The *write*
// I/O (dirty-page write-back) is communal: publish marks pages dirty in the
// engine's shared pool and the charge lands on the engine stream at the next
// pin-aware flush — the checkpointer's stream, not any one query's.
//
// Concurrency: every public op (or Apply batch) runs under the table's
// WriteTicket, so op batches serialize per table while readers proceed
// against the frozen base snapshot. One TableWriter instance per table —
// its free-space map assumes it sees every mutation.

#ifndef SMOOTHSCAN_WRITE_TABLE_WRITER_H_
#define SMOOTHSCAN_WRITE_TABLE_WRITER_H_

#include <cstdint>
#include <vector>

#include "index/bplus_tree.h"
#include "storage/exec_context.h"
#include "storage/heap_file.h"
#include "write/free_space_map.h"
#include "write/table_version.h"

namespace smoothscan {

/// One mutation of a write-query spec.
struct WriteOp {
  enum class Kind { kInsert, kUpdate, kDelete };
  Kind kind = Kind::kInsert;
  Tuple tuple;  ///< Payload (insert/update).
  Tid tid;      ///< Target (update/delete).

  static WriteOp MakeInsert(Tuple t) {
    WriteOp op;
    op.kind = Kind::kInsert;
    op.tuple = std::move(t);
    return op;
  }
  static WriteOp MakeUpdate(Tid tid, Tuple t) {
    WriteOp op;
    op.kind = Kind::kUpdate;
    op.tid = tid;
    op.tuple = std::move(t);
    return op;
  }
  static WriteOp MakeDelete(Tid tid) {
    WriteOp op;
    op.kind = Kind::kDelete;
    op.tid = tid;
    return op;
  }
};

struct TableWriterStats {
  uint64_t inserts = 0;
  uint64_t updates = 0;
  uint64_t deletes = 0;
  uint64_t moved_updates = 0;  ///< Updates that relocated the tuple.
  uint64_t recycled_inserts = 0;  ///< Inserts placed into reclaimed space.
  uint64_t pages_appended = 0;
  /// Ops targeting an already-dead Tid — deterministic no-ops, so replaying
  /// one op stream always reproduces one table state.
  uint64_t skipped_dead = 0;
};

class TableWriter {
 public:
  /// A writer over `heap` maintaining `indexes` (all indexes on the table;
  /// they must outlive the writer). The registry provides latches and the
  /// COW era.
  TableWriter(HeapFile* heap, std::vector<BPlusTree*> indexes,
              TableVersionRegistry* registry);

  TableWriter(const TableWriter&) = delete;
  TableWriter& operator=(const TableWriter&) = delete;

  /// Inserts `tuple`, placing it via the free-space map (first page with
  /// room, else a fresh append page). Returns the new Tid.
  Result<Tid> Insert(const Tuple& tuple, const ExecContext& ctx);

  /// Rewrites the tuple at `tid`; relocates it when the new image no longer
  /// fits its page (the returned Tid then differs). kNotFound when `tid` is
  /// already dead.
  Result<Tid> Update(Tid tid, const Tuple& tuple, const ExecContext& ctx);

  /// Tombstones the tuple at `tid`. kNotFound when already dead.
  Status Delete(Tid tid, const ExecContext& ctx);

  /// Applies a whole op batch under one WriteTicket (the unit the
  /// QueryEngine admits as a write query). Ops targeting dead Tids are
  /// counted and skipped; the first hard error aborts the batch. `applied`
  /// (optional) receives the number of ops processed — including
  /// skipped-dead no-ops, excluding everything after an error.
  Status Apply(const std::vector<WriteOp>& ops, const ExecContext& ctx,
               uint64_t* applied = nullptr);

  HeapFile* heap() const { return heap_; }
  const TableWriterStats& stats() const { return stats_; }

 private:
  // All Do* helpers run under a held WriteTicket.
  Result<Tid> DoInsert(const Tuple& tuple, const ExecContext& ctx);
  Result<Tid> DoUpdate(Tid tid, const Tuple& tuple, const ExecContext& ctx);
  Status DoDelete(Tid tid, const ExecContext& ctx);

  /// Era-view of page `pid` for reading (overlay if present, else base),
  /// charging the fetch through `ctx` for base-resident pages.
  const Page* ReadView(PageId pid, const ExecContext& ctx, PageGuard* guard);

  /// Decodes the live tuple at `tid` from `page` (null if tombstoned).
  bool DecodeLive(const Page& page, Tid tid, Tuple* out) const;

  /// Lazily (re)builds the free-space map from the era view.
  void EnsureFsm();
  void UpdateFsm(PageId pid, const Page& page);

  /// Queues remove+insert ops for every index affected by an image change.
  void MaintainIndexes(const Tuple& old_tuple, Tid old_tid,
                       const Tuple* new_tuple, Tid new_tid);

  HeapFile* const heap_;
  const std::vector<BPlusTree*> indexes_;
  TableVersionRegistry* const registry_;
  const FileId file_;
  /// Usable bytes of an empty page — the hard ceiling on tuple size (an
  /// insert needing more returns kResourceExhausted instead of appending a
  /// page it could never fill).
  const uint32_t empty_page_usable_;

  FreeSpaceMap fsm_;
  bool fsm_built_ = false;
  std::vector<uint8_t> scratch_;
  TableWriterStats stats_;
};

}  // namespace smoothscan

#endif  // SMOOTHSCAN_WRITE_TABLE_WRITER_H_
