// Micro-benchmark of Section VI-C: a table of N tuples with 10 integer
// columns randomly populated from [0, 100000]; c1 is the primary key (equal
// to the tuple order number) and a non-clustered index is created on c2.
// Queries are "SELECT * FROM relation WHERE c2 >= 0 AND c2 < X [ORDER BY c2]"
// — X controls the selectivity. Also provides the skewed variant of
// Section VI-D (a dense head region of matches plus a sprinkle of random
// matches).

#ifndef SMOOTHSCAN_WORKLOAD_MICRO_BENCH_H_
#define SMOOTHSCAN_WORKLOAD_MICRO_BENCH_H_

#include <memory>

#include "access/predicate.h"
#include "index/bplus_tree.h"
#include "storage/engine.h"
#include "storage/heap_file.h"

namespace smoothscan {

struct MicroBenchSpec {
  uint64_t num_tuples = 200000;
  int num_columns = 10;
  /// Column values are uniform in [0, value_max].
  int64_t value_max = 100000;
  uint64_t seed = 42;
};

struct SkewedBenchSpec {
  uint64_t num_tuples = 200000;
  int num_columns = 10;
  int64_t value_max = 100000;
  /// The first `dense_prefix` tuples get c2 = 0 (the paper's 15 M-tuple dense
  /// head, scaled).
  uint64_t dense_prefix = 2000;
  /// Afterwards this fraction of random tuples also gets c2 = 0 (the paper's
  /// extra 0.001%).
  double extra_match_fraction = 1e-5;
  uint64_t seed = 42;
};

/// A generated table plus its secondary index on c2.
class MicroBenchDb {
 public:
  /// Builds the uniform micro-benchmark table inside `engine`.
  MicroBenchDb(Engine* engine, const MicroBenchSpec& spec);
  /// Builds the skewed variant.
  MicroBenchDb(Engine* engine, const SkewedBenchSpec& spec);

  const HeapFile& heap() const { return *heap_; }
  const BPlusTree& index() const { return *index_; }
  /// Mutable access for the write path (TableWriter construction).
  HeapFile* mutable_heap() { return heap_.get(); }
  BPlusTree* mutable_index() { return index_.get(); }
  /// Upper bound of the generated value domain (inserts that drift the
  /// selectivity distribution draw from it).
  int64_t value_max() const { return value_max_; }

  /// Column index of c2, the indexed column.
  static constexpr int kIndexedColumn = 1;

  /// Predicate "c2 >= 0 AND c2 < selectivity * (value_max + 1)": its actual
  /// selectivity is `selectivity` in expectation.
  ScanPredicate PredicateForSelectivity(double selectivity) const;

  /// Predicate "c2 = 0" — the skewed workload's query (~1% selectivity).
  ScanPredicate ZeroKeyPredicate() const;

 private:
  std::unique_ptr<HeapFile> heap_;
  std::unique_ptr<BPlusTree> index_;
  int64_t value_max_;
};

}  // namespace smoothscan

#endif  // SMOOTHSCAN_WORKLOAD_MICRO_BENCH_H_
