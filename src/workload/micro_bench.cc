#include "workload/micro_bench.h"

#include <cmath>

#include "common/rng.h"

namespace smoothscan {

MicroBenchDb::MicroBenchDb(Engine* engine, const MicroBenchSpec& spec)
    : value_max_(spec.value_max) {
  SMOOTHSCAN_CHECK(spec.num_columns >= 2);
  heap_ = std::make_unique<HeapFile>(engine, "micro",
                                     MakeIntSchema(spec.num_columns));
  Rng rng(spec.seed);
  Tuple tuple(spec.num_columns);
  for (uint64_t i = 0; i < spec.num_tuples; ++i) {
    tuple[0] = Value::Int64(static_cast<int64_t>(i));  // c1 = row order (PK).
    for (int c = 1; c < spec.num_columns; ++c) {
      tuple[c] = Value::Int64(rng.UniformInt(0, spec.value_max));
    }
    SMOOTHSCAN_CHECK(heap_->Append(tuple).ok());
  }
  index_ = std::make_unique<BPlusTree>(engine, "micro_c2_idx", heap_.get(),
                                       kIndexedColumn);
  index_->BulkBuild();
}

MicroBenchDb::MicroBenchDb(Engine* engine, const SkewedBenchSpec& spec)
    : value_max_(spec.value_max) {
  SMOOTHSCAN_CHECK(spec.num_columns >= 2);
  heap_ = std::make_unique<HeapFile>(engine, "micro_skew",
                                     MakeIntSchema(spec.num_columns));
  Rng rng(spec.seed);
  Tuple tuple(spec.num_columns);
  for (uint64_t i = 0; i < spec.num_tuples; ++i) {
    tuple[0] = Value::Int64(static_cast<int64_t>(i));
    const bool match = i < spec.dense_prefix ||
                       rng.Bernoulli(spec.extra_match_fraction);
    tuple[kIndexedColumn] =
        Value::Int64(match ? 0 : rng.UniformInt(1, spec.value_max));
    for (int c = 2; c < spec.num_columns; ++c) {
      tuple[c] = Value::Int64(rng.UniformInt(0, spec.value_max));
    }
    SMOOTHSCAN_CHECK(heap_->Append(tuple).ok());
  }
  index_ = std::make_unique<BPlusTree>(engine, "micro_skew_c2_idx",
                                       heap_.get(), kIndexedColumn);
  index_->BulkBuild();
}

ScanPredicate MicroBenchDb::PredicateForSelectivity(double selectivity) const {
  SMOOTHSCAN_CHECK(selectivity >= 0.0 && selectivity <= 1.0);
  ScanPredicate pred;
  pred.column = kIndexedColumn;
  pred.lo = 0;
  pred.hi = static_cast<int64_t>(
      std::llround(selectivity * static_cast<double>(value_max_ + 1)));
  return pred;
}

ScanPredicate MicroBenchDb::ZeroKeyPredicate() const {
  ScanPredicate pred;
  pred.column = kIndexedColumn;
  pred.lo = 0;
  pred.hi = 1;
  return pred;
}

}  // namespace smoothscan
