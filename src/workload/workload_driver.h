// WorkloadDriver: the paper's robustness experiment lifted from one query to
// a *stream*. A closed loop of N concurrent clients replays phases of
// queries over the micro-benchmark table through a shared QueryEngine; each
// phase shifts the selectivity range and corrupts the optimizer statistics by
// a phase-specific factor (the "lying estimates" that make a cost-based
// chooser pick the wrong path). Policies compare the statistics-trusting
// optimizer against the statistics-oblivious Smooth Scan (and fixed-path
// baselines) at workload level: queries/second and latency percentiles
// instead of single-query cost.
//
// Determinism: every client draws its selectivities from an Rng forked off
// (seed, client id), so the *set* of queries a configuration runs is exactly
// repeatable; only queueing and wall-clock vary with scheduling.

#ifndef SMOOTHSCAN_WORKLOAD_WORKLOAD_DRIVER_H_
#define SMOOTHSCAN_WORKLOAD_WORKLOAD_DRIVER_H_

#include <cstdint>
#include <vector>

#include "engine/query_engine.h"
#include "workload/micro_bench.h"

namespace smoothscan {

/// One phase of the stream each client replays, in order.
struct StreamPhase {
  /// Per-query selectivity is drawn uniform in [selectivity_lo, _hi] —
  /// shifting the window across phases models the drifting workloads the
  /// optimizer's frozen statistics cannot follow.
  double selectivity_lo = 0.01;
  double selectivity_hi = 0.1;
  /// Statistics corruption for this phase (TableStats::CorruptScale): 0.01
  /// means the optimizer believes 100x fewer tuples qualify.
  double estimate_error = 1.0;
  /// Queries each client submits in this phase.
  uint32_t queries = 4;
  QueryLane lane = QueryLane::kBatch;
};

/// How the driver picks each query's access path.
enum class DriverPolicy {
  kOptimizer,   ///< Cost-based chooser over the phase's corrupted stats.
  kSmoothScan,  ///< Always Smooth Scan (Eager + Elastic), stats-oblivious.
  kFullScan,    ///< Always Full Scan (the robust-but-pessimal baseline).
  kIndexScan,   ///< Always Index Scan (the fragile baseline).
  kSharedScan,  ///< Always the cooperative shared scan (the engine needs a
                ///< ScanSharingCoordinator; falls back to Full Scan without).
};

const char* DriverPolicyToString(DriverPolicy policy);

struct WorkloadOptions {
  uint32_t clients = 4;
  /// Intra-query DOP handed to QuerySpec (0 = serial operators).
  uint32_t dop = 0;
  DriverPolicy policy = DriverPolicy::kOptimizer;
  uint64_t seed = 7;
  std::vector<StreamPhase> phases;

  /// The paper's three-phase drift with a lying optimizer: trickle-selective
  /// queries the stats get right, then a mid-selectivity phase the stats
  /// underestimate 100x (index-scan trap), then a high-selectivity phase
  /// underestimated 1000x.
  static std::vector<StreamPhase> DriftingPhases(uint32_t queries_per_phase);

  /// A same-table hot spot: every client hammers the one table with
  /// scan-bound (30–80% selectivity) queries at once — the workload where N
  /// independent passes waste N-1 of them and a cooperative shared scan
  /// collapses them toward one (bench_shared_scan sweeps it).
  static std::vector<StreamPhase> HotSpotPhases(uint32_t queries_per_client);
};

/// Workload-level results, aggregated over every completed query.
struct WorkloadReport {
  uint64_t queries = 0;
  uint64_t tuples = 0;
  double wall_ms = 0.0;  ///< Whole-run wall clock (all clients).
  double qps = 0.0;      ///< queries / wall seconds.
  double mean_latency_ms = 0.0;
  double p50_latency_ms = 0.0;
  double p95_latency_ms = 0.0;
  double p99_latency_ms = 0.0;
  double max_latency_ms = 0.0;
  double mean_queue_ms = 0.0;
  /// Summed per-query simulated cost — schedule-independent, so two runs of
  /// one configuration agree bit-for-bit regardless of concurrency. Two
  /// exceptions when a ScanSharingCoordinator is configured: shared-scan
  /// queries charge ~no I/O (the pass is paid on the engine's communal
  /// stream), and shared-SmoothScan savings depend on which pages peers had
  /// probed first — by design, sharing trades per-query cost isolation for
  /// aggregate I/O.
  double total_sim_time = 0.0;
  /// Queries that ran each PathKind (indexed by its enum value).
  uint64_t path_counts[kNumPathKinds] = {0, 0, 0, 0, 0, 0};
  /// Every query's metrics, in completion-collection order (per client).
  std::vector<QueryMetrics> per_query;
};

class WorkloadDriver {
 public:
  /// The driver borrows all three; they must outlive it. The QueryEngine's
  /// admission cap is the experiment's multi-programming level.
  WorkloadDriver(Engine* engine, const MicroBenchDb* db, QueryEngine* qe);

  /// Runs the closed loop to completion and aggregates the report.
  WorkloadReport Run(const WorkloadOptions& options);

 private:
  QuerySpec SpecFor(const StreamPhase& phase, double selectivity,
                    const TableStats* phase_stats, const CostModel* model,
                    const WorkloadOptions& options) const;

  Engine* engine_;
  const MicroBenchDb* db_;
  QueryEngine* qe_;
};

}  // namespace smoothscan

#endif  // SMOOTHSCAN_WORKLOAD_WORKLOAD_DRIVER_H_
