// WorkloadDriver: the paper's robustness experiment lifted from one query to
// a *stream*. A closed loop of N concurrent clients replays phases of
// queries over the micro-benchmark table through a shared QueryEngine; each
// phase shifts the selectivity range and corrupts the optimizer statistics by
// a phase-specific factor (the "lying estimates" that make a cost-based
// chooser pick the wrong path). Policies compare the statistics-trusting
// optimizer against the statistics-oblivious Smooth Scan (and fixed-path
// baselines) at workload level: queries/second and latency percentiles
// instead of single-query cost.
//
// Determinism: every client draws its selectivities from an Rng forked off
// (seed, client id), so the *set* of queries a configuration runs is exactly
// repeatable; only queueing and wall-clock vary with scheduling.

#ifndef SMOOTHSCAN_WORKLOAD_WORKLOAD_DRIVER_H_
#define SMOOTHSCAN_WORKLOAD_WORKLOAD_DRIVER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "engine/query_engine.h"
#include "obs/metrics.h"
#include "workload/micro_bench.h"

namespace smoothscan {

namespace net {
class Server;
}  // namespace net

/// One phase of the stream each client replays, in order.
struct StreamPhase {
  /// Per-query selectivity is drawn uniform in [selectivity_lo, _hi] —
  /// shifting the window across phases models the drifting workloads the
  /// optimizer's frozen statistics cannot follow.
  double selectivity_lo = 0.01;
  double selectivity_hi = 0.1;
  /// Statistics corruption for this phase (TableStats::CorruptScale): 0.01
  /// means the optimizer believes 100x fewer tuples qualify.
  double estimate_error = 1.0;
  /// Queries each client submits in this phase.
  uint32_t queries = 4;
  QueryLane lane = QueryLane::kBatch;

  // --- Write mix (requires WorkloadOptions::writer; client 0 becomes the
  // writer client and interleaves these with its reads). Mutations drift the
  // *data* under the chooser's frozen statistics — the complement of
  // estimate_error, which only drifts the *queries*.
  /// Write queries client 0 submits this phase (each one admission-
  /// controlled batch of `write_ops` mutations).
  uint32_t write_queries = 0;
  /// Mutations per write query.
  uint32_t write_ops = 32;
  /// Inserted tuples draw their indexed key uniform from this selectivity
  /// window of the value domain (e.g. [0, 0.1] piles new tuples into the
  /// low-key range every low-selectivity predicate hits).
  double insert_sel_lo = 0.0;
  double insert_sel_hi = 1.0;
  /// Relative op-kind weights within a write query.
  double insert_weight = 1.0;
  double update_weight = 1.0;
  double delete_weight = 1.0;
};

/// How the driver picks each query's access path.
enum class DriverPolicy {
  kOptimizer,   ///< Cost-based chooser over the phase's corrupted stats.
  kSmoothScan,  ///< Always Smooth Scan (Eager + Elastic), stats-oblivious.
  kFullScan,    ///< Always Full Scan (the robust-but-pessimal baseline).
  kIndexScan,   ///< Always Index Scan (the fragile baseline).
  kSharedScan,  ///< Always the cooperative shared scan (the engine needs a
                ///< ScanSharingCoordinator; falls back to Full Scan without).
};

const char* DriverPolicyToString(DriverPolicy policy);

struct WorkloadOptions {
  uint32_t clients = 4;
  /// Intra-query DOP handed to QuerySpec (0 = serial operators).
  uint32_t dop = 0;
  DriverPolicy policy = DriverPolicy::kOptimizer;
  uint64_t seed = 7;
  std::vector<StreamPhase> phases;

  /// Write path (all three null/false = the read-only driver of PR 3/4):
  /// the table's writer, enabling phases with write_queries > 0. The
  /// QueryEngine must be configured with the matching TableVersionRegistry.
  TableWriter* writer = nullptr;
  /// When set with `phase_barrier`, the driver pins the phase snapshot: it
  /// holds a table ReadLease across each phase and rotates it at the phase
  /// barrier, so every era publishes exactly at a phase boundary. Reads in
  /// phase k therefore all see the snapshot left by phase k-1's writes —
  /// which makes every per-query simulated read cost a pure function of
  /// (spec, phase), bit-identical across admission levels (bench_write_mix's
  /// acceptance property).
  TableVersionRegistry* versions = nullptr;
  /// Synchronize all clients at phase boundaries.
  bool phase_barrier = false;

  /// Network mode: when set, each client connects to this server over an
  /// in-process pipe and submits its queries as wire text (the grammar of
  /// plan/query_text.h) instead of raw specs — the full front-end in the
  /// closed loop. The server's catalog must have the micro-bench table
  /// registered under `wire_table`. The kOptimizer policy maps to
  /// POLICY=auto, so the *server's* bound statistics drive the chooser
  /// (per-phase stats corruption remains an in-process-mode feature), and
  /// write phases serialize their op batches as chained DML statements.
  net::Server* server = nullptr;
  /// Catalog name of the micro-bench table in wire mode.
  std::string wire_table = "t";

  // --- Observability (pure bookkeeping; per-query simulated cost is
  // bit-identical with or without any of it). ---
  /// Unified metrics registry. When set, Run() spawns a RegistrySampler for
  /// the duration of the client loop — the periodic snapshot reporter that
  /// pulls broker/sharing state into registry gauges — samples once more at
  /// stop, and stores the final registry snapshot in WorkloadReport::metrics.
  obs::MetricsRegistry* metrics = nullptr;
  /// Pull-style sampler sources (optional; see obs/sampler.h). `broker` also
  /// fills the report's mem_class_bytes/peak/pressure fields directly.
  const MemoryBroker* broker = nullptr;
  const ScanSharingCoordinator* sharing = nullptr;
  /// Sampler tick period.
  uint32_t snapshot_period_ms = 25;

  /// The paper's three-phase drift with a lying optimizer: trickle-selective
  /// queries the stats get right, then a mid-selectivity phase the stats
  /// underestimate 100x (index-scan trap), then a high-selectivity phase
  /// underestimated 1000x.
  static std::vector<StreamPhase> DriftingPhases(uint32_t queries_per_phase);

  /// A same-table hot spot: every client hammers the one table with
  /// scan-bound (30–80% selectivity) queries at once — the workload where N
  /// independent passes waste N-1 of them and a cooperative shared scan
  /// collapses them toward one (bench_shared_scan sweeps it).
  static std::vector<StreamPhase> HotSpotPhases(uint32_t queries_per_client);

  /// Three mixed read/write phases with *data* drift: client 0 piles inserts
  /// into the low-key window every predicate hits (and deletes/updates
  /// arbitrary rows) while all clients read — so actual selectivities creep
  /// away from the chooser's statistics, which were computed once, before
  /// any mutation (the stale-stats scenario of Leis et al. replayed under
  /// writes).
  static std::vector<StreamPhase> MixedWritePhases(
      uint32_t queries_per_phase, uint32_t write_queries_per_phase);
};

/// Workload-level results, aggregated over every completed query.
struct WorkloadReport {
  uint64_t queries = 0;       ///< Read queries completed.
  uint64_t write_queries = 0; ///< Write queries completed.
  uint64_t write_ops = 0;     ///< Mutations applied (ops in write queries).
  uint64_t tuples = 0;
  double wall_ms = 0.0;  ///< Whole-run wall clock (all clients).
  double qps = 0.0;      ///< queries / wall seconds.
  double mean_latency_ms = 0.0;
  double p50_latency_ms = 0.0;
  double p95_latency_ms = 0.0;
  double p99_latency_ms = 0.0;
  double max_latency_ms = 0.0;
  double mean_queue_ms = 0.0;
  /// Summed per-query simulated cost — schedule-independent, so two runs of
  /// one configuration agree bit-for-bit regardless of concurrency. Two
  /// exceptions when a ScanSharingCoordinator is configured: shared-scan
  /// queries charge ~no I/O (the pass is paid on the engine's communal
  /// stream), and shared-SmoothScan savings depend on which pages peers had
  /// probed first — by design, sharing trades per-query cost isolation for
  /// aggregate I/O.
  double total_sim_time = 0.0;
  /// Summed per-query quota breaches (see QueryMetrics::mem_quota_breaches).
  /// Breaches shed batch storage, they never fail a query; a nonzero count
  /// under a quota is the memory governor visibly working.
  uint64_t mem_quota_breaches = 0;
  /// Largest single-query execution-memory peak observed.
  uint64_t mem_peak_bytes = 0;
  /// Queries that ran each PathKind (indexed by its enum value).
  uint64_t path_counts[kNumPathKinds] = {};
  /// Every query's metrics (reads and writes), concatenated client by
  /// client in each client's submission order — a deterministic order, so
  /// two runs of one configuration align entry for entry.
  std::vector<QueryMetrics> per_query;
  /// Broker state at run end, indexed by MemoryClass (zeros without
  /// WorkloadOptions::broker).
  uint64_t mem_class_bytes[kNumMemoryClasses] = {};
  uint64_t mem_peak_total_bytes = 0;
  uint64_t mem_pressure_epochs = 0;
  /// Final registry snapshot — every counter/gauge/histogram at run end,
  /// safe to keep after engine and registry are gone (empty without
  /// WorkloadOptions::metrics).
  obs::MetricsSnapshot metrics;
};

class WorkloadDriver {
 public:
  /// The driver borrows all three; they must outlive it. The QueryEngine's
  /// admission cap is the experiment's multi-programming level.
  WorkloadDriver(Engine* engine, const MicroBenchDb* db, QueryEngine* qe);

  /// Runs the closed loop to completion and aggregates the report.
  WorkloadReport Run(const WorkloadOptions& options);

 private:
  /// Mutable per-writer-client generation state (client 0 only).
  struct WriteGenState {
    int64_t next_c1 = 0;     ///< Unique primary-key counter for inserts.
    PageId target_pages = 0; ///< Update/delete Tids draw pages below this.
    uint32_t slot_range = 0; ///< ... and slots below this (misses skip).
  };

  QuerySpec SpecFor(const StreamPhase& phase, double selectivity,
                    const TableStats* phase_stats, const CostModel* model,
                    const WorkloadOptions& options) const;

  /// One write query's op batch, drawn deterministically from `rng`.
  std::vector<WriteOp> GenWriteOps(const StreamPhase& phase, Rng* rng,
                                   WriteGenState* state) const;

  Engine* engine_;
  const MicroBenchDb* db_;
  QueryEngine* qe_;
};

}  // namespace smoothscan

#endif  // SMOOTHSCAN_WORKLOAD_WORKLOAD_DRIVER_H_
