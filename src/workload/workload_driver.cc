#include "workload/workload_driver.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/rng.h"
#include "plan/table_stats.h"

namespace smoothscan {

const char* DriverPolicyToString(DriverPolicy policy) {
  switch (policy) {
    case DriverPolicy::kOptimizer:
      return "optimizer";
    case DriverPolicy::kSmoothScan:
      return "smooth";
    case DriverPolicy::kFullScan:
      return "full";
    case DriverPolicy::kIndexScan:
      return "index";
    case DriverPolicy::kSharedScan:
      return "shared";
  }
  return "?";
}

std::vector<StreamPhase> WorkloadOptions::DriftingPhases(
    uint32_t queries_per_phase) {
  // Phase 1: point-ish queries the frozen statistics estimate fine.
  StreamPhase trickle;
  trickle.selectivity_lo = 0.0005;
  trickle.selectivity_hi = 0.002;
  trickle.estimate_error = 1.0;
  trickle.queries = queries_per_phase;
  // Phase 2: the workload drifts to mid selectivity but the statistics lag
  // 100x behind — the optimizer keeps picking index-driven paths.
  StreamPhase drifted;
  drifted.selectivity_lo = 0.05;
  drifted.selectivity_hi = 0.2;
  drifted.estimate_error = 0.01;
  drifted.queries = queries_per_phase;
  // Phase 3: reporting-style queries, estimates off by 1000x.
  StreamPhase report;
  report.selectivity_lo = 0.5;
  report.selectivity_hi = 1.0;
  report.estimate_error = 0.001;
  report.queries = queries_per_phase;
  return {trickle, drifted, report};
}

std::vector<StreamPhase> WorkloadOptions::HotSpotPhases(
    uint32_t queries_per_client) {
  StreamPhase hot;
  hot.selectivity_lo = 0.3;
  hot.selectivity_hi = 0.8;
  hot.estimate_error = 1.0;  // Honest stats: the full pass is genuinely best.
  hot.queries = queries_per_client;
  return {hot};
}

WorkloadDriver::WorkloadDriver(Engine* engine, const MicroBenchDb* db,
                               QueryEngine* qe)
    : engine_(engine), db_(db), qe_(qe) {}

QuerySpec WorkloadDriver::SpecFor(const StreamPhase& phase, double selectivity,
                                  const TableStats* phase_stats,
                                  const CostModel* model,
                                  const WorkloadOptions& options) const {
  QuerySpec spec;
  spec.index = &db_->index();
  spec.predicate = db_->PredicateForSelectivity(selectivity);
  spec.dop = options.dop;
  spec.lane = phase.lane;
  switch (options.policy) {
    case DriverPolicy::kOptimizer:
      spec.use_chooser = true;
      spec.stats = phase_stats;
      spec.cost_model = model;
      break;
    case DriverPolicy::kSmoothScan:
      spec.kind = PathKind::kSmoothScan;
      break;
    case DriverPolicy::kFullScan:
      spec.kind = PathKind::kFullScan;
      break;
    case DriverPolicy::kIndexScan:
      spec.kind = PathKind::kIndexScan;
      break;
    case DriverPolicy::kSharedScan:
      spec.kind = PathKind::kSharedScan;
      break;
  }
  return spec;
}

WorkloadReport WorkloadDriver::Run(const WorkloadOptions& options) {
  SMOOTHSCAN_CHECK(options.clients >= 1);
  SMOOTHSCAN_CHECK(!options.phases.empty());

  // Statistics are computed once (the paper's frozen-stats scenario) and
  // corrupted per phase; each phase owns its copy so concurrent clients of
  // different phases never share mutable stats.
  const TableStats base =
      TableStats::Compute(db_->heap(), MicroBenchDb::kIndexedColumn);
  std::vector<TableStats> phase_stats;
  phase_stats.reserve(options.phases.size());
  for (const StreamPhase& phase : options.phases) {
    phase_stats.push_back(base);
    phase_stats.back().CorruptScale(phase.estimate_error);
  }
  CostModelParams params;
  params.num_tuples = db_->heap().num_tuples();
  params.tuple_size =
      engine_->options().page_size /
      std::max<uint64_t>(1, db_->heap().num_tuples() / db_->heap().num_pages());
  params.page_size = engine_->options().page_size;
  params.rand_cost = engine_->options().device.rand_cost;
  params.seq_cost = engine_->options().device.seq_cost;
  const CostModel model(params);

  // Closed loop: each client thread submits one query, waits for it, then
  // submits the next — the queue depth the engine sees is bounded by the
  // client count, and queue wait only appears once clients outnumber the
  // admission cap.
  std::vector<std::vector<QueryMetrics>> per_client(options.clients);
  const Rng root(options.seed);
  const auto wall_start = std::chrono::steady_clock::now();
  std::vector<std::thread> clients;
  clients.reserve(options.clients);
  for (uint32_t c = 0; c < options.clients; ++c) {
    clients.emplace_back([&, c] {
      Rng rng = root.Fork(c);
      std::vector<QueryMetrics>& out = per_client[c];
      for (size_t ph = 0; ph < options.phases.size(); ++ph) {
        const StreamPhase& phase = options.phases[ph];
        for (uint32_t q = 0; q < phase.queries; ++q) {
          const double sel = rng.UniformDouble(phase.selectivity_lo,
                                               phase.selectivity_hi);
          const QueryEngine::QueryId id = qe_->Submit(
              SpecFor(phase, sel, &phase_stats[ph], &model, options));
          QueryResult result = qe_->Wait(id);
          SMOOTHSCAN_CHECK(result.status.ok());
          out.push_back(result.metrics);
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  const auto wall_end = std::chrono::steady_clock::now();

  WorkloadReport report;
  report.wall_ms =
      std::chrono::duration<double, std::milli>(wall_end - wall_start).count();
  std::vector<double> latencies;
  for (const std::vector<QueryMetrics>& metrics : per_client) {
    for (const QueryMetrics& m : metrics) {
      ++report.queries;
      report.tuples += m.tuples;
      report.total_sim_time += m.sim_time;
      report.mean_latency_ms += m.latency_ms;
      report.mean_queue_ms += m.queue_wait_ms;
      report.max_latency_ms = std::max(report.max_latency_ms, m.latency_ms);
      ++report.path_counts[static_cast<int>(m.kind)];
      latencies.push_back(m.latency_ms);
      report.per_query.push_back(m);
    }
  }
  if (report.queries > 0) {
    report.mean_latency_ms /= static_cast<double>(report.queries);
    report.mean_queue_ms /= static_cast<double>(report.queries);
  }
  if (report.wall_ms > 0.0) {
    report.qps = static_cast<double>(report.queries) / (report.wall_ms / 1e3);
  }
  report.p50_latency_ms = LatencyPercentile(latencies, 0.50);
  report.p95_latency_ms = LatencyPercentile(latencies, 0.95);
  report.p99_latency_ms = LatencyPercentile(latencies, 0.99);
  return report;
}

}  // namespace smoothscan
