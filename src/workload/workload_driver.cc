#include "workload/workload_driver.h"

#include <algorithm>
#include <barrier>
#include <chrono>
#include <cinttypes>
#include <cstddef>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>

#include "common/rng.h"
#include "engine/session.h"
#include "net/server.h"
#include "net/wire_client.h"
#include "obs/sampler.h"
#include "plan/table_stats.h"

namespace smoothscan {
namespace {

void AppendI64(std::string* out, int64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%" PRId64, v);
  out->append(buf);
}

/// Wire-mode SELECT for the spec the in-process mode would have submitted.
std::string SelectText(const std::string& table, const QuerySpec& spec,
                       DriverPolicy policy) {
  std::string text = "SELECT * FROM " + table + " WHERE C";
  AppendI64(&text, spec.predicate.column);
  text += " >= ";
  AppendI64(&text, spec.predicate.lo);
  text += " AND C";
  AppendI64(&text, spec.predicate.column);
  text += " < ";
  AppendI64(&text, spec.predicate.hi);
  text += " WITH (POLICY=";
  switch (policy) {
    case DriverPolicy::kOptimizer:
      text += "auto";
      break;
    case DriverPolicy::kSmoothScan:
      text += "smooth";
      break;
    case DriverPolicy::kFullScan:
      text += "full";
      break;
    case DriverPolicy::kIndexScan:
      text += "index";
      break;
    case DriverPolicy::kSharedScan:
      text += "shared";
      break;
  }
  text += ", DOP=";
  AppendI64(&text, spec.dop);
  text += ", LANE=";
  text += spec.lane == QueryLane::kSla ? "sla" : "batch";
  text += ")";
  return text;
}

/// Wire-mode DML: one chained statement list (one batched write query
/// server-side, matching the in-process op batch exactly).
std::string WriteText(const std::string& table,
                      const std::vector<WriteOp>& ops) {
  std::string text;
  auto append_values = [&text](const Tuple& tuple) {
    text += " (";
    for (size_t i = 0; i < tuple.size(); ++i) {
      if (i != 0) text += ", ";
      AppendI64(&text, tuple[i].AsInt64());
    }
    text += ")";
  };
  auto append_tid = [&text](const Tid& tid) {
    text += " TID (";
    AppendI64(&text, tid.page_id);
    text += ", ";
    AppendI64(&text, tid.slot);
    text += ")";
  };
  for (const WriteOp& op : ops) {
    if (!text.empty()) text += "; ";
    switch (op.kind) {
      case WriteOp::Kind::kInsert:
        text += "INSERT INTO " + table + " VALUES";
        append_values(op.tuple);
        break;
      case WriteOp::Kind::kUpdate:
        text += "UPDATE " + table + " SET ROW";
        append_values(op.tuple);
        text += " WHERE";
        append_tid(op.tid);
        break;
      case WriteOp::Kind::kDelete:
        text += "DELETE FROM " + table + " WHERE";
        append_tid(op.tid);
        break;
    }
  }
  return text;
}

}  // namespace

const char* DriverPolicyToString(DriverPolicy policy) {
  switch (policy) {
    case DriverPolicy::kOptimizer:
      return "optimizer";
    case DriverPolicy::kSmoothScan:
      return "smooth";
    case DriverPolicy::kFullScan:
      return "full";
    case DriverPolicy::kIndexScan:
      return "index";
    case DriverPolicy::kSharedScan:
      return "shared";
  }
  return "?";
}

std::vector<StreamPhase> WorkloadOptions::DriftingPhases(
    uint32_t queries_per_phase) {
  // Phase 1: point-ish queries the frozen statistics estimate fine.
  StreamPhase trickle;
  trickle.selectivity_lo = 0.0005;
  trickle.selectivity_hi = 0.002;
  trickle.estimate_error = 1.0;
  trickle.queries = queries_per_phase;
  // Phase 2: the workload drifts to mid selectivity but the statistics lag
  // 100x behind — the optimizer keeps picking index-driven paths.
  StreamPhase drifted;
  drifted.selectivity_lo = 0.05;
  drifted.selectivity_hi = 0.2;
  drifted.estimate_error = 0.01;
  drifted.queries = queries_per_phase;
  // Phase 3: reporting-style queries, estimates off by 1000x.
  StreamPhase report;
  report.selectivity_lo = 0.5;
  report.selectivity_hi = 1.0;
  report.estimate_error = 0.001;
  report.queries = queries_per_phase;
  return {trickle, drifted, report};
}

std::vector<StreamPhase> WorkloadOptions::HotSpotPhases(
    uint32_t queries_per_client) {
  StreamPhase hot;
  hot.selectivity_lo = 0.3;
  hot.selectivity_hi = 0.8;
  hot.estimate_error = 1.0;  // Honest stats: the full pass is genuinely best.
  hot.queries = queries_per_client;
  return {hot};
}

std::vector<StreamPhase> WorkloadOptions::MixedWritePhases(
    uint32_t queries_per_phase, uint32_t write_queries_per_phase) {
  // The statistics are computed once, before any write; the phases then
  // mutate the low-key range the read predicates cover, so the true
  // qualifying counts drift away under the chooser's feet even at
  // estimate_error = 1 ("honest but stale").
  StreamPhase warm;  // Insert-heavy: the hot range densifies.
  warm.selectivity_lo = 0.02;
  warm.selectivity_hi = 0.1;
  warm.queries = queries_per_phase;
  warm.write_queries = write_queries_per_phase;
  warm.insert_sel_lo = 0.0;
  warm.insert_sel_hi = 0.1;
  warm.insert_weight = 4.0;
  warm.update_weight = 1.0;
  warm.delete_weight = 1.0;
  StreamPhase churn;  // Balanced churn at mid selectivity.
  churn.selectivity_lo = 0.05;
  churn.selectivity_hi = 0.25;
  churn.queries = queries_per_phase;
  churn.write_queries = write_queries_per_phase;
  churn.insert_sel_lo = 0.0;
  churn.insert_sel_hi = 0.3;
  churn.insert_weight = 1.0;
  churn.update_weight = 2.0;
  churn.delete_weight = 1.0;
  StreamPhase thin;  // Delete-heavy: the hot range hollows out again.
  thin.selectivity_lo = 0.1;
  thin.selectivity_hi = 0.4;
  thin.queries = queries_per_phase;
  thin.write_queries = write_queries_per_phase;
  thin.insert_sel_lo = 0.5;
  thin.insert_sel_hi = 1.0;
  thin.insert_weight = 1.0;
  thin.update_weight = 1.0;
  thin.delete_weight = 4.0;
  return {warm, churn, thin};
}

WorkloadDriver::WorkloadDriver(Engine* engine, const MicroBenchDb* db,
                               QueryEngine* qe)
    : engine_(engine), db_(db), qe_(qe) {}

QuerySpec WorkloadDriver::SpecFor(const StreamPhase& phase, double selectivity,
                                  const TableStats* phase_stats,
                                  const CostModel* model,
                                  const WorkloadOptions& options) const {
  QuerySpec spec;
  spec.index = &db_->index();
  spec.predicate = db_->PredicateForSelectivity(selectivity);
  spec.dop = options.dop;
  spec.lane = phase.lane;
  switch (options.policy) {
    case DriverPolicy::kOptimizer:
      spec.use_chooser = true;
      spec.stats = phase_stats;
      spec.cost_model = model;
      break;
    case DriverPolicy::kSmoothScan:
      spec.kind = PathKind::kSmoothScan;
      break;
    case DriverPolicy::kFullScan:
      spec.kind = PathKind::kFullScan;
      break;
    case DriverPolicy::kIndexScan:
      spec.kind = PathKind::kIndexScan;
      break;
    case DriverPolicy::kSharedScan:
      spec.kind = PathKind::kSharedScan;
      break;
  }
  return spec;
}

std::vector<WriteOp> WorkloadDriver::GenWriteOps(const StreamPhase& phase,
                                                 Rng* rng,
                                                 WriteGenState* state) const {
  const Schema& schema = db_->heap().schema();
  const int64_t value_max = db_->value_max();
  const double total_weight =
      phase.insert_weight + phase.update_weight + phase.delete_weight;
  // Insert and update payloads share one generator: unique c1, indexed key
  // from the phase's drift window, the rest uniform like the table's.
  auto drift_tuple = [&] {
    Tuple tuple(schema.num_columns());
    tuple[0] = Value::Int64(state->next_c1++);
    const double frac =
        rng->UniformDouble(phase.insert_sel_lo, phase.insert_sel_hi);
    tuple[MicroBenchDb::kIndexedColumn] = Value::Int64(
        static_cast<int64_t>(frac * static_cast<double>(value_max)));
    for (size_t c = 2; c < schema.num_columns(); ++c) {
      tuple[c] = Value::Int64(rng->UniformInt(0, value_max));
    }
    return tuple;
  };
  std::vector<WriteOp> ops;
  ops.reserve(phase.write_ops);
  for (uint32_t i = 0; i < phase.write_ops; ++i) {
    const double pick = rng->UniformDouble() * total_weight;
    if (pick < phase.insert_weight || total_weight == 0.0) {
      ops.push_back(WriteOp::MakeInsert(drift_tuple()));
      continue;
    }
    // Update/delete target a uniformly drawn Tid over the table's original
    // extent. A draw landing on a dead (or never-populated) slot is applied
    // as a deterministic no-op — the op *stream* stays a pure function of
    // the seed either way.
    const Tid tid{
        static_cast<PageId>(rng->UniformInt(0, state->target_pages - 1)),
        static_cast<SlotId>(rng->UniformInt(0, state->slot_range - 1))};
    if (pick < phase.insert_weight + phase.update_weight) {
      ops.push_back(WriteOp::MakeUpdate(tid, drift_tuple()));
    } else {
      ops.push_back(WriteOp::MakeDelete(tid));
    }
  }
  return ops;
}

WorkloadReport WorkloadDriver::Run(const WorkloadOptions& options) {
  SMOOTHSCAN_CHECK(options.clients >= 1);
  SMOOTHSCAN_CHECK(!options.phases.empty());
  bool any_writes = false;
  for (const StreamPhase& phase : options.phases) {
    any_writes = any_writes || phase.write_queries > 0;
  }
  SMOOTHSCAN_CHECK(!any_writes || options.writer != nullptr);

  // Statistics are computed once (the paper's frozen-stats scenario) and
  // corrupted per phase; each phase owns its copy so concurrent clients of
  // different phases never share mutable stats.
  const TableStats base =
      TableStats::Compute(db_->heap(), MicroBenchDb::kIndexedColumn);
  std::vector<TableStats> phase_stats;
  phase_stats.reserve(options.phases.size());
  for (const StreamPhase& phase : options.phases) {
    phase_stats.push_back(base);
    phase_stats.back().CorruptScale(phase.estimate_error);
  }
  CostModelParams params;
  params.num_tuples = db_->heap().num_tuples();
  params.tuple_size =
      engine_->options().page_size /
      std::max<uint64_t>(1, db_->heap().num_tuples() / db_->heap().num_pages());
  params.page_size = engine_->options().page_size;
  params.rand_cost = engine_->options().device.rand_cost;
  params.seq_cost = engine_->options().device.seq_cost;
  const CostModel model(params);

  // Closed loop: each client thread submits one query, waits for it, then
  // submits the next — the queue depth the engine sees is bounded by the
  // client count, and queue wait only appears once clients outnumber the
  // admission cap. Client 0 doubles as the writer client in phases with a
  // write mix, interleaving write queries proportionally among its reads.
  const FileId table = db_->heap().file_id();
  const bool pin_phases = options.versions != nullptr && options.phase_barrier;
  TableVersionRegistry::ReadLease phase_lease;
  if (pin_phases) phase_lease = options.versions->AcquireRead(table);
  // Phase barrier: the completion step (run by exactly one thread, between
  // generations) rotates the snapshot lease, so pending eras publish at the
  // boundary and nowhere else.
  size_t completed_phases = 0;
  auto rotate_lease = [&]() noexcept {
    ++completed_phases;
    if (!pin_phases) return;
    phase_lease.Release();
    if (completed_phases < options.phases.size()) {
      phase_lease = options.versions->AcquireRead(table);
    }
  };
  std::barrier barrier(static_cast<std::ptrdiff_t>(options.clients),
                       rotate_lease);

  // Update/delete targets draw over the table's extent at workload start —
  // frozen here so the op stream is identical however many phases already
  // ran in another configuration of the same seed.
  WriteGenState write_state;
  write_state.next_c1 = static_cast<int64_t>(db_->heap().num_tuples());
  write_state.target_pages = static_cast<PageId>(db_->heap().num_pages());
  write_state.slot_range = static_cast<uint32_t>(std::max<uint64_t>(
      1, 2 * db_->heap().num_tuples() /
             std::max<uint64_t>(1, db_->heap().num_pages())));

  // Periodic snapshot reporter: while the clients run, a sampler thread
  // pulls broker/sharing state into registry gauges every tick; Stop()
  // samples once more, so the report's snapshot is the end state.
  std::unique_ptr<obs::RegistrySampler> sampler;
  if (options.metrics != nullptr) {
    obs::RegistrySampler::Sources sources;
    sources.registry = options.metrics;
    sources.broker = options.broker;
    sources.sharing = options.sharing;
    sampler = std::make_unique<obs::RegistrySampler>(sources);
    sampler->Start(std::chrono::milliseconds(options.snapshot_period_ms));
  }

  std::vector<std::vector<QueryMetrics>> per_client(options.clients);
  const Rng root(options.seed);
  const auto wall_start = std::chrono::steady_clock::now();
  std::vector<std::thread> clients;
  clients.reserve(options.clients);
  for (uint32_t c = 0; c < options.clients; ++c) {
    clients.emplace_back([&, c] {
      Rng rng = root.Fork(c);
      std::vector<QueryMetrics>& out = per_client[c];
      // Each client is one tenant: a Session in-process, or a pipe
      // connection to the front-end in wire mode. Either way the closed
      // loop submits, waits, repeats — the engine sees the same stream.
      SessionOptions session_options;
      session_options.name = "driver-client";
      Session session(qe_, session_options);
      std::unique_ptr<net::WireClient> wire;
      if (options.server != nullptr) {
        wire = std::make_unique<net::WireClient>(
            options.server->ConnectPipe());
      }
      for (size_t ph = 0; ph < options.phases.size(); ++ph) {
        const StreamPhase& phase = options.phases[ph];
        const bool writer_client =
            c == 0 && options.writer != nullptr && phase.write_queries > 0;
        uint32_t reads = 0;
        uint32_t writes = 0;
        while (reads < phase.queries ||
               (writer_client && writes < phase.write_queries)) {
          const bool do_write =
              writer_client && writes < phase.write_queries &&
              (reads >= phase.queries ||
               static_cast<uint64_t>(writes) * phase.queries <=
                   static_cast<uint64_t>(reads) * phase.write_queries);
          QueryResult result;
          if (do_write) {
            std::vector<WriteOp> ops = GenWriteOps(phase, &rng, &write_state);
            if (wire != nullptr) {
              net::WireResult wr =
                  wire->Wait(wire->Submit(WriteText(options.wire_table, ops)));
              result.status = wr.status;
              result.metrics = wr.metrics;
            } else {
              result = session.Query()
                           .Write(options.writer, std::move(ops))
                           .Lane(phase.lane)
                           .Run();
            }
            ++writes;
          } else {
            const double sel = rng.UniformDouble(phase.selectivity_lo,
                                                 phase.selectivity_hi);
            QuerySpec spec =
                SpecFor(phase, sel, &phase_stats[ph], &model, options);
            if (wire != nullptr) {
              net::WireResult wr = wire->Wait(wire->Submit(
                  SelectText(options.wire_table, spec, options.policy)));
              result.status = wr.status;
              result.metrics = wr.metrics;
            } else {
              result = session.Query().FromSpec(std::move(spec)).Run();
            }
            ++reads;
          }
          SMOOTHSCAN_CHECK(result.status.ok());
          out.push_back(result.metrics);
        }
        if (options.phase_barrier) barrier.arrive_and_wait();
      }
    });
  }
  for (std::thread& t : clients) t.join();
  phase_lease.Release();
  const auto wall_end = std::chrono::steady_clock::now();
  // After the wall-clock stamp so the final synchronous sample never
  // inflates wall_ms.
  if (sampler != nullptr) sampler->Stop();

  WorkloadReport report;
  report.wall_ms =
      std::chrono::duration<double, std::milli>(wall_end - wall_start).count();
  std::vector<double> latencies;
  for (const std::vector<QueryMetrics>& metrics : per_client) {
    for (const QueryMetrics& m : metrics) {
      report.total_sim_time += m.sim_time;
      report.mem_quota_breaches += m.mem_quota_breaches;
      report.mem_peak_bytes = std::max(report.mem_peak_bytes, m.mem_peak_bytes);
      report.per_query.push_back(m);
      if (m.write) {
        // Writes are tracked apart so the classic read-side metrics stay
        // comparable with read-only configurations.
        ++report.write_queries;
        report.write_ops += m.tuples;
        continue;
      }
      ++report.queries;
      report.tuples += m.tuples;
      report.mean_latency_ms += m.latency_ms;
      report.mean_queue_ms += m.queue_wait_ms;
      report.max_latency_ms = std::max(report.max_latency_ms, m.latency_ms);
      ++report.path_counts[static_cast<int>(m.kind)];
      latencies.push_back(m.latency_ms);
    }
  }
  if (report.queries > 0) {
    report.mean_latency_ms /= static_cast<double>(report.queries);
    report.mean_queue_ms /= static_cast<double>(report.queries);
  }
  if (report.wall_ms > 0.0) {
    report.qps = static_cast<double>(report.queries) / (report.wall_ms / 1e3);
  }
  report.p50_latency_ms = LatencyPercentile(latencies, 0.50);
  report.p95_latency_ms = LatencyPercentile(latencies, 0.95);
  report.p99_latency_ms = LatencyPercentile(latencies, 0.99);
  if (options.broker != nullptr) {
    report.mem_peak_total_bytes = options.broker->peak_total_bytes();
    report.mem_pressure_epochs = options.broker->pressure_epoch();
    for (size_t i = 0; i < kNumMemoryClasses; ++i) {
      report.mem_class_bytes[i] =
          options.broker->class_bytes(static_cast<MemoryClass>(i));
    }
  }
  if (options.metrics != nullptr) {
    report.metrics = options.metrics->Snapshot();
  }
  return report;
}

}  // namespace smoothscan
