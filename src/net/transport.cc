#include "net/transport.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <condition_variable>
#include <cstring>
#include <memory>
#include <string>

#include "common/latch_rank.h"
#include "common/thread_annotations.h"

namespace smoothscan {
namespace net {
namespace {

// ---------------------------------------------------------------------------
// In-process pipe pair.

/// Shared state of a pipe pair: one byte buffer per direction. Endpoint
/// `side` writes buf[side] and reads buf[1 - side]. Buffers are unbounded —
/// flow control belongs to the frame/session layers, and in-process peers
/// drain promptly.
struct PipeCore {
  latch::Latch mu{latch::LatchRank::kNetPipe, "net::PipeCore::mu"};
  std::condition_variable_any cv;
  std::string buf[2] GUARDED_BY(mu);
  size_t head[2] GUARDED_BY(mu) = {0, 0};
  bool closed GUARDED_BY(mu) = false;
};

class PipeEndpoint : public Transport {
 public:
  PipeEndpoint(std::shared_ptr<PipeCore> core, int side)
      : core_(std::move(core)), side_(side) {}
  ~PipeEndpoint() override { Shutdown(); }

  int Read(char* buf, size_t n) override {
    latch::UniqueLatch lock(core_->mu);
    std::string& b = core_->buf[1 - side_];
    size_t& head = core_->head[1 - side_];
    while (head == b.size() && !core_->closed) core_->cv.wait(lock);
    if (head == b.size()) return 0;  // Closed and drained: EOF.
    const size_t take = std::min(n, b.size() - head);
    std::memcpy(buf, b.data() + head, take);
    head += take;
    if (head == b.size()) {
      b.clear();
      head = 0;
    }
    return static_cast<int>(take);
  }

  bool WriteAll(const char* buf, size_t n) override {
    latch::LatchGuard lock(core_->mu);
    if (core_->closed) return false;
    core_->buf[side_].append(buf, n);
    core_->cv.notify_all();
    return true;
  }

  void Shutdown() override {
    latch::LatchGuard lock(core_->mu);
    core_->closed = true;
    core_->cv.notify_all();
  }

 private:
  std::shared_ptr<PipeCore> core_;
  const int side_;
};

// ---------------------------------------------------------------------------
// POSIX TCP.

class TcpTransport : public Transport {
 public:
  explicit TcpTransport(int fd) : fd_(fd) {
    const int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  }
  ~TcpTransport() override {
    Shutdown();
    ::close(fd_);
  }

  int Read(char* buf, size_t n) override {
    for (;;) {
      const ssize_t r = ::recv(fd_, buf, n, 0);
      if (r >= 0) return static_cast<int>(r);
      if (errno == EINTR) continue;
      return shut_.load(std::memory_order_relaxed) ? 0 : -1;
    }
  }

  bool WriteAll(const char* buf, size_t n) override {
    size_t off = 0;
    while (off < n) {
      const ssize_t w = ::send(fd_, buf + off, n - off, MSG_NOSIGNAL);
      if (w < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      off += static_cast<size_t>(w);
    }
    return true;
  }

  void Shutdown() override {
    shut_.store(true, std::memory_order_relaxed);
    ::shutdown(fd_, SHUT_RDWR);
  }

 private:
  const int fd_;
  std::atomic<bool> shut_{false};
};

}  // namespace

std::pair<std::unique_ptr<Transport>, std::unique_ptr<Transport>>
MakePipePair() {
  auto core = std::make_shared<PipeCore>();
  return {std::make_unique<PipeEndpoint>(core, 0),
          std::make_unique<PipeEndpoint>(core, 1)};
}

std::unique_ptr<TcpListener> TcpListener::Listen(uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return nullptr;
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(fd, 64) != 0) {
    ::close(fd);
    return nullptr;
  }
  socklen_t len = sizeof addr;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    ::close(fd);
    return nullptr;
  }
  return std::unique_ptr<TcpListener>(
      new TcpListener(fd, ntohs(addr.sin_port)));
}

TcpListener::~TcpListener() { Close(); }

std::unique_ptr<Transport> TcpListener::Accept() {
  for (;;) {
    const int cfd = ::accept(fd_, nullptr, nullptr);
    if (cfd >= 0) return std::make_unique<TcpTransport>(cfd);
    if (errno == EINTR) continue;
    return nullptr;
  }
}

void TcpListener::Close() {
  if (fd_ >= 0) {
    ::shutdown(fd_, SHUT_RDWR);
    ::close(fd_);
    fd_ = -1;
  }
}

std::unique_ptr<Transport> TcpListener::Connect(uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return nullptr;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return nullptr;
  }
  return std::make_unique<TcpTransport>(fd);
}

}  // namespace net
}  // namespace smoothscan
