#include "net/wire_client.h"

#include <cinttypes>
#include <cstdio>
#include <utility>

namespace smoothscan {
namespace net {
namespace {

void SendFrame(Transport* t, FrameType type, std::string payload) {
  Frame frame;
  frame.type = type;
  frame.payload = std::move(payload);
  std::string wire;
  EncodeFrame(frame, &wire);
  t->WriteAll(wire.data(), wire.size());
}

}  // namespace

void WireClient::Hello(const std::string& lane, uint32_t window) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "LANE=%s WINDOW=%u", lane.c_str(), window);
  SendFrame(transport_.get(), FrameType::kHello, buf);
}

uint64_t WireClient::Submit(const std::string& text) {
  const uint64_t tag = next_tag_++;
  pending_[tag];  // Open the accumulator before any frame can arrive.
  SendFrame(transport_.get(), FrameType::kQuery, EncodeTagged(tag, text));
  return tag;
}

void WireClient::Cancel(uint64_t tag) {
  SendFrame(transport_.get(), FrameType::kCancel, EncodeTagged(tag, {}));
}

WireResult WireClient::Wait(uint64_t tag) {
  auto it = pending_.find(tag);
  if (it == pending_.end()) return WireResult{};
  while (!it->second.complete && !down_) {
    if (!PumpOnce()) down_ = true;
  }
  WireResult result = std::move(it->second);
  pending_.erase(it);
  return result;
}

std::string WireClient::MetricsText() {
  metrics_ready_ = false;
  metrics_text_.clear();
  SendFrame(transport_.get(), FrameType::kMetrics, EncodeTagged(0, {}));
  while (!metrics_ready_ && !down_) {
    if (!PumpOnce()) down_ = true;
  }
  return std::move(metrics_text_);
}

void WireClient::Close() {
  if (transport_ != nullptr) transport_->Shutdown();
}

bool WireClient::PumpOnce() {
  char buf[4096];
  const int n = transport_->Read(buf, sizeof buf);
  if (n <= 0) return false;
  if (!decoder_.Feed(buf, static_cast<size_t>(n)).ok()) return false;
  Frame frame;
  while (decoder_.Pop(&frame)) Dispatch(frame);
  return true;
}

void WireClient::Dispatch(const Frame& frame) {
  switch (frame.type) {
    case FrameType::kBatch: {
      uint64_t tag = 0;
      std::vector<std::vector<int64_t>> rows;
      if (!ParseBatchPayload(frame.payload, &tag, &rows).ok()) return;
      auto it = pending_.find(tag);
      if (it == pending_.end()) return;
      for (auto& row : rows) it->second.rows.push_back(std::move(row));
      return;
    }
    case FrameType::kDone: {
      uint64_t tag = 0;
      QueryResult result;
      if (!ParseDonePayload(frame.payload, &tag, &result).ok()) return;
      auto it = pending_.find(tag);
      if (it == pending_.end()) return;
      it->second.complete = true;
      it->second.status = std::move(result.status);
      it->second.metrics = result.metrics;
      it->second.keys = std::move(result.keys);
      return;
    }
    case FrameType::kError: {
      uint64_t tag = 0;
      std::string_view message;
      if (!ParseTagged(frame.payload, &tag, &message).ok()) return;
      if (tag == 0) {
        // Connection-level error: every in-flight query is dead.
        for (auto& [t, r] : pending_) {
          if (!r.complete) {
            r.complete = true;
            r.status = Status::InvalidArgument(std::string(message));
          }
        }
        return;
      }
      auto it = pending_.find(tag);
      if (it == pending_.end()) return;
      it->second.complete = true;
      it->second.status = Status::InvalidArgument(std::string(message));
      return;
    }
    case FrameType::kMetricsText: {
      uint64_t tag = 0;
      std::string_view text;
      if (!ParseTagged(frame.payload, &tag, &text).ok()) return;
      metrics_text_ = std::string(text);
      metrics_ready_ = true;
      return;
    }
    default:
      return;  // Client-to-server type echoed back: ignore.
  }
}

}  // namespace net
}  // namespace smoothscan
