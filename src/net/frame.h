// Wire frames of the network front-end: a length-prefixed binary envelope
// around text payloads.
//
//   [u32 LE payload length][u8 frame type][payload bytes]
//
// Client → server: HELLO (session setup), QUERY ("<tag> <query text>" — see
// plan/query_text.h for the grammar), CANCEL ("<tag>"), METRICS (empty).
// Server → client: BATCH ("<tag> r0c0,r0c1|r1c0,..."), DONE ("<tag>
// key=value..." carrying the full QueryResult with %.17g doubles so the
// simulated-cost accounting round-trips bit-identically), ERROR ("<tag>
// <message>"; tag 0 = connection-level), METRICS_TEXT (registry dump).
//
// The payload cap bounds a connection's buffering; an oversized or
// unrecognized header is unrecoverable framing (the decoder cannot resync a
// byte stream) and closes that connection — the server itself stays up.

#ifndef SMOOTHSCAN_NET_FRAME_H_
#define SMOOTHSCAN_NET_FRAME_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/tuple_batch.h"
#include "engine/query_engine.h"

namespace smoothscan {
namespace net {

enum class FrameType : uint8_t {
  // Client → server.
  kHello = 1,
  kQuery = 2,
  kCancel = 3,
  kMetrics = 4,
  // Server → client.
  kBatch = 16,
  kDone = 17,
  kError = 18,
  kMetricsText = 19,
};

/// Largest accepted payload (1 MiB). Result batches are far smaller; query
/// text larger than this is hostile input.
inline constexpr uint32_t kMaxFramePayload = 1u << 20;

struct Frame {
  FrameType type = FrameType::kError;
  std::string payload;
};

/// Appends the wire encoding of `frame` to `wire`.
void EncodeFrame(const Frame& frame, std::string* wire);

/// Incremental decoder over a connection's byte stream. Feed() appends raw
/// bytes and validates each header as soon as it is complete; Pop() yields
/// finished frames. After a Feed() error the decoder is poisoned — the
/// stream cannot be resynchronized.
class FrameDecoder {
 public:
  /// kInvalidArgument on an oversized length or an unknown frame type.
  Status Feed(const char* data, size_t n);
  bool Pop(Frame* out);

 private:
  std::string buf_;
  size_t pos_ = 0;  ///< Consumption cursor (compacted when fully drained).
  bool poisoned_ = false;
};

// --- payload codecs -------------------------------------------------------
// All request/response payloads start with a decimal client-chosen tag.

/// "<tag> <text>".
std::string EncodeTagged(uint64_t tag, std::string_view text);
/// Splits "<tag> <rest>"; rest may be empty.
Status ParseTagged(std::string_view payload, uint64_t* tag,
                   std::string_view* rest);

/// Result rows (all-INT64 tuples): "r0c0,r0c1|r1c0,r1c1|...".
std::string EncodeBatchPayload(uint64_t tag, const TupleBatch& batch);
Status ParseBatchPayload(std::string_view payload, uint64_t* tag,
                         std::vector<std::vector<int64_t>>* rows);

/// The full QueryResult as key=value pairs. Doubles are printed with %.17g,
/// so the simulated-cost fields parse back bit-identically — the property
/// the wire-vs-direct differential test pins.
std::string EncodeDonePayload(uint64_t tag, const QueryResult& result);
Status ParseDonePayload(std::string_view payload, uint64_t* tag,
                        QueryResult* result);

}  // namespace net
}  // namespace smoothscan

#endif  // SMOOTHSCAN_NET_FRAME_H_
