// WireClient: the client half of the frame protocol — submit query text,
// stream result rows, cancel, fetch the server's metrics dump. One client
// drives one connection and is single-threaded by design (the benches run
// one client per simulated tenant thread); multiple queries may be in
// flight on the connection, demultiplexed by tag.
//
// The DONE frame carries the query's full QueryResult with %.17g doubles,
// so WireResult::metrics round-trips the engine's simulated-cost accounting
// bit-identically — the property the wire-vs-direct differential test pins.

#ifndef SMOOTHSCAN_NET_WIRE_CLIENT_H_
#define SMOOTHSCAN_NET_WIRE_CLIENT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/frame.h"
#include "net/transport.h"

namespace smoothscan {
namespace net {

/// Everything one query produced over the wire.
struct WireResult {
  /// False when the connection died before the query's DONE arrived (the
  /// remaining fields are whatever had arrived by then).
  bool complete = false;
  Status status;          ///< The engine's status (or the server's error).
  QueryMetrics metrics;   ///< Bit-identical to the engine's accounting.
  std::vector<std::vector<int64_t>> rows;  ///< Streamed result rows.
  std::vector<int64_t> keys;               ///< KEYS=1 queries.
};

class WireClient {
 public:
  explicit WireClient(std::unique_ptr<Transport> transport)
      : transport_(std::move(transport)) {}
  ~WireClient() { Close(); }

  WireClient(const WireClient&) = delete;
  WireClient& operator=(const WireClient&) = delete;

  /// Session setup: tenant lane and outstanding-query window. Fire-and-forget
  /// (the server applies it before any later query on this connection).
  void Hello(const std::string& lane, uint32_t window);

  /// Submits query text (see plan/query_text.h for the grammar); returns the
  /// tag to Wait()/Cancel() on. Does not block on execution.
  uint64_t Submit(const std::string& text);

  /// Requests cancellation of an in-flight query; its Wait() still returns
  /// (with cancelled metrics, or complete results if it won the race).
  void Cancel(uint64_t tag);

  /// Blocks until `tag`'s DONE or ERROR frame arrives (reading and demuxing
  /// frames for other in-flight tags along the way) and returns its result.
  WireResult Wait(uint64_t tag);

  /// The server's metrics dump ("name value" lines); empty without a
  /// registry. Round-trips through the METRICS frame.
  std::string MetricsText();

  /// Shuts the connection down (the server cancels whatever was in flight).
  void Close();

 private:
  /// Reads one transport chunk and dispatches every completed frame. False
  /// on EOF/error.
  bool PumpOnce();
  void Dispatch(const Frame& frame);

  std::unique_ptr<Transport> transport_;
  FrameDecoder decoder_;
  uint64_t next_tag_ = 1;
  std::unordered_map<uint64_t, WireResult> pending_;
  std::string metrics_text_;
  bool metrics_ready_ = false;
  bool down_ = false;
};

}  // namespace net
}  // namespace smoothscan

#endif  // SMOOTHSCAN_NET_WIRE_CLIENT_H_
