#include "net/server.h"

#include <algorithm>
#include <cctype>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <string_view>
#include <utility>

#include "obs/metrics.h"

namespace smoothscan {
namespace net {
namespace {

constexpr auto kRelaxed = std::memory_order_relaxed;

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

}  // namespace

Server::Server(QueryEngine* engine, const QueryCatalog* catalog,
               ServerOptions options)
    : engine_(engine),
      catalog_(catalog),
      options_(std::move(options)),
      broker_(options_.broker != nullptr ? options_.broker
                                         : engine_->options().broker) {}

Server::~Server() { Stop(); }

void Server::Serve(std::unique_ptr<Transport> transport) {
  latch::LatchGuard lock(mu_);
  if (stopped_) return;  // Late arrival during shutdown: drop it.
  // Reap connections whose reader already finished (their threads are done;
  // join is immediate).
  for (auto it = conns_.begin(); it != conns_.end();) {
    if ((*it)->done.load(kRelaxed)) {
      if ((*it)->reader.joinable()) (*it)->reader.join();
      it = conns_.erase(it);
    } else {
      ++it;
    }
  }
  conns_.push_back(std::make_unique<Conn>(engine_, std::move(transport),
                                          options_.session));
  Conn* conn = conns_.back().get();
  conn->lane = options_.session.lane;
  conn->configured_window = options_.session.max_outstanding;
  connections_opened_.fetch_add(1, kRelaxed);
  conn->reader = std::thread([this, conn] { ReaderLoop(conn); });
}

std::unique_ptr<Transport> Server::ConnectPipe() {
  auto [server_end, client_end] = MakePipePair();
  Serve(std::move(server_end));
  return std::move(client_end);
}

bool Server::ListenTcp(uint16_t port) {
  auto listener = TcpListener::Listen(port);
  if (listener == nullptr) return false;
  listener_ = std::move(listener);
  acceptor_ = std::thread([this] { AcceptLoop(); });
  return true;
}

uint16_t Server::tcp_port() const {
  return listener_ != nullptr ? listener_->port() : 0;
}

void Server::AcceptLoop() {
  for (;;) {
    std::unique_ptr<Transport> t = listener_->Accept();
    if (t == nullptr) return;  // Listener closed.
    Serve(std::move(t));
  }
}

void Server::Stop() {
  {
    latch::LatchGuard lock(mu_);
    if (stopped_) return;
    stopped_ = true;
  }
  if (listener_ != nullptr) listener_->Close();
  if (acceptor_.joinable()) acceptor_.join();
  std::vector<Conn*> conns;
  {
    latch::LatchGuard lock(mu_);
    for (auto& c : conns_) {
      c->transport->Shutdown();
      conns.push_back(c.get());
    }
  }
  for (Conn* c : conns) {
    if (c->reader.joinable()) c->reader.join();
  }
  latch::LatchGuard lock(mu_);
  conns_.clear();
}

ServerStats Server::stats() const {
  ServerStats s;
  s.connections_opened = connections_opened_.load(kRelaxed);
  s.queries_ok = queries_ok_.load(kRelaxed);
  s.queries_error = queries_error_.load(kRelaxed);
  s.queries_cancelled = queries_cancelled_.load(kRelaxed);
  s.frames_malformed = frames_malformed_.load(kRelaxed);
  s.backpressure_shrinks = backpressure_shrinks_.load(kRelaxed);
  s.window_stalls = closed_window_stalls_.load(kRelaxed);
  latch::LatchGuard lock(mu_);
  for (const auto& c : conns_) {
    if (!c->done.load(kRelaxed)) {
      ++s.connections_active;
      s.window_stalls += c->session.window_stalls();
    }
  }
  return s;
}

void Server::ReaderLoop(Conn* conn) {
  char buf[4096];
  FrameDecoder decoder;
  for (;;) {
    const int n = conn->transport->Read(buf, sizeof buf);
    if (n <= 0) break;  // EOF / shutdown / error.
    Status s = decoder.Feed(buf, static_cast<size_t>(n));
    if (!s.ok()) {
      // Unrecoverable framing (oversized length, unknown type): report and
      // close this connection; the server itself keeps serving.
      frames_malformed_.fetch_add(1, kRelaxed);
      WriteFrame(conn, FrameType::kError, EncodeTagged(0, s.message()));
      break;
    }
    Frame frame;
    while (decoder.Pop(&frame)) HandleFrame(conn, frame);
  }
  TeardownConn(conn);
  conn->done.store(true, kRelaxed);
}

void Server::HandleFrame(Conn* conn, const Frame& frame) {
  switch (frame.type) {
    case FrameType::kHello: {
      // "LANE=batch|sla WINDOW=n" (either optional; unknown keys ignored).
      std::string_view body = frame.payload;
      while (!body.empty()) {
        const size_t sp = body.find(' ');
        std::string_view tok = body.substr(0, sp);
        const size_t eq = tok.find('=');
        if (eq != std::string_view::npos) {
          std::string_view key = tok.substr(0, eq);
          std::string_view val = tok.substr(eq + 1);
          if (EqualsIgnoreCase(key, "LANE")) {
            conn->lane = EqualsIgnoreCase(val, "sla") ? QueryLane::kSla
                                                      : QueryLane::kBatch;
          } else if (EqualsIgnoreCase(key, "WINDOW")) {
            const int w = std::atoi(std::string(val).c_str());
            if (w >= 1) {
              conn->configured_window = static_cast<uint32_t>(w);
              conn->session.SetWindow(conn->configured_window);
            }
          }
        }
        if (sp == std::string_view::npos) break;
        body.remove_prefix(sp + 1);
      }
      return;
    }
    case FrameType::kQuery: {
      uint64_t tag = 0;
      std::string_view text;
      Status s = ParseTagged(frame.payload, &tag, &text);
      if (!s.ok()) {
        queries_error_.fetch_add(1, kRelaxed);
        WriteFrame(conn, FrameType::kError, EncodeTagged(0, s.message()));
        return;
      }
      HandleQuery(conn, tag, text);
      return;
    }
    case FrameType::kCancel: {
      uint64_t tag = 0;
      std::string_view rest;
      if (!ParseTagged(frame.payload, &tag, &rest).ok()) return;
      std::shared_ptr<QueryHandle> handle;
      {
        latch::LatchGuard lock(conn->mu);
        auto it = conn->active.find(tag);
        if (it != conn->active.end()) handle = it->second;
      }
      // Outside the conn latch: Cancel reaches the engine latch.
      if (handle != nullptr) handle->Cancel();
      return;
    }
    case FrameType::kMetrics: {
      uint64_t tag = 0;
      std::string_view rest;
      if (!ParseTagged(frame.payload, &tag, &rest).ok()) return;
      std::string text;
      obs::MetricsRegistry* registry = engine_->options().metrics;
      if (registry != nullptr) {
        const obs::MetricsSnapshot snap = registry->Snapshot();
        char line[160];
        for (const obs::MetricValue& v : snap.values) {
          const int n = std::snprintf(line, sizeof line, "%s %.17g\n",
                                      v.name.c_str(), v.value);
          if (n > 0) text.append(line, static_cast<size_t>(n));
        }
      }
      WriteFrame(conn, FrameType::kMetricsText, EncodeTagged(tag, text));
      return;
    }
    default:
      // A server-to-client frame type arriving here is client confusion;
      // answer an error and carry on.
      WriteFrame(conn, FrameType::kError,
                 EncodeTagged(0, "unexpected frame type"));
      return;
  }
}

void Server::HandleQuery(Conn* conn, uint64_t tag, std::string_view text) {
  bool duplicate = false;
  {
    // Duplicate live tag: the client could not demux the two streams. Only
    // the reader inserts tags, so the check-then-insert below is race-free.
    latch::LatchGuard lock(conn->mu);
    duplicate = conn->active.count(tag) != 0;
  }
  if (duplicate) {
    queries_error_.fetch_add(1, kRelaxed);
    WriteFrame(conn, FrameType::kError,
               EncodeTagged(tag, "tag already in flight"));
    return;
  }
  Result<ParsedStatement> parsed = ParseQueryText(text);
  if (!parsed.ok()) {
    queries_error_.fetch_add(1, kRelaxed);
    WriteFrame(conn, FrameType::kError,
               EncodeTagged(tag, parsed.status().message()));
    return;
  }
  Result<QuerySpec> bound = BindStatement(*catalog_, *parsed);
  if (!bound.ok()) {
    queries_error_.fetch_add(1, kRelaxed);
    WriteFrame(conn, FrameType::kError,
               EncodeTagged(tag, bound.status().message()));
    return;
  }
  QuerySpec spec = std::move(bound).value();
  if (!parsed->has_lane) spec.lane = conn->lane;
  ApplyBackpressure(conn, spec.lane);
  // Blocks on the session window under backpressure — the client's own
  // pipeline stalls; Session counts the stall.
  QueryHandle h =
      conn->session.Query().FromSpec(std::move(spec)).Stream().Submit();
  auto handle = std::make_shared<QueryHandle>(std::move(h));
  latch::LatchGuard lock(conn->mu);
  conn->active[tag] = handle;
  conn->drainers.emplace_back(
      [this, conn, tag, handle] { DrainQuery(conn, tag, handle); });
}

void Server::DrainQuery(Conn* conn, uint64_t tag,
                        std::shared_ptr<QueryHandle> handle) {
  TupleBatch batch;
  while (handle->NextBatch(&batch)) {
    if (batch.size() != 0) {
      WriteFrame(conn, FrameType::kBatch, EncodeBatchPayload(tag, batch));
    }
  }
  const QueryResult& result = handle->Wait();
  if (result.metrics.cancelled) {
    queries_cancelled_.fetch_add(1, kRelaxed);
  } else if (result.status.ok()) {
    queries_ok_.fetch_add(1, kRelaxed);
  } else {
    queries_error_.fetch_add(1, kRelaxed);
  }
  WriteFrame(conn, FrameType::kDone, EncodeDonePayload(tag, result));
  latch::LatchGuard lock(conn->mu);
  conn->active.erase(tag);
}

void Server::WriteFrame(Conn* conn, FrameType type, std::string payload) {
  Frame frame;
  frame.type = type;
  frame.payload = std::move(payload);
  std::string wire;
  EncodeFrame(frame, &wire);
  latch::LatchGuard lock(conn->write_mu);
  // A down transport drops the frame; the reader notices EOF separately.
  conn->transport->WriteAll(wire.data(), wire.size());
}

void Server::ApplyBackpressure(Conn* conn, QueryLane lane) {
  if (lane == QueryLane::kSla) return;  // The SLA lane is never shrunk.
  const uint32_t cap = engine_->options().max_admitted;
  const bool deep =
      engine_->queue_depth() >
      static_cast<size_t>(options_.backpressure_queue_factor) * cap;
  const bool pressured =
      deep || (broker_ != nullptr && broker_->UnderPressure());
  const uint32_t target = pressured
                              ? std::max(1u, options_.backpressure_window)
                              : conn->configured_window;
  if (conn->session.window() != target) {
    conn->session.SetWindow(target);
    if (pressured) backpressure_shrinks_.fetch_add(1, kRelaxed);
  }
}

void Server::TeardownConn(Conn* conn) {
  // The reader spawned every drainer and has exited its loop, so `active`
  // and `drainers` only shrink from here on.
  std::vector<std::shared_ptr<QueryHandle>> live;
  std::vector<std::thread> drainers;
  {
    latch::LatchGuard lock(conn->mu);
    live.reserve(conn->active.size());
    for (auto& [tag, handle] : conn->active) live.push_back(handle);
    drainers.swap(conn->drainers);
  }
  // A dropped connection cancels everything it had in flight (in-queue
  // queries never run; executing ones stop at the next batch boundary).
  for (auto& handle : live) handle->Cancel();
  live.clear();
  for (std::thread& t : drainers) {
    if (t.joinable()) t.join();
  }
  // Both directions down: the peer's next read sees EOF (the close a
  // framing error promised), and late writes fail instead of buffering.
  conn->transport->Shutdown();
  closed_window_stalls_.fetch_add(conn->session.window_stalls(), kRelaxed);
}

}  // namespace net
}  // namespace smoothscan
