// Byte transports under the wire protocol: a blocking stream interface with
// two implementations — an in-process Pipe pair (tests and benches connect
// to the server without opening ports) and a plain POSIX TCP socket. The
// frame layer (net/frame.h) is transport-agnostic; the server treats both
// identically.

#ifndef SMOOTHSCAN_NET_TRANSPORT_H_
#define SMOOTHSCAN_NET_TRANSPORT_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>

namespace smoothscan {
namespace net {

/// A bidirectional blocking byte stream. Thread model: one reader thread and
/// one writer thread per endpoint (the server's connection shape); Shutdown
/// may be called from any thread and unblocks both.
class Transport {
 public:
  virtual ~Transport() = default;

  /// Reads up to `n` bytes; blocks for at least one. Returns the count, or 0
  /// once the peer shut down and the stream drained (EOF), or -1 on error.
  virtual int Read(char* buf, size_t n) = 0;

  /// Writes all `n` bytes; false once the stream is down.
  virtual bool WriteAll(const char* buf, size_t n) = 0;

  /// Tears the stream down in both directions; idempotent, callable from any
  /// thread. Blocked Read/WriteAll calls return.
  virtual void Shutdown() = 0;
};

/// An in-process connected pair: bytes written to one endpoint are read from
/// the other. Destroying an endpoint shuts the pair down.
std::pair<std::unique_ptr<Transport>, std::unique_ptr<Transport>>
MakePipePair();

/// POSIX TCP listener. Accept() blocks until a connection arrives or Close()
/// is called.
class TcpListener {
 public:
  /// Binds 127.0.0.1:`port` (0 = ephemeral; see port()). Null on failure.
  static std::unique_ptr<TcpListener> Listen(uint16_t port);
  ~TcpListener();

  uint16_t port() const { return port_; }
  /// Null once Close()d (or on accept failure).
  std::unique_ptr<Transport> Accept();
  void Close();

  /// Client side: connects to 127.0.0.1:`port`. Null on failure.
  static std::unique_ptr<Transport> Connect(uint16_t port);

 private:
  TcpListener(int fd, uint16_t port) : fd_(fd), port_(port) {}

  int fd_;
  uint16_t port_;
};

}  // namespace net
}  // namespace smoothscan

#endif  // SMOOTHSCAN_NET_TRANSPORT_H_
