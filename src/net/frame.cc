#include "net/frame.h"

#include <cerrno>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace smoothscan {
namespace net {
namespace {

bool KnownFrameType(uint8_t t) {
  switch (static_cast<FrameType>(t)) {
    case FrameType::kHello:
    case FrameType::kQuery:
    case FrameType::kCancel:
    case FrameType::kMetrics:
    case FrameType::kBatch:
    case FrameType::kDone:
    case FrameType::kError:
    case FrameType::kMetricsText:
      return true;
  }
  return false;
}

void AppendU32Le(uint32_t v, std::string* out) {
  out->push_back(static_cast<char>(v & 0xff));
  out->push_back(static_cast<char>((v >> 8) & 0xff));
  out->push_back(static_cast<char>((v >> 16) & 0xff));
  out->push_back(static_cast<char>((v >> 24) & 0xff));
}

uint32_t ReadU32Le(const char* p) {
  const auto b = [p](int i) {
    return static_cast<uint32_t>(static_cast<unsigned char>(p[i]));
  };
  return b(0) | (b(1) << 8) | (b(2) << 16) | (b(3) << 24);
}

void AppendFmt(std::string* out, const char* fmt, ...) {
  char buf[64];
  va_list ap;
  va_start(ap, fmt);
  const int n = std::vsnprintf(buf, sizeof buf, fmt, ap);
  va_end(ap);
  if (n > 0) out->append(buf, static_cast<size_t>(n));
}

Status ParseU64(std::string_view tok, uint64_t* out) {
  if (tok.empty()) return Status::InvalidArgument("empty integer field");
  std::string buf(tok);
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(buf.c_str(), &end, 10);
  if (errno != 0 || end == nullptr || *end != '\0') {
    return Status::InvalidArgument("bad integer '" + buf + "'");
  }
  *out = static_cast<uint64_t>(v);
  return Status::OK();
}

Status ParseI64(std::string_view tok, int64_t* out) {
  if (tok.empty()) return Status::InvalidArgument("empty integer field");
  std::string buf(tok);
  char* end = nullptr;
  errno = 0;
  const long long v = std::strtoll(buf.c_str(), &end, 10);
  if (errno != 0 || end == nullptr || *end != '\0') {
    return Status::InvalidArgument("bad integer '" + buf + "'");
  }
  *out = static_cast<int64_t>(v);
  return Status::OK();
}

Status ParseF64(std::string_view tok, double* out) {
  std::string buf(tok);
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(buf.c_str(), &end);
  if (end == nullptr || *end != '\0' || end == buf.c_str()) {
    return Status::InvalidArgument("bad double '" + buf + "'");
  }
  *out = v;
  return Status::OK();
}

/// "v1,v2,..." → out (empty input → no values).
Status ParseI64List(std::string_view s, std::vector<int64_t>* out) {
  while (!s.empty()) {
    const size_t comma = s.find(',');
    std::string_view tok = s.substr(0, comma);
    int64_t v = 0;
    Status st = ParseI64(tok, &v);
    if (!st.ok()) return st;
    out->push_back(v);
    if (comma == std::string_view::npos) break;
    s.remove_prefix(comma + 1);
  }
  return Status::OK();
}

}  // namespace

void EncodeFrame(const Frame& frame, std::string* wire) {
  AppendU32Le(static_cast<uint32_t>(frame.payload.size()), wire);
  wire->push_back(static_cast<char>(frame.type));
  wire->append(frame.payload);
}

Status FrameDecoder::Feed(const char* data, size_t n) {
  if (poisoned_) return Status::InvalidArgument("frame stream poisoned");
  buf_.append(data, n);
  // Validate every complete header immediately, even before its payload
  // arrives: a hostile length must be rejected without buffering toward it.
  size_t p = pos_;
  while (buf_.size() - p >= 5) {
    const uint32_t len = ReadU32Le(buf_.data() + p);
    const uint8_t type = static_cast<uint8_t>(buf_[p + 4]);
    if (len > kMaxFramePayload) {
      poisoned_ = true;
      return Status::InvalidArgument("oversized frame payload");
    }
    if (!KnownFrameType(type)) {
      poisoned_ = true;
      return Status::InvalidArgument("unknown frame type");
    }
    if (buf_.size() - p - 5 < len) break;
    p += 5 + len;
  }
  return Status::OK();
}

bool FrameDecoder::Pop(Frame* out) {
  if (poisoned_ || buf_.size() - pos_ < 5) return false;
  const uint32_t len = ReadU32Le(buf_.data() + pos_);
  if (buf_.size() - pos_ - 5 < len) return false;
  out->type = static_cast<FrameType>(buf_[pos_ + 4]);
  out->payload.assign(buf_, pos_ + 5, len);
  pos_ += 5 + len;
  if (pos_ == buf_.size()) {
    buf_.clear();
    pos_ = 0;
  }
  return true;
}

std::string EncodeTagged(uint64_t tag, std::string_view text) {
  std::string out;
  AppendFmt(&out, "%" PRIu64, tag);
  if (!text.empty()) {
    out.push_back(' ');
    out.append(text);
  }
  return out;
}

Status ParseTagged(std::string_view payload, uint64_t* tag,
                   std::string_view* rest) {
  const size_t sp = payload.find(' ');
  std::string_view head =
      sp == std::string_view::npos ? payload : payload.substr(0, sp);
  Status s = ParseU64(head, tag);
  if (!s.ok()) return s;
  *rest = sp == std::string_view::npos ? std::string_view()
                                       : payload.substr(sp + 1);
  return Status::OK();
}

std::string EncodeBatchPayload(uint64_t tag, const TupleBatch& batch) {
  std::string out;
  AppendFmt(&out, "%" PRIu64 " ", tag);
  for (size_t i = 0; i < batch.size(); ++i) {
    if (i != 0) out.push_back('|');
    const Tuple& row = batch.row(i);
    for (size_t c = 0; c < row.size(); ++c) {
      if (c != 0) out.push_back(',');
      AppendFmt(&out, "%" PRId64, row[c].AsInt64());
    }
  }
  return out;
}

Status ParseBatchPayload(std::string_view payload, uint64_t* tag,
                         std::vector<std::vector<int64_t>>* rows) {
  std::string_view body;
  Status s = ParseTagged(payload, tag, &body);
  if (!s.ok()) return s;
  while (!body.empty()) {
    const size_t bar = body.find('|');
    std::string_view row = body.substr(0, bar);
    rows->emplace_back();
    if (!(s = ParseI64List(row, &rows->back())).ok()) return s;
    if (bar == std::string_view::npos) break;
    body.remove_prefix(bar + 1);
  }
  return Status::OK();
}

std::string EncodeDonePayload(uint64_t tag, const QueryResult& result) {
  const QueryMetrics& m = result.metrics;
  std::string out;
  AppendFmt(&out, "%" PRIu64, tag);
  AppendFmt(&out, " status=%d", static_cast<int>(result.status.code()));
  AppendFmt(&out, " kind=%d", static_cast<int>(m.kind));
  AppendFmt(&out, " lane=%d", static_cast<int>(m.lane));
  AppendFmt(&out, " cancelled=%d", m.cancelled ? 1 : 0);
  AppendFmt(&out, " write=%d", m.write ? 1 : 0);
  AppendFmt(&out, " parallel=%d", m.parallel ? 1 : 0);
  AppendFmt(&out, " tuples=%" PRIu64, m.tuples);
  AppendFmt(&out, " io_requests=%" PRIu64, m.io_requests);
  AppendFmt(&out, " random_ios=%" PRIu64, m.random_ios);
  AppendFmt(&out, " seq_ios=%" PRIu64, m.seq_ios);
  AppendFmt(&out, " pages_read=%" PRIu64, m.pages_read);
  AppendFmt(&out, " mem_peak_bytes=%" PRIu64, m.mem_peak_bytes);
  AppendFmt(&out, " mem_quota_breaches=%" PRIu64, m.mem_quota_breaches);
  // %.17g: shortest-round-trip is overkill, 17 significant digits is the
  // classic sufficient precision for binary64 — these fields are the
  // bit-identical simulated-cost contract crossing the wire.
  AppendFmt(&out, " sim_time=%.17g", m.sim_time);
  AppendFmt(&out, " io_time=%.17g", m.io_time);
  AppendFmt(&out, " cpu_time=%.17g", m.cpu_time);
  AppendFmt(&out, " queue_wait_ms=%.17g", m.queue_wait_ms);
  AppendFmt(&out, " exec_ms=%.17g", m.exec_ms);
  AppendFmt(&out, " latency_ms=%.17g", m.latency_ms);
  if (!result.keys.empty()) {
    out.append(" keys=");
    for (size_t i = 0; i < result.keys.size(); ++i) {
      if (i != 0) out.push_back(',');
      AppendFmt(&out, "%" PRId64, result.keys[i]);
    }
  }
  if (!result.status.message().empty()) {
    // msg= is free text through end-of-payload; must stay the last field.
    out.append(" msg=");
    out.append(result.status.message());
  }
  return out;
}

Status ParseDonePayload(std::string_view payload, uint64_t* tag,
                        QueryResult* result) {
  std::string_view body;
  Status s = ParseTagged(payload, tag, &body);
  if (!s.ok()) return s;
  QueryMetrics& m = result->metrics;
  int status_code = 0;
  std::string message;
  while (!body.empty()) {
    const size_t eq = body.find('=');
    if (eq == std::string_view::npos) {
      return Status::InvalidArgument("done payload field without '='");
    }
    std::string_view key = body.substr(0, eq);
    if (key == "msg") {  // Free text through end-of-payload.
      message = std::string(body.substr(eq + 1));
      break;
    }
    const size_t sp = body.find(' ', eq + 1);
    std::string_view val = body.substr(
        eq + 1, sp == std::string_view::npos ? std::string_view::npos
                                             : sp - eq - 1);
    uint64_t u = 0;
    double d = 0.0;
    if (key == "status") {
      if (!(s = ParseU64(val, &u)).ok()) return s;
      status_code = static_cast<int>(u);
    } else if (key == "kind") {
      if (!(s = ParseU64(val, &u)).ok()) return s;
      if (u >= static_cast<uint64_t>(kNumPathKinds)) {
        return Status::InvalidArgument("bad path kind");
      }
      m.kind = static_cast<PathKind>(u);
    } else if (key == "lane") {
      if (!(s = ParseU64(val, &u)).ok()) return s;
      m.lane = u != 0 ? QueryLane::kSla : QueryLane::kBatch;
    } else if (key == "cancelled") {
      if (!(s = ParseU64(val, &u)).ok()) return s;
      m.cancelled = u != 0;
    } else if (key == "write") {
      if (!(s = ParseU64(val, &u)).ok()) return s;
      m.write = u != 0;
    } else if (key == "parallel") {
      if (!(s = ParseU64(val, &u)).ok()) return s;
      m.parallel = u != 0;
    } else if (key == "tuples") {
      if (!(s = ParseU64(val, &m.tuples)).ok()) return s;
    } else if (key == "io_requests") {
      if (!(s = ParseU64(val, &m.io_requests)).ok()) return s;
    } else if (key == "random_ios") {
      if (!(s = ParseU64(val, &m.random_ios)).ok()) return s;
    } else if (key == "seq_ios") {
      if (!(s = ParseU64(val, &m.seq_ios)).ok()) return s;
    } else if (key == "pages_read") {
      if (!(s = ParseU64(val, &m.pages_read)).ok()) return s;
    } else if (key == "mem_peak_bytes") {
      if (!(s = ParseU64(val, &m.mem_peak_bytes)).ok()) return s;
    } else if (key == "mem_quota_breaches") {
      if (!(s = ParseU64(val, &m.mem_quota_breaches)).ok()) return s;
    } else if (key == "sim_time") {
      if (!(s = ParseF64(val, &m.sim_time)).ok()) return s;
    } else if (key == "io_time") {
      if (!(s = ParseF64(val, &m.io_time)).ok()) return s;
    } else if (key == "cpu_time") {
      if (!(s = ParseF64(val, &m.cpu_time)).ok()) return s;
    } else if (key == "queue_wait_ms") {
      if (!(s = ParseF64(val, &m.queue_wait_ms)).ok()) return s;
    } else if (key == "exec_ms") {
      if (!(s = ParseF64(val, &m.exec_ms)).ok()) return s;
    } else if (key == "latency_ms") {
      if (!(s = ParseF64(val, &m.latency_ms)).ok()) return s;
    } else if (key == "keys") {
      if (!(s = ParseI64List(val, &result->keys)).ok()) return s;
    } else {
      // Unknown fields are skipped: forward compatibility for added metrics.
      (void)d;
    }
    if (sp == std::string_view::npos) break;
    body.remove_prefix(sp + 1);
  }
  result->status = status_code == 0
                       ? Status::OK()
                       : Status(static_cast<StatusCode>(status_code),
                                std::move(message));
  return Status::OK();
}

}  // namespace net
}  // namespace smoothscan
