// The network front-end: a Server accepting Transport connections (TCP or
// in-process pipes), speaking the frame protocol (net/frame.h), parsing
// query text (plan/query_text.h) and running each connection as a Session
// over the QueryEngine — the same client API in-process callers use
// (engine/session.h), so the wire adds transport and nothing else to the
// semantics.
//
// Connection shape: one reader thread per connection decodes frames and
// handles control (HELLO, CANCEL, METRICS) inline; each QUERY is submitted
// through the connection's Session (blocking on its outstanding-query
// window — the client-visible backpressure) and drained to the client by a
// per-query drainer thread (BATCH frames as the executor produces batches,
// one DONE frame with the full result). Frame writes from concurrent
// drainers are serialized by a per-connection write latch.
//
// Backpressure: before admitting a batch-lane query the server consults the
// engine's queue depth and the memory broker's pressure flag; overloaded, it
// shrinks the connection's session window to `backpressure_window`, so batch
// clients stall in their own submit path while the SLA lane (whose window is
// never shrunk, and which the engine's reserved SLA executors serve) holds
// its latency floor — bench_server_overload pins exactly this.
//
// Cancellation: a CANCEL frame (or the connection dropping — teardown
// cancels every active query) reaches QueryEngine::Cancel through the
// handle: in-queue queries never run; mid-execution shared-scan consumers
// Detach mid-lap without perturbing their peers' accounting.

#ifndef SMOOTHSCAN_NET_SERVER_H_
#define SMOOTHSCAN_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/latch_rank.h"
#include "common/thread_annotations.h"
#include "engine/session.h"
#include "net/frame.h"
#include "net/transport.h"
#include "plan/query_text.h"

namespace smoothscan {
namespace net {

struct ServerOptions {
  /// Per-connection session defaults (lane, outstanding window, stream
  /// window). HELLO may override lane and window per connection.
  SessionOptions session;
  /// Overload threshold: the engine's admission queue is "deep" beyond
  /// `backpressure_queue_factor * max_admitted` queued queries.
  uint32_t backpressure_queue_factor = 2;
  /// Window a batch-lane connection is shrunk to while overloaded (>= 1).
  uint32_t backpressure_window = 1;
  /// Pressure flag source; null falls back to the engine's broker (if any).
  MemoryBroker* broker = nullptr;
};

/// Monotonic server counters (snapshot; individually relaxed).
struct ServerStats {
  uint64_t connections_opened = 0;
  uint64_t connections_active = 0;
  uint64_t queries_ok = 0;
  uint64_t queries_error = 0;     ///< Parse/bind rejections + failed queries.
  uint64_t queries_cancelled = 0;
  uint64_t frames_malformed = 0;  ///< Framing errors (connection closed).
  uint64_t backpressure_shrinks = 0;  ///< Times a window was shrunk.
  uint64_t window_stalls = 0;  ///< Session submits that blocked on a window.
};

class Server {
 public:
  /// `catalog` resolves table names in query text; borrowed, must outlive
  /// the server (as must the engine).
  Server(QueryEngine* engine, const QueryCatalog* catalog,
         ServerOptions options = {});
  ~Server();  ///< Stop() + join everything.

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Adopts a connected transport endpoint and serves it (spawns the
  /// connection's reader thread).
  void Serve(std::unique_ptr<Transport> transport);

  /// In-process client: creates a pipe pair, serves one end, returns the
  /// other (the shape every test and bench uses — no ports).
  std::unique_ptr<Transport> ConnectPipe();

  /// TCP front: binds 127.0.0.1:`port` (0 = ephemeral) and accepts in a
  /// background thread. False on bind failure.
  bool ListenTcp(uint16_t port);
  /// Bound port (valid after ListenTcp succeeded).
  uint16_t tcp_port() const;

  /// Shuts every connection down and joins all threads. Idempotent; the
  /// destructor calls it.
  void Stop();

  ServerStats stats() const;

 private:
  /// One connection: transport + session + active-query registry.
  struct Conn {
    explicit Conn(QueryEngine* engine, std::unique_ptr<Transport> t,
                  const SessionOptions& session_options)
        : transport(std::move(t)), session(engine, session_options) {}

    std::unique_ptr<Transport> transport;
    Session session;
    /// The connection's default lane (HELLO may change it).
    QueryLane lane = QueryLane::kBatch;
    /// The window HELLO configured (restored when backpressure lifts).
    uint32_t configured_window = 0;

    /// Serializes whole frames onto the transport (drainers interleave).
    latch::Latch write_mu{latch::LatchRank::kNetWrite,
                          "net::Conn::write_mu"};
    /// Tag → live handle, plus the drainer threads to join at teardown.
    latch::Latch mu{latch::LatchRank::kNetConn, "net::Conn::mu"};
    std::unordered_map<uint64_t, std::shared_ptr<QueryHandle>> active
        GUARDED_BY(mu);
    std::vector<std::thread> drainers GUARDED_BY(mu);
    std::thread reader;
    std::atomic<bool> done{false};  ///< Reader finished; conn reapable.
  };

  void ReaderLoop(Conn* conn);
  void HandleFrame(Conn* conn, const Frame& frame);
  void HandleQuery(Conn* conn, uint64_t tag, std::string_view text);
  void DrainQuery(Conn* conn, uint64_t tag,
                  std::shared_ptr<QueryHandle> handle);
  void WriteFrame(Conn* conn, FrameType type, std::string payload);
  /// Applies the overload policy to a batch-lane submit (see file comment).
  void ApplyBackpressure(Conn* conn, QueryLane lane);
  /// Cancels every active query, joins the drainers, accumulates the
  /// session's stall count. Runs on the reader thread as it exits.
  void TeardownConn(Conn* conn);
  void AcceptLoop();

  QueryEngine* const engine_;
  const QueryCatalog* const catalog_;
  const ServerOptions options_;
  MemoryBroker* broker_;  ///< Resolved pressure source (may be null).

  mutable latch::Latch mu_{latch::LatchRank::kNetListener,
                           "net::Server::mu_"};
  std::list<std::unique_ptr<Conn>> conns_ GUARDED_BY(mu_);
  bool stopped_ GUARDED_BY(mu_) = false;
  std::unique_ptr<TcpListener> listener_;  ///< Set before the acceptor runs.
  std::thread acceptor_;

  // Counters (relaxed; exact enough for stats()).
  std::atomic<uint64_t> connections_opened_{0};
  std::atomic<uint64_t> queries_ok_{0};
  std::atomic<uint64_t> queries_error_{0};
  std::atomic<uint64_t> queries_cancelled_{0};
  std::atomic<uint64_t> frames_malformed_{0};
  std::atomic<uint64_t> backpressure_shrinks_{0};
  std::atomic<uint64_t> closed_window_stalls_{0};
};

}  // namespace net
}  // namespace smoothscan

#endif  // SMOOTHSCAN_NET_SERVER_H_
