#include "engine/session.h"

namespace smoothscan {

// ---------------------------------------------------------------- QueryHandle

QueryHandle& QueryHandle::operator=(QueryHandle&& other) noexcept {
  if (this == &other) return *this;
  if (valid() && !waited_) {
    Cancel();
    Wait();
  }
  session_ = other.session_;
  id_ = other.id_;
  stream_ = std::move(other.stream_);
  waited_ = other.waited_;
  result_ = std::move(other.result_);
  other.session_ = nullptr;
  other.id_ = 0;
  other.waited_ = false;
  return *this;
}

QueryHandle::~QueryHandle() {
  if (valid() && !waited_) {
    // Abandoned handle (e.g. a dropped connection): cancel and reap, so the
    // engine record never leaks and the executor never blocks on a stream
    // nobody reads.
    Cancel();
    Wait();
  }
}

bool QueryHandle::NextBatch(TupleBatch* out) {
  if (stream_ == nullptr) return false;
  return stream_->Pop(out);
}

const QueryResult& QueryHandle::Wait() {
  SMOOTHSCAN_CHECK(valid());
  if (!waited_) {
    result_ = session_->engine()->WaitSpec(id_);
    waited_ = true;
  }
  return result_;
}

QueryResult QueryHandle::Take() {
  Wait();
  return std::move(result_);
}

void QueryHandle::Cancel() {
  if (!valid() || waited_) return;
  if (stream_ != nullptr) {
    // Unblock the producer first: a stream-stalled executor only re-polls
    // the cancel flag once its pending Push drains.
    stream_->CloseConsumer();
  }
  session_->engine()->Cancel(id_);
}

// -------------------------------------------------------------- QueryBuilder

QueryBuilder::QueryBuilder(Session* session) : session_(session) {
  spec_.lane = session->options().lane;
}

QueryHandle QueryBuilder::Submit() {
  return session_->SubmitSpec(std::move(spec_), stream_);
}

// ------------------------------------------------------------------- Session

Session::Session(QueryEngine* engine, SessionOptions options)
    : engine_(engine), options_(std::move(options)) {
  SMOOTHSCAN_CHECK(engine_ != nullptr);
  SMOOTHSCAN_CHECK(options_.max_outstanding >= 1);
  latch::LatchGuard lock(mu_);
  window_ = options_.max_outstanding;
}

Session::~Session() {
  // Every query's completion callback has fired once outstanding_ drains, so
  // after this no engine thread can touch the session again.
  latch::UniqueLatch lock(mu_);
  while (outstanding_ != 0) cv_.wait(lock);
}

void Session::SetWindow(uint32_t window) {
  SMOOTHSCAN_CHECK(window >= 1);
  latch::LatchGuard lock(mu_);
  window_ = window;
  cv_.notify_all();
}

uint32_t Session::window() const {
  latch::LatchGuard lock(mu_);
  return window_;
}

uint32_t Session::outstanding() const {
  latch::LatchGuard lock(mu_);
  return outstanding_;
}

uint64_t Session::window_stalls() const {
  latch::LatchGuard lock(mu_);
  return window_stalls_;
}

QueryHandle Session::SubmitSpec(QuerySpec spec, bool stream) {
  {
    latch::UniqueLatch lock(mu_);
    if (outstanding_ >= window_) {
      ++window_stalls_;
      while (outstanding_ >= window_) cv_.wait(lock);
    }
    ++outstanding_;
  }
  std::unique_ptr<ResultStream> rs;
  if (stream) {
    rs = std::make_unique<ResultStream>(options_.stream_batches);
    spec.stream = rs.get();
  }
  spec.on_complete = [this](uint64_t) { OnComplete(); };
  const uint64_t id = engine_->SubmitSpec(std::move(spec));
  return QueryHandle(this, id, std::move(rs));
}

void Session::OnComplete() {
  // Notify under the latch: a ~Session waiter may destroy the session the
  // moment the count hits zero, so cv_ must not be touched after unlock.
  latch::LatchGuard lock(mu_);
  SMOOTHSCAN_CHECK(outstanding_ > 0);
  --outstanding_;
  cv_.notify_all();
}

}  // namespace smoothscan
