#include "engine/query_engine.h"

#include <algorithm>
#include <cmath>

#include "compress/compressed_scan.h"
#include "obs/metrics.h"
#include "obs/obs_context.h"
#include "obs/trace.h"
#include "sharing/shared_scan_path.h"
#include "storage/buffer_pool.h"

namespace smoothscan {

namespace {

/// Aging bound of the share-aware batch pop: after this many bypasses the
/// front query is admitted next no matter what is sharable behind it.
constexpr uint32_t kMaxShareBypasses = 16;

/// CPU constants handed to the chooser whenever a compressed extent is on
/// offer: the compressed path trades key-check CPU for page I/O, so pricing
/// it against the heap paths on I/O alone would systematically flatter it.
/// Queries with no compressed candidate keep the paper's I/O-only ranking.
constexpr CalibratedCpuModel kChooserCpuModel{};

double MsBetween(std::chrono::steady_clock::time_point a,
                 std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

}  // namespace

const char* QueryLaneToString(QueryLane lane) {
  switch (lane) {
    case QueryLane::kBatch:
      return "batch";
    case QueryLane::kSla:
      return "sla";
  }
  return "?";
}

QueryEngine::QueryEngine(Engine* engine, QueryEngineOptions options)
    : engine_(engine), options_(options) {
  SMOOTHSCAN_CHECK(options_.max_admitted >= 1);
  SMOOTHSCAN_CHECK(options_.sla_reserved_slots < options_.max_admitted);
  if (options_.broker != nullptr) {
    // The shared pool's frame memory is a fixed, engine-lifetime footprint:
    // charge it once so every other consumer competes for what remains.
    pool_consumer_ = options_.broker->Register(MemoryClass::kBufferPool,
                                               "buffer_pool_frames");
    pool_consumer_.Charge(
        static_cast<uint64_t>(engine_->options().buffer_pool_pages) *
        engine_->options().page_size);
  }
  if (options_.versions != nullptr &&
      (options_.sharing != nullptr || options_.compressed != nullptr)) {
    // Snapshot publish stales any parked shared scan of the table (its chunk
    // decomposition was sized to the old page count) and any compressed
    // sibling built from the pre-publish snapshot. Order matters: the
    // sibling's own shared-scan group must retire (dropping its window pins)
    // *before* OnPublish evicts and rebuilds the sibling file. Captures the
    // collaborators, not `this` — they must outlive the registry's last
    // publish.
    ScanSharingCoordinator* sharing = options_.sharing;
    CompressedExtentMap* compressed = options_.compressed;
    publish_hook_token_ =
        options_.versions->AddPublishHook([sharing, compressed](FileId file) {
          if (sharing != nullptr) sharing->InvalidateFile(file);
          if (compressed != nullptr) {
            if (sharing != nullptr) {
              if (CompressedExtentRef extent = compressed->Lookup(file)) {
                sharing->InvalidateFile(extent->file);
              }
            }
            compressed->OnPublish(file);
          }
        });
  }
  if (options_.metrics != nullptr) {
    obs::MetricsRegistry* r = options_.metrics;
    c_submitted_ = r->counter("engine.submitted");
    c_completed_ = r->counter("engine.completed");
    c_cancelled_ = r->counter("engine.cancelled");
    c_compressed_fallbacks_ = r->counter("engine.compressed_fallbacks");
    g_lane_depth_[static_cast<int>(QueryLane::kBatch)] =
        r->gauge("engine.lane_batch_depth");
    g_lane_depth_[static_cast<int>(QueryLane::kSla)] =
        r->gauge("engine.lane_sla_depth");
    g_running_ = r->gauge("engine.running");
    h_queue_wait_us_ = r->histogram("engine.queue_wait_us");
    h_exec_us_ = r->histogram("engine.exec_us");
    h_latency_us_ = r->histogram("engine.latency_us");
    c_bpool_acquires_ = r->counter("batchpool.acquires");
    c_bpool_reuses_ = r->counter("batchpool.reuses");
    c_bpool_releases_ = r->counter("batchpool.releases");
    c_bpool_sheds_ = r->counter("batchpool.sheds");
    // Buffer-pool counters: per-query and per-morsel pools (the accounting
    // pools) get this sink at construction; the shared pool gets it here —
    // before the executors spawn, so no fetch can race the attach — for the
    // communal write-back traffic that bypasses query streams.
    bp_sink_.hits = r->counter("bufferpool.hits");
    bp_sink_.misses = r->counter("bufferpool.misses");
    bp_sink_.write_backs = r->counter("bufferpool.write_backs");
    engine_->pool().SetMetricsSink(bp_sink_);
  }
  if (options_.versions != nullptr && options_.tracing != nullptr) {
    // Publish-at-quiescence instants land on whichever thread drops the last
    // lease. Same set-before-first-lease contract as the sink above.
    options_.versions->SetTrace(options_.tracing);
  }
  executors_.reserve(options_.max_admitted);
  for (uint32_t i = 0; i < options_.max_admitted; ++i) {
    const bool sla_only = i < options_.sla_reserved_slots;
    executors_.emplace_back([this, sla_only] { ExecutorLoop(sla_only); });
  }
}

QueryEngine::~QueryEngine() {
  {
    latch::LatchGuard lock(mu_);
    shutdown_ = true;
  }
  cv_submit_.notify_all();
  for (std::thread& t : executors_) t.join();
  if (options_.metrics != nullptr) {
    // Executors are joined: nothing fetches through the shared pool on this
    // engine's behalf anymore, so the sink detaches under the same
    // quiescence its attach relied on. The registry may outlive this engine.
    engine_->pool().SetMetricsSink(BufferPoolMetricsSink{});
  }
  if (options_.versions != nullptr && options_.tracing != nullptr) {
    // Like the publish hook below: a registry outliving this engine must not
    // emit into a possibly-freed collector at its next publish.
    options_.versions->SetTrace(nullptr);
  }
  if (publish_hook_token_ != 0) {
    // The hook captured the coordinator and extent map; a registry outliving
    // this engine must not call into possibly-freed collaborators on its
    // next publish.
    options_.versions->RemovePublishHook(publish_hook_token_);
  }
}

QueryEngine::QueryId QueryEngine::SubmitSpec(QuerySpec spec) {
  SMOOTHSCAN_CHECK(spec.index != nullptr || spec.writer != nullptr);
  // Write queries need the snapshot machinery: without leases, a publish
  // could land under an in-flight scan.
  SMOOTHSCAN_CHECK(spec.writer == nullptr || options_.versions != nullptr);
  SMOOTHSCAN_CHECK(!spec.use_chooser ||
                   (spec.stats != nullptr && spec.cost_model != nullptr));
  Pending p;
  p.spec = std::move(spec);
  p.share_eligible = ShareEligible(p.spec);  // Once, outside the lock.
  p.submitted = std::chrono::steady_clock::now();
  const QueryLane lane = p.spec.lane;
  const bool share_eligible = p.share_eligible;
  QueryId id;
  {
    latch::LatchGuard lock(mu_);
    id = next_id_++;
    p.id = id;
    records_[id];  // Reserve the completion slot.
    ++outstanding_;
    std::deque<Pending>& q = lanes_[static_cast<int>(lane)];
    q.push_back(std::move(p));
    if (g_lane_depth_[static_cast<int>(lane)] != nullptr) {
      g_lane_depth_[static_cast<int>(lane)]->Set(
          static_cast<int64_t>(q.size()));
    }
  }
  // notify_all: with an SLA reserve, notify_one could wake a reserved
  // executor for a batch query it will never pop (a lost wakeup).
  cv_submit_.notify_all();
  if (c_submitted_ != nullptr) c_submitted_->Add();
  if (options_.tracing != nullptr) {
    options_.tracing->Instant(id, "submit", "share_eligible",
                              share_eligible ? 1 : 0, nullptr, 0, nullptr, 0,
                              "lane", QueryLaneToString(lane));
  }
  return id;
}

QueryResult QueryEngine::WaitSpec(QueryId id) {
  latch::UniqueLatch lock(mu_);
  auto it = records_.find(id);
  SMOOTHSCAN_CHECK(it != records_.end());
  // The reference survives rehashing from concurrent Submits (iterators
  // would not).
  Record& rec = it->second;
  while (!rec.done) cv_done_.wait(lock);
  QueryResult result = std::move(rec.result);
  records_.erase(id);
  return result;
}

void QueryEngine::DrainAll() {
  latch::UniqueLatch lock(mu_);
  while (outstanding_ != 0) cv_done_.wait(lock);
}

bool QueryEngine::Cancel(QueryId id) {
  ResultStream* stream = nullptr;
  std::function<void(uint64_t)> on_complete;
  {
    latch::UniqueLatch lock(mu_);
    // Running: raise the executor's flag; it finishes the record itself.
    auto rit = running_cancel_.find(id);
    if (rit != running_cancel_.end()) {
      rit->second->store(true, std::memory_order_release);
      return true;
    }
    // Queued: remove unadmitted and complete the record here.
    bool found = false;
    for (int lane = 0; lane < 2 && !found; ++lane) {
      std::deque<Pending>& q = lanes_[lane];
      for (auto it = q.begin(); it != q.end(); ++it) {
        if (it->id != id) continue;
        auto rec_it = records_.find(id);
        SMOOTHSCAN_CHECK(rec_it != records_.end());
        Record& rec = rec_it->second;
        rec.result.status = Status::Cancelled("cancelled in queue");
        QueryMetrics& m = rec.result.metrics;
        m.cancelled = true;
        m.lane = it->spec.lane;
        m.write = it->spec.writer != nullptr;
        m.kind = it->spec.kind;
        m.queue_wait_ms =
            MsBetween(it->submitted, std::chrono::steady_clock::now());
        m.latency_ms = m.queue_wait_ms;
        stream = it->spec.stream;
        on_complete = std::move(it->spec.on_complete);
        // Finish the stream before the record is done: once WaitSpec can
        // return, the handle may destroy the stream.
        if (stream != nullptr) stream->FinishProducer();
        rec.done = true;
        q.erase(it);
        if (g_lane_depth_[lane] != nullptr) {
          g_lane_depth_[lane]->Set(static_cast<int64_t>(q.size()));
        }
        --outstanding_;
        ++completed_;
        found = true;
        break;
      }
    }
    if (!found) return false;  // Already completed (or unknown id).
  }
  cv_done_.notify_all();
  if (c_cancelled_ != nullptr) c_cancelled_->Add();
  if (options_.tracing != nullptr) {
    options_.tracing->Instant(id, "cancel", "in_queue", 1);
  }
  // Outside mu_: the window callback climbs to the Session latch (rank 740).
  if (on_complete) on_complete(id);
  return true;
}

size_t QueryEngine::queue_depth() const {
  latch::LatchGuard lock(mu_);
  return lanes_[0].size() + lanes_[1].size();
}

uint32_t QueryEngine::admitted() const {
  latch::LatchGuard lock(mu_);
  return admitted_now_;
}

uint32_t QueryEngine::peak_admitted() const {
  latch::LatchGuard lock(mu_);
  return peak_admitted_;
}

uint64_t QueryEngine::completed() const {
  latch::LatchGuard lock(mu_);
  return completed_;
}

void QueryEngine::ExecutorLoop(bool sla_only) {
  for (;;) {
    Pending p;
    std::atomic<bool> cancel{false};
    std::chrono::steady_clock::time_point admit_time;
    {
      latch::UniqueLatch lock(mu_);
      // Explicit loop: the guarded lane/shutdown state is not visible to the
      // analysis inside a predicate lambda. A reserved executor ignores the
      // batch lane entirely — that is the reserve.
      while (!shutdown_ && lanes_[static_cast<int>(QueryLane::kSla)].empty() &&
             (sla_only || lanes_[0].empty())) {
        cv_submit_.wait(lock);
      }
      // Drain remaining queries before honoring shutdown, like the task
      // scheduler does for its deques (reserved executors leave the batch
      // lane to the general pool).
      if (lanes_[static_cast<int>(QueryLane::kSla)].empty() &&
          (sla_only || lanes_[0].empty())) {
        return;
      }
      std::deque<Pending>& lane =
          !lanes_[static_cast<int>(QueryLane::kSla)].empty()
              ? lanes_[static_cast<int>(QueryLane::kSla)]
              : lanes_[static_cast<int>(QueryLane::kBatch)];
      auto it = lane.begin();
      if (options_.sharing != nullptr &&
          &lane == &lanes_[static_cast<int>(QueryLane::kBatch)] &&
          it->bypassed < kMaxShareBypasses) {
        // Share-aware pop: a queued query that can attach to a shared scan
        // already in flight over its table jumps the batch FIFO — grouping
        // same-table arrivals onto one lap instead of serializing passes.
        // The front query's bypass budget bounds the reordering: once spent,
        // plain FIFO resumes and it is admitted next.
        for (auto cand = lane.begin(); cand != lane.end(); ++cand) {
          if (cand->share_eligible &&
              running_shared_.count(cand->spec.index->heap()->file_id()) >
                  0) {
            it = cand;
            break;
          }
        }
        if (it != lane.begin()) ++lane.front().bypassed;
      }
      p = std::move(*it);
      lane.erase(it);
      // Same critical section as the pop: Cancel always finds a live query
      // either queued or here — never in between.
      running_cancel_[p.id] = &cancel;
      ++admitted_now_;
      peak_admitted_ = std::max(peak_admitted_, admitted_now_);
      for (int i = 0; i < 2; ++i) {
        if (g_lane_depth_[i] != nullptr) {
          g_lane_depth_[i]->Set(static_cast<int64_t>(lanes_[i].size()));
        }
      }
      if (g_running_ != nullptr) {
        g_running_->Set(static_cast<int64_t>(admitted_now_));
      }
      admit_time = std::chrono::steady_clock::now();
    }

    // Taken before the spec moves into Execute: both outlive it (the stream
    // is the handle's; the callback is fired below, after the record).
    ResultStream* stream = p.spec.stream;
    std::function<void(uint64_t)> on_complete = std::move(p.spec.on_complete);
    QueryResult result;
    {
      // The "query" span covers admission → completion on this executor;
      // queue wait rides along as an arg so the span tree alone tells the
      // whole submit → done story.
      obs::TraceSpan query_span(
          options_.tracing, p.id, "query", "lane",
          static_cast<int64_t>(p.spec.lane), "queue_us",
          static_cast<int64_t>(MsBetween(p.submitted, admit_time) * 1000.0));
      result = Execute(p.id, std::move(p.spec), &cancel);
    }
    // Before the record is done: once WaitSpec can return, the handle may
    // destroy the stream.
    if (stream != nullptr) stream->FinishProducer();
    const auto end = std::chrono::steady_clock::now();
    result.metrics.queue_wait_ms = MsBetween(p.submitted, admit_time);
    result.metrics.exec_ms = MsBetween(admit_time, end);
    result.metrics.latency_ms = MsBetween(p.submitted, end);
    if (h_latency_us_ != nullptr) {
      h_queue_wait_us_->Record(
          static_cast<uint64_t>(result.metrics.queue_wait_ms * 1000.0));
      h_exec_us_->Record(
          static_cast<uint64_t>(result.metrics.exec_ms * 1000.0));
      h_latency_us_->Record(
          static_cast<uint64_t>(result.metrics.latency_ms * 1000.0));
    }
    if (c_completed_ != nullptr) c_completed_->Add();
    if (result.metrics.cancelled && c_cancelled_ != nullptr) {
      c_cancelled_->Add();
    }

    {
      latch::LatchGuard lock(mu_);
      running_cancel_.erase(p.id);
      --admitted_now_;
      ++completed_;
      --outstanding_;
      if (g_running_ != nullptr) {
        g_running_->Set(static_cast<int64_t>(admitted_now_));
      }
      Record& rec = records_[p.id];
      rec.result = std::move(result);
      rec.done = true;
    }
    cv_done_.notify_all();
    // Outside mu_: the Session window callback climbs to rank 740.
    if (on_complete) on_complete(p.id);
  }
}

CompressedExtentRef QueryEngine::CompressedExtentFor(
    const QuerySpec& spec) const {
  if (options_.compressed == nullptr || spec.index == nullptr ||
      spec.need_order) {
    return nullptr;
  }
  CompressedExtentRef extent =
      options_.compressed->Lookup(spec.index->heap()->file_id());
  // The extent serves range predicates on its key column only.
  if (extent == nullptr || extent->key_column != spec.predicate.column) {
    return nullptr;
  }
  return extent;
}

bool QueryEngine::ShareEligible(const QuerySpec& spec) const {
  if (spec.writer != nullptr || options_.sharing == nullptr ||
      !spec.allow_sharing || spec.need_order) {
    return false;
  }
  // A serial compressed plan attaches to the sibling file's cooperative
  // scan, so it groups onto a running lap exactly like kSharedScan.
  const bool compressed_shared =
      spec.dop == 0 && CompressedExtentFor(spec) != nullptr;
  if (!spec.use_chooser) {
    return spec.kind == PathKind::kSharedScan ||
           (spec.kind == PathKind::kCompressedScan && compressed_shared);
  }
  // Chooser queries: ask the chooser itself (same inputs as Execute will
  // use, so the verdict matches) — a selective query headed for an index
  // path must not jump the batch FIFO for a lap it will never join.
  ChooserOptions copts;
  copts.need_order = spec.need_order;
  copts.dop = std::max<uint32_t>(1, spec.dop);
  copts.sharing_available = true;
  CompressedPathInfo cinfo;
  if (CompressedExtentRef extent = CompressedExtentFor(spec)) {
    cinfo.pages = extent->num_pages();
    cinfo.tuples = extent->num_tuples;
    cinfo.avg_run_length = extent->avg_run_length();
    copts.compressed = &cinfo;
    copts.cpu = &kChooserCpuModel;
  }
  const PathKind kind =
      AccessPathChooser::Choose(*spec.stats, *spec.cost_model,
                                spec.predicate.lo, spec.predicate.hi, copts)
          .kind;
  return kind == PathKind::kSharedScan ||
         (kind == PathKind::kCompressedScan && compressed_shared);
}

QueryResult QueryEngine::ExecuteWrite(QueryId id, QuerySpec spec,
                                      const std::atomic<bool>* cancel) {
  QueryResult res;
  QueryMetrics& m = res.metrics;
  m.lane = spec.lane;
  m.write = true;
  if (cancel != nullptr && cancel->load(std::memory_order_acquire)) {
    // Raised between admission and the first op: nothing was applied, so
    // this is still a clean cancel. Mid-Apply the batch runs to completion —
    // its mutations are real and will publish.
    res.status = Status::Cancelled("write cancelled before apply");
    m.cancelled = true;
    return res;
  }

  // Per-query accounting stack, exactly like a read: the fetches that pull
  // target pages into the buffer are this query's cost, bit-identical at any
  // admission level. Write-back I/O is communal (charged on the engine
  // stream at flush; see write/table_writer.h).
  QueryContext qctx(engine_,
                    options_.mirror_pages ? &engine_->pool() : nullptr);
  qctx.pool().SetMetricsSink(bp_sink_);
  uint64_t applied = 0;
  {
    // Covers the ticket wait inside Apply too — publish waits show up as
    // span length, never as simulated cost.
    obs::TraceSpan apply_span(options_.tracing, id, "write_apply", "ops",
                              static_cast<int64_t>(spec.write_ops.size()));
    res.status = spec.writer->Apply(spec.write_ops, qctx.ctx(), &applied);
  }
  // Metrics are captured even on a mid-batch failure: the ops before the
  // error were applied (and will publish), so their cost is real.
  m.tuples = applied;
  const IoStats io = qctx.disk().stats();
  m.io_time = io.io_time;
  m.cpu_time = qctx.cpu().time();
  m.sim_time = m.io_time + m.cpu_time;
  m.io_requests = io.io_requests;
  m.random_ios = io.random_ios;
  m.seq_ios = io.seq_ios;
  m.pages_read = io.pages_read;
  return res;
}

QueryResult QueryEngine::Execute(QueryId id, QuerySpec spec,
                                 const std::atomic<bool>* cancel) {
  if (spec.writer != nullptr) {
    return ExecuteWrite(id, std::move(spec), cancel);
  }
  QueryResult res;
  QueryMetrics& m = res.metrics;
  m.lane = spec.lane;

  // Per-query observability context, threaded to the access path via
  // SetObs. Emission is atomics + wall clock only — the accounting stack
  // built below never sees it, which is what keeps simulated cost
  // bit-identical with observability on or off.
  obs::ObsContext octx;
  octx.metrics = options_.metrics;
  octx.trace = options_.tracing;
  octx.query_id = id;
  const obs::ObsContext* obs_ctx =
      (octx.metrics != nullptr || octx.trace != nullptr) ? &octx : nullptr;

  // Snapshot pin: for the scan's lifetime the table's base pages are frozen
  // (writers go copy-on-write; publish waits for the last lease), so the
  // result multiset and the simulated cost are those of a solo run against
  // this snapshot.
  TableVersionRegistry::ReadLease lease;
  if (options_.versions != nullptr) {
    // AcquireRead publishes a pending era inline at quiescence, so this span
    // is where a reader's publish wait becomes visible.
    obs::TraceSpan lease_span(
        options_.tracing, id, "lease", "file",
        static_cast<int64_t>(spec.index->heap()->file_id()));
    lease = options_.versions->AcquireRead(spec.index->heap()->file_id());
  }

  // Plan: reuse the cost-based chooser per stream query. With corrupted stats
  // the choice (and the estimate handed to the path) is faithfully wrong —
  // the paper's mis-estimation scenario, replayed at stream scale.
  const bool sharing_on = options_.sharing != nullptr && spec.allow_sharing;
  // Looked up after the lease: the snapshot this query reads is the one the
  // extent (if current) was folded from, so compressed and heap answers
  // agree. A publish between planning and here is impossible — publishes
  // need quiescence and we hold a lease.
  const CompressedExtentRef extent = CompressedExtentFor(spec);
  PathKind kind = spec.kind;
  uint64_t estimate = spec.estimate;
  if (spec.use_chooser) {
    ChooserOptions copts;
    copts.need_order = spec.need_order;
    copts.dop = std::max<uint32_t>(1, spec.dop);
    copts.sharing_available = sharing_on;
    CompressedPathInfo cinfo;
    if (extent != nullptr) {
      cinfo.pages = extent->num_pages();
      cinfo.tuples = extent->num_tuples;
      cinfo.avg_run_length = extent->avg_run_length();
      copts.compressed = &cinfo;
      copts.cpu = &kChooserCpuModel;
    }
    const PlanChoice choice =
        AccessPathChooser::Choose(*spec.stats, *spec.cost_model,
                                  spec.predicate.lo, spec.predicate.hi, copts);
    kind = choice.kind;
    estimate = choice.estimated_cardinality;
  }
  if (kind == PathKind::kSharedScan && (!sharing_on || spec.need_order)) {
    kind = PathKind::kFullScan;  // The exact solo-equivalent plan.
  }
  if (kind == PathKind::kCompressedScan && extent == nullptr) {
    // Graceful staleness: the extent a fixed-kind spec (or an earlier plan)
    // counted on is gone — invalidated by a publish, never built, or not
    // keyed on this predicate's column. The heap full scan produces the
    // identical multiset from the identical snapshot.
    kind = PathKind::kFullScan;
    if (c_compressed_fallbacks_ != nullptr) c_compressed_fallbacks_->Add();
    obs::EmitInstant(obs_ctx, "compressed_fallback", "file",
                     static_cast<int64_t>(spec.index->heap()->file_id()));
  }
  m.kind = kind;

  // Per-query accounting stack; page pins mirror into the shared pool. The
  // private pool is where this query's hits and misses are counted, so it —
  // not the mirror — feeds the registry's bufferpool.* counters.
  QueryContext qctx(engine_,
                    options_.mirror_pages ? &engine_->pool() : nullptr);
  qctx.pool().SetMetricsSink(bp_sink_);
  // Per-query execution-memory account: batch pools charge it; a quota
  // breach or global broker pressure sheds their recycled storage. Pure
  // governance — the accounting stack above is untouched.
  QueryMemoryScope mem_scope(options_.broker, options_.query_quota_bytes);
  qctx.SetMemScope(&mem_scope);

  const FileId table = spec.index->heap()->file_id();
  bool shared_run = kind == PathKind::kSharedScan;
  std::unique_ptr<AccessPath> path;
  if (shared_run) {
    path = std::make_unique<SharedScanPath>(
        options_.sharing, spec.index->heap(), spec.predicate);
    path->SetExecContext(&qctx.ctx());
    // Visible to the share-aware batch pop while this scan is in flight.
    latch::LatchGuard lock(mu_);
    ++running_shared_[table];
  } else if (kind == PathKind::kCompressedScan) {
    if (spec.dop >= 1) {
      ParallelScanOptions po;
      po.dop = spec.dop;
      po.scheduler = options_.scheduler;
      po.account_disk = &qctx.disk();
      po.account_cpu = &qctx.cpu();
      po.mirror_pool = options_.mirror_pages ? &engine_->pool() : nullptr;
      po.mem = &mem_scope;
      po.trace = options_.tracing;
      po.trace_query_id = id;
      po.batch_metrics.acquires = c_bpool_acquires_;
      po.batch_metrics.reuses = c_bpool_reuses_;
      po.batch_metrics.releases = c_bpool_releases_;
      po.batch_metrics.sheds = c_bpool_sheds_;
      po.pool_metrics = bp_sink_;
      path = MakeParallelCompressedScan(engine_, extent, spec.predicate,
                                        CompressedScanOptions(), po);
      m.parallel = path != nullptr;
    } else if (sharing_on) {
      // Shared-compressed: join (or start) the cooperative circular scan
      // over the sibling extent. Registered under the *table* id so the
      // share-aware batch pop groups same-table arrivals onto the lap.
      path = std::make_unique<CompressedScan>(options_.sharing, extent,
                                              spec.predicate);
      path->SetExecContext(&qctx.ctx());
      shared_run = true;
      latch::LatchGuard lock(mu_);
      ++running_shared_[table];
    }
    if (path == nullptr) {
      path = std::make_unique<CompressedScan>(engine_, extent,
                                              spec.predicate);
      path->SetExecContext(&qctx.ctx());
    }
  } else if (kind == PathKind::kSmoothScan && sharing_on && spec.dop == 0) {
    // Shared-SmoothScan mode: this query feeds (and profits from) the
    // table's common Page ID Cache. Results are solo-identical; charged I/O
    // is not — peer-probed resident pages come free, which is the point.
    SmoothScanOptions so;
    so.preserve_order = spec.need_order;
    so.broker = options_.broker;
    so.shared_group = options_.sharing->SmoothSharingFor(spec.index->heap());
    path = std::make_unique<SmoothScan>(spec.index, spec.predicate, so);
    path->SetExecContext(&qctx.ctx());
  }
  if (path == nullptr && spec.dop >= 1) {
    ParallelScanOptions po;
    po.dop = spec.dop;
    po.scheduler = options_.scheduler;
    po.account_disk = &qctx.disk();
    po.account_cpu = &qctx.cpu();
    po.mirror_pool = options_.mirror_pages ? &engine_->pool() : nullptr;
    po.mem = &mem_scope;
    po.trace = options_.tracing;
    po.trace_query_id = id;
    po.batch_metrics.acquires = c_bpool_acquires_;
    po.batch_metrics.reuses = c_bpool_reuses_;
    po.batch_metrics.releases = c_bpool_releases_;
    po.batch_metrics.sheds = c_bpool_sheds_;
    po.pool_metrics = bp_sink_;
    path = MakeParallelPath(kind, spec.index, spec.predicate, spec.need_order,
                            estimate, po);
    m.parallel = path != nullptr;
  }
  if (path == nullptr) {
    path = MakePath(kind, spec.index, spec.predicate, spec.need_order,
                    estimate);
    path->SetExecContext(&qctx.ctx());
  }
  path->SetObs(obs_ctx);

  {
    // One span per scan regardless of which branch built the path; morph
    // instants and per-morsel worker spans nest (logically) inside it.
    obs::TraceSpan scan_span(options_.tracing, id, "scan", "kind",
                             static_cast<int64_t>(kind), "dop",
                             static_cast<int64_t>(spec.dop));
    res.status = path->Open();
    if (res.status.ok()) {
      TupleBatch batch;
      while (path->NextBatch(&batch)) {
        m.tuples += batch.size();
        if (spec.collect_keys) {
          for (size_t i = 0; i < batch.size(); ++i) {
            res.keys.push_back(batch.row(i)[0].AsInt64());
          }
        }
        if (spec.stream != nullptr) {
          spec.stream->Push(std::move(batch));
          batch.Clear();  // Leave the moved-from batch refillable.
        }
        // Polled between batches: path->Close() below is the teardown — for
        // a shared-scan consumer that is Detach mid-lap, the existing
        // cancelled-consumer path, and the peers' laps proceed untouched.
        if (cancel != nullptr &&
            cancel->load(std::memory_order_acquire)) {
          res.status = Status::Cancelled("cancelled mid-execution");
          m.cancelled = true;
          obs::EmitInstant(obs_ctx, "cancel", "mid_execution", 1);
          break;
        }
      }
      path->Close();
    }
  }
  if (shared_run) {
    latch::LatchGuard lock(mu_);
    auto it = running_shared_.find(table);
    if (--it->second == 0) running_shared_.erase(it);
  }

  // Charges are reported even for a cancelled (or failed) query: the work
  // done up to the break point was real.
  const IoStats io = qctx.disk().stats();
  m.io_time = io.io_time;
  m.cpu_time = qctx.cpu().time();
  m.sim_time = m.io_time + m.cpu_time;
  m.io_requests = io.io_requests;
  m.random_ios = io.random_ios;
  m.seq_ios = io.seq_ios;
  m.pages_read = io.pages_read;
  m.mem_peak_bytes = mem_scope.peak_bytes();
  m.mem_quota_breaches = mem_scope.quota_breaches();
  return res;
}

double LatencyPercentile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double rank = q * static_cast<double>(values.size());
  size_t i = static_cast<size_t>(std::ceil(rank));
  i = std::min(std::max<size_t>(i, 1), values.size());
  return values[i - 1];
}

}  // namespace smoothscan
