// Session / QueryHandle: the client API over the QueryEngine — the one
// submission surface shared by in-process callers (examples, WorkloadDriver)
// and the network server's per-connection sessions (src/net/server.h).
//
//   Session session(&qe);
//   QueryHandle h = session.Query()
//                       .Table(db.index())
//                       .Range(lo, hi)
//                       .Policy(PathKind::kSmoothScan)
//                       .Submit();
//   ...
//   QueryResult r = h.Wait();
//
// A Session owns a tenant lane default and an *outstanding-query window*:
// Submit() blocks while `window()` queries are in flight, which is the
// client-side half of the engine's admission control (and the knob the
// network server turns for backpressure — see net/server.h). A QueryHandle
// is the completion handle of one query: Wait() (idempotent), Cancel()
// (in-queue or mid-execution — see QueryEngine::Cancel), Metrics(), and —
// for Stream() queries — NextBatch() pulling result batches as the executor
// produces them. Destroying an unwaited handle cancels and reaps the query,
// so a dropped connection never leaks a completion record.
//
// Determinism contract, inherited verbatim from the engine: a query
// submitted through a Session is charged bit-identically to a solo cold
// QuerySpec run. The session layer adds window bookkeeping and batch
// routing; it never touches the accounting stack.

#ifndef SMOOTHSCAN_ENGINE_SESSION_H_
#define SMOOTHSCAN_ENGINE_SESSION_H_

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/latch_rank.h"
#include "common/thread_annotations.h"
#include "engine/query_engine.h"

namespace smoothscan {

class Session;
class QueryBuilder;

struct SessionOptions {
  /// Default lane for queries of this session (the tenant lane); a builder's
  /// Lane() overrides per query.
  QueryLane lane = QueryLane::kBatch;
  /// Outstanding-query window: Submit() blocks while this many of the
  /// session's queries are in flight. The network server shrinks it under
  /// overload (see net/server.h "backpressure").
  uint32_t max_outstanding = 8;
  /// Per-query stream window in batches (Stream() queries): the executor
  /// blocks after this many undelivered batches.
  size_t stream_batches = 4;
  /// Diagnostic name (trace spans, server logs).
  std::string name = "session";
};

/// Completion handle of one submitted query. Move-only; reaping the result
/// (Wait / Metrics / destruction) is what frees the engine-side record.
class QueryHandle {
 public:
  QueryHandle() = default;
  /// An unwaited handle cancels its query and reaps the record.
  ~QueryHandle();
  QueryHandle(QueryHandle&& other) noexcept { *this = std::move(other); }
  QueryHandle& operator=(QueryHandle&& other) noexcept;
  QueryHandle(const QueryHandle&) = delete;
  QueryHandle& operator=(const QueryHandle&) = delete;

  bool valid() const { return session_ != nullptr; }
  uint64_t id() const { return id_; }

  /// Streamed result batches (queries built with Stream()): blocks for the
  /// next batch; false once the query finished and the stream drained.
  /// Always false for non-streamed queries.
  bool NextBatch(TupleBatch* out);

  /// Blocks until the query completes; idempotent (the first call reaps the
  /// engine record, later calls return the cached result).
  const QueryResult& Wait();

  /// Moves the result out (after which Wait() returns the hollow shell).
  QueryResult Take();

  /// Cancels the query: in-queue it never runs (kCancelled, zero execution
  /// charges); mid-execution it stops between batches — a shared-scan
  /// consumer Detaches mid-lap. The result must still be Wait()ed (the
  /// destructor does so if the caller does not).
  void Cancel();

  /// The query's metrics (blocks until completion).
  const QueryMetrics& Metrics() { return Wait().metrics; }

 private:
  friend class Session;
  QueryHandle(Session* session, uint64_t id,
              std::unique_ptr<ResultStream> stream)
      : session_(session), id_(id), stream_(std::move(stream)) {}

  Session* session_ = nullptr;
  uint64_t id_ = 0;
  std::unique_ptr<ResultStream> stream_;
  bool waited_ = false;
  QueryResult result_;
};

/// Fluent spec assembly; terminal calls are Submit() (handle) and Run()
/// (submit + wait, for the common synchronous case).
class QueryBuilder {
 public:
  /// The table to read, via its (key-column) index.
  QueryBuilder& Table(const BPlusTree* index) {
    spec_.index = index;
    return *this;
  }
  /// Key-column range predicate [lo, hi) — the paper's selection shape.
  QueryBuilder& Range(int64_t lo, int64_t hi) {
    spec_.predicate = ScanPredicate{};
    spec_.predicate.lo = lo;
    spec_.predicate.hi = hi;
    return *this;
  }
  /// Arbitrary predicate (residual / non-key column).
  QueryBuilder& Predicate(ScanPredicate predicate) {
    spec_.predicate = std::move(predicate);
    return *this;
  }
  /// Fixed access-path policy (default kSmoothScan, the paper's operator).
  QueryBuilder& Policy(PathKind kind) {
    spec_.use_chooser = false;
    spec_.kind = kind;
    return *this;
  }
  /// Cost-based choice over (possibly lying) statistics instead of a fixed
  /// policy.
  QueryBuilder& UseChooser(const TableStats* stats, const CostModel* model) {
    spec_.use_chooser = true;
    spec_.stats = stats;
    spec_.cost_model = model;
    return *this;
  }
  /// Cardinality estimate handed to the path (Switch threshold / Smooth
  /// trigger) when no chooser runs.
  QueryBuilder& Estimate(uint64_t estimate) {
    spec_.estimate = estimate;
    return *this;
  }
  QueryBuilder& Ordered(bool need_order = true) {
    spec_.need_order = need_order;
    return *this;
  }
  QueryBuilder& Dop(uint32_t dop) {
    spec_.dop = dop;
    return *this;
  }
  QueryBuilder& Lane(QueryLane lane) {
    spec_.lane = lane;
    return *this;
  }
  QueryBuilder& CollectKeys(bool collect = true) {
    spec_.collect_keys = collect;
    return *this;
  }
  QueryBuilder& AllowSharing(bool allow) {
    spec_.allow_sharing = allow;
    return *this;
  }
  /// Deliver result batches through QueryHandle::NextBatch as they are
  /// produced, instead of discarding them engine-side.
  QueryBuilder& Stream(bool stream = true) {
    stream_ = stream;
    return *this;
  }
  /// Write query: `ops` applied through `writer` as one admission-controlled
  /// batch (requires the engine's snapshot machinery).
  QueryBuilder& Write(TableWriter* writer, std::vector<WriteOp> ops) {
    spec_.writer = writer;
    spec_.write_ops = std::move(ops);
    return *this;
  }
  /// Replaces the assembled spec wholesale — the hook for in-tree callers
  /// that bind a QuerySpec elsewhere (the network server binds from query
  /// text via plan/query_text.h). Resets the session's lane default; the
  /// caller owns the lane decision.
  QueryBuilder& FromSpec(QuerySpec spec) {
    spec_ = std::move(spec);
    return *this;
  }

  /// Submits through the session (blocking on its window) and returns the
  /// completion handle.
  QueryHandle Submit();
  /// Submit + Wait + Take, for synchronous callers.
  QueryResult Run() { return Submit().Take(); }

 private:
  friend class Session;
  explicit QueryBuilder(Session* session);

  Session* session_;
  QuerySpec spec_;
  bool stream_ = false;
};

class Session {
 public:
  explicit Session(QueryEngine* engine, SessionOptions options = {});
  /// Blocks until every query submitted through this session completed (the
  /// handles own the results; the session only tracks the window).
  ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Starts a query builder with this session's defaults.
  QueryBuilder Query() { return QueryBuilder(this); }

  QueryEngine* engine() const { return engine_; }
  const SessionOptions& options() const { return options_; }

  /// Live window size (see SessionOptions::max_outstanding). Shrinking it
  /// below the in-flight count stalls the next Submit until enough queries
  /// drain — the server's backpressure lever. Must stay >= 1.
  void SetWindow(uint32_t window) EXCLUDES(mu_);
  uint32_t window() const EXCLUDES(mu_);
  /// Queries of this session in flight right now.
  uint32_t outstanding() const EXCLUDES(mu_);
  /// Submits that blocked on a full window (backpressure visibility).
  uint64_t window_stalls() const EXCLUDES(mu_);

 private:
  friend class QueryBuilder;
  friend class QueryHandle;

  /// Blocks on the window, wires the completion callback (and stream, when
  /// `stream`), and submits.
  QueryHandle SubmitSpec(QuerySpec spec, bool stream) EXCLUDES(mu_);
  /// Engine completion callback (executor thread, no engine latches held).
  void OnComplete() EXCLUDES(mu_);

  QueryEngine* const engine_;
  const SessionOptions options_;

  /// Window state. Rank above kQueryEngine: Submit may reach the engine
  /// latch from under it, and the completion callback takes it bare.
  mutable latch::Latch mu_{latch::LatchRank::kNetSession, "Session::mu_"};
  std::condition_variable_any cv_;
  uint32_t window_ GUARDED_BY(mu_);
  uint32_t outstanding_ GUARDED_BY(mu_) = 0;
  uint64_t window_stalls_ GUARDED_BY(mu_) = 0;
};

}  // namespace smoothscan

#endif  // SMOOTHSCAN_ENGINE_SESSION_H_
