// QueryEngine: concurrent multi-query execution over one shared substrate —
// the workload-level layer of the paper's robustness story. A server facing
// many queries with mis-estimated selectivities must not cliff, so the engine
// runs *streams* of queries, not one query, over the shared TaskScheduler
// (intra-query morsel work) and the shared BufferPool (page residency and
// pinning), while every query charges a private QueryContext accounting stack
// (see exec_context.h) — which is what keeps each query's simulated cost
// bit-identical to a solo cold run at any admission level.
//
// Control plane vs. data plane:
//   * Submit() appends the query to a submission queue with two lanes —
//     a FIFO batch lane and an SLA lane that jumps it (admission-level
//     priority, the workload analogue of the paper's SLA-driven trigger).
//   * Admission control caps the number of *concurrently admitted* queries:
//     the engine owns `max_admitted` executor threads, each running at most
//     one query end to end, so the cap holds by construction. Queued queries
//     accrue queue-wait time, reported per query.
//   * Intra-query parallel leaves (QuerySpec::dop >= 1) submit their morsels
//     to the shared TaskScheduler; the scheduler's round-robin deal and work
//     stealing interleave morsels of *different* queries across one fixed
//     worker pool, so no single query monopolizes the cores.
//
// Determinism contract: admission order, lane priority and scheduling change
// *when* a query runs and how long it waits — never what it computes or what
// it is charged. The concurrent differential test pins this: equal result
// multisets and bit-identical per-query simulated cost between a solo run and
// a run with 8 concurrently admitted queries.

#ifndef SMOOTHSCAN_ENGINE_QUERY_ENGINE_H_
#define SMOOTHSCAN_ENGINE_QUERY_ENGINE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/latch_rank.h"
#include "common/thread_annotations.h"
#include "common/tuple_batch.h"
#include "compress/compressed_extent_map.h"
#include "mem/memory_broker.h"
#include "plan/access_path_chooser.h"
#include "storage/exec_context.h"
#include "write/table_version.h"
#include "write/table_writer.h"

namespace smoothscan {

class ScanSharingCoordinator;

namespace obs {
class Counter;
class Gauge;
class Histogram;
class MetricsRegistry;
class TraceCollector;
}  // namespace obs

/// Submission lanes. kSla queries are admitted before any queued kBatch
/// query; within a lane admission is FIFO. With a ScanSharingCoordinator
/// configured, the batch lane is additionally *share-aware*: when a shared
/// scan is in flight over some table, a queued share-eligible query on the
/// same table is admitted ahead of older batch queries, so same-table
/// arrivals group onto the one cooperative scan instead of queueing behind
/// unrelated work and missing the lap. The jump is aging-bounded: a query
/// bypassed too many times is admitted next regardless, so a steady
/// hot-spot stream cannot starve unrelated batch work.
enum class QueryLane { kBatch = 0, kSla = 1 };

const char* QueryLaneToString(QueryLane lane);

/// Bounded batch queue between an executing query and the client holding its
/// QueryHandle — the streaming half of the Session API. The executor Pushes
/// each result batch as it is produced (blocking while the window is full);
/// the handle Pops them. Closing the consumer side unblocks the producer and
/// turns further pushes into drops, so an abandoned or cancelled stream never
/// wedges an executor. Streaming changes only *where* batches go, never what
/// the query is charged: the blocking adds wall time, not simulated cost.
class ResultStream {
 public:
  explicit ResultStream(size_t max_batches = 4)
      : cap_(max_batches == 0 ? 1 : max_batches) {}
  ResultStream(const ResultStream&) = delete;
  ResultStream& operator=(const ResultStream&) = delete;

  /// Producer (engine executor): enqueue one batch; blocks while the window
  /// is full and the consumer is still attached.
  void Push(TupleBatch batch) {
    latch::UniqueLatch lock(mu_);
    while (!closed_ && q_.size() >= cap_) cv_.wait(lock);
    if (closed_) return;  // Consumer gone: drop, keep draining.
    q_.push_back(std::move(batch));
    cv_.notify_all();
  }

  /// Producer: no further batches (normal end, error, or cancellation).
  void FinishProducer() {
    latch::LatchGuard lock(mu_);
    finished_ = true;
    cv_.notify_all();
  }

  /// Consumer (QueryHandle): dequeue the next batch; false once the producer
  /// finished and the queue drained.
  bool Pop(TupleBatch* out) {
    latch::UniqueLatch lock(mu_);
    while (q_.empty() && !finished_) cv_.wait(lock);
    if (q_.empty()) return false;
    *out = std::move(q_.front());
    q_.pop_front();
    cv_.notify_all();
    return true;
  }

  /// Consumer: stop consuming (cancel / handle teardown). Idempotent.
  void CloseConsumer() {
    latch::LatchGuard lock(mu_);
    closed_ = true;
    q_.clear();
    cv_.notify_all();
  }

 private:
  mutable latch::Latch mu_{latch::LatchRank::kResultStream,
                           "ResultStream::mu_"};
  std::condition_variable_any cv_;
  std::deque<TupleBatch> q_ GUARDED_BY(mu_);
  const size_t cap_;
  bool finished_ GUARDED_BY(mu_) = false;
  bool closed_ GUARDED_BY(mu_) = false;
};

/// One query: a selection over an indexed table, with either a fixed access
/// path or the cost-based chooser run against (possibly lying) statistics —
/// or, when `writer` is set, a *write query*: a batch of INSERT / UPDATE /
/// DELETE ops applied through the TableWriter.
struct QuerySpec {
  const BPlusTree* index = nullptr;
  ScanPredicate predicate;

  /// Write query: `write_ops` are applied via this writer as one
  /// admission-controlled batch (read fields are ignored; `index` may stay
  /// null). Requires QueryEngineOptions::versions — the snapshot machinery
  /// is what keeps concurrent readers consistent.
  TableWriter* writer = nullptr;
  std::vector<WriteOp> write_ops;

  /// Pick the path with AccessPathChooser over `stats` + `cost_model` (both
  /// required then); the estimate handed to the path (Switch Scan threshold,
  /// Smooth Scan trigger) is the chooser's — faithfully wrong when the stats
  /// are corrupted. When false, `kind` and `estimate` are used as given.
  bool use_chooser = false;
  PathKind kind = PathKind::kSmoothScan;
  const TableStats* stats = nullptr;
  const CostModel* cost_model = nullptr;
  uint64_t estimate = 0;

  bool need_order = false;
  /// 0: the serial operator. >= 1: the morsel-driven parallel variant with
  /// this many workers on the engine's shared scheduler (serial fallback when
  /// the combination has no parallel form).
  uint32_t dop = 0;
  QueryLane lane = QueryLane::kBatch;
  /// Collect column-0 values into QueryResult::keys (differential tests).
  bool collect_keys = false;
  /// Opt out of the engine's scan sharing for this query (kSharedScan plans
  /// fall back to FullScan, Smooth Scan runs solo, and the share-aware
  /// admission never reorders it). No effect without a coordinator.
  bool allow_sharing = true;

  // --- wired by Session (engine/session.h); not part of the client surface.
  /// Result batches are moved into this stream as they are produced (owned
  /// by the QueryHandle; must outlive the query's execution — the handle's
  /// Wait() is the synchronization point).
  ResultStream* stream = nullptr;
  /// Invoked exactly once per query, after its record is done (completion or
  /// cancellation), from a thread holding no engine latches. The Session's
  /// outstanding-window bookkeeping.
  std::function<void(uint64_t /*id*/)> on_complete;
};

/// Per-query accounting, the workload-level analogue of bench RunMetrics.
struct QueryMetrics {
  double queue_wait_ms = 0.0;  ///< Submit → admission.
  double exec_ms = 0.0;        ///< Admission → completion (wall).
  double latency_ms = 0.0;     ///< Submit → completion (wall).
  double sim_time = 0.0;       ///< Simulated cost (io_time + cpu_time).
  double io_time = 0.0;
  double cpu_time = 0.0;
  uint64_t io_requests = 0;
  uint64_t random_ios = 0;
  uint64_t seq_ios = 0;
  uint64_t pages_read = 0;
  uint64_t tuples = 0;
  PathKind kind = PathKind::kFullScan;  ///< Path actually run.
  bool parallel = false;                ///< Morsel-driven leaf was used.
  bool write = false;                   ///< This was a write query.
  QueryLane lane = QueryLane::kBatch;
  /// Peak execution-memory bytes charged to the query's QueryMemoryScope
  /// (0 when the engine runs without a broker/quota).
  uint64_t mem_peak_bytes = 0;
  /// Times a charge pushed the scope past its per-query quota. Breaches
  /// shed batch storage on release — they never fail the query.
  uint64_t mem_quota_breaches = 0;
  /// The query was cancelled: in-queue (never admitted — exec_ms stays 0 and
  /// `kind` is the spec's as given) or mid-execution (partial charges up to
  /// the cancellation point are reported; a shared-scan consumer Detaches
  /// mid-lap without perturbing its peers).
  bool cancelled = false;
};

struct QueryResult {
  Status status = Status::OK();
  QueryMetrics metrics;
  std::vector<int64_t> keys;  ///< Column-0 values (QuerySpec::collect_keys).
};

struct QueryEngineOptions {
  /// Cap on concurrently-admitted queries (= executor threads).
  uint32_t max_admitted = 4;
  /// Executors (of the `max_admitted`) that pop *only* the SLA lane. With a
  /// reserve, an SLA arrival never waits behind a long batch query occupying
  /// every executor — the Crescando-style latency floor the network server's
  /// overload bench asserts. 0 (default) keeps the historical behavior: the
  /// SLA lane only jumps the queue. Must be < max_admitted.
  uint32_t sla_reserved_slots = 0;
  /// Shared data-plane worker pool for intra-query morsels. Null: a query
  /// with dop >= 1 spins up a private pool (standalone use; prefer sharing).
  TaskScheduler* scheduler = nullptr;
  /// Mirror every page a query touches into the engine's shared buffer pool
  /// (pinned for the access's lifetime) — real residency contention without
  /// perturbing per-query accounting. See BufferPool::SetMirror.
  bool mirror_pages = true;
  /// Cross-query scan sharing (src/sharing/): kSharedScan plans attach to
  /// the coordinator's cooperative circular scans, the chooser may upgrade
  /// full scans to kSharedScan, Smooth Scan queries feed the per-table
  /// shared Page ID Cache, and batch admission becomes share-aware. Null
  /// disables all of it; the coordinator must outlive the engine.
  ScanSharingCoordinator* sharing = nullptr;
  /// Snapshot machinery for mutable tables (src/write/): read queries hold a
  /// table ReadLease for their execution (scans see a frozen snapshot at
  /// solo-identical cost), write specs become admissible, and — when
  /// `sharing` is also set — the registry's publish hook retires parked
  /// shared-scan groups whose chunk decomposition a publish staled. Null
  /// keeps the engine read-only, with zero overhead. Must outlive the
  /// engine (and, because the publish hook is wired at construction, the
  /// coordinator when both are set).
  TableVersionRegistry* versions = nullptr;
  /// Compressed read tier (src/compress/): the chooser is offered the
  /// table's published compressed extent (priced with the calibrated CPU
  /// model), kCompressedScan plans materialize over it — shared across
  /// concurrent queries when `sharing` is set, morsel-parallel at dop >= 1 —
  /// and the registry's publish hook (requires `versions`) invalidates and
  /// rebuilds the extent so a compressed plan never reads a stale sibling.
  /// Null disables the tier. Must outlive the engine.
  CompressedExtentMap* compressed = nullptr;
  /// Unified memory broker (src/mem/): the engine registers the shared
  /// buffer pool's frames, and every query executes under a QueryMemoryScope
  /// charging its batch-pool memory here. Governance only — simulated cost
  /// is bit-identical with and without a broker. Must outlive the engine.
  MemoryBroker* broker = nullptr;
  /// Per-query execution-memory quota (batch-pool bytes). A breach sheds the
  /// query's recycled batch storage instead of failing it. Unlimited by
  /// default; meaningful with or without `broker`.
  uint64_t query_quota_bytes = UINT64_MAX;
  /// Unified metrics registry (src/obs/): the engine registers its admission
  /// counters/gauges/latency histograms, attaches the shared buffer pool's
  /// and each query's batch-pool sinks, and every access path registers its
  /// own live counters (SmoothScan morph steps, ResultCache spills). Pure
  /// bookkeeping — simulated per-query cost is bit-identical with and
  /// without a registry. Null disables. Must outlive the engine.
  obs::MetricsRegistry* metrics = nullptr;
  /// Per-query trace spans + morph-event timeline (src/obs/), exported as
  /// Chrome trace-event JSON. Off (null) by default; when set, every query
  /// gets a submit instant and a query/lease/scan span tree, parallel leaves
  /// stamp per-morsel worker spans, and SmoothScan emits its morph timeline.
  /// Near-zero cost disabled, bookkeeping only when enabled. Must outlive
  /// the engine.
  obs::TraceCollector* tracing = nullptr;
};

class QueryEngine {
 public:
  using QueryId = uint64_t;

  QueryEngine(Engine* engine, QueryEngineOptions options);
  /// Drains queued and running queries, then joins the executors.
  ~QueryEngine();

  QueryEngine(const QueryEngine&) = delete;
  QueryEngine& operator=(const QueryEngine&) = delete;

  // Spec-level submission — the *internal* surface beneath the Session /
  // QueryHandle client API (engine/session.h). In-tree subsystems (Session,
  // the network server's sessions, differential tests) call these; client
  // code opens a Session.

  /// Enqueues the query; returns immediately with its completion handle.
  QueryId SubmitSpec(QuerySpec spec) EXCLUDES(mu_);

  /// Blocks until query `id` completes and takes its result (each id can be
  /// waited on exactly once).
  QueryResult WaitSpec(QueryId id) EXCLUDES(mu_);

  /// Cancels query `id`. In-queue: the query is removed unadmitted and its
  /// record completes immediately with StatusCode::kCancelled (queue-wait
  /// accounted, zero execution charges). Mid-execution: a cancel flag is
  /// raised that the executor polls between result batches — a shared-scan
  /// consumer Detaches mid-lap (the existing cancelled-consumer path), any
  /// other read path closes early, and the record completes with kCancelled
  /// and the charges accrued so far. Write queries cancel in-queue only; a
  /// batch mid-Apply runs to completion (its mutations are real). Returns
  /// false when the query already completed (or the id is unknown) — the
  /// result must still be WaitSpec()ed either way.
  bool Cancel(QueryId id) EXCLUDES(mu_);

  /// Blocks until every query submitted so far has completed. Completion
  /// records are reclaimed by WaitSpec() alone — a fire-and-forget caller
  /// that only ever drains should still wait each id, or records accumulate.
  void DrainAll() EXCLUDES(mu_);

  // Deprecated shims for the pre-Session surface. Out-of-tree callers get a
  // pointed compile-time message; in-tree code has been ported.
  [[deprecated(
      "raw QuerySpec submission is internal now: open a Session and use "
      "Session::Query() (engine/session.h), or SubmitSpec if you really "
      "need the spec surface")]]
  QueryId Submit(QuerySpec spec) {
    return SubmitSpec(std::move(spec));
  }
  [[deprecated("use QueryHandle::Wait() via Session (engine/session.h), or "
               "WaitSpec")]]
  QueryResult Wait(QueryId id) {
    return WaitSpec(id);
  }
  [[deprecated("use DrainAll (or per-handle Wait via Session)")]]
  void Drain() { DrainAll(); }

  // Observability (values are instantaneous snapshots).
  size_t queue_depth() const EXCLUDES(mu_);
  uint32_t admitted() const EXCLUDES(mu_);  ///< Queries executing right now.
  /// High-water mark; never exceeds the cap.
  uint32_t peak_admitted() const EXCLUDES(mu_);
  uint64_t completed() const EXCLUDES(mu_);
  const QueryEngineOptions& options() const { return options_; }

 private:
  struct Pending {
    QueryId id = 0;
    QuerySpec spec;
    std::chrono::steady_clock::time_point submitted;
    /// Times a younger share-eligible query was admitted over this one (the
    /// share-aware pop's aging bound: see kMaxShareBypasses).
    uint32_t bypassed = 0;
    /// This query will resolve to the cooperative shared scan (explicit
    /// kSharedScan, or the chooser's actual verdict — computed once at
    /// Submit), so admitting it while a shared scan runs on its table joins
    /// the live lap.
    bool share_eligible = false;
  };
  struct Record {
    QueryResult result;
    bool done = false;
  };

  /// `sla_only` executors (the first `sla_reserved_slots` of the pool) pop
  /// nothing but the SLA lane.
  void ExecutorLoop(bool sla_only) EXCLUDES(mu_);
  /// `id` attributes the query's trace spans and morph instants; it never
  /// influences planning or accounting. `cancel` (never null from the
  /// executor) is polled between result batches.
  QueryResult Execute(QueryId id, QuerySpec spec,
                      const std::atomic<bool>* cancel) EXCLUDES(mu_);
  QueryResult ExecuteWrite(QueryId id, QuerySpec spec,
                           const std::atomic<bool>* cancel);
  /// Whether the query will resolve to a shared scan (Pending::share_eligible
  /// — runs the chooser for use_chooser specs, so a selective query that
  /// will pick an index path never jumps the FIFO for nothing).
  bool ShareEligible(const QuerySpec& spec) const;
  /// The table's published compressed extent, when the tier is enabled and
  /// serves this spec (key-column predicate, no interesting order). Null
  /// otherwise — including right after a publish invalidated it, which is
  /// the graceful-staleness fallback to the heap paths.
  CompressedExtentRef CompressedExtentFor(const QuerySpec& spec) const;

  Engine* engine_;
  QueryEngineOptions options_;
  // Registry handles, resolved once in the constructor (all null without
  // options_.metrics). Engine-level admission telemetry plus the batch-pool
  // sink handed to every parallel leaf's owned pool.
  obs::Counter* c_submitted_ = nullptr;
  obs::Counter* c_completed_ = nullptr;
  obs::Counter* c_cancelled_ = nullptr;
  obs::Counter* c_compressed_fallbacks_ = nullptr;
  obs::Gauge* g_lane_depth_[2] = {nullptr, nullptr};  ///< By QueryLane.
  obs::Gauge* g_running_ = nullptr;
  obs::Histogram* h_queue_wait_us_ = nullptr;
  obs::Histogram* h_exec_us_ = nullptr;
  obs::Histogram* h_latency_us_ = nullptr;
  obs::Counter* c_bpool_acquires_ = nullptr;
  obs::Counter* c_bpool_reuses_ = nullptr;
  obs::Counter* c_bpool_releases_ = nullptr;
  obs::Counter* c_bpool_sheds_ = nullptr;
  /// Buffer-pool counters, attached to every pool that does hit/miss
  /// accounting on this engine's behalf: each query's private pool and every
  /// parallel morsel pool. The shared pool gets it too, but only communal
  /// traffic (write-back flushes) moves its stats — mirror pins are
  /// unaccounted by design. Empty (all null) without options_.metrics.
  BufferPoolMetricsSink bp_sink_;
  /// Broker charge for the shared buffer pool's frame memory (capacity
  /// bytes, charged once for the engine's lifetime).
  MemoryBroker::Consumer pool_consumer_;
  /// Registry publish-hook registration (0 = none wired).
  uint64_t publish_hook_token_ = 0;

  /// Control-plane latch (admission queue + completion records). Top of the
  /// hierarchy: nothing below it (executors release it before running a
  /// query, which acquires every other latch in the engine).
  mutable latch::Latch mu_{latch::LatchRank::kQueryEngine,
                           "QueryEngine::mu_"};
  std::condition_variable_any cv_submit_;  ///< Executors wait for work here.
  std::condition_variable_any cv_done_;    ///< Wait()/Drain() wait here.
  std::deque<Pending> lanes_[2] GUARDED_BY(mu_);  ///< Indexed by QueryLane.
  std::unordered_map<QueryId, Record> records_ GUARDED_BY(mu_);
  QueryId next_id_ GUARDED_BY(mu_) = 1;
  /// Tables with a shared scan executing right now (value = running count);
  /// the share-aware batch pop admits matching queued queries first.
  std::unordered_map<FileId, uint32_t> running_shared_ GUARDED_BY(mu_);
  /// Cancel flags of the queries executing right now. Each flag lives on its
  /// executor's stack; registered in the same critical section as the pop
  /// (so Cancel never finds a query in neither the lanes nor here while it
  /// is still live) and deregistered in the completion section.
  std::unordered_map<QueryId, std::atomic<bool>*> running_cancel_
      GUARDED_BY(mu_);
  bool shutdown_ GUARDED_BY(mu_) = false;
  uint32_t admitted_now_ GUARDED_BY(mu_) = 0;
  uint32_t peak_admitted_ GUARDED_BY(mu_) = 0;
  /// Submitted, not yet completed.
  uint64_t outstanding_ GUARDED_BY(mu_) = 0;
  uint64_t completed_ GUARDED_BY(mu_) = 0;

  std::vector<std::thread> executors_;
};

/// Nearest-rank percentile of `values` (q in [0, 1]); 0 on empty input.
/// Sorts a copy — fine for per-run latency vectors.
double LatencyPercentile(std::vector<double> values, double q);

}  // namespace smoothscan

#endif  // SMOOTHSCAN_ENGINE_QUERY_ENGINE_H_
