#include "storage/buffer_pool.h"

#include <algorithm>
#include <vector>

#include "obs/metrics.h"

namespace smoothscan {

void BufferPool::ObsHits(uint64_t n) {
  if (obs_.hits != nullptr && n > 0) obs_.hits->Add(n);
}
void BufferPool::ObsMisses(uint64_t n) {
  if (obs_.misses != nullptr && n > 0) obs_.misses->Add(n);
}
void BufferPool::ObsWriteBacks(uint64_t n) {
  if (obs_.write_backs != nullptr && n > 0) obs_.write_backs->Add(n);
}

void PageGuard::Release() {
  if (pool_ != nullptr) {
    pool_->Unpin(key_);
    pool_ = nullptr;
  }
  page_ = nullptr;
}

BufferPool::BufferPool(StorageManager* storage, SimDisk* disk,
                       size_t capacity_pages, uint32_t num_shards)
    : storage_(storage), disk_(disk), capacity_(capacity_pages) {
  SMOOTHSCAN_CHECK(capacity_pages > 0);
  SMOOTHSCAN_CHECK(num_shards > 0);
  const size_t shards =
      std::min<size_t>(num_shards, std::max<size_t>(1, capacity_pages));
  shards_.reserve(shards);
  for (size_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
    // Distribute the capacity; earlier shards take the remainder.
    shards_.back()->capacity = capacity_pages / shards +
                               (i < capacity_pages % shards ? 1 : 0);
  }
}

void BufferPool::SetMirror(BufferPool* mirror) {
  SMOOTHSCAN_CHECK(mirror != this);
  SMOOTHSCAN_CHECK(mirror == nullptr || mirror->mirror_ == nullptr);
  mirror_ = mirror;
}

void BufferPool::PinKey(uint64_t key) {
  Shard& shard = ShardFor(key);
  uint64_t evicted = kNoWriteBack;
  {
    latch::LatchGuard lock(shard.mu);
    auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_it);
      ++it->second.pins;
    } else {
      evicted = InsertLocked(&shard, key);
      ++shard.map[key].pins;
    }
  }
  ChargeWriteBack(evicted);
}

void BufferPool::UnpinKey(uint64_t key) {
  Shard& shard = ShardFor(key);
  latch::LatchGuard lock(shard.mu);
  auto it = shard.map.find(key);
  SMOOTHSCAN_CHECK(it != shard.map.end() && it->second.pins > 0);
  --it->second.pins;
}

void BufferPool::TouchKey(uint64_t key) {
  Shard& shard = ShardFor(key);
  uint64_t evicted = kNoWriteBack;
  {
    latch::LatchGuard lock(shard.mu);
    auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_it);
    } else {
      evicted = InsertLocked(&shard, key);
    }
  }
  ChargeWriteBack(evicted);
}

bool BufferPool::Contains(FileId file, PageId page) const {
  const uint64_t key = Key(file, page);
  const Shard& shard = ShardFor(key);
  latch::LatchGuard lock(shard.mu);
  return shard.map.count(key) > 0;
}

size_t BufferPool::EvictFile(FileId file) {
  size_t dropped = 0;
  std::vector<uint64_t> write_back;
  for (auto& shard : shards_) {
    latch::LatchGuard lock(shard->mu);
    for (auto it = shard->map.begin(); it != shard->map.end();) {
      if (FileOf(it->first) != file) {
        ++it;
        continue;
      }
      // A pinned frame here means a consumer outlived the invalidation
      // point — truncating the backing file would dangle its reference.
      SMOOTHSCAN_CHECK(it->second.pins == 0);
      if (it->second.dirty) {
        write_back.push_back(it->first);
        ++shard->stats.write_backs;
        ObsWriteBacks(1);
      }
      shard->lru.erase(it->second.lru_it);
      it = shard->map.erase(it);
      ++dropped;
    }
  }
  // Charge outside the shard latches, in (file, page) order like FlushAll.
  std::sort(write_back.begin(), write_back.end());
  for (const uint64_t key : write_back) {
    disk_->WritePage(FileOf(key), PageOf(key));
  }
  return dropped;
}

uint64_t BufferPool::InsertLocked(Shard* shard, uint64_t key) {
  uint64_t write_back = kNoWriteBack;
  if (shard->map.size() >= shard->capacity) {
    // Evict the least recently used unpinned page. When everything is pinned
    // the shard transiently overflows its capacity share — pins win. A dirty
    // victim is written back before it is dropped (the caller charges it
    // after unlocking): eviction must never lose a mutation.
    for (auto it = shard->lru.rbegin(); it != shard->lru.rend(); ++it) {
      auto victim = shard->map.find(*it);
      if (victim->second.pins > 0) continue;
      if (victim->second.dirty) {
        write_back = *it;
        ++shard->stats.write_backs;
        ObsWriteBacks(1);
      }
      shard->lru.erase(std::next(it).base());
      shard->map.erase(victim);
      break;
    }
  }
  shard->lru.push_front(key);
  shard->map[key] = Entry{shard->lru.begin(), 0, false};
  return write_back;
}

PageGuard BufferPool::Fetch(FileId file, PageId page) {
  const uint64_t key = Key(file, page);
  Shard& shard = ShardFor(key);
  bool miss = false;
  uint64_t evicted = kNoWriteBack;
  {
    latch::LatchGuard lock(shard.mu);
    auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      ++shard.stats.hits;
      ObsHits(1);
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_it);
      ++it->second.pins;
    } else {
      ++shard.stats.misses;
      ObsMisses(1);
      miss = true;
      evicted = InsertLocked(&shard, key);
      ++shard.map[key].pins;
    }
  }
  // Charge outside the shard latch; SimDisk serializes internally.
  ChargeWriteBack(evicted);
  if (miss) disk_->ReadPage(file, page);
  if (mirror_ != nullptr) mirror_->PinKey(key);
  return PageGuard(this, key, &storage_->GetPage(file, page));
}

PageGuard BufferPool::PinIfResident(FileId file, PageId page) {
  const uint64_t key = Key(file, page);
  Shard& shard = ShardFor(key);
  {
    latch::LatchGuard lock(shard.mu);
    auto it = shard.map.find(key);
    if (it == shard.map.end()) return PageGuard();
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_it);
    ++it->second.pins;
  }
  if (mirror_ != nullptr) mirror_->PinKey(key);
  return PageGuard(this, key, &storage_->GetPage(file, page));
}

PageGuard BufferPool::Pin(FileId file, PageId page) {
  const uint64_t key = Key(file, page);
  Shard& shard = ShardFor(key);
  uint64_t evicted = kNoWriteBack;
  {
    latch::LatchGuard lock(shard.mu);
    auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_it);
      ++it->second.pins;
    } else {
      evicted = InsertLocked(&shard, key);
      ++shard.map[key].pins;
    }
  }
  ChargeWriteBack(evicted);
  if (mirror_ != nullptr) mirror_->PinKey(key);
  return PageGuard(this, key, &storage_->GetPage(file, page));
}

void BufferPool::Unpin(uint64_t key) {
  UnpinKey(key);
  // One mirror pin was taken per local pin, so the release is symmetric.
  if (mirror_ != nullptr) mirror_->UnpinKey(key);
}

void BufferPool::FetchExtent(FileId file, PageId first, uint32_t num_pages) {
  if (num_pages == 0) return;
  if (mirror_ != nullptr) {
    // Residency lands in the shared pool too; no pins (the extent API takes
    // none locally either) and no charge.
    for (uint32_t i = 0; i < num_pages; ++i) {
      mirror_->TouchKey(Key(file, first + i));
    }
  }
  // Checks residency and records the hit under one latch acquisition, so a
  // concurrent eviction between the check and the touch cannot bite.
  auto touch_if_resident = [&](PageId p) -> bool {
    const uint64_t key = Key(file, p);
    Shard& shard = ShardFor(key);
    latch::LatchGuard lock(shard.mu);
    auto it = shard.map.find(key);
    if (it == shard.map.end()) return false;
    ++shard.stats.hits;
    ObsHits(1);
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_it);
    return true;
  };
  // Trim resident pages at both ends; the physical read must still cover any
  // resident pages in the middle of the extent.
  PageId lo = first;
  PageId hi = first + num_pages - 1;
  while (lo <= hi && touch_if_resident(lo)) ++lo;
  while (hi >= lo && touch_if_resident(hi)) {
    if (hi == 0) break;
    --hi;
  }
  if (lo > hi) return;  // Fully resident.
  disk_->ReadExtent(file, lo, hi - lo + 1);
  for (PageId p = lo; p <= hi; ++p) {
    const uint64_t key = Key(file, p);
    Shard& shard = ShardFor(key);
    uint64_t evicted = kNoWriteBack;
    {
      latch::LatchGuard lock(shard.mu);
      auto it = shard.map.find(key);
      if (it != shard.map.end()) {
        shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_it);
      } else {
        ++shard.stats.misses;
        ObsMisses(1);
        evicted = InsertLocked(&shard, key);
      }
    }
    ChargeWriteBack(evicted);
  }
}

void BufferPool::MarkDirty(FileId file, PageId page) {
  const uint64_t key = Key(file, page);
  Shard& shard = ShardFor(key);
  uint64_t evicted = kNoWriteBack;
  {
    latch::LatchGuard lock(shard.mu);
    auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_it);
      it->second.dirty = true;
    } else {
      evicted = InsertLocked(&shard, key);
      shard.map[key].dirty = true;
    }
  }
  ChargeWriteBack(evicted);
}

bool BufferPool::FlushPage(FileId file, PageId page) {
  const uint64_t key = Key(file, page);
  Shard& shard = ShardFor(key);
  {
    latch::LatchGuard lock(shard.mu);
    auto it = shard.map.find(key);
    if (it == shard.map.end() || !it->second.dirty) return false;
    it->second.dirty = false;
    ++shard.stats.write_backs;
    ObsWriteBacks(1);
  }
  // Charge outside the shard latch; SimDisk serializes internally.
  disk_->WritePage(file, page);
  return true;
}

size_t BufferPool::FlushAll() {
  size_t pinned = 0;
  std::vector<uint64_t> write_back;
  for (auto& shard : shards_) {
    latch::LatchGuard lock(shard->mu);
    const size_t before = write_back.size();
    for (auto it = shard->map.begin(); it != shard->map.end();) {
      if (it->second.pins > 0) {
        // Skip + report: a pinned page is never invalidated. A pinned dirty
        // page keeps its dirty bit — the write-back is queued for the next
        // flush (or the eviction after the unpin), never dropped.
        ++pinned;
        ++it;
      } else {
        if (it->second.dirty) write_back.push_back(it->first);
        shard->lru.erase(it->second.lru_it);
        it = shard->map.erase(it);
      }
    }
    shard->stats.write_backs += write_back.size() - before;
    ObsWriteBacks(write_back.size() - before);
  }
  // Charge the write-backs as extent writes over sorted (file, page) runs —
  // deterministic in the dirty *set*, independent of shard layout and
  // eviction order (the write-back accounting determinism the tests pin).
  std::sort(write_back.begin(), write_back.end());
  size_t i = 0;
  while (i < write_back.size()) {
    size_t j = i + 1;
    while (j < write_back.size() && write_back[j] == write_back[j - 1] + 1 &&
           FileOf(write_back[j]) == FileOf(write_back[i])) {
      ++j;
    }
    disk_->WriteExtent(FileOf(write_back[i]), PageOf(write_back[i]),
                       static_cast<uint32_t>(j - i));
    i = j;
  }
  return pinned;
}

BufferPoolStats BufferPool::stats() const {
  BufferPoolStats total;
  for (const auto& shard : shards_) {
    latch::LatchGuard lock(shard->mu);
    total.hits += shard->stats.hits;
    total.misses += shard->stats.misses;
    total.write_backs += shard->stats.write_backs;
  }
  return total;
}

size_t BufferPool::size() const {
  size_t n = 0;
  for (const auto& shard : shards_) {
    latch::LatchGuard lock(shard->mu);
    n += shard->map.size();
  }
  return n;
}

uint64_t BufferPool::pinned_pages() const {
  uint64_t n = 0;
  for (const auto& shard : shards_) {
    latch::LatchGuard lock(shard->mu);
    for (const auto& [key, entry] : shard->map) {
      if (entry.pins > 0) ++n;
    }
  }
  return n;
}

uint64_t BufferPool::dirty_pages() const {
  uint64_t n = 0;
  for (const auto& shard : shards_) {
    latch::LatchGuard lock(shard->mu);
    for (const auto& [key, entry] : shard->map) {
      if (entry.dirty) ++n;
    }
  }
  return n;
}

}  // namespace smoothscan
