#include "storage/buffer_pool.h"

namespace smoothscan {

BufferPool::BufferPool(StorageManager* storage, SimDisk* disk,
                       size_t capacity_pages)
    : storage_(storage), disk_(disk), capacity_(capacity_pages) {
  SMOOTHSCAN_CHECK(capacity_pages > 0);
}

bool BufferPool::Contains(FileId file, PageId page) const {
  return map_.count(Key(file, page)) > 0;
}

void BufferPool::Touch(uint64_t key) {
  auto it = map_.find(key);
  SMOOTHSCAN_CHECK(it != map_.end());
  lru_.splice(lru_.begin(), lru_, it->second);
}

void BufferPool::Insert(uint64_t key) {
  if (map_.size() >= capacity_) {
    const uint64_t victim = lru_.back();
    lru_.pop_back();
    map_.erase(victim);
  }
  lru_.push_front(key);
  map_[key] = lru_.begin();
}

const Page& BufferPool::Fetch(FileId file, PageId page) {
  const uint64_t key = Key(file, page);
  auto it = map_.find(key);
  if (it != map_.end()) {
    ++stats_.hits;
    Touch(key);
  } else {
    ++stats_.misses;
    disk_->ReadPage(file, page);
    Insert(key);
  }
  return storage_->GetPage(file, page);
}

void BufferPool::FetchExtent(FileId file, PageId first, uint32_t num_pages) {
  if (num_pages == 0) return;
  // Trim resident pages at both ends; the physical read must still cover any
  // resident pages in the middle of the extent.
  PageId lo = first;
  PageId hi = first + num_pages - 1;
  while (lo <= hi && Contains(file, lo)) {
    ++stats_.hits;
    Touch(Key(file, lo));
    ++lo;
  }
  while (hi >= lo && Contains(file, hi)) {
    ++stats_.hits;
    Touch(Key(file, hi));
    if (hi == 0) break;
    --hi;
  }
  if (lo > hi) return;  // Fully resident.
  disk_->ReadExtent(file, lo, hi - lo + 1);
  for (PageId p = lo; p <= hi; ++p) {
    const uint64_t key = Key(file, p);
    if (map_.count(key)) {
      Touch(key);
    } else {
      ++stats_.misses;
      Insert(key);
    }
  }
}

void BufferPool::FlushAll() {
  lru_.clear();
  map_.clear();
}

}  // namespace smoothscan
