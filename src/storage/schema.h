// Schema: ordered list of typed columns plus tuple (de)serialization between
// the executor representation (vector<Value>) and page bytes.

#ifndef SMOOTHSCAN_STORAGE_SCHEMA_H_
#define SMOOTHSCAN_STORAGE_SCHEMA_H_

#include <bit>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"

namespace smoothscan {

/// A tuple in executor representation: one Value per column.
using Tuple = std::vector<Value>;

/// Little-endian 8-byte load — the primitive of every decode hot loop. On
/// little-endian hosts it compiles to a single mov; the byte-wise fallback
/// keeps big-endian hosts correct. Serialization must stay byte-for-byte
/// symmetric with this (see schema.cc PutU64).
inline uint64_t LoadU64LE(const uint8_t* p) {
  if constexpr (std::endian::native == std::endian::little) {
    uint64_t v;
    std::memcpy(&v, p, sizeof(v));
    return v;
  } else {
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(p[i]) << (8 * i);
    return v;
  }
}

/// One column of a schema.
struct Column {
  std::string name;
  ValueType type;
};

/// Ordered, immutable column list. Serialization format: fixed-width columns
/// are 8-byte little-endian; strings are a 4-byte length followed by bytes,
/// laid out in column order.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> columns) : columns_(std::move(columns)) {
    for (const Column& c : columns_) {
      if (!smoothscan::IsFixedWidth(c.type)) fixed_width_ = false;
      if (c.type != ValueType::kInt64) all_int64_ = false;
    }
  }

  size_t num_columns() const { return columns_.size(); }
  const Column& column(size_t i) const { return columns_[i]; }
  const std::vector<Column>& columns() const { return columns_; }

  /// Index of the column named `name`, or -1 when absent.
  int FindColumn(const std::string& name) const;

  /// Appends the serialized form of `tuple` to `out`. Aborts on schema
  /// mismatch (a programming error).
  void Serialize(const Tuple& tuple, std::vector<uint8_t>* out) const;

  /// Parses one tuple from `data` of `size` bytes.
  Tuple Deserialize(const uint8_t* data, uint32_t size) const;

  /// Parses one tuple from `data` into `out`, reusing `out`'s storage. The
  /// vectorized scan hot path decodes into recycled TupleBatch slots with
  /// this: for fixed-width schemas the steady state performs no allocation
  /// and the decode inlines into the caller's loop.
  void DeserializeInto(const uint8_t* data, uint32_t size, Tuple* out) const {
    if (fixed_width_) {
      // Scan hot path: direct 8-byte loads into recycled slots, bounds
      // checked once per tuple.
      SMOOTHSCAN_CHECK(static_cast<uint32_t>(columns_.size()) * 8 <= size);
      const size_t n = columns_.size();
      out->resize(n);
      Value* slots = out->data();
      if (all_int64_) {
        // The micro-benchmark's schema: no per-column type dispatch at all.
        for (size_t c = 0; c < n; ++c) {
          slots[c].SetInt64(static_cast<int64_t>(LoadU64LE(data + c * 8)));
        }
        return;
      }
      for (size_t c = 0; c < n; ++c) {
        const uint64_t bits = LoadU64LE(data + c * 8);
        switch (columns_[c].type) {
          case ValueType::kInt64:
            slots[c].SetInt64(static_cast<int64_t>(bits));
            break;
          case ValueType::kDate:
            slots[c].SetDate(static_cast<int64_t>(bits));
            break;
          default: {
            double d;
            std::memcpy(&d, &bits, sizeof(d));
            slots[c].SetDouble(d);
            break;
          }
        }
      }
      return;
    }
    DeserializeVarWidthInto(data, size, out);
  }

  /// Deserializes only column `col` — the common case for predicate
  /// evaluation, avoiding materializing the full tuple.
  Value DeserializeColumn(const uint8_t* data, uint32_t size, size_t col) const;

  /// Reads INT64/DATE column `col` without materializing a Value — the
  /// per-tuple key check of every scan's hot loop. Inline; takes the direct
  /// 8-byte load for fixed-width schemas.
  int64_t ReadInt64Column(const uint8_t* data, uint32_t size,
                          size_t col) const {
    if (fixed_width_) {
      SMOOTHSCAN_CHECK(columns_[col].type == ValueType::kInt64 ||
                       columns_[col].type == ValueType::kDate);
      const uint32_t off = static_cast<uint32_t>(col) * 8;
      SMOOTHSCAN_CHECK(off + 8 <= size);
      return static_cast<int64_t>(LoadU64LE(data + off));
    }
    return DeserializeColumn(data, size, col).AsInt64();
  }

  /// Serialized size in bytes of `tuple` under this schema.
  uint32_t SerializedSize(const Tuple& tuple) const;

  /// True when every column is fixed width (all tuples have the same size).
  bool IsFixedWidth() const { return fixed_width_; }

 private:
  /// Out-of-line decode for schemas with variable-width (string) columns.
  void DeserializeVarWidthInto(const uint8_t* data, uint32_t size,
                               Tuple* out) const;

  std::vector<Column> columns_;
  bool fixed_width_ = true;  ///< Cached: scans branch on it per tuple.
  bool all_int64_ = true;    ///< Cached: enables the dispatch-free decode.
};

/// Convenience constructor for the ubiquitous all-INT64 schemas of the
/// micro-benchmark: columns are named c1..cN.
Schema MakeIntSchema(size_t num_columns);

}  // namespace smoothscan

#endif  // SMOOTHSCAN_STORAGE_SCHEMA_H_
