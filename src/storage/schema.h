// Schema: ordered list of typed columns plus tuple (de)serialization between
// the executor representation (vector<Value>) and page bytes.

#ifndef SMOOTHSCAN_STORAGE_SCHEMA_H_
#define SMOOTHSCAN_STORAGE_SCHEMA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"

namespace smoothscan {

/// A tuple in executor representation: one Value per column.
using Tuple = std::vector<Value>;

/// One column of a schema.
struct Column {
  std::string name;
  ValueType type;
};

/// Ordered, immutable column list. Serialization format: fixed-width columns
/// are 8-byte little-endian; strings are a 4-byte length followed by bytes,
/// laid out in column order.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> columns) : columns_(std::move(columns)) {}

  size_t num_columns() const { return columns_.size(); }
  const Column& column(size_t i) const { return columns_[i]; }
  const std::vector<Column>& columns() const { return columns_; }

  /// Index of the column named `name`, or -1 when absent.
  int FindColumn(const std::string& name) const;

  /// Appends the serialized form of `tuple` to `out`. Aborts on schema
  /// mismatch (a programming error).
  void Serialize(const Tuple& tuple, std::vector<uint8_t>* out) const;

  /// Parses one tuple from `data` of `size` bytes.
  Tuple Deserialize(const uint8_t* data, uint32_t size) const;

  /// Deserializes only column `col` — the common case for predicate
  /// evaluation, avoiding materializing the full tuple.
  Value DeserializeColumn(const uint8_t* data, uint32_t size, size_t col) const;

  /// Serialized size in bytes of `tuple` under this schema.
  uint32_t SerializedSize(const Tuple& tuple) const;

  /// True when every column is fixed width (all tuples have the same size).
  bool IsFixedWidth() const;

 private:
  std::vector<Column> columns_;
};

/// Convenience constructor for the ubiquitous all-INT64 schemas of the
/// micro-benchmark: columns are named c1..cN.
Schema MakeIntSchema(size_t num_columns);

}  // namespace smoothscan

#endif  // SMOOTHSCAN_STORAGE_SCHEMA_H_
