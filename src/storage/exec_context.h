// ExecContext: the accounting surface an operator executes against — which
// buffer pool its page accesses go through, which CPU meter its work is
// charged to, which simulated disk classifies its stream. Serial execution
// uses the engine's shared instances; morsel-driven parallel execution hands
// every morsel a private stack (MorselContext) so that simulated time is
// charged per *logical access stream* and stays a pure function of the morsel
// decomposition, independent of worker count and interleaving.

#ifndef SMOOTHSCAN_STORAGE_EXEC_CONTEXT_H_
#define SMOOTHSCAN_STORAGE_EXEC_CONTEXT_H_

#include "storage/engine.h"

namespace smoothscan {

class BatchPool;
class QueryMemoryScope;

/// Borrowed pointers to the components an operator charges its work to.
/// Copyable; the pointees must outlive every operator using the context.
struct ExecContext {
  StorageManager* storage = nullptr;
  BufferPool* pool = nullptr;
  CpuMeter* cpu = nullptr;
  SimDisk* disk = nullptr;
  /// Recycled-batch pool for the operator's output batches (set by the
  /// parallel scan driver for its kernels; null for serial operators, which
  /// reuse the caller's carry batch and need no pool).
  BatchPool* batch_pool = nullptr;
  /// Per-query execution-memory account (quota + broker charging). Null:
  /// ungoverned. Never affects simulated cost — accounting bytes, not time.
  QueryMemoryScope* mem = nullptr;

  bool valid() const { return pool != nullptr; }
};

/// The engine's shared (serial) execution context.
inline ExecContext EngineContext(Engine* engine) {
  return ExecContext{&engine->storage(), &engine->pool(), &engine->cpu(),
                     &engine->disk()};
}

/// The per-morsel accounting stack: a private simulated disk (one logical
/// access stream), a private single-shard buffer pool (morsel-local
/// residency, exact LRU) and a private CPU meter. Page *data* still comes
/// from the engine's StorageManager — pages are immutable at query time — so
/// only accounting state is duplicated. When the parallel operator finishes
/// it merges every context into the engine in morsel order, which keeps the
/// accumulated doubles bit-identical across degrees of parallelism.
class MorselContext {
 public:
  /// `mirror` (optional, typically the engine's shared pool) receives the
  /// morsel's residency and pins — see BufferPool::SetMirror.
  explicit MorselContext(Engine* engine, BufferPool* mirror = nullptr)
      : engine_(engine),
        disk_(engine->options().device, engine->options().page_size),
        pool_(&engine->storage(), &disk_, engine->options().buffer_pool_pages,
              /*num_shards=*/1),
        cpu_(engine->options().cpu_costs) {
    pool_.SetMirror(mirror);
    ctx_.storage = &engine->storage();
    ctx_.pool = &pool_;
    ctx_.cpu = &cpu_;
    ctx_.disk = &disk_;
  }

  MorselContext(const MorselContext&) = delete;
  MorselContext& operator=(const MorselContext&) = delete;

  /// Hands the morsel's kernels a batch pool / memory account (set once by
  /// the parallel scan driver before workers start).
  void SetBatchPool(BatchPool* pool) { ctx_.batch_pool = pool; }
  void SetMemScope(QueryMemoryScope* mem) { ctx_.mem = mem; }

  const ExecContext& ctx() const { return ctx_; }
  SimDisk& disk() { return disk_; }
  BufferPool& pool() { return pool_; }
  CpuMeter& cpu() { return cpu_; }

  /// Folds this stream's accounting into an arbitrary sink (the engine's
  /// shared stream, or a query's private stack under the multi-query engine).
  /// Call exactly once per context, in morsel order.
  void MergeInto(SimDisk* disk, CpuMeter* cpu) {
    disk->Absorb(disk_.stats());
    cpu->Add(cpu_.time());
  }

  /// MergeInto the engine the context was built from.
  void MergeIntoEngine() { MergeInto(&engine_->disk(), &engine_->cpu()); }

 private:
  Engine* engine_;
  SimDisk disk_;
  BufferPool pool_;
  CpuMeter cpu_;
  ExecContext ctx_;
};

/// The per-query accounting stack of the multi-query engine: a private
/// simulated disk, a private buffer pool with the *engine's* capacity and
/// shard count (so a single query observes exactly the hit/miss sequence a
/// solo cold run against the engine pool would), and a private CPU meter —
/// all starting cold and zeroed. Because the stack is private, a query's
/// simulated cost is a pure function of the query and the data: bit-identical
/// no matter how many queries run beside it. Page *data* still comes from the
/// shared StorageManager, and when `mirror` is given (the engine's shared
/// pool) every fetch additionally pins its page there, so concurrent queries
/// contend for the one real pool without perturbing each other's accounting.
class QueryContext {
 public:
  explicit QueryContext(Engine* engine, BufferPool* mirror = nullptr)
      : disk_(engine->options().device, engine->options().page_size),
        pool_(&engine->storage(), &disk_, engine->options().buffer_pool_pages),
        cpu_(engine->options().cpu_costs) {
    pool_.SetMirror(mirror);
    ctx_.storage = &engine->storage();
    ctx_.pool = &pool_;
    ctx_.cpu = &cpu_;
    ctx_.disk = &disk_;
  }

  QueryContext(const QueryContext&) = delete;
  QueryContext& operator=(const QueryContext&) = delete;

  /// Attaches the query's execution-memory account (see QueryMemoryScope).
  void SetMemScope(QueryMemoryScope* mem) { ctx_.mem = mem; }

  const ExecContext& ctx() const { return ctx_; }
  SimDisk& disk() { return disk_; }
  BufferPool& pool() { return pool_; }
  CpuMeter& cpu() { return cpu_; }

  /// Total simulated time charged to this query so far (I/O + CPU).
  double TotalTime() const { return disk_.stats().io_time + cpu_.time(); }

 private:
  SimDisk disk_;
  BufferPool pool_;
  CpuMeter cpu_;
  ExecContext ctx_;
};

}  // namespace smoothscan

#endif  // SMOOTHSCAN_STORAGE_EXEC_CONTEXT_H_
