// ExecContext: the accounting surface an operator executes against — which
// buffer pool its page accesses go through, which CPU meter its work is
// charged to, which simulated disk classifies its stream. Serial execution
// uses the engine's shared instances; morsel-driven parallel execution hands
// every morsel a private stack (MorselContext) so that simulated time is
// charged per *logical access stream* and stays a pure function of the morsel
// decomposition, independent of worker count and interleaving.

#ifndef SMOOTHSCAN_STORAGE_EXEC_CONTEXT_H_
#define SMOOTHSCAN_STORAGE_EXEC_CONTEXT_H_

#include "storage/engine.h"

namespace smoothscan {

/// Borrowed pointers to the components an operator charges its work to.
/// Copyable; the pointees must outlive every operator using the context.
struct ExecContext {
  StorageManager* storage = nullptr;
  BufferPool* pool = nullptr;
  CpuMeter* cpu = nullptr;
  SimDisk* disk = nullptr;

  bool valid() const { return pool != nullptr; }
};

/// The engine's shared (serial) execution context.
inline ExecContext EngineContext(Engine* engine) {
  return ExecContext{&engine->storage(), &engine->pool(), &engine->cpu(),
                     &engine->disk()};
}

/// The per-morsel accounting stack: a private simulated disk (one logical
/// access stream), a private single-shard buffer pool (morsel-local
/// residency, exact LRU) and a private CPU meter. Page *data* still comes
/// from the engine's StorageManager — pages are immutable at query time — so
/// only accounting state is duplicated. When the parallel operator finishes
/// it merges every context into the engine in morsel order, which keeps the
/// accumulated doubles bit-identical across degrees of parallelism.
class MorselContext {
 public:
  explicit MorselContext(Engine* engine)
      : engine_(engine),
        disk_(engine->options().device, engine->options().page_size),
        pool_(&engine->storage(), &disk_, engine->options().buffer_pool_pages,
              /*num_shards=*/1),
        cpu_(engine->options().cpu_costs) {
    ctx_.storage = &engine->storage();
    ctx_.pool = &pool_;
    ctx_.cpu = &cpu_;
    ctx_.disk = &disk_;
  }

  MorselContext(const MorselContext&) = delete;
  MorselContext& operator=(const MorselContext&) = delete;

  const ExecContext& ctx() const { return ctx_; }
  SimDisk& disk() { return disk_; }
  BufferPool& pool() { return pool_; }
  CpuMeter& cpu() { return cpu_; }

  /// Folds this stream's accounting into the engine the context was built
  /// from. Call exactly once per context, in morsel order.
  void MergeIntoEngine() {
    engine_->disk().Absorb(disk_.stats());
    engine_->cpu().Add(cpu_.time());
  }

 private:
  Engine* engine_;
  SimDisk disk_;
  BufferPool pool_;
  CpuMeter cpu_;
  ExecContext ctx_;
};

}  // namespace smoothscan

#endif  // SMOOTHSCAN_STORAGE_EXEC_CONTEXT_H_
