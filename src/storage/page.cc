#include "storage/page.h"

namespace smoothscan {

Page::Page(uint32_t page_size) : bytes_(page_size, 0) {
  SMOOTHSCAN_CHECK(page_size >= kHeaderSize + kSlotSize);
  WriteU16(0, 0);             // num_slots
  WriteU32(2, kHeaderSize);   // data_end
}

uint32_t Page::free_space() const {
  const uint32_t slots_begin = page_size() - kSlotSize * num_slots();
  return slots_begin - data_end();
}

bool Page::Fits(uint32_t size) const {
  return free_space() >= size + kSlotSize;
}

Result<SlotId> Page::Insert(const uint8_t* data, uint32_t size) {
  if (!Fits(size)) {
    return Status::ResourceExhausted("tuple does not fit in page");
  }
  const uint16_t slot = num_slots();
  const uint32_t off = data_end();
  std::memcpy(bytes_.data() + off, data, size);
  WriteU16(SlotOffset(slot), static_cast<uint16_t>(off));
  WriteU16(SlotOffset(slot) + 2, static_cast<uint16_t>(size));
  WriteU16(0, static_cast<uint16_t>(slot + 1));
  WriteU32(2, off + size);
  return static_cast<SlotId>(slot);
}

}  // namespace smoothscan
