#include "storage/page.h"

#include <algorithm>

namespace smoothscan {

Page::Page(uint32_t page_size) : bytes_(page_size, 0) {
  SMOOTHSCAN_CHECK(page_size >= kHeaderSize + kSlotSize);
  SMOOTHSCAN_CHECK(page_size < kDeadOffset);  // The sentinel must stay free.
  WriteU16(0, 0);             // num_slots
  WriteU32(2, kHeaderSize);   // data_end
  WriteU16(6, 0);             // frag_bytes
  WriteU16(8, 0);             // dead_slots
}

uint32_t Page::free_space() const {
  const uint32_t slots_begin = page_size() - kSlotSize * num_slots();
  return slots_begin - data_end();
}

bool Page::Fits(uint32_t size) const {
  // A recycled tombstone slot costs no directory growth, but reserving one
  // slot entry keeps the check conservative and branch-free.
  return free_space() >= size + kSlotSize;
}

bool Page::FitsWithCompaction(uint32_t size) const {
  return usable_space() >= size + kSlotSize;
}

void Page::PlaceTuple(SlotId slot, const uint8_t* data, uint32_t size) {
  const uint32_t off = data_end();
  std::memcpy(bytes_.data() + off, data, size);
  WriteU16(SlotOffset(slot), static_cast<uint16_t>(off));
  WriteU16(SlotOffset(slot) + 2, static_cast<uint16_t>(size));
  WriteU32(2, off + size);
}

Result<SlotId> Page::Insert(const uint8_t* data, uint32_t size) {
  if (!Fits(size)) {
    if (!FitsWithCompaction(size)) {
      return Status::ResourceExhausted("tuple does not fit in page");
    }
    Compact();
  }
  // Recycle a tombstoned slot before growing the directory.
  if (dead_slots() > 0) {
    const uint16_t n = num_slots();
    for (uint16_t s = 0; s < n; ++s) {
      if (ReadU16(SlotOffset(s)) != kDeadOffset) continue;
      PlaceTuple(static_cast<SlotId>(s), data, size);
      WriteU16(8, static_cast<uint16_t>(dead_slots() - 1));
      return static_cast<SlotId>(s);
    }
    SMOOTHSCAN_CHECK(false);  // dead_slots() lied.
  }
  const uint16_t slot = num_slots();
  WriteU16(0, static_cast<uint16_t>(slot + 1));
  PlaceTuple(static_cast<SlotId>(slot), data, size);
  return static_cast<SlotId>(slot);
}

Status Page::Update(SlotId slot, const uint8_t* data, uint32_t size) {
  SMOOTHSCAN_CHECK(slot < num_slots());
  const uint32_t old_off = ReadU16(SlotOffset(slot));
  SMOOTHSCAN_CHECK(old_off != kDeadOffset);  // Updating a tombstone is a bug.
  const uint32_t old_size = ReadU16(SlotOffset(slot) + 2);
  if (size <= old_size) {
    // In place; the tail of the old image becomes fragmentation.
    std::memcpy(bytes_.data() + old_off, data, size);
    WriteU16(SlotOffset(slot) + 2, static_cast<uint16_t>(size));
    WriteU16(6, static_cast<uint16_t>(frag_bytes() + (old_size - size)));
    return Status::OK();
  }
  // Growing: relocate within the page. The old image becomes reclaimable
  // space, and the slot entry is re-used, so fit is judged against usable
  // space plus the freed image.
  if (usable_space() + old_size < size) {
    return Status::ResourceExhausted("updated tuple does not fit in page");
  }
  // Free the old image first so Compact() can reclaim it.
  WriteU16(SlotOffset(slot), kDeadOffset);
  WriteU16(6, static_cast<uint16_t>(frag_bytes() + old_size));
  if (free_space() < size) Compact();
  SMOOTHSCAN_CHECK(free_space() >= size);
  PlaceTuple(slot, data, size);
  return Status::OK();
}

void Page::Delete(SlotId slot) {
  SMOOTHSCAN_CHECK(slot < num_slots());
  const uint32_t off = ReadU16(SlotOffset(slot));
  SMOOTHSCAN_CHECK(off != kDeadOffset);  // Double delete is a bug.
  const uint32_t size = ReadU16(SlotOffset(slot) + 2);
  WriteU16(SlotOffset(slot), kDeadOffset);
  WriteU16(SlotOffset(slot) + 2, 0);
  WriteU16(6, static_cast<uint16_t>(frag_bytes() + size));
  WriteU16(8, static_cast<uint16_t>(dead_slots() + 1));
}

void Page::Compact() {
  // Collect live slots in data order so the slide never overwrites unmoved
  // bytes, then rewrite images contiguously from the header.
  const uint16_t n = num_slots();
  struct Live {
    uint32_t off;
    uint32_t size;
    SlotId slot;
  };
  std::vector<Live> live;
  live.reserve(n);
  for (uint16_t s = 0; s < n; ++s) {
    const uint32_t off = ReadU16(SlotOffset(s));
    if (off == kDeadOffset) continue;
    live.push_back({off, ReadU16(SlotOffset(s) + 2), static_cast<SlotId>(s)});
  }
  std::sort(live.begin(), live.end(),
            [](const Live& a, const Live& b) { return a.off < b.off; });
  uint32_t write = kHeaderSize;
  for (const Live& t : live) {
    if (t.off != write) {
      std::memmove(bytes_.data() + write, bytes_.data() + t.off, t.size);
      WriteU16(SlotOffset(t.slot), static_cast<uint16_t>(write));
    }
    write += t.size;
  }
  WriteU32(2, write);
  WriteU16(6, 0);
}

}  // namespace smoothscan
