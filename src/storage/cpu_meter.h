// CPU cost accounting. The paper's central trade — Smooth Scan "invests CPU
// cycles for reading additional tuples from each page" to save I/O — requires
// charging CPU work in the same simulated-time units as I/O. One sequential
// page read costs 1.0 time unit (see DeviceProfile); the constants below make
// inspecting a full page of ~100 tuples cost a few percent of reading it,
// consistent with the paper's "one I/O ≈ a million CPU instructions" rule of
// thumb [19] while keeping CPU visible in the Fig. 4 breakdowns.

#ifndef SMOOTHSCAN_STORAGE_CPU_METER_H_
#define SMOOTHSCAN_STORAGE_CPU_METER_H_

#include <cmath>
#include <cstdint>

namespace smoothscan {

/// Per-operation CPU costs in simulated time units (seq page read = 1.0).
struct CpuCosts {
  /// Deserializing one tuple and evaluating the predicate on it.
  double inspect_tuple = 5e-4;
  /// Copying a qualifying tuple to the output (or into a result cache).
  double produce_tuple = 2e-4;
  /// One bitmap or hash cache operation (probe/insert/delete).
  double cache_op = 5e-5;
  /// Advancing one index-leaf entry.
  double index_entry = 5e-5;
  /// Per-element-comparison cost of sorting (total = n * log2(n) * this).
  double sort_per_cmp = 2e-4;
  /// One hash-table build or probe operation in joins/aggregates.
  double hash_op = 2e-4;
  /// Applying one mutation to a slotted page (serialize + slot bookkeeping;
  /// index-maintenance queueing is amortized in). Writes cost more than
  /// inspection but stay far below one page I/O, like the other constants.
  double write_tuple = 1e-3;
};

/// Accumulates simulated CPU time.
class CpuMeter {
 public:
  explicit CpuMeter(CpuCosts costs = CpuCosts()) : costs_(costs) {}

  const CpuCosts& costs() const { return costs_; }

  void ChargeInspect(uint64_t tuples = 1) {
    time_ += costs_.inspect_tuple * static_cast<double>(tuples);
  }
  void ChargeProduce(uint64_t tuples = 1) {
    time_ += costs_.produce_tuple * static_cast<double>(tuples);
  }
  void ChargeCacheOp(uint64_t ops = 1) {
    time_ += costs_.cache_op * static_cast<double>(ops);
  }
  void ChargeIndexEntry(uint64_t entries = 1) {
    time_ += costs_.index_entry * static_cast<double>(entries);
  }
  /// Charges an n*log2(n) comparison sort of `n` items.
  void ChargeSort(uint64_t n) {
    if (n < 2) return;
    time_ += costs_.sort_per_cmp * static_cast<double>(n) *
             std::log2(static_cast<double>(n));
  }
  void ChargeHashOp(uint64_t ops = 1) {
    time_ += costs_.hash_op * static_cast<double>(ops);
  }
  void ChargeWriteTuple(uint64_t tuples = 1) {
    time_ += costs_.write_tuple * static_cast<double>(tuples);
  }
  /// Adds another meter's accumulated time (morsel merge; callers merge in
  /// morsel order so double accumulation stays deterministic).
  void Add(double time) { time_ += time; }

  double time() const { return time_; }
  void Reset() { time_ = 0.0; }

 private:
  CpuCosts costs_;
  double time_ = 0.0;
};

}  // namespace smoothscan

#endif  // SMOOTHSCAN_STORAGE_CPU_METER_H_
