#include "storage/storage_manager.h"

namespace smoothscan {

FileId StorageManager::CreateFile(std::string name) {
  latch::LatchGuard lock(mu_);
  files_.push_back(File{std::move(name), {}});
  return static_cast<FileId>(files_.size() - 1);
}

PageId StorageManager::AppendPage(FileId file) {
  latch::LatchGuard lock(mu_);
  SMOOTHSCAN_CHECK(file < files_.size());
  files_[file].pages.push_back(std::make_unique<Page>(page_size_));
  return static_cast<PageId>(files_[file].pages.size() - 1);
}

void StorageManager::TruncateFile(FileId file) {
  latch::LatchGuard lock(mu_);
  SMOOTHSCAN_CHECK(file < files_.size());
  files_[file].pages.clear();
}

Page* StorageManager::GetPageForWrite(FileId file, PageId page) {
  SMOOTHSCAN_CHECK(file < files_.size());
  SMOOTHSCAN_CHECK(page < files_[file].pages.size());
  return files_[file].pages[page].get();
}

const Page& StorageManager::GetPage(FileId file, PageId page) const {
  const File& f = GetFile(file);
  SMOOTHSCAN_CHECK(page < f.pages.size());
  return *f.pages[page];
}

size_t StorageManager::NumPages(FileId file) const {
  return GetFile(file).pages.size();
}

const std::string& StorageManager::FileName(FileId file) const {
  return GetFile(file).name;
}

}  // namespace smoothscan
