#include "storage/sim_disk.h"

#include <algorithm>

namespace smoothscan {

void SimDisk::Access(FileId file, PageId first, uint32_t num_pages,
                     bool is_write) {
  latch::LatchGuard lock(mu_);
  stats_.io_requests += 1;
  if (is_write) {
    stats_.pages_written += num_pages;
  } else {
    stats_.pages_read += num_pages;
    stats_.bytes_read += static_cast<uint64_t>(num_pages) * page_size_;
  }

  // Positioning cost for the first page of the request.
  double start_cost = profile_.rand_cost;
  bool start_sequential = false;
  auto it = last_page_.find(file);
  if (it != last_page_.end() && first > it->second) {
    // Forward movement: adjacent page (distance 1) is a pure sequential
    // access; a short skip costs the transfer time of the passed-over pages,
    // capped by a full seek.
    const double skip_cost =
        static_cast<double>(first - it->second) * profile_.seq_cost;
    if (skip_cost < profile_.rand_cost) {
      start_cost = skip_cost;
      start_sequential = true;
    }
  }
  if (start_sequential) {
    stats_.seq_ios += 1;
  } else {
    stats_.random_ios += 1;
  }
  stats_.io_time += start_cost;

  // Remaining pages of the request transfer sequentially.
  if (num_pages > 1) {
    stats_.seq_ios += num_pages - 1;
    stats_.io_time += profile_.seq_cost * (num_pages - 1);
  }
  last_page_[file] = first + num_pages - 1;
}

void SimDisk::ReadPage(FileId file, PageId page) {
  Access(file, page, 1, /*is_write=*/false);
}

void SimDisk::ReadExtent(FileId file, PageId first, uint32_t num_pages) {
  if (num_pages == 0) return;
  Access(file, first, num_pages, /*is_write=*/false);
}

void SimDisk::WriteExtent(FileId file, PageId first, uint32_t num_pages) {
  if (num_pages == 0) return;
  Access(file, first, num_pages, /*is_write=*/true);
}

void SimDisk::WritePage(FileId file, PageId page) {
  Access(file, page, 1, /*is_write=*/true);
}

}  // namespace smoothscan
