// SimDisk: the simulated I/O device that substitutes for the paper's HDD/SSD
// testbed (see DESIGN.md §1).
//
// Every page access issued by the buffer pool is classified as *sequential*
// (it targets the page immediately after the previously accessed page of the
// same file) or *random*, and charged the device's per-page cost. The paper's
// own analysis (Section V-A) characterizes devices purely by this ratio:
// HDD rand:seq = 10:1, SSD rand:seq = 2:1. Positions are tracked per file,
// matching the paper's cost model where index-leaf traversal stays sequential
// while interleaved heap look-ups are random (Eq. 11).
//
// A short *forward* skip is charged min(rand_cost, distance * seq_cost): the
// head (or the drive's read-ahead) passes over the skipped pages at transfer
// speed, which is what makes the nearly sequential pattern of a sorted-TID
// bitmap scan "easily detected by disk prefetchers" (Section II) cheap. Such
// accesses are counted as sequential when the skip is cheaper than a seek.
//
// The accountant additionally counts I/O *requests*: one ReadPage call or one
// ReadExtent call is a single request regardless of the number of pages it
// transfers. This is the "#I/O Req." metric of the paper's Table II and the
// quantity Smooth Scan's flattening is designed to reduce.
//
// Threading model: a SimDisk instance is one *logical access stream*. The
// engine's instance is the serial stream; morsel-driven execution gives every
// morsel a private SimDisk (see MorselContext) and merges the resulting
// IoStats into the engine's instance in morsel order, so simulated time is a
// pure function of the morsel decomposition — never of worker interleaving.
// The instance itself is latch-protected, so incidental concurrent use (e.g.
// two operators sharing the engine stream) is safe, merely not deterministic.

#ifndef SMOOTHSCAN_STORAGE_SIM_DISK_H_
#define SMOOTHSCAN_STORAGE_SIM_DISK_H_

#include <cstdint>
#include <string>
#include <unordered_map>

#include "common/latch_rank.h"
#include "common/thread_annotations.h"
#include "common/types.h"

namespace smoothscan {

/// Cost profile of a storage device, in abstract time units where one
/// sequential page read costs `seq_cost`.
struct DeviceProfile {
  std::string name = "hdd";
  /// Cost of a random page access (head movement + transfer).
  double rand_cost = 10.0;
  /// Cost of a sequential page access (transfer only).
  double seq_cost = 1.0;

  /// The paper's HDD characteristics (Section V-A): rand:seq = 10:1.
  static DeviceProfile Hdd() { return DeviceProfile{"hdd", 10.0, 1.0}; }
  /// The paper's SSD characteristics (Section V-A): rand:seq = 2:1.
  static DeviceProfile Ssd() { return DeviceProfile{"ssd", 2.0, 1.0}; }
};

/// Cumulative I/O counters. All counters only ever increase; benchmarks diff
/// snapshots around the measured region.
struct IoStats {
  uint64_t random_ios = 0;      ///< Page accesses classified random.
  uint64_t seq_ios = 0;         ///< Page accesses classified sequential.
  uint64_t io_requests = 0;     ///< Read calls (extent reads count once).
  uint64_t pages_read = 0;      ///< Total pages transferred (reads).
  uint64_t pages_written = 0;   ///< Total pages transferred (writes).
  uint64_t bytes_read = 0;      ///< pages_read * page_size.
  double io_time = 0.0;         ///< Simulated time spent in I/O.

  IoStats& operator+=(const IoStats& other) {
    random_ios += other.random_ios;
    seq_ios += other.seq_ios;
    io_requests += other.io_requests;
    pages_read += other.pages_read;
    pages_written += other.pages_written;
    bytes_read += other.bytes_read;
    io_time += other.io_time;
    return *this;
  }

  IoStats operator-(const IoStats& other) const {
    IoStats d;
    d.random_ios = random_ios - other.random_ios;
    d.seq_ios = seq_ios - other.seq_ios;
    d.io_requests = io_requests - other.io_requests;
    d.pages_read = pages_read - other.pages_read;
    d.pages_written = pages_written - other.pages_written;
    d.bytes_read = bytes_read - other.bytes_read;
    d.io_time = io_time - other.io_time;
    return d;
  }
};

/// Simulated disk: pure cost accounting, no data movement (the data lives in
/// StorageManager). Latch-protected; see the threading model above.
class SimDisk {
 public:
  explicit SimDisk(DeviceProfile profile = DeviceProfile::Hdd(),
                   uint32_t page_size = kDefaultPageSize)
      : profile_(profile), page_size_(page_size) {}

  /// Charges one single-page read of `page` in `file`.
  void ReadPage(FileId file, PageId page);

  /// Charges one extent read of `num_pages` pages starting at `first`:
  /// a single I/O request, with the first page charged by position and the
  /// remainder sequential. Models the flattened prefetching of Smooth Scan's
  /// Mode 2 and the read-ahead a full scan enjoys.
  void ReadExtent(FileId file, PageId first, uint32_t num_pages);

  /// Charges one extent write (overflow-file spills, dirty-page write-back).
  /// Same positioning model as reads; counted in `pages_written`.
  void WriteExtent(FileId file, PageId first, uint32_t num_pages);

  /// Charges one single-page write of `page` in `file` (dirty-frame
  /// write-back of an isolated page).
  void WritePage(FileId file, PageId page);

  /// Snapshot of the counters (copied under the latch).
  IoStats stats() const EXCLUDES(mu_) {
    latch::LatchGuard lock(mu_);
    return stats_;
  }

  const DeviceProfile& profile() const { return profile_; }

  /// Places the head of this stream just after `page` of `file`, so the next
  /// forward access continues sequentially. Morsel-driven execution seeds a
  /// morsel's private stream at `page_begin - 1`: in the serial execution
  /// order the preceding page-range morsel ended exactly there, which is what
  /// keeps the summed parallel cost bit-identical to the serial scan.
  void SeedPosition(FileId file, PageId page) EXCLUDES(mu_) {
    latch::LatchGuard lock(mu_);
    last_page_[file] = page;
  }

  /// Adds another stream's counters to this one (morsel merge). Callers merge
  /// in morsel order so double accumulation stays deterministic.
  void Absorb(const IoStats& other) EXCLUDES(mu_) {
    latch::LatchGuard lock(mu_);
    stats_ += other;
  }

  /// Forgets per-file head positions (e.g. between cold query runs) without
  /// clearing cumulative counters.
  void ResetPositions() EXCLUDES(mu_) {
    latch::LatchGuard lock(mu_);
    last_page_.clear();
  }

  /// Clears counters and positions.
  void ResetAll() EXCLUDES(mu_) {
    latch::LatchGuard lock(mu_);
    stats_ = IoStats();
    last_page_.clear();
  }

 private:
  void Access(FileId file, PageId first, uint32_t num_pages, bool is_write)
      EXCLUDES(mu_);

  DeviceProfile profile_;
  uint32_t page_size_;
  mutable latch::Latch mu_{latch::LatchRank::kDisk, "SimDisk::mu_"};
  IoStats stats_ GUARDED_BY(mu_);
  std::unordered_map<FileId, PageId> last_page_ GUARDED_BY(mu_);
};

}  // namespace smoothscan

#endif  // SMOOTHSCAN_STORAGE_SIM_DISK_H_
