#include "storage/schema.h"

#include <cstring>

namespace smoothscan {

namespace {

void PutU32(std::vector<uint8_t>* out, uint32_t v) {
  out->push_back(static_cast<uint8_t>(v));
  out->push_back(static_cast<uint8_t>(v >> 8));
  out->push_back(static_cast<uint8_t>(v >> 16));
  out->push_back(static_cast<uint8_t>(v >> 24));
}

void PutU64(std::vector<uint8_t>* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<uint8_t>(v >> (8 * i)));
}

uint32_t GetU32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) | (static_cast<uint32_t>(p[3]) << 24);
}

uint64_t GetU64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(p[i]) << (8 * i);
  return v;
}

}  // namespace

int Schema::FindColumn(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

void Schema::Serialize(const Tuple& tuple, std::vector<uint8_t>* out) const {
  SMOOTHSCAN_CHECK(tuple.size() == columns_.size());
  for (size_t i = 0; i < columns_.size(); ++i) {
    const Value& v = tuple[i];
    SMOOTHSCAN_CHECK(v.type() == columns_[i].type);
    switch (columns_[i].type) {
      case ValueType::kInt64:
      case ValueType::kDate:
        PutU64(out, static_cast<uint64_t>(v.AsInt64()));
        break;
      case ValueType::kDouble: {
        uint64_t bits;
        const double d = v.AsDouble();
        std::memcpy(&bits, &d, sizeof(bits));
        PutU64(out, bits);
        break;
      }
      case ValueType::kString: {
        const std::string& s = v.AsString();
        PutU32(out, static_cast<uint32_t>(s.size()));
        out->insert(out->end(), s.begin(), s.end());
        break;
      }
    }
  }
}

Tuple Schema::Deserialize(const uint8_t* data, uint32_t size) const {
  Tuple tuple;
  tuple.reserve(columns_.size());
  uint32_t off = 0;
  for (const Column& col : columns_) {
    switch (col.type) {
      case ValueType::kInt64:
        SMOOTHSCAN_CHECK(off + 8 <= size);
        tuple.push_back(Value::Int64(static_cast<int64_t>(GetU64(data + off))));
        off += 8;
        break;
      case ValueType::kDate:
        SMOOTHSCAN_CHECK(off + 8 <= size);
        tuple.push_back(Value::Date(static_cast<int64_t>(GetU64(data + off))));
        off += 8;
        break;
      case ValueType::kDouble: {
        SMOOTHSCAN_CHECK(off + 8 <= size);
        const uint64_t bits = GetU64(data + off);
        double d;
        std::memcpy(&d, &bits, sizeof(d));
        tuple.push_back(Value::Double(d));
        off += 8;
        break;
      }
      case ValueType::kString: {
        SMOOTHSCAN_CHECK(off + 4 <= size);
        const uint32_t len = GetU32(data + off);
        off += 4;
        SMOOTHSCAN_CHECK(off + len <= size);
        tuple.push_back(Value::String(
            std::string(reinterpret_cast<const char*>(data + off), len)));
        off += len;
        break;
      }
    }
  }
  return tuple;
}

Value Schema::DeserializeColumn(const uint8_t* data, uint32_t size,
                                size_t col) const {
  SMOOTHSCAN_CHECK(col < columns_.size());
  uint32_t off = 0;
  for (size_t i = 0; i < col; ++i) {
    if (smoothscan::IsFixedWidth(columns_[i].type)) {
      off += 8;
    } else {
      SMOOTHSCAN_CHECK(off + 4 <= size);
      off += 4 + GetU32(data + off);
    }
  }
  switch (columns_[col].type) {
    case ValueType::kInt64:
      SMOOTHSCAN_CHECK(off + 8 <= size);
      return Value::Int64(static_cast<int64_t>(GetU64(data + off)));
    case ValueType::kDate:
      SMOOTHSCAN_CHECK(off + 8 <= size);
      return Value::Date(static_cast<int64_t>(GetU64(data + off)));
    case ValueType::kDouble: {
      SMOOTHSCAN_CHECK(off + 8 <= size);
      const uint64_t bits = GetU64(data + off);
      double d;
      std::memcpy(&d, &bits, sizeof(d));
      return Value::Double(d);
    }
    case ValueType::kString: {
      SMOOTHSCAN_CHECK(off + 4 <= size);
      const uint32_t len = GetU32(data + off);
      SMOOTHSCAN_CHECK(off + 4 + len <= size);
      return Value::String(
          std::string(reinterpret_cast<const char*>(data + off + 4), len));
    }
  }
  return Value();
}

uint32_t Schema::SerializedSize(const Tuple& tuple) const {
  SMOOTHSCAN_CHECK(tuple.size() == columns_.size());
  uint32_t size = 0;
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (smoothscan::IsFixedWidth(columns_[i].type)) {
      size += 8;
    } else {
      size += 4 + static_cast<uint32_t>(tuple[i].AsString().size());
    }
  }
  return size;
}

bool Schema::IsFixedWidth() const {
  for (const Column& c : columns_) {
    if (!smoothscan::IsFixedWidth(c.type)) return false;
  }
  return true;
}

Schema MakeIntSchema(size_t num_columns) {
  std::vector<Column> cols;
  cols.reserve(num_columns);
  for (size_t i = 0; i < num_columns; ++i) {
    cols.push_back({"c" + std::to_string(i + 1), ValueType::kInt64});
  }
  return Schema(std::move(cols));
}

}  // namespace smoothscan
