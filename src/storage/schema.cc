#include "storage/schema.h"

#include <bit>
#include <cstring>

namespace smoothscan {

namespace {

// Serialized integers are little-endian. On little-endian hosts (the only
// targets we build for today) a plain memcpy load/store compiles to a single
// mov — the byte-wise fallback keeps big-endian hosts correct.

void PutU32(std::vector<uint8_t>* out, uint32_t v) {
  if constexpr (std::endian::native == std::endian::little) {
    const uint8_t* p = reinterpret_cast<const uint8_t*>(&v);
    out->insert(out->end(), p, p + 4);
  } else {
    for (int i = 0; i < 4; ++i) out->push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void PutU64(std::vector<uint8_t>* out, uint64_t v) {
  if constexpr (std::endian::native == std::endian::little) {
    const uint8_t* p = reinterpret_cast<const uint8_t*>(&v);
    out->insert(out->end(), p, p + 8);
  } else {
    for (int i = 0; i < 8; ++i) out->push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

uint32_t GetU32(const uint8_t* p) {
  if constexpr (std::endian::native == std::endian::little) {
    uint32_t v;
    std::memcpy(&v, p, sizeof(v));
    return v;
  } else {
    return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
           (static_cast<uint32_t>(p[2]) << 16) |
           (static_cast<uint32_t>(p[3]) << 24);
  }
}

uint64_t GetU64(const uint8_t* p) { return LoadU64LE(p); }

}  // namespace

int Schema::FindColumn(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

void Schema::Serialize(const Tuple& tuple, std::vector<uint8_t>* out) const {
  SMOOTHSCAN_CHECK(tuple.size() == columns_.size());
  for (size_t i = 0; i < columns_.size(); ++i) {
    const Value& v = tuple[i];
    SMOOTHSCAN_CHECK(v.type() == columns_[i].type);
    switch (columns_[i].type) {
      case ValueType::kInt64:
      case ValueType::kDate:
        PutU64(out, static_cast<uint64_t>(v.AsInt64()));
        break;
      case ValueType::kDouble: {
        uint64_t bits;
        const double d = v.AsDouble();
        std::memcpy(&bits, &d, sizeof(bits));
        PutU64(out, bits);
        break;
      }
      case ValueType::kString: {
        const std::string& s = v.AsString();
        PutU32(out, static_cast<uint32_t>(s.size()));
        out->insert(out->end(), s.begin(), s.end());
        break;
      }
    }
  }
}

Tuple Schema::Deserialize(const uint8_t* data, uint32_t size) const {
  Tuple tuple;
  DeserializeInto(data, size, &tuple);
  return tuple;
}

void Schema::DeserializeVarWidthInto(const uint8_t* data, uint32_t size,
                                     Tuple* out) const {
  out->resize(columns_.size());
  uint32_t off = 0;
  size_t i = 0;
  for (const Column& col : columns_) {
    Value& slot = (*out)[i++];
    switch (col.type) {
      case ValueType::kInt64:
        SMOOTHSCAN_CHECK(off + 8 <= size);
        slot = Value::Int64(static_cast<int64_t>(GetU64(data + off)));
        off += 8;
        break;
      case ValueType::kDate:
        SMOOTHSCAN_CHECK(off + 8 <= size);
        slot = Value::Date(static_cast<int64_t>(GetU64(data + off)));
        off += 8;
        break;
      case ValueType::kDouble: {
        SMOOTHSCAN_CHECK(off + 8 <= size);
        const uint64_t bits = GetU64(data + off);
        double d;
        std::memcpy(&d, &bits, sizeof(d));
        slot = Value::Double(d);
        off += 8;
        break;
      }
      case ValueType::kString: {
        SMOOTHSCAN_CHECK(off + 4 <= size);
        const uint32_t len = GetU32(data + off);
        off += 4;
        SMOOTHSCAN_CHECK(off + len <= size);
        slot = Value::String(
            std::string(reinterpret_cast<const char*>(data + off), len));
        off += len;
        break;
      }
    }
  }
}

Value Schema::DeserializeColumn(const uint8_t* data, uint32_t size,
                                size_t col) const {
  SMOOTHSCAN_CHECK(col < columns_.size());
  uint32_t off = 0;
  if (fixed_width_) {
    // Fast path: every column is 8 bytes, so the offset is direct — this is
    // the per-tuple key check of every scan's hot loop.
    off = static_cast<uint32_t>(col) * 8;
  } else {
    for (size_t i = 0; i < col; ++i) {
      if (smoothscan::IsFixedWidth(columns_[i].type)) {
        off += 8;
      } else {
        SMOOTHSCAN_CHECK(off + 4 <= size);
        off += 4 + GetU32(data + off);
      }
    }
  }
  switch (columns_[col].type) {
    case ValueType::kInt64:
      SMOOTHSCAN_CHECK(off + 8 <= size);
      return Value::Int64(static_cast<int64_t>(GetU64(data + off)));
    case ValueType::kDate:
      SMOOTHSCAN_CHECK(off + 8 <= size);
      return Value::Date(static_cast<int64_t>(GetU64(data + off)));
    case ValueType::kDouble: {
      SMOOTHSCAN_CHECK(off + 8 <= size);
      const uint64_t bits = GetU64(data + off);
      double d;
      std::memcpy(&d, &bits, sizeof(d));
      return Value::Double(d);
    }
    case ValueType::kString: {
      SMOOTHSCAN_CHECK(off + 4 <= size);
      const uint32_t len = GetU32(data + off);
      SMOOTHSCAN_CHECK(off + 4 + len <= size);
      return Value::String(
          std::string(reinterpret_cast<const char*>(data + off + 4), len));
    }
  }
  return Value();
}

uint32_t Schema::SerializedSize(const Tuple& tuple) const {
  SMOOTHSCAN_CHECK(tuple.size() == columns_.size());
  uint32_t size = 0;
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (smoothscan::IsFixedWidth(columns_[i].type)) {
      size += 8;
    } else {
      size += 4 + static_cast<uint32_t>(tuple[i].AsString().size());
    }
  }
  return size;
}

Schema MakeIntSchema(size_t num_columns) {
  std::vector<Column> cols;
  cols.reserve(num_columns);
  for (size_t i = 0; i < num_columns; ++i) {
    cols.push_back({"c" + std::to_string(i + 1), ValueType::kInt64});
  }
  return Schema(std::move(cols));
}

}  // namespace smoothscan
