// HeapFile: an unordered collection of tuples stored in slotted pages, the
// physical representation of a table. Appending is a build-time operation;
// query-time reads go through the buffer pool and are I/O-accounted.

#ifndef SMOOTHSCAN_STORAGE_HEAP_FILE_H_
#define SMOOTHSCAN_STORAGE_HEAP_FILE_H_

#include <functional>
#include <string>

#include "common/status.h"
#include "common/types.h"
#include "storage/engine.h"
#include "storage/exec_context.h"
#include "storage/schema.h"

namespace smoothscan {

/// A heap-organized table file. Owns no storage itself; pages live in the
/// engine's StorageManager under `file_id()`.
class HeapFile {
 public:
  /// Creates an empty heap file named `name` inside `engine`.
  HeapFile(Engine* engine, std::string name, Schema schema);

  HeapFile(const HeapFile&) = delete;
  HeapFile& operator=(const HeapFile&) = delete;

  /// Appends `tuple`, returning its TID. Build-time: not I/O-accounted.
  Result<Tid> Append(const Tuple& tuple);

  /// Reads the tuple at `tid` through the engine's buffer pool
  /// (I/O-accounted).
  Tuple Read(Tid tid) const;

  /// Same, charging `ctx` instead (morsel-driven execution).
  Tuple Read(Tid tid, const ExecContext& ctx) const;

  /// Build-time full iteration without I/O accounting (loaders, oracles and
  /// test baselines). `fn` receives (tid, tuple).
  void ForEachDirect(
      const std::function<void(Tid, const Tuple&)>& fn) const;

  /// Adjusts the live-tuple count (snapshot publish applies the era's net
  /// insert/delete delta; see write/table_version.h).
  void AddTuples(int64_t delta) {
    num_tuples_ = static_cast<uint64_t>(
        static_cast<int64_t>(num_tuples_) + delta);
  }

  FileId file_id() const { return file_id_; }
  const Schema& schema() const { return schema_; }
  const std::string& name() const { return name_; }
  size_t num_pages() const { return engine_->storage().NumPages(file_id_); }
  uint64_t num_tuples() const { return num_tuples_; }
  Engine* engine() const { return engine_; }

 private:
  Engine* engine_;
  std::string name_;
  Schema schema_;
  FileId file_id_;
  PageId tail_page_ = kInvalidPageId;
  uint64_t num_tuples_ = 0;
  std::vector<uint8_t> scratch_;
};

}  // namespace smoothscan

#endif  // SMOOTHSCAN_STORAGE_HEAP_FILE_H_
