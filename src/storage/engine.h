// Engine: the bundle of substrate components (storage, simulated disk, buffer
// pool, CPU meter) that every operator executes against. Owns its members and
// provides the measurement hooks benchmarks use (cold runs, time snapshots).

#ifndef SMOOTHSCAN_STORAGE_ENGINE_H_
#define SMOOTHSCAN_STORAGE_ENGINE_H_

#include <memory>

#include "storage/buffer_pool.h"
#include "storage/cpu_meter.h"
#include "storage/sim_disk.h"
#include "storage/storage_manager.h"

namespace smoothscan {

/// Engine construction knobs.
struct EngineOptions {
  uint32_t page_size = kDefaultPageSize;
  /// Buffer-pool capacity in pages (default 8 K pages = 64 MB at 8 KB pages).
  size_t buffer_pool_pages = 8192;
  DeviceProfile device = DeviceProfile::Hdd();
  CpuCosts cpu_costs;
};

/// One simulated database instance. Non-copyable; operators hold a pointer.
class Engine {
 public:
  explicit Engine(EngineOptions options = EngineOptions())
      : options_(options),
        storage_(options.page_size),
        disk_(options.device, options.page_size),
        pool_(&storage_, &disk_, options.buffer_pool_pages),
        cpu_(options.cpu_costs) {}

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  StorageManager& storage() { return storage_; }
  SimDisk& disk() { return disk_; }
  BufferPool& pool() { return pool_; }
  CpuMeter& cpu() { return cpu_; }
  const EngineOptions& options() const { return options_; }

  /// Total simulated elapsed time (I/O + CPU).
  double TotalTime() const { return disk_.stats().io_time + cpu_.time(); }

  /// Empties caches and forgets disk positions so the next query runs cold,
  /// as in the paper's experimental setup. Counters are preserved. Pages
  /// pinned by live PageGuards survive the flush (skip + report semantics);
  /// a cold restart between queries expects no live guards.
  void ColdRestart() {
    pool_.FlushAll();
    disk_.ResetPositions();
  }

 private:
  EngineOptions options_;
  StorageManager storage_;
  SimDisk disk_;
  BufferPool pool_;
  CpuMeter cpu_;
};

}  // namespace smoothscan

#endif  // SMOOTHSCAN_STORAGE_ENGINE_H_
