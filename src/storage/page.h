// Slotted heap page, the unit of I/O throughout the system. Layout mirrors
// the classic textbook design (and PostgreSQL's): a small header, tuple data
// growing downward from the header, and a slot directory growing upward from
// the end of the page.
//
//   [ header | tuple0 tuple1 ... -> free space <- ... slot1 slot0 ]

#ifndef SMOOTHSCAN_STORAGE_PAGE_H_
#define SMOOTHSCAN_STORAGE_PAGE_H_

#include <cstdint>
#include <cstring>
#include <vector>

#include "common/status.h"
#include "common/types.h"

namespace smoothscan {

/// A fixed-size slotted page. Tuples are immutable once inserted (the paper's
/// workloads are read-only after load), so there is no delete/compact path.
class Page {
 public:
  explicit Page(uint32_t page_size = kDefaultPageSize);

  Page(const Page&) = delete;
  Page& operator=(const Page&) = delete;
  Page(Page&&) = default;
  Page& operator=(Page&&) = default;

  /// Inserts a serialized tuple. Returns the slot on success or
  /// kResourceExhausted when the tuple does not fit.
  Result<SlotId> Insert(const uint8_t* data, uint32_t size);

  /// True when a tuple of `size` bytes fits (data + one slot entry).
  bool Fits(uint32_t size) const;

  uint16_t num_slots() const { return ReadU16(0); }

  /// Pointer to the serialized bytes of `slot`. `size` receives the length.
  /// Inline: this sits in the per-slot hot loop of every scan.
  const uint8_t* GetTuple(SlotId slot, uint32_t* size) const {
    SMOOTHSCAN_CHECK(slot < num_slots());
    const uint32_t off = ReadU16(SlotOffset(slot));
    *size = ReadU16(SlotOffset(slot) + 2);
    return bytes_.data() + off;
  }

  uint32_t page_size() const { return static_cast<uint32_t>(bytes_.size()); }
  uint32_t free_space() const;

 private:
  // Header layout: [u16 num_slots][u32 data_end].
  static constexpr uint32_t kHeaderSize = 6;
  static constexpr uint32_t kSlotSize = 4;  // [u16 offset][u16 length]

  uint16_t ReadU16(uint32_t off) const {
    uint16_t v;
    std::memcpy(&v, bytes_.data() + off, sizeof(v));
    return v;
  }
  void WriteU16(uint32_t off, uint16_t v) {
    std::memcpy(bytes_.data() + off, &v, sizeof(v));
  }
  uint32_t ReadU32(uint32_t off) const {
    uint32_t v;
    std::memcpy(&v, bytes_.data() + off, sizeof(v));
    return v;
  }
  void WriteU32(uint32_t off, uint32_t v) {
    std::memcpy(bytes_.data() + off, &v, sizeof(v));
  }

  uint32_t data_end() const { return ReadU32(2); }
  uint32_t SlotOffset(SlotId slot) const {
    return page_size() - kSlotSize * (static_cast<uint32_t>(slot) + 1);
  }

  std::vector<uint8_t> bytes_;
};

}  // namespace smoothscan

#endif  // SMOOTHSCAN_STORAGE_PAGE_H_
