// Slotted heap page, the unit of I/O throughout the system. Layout mirrors
// the classic textbook design (and PostgreSQL's): a small header, tuple data
// growing downward from the header, and a slot directory growing upward from
// the end of the page.
//
//   [ header | tuple0 tuple1 ... -> free space <- ... slot1 slot0 ]
//
// Mutation model (the write path): slots are stable addresses — Delete()
// tombstones a slot in place (its Tid never points at another tuple's bytes)
// and Update() rewrites a slot's bytes, relocating them within the page when
// the new image is larger. Dead bytes accumulate as fragmentation that
// Compact() reclaims by sliding live tuples together without renumbering any
// slot; Insert() compacts automatically when contiguous free space is short
// but reclaimable space suffices, and re-uses tombstoned slot entries before
// growing the directory.

#ifndef SMOOTHSCAN_STORAGE_PAGE_H_
#define SMOOTHSCAN_STORAGE_PAGE_H_

#include <cstdint>
#include <cstring>
#include <vector>

#include "common/status.h"
#include "common/types.h"

namespace smoothscan {

/// A fixed-size slotted page supporting insert, in-place update, tombstone
/// delete and compaction.
class Page {
 public:
  explicit Page(uint32_t page_size = kDefaultPageSize);

  Page(const Page&) = delete;
  Page& operator=(const Page&) = delete;
  Page(Page&&) = default;
  Page& operator=(Page&&) = default;

  /// Inserts a serialized tuple, re-using a tombstoned slot when one exists
  /// and compacting first when fragmentation hides enough space. Returns the
  /// slot on success or kResourceExhausted when the tuple does not fit.
  Result<SlotId> Insert(const uint8_t* data, uint32_t size);

  /// Rewrites the bytes of live slot `slot`. Shrinking or same-size updates
  /// are in place; growing updates relocate within the page (compacting if
  /// needed). kResourceExhausted when the new image cannot fit — the caller
  /// must delete here and re-insert elsewhere (a moved Tid).
  Status Update(SlotId slot, const uint8_t* data, uint32_t size);

  /// Tombstones live slot `slot`. Its bytes become reclaimable
  /// fragmentation; the slot id is recycled by a later Insert.
  void Delete(SlotId slot);

  /// True when `slot` holds a live tuple (false once tombstoned).
  bool IsLive(SlotId slot) const {
    SMOOTHSCAN_CHECK(slot < num_slots());
    return ReadU16(SlotOffset(slot)) != kDeadOffset;
  }

  /// Overwrites this page's bytes with `other`'s (snapshot publish: the page
  /// object — and every pointer to it — stays put, only content changes).
  void CopyFrom(const Page& other) {
    SMOOTHSCAN_CHECK(other.bytes_.size() == bytes_.size());
    bytes_ = other.bytes_;
  }

  /// True when a tuple of `size` bytes fits without compaction.
  bool Fits(uint32_t size) const;

  /// True when a tuple of `size` bytes fits once fragmentation is compacted
  /// away (the free-space-map's notion of usable space).
  bool FitsWithCompaction(uint32_t size) const;

  /// Slides live tuples together, reclaiming fragmentation. Slot ids are
  /// preserved; only data offsets move.
  void Compact();

  uint16_t num_slots() const { return ReadU16(0); }
  /// Slots holding live tuples.
  uint16_t live_slots() const { return num_slots() - dead_slots(); }

  /// Pointer to the serialized bytes of `slot`, or nullptr (with *size = 0)
  /// for a tombstoned slot — scan loops skip dead slots on the null.
  /// Inline: this sits in the per-slot hot loop of every scan.
  const uint8_t* GetTuple(SlotId slot, uint32_t* size) const {
    SMOOTHSCAN_CHECK(slot < num_slots());
    const uint32_t off = ReadU16(SlotOffset(slot));
    if (off == kDeadOffset) {
      *size = 0;
      return nullptr;
    }
    *size = ReadU16(SlotOffset(slot) + 2);
    return bytes_.data() + off;
  }

  uint32_t page_size() const { return static_cast<uint32_t>(bytes_.size()); }
  /// Contiguous free bytes between the data area and the slot directory.
  uint32_t free_space() const;
  /// Dead bytes reclaimable by Compact().
  uint32_t frag_bytes() const { return ReadU16(6); }
  /// Bytes an Insert can use after compaction (data only; the slot entry is
  /// accounted by Fits*).
  uint32_t usable_space() const { return free_space() + frag_bytes(); }

 private:
  // Header layout:
  //   [u16 num_slots][u32 data_end][u16 frag_bytes][u16 dead_slots].
  static constexpr uint32_t kHeaderSize = 10;
  static constexpr uint32_t kSlotSize = 4;  // [u16 offset][u16 length]
  /// Slot-offset sentinel marking a tombstoned slot (no tuple can start at
  /// the last byte of a page, and page sizes stay below 64 K).
  static constexpr uint16_t kDeadOffset = 0xFFFF;

  uint16_t ReadU16(uint32_t off) const {
    uint16_t v;
    std::memcpy(&v, bytes_.data() + off, sizeof(v));
    return v;
  }
  void WriteU16(uint32_t off, uint16_t v) {
    std::memcpy(bytes_.data() + off, &v, sizeof(v));
  }
  uint32_t ReadU32(uint32_t off) const {
    uint32_t v;
    std::memcpy(&v, bytes_.data() + off, sizeof(v));
    return v;
  }
  void WriteU32(uint32_t off, uint32_t v) {
    std::memcpy(bytes_.data() + off, &v, sizeof(v));
  }

  uint32_t data_end() const { return ReadU32(2); }
  uint16_t dead_slots() const { return ReadU16(8); }
  uint32_t SlotOffset(SlotId slot) const {
    return page_size() - kSlotSize * (static_cast<uint32_t>(slot) + 1);
  }
  /// Writes `data` at data_end under an existing slot entry.
  void PlaceTuple(SlotId slot, const uint8_t* data, uint32_t size);

  std::vector<uint8_t> bytes_;
};

}  // namespace smoothscan

#endif  // SMOOTHSCAN_STORAGE_PAGE_H_
