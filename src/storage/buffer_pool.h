// BufferPool: page-granularity LRU cache sitting between operators and the
// simulated disk. A hit costs nothing; a miss charges SimDisk. Benchmarks run
// "cold" by calling FlushAll() before each query, mirroring the paper's
// clearing of database and OS caches before every execution.

#ifndef SMOOTHSCAN_STORAGE_BUFFER_POOL_H_
#define SMOOTHSCAN_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <list>
#include <unordered_map>

#include "common/types.h"
#include "storage/page.h"
#include "storage/sim_disk.h"
#include "storage/storage_manager.h"

namespace smoothscan {

/// Buffer-pool hit/miss counters.
struct BufferPoolStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
};

/// LRU buffer pool. Single-threaded; pages are read-only at query time so
/// there is no dirty-page write-back path.
class BufferPool {
 public:
  /// `capacity_pages` bounds the number of resident pages.
  BufferPool(StorageManager* storage, SimDisk* disk, size_t capacity_pages);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Returns `page` of `file`, charging the disk on a miss.
  const Page& Fetch(FileId file, PageId page);

  /// Prefetches the extent [first, first + num_pages) with a single I/O
  /// request (Smooth Scan Mode 2 flattening / scan read-ahead). Pages already
  /// resident at the head or tail of the extent shrink the transfer; the
  /// charged request spans the first through last non-resident page, since a
  /// physical extent read cannot skip holes in the middle.
  void FetchExtent(FileId file, PageId first, uint32_t num_pages);

  /// Evicts everything: the next access to any page is a cold miss.
  void FlushAll();

  /// True when the page is resident (no I/O charged; no LRU update).
  bool Contains(FileId file, PageId page) const;

  const BufferPoolStats& stats() const { return stats_; }
  size_t capacity() const { return capacity_; }
  size_t size() const { return map_.size(); }

 private:
  // 64-bit key packing (file, page).
  static uint64_t Key(FileId file, PageId page) {
    return (static_cast<uint64_t>(file) << 32) | page;
  }

  /// Inserts `key` as most-recently-used, evicting the LRU page if full.
  void Insert(uint64_t key);
  void Touch(uint64_t key);

  StorageManager* storage_;
  SimDisk* disk_;
  size_t capacity_;
  BufferPoolStats stats_;

  // LRU list: front = most recently used. Map values point into the list.
  std::list<uint64_t> lru_;
  std::unordered_map<uint64_t, std::list<uint64_t>::iterator> map_;
};

}  // namespace smoothscan

#endif  // SMOOTHSCAN_STORAGE_BUFFER_POOL_H_
