// BufferPool: page-granularity LRU cache sitting between operators and the
// simulated disk. A hit costs nothing; a miss charges SimDisk. Benchmarks run
// "cold" by calling FlushAll() before each query, mirroring the paper's
// clearing of database and OS caches before every execution.
//
// Concurrency: the pool is sharded — each shard owns a slice of the capacity
// with its own latch, LRU list and map, so concurrent fetches on different
// shards never contend. Pages are handed out as pinned PageGuards: a pinned
// page is never evicted and FlushAll() skips (and reports) it, so a reference
// obtained from Fetch() stays valid for the guard's lifetime even while other
// threads churn the pool. Construct with `num_shards = 1` to pin the exact
// global-LRU eviction order (tests; morsel-local pools).

#ifndef SMOOTHSCAN_STORAGE_BUFFER_POOL_H_
#define SMOOTHSCAN_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>

#include "common/latch_rank.h"
#include "common/thread_annotations.h"
#include "common/types.h"
#include "storage/page.h"
#include "storage/sim_disk.h"
#include "storage/storage_manager.h"

namespace smoothscan {

namespace obs {
class Counter;
}  // namespace obs

class BufferPool;

/// Buffer-pool hit/miss counters.
struct BufferPoolStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t write_backs = 0;  ///< Dirty pages written back (flush + eviction).
};

/// Optional push-style observability sink: when attached (SetMetricsSink),
/// every BufferPoolStats bump also increments the matching registry counter
/// — one relaxed atomic add, already under the shard latch. Null members are
/// simply not fed.
struct BufferPoolMetricsSink {
  obs::Counter* hits = nullptr;
  obs::Counter* misses = nullptr;
  obs::Counter* write_backs = nullptr;
};

/// A pinned reference to a buffer-pool page. While the guard lives, the page
/// cannot be evicted or flushed, so the `Page&` it exposes cannot dangle.
/// Move-only; unpins on destruction. A default-constructed guard is empty.
class PageGuard {
 public:
  PageGuard() = default;
  PageGuard(const PageGuard&) = delete;
  PageGuard& operator=(const PageGuard&) = delete;
  PageGuard(PageGuard&& other) noexcept { MoveFrom(&other); }
  PageGuard& operator=(PageGuard&& other) noexcept {
    if (this != &other) {
      Release();
      MoveFrom(&other);
    }
    return *this;
  }
  ~PageGuard() { Release(); }

  const Page& operator*() const { return *page_; }
  const Page* operator->() const { return page_; }
  const Page* get() const { return page_; }
  explicit operator bool() const { return page_ != nullptr; }

  /// Drops the pin early (idempotent).
  void Release();

 private:
  friend class BufferPool;
  PageGuard(BufferPool* pool, uint64_t key, const Page* page)
      : pool_(pool), key_(key), page_(page) {}
  void MoveFrom(PageGuard* other) {
    pool_ = other->pool_;
    key_ = other->key_;
    page_ = other->page_;
    other->pool_ = nullptr;
    other->page_ = nullptr;
  }

  BufferPool* pool_ = nullptr;
  uint64_t key_ = 0;
  // lint:allow(raw-page-member) — PageGuard IS the pin-aware wrapper the
  // rule tells everyone else to hold pages through.
  const Page* page_ = nullptr;
};

/// Sharded LRU buffer pool (see file comment).
class BufferPool {
 public:
  /// Default shard count of engine-owned pools.
  static constexpr uint32_t kDefaultShards = 8;

  /// `capacity_pages` bounds the number of resident pages across all shards;
  /// the effective shard count never exceeds the capacity.
  BufferPool(StorageManager* storage, SimDisk* disk, size_t capacity_pages,
             uint32_t num_shards = kDefaultShards);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Returns a pinned guard of `page` of `file`, charging the disk on a miss.
  PageGuard Fetch(FileId file, PageId page);

  /// Returns a pinned guard without any I/O charge or hit/miss accounting:
  /// the caller already charged the access through its own stream (morsel
  /// execution), or the access is free by design. Inserts the page if absent.
  PageGuard Pin(FileId file, PageId page);

  /// Pins `page` only if it is resident right now (no I/O charge, no
  /// hit/miss accounting); an empty guard means absent. Check and pin happen
  /// under one shard latch, so the caller's "ride a peer-paid resident page
  /// for free" decision cannot be invalidated by a concurrent eviction (the
  /// shared-SmoothScan mode's honesty guarantee).
  PageGuard PinIfResident(FileId file, PageId page);

  /// Prefetches the extent [first, first + num_pages) with a single I/O
  /// request (Smooth Scan Mode 2 flattening / scan read-ahead). Pages already
  /// resident at the head or tail of the extent shrink the transfer; the
  /// charged request spans the first through last non-resident page, since a
  /// physical extent read cannot skip holes in the middle. Takes no pins.
  void FetchExtent(FileId file, PageId first, uint32_t num_pages);

  /// Marks `page` of `file` dirty: its content diverges from "disk" and must
  /// be written back (charged through SimDisk) before the frame can be
  /// dropped. Inserts the frame if absent — a freshly published page is
  /// buffer-resident by definition — with no read charge and no hit/miss
  /// accounting. The dirty bit is strictly local: it never propagates to a
  /// mirror, so a query-private pool mirroring into the engine pool can never
  /// cause double-charged write I/O (see SetMirror).
  void MarkDirty(FileId file, PageId page);

  /// Writes back `page` of `file` if resident and dirty (one WritePage
  /// charge), clearing the dirty bit; the frame stays resident. Returns true
  /// when a write-back happened. Pins are irrelevant here — write-back does
  /// not invalidate the frame.
  bool FlushPage(FileId file, PageId page);

  /// Writes back every dirty page it can and evicts every unpinned page: the
  /// next access to an evicted page is a cold miss. Write-backs are charged
  /// as extent writes over (file, page)-sorted runs, so flush cost is a pure
  /// function of the dirty set, not of eviction order. Pinned pages are
  /// skipped — never invalidated — and their count is returned; a *pinned
  /// dirty* page keeps its dirty bit, queueing the write-back for the next
  /// FlushPage/FlushAll (or for the eviction that follows the unpin), so no
  /// mutation is ever silently dropped.
  size_t FlushAll();

  /// True when the page is resident (no I/O charged; no LRU update).
  bool Contains(FileId file, PageId page) const;

  /// Drops every frame of `file` from every shard, writing dirty victims
  /// back first (charged as page writes). Aborts if any frame of the file is
  /// still pinned: callers invalidate only at publish quiescence, when no
  /// consumer (query pin, mirror pin or parked shared-scan window) can be
  /// holding the file's pages — the compressed tier's rebuild hygiene.
  /// Returns the number of frames dropped.
  size_t EvictFile(FileId file);

  /// Mirrors this pool's residency and pins into `mirror` (typically the
  /// engine's shared pool): every page this pool fetches or pins is also
  /// pinned in the mirror for the guard's lifetime, and extent prefetches
  /// touch the mirror's LRU — with no I/O charge or hit/miss accounting
  /// there. This is how the multi-query engine splits the two planes: a
  /// query's *cost* flows through its private stack (bit-identical to a solo
  /// run), while its *memory residency* lands in the one shared pool, where
  /// concurrent queries genuinely contend on shard latches, LRU state and pin
  /// counts. Must be set before the first fetch; pass null to detach. The
  /// mirror itself must not have a mirror.
  ///
  /// Write-I/O audit: mirror-side frames are always inserted *clean* and
  /// MarkDirty never forwards to the mirror, so a mirrored fetch (or pin) of
  /// a page that is dirty in the engine pool can neither clear that dirty bit
  /// nor charge a second write-back to any stream — write I/O for a page is
  /// charged exactly once, by the pool that owns the dirty bit.
  void SetMirror(BufferPool* mirror);

  /// Attaches registry counters that mirror this pool's stats bumps. Same
  /// contract as SetMirror: set before the first fetch (the sink is read
  /// without a latch); pass {} to detach — but only while no fetches run.
  void SetMetricsSink(BufferPoolMetricsSink sink) { obs_ = sink; }

  /// Aggregated over shards (copied under the shard latches).
  BufferPoolStats stats() const;

  size_t capacity() const { return capacity_; }
  size_t size() const;
  /// Currently pinned pages (for tests / flush reporting).
  uint64_t pinned_pages() const;
  /// Currently dirty pages (for tests / flush reporting).
  uint64_t dirty_pages() const;
  uint32_t num_shards() const { return static_cast<uint32_t>(shards_.size()); }

 private:
  friend class PageGuard;

  struct Entry {
    std::list<uint64_t>::iterator lru_it;
    uint32_t pins = 0;
    bool dirty = false;  ///< Content newer than "disk"; write back to drop.
  };
  struct Shard {
    mutable latch::Latch mu{latch::LatchRank::kPoolShard,
                            "BufferPool::Shard::mu"};
    /// Set once at pool construction, before the pool is shared; read-only
    /// afterwards, hence not guarded.
    size_t capacity = 0;
    // LRU list: front = most recently used. Map values point into the list.
    std::list<uint64_t> lru GUARDED_BY(mu);
    std::unordered_map<uint64_t, Entry> map GUARDED_BY(mu);
    BufferPoolStats stats GUARDED_BY(mu);
  };

  // 64-bit key packing (file, page).
  static uint64_t Key(FileId file, PageId page) {
    return (static_cast<uint64_t>(file) << 32) | page;
  }
  static PageId PageOf(uint64_t key) { return static_cast<PageId>(key); }
  static FileId FileOf(uint64_t key) { return static_cast<FileId>(key >> 32); }

  Shard& ShardFor(uint64_t key) {
    // Consecutive pages round-robin across shards so sequential scans spread.
    return *shards_[PageOf(key) % shards_.size()];
  }
  const Shard& ShardFor(uint64_t key) const {
    return *shards_[PageOf(key) % shards_.size()];
  }

  /// Sentinel return of InsertLocked: no dirty page was evicted.
  static constexpr uint64_t kNoWriteBack = ~0ull;

  /// Inserts `key` as most-recently-used in its shard (which must be locked),
  /// evicting the least recently used *unpinned* page if the shard is full.
  /// A dirty victim's write-back is counted here but *charged by the caller*
  /// (after releasing the shard latch — SimDisk has its own latch and the
  /// fetch hot path must not nest them): returns the evicted dirty key, or
  /// kNoWriteBack.
  uint64_t InsertLocked(Shard* shard, uint64_t key) REQUIRES(shard->mu);
  /// Charges the write-back InsertLocked reported, outside the shard latch.
  void ChargeWriteBack(uint64_t evicted) {
    if (evicted != kNoWriteBack) {
      disk_->WritePage(FileOf(evicted), PageOf(evicted));
    }
  }
  void Unpin(uint64_t key);

  /// Mirror-side primitives: insert-or-touch `key` (optionally taking a pin),
  /// with no disk charge and no hit/miss accounting.
  void PinKey(uint64_t key);
  void UnpinKey(uint64_t key);
  void TouchKey(uint64_t key);

  /// Bumps the sink counters (if attached) alongside a shard-stats bump.
  void ObsHits(uint64_t n);
  void ObsMisses(uint64_t n);
  void ObsWriteBacks(uint64_t n);

  StorageManager* storage_;
  SimDisk* disk_;
  size_t capacity_;
  BufferPool* mirror_ = nullptr;
  BufferPoolMetricsSink obs_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace smoothscan

#endif  // SMOOTHSCAN_STORAGE_BUFFER_POOL_H_
