// StorageManager: owns the raw pages of every file in the simulated database.
//
// Pages live in memory; the *cost* of reaching them is modelled by SimDisk
// (see sim_disk.h) and cached by BufferPool (see buffer_pool.h). Build-time
// code (loaders, index construction) accesses pages directly and free of
// charge, mirroring the paper's setup where data is loaded before the timed,
// cold-cache query runs.
//
// Threading: query-time execution only *reads* pages, so concurrent GetPage
// calls from parallel workers need no latch and Page pointers stay stable for
// the pages' lifetime. Structure mutation (CreateFile / AppendPage, including
// result-cache spill files) is latch-protected but must not overlap parallel
// query execution on the same engine — spills belong to the serial,
// order-preserving paths.

#ifndef SMOOTHSCAN_STORAGE_STORAGE_MANAGER_H_
#define SMOOTHSCAN_STORAGE_STORAGE_MANAGER_H_

#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "common/latch_rank.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "common/types.h"
#include "storage/page.h"

namespace smoothscan {

/// Owns all files (ordered page sequences) of the simulated database.
class StorageManager {
 public:
  explicit StorageManager(uint32_t page_size = kDefaultPageSize)
      : page_size_(page_size) {}

  StorageManager(const StorageManager&) = delete;
  StorageManager& operator=(const StorageManager&) = delete;

  /// Creates a new empty file and returns its id.
  FileId CreateFile(std::string name) EXCLUDES(mu_);

  /// Appends a fresh page to `file` and returns its id.
  PageId AppendPage(FileId file) EXCLUDES(mu_);

  /// Drops every page of `file` (the file id stays valid and empty). Used by
  /// compressed-extent rebuilds; callers must first evict the file's frames
  /// from every buffer pool that could still hand out page references, and
  /// must not overlap a truncate with reads of the same file (the compressed
  /// tier guarantees this by rebuilding only at publish quiescence).
  void TruncateFile(FileId file) EXCLUDES(mu_);

  /// Mutable access for build-time loading (no I/O accounting).
  Page* GetPageForWrite(FileId file, PageId page);

  /// Read access for build-time code and for the buffer pool (which performs
  /// the I/O accounting itself before calling this).
  const Page& GetPage(FileId file, PageId page) const;

  size_t NumPages(FileId file) const;
  size_t NumFiles() const { return files_.size(); }
  const std::string& FileName(FileId file) const;
  uint32_t page_size() const { return page_size_; }

 private:
  struct File {
    std::string name;
    std::vector<std::unique_ptr<Page>> pages;
  };

  const File& GetFile(FileId file) const {
    SMOOTHSCAN_CHECK(file < files_.size());
    return files_[file];
  }

  uint32_t page_size_;
  /// Guards structure mutation (files/page vectors).
  mutable latch::Latch mu_{latch::LatchRank::kStorage, "StorageManager::mu_"};
  /// A deque so File references stay stable across CreateFile — snapshot
  /// publish may append pages to one table while queries run against others.
  /// Same-table append-vs-read is excluded by the table read leases
  /// (write/table_version.h), not by a latch here — which is also why this
  /// member is deliberately NOT `GUARDED_BY(mu_)`: the read path (GetPage,
  /// NumPages, FileName) is latch-free by design and lease-protected.
  std::deque<File> files_;
};

}  // namespace smoothscan

#endif  // SMOOTHSCAN_STORAGE_STORAGE_MANAGER_H_
