#include "storage/heap_file.h"

namespace smoothscan {

HeapFile::HeapFile(Engine* engine, std::string name, Schema schema)
    : engine_(engine), name_(std::move(name)), schema_(std::move(schema)) {
  file_id_ = engine_->storage().CreateFile(name_);
}

Result<Tid> HeapFile::Append(const Tuple& tuple) {
  scratch_.clear();
  schema_.Serialize(tuple, &scratch_);
  const uint32_t size = static_cast<uint32_t>(scratch_.size());
  StorageManager& sm = engine_->storage();
  if (tail_page_ == kInvalidPageId ||
      !sm.GetPageForWrite(file_id_, tail_page_)->Fits(size)) {
    tail_page_ = sm.AppendPage(file_id_);
  }
  Page* page = sm.GetPageForWrite(file_id_, tail_page_);
  Result<SlotId> slot = page->Insert(scratch_.data(), size);
  if (!slot.ok()) return slot.status();
  ++num_tuples_;
  return Tid{tail_page_, slot.value()};
}

Tuple HeapFile::Read(Tid tid) const {
  return Read(tid, EngineContext(engine_));
}

Tuple HeapFile::Read(Tid tid, const ExecContext& ctx) const {
  const PageGuard page = ctx.pool->Fetch(file_id_, tid.page_id);
  uint32_t size = 0;
  const uint8_t* data = page->GetTuple(tid.slot, &size);
  // Reading a tombstoned Tid is a bug: index maintenance removes an entry in
  // the same publish that kills its slot.
  SMOOTHSCAN_CHECK(data != nullptr);
  return schema_.Deserialize(data, size);
}

void HeapFile::ForEachDirect(
    const std::function<void(Tid, const Tuple&)>& fn) const {
  const StorageManager& sm = engine_->storage();
  const size_t pages = sm.NumPages(file_id_);
  for (size_t p = 0; p < pages; ++p) {
    const Page& page = sm.GetPage(file_id_, static_cast<PageId>(p));
    for (uint16_t s = 0; s < page.num_slots(); ++s) {
      uint32_t size = 0;
      const uint8_t* data = page.GetTuple(s, &size);
      if (data == nullptr) continue;  // Tombstoned slot.
      fn(Tid{static_cast<PageId>(p), s}, schema_.Deserialize(data, size));
    }
  }
}

}  // namespace smoothscan
