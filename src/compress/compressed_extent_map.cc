#include "compress/compressed_extent_map.h"

#include <utility>

namespace smoothscan {

namespace {
/// Bytes reserved for the slotted-page header and the blob's slot entry, plus
/// margin; the builder flushes before a block could outgrow the page.
constexpr uint32_t kPageOverheadReserve = 64;
}  // namespace

CompressedExtentRef CompressedExtentMap::Enable(const HeapFile* heap,
                                               int key_column,
                                               bool auto_rebuild) {
  if (!heap->schema().IsFixedWidth()) return nullptr;
  if (key_column < 0 ||
      static_cast<size_t>(key_column) >= heap->schema().num_columns()) {
    return nullptr;
  }
  const ValueType key_type = heap->schema().column(key_column).type;
  if (key_type != ValueType::kInt64 && key_type != ValueType::kDate) {
    return nullptr;
  }

  latch::LatchGuard lock(mu_);
  auto [it, inserted] = tables_.try_emplace(heap->file_id());
  TableEntry& entry = it->second;
  if (inserted) {
    entry.heap = heap;
    entry.key_column = key_column;
    entry.auto_rebuild = auto_rebuild;
    entry.file = engine_->storage().CreateFile(
        engine_->storage().FileName(heap->file_id()) + ".cmp");
  } else {
    entry.key_column = key_column;
    entry.auto_rebuild = auto_rebuild;
    engine_->pool().EvictFile(entry.file);
    engine_->storage().TruncateFile(entry.file);
  }
  // Load-time build: storage walk + page construction, no I/O charged (the
  // same free-by-design footing as HeapFile::Append at load).
  entry.current = BuildLocked(&entry, /*charge_write=*/false);
  return entry.current;
}

CompressedExtentRef CompressedExtentMap::Lookup(FileId table) const {
  latch::LatchGuard lock(mu_);
  auto it = tables_.find(table);
  return it == tables_.end() ? nullptr : it->second.current;
}

void CompressedExtentMap::Invalidate(FileId table) {
  latch::LatchGuard lock(mu_);
  auto it = tables_.find(table);
  if (it != tables_.end()) it->second.current = nullptr;
}

void CompressedExtentMap::OnPublish(FileId table) {
  latch::LatchGuard lock(mu_);
  auto it = tables_.find(table);
  if (it == tables_.end()) return;
  TableEntry& entry = it->second;
  entry.current = nullptr;
  if (!entry.auto_rebuild) return;
  engine_->pool().EvictFile(entry.file);
  engine_->storage().TruncateFile(entry.file);
  entry.current = BuildLocked(&entry, /*charge_write=*/true);
  ++rebuilds_;
}

CompressedExtentRef CompressedExtentMap::Rebuild(FileId table) {
  latch::LatchGuard lock(mu_);
  auto it = tables_.find(table);
  if (it == tables_.end()) return nullptr;
  TableEntry& entry = it->second;
  entry.current = nullptr;
  engine_->pool().EvictFile(entry.file);
  engine_->storage().TruncateFile(entry.file);
  entry.current = BuildLocked(&entry, /*charge_write=*/true);
  ++rebuilds_;
  return entry.current;
}

CompressedExtentRef CompressedExtentMap::BuildLocked(TableEntry* entry,
                                                     bool charge_write) {
  StorageManager& storage = engine_->storage();
  const HeapFile* heap = entry->heap;
  const Schema& schema = heap->schema();
  const FileId table = heap->file_id();
  const uint32_t page_size = engine_->options().page_size;
  SMOOTHSCAN_CHECK(page_size > kPageOverheadReserve +
                                   kCompressedBlockHeaderSize);

  auto extent = std::make_shared<CompressedExtent>();
  extent->table = table;
  extent->file = entry->file;
  extent->key_column = entry->key_column;
  extent->schema = &schema;
  extent->version = ++entry->version;
  extent->source_pages = static_cast<PageId>(storage.NumPages(table));

  CompressedBlockBuilder builder(&schema, entry->key_column,
                                 page_size - kPageOverheadReserve);
  std::vector<uint8_t> blob;
  auto flush = [&]() {
    const CompressedBlockInfo info = builder.Finish(&blob);
    const PageId page = storage.AppendPage(entry->file);
    Result<SlotId> slot = storage.GetPageForWrite(entry->file, page)
                              ->Insert(blob.data(),
                                       static_cast<uint32_t>(blob.size()));
    SMOOTHSCAN_CHECK(slot.ok() && slot.value() == 0);
    CompressedBlockMeta meta;
    meta.key_min = info.key_min;
    meta.key_max = info.key_max;
    meta.tuples = info.tuples;
    meta.key_runs = info.key_runs;
    meta.row_begin = extent->num_tuples;
    extent->blocks.push_back(meta);
    extent->num_tuples += info.tuples;
    extent->key_runs += info.key_runs;
    extent->encoded_bytes += info.encoded_bytes;
  };

  // Direct storage walk in heap order (publish quiescence: content is the
  // published snapshot). Dead slots are simply not folded in.
  for (PageId p = 0; p < extent->source_pages; ++p) {
    const Page& page = storage.GetPage(table, p);
    const uint16_t num_slots = page.num_slots();
    for (uint16_t slot = 0; slot < num_slots; ++slot) {
      uint32_t size = 0;
      const uint8_t* data = page.GetTuple(slot, &size);
      if (data == nullptr) continue;
      if (!builder.Add(data, size)) {
        flush();
        SMOOTHSCAN_CHECK(builder.Add(data, size));
      }
    }
  }
  if (!builder.empty()) flush();

  if (charge_write && !extent->blocks.empty()) {
    engine_->disk().WriteExtent(entry->file, 0, extent->num_pages());
  }
  return extent;
}

}  // namespace smoothscan
