// CompressedScan: the access path over a table's compressed sibling extent
// (see compressed_extent_map.h). Evaluates the key-range predicate *directly
// on the compressed runs* — a whole RLE run costs one comparison regardless
// of its length, and a whole block whose zone-map interval misses [lo, hi) is
// skipped without any I/O (one cache_op per zone consult) — then run-expands
// qualifying row ranges into the standard dense-fill TupleBatch. The produced
// multiset (and order: extent rows follow heap order) is identical to a
// FullScan of the heap; the simulated page fetches shrink by the compression
// ratio times the zone-skip rate.
//
// Fetch determinism: needed compressed pages are read as extent requests that
// never cross a read_ahead-aligned page boundary — one request per aligned
// window's [first needed, last needed] span. Morsel decompositions align
// morsel boundaries to the same windows and seed each morsel's stream at the
// last needed page before its range (a pure function of the zone map and the
// predicate), so parallel I/O charges sum bit-identically to the serial
// scan's, per the substrate's DOP-invariance contract.
//
// Index-only mode emits one-column (key) tuples straight from the runs —
// selectivity/count probes never materialize the payload columns; residual
// predicates are rejected by construction. CompressedCountRange() goes one
// step further: blocks whose zone interval lies fully inside [lo, hi) are
// counted from the in-memory metadata without touching any page.
//
// Shared mode attaches to the sibling file's cooperative circular scan
// (ScanSharingCoordinator::AttachExtent): the group pays one communal pass
// over the compressed pages and every consumer zone-skips its own decode.

#ifndef SMOOTHSCAN_COMPRESS_COMPRESSED_SCAN_H_
#define SMOOTHSCAN_COMPRESS_COMPRESSED_SCAN_H_

#include <memory>
#include <utility>
#include <vector>

#include "access/access_path.h"
#include "access/parallel_scan.h"
#include "compress/compressed_extent_map.h"
#include "sharing/scan_sharing.h"

namespace smoothscan {

struct CompressedScanOptions {
  /// Pages per I/O request window (aligned; see file comment).
  uint32_t read_ahead_pages = 32;
  /// Compressed-page range [page_begin, page_end) to scan; defaults cover
  /// the extent. Morsel execution restricts each worker's range.
  PageId page_begin = 0;
  PageId page_end = kInvalidPageId;
  /// Emit one-column (key) tuples from the runs alone. Incompatible with a
  /// residual predicate (checked).
  bool index_only = false;
};

class CompressedScan : public AccessPath {
 public:
  /// Serial/morsel-range scan over `extent`.
  CompressedScan(Engine* engine, CompressedExtentRef extent,
                 ScanPredicate predicate,
                 CompressedScanOptions options = CompressedScanOptions());

  /// Shared-mode scan: consumes the sibling file's cooperative circular scan
  /// instead of fetching privately. Page-range options must cover the whole
  /// extent (a lap visits every chunk).
  CompressedScan(ScanSharingCoordinator* coordinator, CompressedExtentRef extent,
                 ScanPredicate predicate,
                 CompressedScanOptions options = CompressedScanOptions());

  const char* name() const override {
    return shared_ != nullptr ? "SharedCompressedScan" : "CompressedScan";
  }

  const CompressedExtent& extent() const { return *extent_; }
  /// Compressed pages whose zone interval intersected the predicate (valid
  /// after Open; the complement was skipped without I/O).
  uint64_t blocks_needed() const { return needed_.size(); }

 protected:
  Status OpenImpl() override;
  bool NextBatchImpl(TupleBatch* out) override;
  void CloseImpl() override;
  ExecContext DefaultContext() const override {
    return EngineContext(engine_);
  }

 private:
  /// Decodes the block on compressed page `page` (already resident/pinned by
  /// `guard`'s pool) into ranges_ + column scratch; true when any row
  /// qualifies.
  bool DecodeBlock(PageId page, const Page& page_ref);
  /// Emits decoded rows into `out` until the batch fills or the block drains;
  /// returns tuples emitted.
  uint64_t EmitDecoded(TupleBatch* out);

  bool NextBatchPrivate(TupleBatch* out);
  bool NextBatchShared(TupleBatch* out);

  Engine* engine_;
  ScanSharingCoordinator* shared_ = nullptr;
  CompressedExtentRef extent_;
  ScanPredicate predicate_;
  CompressedScanOptions options_;
  std::vector<ValueType> column_types_;

  // Zone-map plan (built in Open): needed pages and their aligned-window
  // fetch spans [first, first + count).
  std::vector<PageId> needed_;
  std::vector<std::pair<PageId, uint32_t>> spans_;
  size_t needed_idx_ = 0;
  size_t span_idx_ = 0;

  // Decoded-block emission state (survives across NextBatch calls: one block
  // holds up to kMaxBlockTuples > batch capacity rows).
  bool block_ready_ = false;
  std::vector<std::pair<uint32_t, uint32_t>> ranges_;
  size_t range_idx_ = 0;
  uint32_t row_ = 0;
  std::vector<std::vector<uint64_t>> cols_scratch_;

  // Shared-mode cursor.
  SharedScanConsumer consumer_;
  const SharedChunk* chunk_ = nullptr;
  uint32_t chunk_page_ = 0;
  bool shared_done_ = false;
};

/// Index-only range count: number of extent rows with key in [lo, hi).
/// Blocks fully inside the range are counted from in-memory zone metadata
/// (cache_op each, no I/O); straddling blocks are fetched and counted on
/// their runs. Charges `ctx` (pass the engine context for serial callers).
uint64_t CompressedCountRange(const CompressedExtentRef& extent, int64_t lo,
                              int64_t hi, const ExecContext& ctx);

/// Morsel-parallel compressed scan (page-range decomposition over the
/// extent, DOP-invariant; see file comment). Returns null when `predicate`
/// needs ordered output semantics no differently than FullScan — compressed
/// rows are emitted in extent order per morsel, merged in morsel order.
std::unique_ptr<ParallelScan> MakeParallelCompressedScan(
    Engine* engine, CompressedExtentRef extent, ScanPredicate predicate,
    CompressedScanOptions scan_options, ParallelScanOptions options);

}  // namespace smoothscan

#endif  // SMOOTHSCAN_COMPRESS_COMPRESSED_SCAN_H_
