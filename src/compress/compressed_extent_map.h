// CompressedExtentMap: per-table registry of read-optimized compressed
// sibling extents (see compressed_page.h for the block format and
// compressed_scan.h for the access path that consumes them).
//
// A table's compressed extent is a *sibling file* of run/RLE-encoded blocks —
// one block per page, slot 0 — produced by folding the heap at publish
// quiescence. The sibling's pages are ordinary StorageManager pages cached as
// ordinary BufferPool frames: pinning, mirroring, eviction and SimDisk
// charging all apply unchanged. The map keeps, per extent, an in-memory zone
// map (per-block key min/max/run-count) so scans and index-only probes can
// skip whole compressed pages without any I/O — consulting a zone entry is
// charged as one cache_op, not a fetch.
//
// Lifecycle mirrors the parked shared-scan groups: the extent built against
// published epoch N serves readers until the *next* publish, at which point
// the QueryEngine's publish hook invalidates it (scans already holding a
// CompressedExtentRef keep their snapshot — shared_ptr — but the chooser
// stops offering the path) and, when auto-rebuild is on, folds the new heap
// content into a fresh sibling. Rebuild hygiene: the old frames are evicted
// from the engine pool (write-backs charged) before the sibling file is
// truncated, which aborts if any consumer still pins a compressed page —
// publish quiescence guarantees none does.
//
// Cost accounting: the initial Enable() is a load-time operation (free, like
// HeapFile::Append); publish-triggered rebuilds charge the engine's shared
// stream one extent write over the new sibling — communal maintenance work,
// exactly like dirty-page write-backs at flush.

#ifndef SMOOTHSCAN_COMPRESS_COMPRESSED_EXTENT_MAP_H_
#define SMOOTHSCAN_COMPRESS_COMPRESSED_EXTENT_MAP_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/latch_rank.h"
#include "common/thread_annotations.h"
#include "compress/compressed_page.h"
#include "storage/heap_file.h"

namespace smoothscan {

/// In-memory zone-map entry of one compressed block (= one sibling page).
struct CompressedBlockMeta {
  int64_t key_min = 0;
  int64_t key_max = 0;
  uint32_t tuples = 0;
  uint32_t key_runs = 0;
  uint64_t row_begin = 0;  ///< Prefix sum of tuples (index-only counting).
};

/// One immutable published compressed extent. Readers hold it by shared_ptr
/// (CompressedExtentRef) — invalidation swaps the registry's pointer, never
/// mutates a published extent.
struct CompressedExtent {
  FileId table = 0;        ///< Heap file this extent mirrors.
  FileId file = 0;         ///< Sibling file holding the compressed pages.
  int key_column = 0;
  const Schema* schema = nullptr;
  uint64_t version = 0;    ///< Bumped per rebuild (staleness diagnostics).
  uint64_t num_tuples = 0;
  uint64_t key_runs = 0;       ///< Sum over blocks: run density.
  uint64_t encoded_bytes = 0;  ///< Sum of serialized block sizes.
  PageId source_pages = 0;     ///< Heap pages folded in.
  std::vector<CompressedBlockMeta> blocks;  ///< One per sibling page.

  PageId num_pages() const { return static_cast<PageId>(blocks.size()); }
  /// Heap pages per compressed page (>= 1 in practice; the chooser's ratio).
  double page_ratio() const {
    return blocks.empty() ? 1.0
                          : static_cast<double>(source_pages) /
                                static_cast<double>(blocks.size());
  }
  /// Average key-run length (tuples per run): run density for CPU costing.
  double avg_run_length() const {
    return key_runs == 0 ? 1.0
                         : static_cast<double>(num_tuples) /
                               static_cast<double>(key_runs);
  }
};

using CompressedExtentRef = std::shared_ptr<const CompressedExtent>;

/// Registry + producer of compressed extents (see file comment).
class CompressedExtentMap {
 public:
  explicit CompressedExtentMap(Engine* engine) : engine_(engine) {}

  CompressedExtentMap(const CompressedExtentMap&) = delete;
  CompressedExtentMap& operator=(const CompressedExtentMap&) = delete;

  /// Registers `heap` for compression on `key_column` and builds the initial
  /// extent (load-time: no I/O charged). Returns null — without registering —
  /// when the schema is not fixed-width or the key column is not INT64/DATE.
  /// `auto_rebuild` controls whether OnPublish() folds a fresh extent or
  /// leaves the table invalidated until the next explicit Rebuild().
  CompressedExtentRef Enable(const HeapFile* heap, int key_column,
                             bool auto_rebuild = true) EXCLUDES(mu_);

  /// Current extent of `table`, or null (not enabled / invalidated).
  CompressedExtentRef Lookup(FileId table) const EXCLUDES(mu_);

  /// Drops `table`'s current extent; Lookup returns null until a rebuild.
  void Invalidate(FileId table) EXCLUDES(mu_);

  /// Publish notification for `table`: invalidates, then (when auto_rebuild)
  /// folds the heap's published content into a fresh sibling extent, charging
  /// the engine stream one extent write over the new pages. Evicts the old
  /// sibling frames from the engine pool first — aborts if any is pinned.
  void OnPublish(FileId table) EXCLUDES(mu_);

  /// Explicit rebuild (same as the auto path, without requiring a publish).
  CompressedExtentRef Rebuild(FileId table) EXCLUDES(mu_);

  /// Rebuilds performed (tests / diagnostics).
  uint64_t rebuilds() const EXCLUDES(mu_) {
    latch::LatchGuard lock(mu_);
    return rebuilds_;
  }

 private:
  struct TableEntry {
    const HeapFile* heap = nullptr;
    int key_column = 0;
    bool auto_rebuild = true;
    FileId file = 0;          ///< Sibling file id (created once, reused).
    uint64_t version = 0;
    CompressedExtentRef current;  ///< Null while invalidated.
  };

  /// Folds the heap into the (already truncated) sibling file. Storage walk
  /// only, so holding the latch is fine.
  CompressedExtentRef BuildLocked(TableEntry* entry, bool charge_write)
      REQUIRES(mu_);

  Engine* engine_;
  /// Held across rebuilds, which evict sibling frames (pool shards), truncate
  /// the sibling (storage) and charge the engine stream (disk) — hence its
  /// rank above all three.
  mutable latch::Latch mu_{latch::LatchRank::kCompressedMap,
                           "CompressedExtentMap::mu_"};
  std::unordered_map<FileId, TableEntry> tables_ GUARDED_BY(mu_);
  uint64_t rebuilds_ GUARDED_BY(mu_) = 0;
};

}  // namespace smoothscan

#endif  // SMOOTHSCAN_COMPRESS_COMPRESSED_EXTENT_MAP_H_
