#include "compress/compressed_page.h"

#include <algorithm>

namespace smoothscan {

namespace {

// Little-endian put/load helpers, byte-wise for endian safety (the hot loops
// below go through LoadU64LE, which is a single mov on little-endian hosts).
void PutU8(std::vector<uint8_t>* out, uint8_t v) { out->push_back(v); }

void PutU16(std::vector<uint8_t>* out, uint16_t v) {
  out->push_back(static_cast<uint8_t>(v));
  out->push_back(static_cast<uint8_t>(v >> 8));
}

void PutU32(std::vector<uint8_t>* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void PutU64(std::vector<uint8_t>* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<uint8_t>(v >> (8 * i)));
}

uint16_t LoadU16LE(const uint8_t* p) {
  return static_cast<uint16_t>(p[0] | (p[1] << 8));
}

uint32_t LoadU32LE(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

/// Width-dispatched unsigned load of a FOR offset.
uint64_t LoadOffset(const uint8_t* p, uint32_t width) {
  switch (width) {
    case 1:
      return p[0];
    case 2:
      return LoadU16LE(p);
    case 4:
      return LoadU32LE(p);
    default:
      return LoadU64LE(p);
  }
}

/// Serialized payload size (excluding the tag byte) of each encoding.
uint32_t RawSize(uint32_t n) { return n * 8; }
uint32_t RleSize(uint32_t runs) { return 4 + runs * 12; }
uint32_t ForSize(uint32_t n, uint32_t width) { return 1 + 8 + n * width; }

}  // namespace

// ---------------------------------------------------------------------------
// CompressedBlockBuilder
// ---------------------------------------------------------------------------

CompressedBlockBuilder::CompressedBlockBuilder(const Schema* schema,
                                              int key_column,
                                              uint32_t capacity_bytes)
    : schema_(schema),
      key_column_(key_column),
      capacity_(capacity_bytes) {
  SMOOTHSCAN_CHECK(schema_->IsFixedWidth());
  SMOOTHSCAN_CHECK(key_column_ >= 0 &&
                   static_cast<size_t>(key_column_) < schema_->num_columns());
  const ValueType key_type = schema_->column(key_column_).type;
  SMOOTHSCAN_CHECK(key_type == ValueType::kInt64 ||
                   key_type == ValueType::kDate);
  SMOOTHSCAN_CHECK(capacity_ > kCompressedBlockHeaderSize);
  columns_.resize(schema_->num_columns());
  for (size_t c = 0; c < columns_.size(); ++c) {
    columns_[c].is_int = schema_->column(c).type != ValueType::kDouble;
  }
}

uint32_t CompressedBlockBuilder::ForWidth(int64_t min, int64_t max) {
  // Unsigned range; two's-complement subtraction on the uint64 images is the
  // correct difference for any int64 min <= max (no signed overflow).
  const uint64_t range =
      static_cast<uint64_t>(max) - static_cast<uint64_t>(min);
  if (range <= 0xFFu) return 1;
  if (range <= 0xFFFFu) return 2;
  if (range <= 0xFFFFFFFFu) return 4;
  return 0;  // FOR would not beat raw.
}

uint32_t CompressedBlockBuilder::ColumnSize(const ColumnState& c, uint32_t n,
                                            uint32_t runs, int64_t min,
                                            int64_t max) {
  uint32_t best = RawSize(n);
  best = std::min(best, RleSize(runs));
  if (c.is_int) {
    const uint32_t w = ForWidth(min, max);
    if (w != 0) best = std::min(best, ForSize(n, w));
  }
  return 1 + best;  // Tag byte.
}

bool CompressedBlockBuilder::Add(const uint8_t* data, uint32_t size) {
  const size_t ncols = columns_.size();
  SMOOTHSCAN_CHECK(static_cast<uint32_t>(ncols) * 8 <= size);
  if (tuple_count_ >= kMaxBlockTuples) return false;

  // Prospective size under the cheapest encodings with this tuple added;
  // commit only when it fits, so no rollback of incremental stats is needed.
  const uint32_t n = tuple_count_ + 1;
  uint32_t total = kCompressedBlockHeaderSize;
  for (size_t c = 0; c < ncols; ++c) {
    const ColumnState& col = columns_[c];
    const uint64_t v = LoadU64LE(data + c * 8);
    const bool new_run = col.values.empty() || col.values.back() != v;
    const uint32_t runs = col.runs + (new_run ? 1 : 0);
    int64_t min = static_cast<int64_t>(v);
    int64_t max = min;
    if (col.is_int && !col.values.empty()) {
      min = std::min(min, col.min);
      max = std::max(max, col.max);
    }
    total += ColumnSize(col, n, runs, min, max);
    if (total > capacity_) return false;
  }

  for (size_t c = 0; c < ncols; ++c) {
    ColumnState& col = columns_[c];
    const uint64_t v = LoadU64LE(data + c * 8);
    if (col.values.empty() || col.values.back() != v) ++col.runs;
    if (col.is_int) {
      const int64_t iv = static_cast<int64_t>(v);
      if (col.values.empty()) {
        col.min = col.max = iv;
      } else {
        col.min = std::min(col.min, iv);
        col.max = std::max(col.max, iv);
      }
    }
    col.values.push_back(v);
  }
  tuple_count_ = n;
  encoded_size_ = total;
  return true;
}

CompressedBlockInfo CompressedBlockBuilder::Finish(std::vector<uint8_t>* out) {
  SMOOTHSCAN_CHECK(tuple_count_ > 0);
  const uint32_t n = tuple_count_;
  const ColumnState& key = columns_[key_column_];

  out->clear();
  out->reserve(encoded_size_);
  PutU32(out, kCompressedBlockMagic);
  PutU32(out, n);
  PutU16(out, static_cast<uint16_t>(columns_.size()));
  PutU16(out, static_cast<uint16_t>(key_column_));
  PutU64(out, static_cast<uint64_t>(key.min));
  PutU64(out, static_cast<uint64_t>(key.max));
  PutU32(out, key.runs);

  for (const ColumnState& col : columns_) {
    const uint32_t raw = RawSize(n);
    const uint32_t rle = RleSize(col.runs);
    const uint32_t for_w = col.is_int ? ForWidth(col.min, col.max) : 0;
    const uint32_t forb = for_w != 0 ? ForSize(n, for_w) : UINT32_MAX;
    if (rle <= raw && rle <= forb) {
      PutU8(out, static_cast<uint8_t>(ColumnEncoding::kRle));
      PutU32(out, col.runs);
      uint32_t i = 0;
      while (i < n) {
        uint32_t j = i + 1;
        while (j < n && col.values[j] == col.values[i]) ++j;
        PutU64(out, col.values[i]);
        PutU32(out, j - i);
        i = j;
      }
    } else if (forb <= raw) {
      PutU8(out, static_cast<uint8_t>(ColumnEncoding::kFor));
      PutU8(out, static_cast<uint8_t>(for_w));
      PutU64(out, static_cast<uint64_t>(col.min));
      for (uint32_t i = 0; i < n; ++i) {
        const uint64_t off = col.values[i] - static_cast<uint64_t>(col.min);
        for (uint32_t b = 0; b < for_w; ++b) {
          PutU8(out, static_cast<uint8_t>(off >> (8 * b)));
        }
      }
    } else {
      PutU8(out, static_cast<uint8_t>(ColumnEncoding::kRaw));
      for (uint32_t i = 0; i < n; ++i) PutU64(out, col.values[i]);
    }
  }

  CompressedBlockInfo info;
  info.tuples = n;
  info.key_min = key.min;
  info.key_max = key.max;
  info.key_runs = key.runs;
  info.encoded_bytes = static_cast<uint32_t>(out->size());
  SMOOTHSCAN_CHECK(info.encoded_bytes <= capacity_);

  for (ColumnState& col : columns_) {
    col.values.clear();
    col.runs = 0;
    col.min = col.max = 0;
  }
  tuple_count_ = 0;
  encoded_size_ = 0;
  return info;
}

// ---------------------------------------------------------------------------
// CompressedBlockReader
// ---------------------------------------------------------------------------

bool CompressedBlockReader::Init(const uint8_t* data, uint32_t size) {
  if (size < kCompressedBlockHeaderSize) return false;
  if (LoadU32LE(data) != kCompressedBlockMagic) return false;
  tuple_count_ = LoadU32LE(data + 4);
  num_columns_ = LoadU16LE(data + 8);
  key_column_ = LoadU16LE(data + 10);
  key_min_ = static_cast<int64_t>(LoadU64LE(data + 12));
  key_max_ = static_cast<int64_t>(LoadU64LE(data + 20));
  key_runs_ = LoadU32LE(data + 28);
  if (key_column_ >= num_columns_) return false;

  cols_.assign(num_columns_, ColumnView());
  const uint8_t* p = data + kCompressedBlockHeaderSize;
  const uint8_t* end = data + size;
  for (uint16_t c = 0; c < num_columns_; ++c) {
    if (p >= end) return false;
    ColumnView& col = cols_[c];
    col.tag = static_cast<ColumnEncoding>(*p++);
    switch (col.tag) {
      case ColumnEncoding::kRaw:
        col.payload = p;
        col.width = 8;
        p += static_cast<size_t>(tuple_count_) * 8;
        break;
      case ColumnEncoding::kRle:
        if (p + 4 > end) return false;
        col.run_count = LoadU32LE(p);
        col.payload = p + 4;
        p += 4 + static_cast<size_t>(col.run_count) * 12;
        break;
      case ColumnEncoding::kFor:
        if (p + 9 > end) return false;
        col.width = *p;
        if (col.width != 1 && col.width != 2 && col.width != 4) return false;
        col.base = LoadU64LE(p + 1);
        col.payload = p + 9;
        p += 9 + static_cast<size_t>(tuple_count_) * col.width;
        break;
      default:
        return false;
    }
    if (p > end) return false;
  }
  return true;
}

uint64_t CompressedBlockReader::MatchKeyRanges(
    int64_t lo, int64_t hi,
    std::vector<std::pair<uint32_t, uint32_t>>* out) const {
  const ColumnView& key = cols_[key_column_];
  auto append = [out](uint32_t begin, uint32_t end) {
    if (!out->empty() && out->back().second == begin) {
      out->back().second = end;  // Merge adjacent qualifying ranges.
    } else {
      out->emplace_back(begin, end);
    }
  };
  if (key.tag == ColumnEncoding::kRle) {
    // One comparison decides a whole run — the run-skip hot path.
    uint32_t row = 0;
    const uint8_t* p = key.payload;
    for (uint32_t r = 0; r < key.run_count; ++r, p += 12) {
      const int64_t v = static_cast<int64_t>(LoadU64LE(p));
      const uint32_t len = LoadU32LE(p + 8);
      if (v >= lo && v < hi) append(row, row + len);
      row += len;
    }
    return key.run_count;
  }
  // Dense encodings: one check per tuple, on packed (kFor) or raw bytes.
  const uint32_t n = tuple_count_;
  const uint32_t w = key.width;
  const uint8_t* p = key.payload;
  uint32_t open = UINT32_MAX;
  for (uint32_t i = 0; i < n; ++i) {
    const int64_t v =
        key.tag == ColumnEncoding::kFor
            ? static_cast<int64_t>(key.base + LoadOffset(p + i * w, w))
            : static_cast<int64_t>(LoadU64LE(p + i * 8));
    const bool match = v >= lo && v < hi;
    if (match && open == UINT32_MAX) open = i;
    if (!match && open != UINT32_MAX) {
      append(open, i);
      open = UINT32_MAX;
    }
  }
  if (open != UINT32_MAX) append(open, n);
  return n;
}

void CompressedBlockReader::ExpandColumn(size_t c,
                                         std::vector<uint64_t>* out) const {
  const ColumnView& col = cols_[c];
  const uint32_t n = tuple_count_;
  out->resize(n);
  uint64_t* dst = out->data();
  switch (col.tag) {
    case ColumnEncoding::kRaw:
      for (uint32_t i = 0; i < n; ++i) dst[i] = LoadU64LE(col.payload + i * 8);
      break;
    case ColumnEncoding::kRle: {
      uint32_t row = 0;
      const uint8_t* p = col.payload;
      for (uint32_t r = 0; r < col.run_count; ++r, p += 12) {
        const uint64_t v = LoadU64LE(p);
        const uint32_t len = LoadU32LE(p + 8);
        std::fill(dst + row, dst + row + len, v);
        row += len;
      }
      SMOOTHSCAN_CHECK(row == n);
      break;
    }
    case ColumnEncoding::kFor: {
      const uint32_t w = col.width;
      for (uint32_t i = 0; i < n; ++i) {
        dst[i] = col.base + LoadOffset(col.payload + i * w, w);
      }
      break;
    }
  }
}

}  // namespace smoothscan
