// Compressed read-optimized page format: the block codec of the compressed
// tier (see compressed_extent_map.h for production and compressed_scan.h for
// the access path).
//
// A compressed *block* is one opaque blob stored as slot 0 of an ordinary
// slotted Page in a sibling file, so the BufferPool, SimDisk charging,
// pinning, mirroring and eviction all apply unchanged — one compressed page
// simply carries several heap pages' worth of tuples. Layout (all integers
// little-endian):
//
//   header   [u32 magic "CPG1"] [u32 tuple_count] [u16 num_cols]
//            [u16 key_col] [i64 key_min] [i64 key_max] [u32 key_runs]
//   columns  num_cols payloads, column-major, each:
//            [u8 tag]
//              kRaw:  tuple_count x 8-byte values (the heap encoding)
//              kRle:  [u32 run_count] run_count x ([u64 value][u32 length])
//              kFor:  [u8 width(1|2|4)] [u64 base]
//                     tuple_count x width-byte unsigned offsets from base
//
// The encoder picks the cheapest of the applicable encodings per column:
// run-length for low-cardinality/clustered data (the smol exemplar's 20-99%
// wins), frame-of-reference byte-packing as the dense fixed-width fallback
// (uniform data still shrinks 2-8x vs. 8-byte heap values), raw when nothing
// helps. DOUBLE columns only ever use kRle/kRaw on their bit patterns —
// subtracting a base from a float's bits is meaningless. The header's key
// zone map (min/max of the extent's key column) and run count power
// whole-block skipping and the chooser's run-density costing.

#ifndef SMOOTHSCAN_COMPRESS_COMPRESSED_PAGE_H_
#define SMOOTHSCAN_COMPRESS_COMPRESSED_PAGE_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "storage/schema.h"

namespace smoothscan {

/// Column encoding tags (serialized as one byte).
enum class ColumnEncoding : uint8_t {
  kRaw = 0,  ///< Dense 8-byte values, as on heap pages.
  kRle = 1,  ///< (value, run length) pairs.
  kFor = 2,  ///< Frame-of-reference: base + byte-packed unsigned offsets.
};

/// Serialized block header size in bytes.
inline constexpr uint32_t kCompressedBlockHeaderSize = 4 + 4 + 2 + 2 + 8 + 8 + 4;
/// Magic of a serialized block ("CPG1").
inline constexpr uint32_t kCompressedBlockMagic = 0x31475043;
/// Tuples per block are capped so decode scratch stays cache-friendly even
/// when extreme run-lengths would let one page hold the whole table.
inline constexpr uint32_t kMaxBlockTuples = 4096;

/// Summary of one finished block (the extent map keeps these in memory as
/// the index-only zone map).
struct CompressedBlockInfo {
  uint32_t tuples = 0;
  int64_t key_min = 0;
  int64_t key_max = 0;
  uint32_t key_runs = 0;      ///< Runs of the key column (run density).
  uint32_t encoded_bytes = 0; ///< Serialized block size.
};

/// Accumulates fixed-width tuples into one block and serializes it. Add()
/// refuses (returns false) when the block would exceed `capacity_bytes` under
/// the cheapest encoding of every column, or kMaxBlockTuples — the caller
/// then calls Finish() and retries on a fresh block.
class CompressedBlockBuilder {
 public:
  /// `schema` must be fixed-width and `key_column` an INT64/DATE column.
  CompressedBlockBuilder(const Schema* schema, int key_column,
                         uint32_t capacity_bytes);

  /// Appends the tuple serialized at `data` (heap encoding: 8 bytes per
  /// column). Returns false — without adding — when it would not fit.
  bool Add(const uint8_t* data, uint32_t size);

  uint32_t tuple_count() const { return tuple_count_; }
  bool empty() const { return tuple_count_ == 0; }

  /// Serializes the block into `out` (replacing its contents) and resets the
  /// builder for the next block. Must not be called on an empty builder.
  CompressedBlockInfo Finish(std::vector<uint8_t>* out);

 private:
  struct ColumnState {
    std::vector<uint64_t> values;
    bool is_int = true;    ///< INT64/DATE: FOR applies.
    uint32_t runs = 0;
    int64_t min = 0;       ///< Over the int64 interpretation (is_int only).
    int64_t max = 0;
  };

  /// Cheapest encoded payload size (incl. tag byte) of column `c` with
  /// `n` tuples, `runs` runs and [min, max] range.
  static uint32_t ColumnSize(const ColumnState& c, uint32_t n, uint32_t runs,
                             int64_t min, int64_t max);
  /// FOR offset width for the unsigned range, or 0 when FOR does not apply.
  static uint32_t ForWidth(int64_t min, int64_t max);

  const Schema* schema_;
  const int key_column_;
  const uint32_t capacity_;
  uint32_t tuple_count_ = 0;
  uint32_t encoded_size_ = 0;  ///< Current total under cheapest encodings.
  std::vector<ColumnState> columns_;
};

/// Zero-copy view over a serialized block: header fields, per-column run
/// iteration for predicate evaluation, and column expansion for emission.
class CompressedBlockReader {
 public:
  /// Parses the block at `data`; false on bad magic/truncation (the caller
  /// treats the page as not-compressed and falls back).
  bool Init(const uint8_t* data, uint32_t size);

  uint32_t tuple_count() const { return tuple_count_; }
  uint16_t num_columns() const { return num_columns_; }
  uint16_t key_column() const { return key_column_; }
  int64_t key_min() const { return key_min_; }
  int64_t key_max() const { return key_max_; }
  uint32_t key_runs() const { return key_runs_; }
  ColumnEncoding encoding(size_t c) const { return cols_[c].tag; }

  /// Evaluates [lo, hi) over the key column *directly on its runs*: whole
  /// runs that fail are skipped with one comparison, qualifying runs append
  /// [begin, end) row ranges to `out` (adjacent ranges merged). Returns the
  /// number of key checks performed — one per run for kRle, one per tuple
  /// for dense encodings — which is what the scan charges as inspection.
  uint64_t MatchKeyRanges(int64_t lo, int64_t hi,
                          std::vector<std::pair<uint32_t, uint32_t>>* out) const;

  /// Expands column `c` into `out` (resized to tuple_count) as raw 8-byte
  /// bit patterns — run-expanded for kRle, base-added for kFor.
  void ExpandColumn(size_t c, std::vector<uint64_t>* out) const;

 private:
  struct ColumnView {
    ColumnEncoding tag = ColumnEncoding::kRaw;
    const uint8_t* payload = nullptr;  ///< Past the tag (and width/base).
    uint32_t run_count = 0;            ///< kRle only.
    uint32_t width = 8;                ///< kFor offset width; 8 for kRaw.
    uint64_t base = 0;                 ///< kFor only.
  };

  uint32_t tuple_count_ = 0;
  uint16_t num_columns_ = 0;
  uint16_t key_column_ = 0;
  int64_t key_min_ = 0;
  int64_t key_max_ = 0;
  uint32_t key_runs_ = 0;
  std::vector<ColumnView> cols_;
};

}  // namespace smoothscan

#endif  // SMOOTHSCAN_COMPRESS_COMPRESSED_PAGE_H_
