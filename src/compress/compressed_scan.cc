#include "compress/compressed_scan.h"

#include <algorithm>

namespace smoothscan {

namespace {

/// Does block `meta` possibly hold keys in [lo, hi)? The zone consult every
/// skip decision rests on — callers charge one cache_op per consult.
bool BlockNeeded(const CompressedBlockMeta& meta, int64_t lo, int64_t hi) {
  return meta.key_max >= lo && meta.key_min < hi;
}

/// Reads the block blob out of a (pinned or storage-resident) sibling page.
void InitReader(const Page& page, CompressedBlockReader* reader) {
  uint32_t size = 0;
  const uint8_t* data = page.GetTuple(0, &size);
  SMOOTHSCAN_CHECK(data != nullptr);
  SMOOTHSCAN_CHECK(reader->Init(data, size));
}

}  // namespace

CompressedScan::CompressedScan(Engine* engine, CompressedExtentRef extent,
                               ScanPredicate predicate,
                               CompressedScanOptions options)
    : engine_(engine),
      extent_(std::move(extent)),
      predicate_(std::move(predicate)),
      options_(options) {
  SMOOTHSCAN_CHECK(extent_ != nullptr);
  SMOOTHSCAN_CHECK(options_.read_ahead_pages > 0);
  SMOOTHSCAN_CHECK(options_.page_begin <= options_.page_end);
  // The extent is keyed on one column; the path serves predicates on it.
  SMOOTHSCAN_CHECK(predicate_.column == extent_->key_column);
  // Index-only answers come from the runs alone — a residual would need the
  // payload columns this mode exists to avoid.
  SMOOTHSCAN_CHECK(!(options_.index_only && predicate_.residual));
  for (const Column& c : extent_->schema->columns()) {
    column_types_.push_back(c.type);
  }
}

CompressedScan::CompressedScan(ScanSharingCoordinator* coordinator,
                               CompressedExtentRef extent,
                               ScanPredicate predicate,
                               CompressedScanOptions options)
    : CompressedScan(coordinator->engine(), std::move(extent),
                     std::move(predicate), options) {
  shared_ = coordinator;
  // A shared lap visits every chunk; partial ranges are a morsel concept.
  SMOOTHSCAN_CHECK(options_.page_begin == 0);
  SMOOTHSCAN_CHECK(options_.page_end == kInvalidPageId);
}

Status CompressedScan::OpenImpl() {
  needed_.clear();
  spans_.clear();
  needed_idx_ = 0;
  span_idx_ = 0;
  block_ready_ = false;
  ranges_.clear();
  range_idx_ = 0;
  row_ = 0;
  chunk_ = nullptr;
  chunk_page_ = 0;
  shared_done_ = false;

  if (shared_ != nullptr) {
    // Zone consults are charged per chunk page as the lap encounters them.
    consumer_ = shared_->AttachExtent(extent_->file, extent_->num_pages());
    return Status::OK();
  }

  const PageId end =
      std::min<PageId>(extent_->num_pages(), options_.page_end);
  const PageId begin = std::min(options_.page_begin, end);
  const uint32_t ra = options_.read_ahead_pages;
  // One zone consult per block in range decides fetch-or-skip without I/O.
  ctx().cpu->ChargeCacheOp(end - begin);
  const int64_t lo = predicate_.lo;
  const int64_t hi = predicate_.hi;
  for (PageId p = begin; p < end; ++p) {
    if (!BlockNeeded(extent_->blocks[p], lo, hi)) continue;
    // Extend the current aligned-window span or start a new one: requests
    // never cross a read_ahead boundary, so morsel decompositions (aligned
    // to the same windows) issue the identical request sequence.
    if (!spans_.empty() && !needed_.empty() &&
        p / ra == needed_.back() / ra) {
      spans_.back().second =
          static_cast<uint32_t>(p - spans_.back().first + 1);
    } else {
      spans_.emplace_back(p, 1u);
    }
    needed_.push_back(p);
  }
  return Status::OK();
}

void CompressedScan::CloseImpl() {
  consumer_.Detach();
  chunk_ = nullptr;
  shared_done_ = true;
  needed_idx_ = needed_.size();
  block_ready_ = false;
}

bool CompressedScan::DecodeBlock(PageId page, const Page& page_ref) {
  (void)page;
  CompressedBlockReader reader;
  InitReader(page_ref, &reader);
  ranges_.clear();
  range_idx_ = 0;
  row_ = 0;
  const uint64_t checks =
      reader.MatchKeyRanges(predicate_.lo, predicate_.hi, &ranges_);
  stats_.tuples_inspected += checks;
  ctx().cpu->ChargeInspect(checks);
  if (ranges_.empty()) return false;
  // Run-expand the needed columns once per block; emission then streams out
  // of flat arrays across however many batches the block spans.
  if (options_.index_only) {
    cols_scratch_.resize(1);
    reader.ExpandColumn(extent_->key_column, &cols_scratch_[0]);
  } else {
    const size_t n = column_types_.size();
    cols_scratch_.resize(n);
    for (size_t c = 0; c < n; ++c) {
      reader.ExpandColumn(c, &cols_scratch_[c]);
    }
  }
  block_ready_ = true;
  return true;
}

uint64_t CompressedScan::EmitDecoded(TupleBatch* out) {
  Tuple* rows = out->fill_rows();
  size_t filled = out->fill_begin();
  const size_t cap = out->capacity();
  const bool has_residual = static_cast<bool>(predicate_.residual);
  const ValueType key_type = column_types_[extent_->key_column];
  const size_t n = column_types_.size();
  while (filled < cap && range_idx_ < ranges_.size()) {
    const auto [b, e] = ranges_[range_idx_];
    uint32_t r = std::max(row_, b);
    for (; r < e && filled < cap; ++r) {
      Tuple* decoded = &rows[filled];
      if (options_.index_only) {
        decoded->resize(1);
        Value* slot = decoded->data();
        if (key_type == ValueType::kDate) {
          slot->SetDate(static_cast<int64_t>(cols_scratch_[0][r]));
        } else {
          slot->SetInt64(static_cast<int64_t>(cols_scratch_[0][r]));
        }
      } else {
        decoded->resize(n);
        Value* slots = decoded->data();
        for (size_t c = 0; c < n; ++c) {
          const uint64_t bits = cols_scratch_[c][r];
          switch (column_types_[c]) {
            case ValueType::kInt64:
              slots[c].SetInt64(static_cast<int64_t>(bits));
              break;
            case ValueType::kDate:
              slots[c].SetDate(static_cast<int64_t>(bits));
              break;
            default: {
              double d;
              std::memcpy(&d, &bits, sizeof(d));
              slots[c].SetDouble(d);
              break;
            }
          }
        }
        if (has_residual && !predicate_.residual(*decoded)) continue;
      }
      ++filled;
    }
    row_ = r;
    if (r >= e) {
      ++range_idx_;
      row_ = 0;
    }
  }
  if (range_idx_ >= ranges_.size()) block_ready_ = false;
  const uint64_t produced = filled - out->fill_begin();
  out->set_filled(filled);
  stats_.tuples_produced += produced;
  ctx().cpu->ChargeProduce(produced);
  return produced;
}

bool CompressedScan::NextBatchPrivate(TupleBatch* out) {
  const FileId file = extent_->file;
  while (out->size() < out->capacity()) {
    if (block_ready_) {
      EmitDecoded(out);
      continue;
    }
    if (needed_idx_ >= needed_.size()) break;
    const PageId p = needed_[needed_idx_++];
    // Pull the aligned-window span covering p (one request, holes included —
    // a physical extent read cannot skip pages in the middle).
    while (span_idx_ < spans_.size() &&
           spans_[span_idx_].first + spans_[span_idx_].second <= p) {
      ++span_idx_;
    }
    if (span_idx_ < spans_.size() && spans_[span_idx_].first == p) {
      ctx().pool->FetchExtent(file, spans_[span_idx_].first,
                              spans_[span_idx_].second);
    }
    const PageGuard guard = ctx().pool->Pin(file, p);
    ++stats_.heap_pages_probed;
    DecodeBlock(p, *guard);
  }
  return !out->empty();
}

bool CompressedScan::NextBatchShared(TupleBatch* out) {
  const int64_t lo = predicate_.lo;
  const int64_t hi = predicate_.hi;
  while (out->size() < out->capacity() && !shared_done_) {
    if (block_ready_) {
      EmitDecoded(out);
      continue;
    }
    if (chunk_ == nullptr || chunk_page_ >= chunk_->num_pages) {
      chunk_ = consumer_.NextChunk();
      chunk_page_ = 0;
      if (chunk_ == nullptr) {
        shared_done_ = true;
        break;
      }
    }
    const uint32_t i = chunk_page_++;
    const PageId p = chunk_->first_page + i;
    // The group paid the fetch; this consumer pays only its zone consult
    // and (when the block qualifies) its decode.
    ctx().cpu->ChargeCacheOp(1);
    if (!BlockNeeded(extent_->blocks[p], lo, hi)) continue;
    ++stats_.heap_pages_probed;
    DecodeBlock(p, *chunk_->guards[i]);
  }
  return !out->empty();
}

bool CompressedScan::NextBatchImpl(TupleBatch* out) {
  return shared_ != nullptr ? NextBatchShared(out) : NextBatchPrivate(out);
}

uint64_t CompressedCountRange(const CompressedExtentRef& extent, int64_t lo,
                              int64_t hi, const ExecContext& ctx) {
  SMOOTHSCAN_CHECK(extent != nullptr);
  uint64_t count = 0;
  uint64_t consults = 0;
  uint64_t checks = 0;
  std::vector<std::pair<uint32_t, uint32_t>> ranges;
  for (PageId p = 0; p < extent->num_pages(); ++p) {
    const CompressedBlockMeta& meta = extent->blocks[p];
    ++consults;
    if (!BlockNeeded(meta, lo, hi)) continue;
    if (meta.key_min >= lo && meta.key_max < hi) {
      // Zone interval fully inside the probe: the whole block qualifies —
      // counted from metadata, no page touched.
      count += meta.tuples;
      continue;
    }
    // Straddling block: fetch (charged) and count on the runs.
    const PageGuard guard = ctx.pool->Fetch(extent->file, p);
    CompressedBlockReader reader;
    InitReader(*guard, &reader);
    ranges.clear();
    checks += reader.MatchKeyRanges(lo, hi, &ranges);
    for (const auto& [b, e] : ranges) count += e - b;
  }
  ctx.cpu->ChargeCacheOp(consults);
  ctx.cpu->ChargeInspect(checks);
  return count;
}

namespace {

/// Rounds the morsel size down to a multiple of the read-ahead window (and up
/// to at least one window) — same policy as the heap kernels, so extent
/// requests coincide with the serial compressed scan's.
uint32_t AlignToWindow(uint32_t morsel_pages, uint32_t read_ahead) {
  if (morsel_pages <= read_ahead) return read_ahead;
  return morsel_pages - morsel_pages % read_ahead;
}

class ParallelCompressedScanKernel : public ParallelScanKernel {
 public:
  ParallelCompressedScanKernel(Engine* engine, CompressedExtentRef extent,
                               ScanPredicate predicate,
                               CompressedScanOptions scan_options,
                               uint32_t morsel_pages)
      : engine_(engine),
        extent_(std::move(extent)),
        predicate_(std::move(predicate)),
        scan_options_(scan_options),
        morsel_pages_(
            AlignToWindow(morsel_pages, scan_options.read_ahead_pages)) {}

  const char* name() const override { return "ParallelCompressedScan"; }

  std::vector<Morsel> Plan(const ExecContext&, const EmitFn&,
                           AccessPathStats*) override {
    return MorselSource::PageRanges(extent_->num_pages(), morsel_pages_);
  }

  AccessPathStats RunMorsel(const Morsel& m, const ExecContext& ctx,
                            const EmitFn& emit) override {
    // Seed the morsel's stream at the last compressed page the serial scan
    // would have transferred before this range — the last *needed* page, a
    // pure function of the zone map and the predicate — so summed parallel
    // charges stay bit-identical to the serial scan's.
    for (PageId p = m.page_begin; p > 0; --p) {
      const CompressedBlockMeta& meta = extent_->blocks[p - 1];
      if (meta.key_max >= predicate_.lo && meta.key_min < predicate_.hi) {
        ctx.disk->SeedPosition(extent_->file, p - 1);
        break;
      }
    }
    CompressedScanOptions opts = scan_options_;
    opts.page_begin = m.page_begin;
    opts.page_end = m.page_end;
    CompressedScan scan(engine_, extent_, predicate_, opts);
    scan.SetExecContext(&ctx);
    SMOOTHSCAN_CHECK(scan.Open().ok());
    PooledBatch batch = ctx.batch_pool->Acquire();
    while (scan.NextBatch(batch.get())) {
      emit(std::move(batch));
      batch = ctx.batch_pool->Acquire();
    }
    scan.Close();
    return scan.stats();
  }

 private:
  Engine* engine_;
  CompressedExtentRef extent_;
  ScanPredicate predicate_;
  CompressedScanOptions scan_options_;
  uint32_t morsel_pages_;
};

}  // namespace

std::unique_ptr<ParallelScan> MakeParallelCompressedScan(
    Engine* engine, CompressedExtentRef extent, ScanPredicate predicate,
    CompressedScanOptions scan_options, ParallelScanOptions options) {
  if (extent == nullptr) return nullptr;
  auto kernel = std::make_unique<ParallelCompressedScanKernel>(
      engine, std::move(extent), std::move(predicate), scan_options,
      options.morsel_pages);
  return std::make_unique<ParallelScan>(engine, std::move(kernel), options);
}

}  // namespace smoothscan
