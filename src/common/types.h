// Fundamental value types shared across the smoothscan library: column types,
// typed values, tuple identifiers and page-size constants.

#ifndef SMOOTHSCAN_COMMON_TYPES_H_
#define SMOOTHSCAN_COMMON_TYPES_H_

#include <cstdint>
#include <compare>
#include <string>
#include <variant>

#include "common/status.h"

namespace smoothscan {

/// Page identifier within a heap file or index file.
using PageId = uint32_t;
/// Slot number within a page.
using SlotId = uint16_t;
/// File identifier assigned by the StorageManager.
using FileId = uint32_t;

inline constexpr PageId kInvalidPageId = UINT32_MAX;

/// Default page size, matching PostgreSQL's 8 KB default used in the paper.
inline constexpr uint32_t kDefaultPageSize = 8192;

/// Tuple identifier: the physical address of a heap tuple. Secondary index
/// leaves store (key, Tid) pairs pointing into the heap.
struct Tid {
  PageId page_id = kInvalidPageId;
  SlotId slot = 0;

  friend auto operator<=>(const Tid&, const Tid&) = default;
};

/// Column type tags. Dates are stored as days since 1970-01-01 in an Int64.
enum class ValueType : uint8_t {
  kInt64 = 0,
  kDouble = 1,
  kString = 2,
  kDate = 3,
};

/// Returns "INT64", "DOUBLE", "STRING" or "DATE".
const char* ValueTypeToString(ValueType type);

/// True for types with a fixed-width serialized representation.
inline bool IsFixedWidth(ValueType type) { return type != ValueType::kString; }

/// Serialized width in bytes for fixed-width types.
inline uint32_t FixedWidth(ValueType type) {
  return IsFixedWidth(type) ? 8u : 0u;
}

/// A typed runtime value. Used at the executor boundary; the storage layer
/// serializes values into page bytes (see storage/tuple.h).
class Value {
 public:
  Value() : rep_(int64_t{0}), type_(ValueType::kInt64) {}

  static Value Int64(int64_t v) { return Value(v, ValueType::kInt64); }
  static Value Double(double v) { return Value(v, ValueType::kDouble); }
  static Value String(std::string v) {
    return Value(std::move(v), ValueType::kString);
  }
  /// `days` is days since the epoch.
  static Value Date(int64_t days) { return Value(days, ValueType::kDate); }

  ValueType type() const { return type_; }

  int64_t AsInt64() const {
    SMOOTHSCAN_CHECK(type_ == ValueType::kInt64 || type_ == ValueType::kDate);
    return std::get<int64_t>(rep_);
  }
  double AsDouble() const {
    SMOOTHSCAN_CHECK(type_ == ValueType::kDouble);
    return std::get<double>(rep_);
  }
  const std::string& AsString() const {
    SMOOTHSCAN_CHECK(type_ == ValueType::kString);
    return std::get<std::string>(rep_);
  }

  /// Total order within a type; comparing values of different types aborts.
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const {
    return type_ == other.type_ && rep_ == other.rep_;
  }
  bool operator<(const Value& other) const { return Compare(other) < 0; }

  std::string ToString() const;

 private:
  Value(int64_t v, ValueType t) : rep_(v), type_(t) {}
  Value(double v, ValueType t) : rep_(v), type_(t) {}
  Value(std::string v, ValueType t) : rep_(std::move(v)), type_(t) {}

  std::variant<int64_t, double, std::string> rep_;
  ValueType type_;
};

}  // namespace smoothscan

#endif  // SMOOTHSCAN_COMMON_TYPES_H_
