// Fundamental value types shared across the smoothscan library: column types,
// typed values, tuple identifiers and page-size constants.

#ifndef SMOOTHSCAN_COMMON_TYPES_H_
#define SMOOTHSCAN_COMMON_TYPES_H_

#include <cstdint>
#include <compare>
#include <string>

#include "common/status.h"

namespace smoothscan {

/// Page identifier within a heap file or index file.
using PageId = uint32_t;
/// Slot number within a page.
using SlotId = uint16_t;
/// File identifier assigned by the StorageManager.
using FileId = uint32_t;

inline constexpr PageId kInvalidPageId = UINT32_MAX;

/// Default page size, matching PostgreSQL's 8 KB default used in the paper.
inline constexpr uint32_t kDefaultPageSize = 8192;

/// Tuple identifier: the physical address of a heap tuple. Secondary index
/// leaves store (key, Tid) pairs pointing into the heap.
struct Tid {
  PageId page_id = kInvalidPageId;
  SlotId slot = 0;

  friend auto operator<=>(const Tid&, const Tid&) = default;
};

/// Column type tags. Dates are stored as days since 1970-01-01 in an Int64.
enum class ValueType : uint8_t {
  kInt64 = 0,
  kDouble = 1,
  kString = 2,
  kDate = 3,
};

/// Returns "INT64", "DOUBLE", "STRING" or "DATE".
const char* ValueTypeToString(ValueType type);

/// True for types with a fixed-width serialized representation.
inline bool IsFixedWidth(ValueType type) { return type != ValueType::kString; }

/// Serialized width in bytes for fixed-width types.
inline uint32_t FixedWidth(ValueType type) {
  return IsFixedWidth(type) ? 8u : 0u;
}

/// A typed runtime value. Used at the executor boundary; the storage layer
/// serializes values into page bytes (see storage/schema.h).
///
/// Representation: a hand-rolled 16-byte tagged union rather than
/// std::variant. Numeric values (the overwhelming majority in every scan hot
/// loop) copy as two register stores with no alternative dispatch; strings
/// live behind an owned heap pointer. This halves tuple memory traffic and
/// keeps batch decode at hardware speed.
class Value {
 public:
  Value() : type_(ValueType::kInt64) { rep_.i = 0; }

  static Value Int64(int64_t v) {
    Value out(ValueType::kInt64);
    out.rep_.i = v;
    return out;
  }
  static Value Double(double v) {
    Value out(ValueType::kDouble);
    out.rep_.d = v;
    return out;
  }
  static Value String(std::string v) {
    Value out(ValueType::kString);
    out.rep_.s = new std::string(std::move(v));
    return out;
  }
  /// `days` is days since the epoch.
  static Value Date(int64_t days) {
    Value out(ValueType::kDate);
    out.rep_.i = days;
    return out;
  }

  Value(const Value& other) : rep_(other.rep_), type_(other.type_) {
    if (type_ == ValueType::kString) rep_.s = new std::string(*other.rep_.s);
  }
  Value(Value&& other) noexcept : rep_(other.rep_), type_(other.type_) {
    other.rep_.i = 0;
    other.type_ = ValueType::kInt64;
  }
  Value& operator=(const Value& other) {
    if (this == &other) return *this;
    if (type_ == ValueType::kString) {
      if (other.type_ == ValueType::kString) {
        *rep_.s = *other.rep_.s;  // Reuse the existing string's storage.
        return *this;
      }
      delete rep_.s;
    }
    type_ = other.type_;
    rep_ = other.rep_;
    if (type_ == ValueType::kString) rep_.s = new std::string(*other.rep_.s);
    return *this;
  }
  Value& operator=(Value&& other) noexcept {
    if (this == &other) return *this;
    if (type_ == ValueType::kString) delete rep_.s;
    rep_ = other.rep_;
    type_ = other.type_;
    other.rep_.i = 0;
    other.type_ = ValueType::kInt64;
    return *this;
  }
  ~Value() {
    if (type_ == ValueType::kString) delete rep_.s;
  }

  ValueType type() const { return type_; }

  /// In-place numeric mutators for batch decode: overwrite this value
  /// without constructing a temporary.
  void SetInt64(int64_t v) {
    if (type_ == ValueType::kString) delete rep_.s;
    type_ = ValueType::kInt64;
    rep_.i = v;
  }
  void SetDate(int64_t days) {
    if (type_ == ValueType::kString) delete rep_.s;
    type_ = ValueType::kDate;
    rep_.i = days;
  }
  void SetDouble(double v) {
    if (type_ == ValueType::kString) delete rep_.s;
    type_ = ValueType::kDouble;
    rep_.d = v;
  }

  int64_t AsInt64() const {
    SMOOTHSCAN_CHECK(type_ == ValueType::kInt64 || type_ == ValueType::kDate);
    return rep_.i;
  }
  double AsDouble() const {
    SMOOTHSCAN_CHECK(type_ == ValueType::kDouble);
    return rep_.d;
  }
  const std::string& AsString() const {
    SMOOTHSCAN_CHECK(type_ == ValueType::kString);
    return *rep_.s;
  }

  /// Total order within a type; comparing values of different types aborts.
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const {
    if (type_ != other.type_) return false;
    switch (type_) {
      case ValueType::kInt64:
      case ValueType::kDate:
        return rep_.i == other.rep_.i;
      case ValueType::kDouble:
        return rep_.d == other.rep_.d;
      case ValueType::kString:
        return *rep_.s == *other.rep_.s;
    }
    return false;
  }
  bool operator<(const Value& other) const { return Compare(other) < 0; }

  std::string ToString() const;

 private:
  explicit Value(ValueType t) : type_(t) {}

  union Rep {
    int64_t i;
    double d;
    std::string* s;
  };
  Rep rep_;
  ValueType type_;
};

}  // namespace smoothscan

#endif  // SMOOTHSCAN_COMMON_TYPES_H_
