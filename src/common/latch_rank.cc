#include "common/latch_rank.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace smoothscan {
namespace latch {

namespace {

// -1 = not yet initialized from build type / environment.
std::atomic<int> g_checks{-1};

int DefaultChecksState() {
  if (const char* env = std::getenv("SMOOTHSCAN_LATCH_CHECKS")) {
    return (env[0] != '\0' && env[0] != '0') ? 1 : 0;
  }
#ifdef NDEBUG
  return 0;
#else
  return 1;
#endif
}

// Held-latch stack. Ranks are strictly decreasing from bottom to top (each
// push checks against the current top), so the top is always the minimum
// held rank. 32 is far beyond the engine's deepest real nesting (~5).
constexpr int kMaxHeld = 32;
thread_local const Latch* tls_held[kMaxHeld];
thread_local int tls_depth = 0;

[[noreturn]] void Die(const char* what, const Latch* l) {
  std::fprintf(stderr, "latch hierarchy violation: %s acquiring \"%s\" (rank %d)\n",
               what, l->name(), static_cast<int>(l->rank()));
  std::fprintf(stderr, "  held by this thread (outermost first):\n");
  for (int i = 0; i < tls_depth; ++i) {
    std::fprintf(stderr, "    \"%s\" (rank %d)\n", tls_held[i]->name(),
                 static_cast<int>(tls_held[i]->rank()));
  }
  std::abort();
}

}  // namespace

bool ChecksEnabled() {
  int s = g_checks.load(std::memory_order_relaxed);
  if (s < 0) {
    s = DefaultChecksState();
    g_checks.store(s, std::memory_order_relaxed);
  }
  return s != 0;
}

void SetChecksEnabled(bool enabled) {
  g_checks.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

namespace internal {

void CheckAndPush(const Latch* l) {
  if (!ChecksEnabled()) return;
  if (static_cast<int>(l->rank()) <= 0) Die("unranked latch", l);
  if (tls_depth >= kMaxHeld) Die("held-latch stack overflow", l);
  if (tls_depth > 0) {
    const Latch* top = tls_held[tls_depth - 1];
    if (top == l) Die("recursive acquisition of", l);
    if (l->rank() >= top->rank()) {
      // Same rank is also an inversion: no latch class in the engine nests
      // with itself (pool shards touch the mirror pool only after releasing
      // their own latch).
      std::fprintf(stderr,
                   "latch hierarchy violation: rank inversion — \"%s\" (rank "
                   "%d) acquired while holding \"%s\" (rank %d)\n",
                   l->name(), static_cast<int>(l->rank()), top->name(),
                   static_cast<int>(top->rank()));
      Die("rank inversion", l);
    }
    // Recursive acquisition deeper in the stack would already have tripped
    // the rank check (equal ranks are rejected), but catch aliased latches
    // explicitly for a clearer message.
    for (int i = 0; i < tls_depth - 1; ++i) {
      if (tls_held[i] == l) Die("recursive acquisition of", l);
    }
  }
  tls_held[tls_depth++] = l;
}

void Pop(const Latch* l) {
  // Releases are near-LIFO (RAII guards), so scan from the top. A latch
  // acquired while checking was disabled is simply not on the stack.
  for (int i = tls_depth - 1; i >= 0; --i) {
    if (tls_held[i] == l) {
      for (int j = i; j < tls_depth - 1; ++j) tls_held[j] = tls_held[j + 1];
      --tls_depth;
      return;
    }
  }
}

}  // namespace internal
}  // namespace latch
}  // namespace smoothscan
