// Clang Thread Safety Analysis annotation macros (no-ops on GCC and MSVC).
//
// These turn the latch discipline that used to live in comments ("caller
// must hold the shard latch") into compiler-checked contracts: the clang CI
// leg builds with -Wthread-safety -Werror=thread-safety, so a guarded member
// touched without its latch, or a *Locked() helper called without the
// REQUIRES'd capability, fails the build instead of waiting for a lucky
// TSan schedule.
//
// Vocabulary (mirrors the upstream clang documentation):
//   CAPABILITY(x)       class is a capability (our latch::Latch wrapper)
//   SCOPED_CAPABILITY   RAII class that acquires on construction
//   GUARDED_BY(x)       data member may only be touched while x is held
//   REQUIRES(...)       function may only be called with the latch(es) held
//   ACQUIRE/RELEASE     function acquires / releases the latch
//   TRY_ACQUIRE(b, ...) function acquires iff it returns b
//   EXCLUDES(...)       function must NOT be called with the latch held
//
// Only `latch::Latch` (see latch_rank.h) carries these attributes —
// std::mutex on libstdc++ is unannotated, so raw std::mutex use in our
// headers is additionally rejected by scripts/lint_invariants.py.

#ifndef SMOOTHSCAN_COMMON_THREAD_ANNOTATIONS_H_
#define SMOOTHSCAN_COMMON_THREAD_ANNOTATIONS_H_

#if defined(__clang__)
#define SMOOTHSCAN_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define SMOOTHSCAN_THREAD_ANNOTATION(x)  // no-op outside clang
#endif

#define CAPABILITY(x) SMOOTHSCAN_THREAD_ANNOTATION(capability(x))

#define SCOPED_CAPABILITY SMOOTHSCAN_THREAD_ANNOTATION(scoped_lockable)

#define GUARDED_BY(x) SMOOTHSCAN_THREAD_ANNOTATION(guarded_by(x))

#define PT_GUARDED_BY(x) SMOOTHSCAN_THREAD_ANNOTATION(pt_guarded_by(x))

#define ACQUIRED_BEFORE(...) \
  SMOOTHSCAN_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))

#define ACQUIRED_AFTER(...) \
  SMOOTHSCAN_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

#define REQUIRES(...) \
  SMOOTHSCAN_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

#define REQUIRES_SHARED(...) \
  SMOOTHSCAN_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

#define ACQUIRE(...) \
  SMOOTHSCAN_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

#define ACQUIRE_SHARED(...) \
  SMOOTHSCAN_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))

#define RELEASE(...) \
  SMOOTHSCAN_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

#define RELEASE_SHARED(...) \
  SMOOTHSCAN_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))

#define RELEASE_GENERIC(...) \
  SMOOTHSCAN_THREAD_ANNOTATION(release_generic_capability(__VA_ARGS__))

#define TRY_ACQUIRE(...) \
  SMOOTHSCAN_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

#define EXCLUDES(...) SMOOTHSCAN_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

#define ASSERT_CAPABILITY(x) SMOOTHSCAN_THREAD_ANNOTATION(assert_capability(x))

#define RETURN_CAPABILITY(x) SMOOTHSCAN_THREAD_ANNOTATION(lock_returned(x))

#define NO_THREAD_SAFETY_ANALYSIS \
  SMOOTHSCAN_THREAD_ANNOTATION(no_thread_safety_analysis)

#endif  // SMOOTHSCAN_COMMON_THREAD_ANNOTATIONS_H_
