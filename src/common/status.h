// Status / Result<T>: exception-free error handling for the smoothscan library.
//
// The library follows the Google C++ style guide and does not use exceptions.
// Fallible operations return a Status (or a Result<T> when they also produce a
// value). Programming errors (broken invariants) abort via SMOOTHSCAN_CHECK.

#ifndef SMOOTHSCAN_COMMON_STATUS_H_
#define SMOOTHSCAN_COMMON_STATUS_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>

namespace smoothscan {

/// Canonical error space, a deliberately small subset of absl::StatusCode.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kFailedPrecondition = 5,
  kResourceExhausted = 6,
  kInternal = 7,
  kUnimplemented = 8,
  kIoError = 9,
  kCancelled = 10,
};

/// Returns a short human-readable name for `code` ("OK", "NOT_FOUND", ...).
const char* StatusCodeToString(StatusCode code);

/// Value-semantic error indicator. Cheap to copy in the OK case.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CODE>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Holds either a value of type T or an error Status. Analogous to
/// absl::StatusOr<T>. Accessing the value of a non-OK Result aborts.
template <typename T>
class Result {
 public:
  /// Implicit conversions from both sides keep call sites terse, matching
  /// absl::StatusOr usage.
  Result(T value) : status_(), value_(std::move(value)) {}  // NOLINT
  Result(Status status) : status_(std::move(status)) {      // NOLINT
    AbortIfOk();
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    AbortIfNotOk();
    return value_;
  }
  T& value() & {
    AbortIfNotOk();
    return value_;
  }
  T&& value() && {
    AbortIfNotOk();
    return std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  void AbortIfNotOk() const {
    if (!status_.ok()) {
      std::fprintf(stderr, "Result accessed with error: %s\n",
                   status_.ToString().c_str());
      std::abort();
    }
  }
  void AbortIfOk() const {
    if (status_.ok()) {
      std::fprintf(stderr, "Result constructed from OK status without value\n");
      std::abort();
    }
  }

  Status status_;
  T value_{};
};

namespace internal_status {
inline void CheckFailed(const char* file, int line, const char* expr) {
  std::fprintf(stderr, "%s:%d: SMOOTHSCAN_CHECK failed: %s\n", file, line, expr);
  std::abort();
}
}  // namespace internal_status

}  // namespace smoothscan

/// Aborts the process when `cond` is false. Used for invariant violations that
/// indicate programming errors rather than recoverable runtime conditions.
#define SMOOTHSCAN_CHECK(cond)                                              \
  do {                                                                      \
    if (!(cond)) {                                                          \
      ::smoothscan::internal_status::CheckFailed(__FILE__, __LINE__, #cond); \
    }                                                                       \
  } while (0)

/// Propagates a non-OK Status to the caller.
#define SMOOTHSCAN_RETURN_IF_ERROR(expr)        \
  do {                                          \
    ::smoothscan::Status _st = (expr);          \
    if (!_st.ok()) return _st;                  \
  } while (0)

#endif  // SMOOTHSCAN_COMMON_STATUS_H_
