#include "common/rng.h"

#include "common/status.h"

namespace smoothscan {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

void Rng::Seed(uint64_t seed) {
  seed_ = seed;
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(&sm);
}

Rng Rng::Fork(uint64_t stream) const {
  // Mix (seed, stream) through splitmix so child streams are decorrelated
  // from the parent and from each other (stream 0 != the parent itself).
  uint64_t sm = seed_ ^ 0xa0761d6478bd642fULL;
  uint64_t child = SplitMix64(&sm) + stream;
  return Rng(SplitMix64(&child));
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  SMOOTHSCAN_CHECK(lo <= hi);
  const uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<int64_t>(Next());  // Full 64-bit range.
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = UINT64_MAX - UINT64_MAX % range;
  uint64_t v = Next();
  while (v >= limit) v = Next();
  return lo + static_cast<int64_t>(v % range);
}

double Rng::UniformDouble() {
  // 53 random mantissa bits.
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::UniformDouble(double lo, double hi) {
  return lo + (hi - lo) * UniformDouble();
}

std::string Rng::AlphaString(size_t len) {
  std::string out(len, 'a');
  for (auto& c : out) c = static_cast<char>('a' + UniformInt(0, 25));
  return out;
}

}  // namespace smoothscan
