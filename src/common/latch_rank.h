// Ranked latches: the project's single mutex type, carrying both the Clang
// Thread Safety Analysis capability (compile-time "who holds what") and a
// runtime lock-hierarchy validator (deterministic "in what order").
//
// Every latch in the engine is a latch::Latch constructed with a LatchRank.
// A thread may only acquire a latch whose rank is *strictly lower* than
// every latch it already holds, so the documented layering
//
//   engine → registry eras → coordinator/shared group → compressed map →
//   parallel scan → scheduler → pool shard → storage catalog → disk →
//   batch pool → broker
//
// is checked on every acquisition. A rank inversion — the deadlock shape
// TSan only reports when the schedule cooperates — aborts deterministically
// with both latch names and the thread's held stack, on the first
// wrong-order acquisition, in any single-threaded test.
//
// The validator keeps a thread-local stack of held latches. It is compiled
// in unconditionally (one relaxed atomic load + branch per lock when
// disabled) and *enforces* when:
//   - the build is Debug (!NDEBUG), e.g. the ASan/UBSan CI job; or
//   - SMOOTHSCAN_LATCH_CHECKS=1 is set in the environment; or
//   - latch::SetChecksEnabled(true) was called (tests).
// SMOOTHSCAN_LATCH_CHECKS=0 force-disables it in Debug builds.
//
// Latch wraps std::mutex (not a spinlock), so TSan still instruments every
// acquisition and the condition_variable_any wait protocol is unchanged.

#ifndef SMOOTHSCAN_COMMON_LATCH_RANK_H_
#define SMOOTHSCAN_COMMON_LATCH_RANK_H_

#include <mutex>

#include "common/thread_annotations.h"

namespace smoothscan {
namespace latch {

/// Latch ranks, higher = acquired earlier (outermost). Gaps are deliberate:
/// a new latch class slots between neighbours without renumbering. The
/// comments name the nestings that pin each rank (see README "Correctness
/// tooling" for the full table).
enum class LatchRank : int {
  kUnranked = 0,  ///< Never lockable; reserved to reject unranked latches.

  // --- leaves (innermost) ------------------------------------------------
  kObsTraceRing = 102,  ///< obs::TraceRing::mu_ (one per worker thread).
                        ///< Events are emitted from under any engine latch
                        ///< (morph steps run under kParallelScan, publish
                        ///< instants under kRegistryTable), so rings sit at
                        ///< the very bottom; nothing is acquired under one.
  kObsTrace = 104,      ///< obs::TraceCollector::mu_ (ring directory).
                        ///< Registration happens on first emit from a
                        ///< thread — under arbitrary engine latches — and
                        ///< Export locks each ring (→ 102) under it.
  kObsMetrics = 105,    ///< obs::MetricsRegistry::mu_. Metric registration
                        ///< is legal from under any engine latch (paths
                        ///< register counters inside Open, which can run
                        ///< under kParallelScan); only leaf data under it.
  kObsSampler = 115,    ///< obs::RegistrySampler::mu_ (tick cv). Ranked
                        ///< above kBroker/kObsMetrics: a sampler tick reads
                        ///< broker snapshots and registry gauges under it.
  kBroker = 110,     ///< MemoryBroker::mu_. BatchPool charges its account
                     ///< scope while holding the pool latch, so the broker
                     ///< sits below the pool.
  kBatchPool = 130,  ///< BatchPool::mu_. Release() uncharges the memory
                     ///< scope (→ broker) under the pool latch.
  kNetPipe = 140,       ///< net::Pipe byte-buffer latch. Pure leaf: a pipe
                        ///< endpoint copies bytes under it and never calls
                        ///< back into the engine.
  kResultStream = 150,  ///< ResultStream::mu_ (handle batch queue). Pushed
                        ///< to by an executor holding no latches; the engine
                        ///< may finish a stream while holding kQueryEngine
                        ///< (queue-cancel), so it sits below 700 with room
                        ///< to spare.
  kNetWrite = 160,      ///< net connection write latch: serializes whole
                        ///< frames onto one transport. Held across
                        ///< Transport::WriteAll (→ kNetPipe), never across
                        ///< anything else.
  kDisk = 200,       ///< SimDisk::mu_ (one per logical access stream).
  kStorage = 250,    ///< StorageManager::mu_ (catalog/extent mutation).
  kPoolShard = 300,  ///< BufferPool Shard::mu. Misses append pages and
                     ///< charge the disk under the shard latch on the cold
                     ///< path; shards of one pool never nest (the mirror
                     ///< pool is only touched after the own-shard latch is
                     ///< released).

  // --- execution substrate ----------------------------------------------
  kTaskGroup = 410,      ///< TaskGroup::mu_ (completion latch).
  kScheduler = 420,      ///< TaskScheduler::mu_. SharedScanGroup::PumpLocked
                         ///< submits pump tasks under the group latch.
  kParallelScan = 440,   ///< ParallelScan::mu_. Recycling an emit slot runs
                         ///< PooledBatch dtors (→ batch pool) under it.
  kCompressedMap = 460,  ///< CompressedExtentMap::mu_. Rebuild evicts pool
                         ///< frames and truncates storage under it.

  // --- cross-query layers ------------------------------------------------
  kSharedGroup = 480,  ///< SharedScanGroup::mu_. ProduceOneLocked fetches
                       ///< through the pool and charges the broker scope.
  kCoordinator = 500,  ///< ScanSharingCoordinator::mu_. Holds while reading
                       ///< group stats / invalidating groups.

  // --- write eras ---------------------------------------------------------
  kRegistryHooks = 600,  ///< TableVersionRegistry::hook_mu_ (hook list).
  kRegistryTable = 620,  ///< TableState::mu. Publish runs hooks (→ 600 →
                         ///< coordinator → compressed map) under it.
  kRegistryMap = 640,    ///< TableVersionRegistry::map_mu_ (tables map;
                         ///< dropped before any table latch is taken, but
                         ///< ranked above so a future nesting stays legal).

  // --- top ----------------------------------------------------------------
  kQueryEngine = 700,  ///< QueryEngine::mu_ (admission lanes / gauges).

  // --- client / network front-end (above the engine: both call into
  // Submit/Cancel, which take kQueryEngine) -------------------------------
  kNetConn = 720,      ///< net server connection state (tag → handle map).
                       ///< Held only for map mutation; Cancel/Wait on the
                       ///< fetched handle run after release, so nothing
                       ///< engine-side nests under it in practice.
  kNetSession = 740,   ///< Session::mu_ (outstanding-query window). The
                       ///< engine's completion callback acquires it from an
                       ///< executor holding nothing; a submitting client may
                       ///< hold it while entering QueryEngine::SubmitSpec.
  kNetListener = 760,  ///< net::Server::mu_ (connection registry). Accepting
                       ///< a connection spawns a session (→ 740) and may
                       ///< consult engine depth (→ 700) under it.
};

/// True when acquisition-order checking is enforcing (see file comment).
bool ChecksEnabled();

/// Force checking on/off at runtime (tests; overrides build type and env).
void SetChecksEnabled(bool enabled);

class CAPABILITY("latch") Latch;

namespace internal {
// Validator hooks, out-of-line in latch_rank.cc. CheckAndPush aborts with a
// diagnostic on a rank inversion, a recursive acquisition, or an unranked
// latch; Pop is a no-op for latches acquired while checking was disabled.
void CheckAndPush(const Latch* l);
void Pop(const Latch* l);
}  // namespace internal

/// The project mutex: a std::mutex with a rank, a name, and the TSA
/// capability attribute. Satisfies BasicLockable, so it composes with
/// std::condition_variable_any; cv waits pop/re-push the held stack through
/// unlock()/lock() exactly like any other release/acquire.
class CAPABILITY("latch") Latch {
 public:
  Latch(LatchRank rank, const char* name) : rank_(rank), name_(name) {}
  Latch(const Latch&) = delete;
  Latch& operator=(const Latch&) = delete;

  void lock() ACQUIRE() {
    // Check (and record) *before* blocking: an inversion must abort rather
    // than sit in the deadlock it just created.
    internal::CheckAndPush(this);
    mu_.lock();
  }

  void unlock() RELEASE() {
    mu_.unlock();
    internal::Pop(this);
  }

  bool try_lock() TRY_ACQUIRE(true) {
    internal::CheckAndPush(this);
    if (mu_.try_lock()) return true;
    internal::Pop(this);
    return false;
  }

  LatchRank rank() const { return rank_; }
  const char* name() const { return name_; }

 private:
  std::mutex mu_;
  const LatchRank rank_;
  const char* const name_;
};

/// RAII scope lock, the std::lock_guard counterpart (TSA-visible).
class SCOPED_CAPABILITY LatchGuard {
 public:
  explicit LatchGuard(Latch& l) ACQUIRE(l) : l_(l) { l_.lock(); }
  ~LatchGuard() RELEASE() { l_.unlock(); }
  LatchGuard(const LatchGuard&) = delete;
  LatchGuard& operator=(const LatchGuard&) = delete;

 private:
  Latch& l_;
};

/// Movable-ownership lock for condition-variable waits and early release,
/// the std::unique_lock counterpart (TSA-visible).
class SCOPED_CAPABILITY UniqueLatch {
 public:
  explicit UniqueLatch(Latch& l) ACQUIRE(l) : l_(&l), owns_(true) {
    l_->lock();
  }
  ~UniqueLatch() RELEASE() {
    if (owns_) l_->unlock();
  }
  UniqueLatch(const UniqueLatch&) = delete;
  UniqueLatch& operator=(const UniqueLatch&) = delete;

  void lock() ACQUIRE() {
    l_->lock();
    owns_ = true;
  }
  void unlock() RELEASE() {
    owns_ = false;
    l_->unlock();
  }
  bool owns_lock() const { return owns_; }

 private:
  Latch* l_;
  bool owns_;
};

}  // namespace latch
}  // namespace smoothscan

#endif  // SMOOTHSCAN_COMMON_LATCH_RANK_H_
