// BatchCarry: the shared buffering behind the batch-first execution
// interfaces. AccessPath and Operator both expose {Open, NextBatch, Next,
// Close} over a subclass's NextBatchImpl; the carry buffer, the mixed
// Next()/NextBatch() hand-off, and the end-of-stream latch are identical in
// both and subtle enough that they must not be maintained twice — this class
// is that single copy.

#ifndef SMOOTHSCAN_COMMON_BATCH_CARRY_H_
#define SMOOTHSCAN_COMMON_BATCH_CARRY_H_

#include "common/tuple_batch.h"

namespace smoothscan {

class BatchCarry {
 public:
  /// Open(): forget buffered tuples and re-arm the stream.
  void Reset() {
    carry_.Clear();
    pos_ = 0;
    exhausted_ = false;
  }

  /// Close(): drop buffered tuples and latch end-of-stream until Reset().
  void MarkClosed() {
    carry_.Clear();
    pos_ = 0;
    exhausted_ = true;
  }

  /// Batch pull. `impl(TupleBatch*)` is the producer (NextBatchImpl);
  /// tuples buffered by Next() are re-emitted first so mixing the two pull
  /// styles never drops or duplicates a row. With carried tuples present the
  /// batch is not topped up from `impl` — the carry is already a full
  /// batch's worth of lookahead.
  template <typename Impl>
  bool NextBatch(TupleBatch* out, Impl&& impl) {
    out->Clear();
    while (pos_ < carry_.size() && !out->full()) {
      out->Append(carry_.Take(pos_++));
    }
    if (pos_ >= carry_.size()) {
      carry_.Clear();
      pos_ = 0;
    }
    if (out->empty() && !exhausted_) {
      if (!impl(out)) exhausted_ = true;
    }
    return !out->empty();
  }

  /// Tuple-at-a-time pull over the same stream.
  template <typename Impl>
  bool Next(Tuple* out, Impl&& impl) {
    if (pos_ >= carry_.size()) {
      if (exhausted_) return false;
      carry_.Clear();
      pos_ = 0;
      if (!impl(&carry_)) {
        exhausted_ = true;
        return false;
      }
    }
    *out = carry_.Take(pos_++);
    return true;
  }

 private:
  TupleBatch carry_;
  size_t pos_ = 0;
  bool exhausted_ = false;
};

}  // namespace smoothscan

#endif  // SMOOTHSCAN_COMMON_BATCH_CARRY_H_
