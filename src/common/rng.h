// Deterministic pseudo-random number generation. All data generators in the
// repository derive from this RNG so that experiments are exactly repeatable
// across machines and runs — a prerequisite for the paper's robustness story.

#ifndef SMOOTHSCAN_COMMON_RNG_H_
#define SMOOTHSCAN_COMMON_RNG_H_

#include <cstdint>
#include <string>

namespace smoothscan {

/// xoshiro256** with a splitmix64-seeded state. Fast, high quality, and fully
/// deterministic for a given seed.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x5eedc0ffee123457ULL) { Seed(seed); }

  /// Re-seeds the generator.
  void Seed(uint64_t seed);

  /// The seed this generator was (last) seeded with.
  uint64_t seed() const { return seed_; }

  /// Derives an independent, reproducible child stream: Fork(i) of two
  /// generators with equal seeds yields identical sequences, and distinct
  /// `stream` values yield decorrelated streams. Parallel workers draw from
  /// per-worker forks of one root seed, so a parallel run is exactly
  /// repeatable regardless of scheduling (streams are keyed by logical worker
  /// or morsel id, never by thread identity).
  Rng Fork(uint64_t stream) const;

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);

  /// Bernoulli draw with probability p of returning true.
  bool Bernoulli(double p) { return UniformDouble() < p; }

  /// Random lowercase ASCII string of exactly `len` characters.
  std::string AlphaString(size_t len);

 private:
  uint64_t seed_ = 0;
  uint64_t state_[4];
};

}  // namespace smoothscan

#endif  // SMOOTHSCAN_COMMON_RNG_H_
