#include "common/types.h"

#include <cstdio>

namespace smoothscan {

const char* ValueTypeToString(ValueType type) {
  switch (type) {
    case ValueType::kInt64:
      return "INT64";
    case ValueType::kDouble:
      return "DOUBLE";
    case ValueType::kString:
      return "STRING";
    case ValueType::kDate:
      return "DATE";
  }
  return "UNKNOWN";
}

int Value::Compare(const Value& other) const {
  SMOOTHSCAN_CHECK(type_ == other.type_);
  switch (type_) {
    case ValueType::kInt64:
    case ValueType::kDate: {
      const int64_t a = rep_.i;
      const int64_t b = other.rep_.i;
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    case ValueType::kDouble: {
      const double a = rep_.d;
      const double b = other.rep_.d;
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    case ValueType::kString: {
      const int cmp = rep_.s->compare(*other.rep_.s);
      return cmp < 0 ? -1 : (cmp > 0 ? 1 : 0);
    }
  }
  return 0;
}

std::string Value::ToString() const {
  switch (type_) {
    case ValueType::kInt64:
      return std::to_string(rep_.i);
    case ValueType::kDate: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "date(%lld)",
                    static_cast<long long>(rep_.i));
      return buf;
    }
    case ValueType::kDouble: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.6g", rep_.d);
      return buf;
    }
    case ValueType::kString:
      return *rep_.s;
  }
  return "?";
}

}  // namespace smoothscan
