#include "common/types.h"

#include <cstdio>

namespace smoothscan {

const char* ValueTypeToString(ValueType type) {
  switch (type) {
    case ValueType::kInt64:
      return "INT64";
    case ValueType::kDouble:
      return "DOUBLE";
    case ValueType::kString:
      return "STRING";
    case ValueType::kDate:
      return "DATE";
  }
  return "UNKNOWN";
}

int Value::Compare(const Value& other) const {
  SMOOTHSCAN_CHECK(type_ == other.type_);
  switch (type_) {
    case ValueType::kInt64:
    case ValueType::kDate: {
      const int64_t a = std::get<int64_t>(rep_);
      const int64_t b = std::get<int64_t>(other.rep_);
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    case ValueType::kDouble: {
      const double a = std::get<double>(rep_);
      const double b = std::get<double>(other.rep_);
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    case ValueType::kString: {
      const std::string& a = std::get<std::string>(rep_);
      const std::string& b = std::get<std::string>(other.rep_);
      const int cmp = a.compare(b);
      return cmp < 0 ? -1 : (cmp > 0 ? 1 : 0);
    }
  }
  return 0;
}

std::string Value::ToString() const {
  switch (type_) {
    case ValueType::kInt64:
      return std::to_string(std::get<int64_t>(rep_));
    case ValueType::kDate: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "date(%lld)",
                    static_cast<long long>(std::get<int64_t>(rep_)));
      return buf;
    }
    case ValueType::kDouble: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.6g", std::get<double>(rep_));
      return buf;
    }
    case ValueType::kString:
      return std::get<std::string>(rep_);
  }
  return "?";
}

}  // namespace smoothscan
