// TupleBatch: the unit of data flow of the vectorized execution substrate.
// Access paths and operators produce tuples in batches (default 1024) instead
// of one virtual call per tuple, amortizing dispatch, cache-state and
// CPU-meter accounting over the whole batch — the per-row CPU tax that
// dominates scan cost once I/O is sequential.
//
// Layout: a dense array of row slots plus an optional selection vector.
// Producers fill slots in place (AppendSlot reuses the slot's Value storage
// across batches, so steady-state decode of fixed-width schemas performs no
// allocation); filters mark survivors in the selection vector instead of
// copying rows. All read accessors (`size`, `row`, `Take`) see the batch
// through the selection, so consumers are selection-oblivious.

#ifndef SMOOTHSCAN_COMMON_TUPLE_BATCH_H_
#define SMOOTHSCAN_COMMON_TUPLE_BATCH_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/status.h"
#include "storage/schema.h"

namespace smoothscan {

/// Default number of tuples per batch. 1024 keeps a batch of the
/// micro-benchmark's 10-column tuples well inside L2 while amortizing the
/// per-batch overhead to noise.
inline constexpr size_t kDefaultBatchSize = 1024;

class TupleBatch {
 public:
  /// Row slots are allocated lazily on first use: every AccessPath/Operator
  /// owns a carry batch that a pure NextBatch pipeline never touches, and it
  /// should cost nothing until it does.
  explicit TupleBatch(size_t capacity = kDefaultBatchSize)
      : capacity_(capacity) {
    SMOOTHSCAN_CHECK(capacity_ > 0);
  }

  size_t capacity() const { return capacity_; }

  /// Number of visible (selected) tuples.
  size_t size() const { return sel_active_ ? sel_.size() : filled_; }
  bool empty() const { return size() == 0; }
  /// True when no further tuple can be appended.
  bool full() const { return filled_ >= capacity_; }

  /// Forgets all rows and any selection. Row slots keep their Value storage
  /// so the next fill cycle reuses it.
  void Clear() {
    filled_ = 0;
    sel_active_ = false;
    sel_.clear();
  }

  /// The opposite of Clear(): drops the row and selection storage outright.
  /// Memory-governance shedding only (a BatchPool over quota) — the next
  /// fill reallocates lazily via EnsureRows.
  void ReleaseMemory() {
    filled_ = 0;
    sel_active_ = false;
    std::vector<Tuple>().swap(rows_);
    std::vector<uint32_t>().swap(sel_);
  }

  /// Appends a tuple by move. Illegal once a selection is active (the dense
  /// region would no longer be well defined) — Compact() first.
  void Append(Tuple tuple) {
    SMOOTHSCAN_CHECK(!sel_active_ && filled_ < capacity_);
    EnsureRows();
    rows_[filled_++] = std::move(tuple);
  }

  /// Returns the next slot for in-place filling and marks it live. The slot
  /// retains its previous Value storage — decode into it with
  /// Schema::DeserializeInto to avoid per-tuple allocation.
  Tuple* AppendSlot() {
    SMOOTHSCAN_CHECK(!sel_active_ && filled_ < capacity_);
    EnsureRows();
    return &rows_[filled_++];
  }

  /// Drops the most recently appended slot (a slot whose tuple failed the
  /// residual predicate after in-place decode).
  void PopLast() {
    SMOOTHSCAN_CHECK(!sel_active_ && filled_ > 0);
    --filled_;
  }

  /// Raw dense-fill API for scan kernels: decode directly into
  /// `fill_rows()[fill_begin() .. capacity())`, keeping the running count in
  /// a register, then publish it with set_filled(). Slots retain their Value
  /// storage across batches, as with AppendSlot().
  Tuple* fill_rows() {
    SMOOTHSCAN_CHECK(!sel_active_);
    EnsureRows();
    return rows_.data();
  }
  size_t fill_begin() const { return filled_; }
  void set_filled(size_t n) {
    SMOOTHSCAN_CHECK(!sel_active_ && n >= filled_ && n <= capacity_);
    filled_ = n;
  }

  /// Selection-aware row access: `i` indexes the visible tuples.
  const Tuple& row(size_t i) const { return rows_[Physical(i)]; }
  Tuple& row(size_t i) { return rows_[Physical(i)]; }

  /// Moves visible row `i` out of the batch.
  Tuple Take(size_t i) { return std::move(rows_[Physical(i)]); }

  bool HasSelection() const { return sel_active_; }

  /// Keeps only the visible rows satisfying `pred`, recording survivors in
  /// the selection vector (no row is moved or copied).
  template <typename Pred>
  void Filter(Pred&& pred) {
    if (!sel_active_) {
      sel_.clear();
      for (uint32_t i = 0; i < filled_; ++i) {
        if (pred(rows_[i])) sel_.push_back(i);
      }
      sel_active_ = true;
      return;
    }
    size_t kept = 0;
    for (const uint32_t phys : sel_) {
      if (pred(rows_[phys])) sel_[kept++] = phys;
    }
    sel_.resize(kept);
  }

  /// Keeps only the first `n` visible rows.
  void Truncate(size_t n) {
    if (n >= size()) return;
    if (sel_active_) {
      sel_.resize(n);
    } else {
      filled_ = n;
    }
  }

  /// Materializes the selection into a dense prefix so Append* is legal
  /// again. Rows are moved, not copied.
  void Compact() {
    if (!sel_active_) return;
    size_t out = 0;
    for (const uint32_t phys : sel_) {
      if (phys != out) rows_[out] = std::move(rows_[phys]);
      ++out;
    }
    filled_ = out;
    sel_active_ = false;
    sel_.clear();
  }

 private:
  size_t Physical(size_t i) const {
    SMOOTHSCAN_CHECK(i < size());
    return sel_active_ ? sel_[i] : i;
  }

  void EnsureRows() {
    if (rows_.size() < capacity_) rows_.resize(capacity_);
  }

  size_t capacity_;
  size_t filled_ = 0;  ///< Dense rows in [0, filled_).
  std::vector<Tuple> rows_;
  std::vector<uint32_t> sel_;
  bool sel_active_ = false;
};

}  // namespace smoothscan

#endif  // SMOOTHSCAN_COMMON_TUPLE_BATCH_H_
