#include "exec/merge_join.h"

namespace smoothscan {

MergeJoinOp::MergeJoinOp(Engine* engine, std::unique_ptr<Operator> left,
                         std::unique_ptr<Operator> right, int left_key_col,
                         int right_key_col)
    : engine_(engine),
      left_(std::move(left)),
      right_(std::move(right)),
      left_key_col_(left_key_col),
      right_key_col_(right_key_col) {}

Status MergeJoinOp::OpenImpl() {
  SMOOTHSCAN_RETURN_IF_ERROR(left_->Open());
  SMOOTHSCAN_RETURN_IF_ERROR(right_->Open());
  right_group_.clear();
  group_valid_ = false;
  group_idx_ = 0;
  // Reset validity before the first advances: a stale *_valid_ from a
  // previous Open would make AdvanceLeft/Right compare the new stream's
  // first key against the old run's last key and abort.
  left_valid_ = false;
  right_valid_ = false;
  left_valid_ = AdvanceLeft();
  right_valid_ = AdvanceRight();
  return Status::OK();
}

bool MergeJoinOp::NextBatchImpl(TupleBatch* out) {
  uint64_t produced = 0;
  Tuple row;
  while (!out->full() && NextRow(&row)) {
    ++produced;
    out->Append(std::move(row));
  }
  engine_->cpu().ChargeProduce(produced);
  return !out->empty();
}

bool MergeJoinOp::AdvanceLeft() {
  const bool had = left_valid_;
  if (!left_->Next(&left_row_)) return false;
  const int64_t key = left_row_[left_key_col_].AsInt64();
  if (had) SMOOTHSCAN_CHECK(key >= left_last_key_);  // Ordered input.
  left_last_key_ = key;
  return true;
}

bool MergeJoinOp::AdvanceRight() {
  const bool had = right_valid_;
  if (!right_->Next(&right_row_)) return false;
  const int64_t key = right_row_[right_key_col_].AsInt64();
  if (had) SMOOTHSCAN_CHECK(key >= right_last_key_);
  right_last_key_ = key;
  return true;
}

void MergeJoinOp::CollectRightGroup(int64_t key) {
  right_group_.clear();
  group_key_ = key;
  group_valid_ = true;
  while (right_valid_ && right_row_[right_key_col_].AsInt64() == key) {
    engine_->cpu().ChargeHashOp();
    right_group_.push_back(std::move(right_row_));
    right_valid_ = AdvanceRight();
  }
}

bool MergeJoinOp::NextRow(Tuple* out) {
  while (true) {
    // Emit pending (left_row_, right_group_) pairs.
    if (group_valid_ && left_valid_ &&
        left_row_[left_key_col_].AsInt64() == group_key_ &&
        group_idx_ < right_group_.size()) {
      *out = left_row_;
      const Tuple& r = right_group_[group_idx_++];
      out->insert(out->end(), r.begin(), r.end());
      return true;
    }
    if (group_valid_ && left_valid_ &&
        left_row_[left_key_col_].AsInt64() == group_key_) {
      // Exhausted the group for this left row; next left row may reuse it.
      left_valid_ = AdvanceLeft();
      group_idx_ = 0;
      continue;
    }
    if (!left_valid_) return false;
    if (!right_valid_ && !group_valid_) return false;

    const int64_t lkey = left_row_[left_key_col_].AsInt64();
    if (group_valid_ && lkey == group_key_) continue;  // Handled above.
    if (!right_valid_) {
      // No more right rows and the current group doesn't match: done unless
      // a later left row matches the group (impossible — keys ascend).
      if (group_valid_ && lkey > group_key_) return false;
      return false;
    }
    const int64_t rkey = right_row_[right_key_col_].AsInt64();
    engine_->cpu().ChargeHashOp();
    if (lkey < rkey) {
      left_valid_ = AdvanceLeft();
    } else if (lkey > rkey) {
      right_valid_ = AdvanceRight();
    } else {
      CollectRightGroup(rkey);
      group_idx_ = 0;
    }
  }
}

}  // namespace smoothscan
