#include "exec/operators.h"

#include <algorithm>

namespace smoothscan {

bool FilterOp::NextBatchImpl(TupleBatch* out) {
  // Pull child batches until one survives the filter. Survivors are marked
  // in the selection vector; nothing is copied.
  while (child_->NextBatch(out)) {
    engine_->cpu().ChargeInspect(out->size());
    out->Filter(predicate_);
    if (!out->empty()) return true;
  }
  return false;
}

bool ProjectOp::NextBatchImpl(TupleBatch* out) {
  if (!child_->NextBatch(out)) return false;
  for (size_t i = 0; i < out->size(); ++i) {
    Tuple& row = out->row(i);
    Tuple projected;
    projected.reserve(columns_.size());
    for (const int c : columns_) projected.push_back(std::move(row[c]));
    row = std::move(projected);
  }
  return true;
}

Status SortOp::OpenImpl() {
  SMOOTHSCAN_RETURN_IF_ERROR(child_->Open());
  rows_.clear();
  next_ = 0;
  TupleBatch batch;
  while (child_->NextBatch(&batch)) {
    for (size_t i = 0; i < batch.size(); ++i) rows_.push_back(batch.Take(i));
  }
  engine_->cpu().ChargeSort(rows_.size());
  std::stable_sort(rows_.begin(), rows_.end(), less_);
  return Status::OK();
}

bool SortOp::NextBatchImpl(TupleBatch* out) {
  while (next_ < rows_.size() && !out->full()) {
    out->Append(std::move(rows_[next_++]));
  }
  return !out->empty();
}

void SortOp::CloseImpl() {
  rows_.clear();
  rows_.shrink_to_fit();
  next_ = 0;
  child_->Close();
}

Status HashJoinOp::OpenImpl() {
  SMOOTHSCAN_RETURN_IF_ERROR(left_->Open());
  SMOOTHSCAN_RETURN_IF_ERROR(right_->Open());
  table_.clear();
  matches_ = nullptr;
  match_idx_ = 0;
  probe_.Reset();
  TupleBatch batch;
  while (right_->NextBatch(&batch)) {
    engine_->cpu().ChargeHashOp(batch.size());
    for (size_t i = 0; i < batch.size(); ++i) {
      Tuple t = batch.Take(i);
      table_[t[right_key_col_].AsInt64()].push_back(std::move(t));
    }
  }
  return Status::OK();
}

bool HashJoinOp::NextBatchImpl(TupleBatch* out) {
  uint64_t hash_ops = 0;
  while (!out->full()) {
    if (matches_ != nullptr && match_idx_ < matches_->size()) {
      Tuple joined = probe_.row();
      const Tuple& right = (*matches_)[match_idx_++];
      joined.insert(joined.end(), right.begin(), right.end());
      out->Append(std::move(joined));
      continue;
    }
    matches_ = nullptr;
    if (!probe_.Advance(left_.get())) break;
    ++hash_ops;
    auto it = table_.find(probe_.row()[left_key_col_].AsInt64());
    if (it == table_.end()) continue;
    matches_ = &it->second;
    match_idx_ = 0;
  }
  engine_->cpu().ChargeHashOp(hash_ops);
  return !out->empty();
}

bool IndexNestedLoopJoinOp::NextBatchImpl(TupleBatch* out) {
  const HeapFile* inner_heap = inner_index_->heap();
  Engine* engine = inner_heap->engine();
  uint64_t inspected = 0;
  while (!out->full()) {
    if (pending_idx_ < pending_.size()) {
      out->Append(std::move(pending_[pending_idx_++]));
      continue;
    }
    pending_.clear();
    pending_idx_ = 0;
    if (!outer_.Advance(outer_op_.get())) break;
    const Tuple& outer = outer_.row();
    const int64_t key = outer[outer_key_col_].AsInt64();
    // Probe the inner index; each match costs one heap look-up.
    for (BPlusTree::Iterator it = inner_index_->Seek(key);
         it.Valid() && it.key() == key; it.Next()) {
      Tuple inner = inner_heap->Read(it.tid());
      ++inspected;
      Tuple joined = outer;
      joined.insert(joined.end(), inner.begin(), inner.end());
      pending_.push_back(std::move(joined));
    }
  }
  engine->cpu().ChargeInspect(inspected);
  return !out->empty();
}

void HashAggregateOp::Accumulate(
    const Tuple& t, std::unordered_map<std::string, size_t>* index) {
  std::string key;
  for (const int c : group_by_) {
    key += t[c].ToString();
    key += '\x1f';
  }
  auto [it, inserted] = index->emplace(key, groups_.size());
  if (inserted) {
    GroupState gs;
    for (const int c : group_by_) gs.key_values.push_back(t[c]);
    gs.acc.resize(aggs_.size(), 0.0);
    gs.counts.resize(aggs_.size(), 0);
    for (size_t a = 0; a < aggs_.size(); ++a) {
      if (aggs_[a].fn == AggFn::kMin) gs.acc[a] = 1e300;
      if (aggs_[a].fn == AggFn::kMax) gs.acc[a] = -1e300;
    }
    groups_.push_back(std::move(gs));
  }
  GroupState& gs = groups_[it->second];
  for (size_t a = 0; a < aggs_.size(); ++a) {
    const AggSpec& spec = aggs_[a];
    ++gs.counts[a];
    switch (spec.fn) {
      case AggFn::kCount:
        break;
      case AggFn::kSum:
      case AggFn::kAvg:
        gs.acc[a] += spec.expr(t);
        break;
      case AggFn::kMin:
        gs.acc[a] = std::min(gs.acc[a], spec.expr(t));
        break;
      case AggFn::kMax:
        gs.acc[a] = std::max(gs.acc[a], spec.expr(t));
        break;
    }
  }
}

Status HashAggregateOp::OpenImpl() {
  SMOOTHSCAN_RETURN_IF_ERROR(child_->Open());
  groups_.clear();
  next_ = 0;

  std::unordered_map<std::string, size_t> index;
  TupleBatch batch;
  while (child_->NextBatch(&batch)) {
    engine_->cpu().ChargeHashOp(batch.size());
    for (size_t i = 0; i < batch.size(); ++i) Accumulate(batch.row(i), &index);
  }
  // A global aggregate over empty input still produces one all-zero row.
  if (group_by_.empty() && groups_.empty()) {
    GroupState gs;
    gs.acc.resize(aggs_.size(), 0.0);
    gs.counts.resize(aggs_.size(), 0);
    groups_.push_back(std::move(gs));
  }
  return Status::OK();
}

bool HashAggregateOp::NextBatchImpl(TupleBatch* out) {
  while (next_ < groups_.size() && !out->full()) {
    const GroupState& gs = groups_[next_++];
    Tuple row = gs.key_values;
    for (size_t a = 0; a < aggs_.size(); ++a) {
      double v = 0.0;
      switch (aggs_[a].fn) {
        case AggFn::kCount:
          v = static_cast<double>(gs.counts[a]);
          break;
        case AggFn::kSum:
          v = gs.acc[a];
          break;
        case AggFn::kAvg:
          v = gs.counts[a] == 0
                  ? 0.0
                  : gs.acc[a] / static_cast<double>(gs.counts[a]);
          break;
        case AggFn::kMin:
        case AggFn::kMax:
          v = gs.acc[a];
          break;
      }
      row.push_back(Value::Double(v));
    }
    out->Append(std::move(row));
  }
  return !out->empty();
}

void HashAggregateOp::CloseImpl() {
  groups_.clear();
  groups_.shrink_to_fit();
  next_ = 0;
  child_->Close();
}

}  // namespace smoothscan
