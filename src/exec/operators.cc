#include "exec/operators.h"

#include <algorithm>

namespace smoothscan {

uint64_t Drain(Operator* op, std::vector<Tuple>* out) {
  uint64_t n = 0;
  Tuple tuple;
  while (op->Next(&tuple)) {
    ++n;
    if (out != nullptr) out->push_back(std::move(tuple));
  }
  return n;
}

bool FilterOp::Next(Tuple* out) {
  while (child_->Next(out)) {
    engine_->cpu().ChargeInspect();
    if (predicate_(*out)) return true;
  }
  return false;
}

bool ProjectOp::Next(Tuple* out) {
  Tuple in;
  if (!child_->Next(&in)) return false;
  out->clear();
  out->reserve(columns_.size());
  for (const int c : columns_) out->push_back(std::move(in[c]));
  return true;
}

Status SortOp::Open() {
  SMOOTHSCAN_RETURN_IF_ERROR(child_->Open());
  rows_.clear();
  next_ = 0;
  Tuple t;
  while (child_->Next(&t)) rows_.push_back(std::move(t));
  engine_->cpu().ChargeSort(rows_.size());
  std::stable_sort(rows_.begin(), rows_.end(), less_);
  return Status::OK();
}

bool SortOp::Next(Tuple* out) {
  if (next_ >= rows_.size()) return false;
  *out = std::move(rows_[next_++]);
  return true;
}

Status HashJoinOp::Open() {
  SMOOTHSCAN_RETURN_IF_ERROR(left_->Open());
  SMOOTHSCAN_RETURN_IF_ERROR(right_->Open());
  table_.clear();
  matches_ = nullptr;
  match_idx_ = 0;
  Tuple t;
  while (right_->Next(&t)) {
    engine_->cpu().ChargeHashOp();
    table_[t[right_key_col_].AsInt64()].push_back(std::move(t));
  }
  return Status::OK();
}

bool HashJoinOp::Next(Tuple* out) {
  while (true) {
    if (matches_ != nullptr && match_idx_ < matches_->size()) {
      *out = probe_;
      const Tuple& right = (*matches_)[match_idx_++];
      out->insert(out->end(), right.begin(), right.end());
      return true;
    }
    matches_ = nullptr;
    if (!left_->Next(&probe_)) return false;
    engine_->cpu().ChargeHashOp();
    auto it = table_.find(probe_[left_key_col_].AsInt64());
    if (it == table_.end()) continue;
    matches_ = &it->second;
    match_idx_ = 0;
  }
}

bool IndexNestedLoopJoinOp::Next(Tuple* out) {
  const HeapFile* inner_heap = inner_index_->heap();
  Engine* engine = inner_heap->engine();
  while (true) {
    if (pending_idx_ < pending_.size()) {
      *out = std::move(pending_[pending_idx_++]);
      return true;
    }
    pending_.clear();
    pending_idx_ = 0;
    Tuple outer;
    if (!outer_->Next(&outer)) return false;
    const int64_t key = outer[outer_key_col_].AsInt64();
    // Probe the inner index; each match costs one heap look-up.
    for (BPlusTree::Iterator it = inner_index_->Seek(key);
         it.Valid() && it.key() == key; it.Next()) {
      Tuple inner = inner_heap->Read(it.tid());
      engine->cpu().ChargeInspect();
      Tuple joined = outer;
      joined.insert(joined.end(), inner.begin(), inner.end());
      pending_.push_back(std::move(joined));
    }
  }
}

Status HashAggregateOp::Open() {
  SMOOTHSCAN_RETURN_IF_ERROR(child_->Open());
  groups_.clear();
  next_ = 0;

  std::unordered_map<std::string, size_t> index;
  Tuple t;
  while (child_->Next(&t)) {
    engine_->cpu().ChargeHashOp();
    std::string key;
    for (const int c : group_by_) {
      key += t[c].ToString();
      key += '\x1f';
    }
    auto [it, inserted] = index.emplace(key, groups_.size());
    if (inserted) {
      GroupState gs;
      for (const int c : group_by_) gs.key_values.push_back(t[c]);
      gs.acc.resize(aggs_.size(), 0.0);
      gs.counts.resize(aggs_.size(), 0);
      for (size_t a = 0; a < aggs_.size(); ++a) {
        if (aggs_[a].fn == AggFn::kMin) gs.acc[a] = 1e300;
        if (aggs_[a].fn == AggFn::kMax) gs.acc[a] = -1e300;
      }
      groups_.push_back(std::move(gs));
    }
    GroupState& gs = groups_[it->second];
    for (size_t a = 0; a < aggs_.size(); ++a) {
      const AggSpec& spec = aggs_[a];
      ++gs.counts[a];
      switch (spec.fn) {
        case AggFn::kCount:
          break;
        case AggFn::kSum:
        case AggFn::kAvg:
          gs.acc[a] += spec.expr(t);
          break;
        case AggFn::kMin:
          gs.acc[a] = std::min(gs.acc[a], spec.expr(t));
          break;
        case AggFn::kMax:
          gs.acc[a] = std::max(gs.acc[a], spec.expr(t));
          break;
      }
    }
  }
  // A global aggregate over empty input still produces one all-zero row.
  if (group_by_.empty() && groups_.empty()) {
    GroupState gs;
    gs.acc.resize(aggs_.size(), 0.0);
    gs.counts.resize(aggs_.size(), 0);
    groups_.push_back(std::move(gs));
  }
  return Status::OK();
}

bool HashAggregateOp::Next(Tuple* out) {
  if (next_ >= groups_.size()) return false;
  const GroupState& gs = groups_[next_++];
  *out = gs.key_values;
  for (size_t a = 0; a < aggs_.size(); ++a) {
    double v = 0.0;
    switch (aggs_[a].fn) {
      case AggFn::kCount:
        v = static_cast<double>(gs.counts[a]);
        break;
      case AggFn::kSum:
        v = gs.acc[a];
        break;
      case AggFn::kAvg:
        v = gs.counts[a] == 0 ? 0.0
                              : gs.acc[a] / static_cast<double>(gs.counts[a]);
        break;
      case AggFn::kMin:
      case AggFn::kMax:
        v = gs.acc[a];
        break;
    }
    out->push_back(Value::Double(v));
  }
  return true;
}

}  // namespace smoothscan
