// Volcano-style relational operators layered above access paths, vectorized:
// like AccessPath, the native producing call is NextBatch() (up to one
// TupleBatch of output rows per virtual dispatch) and Next() is a thin
// tuple-at-a-time adapter kept for compatibility. The paper's TPC-H
// experiments (Fig. 4, Table II) need selections, joins (hash, merge and
// index-nested-loops), aggregation, sorting and projection; the concrete
// operators provide exactly that, with all CPU work charged to the engine's
// meter per batch, amortized.
//
// Lifecycle mirrors AccessPath: Open() resets, NextBatch(b) clears and fills
// `b` returning false only at end of stream, Close() releases state and
// permits re-Open. Implementations override OpenImpl / NextBatchImpl /
// CloseImpl.

#ifndef SMOOTHSCAN_EXEC_OPERATOR_H_
#define SMOOTHSCAN_EXEC_OPERATOR_H_

#include <memory>
#include <vector>

#include "common/batch_carry.h"
#include "common/status.h"
#include "common/tuple_batch.h"
#include "storage/schema.h"

namespace smoothscan {

/// Abstract pipelined operator (batch-first; see file comment).
class Operator {
 public:
  virtual ~Operator() = default;

  Status Open();
  bool NextBatch(TupleBatch* out);
  bool Next(Tuple* out);
  void Close();
  virtual const char* name() const = 0;

 protected:
  virtual Status OpenImpl() = 0;
  virtual bool NextBatchImpl(TupleBatch* out) = 0;
  virtual void CloseImpl() {}

 private:
  BatchCarry carry_;  ///< Shared adapter buffering (see batch_carry.h).
};

/// Cursor over a child operator's batch stream, for probe-style consumers
/// (joins) that walk the child one row at a time while producing batches.
class BatchCursor {
 public:
  /// OpenImpl(): forget any buffered batch.
  void Reset() {
    batch_.Clear();
    idx_ = 0;
    valid_ = false;
  }

  /// Steps to the next row, pulling a fresh batch from `src` when the
  /// current one is consumed. Returns false at end of stream.
  bool Advance(Operator* src) {
    if (valid_) ++idx_;
    if (!valid_ || idx_ >= batch_.size()) {
      if (!src->NextBatch(&batch_)) {
        valid_ = false;
        return false;
      }
      idx_ = 0;
      valid_ = true;
    }
    return true;
  }

  /// The current row; valid only after Advance() returned true.
  const Tuple& row() const { return batch_.row(idx_); }

 private:
  TupleBatch batch_;
  size_t idx_ = 0;
  bool valid_ = false;
};

/// Runs `op` to completion with batch pulls, appending produced tuples to
/// `out` (which may be null to discard them). Returns the tuple count.
uint64_t Drain(Operator* op, std::vector<Tuple>* out);

/// Same, with a caller-chosen batch capacity (ablation benchmarks).
uint64_t DrainBatched(Operator* op, std::vector<Tuple>* out,
                      size_t batch_size);

}  // namespace smoothscan

#endif  // SMOOTHSCAN_EXEC_OPERATOR_H_
