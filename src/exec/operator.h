// Volcano-style relational operators layered above access paths. The paper's
// TPC-H experiments (Fig. 4, Table II) need selections, joins (hash and
// index-nested-loops), aggregation, sorting and projection; these operators
// provide exactly that, with all CPU work charged to the engine's meter.

#ifndef SMOOTHSCAN_EXEC_OPERATOR_H_
#define SMOOTHSCAN_EXEC_OPERATOR_H_

#include <memory>

#include "common/status.h"
#include "storage/schema.h"

namespace smoothscan {

/// Abstract pipelined operator.
class Operator {
 public:
  virtual ~Operator() = default;
  virtual Status Open() = 0;
  virtual bool Next(Tuple* out) = 0;
  virtual void Close() {}
  virtual const char* name() const = 0;
};

/// Runs `op` to completion, appending produced tuples to `out` (which may be
/// null to discard them). Returns the number of tuples produced.
uint64_t Drain(Operator* op, std::vector<Tuple>* out);

}  // namespace smoothscan

#endif  // SMOOTHSCAN_EXEC_OPERATOR_H_
