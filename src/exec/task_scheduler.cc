#include "exec/task_scheduler.h"

#include "common/status.h"

namespace smoothscan {

namespace {
thread_local int t_worker_id = -1;
}  // namespace

void TaskScheduler::TaskGroup::Wait() {
  latch::UniqueLatch lock(mu_);
  while (remaining_.load(std::memory_order_acquire) != 0) cv_.wait(lock);
}

void TaskScheduler::TaskGroup::Finish() {
  // The lock orders the decrement against a concurrent Wait() so the final
  // notify cannot be missed.
  latch::LatchGuard lock(mu_);
  if (remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    cv_.notify_all();
  }
}

TaskScheduler::TaskScheduler(uint32_t num_workers, uint64_t rng_seed) {
  SMOOTHSCAN_CHECK(num_workers > 0);
  const Rng root(rng_seed);
  workers_.reserve(num_workers);
  for (uint32_t i = 0; i < num_workers; ++i) {
    auto w = std::make_unique<Worker>();
    w->rng = root.Fork(i);
    workers_.push_back(std::move(w));
  }
  for (uint32_t i = 0; i < num_workers; ++i) {
    workers_[i]->thread = std::thread([this, i] { WorkerLoop(i); });
  }
}

TaskScheduler::~TaskScheduler() {
  {
    latch::LatchGuard lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w->thread.join();
}

std::shared_ptr<TaskScheduler::TaskGroup> TaskScheduler::Submit(
    std::vector<Task> tasks) {
  auto group = std::shared_ptr<TaskGroup>(new TaskGroup(tasks.size()));
  if (tasks.empty()) return group;
  {
    latch::LatchGuard lock(mu_);
    for (auto& task : tasks) {
      workers_[next_deal_]->tasks.emplace_back(group, std::move(task));
      next_deal_ = (next_deal_ + 1) % workers_.size();
    }
  }
  cv_.notify_all();
  return group;
}

size_t TaskScheduler::pending_tasks() const {
  latch::LatchGuard lock(mu_);
  size_t n = 0;
  for (const auto& w : workers_) n += w->tasks.size();
  return n;
}

Rng* TaskScheduler::worker_rng(uint32_t worker_id) {
  SMOOTHSCAN_CHECK(worker_id < workers_.size());
  return &workers_[worker_id]->rng;
}

int TaskScheduler::current_worker() { return t_worker_id; }

bool TaskScheduler::TryTake(uint32_t id,
                            std::pair<std::shared_ptr<TaskGroup>, Task>* out) {
  // Own deque first (front: submission order)...
  Worker& self = *workers_[id];
  if (!self.tasks.empty()) {
    *out = std::move(self.tasks.front());
    self.tasks.pop_front();
    return true;
  }
  // ...then steal from the back of the first busy sibling.
  for (size_t k = 1; k < workers_.size(); ++k) {
    Worker& victim = *workers_[(id + k) % workers_.size()];
    if (!victim.tasks.empty()) {
      *out = std::move(victim.tasks.back());
      victim.tasks.pop_back();
      steals_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
  return false;
}

void TaskScheduler::WorkerLoop(uint32_t id) {
  t_worker_id = static_cast<int>(id);
  while (true) {
    std::pair<std::shared_ptr<TaskGroup>, Task> item;
    {
      latch::UniqueLatch lock(mu_);
      // Drain remaining work before honoring shutdown, so a group submitted
      // just before destruction still completes. (An explicit wait loop
      // rather than a predicate lambda: TryTake REQUIRES(mu_), and the
      // analysis does not propagate the held latch into lambdas.)
      while (!TryTake(id, &item) && !shutdown_) cv_.wait(lock);
      if (item.second == nullptr) return;  // Shutdown with empty deques.
    }
    item.second();
    item.first->Finish();
  }
}

}  // namespace smoothscan
