// Concrete operators: access-path adapter, filter, project, sort, limit,
// hash join, index-nested-loops join and hash aggregation.

#ifndef SMOOTHSCAN_EXEC_OPERATORS_H_
#define SMOOTHSCAN_EXEC_OPERATORS_H_

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "access/access_path.h"
#include "exec/operator.h"
#include "index/bplus_tree.h"

namespace smoothscan {

/// Adapts an AccessPath (table leaf) into the operator tree.
class ScanOp : public Operator {
 public:
  explicit ScanOp(std::unique_ptr<AccessPath> path) : path_(std::move(path)) {}
  Status Open() override { return path_->Open(); }
  bool Next(Tuple* out) override { return path_->Next(out); }
  void Close() override { path_->Close(); }
  const char* name() const override { return path_->name(); }
  const AccessPath* path() const { return path_.get(); }

 private:
  std::unique_ptr<AccessPath> path_;
};

/// Filters tuples by an arbitrary predicate.
class FilterOp : public Operator {
 public:
  FilterOp(Engine* engine, std::unique_ptr<Operator> child,
           std::function<bool(const Tuple&)> predicate)
      : engine_(engine),
        child_(std::move(child)),
        predicate_(std::move(predicate)) {}

  Status Open() override { return child_->Open(); }
  bool Next(Tuple* out) override;
  void Close() override { child_->Close(); }
  const char* name() const override { return "Filter"; }

 private:
  Engine* engine_;
  std::unique_ptr<Operator> child_;
  std::function<bool(const Tuple&)> predicate_;
};

/// Keeps the listed columns, in the listed order.
class ProjectOp : public Operator {
 public:
  ProjectOp(std::unique_ptr<Operator> child, std::vector<int> columns)
      : child_(std::move(child)), columns_(std::move(columns)) {}

  Status Open() override { return child_->Open(); }
  bool Next(Tuple* out) override;
  void Close() override { child_->Close(); }
  const char* name() const override { return "Project"; }

 private:
  std::unique_ptr<Operator> child_;
  std::vector<int> columns_;
};

/// Blocking sort by a caller-supplied comparator; charges n log n CPU.
class SortOp : public Operator {
 public:
  SortOp(Engine* engine, std::unique_ptr<Operator> child,
         std::function<bool(const Tuple&, const Tuple&)> less)
      : engine_(engine), child_(std::move(child)), less_(std::move(less)) {}

  Status Open() override;
  bool Next(Tuple* out) override;
  void Close() override { child_->Close(); }
  const char* name() const override { return "Sort"; }

 private:
  Engine* engine_;
  std::unique_ptr<Operator> child_;
  std::function<bool(const Tuple&, const Tuple&)> less_;
  std::vector<Tuple> rows_;
  size_t next_ = 0;
};

/// Emits at most `limit` tuples.
class LimitOp : public Operator {
 public:
  LimitOp(std::unique_ptr<Operator> child, uint64_t limit)
      : child_(std::move(child)), limit_(limit) {}

  Status Open() override {
    emitted_ = 0;
    return child_->Open();
  }
  bool Next(Tuple* out) override {
    if (emitted_ >= limit_) return false;
    if (!child_->Next(out)) return false;
    ++emitted_;
    return true;
  }
  void Close() override { child_->Close(); }
  const char* name() const override { return "Limit"; }

 private:
  std::unique_ptr<Operator> child_;
  uint64_t limit_;
  uint64_t emitted_ = 0;
};

/// In-memory hash join: builds on the right child, probes with the left.
/// Output = left columns ++ right columns.
class HashJoinOp : public Operator {
 public:
  HashJoinOp(Engine* engine, std::unique_ptr<Operator> left,
             std::unique_ptr<Operator> right, int left_key_col,
             int right_key_col)
      : engine_(engine),
        left_(std::move(left)),
        right_(std::move(right)),
        left_key_col_(left_key_col),
        right_key_col_(right_key_col) {}

  Status Open() override;
  bool Next(Tuple* out) override;
  void Close() override {
    left_->Close();
    right_->Close();
  }
  const char* name() const override { return "HashJoin"; }

 private:
  Engine* engine_;
  std::unique_ptr<Operator> left_;
  std::unique_ptr<Operator> right_;
  int left_key_col_;
  int right_key_col_;

  std::unordered_map<int64_t, std::vector<Tuple>> table_;
  Tuple probe_;
  const std::vector<Tuple>* matches_ = nullptr;
  size_t match_idx_ = 0;
};

/// Index nested-loops join: for each outer tuple, looks the join key up in
/// the inner table's index and fetches matches from the inner heap (random
/// I/O per look-up — the "table look-up" pattern of the paper's Fig. 1
/// discussion). Output = outer columns ++ inner columns.
class IndexNestedLoopJoinOp : public Operator {
 public:
  IndexNestedLoopJoinOp(std::unique_ptr<Operator> outer,
                        const BPlusTree* inner_index, int outer_key_col)
      : outer_(std::move(outer)),
        inner_index_(inner_index),
        outer_key_col_(outer_key_col) {}

  Status Open() override {
    pending_.clear();
    return outer_->Open();
  }
  bool Next(Tuple* out) override;
  void Close() override { outer_->Close(); }
  const char* name() const override { return "IndexNLJoin"; }

 private:
  std::unique_ptr<Operator> outer_;
  const BPlusTree* inner_index_;
  int outer_key_col_;
  std::vector<Tuple> pending_;
  size_t pending_idx_ = 0;
};

/// Aggregate function kinds.
enum class AggFn { kCount, kSum, kMin, kMax, kAvg };

/// One aggregate: fn over a numeric expression of the input tuple.
struct AggSpec {
  AggFn fn = AggFn::kCount;
  /// Value extractor; ignored for kCount (may be null).
  std::function<double(const Tuple&)> expr;
};

/// Blocking hash aggregation. Output tuple = group-by columns (as stored) ++
/// one DOUBLE per aggregate. With no group-by columns produces exactly one
/// row (global aggregate).
class HashAggregateOp : public Operator {
 public:
  HashAggregateOp(Engine* engine, std::unique_ptr<Operator> child,
                  std::vector<int> group_by, std::vector<AggSpec> aggs)
      : engine_(engine),
        child_(std::move(child)),
        group_by_(std::move(group_by)),
        aggs_(std::move(aggs)) {}

  Status Open() override;
  bool Next(Tuple* out) override;
  void Close() override { child_->Close(); }
  const char* name() const override { return "HashAggregate"; }

 private:
  struct GroupState {
    Tuple key_values;
    std::vector<double> acc;
    std::vector<uint64_t> counts;
  };

  Engine* engine_;
  std::unique_ptr<Operator> child_;
  std::vector<int> group_by_;
  std::vector<AggSpec> aggs_;
  std::vector<GroupState> groups_;
  size_t next_ = 0;
};

}  // namespace smoothscan

#endif  // SMOOTHSCAN_EXEC_OPERATORS_H_
