// Concrete operators: access-path adapter, filter, project, sort, limit,
// hash join, index-nested-loops join and hash aggregation — all batch-first.
// FilterOp uses the batch's selection vector (no row is copied to drop a
// row); pipeline-breaking operators (sort, aggregate, hash-join build)
// consume their children batch-at-a-time.

#ifndef SMOOTHSCAN_EXEC_OPERATORS_H_
#define SMOOTHSCAN_EXEC_OPERATORS_H_

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "access/access_path.h"
#include "exec/operator.h"
#include "index/bplus_tree.h"

namespace smoothscan {

/// Adapts an AccessPath (table leaf) into the operator tree. Batches flow
/// through without re-buffering.
class ScanOp : public Operator {
 public:
  explicit ScanOp(std::unique_ptr<AccessPath> path) : path_(std::move(path)) {}
  const char* name() const override { return path_->name(); }
  const AccessPath* path() const { return path_.get(); }

 protected:
  Status OpenImpl() override { return path_->Open(); }
  bool NextBatchImpl(TupleBatch* out) override {
    return path_->NextBatch(out);
  }
  void CloseImpl() override { path_->Close(); }

 private:
  std::unique_ptr<AccessPath> path_;
};

/// Filters tuples by an arbitrary predicate, marking survivors in the
/// batch's selection vector.
class FilterOp : public Operator {
 public:
  FilterOp(Engine* engine, std::unique_ptr<Operator> child,
           std::function<bool(const Tuple&)> predicate)
      : engine_(engine),
        child_(std::move(child)),
        predicate_(std::move(predicate)) {}

  const char* name() const override { return "Filter"; }

 protected:
  Status OpenImpl() override { return child_->Open(); }
  bool NextBatchImpl(TupleBatch* out) override;
  void CloseImpl() override { child_->Close(); }

 private:
  Engine* engine_;
  std::unique_ptr<Operator> child_;
  std::function<bool(const Tuple&)> predicate_;
};

/// Keeps the listed columns, in the listed order.
class ProjectOp : public Operator {
 public:
  ProjectOp(std::unique_ptr<Operator> child, std::vector<int> columns)
      : child_(std::move(child)), columns_(std::move(columns)) {}

  const char* name() const override { return "Project"; }

 protected:
  Status OpenImpl() override { return child_->Open(); }
  bool NextBatchImpl(TupleBatch* out) override;
  void CloseImpl() override { child_->Close(); }

 private:
  std::unique_ptr<Operator> child_;
  std::vector<int> columns_;
};

/// Blocking sort by a caller-supplied comparator; charges n log n CPU.
class SortOp : public Operator {
 public:
  SortOp(Engine* engine, std::unique_ptr<Operator> child,
         std::function<bool(const Tuple&, const Tuple&)> less)
      : engine_(engine), child_(std::move(child)), less_(std::move(less)) {}

  const char* name() const override { return "Sort"; }

 protected:
  Status OpenImpl() override;
  bool NextBatchImpl(TupleBatch* out) override;
  void CloseImpl() override;

 private:
  Engine* engine_;
  std::unique_ptr<Operator> child_;
  std::function<bool(const Tuple&, const Tuple&)> less_;
  std::vector<Tuple> rows_;
  size_t next_ = 0;
};

/// Emits at most `limit` tuples.
class LimitOp : public Operator {
 public:
  LimitOp(std::unique_ptr<Operator> child, uint64_t limit)
      : child_(std::move(child)), limit_(limit) {}

  const char* name() const override { return "Limit"; }

 protected:
  Status OpenImpl() override {
    emitted_ = 0;
    return child_->Open();
  }
  bool NextBatchImpl(TupleBatch* out) override {
    if (emitted_ >= limit_) return false;
    if (!child_->NextBatch(out)) return false;
    if (out->size() > limit_ - emitted_) {
      out->Truncate(static_cast<size_t>(limit_ - emitted_));
    }
    emitted_ += out->size();
    return !out->empty();
  }
  void CloseImpl() override { child_->Close(); }

 private:
  std::unique_ptr<Operator> child_;
  uint64_t limit_;
  uint64_t emitted_ = 0;
};

/// In-memory hash join: builds on the right child, probes with the left.
/// Output = left columns ++ right columns.
class HashJoinOp : public Operator {
 public:
  HashJoinOp(Engine* engine, std::unique_ptr<Operator> left,
             std::unique_ptr<Operator> right, int left_key_col,
             int right_key_col)
      : engine_(engine),
        left_(std::move(left)),
        right_(std::move(right)),
        left_key_col_(left_key_col),
        right_key_col_(right_key_col) {}

  const char* name() const override { return "HashJoin"; }

 protected:
  Status OpenImpl() override;
  bool NextBatchImpl(TupleBatch* out) override;
  void CloseImpl() override {
    table_.clear();
    matches_ = nullptr;
    probe_.Reset();
    left_->Close();
    right_->Close();
  }

 private:
  Engine* engine_;
  std::unique_ptr<Operator> left_;
  std::unique_ptr<Operator> right_;
  int left_key_col_;
  int right_key_col_;

  std::unordered_map<int64_t, std::vector<Tuple>> table_;
  // Probe-side batch cursor and the match run of the current probe row.
  BatchCursor probe_;
  const std::vector<Tuple>* matches_ = nullptr;
  size_t match_idx_ = 0;
};

/// Index nested-loops join: for each outer tuple, looks the join key up in
/// the inner table's index and fetches matches from the inner heap (random
/// I/O per look-up — the "table look-up" pattern of the paper's Fig. 1
/// discussion). Output = outer columns ++ inner columns.
class IndexNestedLoopJoinOp : public Operator {
 public:
  IndexNestedLoopJoinOp(std::unique_ptr<Operator> outer,
                        const BPlusTree* inner_index, int outer_key_col)
      : outer_op_(std::move(outer)),
        inner_index_(inner_index),
        outer_key_col_(outer_key_col) {}

  const char* name() const override { return "IndexNLJoin"; }

 protected:
  Status OpenImpl() override {
    pending_.clear();
    pending_idx_ = 0;
    outer_.Reset();
    return outer_op_->Open();
  }
  bool NextBatchImpl(TupleBatch* out) override;
  void CloseImpl() override {
    pending_.clear();
    pending_.shrink_to_fit();
    outer_.Reset();
    outer_op_->Close();
  }

 private:
  std::unique_ptr<Operator> outer_op_;
  const BPlusTree* inner_index_;
  int outer_key_col_;
  BatchCursor outer_;
  std::vector<Tuple> pending_;
  size_t pending_idx_ = 0;
};

/// Aggregate function kinds.
enum class AggFn { kCount, kSum, kMin, kMax, kAvg };

/// One aggregate: fn over a numeric expression of the input tuple.
struct AggSpec {
  AggFn fn = AggFn::kCount;
  /// Value extractor; ignored for kCount (may be null).
  std::function<double(const Tuple&)> expr;
};

/// Blocking hash aggregation. Output tuple = group-by columns (as stored) ++
/// one DOUBLE per aggregate. With no group-by columns produces exactly one
/// row (global aggregate).
class HashAggregateOp : public Operator {
 public:
  HashAggregateOp(Engine* engine, std::unique_ptr<Operator> child,
                  std::vector<int> group_by, std::vector<AggSpec> aggs)
      : engine_(engine),
        child_(std::move(child)),
        group_by_(std::move(group_by)),
        aggs_(std::move(aggs)) {}

  const char* name() const override { return "HashAggregate"; }

 protected:
  Status OpenImpl() override;
  bool NextBatchImpl(TupleBatch* out) override;
  void CloseImpl() override;

 private:
  struct GroupState {
    Tuple key_values;
    std::vector<double> acc;
    std::vector<uint64_t> counts;
  };

  void Accumulate(const Tuple& t, std::unordered_map<std::string, size_t>* index);

  Engine* engine_;
  std::unique_ptr<Operator> child_;
  std::vector<int> group_by_;
  std::vector<AggSpec> aggs_;
  std::vector<GroupState> groups_;
  size_t next_ = 0;
};

}  // namespace smoothscan

#endif  // SMOOTHSCAN_EXEC_OPERATORS_H_
