#include "exec/operator.h"

namespace smoothscan {

Status Operator::Open() {
  carry_.Reset();
  return OpenImpl();
}

bool Operator::NextBatch(TupleBatch* out) {
  return carry_.NextBatch(out,
                          [this](TupleBatch* b) { return NextBatchImpl(b); });
}

bool Operator::Next(Tuple* out) {
  return carry_.Next(out,
                     [this](TupleBatch* b) { return NextBatchImpl(b); });
}

void Operator::Close() {
  carry_.MarkClosed();
  CloseImpl();
}

uint64_t Drain(Operator* op, std::vector<Tuple>* out) {
  return DrainBatched(op, out, kDefaultBatchSize);
}

uint64_t DrainBatched(Operator* op, std::vector<Tuple>* out,
                      size_t batch_size) {
  TupleBatch batch(batch_size);
  uint64_t n = 0;
  while (op->NextBatch(&batch)) {
    n += batch.size();
    if (out != nullptr) {
      for (size_t i = 0; i < batch.size(); ++i) out->push_back(batch.Take(i));
    }
  }
  return n;
}

}  // namespace smoothscan
