// MorphingIndexJoin: the paper's Section IV-B extension ("Beyond Traditional
// Join Operators"). An index nested-loops join that applies the Smooth Scan
// idea to the join's inner side: whenever a probe has to fetch an inner heap
// page, it harvests *all* tuples of that page into a hash cache keyed by the
// join attribute. Future probes are served from the cache — "INLJ morphs
// into a variant of Hash Join over time, with the index used only when a
// tuple is not found in the cache."
//
// Correctness note: a key is served from the cache only once it is known to
// be *complete* — i.e. its first probe walked the index entries and ensured
// every pointed-to page is harvested. Probes of absent keys descend the index
// (and find nothing), exactly like a plain INLJ.

#ifndef SMOOTHSCAN_EXEC_MORPHING_INDEX_JOIN_H_
#define SMOOTHSCAN_EXEC_MORPHING_INDEX_JOIN_H_

#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "access/page_id_cache.h"
#include "exec/operator.h"
#include "index/bplus_tree.h"

namespace smoothscan {

/// Morphing statistics, exposed for the extension benchmark.
struct MorphingJoinStats {
  uint64_t probes = 0;           ///< Outer tuples probed.
  uint64_t cache_hits = 0;       ///< Probes served without an index descent.
  uint64_t index_descents = 0;   ///< Probes that had to consult the index.
  uint64_t pages_harvested = 0;  ///< Distinct inner heap pages cached.
  uint64_t tuples_cached = 0;    ///< Inner tuples resident in the hash cache.

  double CacheHitRate() const {
    return probes == 0 ? 0.0
                       : static_cast<double>(cache_hits) /
                             static_cast<double>(probes);
  }
};

struct MorphingIndexJoinOptions {
  /// When false the operator degenerates to a plain INLJ (no harvesting) —
  /// the baseline for the ablation.
  bool enable_harvesting = true;
};

/// Inner join of `outer` against the table behind `inner_index`, on
/// outer[outer_key_col] == inner index key. Output = outer ++ inner columns.
class MorphingIndexJoinOp : public Operator {
 public:
  MorphingIndexJoinOp(std::unique_ptr<Operator> outer,
                      const BPlusTree* inner_index, int outer_key_col,
                      MorphingIndexJoinOptions options = {});

  const char* name() const override { return "MorphingIndexJoin"; }

  const MorphingJoinStats& morph_stats() const { return mstats_; }

 protected:
  Status OpenImpl() override;
  bool NextBatchImpl(TupleBatch* out) override;
  void CloseImpl() override {
    cache_.clear();
    complete_keys_.clear();
    harvested_.reset();
    matches_ = nullptr;  // Would otherwise dangle into the cleared cache_.
    plain_matches_.clear();
    outer_.Reset();
    outer_op_->Close();
  }

 private:
  /// Ensures every inner tuple with `key` is cached and the key is marked
  /// complete. Returns the cached matches (may be empty).
  const std::vector<Tuple>& CompleteKey(int64_t key);
  /// Fetches inner heap page `pid` and caches all its tuples by join key.
  void HarvestPage(PageId pid);

  std::unique_ptr<Operator> outer_op_;
  const BPlusTree* inner_index_;
  int outer_key_col_;
  MorphingIndexJoinOptions options_;
  MorphingJoinStats mstats_;

  std::unordered_map<int64_t, std::vector<Tuple>> cache_;
  std::unordered_set<int64_t> complete_keys_;
  std::unique_ptr<PageIdCache> harvested_;
  const std::vector<Tuple>* matches_ = nullptr;
  size_t match_idx_ = 0;
  BatchCursor outer_;  ///< Probe-side batch cursor.
  std::vector<Tuple> plain_matches_;  // INLJ mode scratch.
};

}  // namespace smoothscan

#endif  // SMOOTHSCAN_EXEC_MORPHING_INDEX_JOIN_H_
