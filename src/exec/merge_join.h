// MergeJoinOp: sort-merge join over two inputs already ordered by their join
// keys. This is the consumer the paper's Result Cache exists for: "if a Merge
// Join follows Smooth Scan, then the variant of Smooth Scan with the result
// caching will be used" (Section IV-B) — the ordered Smooth Scan feeds this
// operator directly, where a Sort Scan would first have to re-sort.

#ifndef SMOOTHSCAN_EXEC_MERGE_JOIN_H_
#define SMOOTHSCAN_EXEC_MERGE_JOIN_H_

#include <memory>
#include <vector>

#include "exec/operator.h"
#include "storage/engine.h"

namespace smoothscan {

/// Inner equi-join of two key-ordered inputs. Inputs must be non-decreasing
/// on their join columns (verified with SMOOTHSCAN_CHECK in debug use).
/// Output = left columns ++ right columns.
class MergeJoinOp : public Operator {
 public:
  MergeJoinOp(Engine* engine, std::unique_ptr<Operator> left,
              std::unique_ptr<Operator> right, int left_key_col,
              int right_key_col);

  const char* name() const override { return "MergeJoin"; }

 protected:
  Status OpenImpl() override;
  bool NextBatchImpl(TupleBatch* out) override;
  void CloseImpl() override {
    right_group_.clear();
    left_->Close();
    right_->Close();
  }

 private:
  /// One merge step: produces the next joined row, or false at end. The
  /// sides are pulled through their Next() adapters (which are themselves
  /// batch-backed); output is batched by NextBatchImpl.
  bool NextRow(Tuple* out);
  bool AdvanceLeft();
  bool AdvanceRight();
  /// Collects the full run of right tuples equal to `key` into right_group_.
  void CollectRightGroup(int64_t key);

  Engine* engine_;
  std::unique_ptr<Operator> left_;
  std::unique_ptr<Operator> right_;
  int left_key_col_;
  int right_key_col_;

  Tuple left_row_;
  bool left_valid_ = false;
  int64_t left_last_key_ = 0;
  Tuple right_row_;
  bool right_valid_ = false;
  int64_t right_last_key_ = 0;

  // Current group of right tuples sharing one key (re-emitted for each equal
  // left tuple).
  std::vector<Tuple> right_group_;
  int64_t group_key_ = 0;
  bool group_valid_ = false;
  size_t group_idx_ = 0;
};

}  // namespace smoothscan

#endif  // SMOOTHSCAN_EXEC_MERGE_JOIN_H_
