// GatherOp: the exchange operator marking the parallelism boundary of an
// operator tree. Everything *below* the gather — the morsel-driven parallel
// scan and its per-morsel work — runs on the worker pool; everything *above*
// it (filters, joins, aggregates, sorts) consumes the gathered batch stream
// serially on the main thread, charging the engine's shared meters as usual.
// Because the gather delivers batches in morsel order and morsel streams
// merge deterministically (see parallel_scan.h), a plan with a Gather leaf
// reports the same simulated cost at any degree of parallelism.

#ifndef SMOOTHSCAN_EXEC_GATHER_H_
#define SMOOTHSCAN_EXEC_GATHER_H_

#include <memory>

#include "access/parallel_scan.h"
#include "exec/operator.h"

namespace smoothscan {

class GatherOp : public Operator {
 public:
  explicit GatherOp(std::unique_ptr<ParallelScan> source)
      : source_(std::move(source)) {}

  const char* name() const override { return "Gather"; }
  const ParallelScan* source() const { return source_.get(); }

 protected:
  Status OpenImpl() override { return source_->Open(); }
  bool NextBatchImpl(TupleBatch* out) override {
    return source_->NextBatch(out);
  }
  void CloseImpl() override { source_->Close(); }

 private:
  std::unique_ptr<ParallelScan> source_;
};

}  // namespace smoothscan

#endif  // SMOOTHSCAN_EXEC_GATHER_H_
