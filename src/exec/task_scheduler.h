// TaskScheduler: the fixed worker pool behind morsel-driven parallel
// execution. Each worker owns a deque of tasks; Submit() deals a task group
// round-robin across the deques, workers pop their own deque from the front
// and — when it runs dry — steal from the back of a sibling's deque, so an
// uneven group (or several concurrent groups) still keeps every core busy.
//
// Determinism contract: the scheduler decides *where and when* tasks run,
// never *what they compute*. Parallel operators keep their results and their
// simulated-time accounting a pure function of the task (morsel) list — see
// parallel_scan.h — so any interleaving the scheduler produces yields the
// same answer. Randomized tasks draw from per-worker Rng streams forked from
// one root seed (keyed by worker slot, not thread identity).

#ifndef SMOOTHSCAN_EXEC_TASK_SCHEDULER_H_
#define SMOOTHSCAN_EXEC_TASK_SCHEDULER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/latch_rank.h"
#include "common/rng.h"
#include "common/thread_annotations.h"

namespace smoothscan {

class TaskScheduler {
 public:
  using Task = std::function<void()>;

  /// Completion handle of one Submit() call.
  class TaskGroup {
   public:
    /// Blocks until every task of the group has finished.
    void Wait() EXCLUDES(mu_);
    bool Done() const { return remaining_.load(std::memory_order_acquire) == 0; }

   private:
    friend class TaskScheduler;
    explicit TaskGroup(size_t n) : remaining_(n) {}
    void Finish() EXCLUDES(mu_);

    std::atomic<size_t> remaining_;
    /// Leaf latch: held only around the final-notify ordering, with nothing
    /// else acquired under it.
    latch::Latch mu_{latch::LatchRank::kTaskGroup, "TaskGroup::mu_"};
    std::condition_variable_any cv_;
  };

  /// Spawns `num_workers` threads (at least 1). `rng_seed` roots the
  /// per-worker random streams.
  explicit TaskScheduler(uint32_t num_workers,
                         uint64_t rng_seed = 0x5eedc0ffee123457ULL);
  ~TaskScheduler();

  TaskScheduler(const TaskScheduler&) = delete;
  TaskScheduler& operator=(const TaskScheduler&) = delete;

  uint32_t num_workers() const { return static_cast<uint32_t>(workers_.size()); }

  /// Enqueues `tasks` as one group, dealt round-robin across worker deques.
  /// Returns immediately; wait on the group for completion.
  std::shared_ptr<TaskGroup> Submit(std::vector<Task> tasks) EXCLUDES(mu_);

  /// The deterministic random stream of worker `worker_id` (call only from
  /// that worker's tasks, or before/after the group runs).
  Rng* worker_rng(uint32_t worker_id);

  /// Worker slot of the calling thread, or -1 off the pool.
  static int current_worker();

  /// Tasks obtained by stealing from another worker's deque (observability;
  /// exact value depends on timing).
  uint64_t steals() const { return steals_.load(std::memory_order_relaxed); }

  /// Tasks currently queued across all deques, excluding those already
  /// running (observability for admission-control and bench reporting; the
  /// value is stale the moment it is read).
  size_t pending_tasks() const EXCLUDES(mu_);

 private:
  struct Worker {
    std::deque<std::pair<std::shared_ptr<TaskGroup>, Task>> tasks;
    Rng rng;
    std::thread thread;
  };

  void WorkerLoop(uint32_t id);
  /// Pops own work from the front, or steals from the back of a sibling.
  bool TryTake(uint32_t id, std::pair<std::shared_ptr<TaskGroup>, Task>* out)
      REQUIRES(mu_);

  // One latch guards all deques: contention is per-task (morsels are
  // thousands of tuples each), far off any hot path. The stealing *policy*
  // stays per-deque; the latch is an implementation shortcut.
  mutable latch::Latch mu_{latch::LatchRank::kScheduler,
                           "TaskScheduler::mu_"};
  std::condition_variable_any cv_;
  /// The vector itself is fixed after construction (worker_rng reads it
  /// latch-free under the "only that worker's tasks" contract); the `tasks`
  /// deques inside are guarded by `mu_` — accessed only via TryTake/Submit.
  std::vector<std::unique_ptr<Worker>> workers_;
  size_t next_deal_ GUARDED_BY(mu_) = 0;
  bool shutdown_ GUARDED_BY(mu_) = false;
  std::atomic<uint64_t> steals_{0};
};

}  // namespace smoothscan

#endif  // SMOOTHSCAN_EXEC_TASK_SCHEDULER_H_
