#include "exec/morphing_index_join.h"

namespace smoothscan {

MorphingIndexJoinOp::MorphingIndexJoinOp(std::unique_ptr<Operator> outer,
                                         const BPlusTree* inner_index,
                                         int outer_key_col,
                                         MorphingIndexJoinOptions options)
    : outer_op_(std::move(outer)),
      inner_index_(inner_index),
      outer_key_col_(outer_key_col),
      options_(options) {}

Status MorphingIndexJoinOp::OpenImpl() {
  mstats_ = MorphingJoinStats();
  cache_.clear();
  complete_keys_.clear();
  harvested_ =
      std::make_unique<PageIdCache>(inner_index_->heap()->num_pages());
  matches_ = nullptr;
  match_idx_ = 0;
  outer_.Reset();
  return outer_op_->Open();
}

void MorphingIndexJoinOp::HarvestPage(PageId pid) {
  const HeapFile* heap = inner_index_->heap();
  Engine* engine = heap->engine();
  const PageGuard guard = engine->pool().Fetch(heap->file_id(), pid);
  harvested_->Mark(pid);
  ++mstats_.pages_harvested;
  const Page& page = *guard;
  const Schema& schema = heap->schema();
  const int key_col = inner_index_->key_column();
  for (uint16_t s = 0; s < page.num_slots(); ++s) {
    uint32_t size = 0;
    const uint8_t* data = page.GetTuple(s, &size);
    if (data == nullptr) continue;  // Tombstoned slot.
    engine->cpu().ChargeInspect();
    Tuple tuple = schema.Deserialize(data, size);
    const int64_t key = tuple[key_col].AsInt64();
    engine->cpu().ChargeHashOp();
    cache_[key].push_back(std::move(tuple));
    ++mstats_.tuples_cached;
  }
}

const std::vector<Tuple>& MorphingIndexJoinOp::CompleteKey(int64_t key) {
  static const std::vector<Tuple> kEmpty;
  Engine* engine = inner_index_->heap()->engine();
  engine->cpu().ChargeHashOp();
  if (complete_keys_.count(key) > 0) {
    ++mstats_.cache_hits;
    auto it = cache_.find(key);
    return it == cache_.end() ? kEmpty : it->second;
  }
  // First probe of this key: walk its index entries; harvest any page not
  // yet cached. Afterwards every tuple with this key is resident.
  ++mstats_.index_descents;
  for (BPlusTree::Iterator it = inner_index_->Seek(key);
       it.Valid() && it.key() == key; it.Next()) {
    const PageId pid = it.tid().page_id;
    engine->cpu().ChargeCacheOp();
    if (!harvested_->IsMarked(pid)) HarvestPage(pid);
  }
  complete_keys_.insert(key);
  engine->cpu().ChargeHashOp();
  auto it = cache_.find(key);
  return it == cache_.end() ? kEmpty : it->second;
}

bool MorphingIndexJoinOp::NextBatchImpl(TupleBatch* out) {
  const HeapFile* heap = inner_index_->heap();
  Engine* engine = heap->engine();
  uint64_t produced = 0;
  while (!out->full()) {
    if (matches_ != nullptr && match_idx_ < matches_->size()) {
      Tuple joined = outer_.row();
      const Tuple& inner = (*matches_)[match_idx_++];
      joined.insert(joined.end(), inner.begin(), inner.end());
      out->Append(std::move(joined));
      ++produced;
      continue;
    }
    matches_ = nullptr;
    if (!outer_.Advance(outer_op_.get())) break;
    ++mstats_.probes;
    const int64_t key = outer_.row()[outer_key_col_].AsInt64();

    if (options_.enable_harvesting) {
      const std::vector<Tuple>& m = CompleteKey(key);
      if (m.empty()) continue;
      matches_ = &m;
      match_idx_ = 0;
      continue;
    }

    // Plain INLJ baseline: one heap look-up per matching entry, no caching.
    ++mstats_.index_descents;
    plain_matches_.clear();
    uint64_t inspected = 0;
    for (BPlusTree::Iterator it = inner_index_->Seek(key);
         it.Valid() && it.key() == key; it.Next()) {
      plain_matches_.push_back(heap->Read(it.tid()));
      ++inspected;
    }
    engine->cpu().ChargeInspect(inspected);
    if (plain_matches_.empty()) continue;
    matches_ = &plain_matches_;
    match_idx_ = 0;
  }
  engine->cpu().ChargeProduce(produced);
  return !out->empty();
}

}  // namespace smoothscan
