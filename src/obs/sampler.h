// RegistrySampler: bridges pull-style subsystem snapshots (MemoryBroker
// totals/per-class bytes/pressure, scan-sharing coordinator fan-out) into
// registry gauges, either on demand (SampleOnce, e.g. right before a
// report snapshot) or from a small background thread at a fixed period
// (the WorkloadDriver's periodic snapshot reporter).
//
// Everything here is read-only against the sampled subsystems: the sampler
// reads broker byte totals and coordinator stats and writes gauges — it
// never sheds, spills, or bills anything (lint: obs-accounting).
//
// Latching: the sampler's own latch (LatchRank::kObsSampler = 115) exists
// for the tick condition variable. It ranks *above* kBroker (110) and
// kObsMetrics (105) because a tick reads broker snapshots and writes
// registry gauges while holding it.

#ifndef SMOOTHSCAN_OBS_SAMPLER_H_
#define SMOOTHSCAN_OBS_SAMPLER_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <thread>

#include "common/latch_rank.h"
#include "common/thread_annotations.h"
#include "obs/metrics.h"

namespace smoothscan {

class MemoryBroker;
class ScanSharingCoordinator;

namespace obs {

class RegistrySampler {
 public:
  struct Sources {
    MetricsRegistry* registry = nullptr;  ///< Required.
    const MemoryBroker* broker = nullptr;
    const ScanSharingCoordinator* sharing = nullptr;
  };

  explicit RegistrySampler(Sources sources);
  ~RegistrySampler();
  RegistrySampler(const RegistrySampler&) = delete;
  RegistrySampler& operator=(const RegistrySampler&) = delete;

  /// One synchronous pull of every attached source into registry gauges.
  void SampleOnce();

  /// Spawns the periodic sampling thread (idempotent). First tick fires
  /// after one period; Stop() (or the destructor) both samples once more,
  /// so the final snapshot is never staler than the stop point.
  void Start(std::chrono::milliseconds period);
  void Stop();

  uint64_t samples_taken() const {
    return samples_.load(std::memory_order_relaxed);
  }

 private:
  void Loop(std::chrono::milliseconds period);

  const Sources sources_;
  // Cached gauge handles (registered in the constructor, so SampleOnce is
  // pure stores).
  Gauge* g_broker_total_ = nullptr;
  Gauge* g_broker_peak_ = nullptr;
  Gauge* g_broker_pressure_epochs_ = nullptr;
  Gauge* g_broker_under_pressure_ = nullptr;
  Gauge* g_broker_class_[5] = {};
  Gauge* g_sharing_groups_ = nullptr;
  Gauge* g_sharing_consumers_ = nullptr;
  Gauge* g_sharing_chunks_ = nullptr;
  Gauge* g_sharing_pages_ = nullptr;
  Gauge* g_sharing_claims_ = nullptr;
  Gauge* g_sharing_fanout_x1000_ = nullptr;

  latch::Latch mu_{latch::LatchRank::kObsSampler, "RegistrySampler::mu_"};
  std::condition_variable_any cv_;
  bool stop_ GUARDED_BY(mu_) = false;
  std::thread thread_;
  std::atomic<uint64_t> samples_{0};
};

}  // namespace obs
}  // namespace smoothscan

#endif  // SMOOTHSCAN_OBS_SAMPLER_H_
