#include "obs/sampler.h"

#include <string>

#include "common/status.h"
#include "mem/memory_broker.h"
#include "sharing/scan_sharing.h"

namespace smoothscan {
namespace obs {

// The sampler header hardcodes the gauge-array size to keep obs/ headers
// light; pin it to the real class count here.
static_assert(kNumMemoryClasses == 5,
              "resize RegistrySampler::g_broker_class_");

RegistrySampler::RegistrySampler(Sources sources) : sources_(sources) {
  SMOOTHSCAN_CHECK(sources_.registry != nullptr);
  MetricsRegistry* r = sources_.registry;
  if (sources_.broker != nullptr) {
    g_broker_total_ = r->gauge("broker.total_bytes");
    g_broker_peak_ = r->gauge("broker.peak_total_bytes");
    g_broker_pressure_epochs_ = r->gauge("broker.pressure_epochs");
    g_broker_under_pressure_ = r->gauge("broker.under_pressure");
    for (size_t i = 0; i < kNumMemoryClasses; ++i) {
      std::string name = "broker.class.";
      name += MemoryClassName(static_cast<MemoryClass>(i));
      name += ".bytes";
      g_broker_class_[i] = r->gauge(name);
    }
  }
  if (sources_.sharing != nullptr) {
    g_sharing_groups_ = r->gauge("sharing.groups");
    g_sharing_consumers_ = r->gauge("sharing.consumers_attached");
    g_sharing_chunks_ = r->gauge("sharing.chunks_produced");
    g_sharing_pages_ = r->gauge("sharing.pages_fetched");
    g_sharing_claims_ = r->gauge("sharing.chunk_claims");
    g_sharing_fanout_x1000_ = r->gauge("sharing.fanout_x1000");
  }
}

RegistrySampler::~RegistrySampler() { Stop(); }

void RegistrySampler::SampleOnce() {
  if (sources_.broker != nullptr) {
    const MemoryBroker& b = *sources_.broker;
    g_broker_total_->Set(static_cast<int64_t>(b.total_bytes()));
    g_broker_peak_->Set(static_cast<int64_t>(b.peak_total_bytes()));
    g_broker_pressure_epochs_->Set(static_cast<int64_t>(b.pressure_epoch()));
    g_broker_under_pressure_->Set(b.UnderPressure() ? 1 : 0);
    for (size_t i = 0; i < kNumMemoryClasses; ++i) {
      g_broker_class_[i]->Set(
          static_cast<int64_t>(b.class_bytes(static_cast<MemoryClass>(i))));
    }
  }
  if (sources_.sharing != nullptr) {
    ScanSharingStats s = sources_.sharing->stats();
    g_sharing_groups_->Set(static_cast<int64_t>(s.groups));
    g_sharing_consumers_->Set(static_cast<int64_t>(s.consumers_attached));
    g_sharing_chunks_->Set(static_cast<int64_t>(s.chunks_produced));
    g_sharing_pages_->Set(static_cast<int64_t>(s.pages_fetched));
    g_sharing_claims_->Set(static_cast<int64_t>(s.chunk_claims));
    // Fan-out: chunks claimed by consumers per chunk produced once, ×1000
    // (8 clients sharing one scan ⇒ ~8000).
    int64_t fanout = s.chunks_produced == 0
                         ? 0
                         : static_cast<int64_t>(s.chunk_claims * 1000 /
                                                s.chunks_produced);
    g_sharing_fanout_x1000_->Set(fanout);
  }
  samples_.fetch_add(1, std::memory_order_relaxed);
}

void RegistrySampler::Start(std::chrono::milliseconds period) {
  if (thread_.joinable()) return;
  {
    latch::LatchGuard g(mu_);
    stop_ = false;
  }
  thread_ = std::thread([this, period] { Loop(period); });
}

void RegistrySampler::Stop() {
  if (!thread_.joinable()) return;
  {
    latch::LatchGuard g(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  thread_.join();
  // Close the books: the last sample reflects the stop point, not the last
  // tick boundary.
  SampleOnce();
}

void RegistrySampler::Loop(std::chrono::milliseconds period) {
  latch::UniqueLatch lock(mu_);
  while (!stop_) {
    // Spurious wakeups only cost an early sample; Stop() sets stop_ first.
    cv_.wait_for(lock, period);
    if (stop_) break;
    lock.unlock();
    SampleOnce();
    lock.lock();
  }
}

}  // namespace obs
}  // namespace smoothscan
