// MetricsRegistry: the engine's unified observability plane — named counters,
// gauges and log-bucketed histograms that every subsystem's scattered stats
// map onto (buffer-pool hits/misses/write-backs, broker per-class bytes and
// pressure epochs, batch-pool cold acquires, admission-lane depths,
// shared-scan fan-out, ResultCache spills/restores).
//
// Hot-path contract: incrementing a metric is lock-free — counters are
// per-thread sharded cache-line-aligned atomic slots (one relaxed fetch_add,
// no false sharing between worker threads), gauges and histogram buckets are
// single relaxed atomics. The registry latch (LatchRank::kObsMetrics, a leaf
// below the broker so registration is legal from under any engine latch) is
// taken only at registration and snapshot time. Metric handles returned by
// counter()/gauge()/histogram() are stable for the registry's lifetime, so
// emission sites cache the pointer once and never look names up again.
//
// Accounting invariant (the same one every subsystem carries): metrics are
// bookkeeping only. Nothing in src/obs/ touches a SimDisk or CpuMeter —
// enforced statically by scripts/lint_invariants.py (obs-accounting) — so
// simulated per-query cost is bit-identical with a registry attached or not,
// at any DOP and admission cap.

#ifndef SMOOTHSCAN_OBS_METRICS_H_
#define SMOOTHSCAN_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/latch_rank.h"
#include "common/thread_annotations.h"

namespace smoothscan {
namespace obs {

/// Per-thread shard index for sharded counters: a small dense id handed out
/// once per thread, so Counter::Add is one relaxed fetch_add on a slot that
/// (for the first kCounterShards threads) no other thread writes.
size_t ThisThreadShardIndex();

/// Monotonic event counter with per-thread sharded slots (see file comment).
class Counter {
 public:
  static constexpr size_t kShards = 16;  ///< Power of two.

  void Add(uint64_t n = 1) {
    shards_[ThisThreadShardIndex() & (kShards - 1)].v.fetch_add(
        n, std::memory_order_relaxed);
  }

  /// Sum over all shards (snapshot-consistent enough for reporting; exact
  /// once the writers have quiesced).
  uint64_t value() const {
    uint64_t total = 0;
    for (const Shard& s : shards_) {
      total += s.v.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> v{0};
  };
  Shard shards_[kShards];
};

/// Instantaneous signed level (queue depths, resident bytes). Set/Add are
/// single relaxed atomics — gauges are updated at event granularity (query
/// admission, sampler ticks), never per tuple.
class Gauge {
 public:
  void Set(int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void Add(int64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
  int64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

/// Log2-bucketed histogram: value v lands in bucket bit_width(v), so bucket
/// upper bounds are 0, 1, 3, 7, ... (2^i - 1). Coarse by design — latency
/// distributions over decades, recorded with one relaxed fetch_add.
class Histogram {
 public:
  static constexpr size_t kBuckets = 64;

  void Record(uint64_t v) {
    buckets_[BucketOf(v)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }

  uint64_t count() const;
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t bucket(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  /// Upper bound of the bucket holding the q-quantile (q in [0, 1]); 0 on an
  /// empty histogram. Nearest-rank over bucket counts.
  uint64_t ValueAtQuantile(double q) const;

  static size_t BucketOf(uint64_t v) {
    size_t b = 0;
    while (v != 0) {
      v >>= 1;
      ++b;
    }
    return b;  // 0 -> bucket 0; 1 -> 1; 2..3 -> 2; ... (== bit_width).
  }
  /// Largest value bucket `i` can hold (2^i - 1).
  static uint64_t BucketUpperBound(size_t i) {
    return i >= 64 ? UINT64_MAX : (uint64_t{1} << i) - 1;
  }

 private:
  std::atomic<uint64_t> buckets_[kBuckets] = {};
  std::atomic<uint64_t> sum_{0};
};

enum class MetricKind { kCounter, kGauge, kHistogram };

/// One flattened snapshot entry. Histograms flatten into several entries
/// ("<name>.count", "<name>.sum", "<name>.p50", "<name>.p95", "<name>.p99"),
/// all tagged kHistogram.
struct MetricValue {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  double value = 0.0;
};

/// Point-in-time copy of every registered metric, safe to keep after the
/// registry is gone (WorkloadReport carries one).
struct MetricsSnapshot {
  std::vector<MetricValue> values;

  bool Has(std::string_view name) const;
  /// Value of `name`, or `def` when absent.
  double Value(std::string_view name, double def = 0.0) const;
};

/// Named-metric registry (see file comment). Thread-safe; handles are stable
/// and valid for the registry's lifetime.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Registration: returns the existing metric of that name or creates it.
  /// Takes the registry latch — call at setup/Open time, cache the pointer.
  Counter* counter(std::string_view name) EXCLUDES(mu_);
  Gauge* gauge(std::string_view name) EXCLUDES(mu_);
  Histogram* histogram(std::string_view name) EXCLUDES(mu_);

  /// Flattened copy of every metric (sorted by name). Histogram quantiles
  /// are bucket upper bounds — coarse, monotone, good enough for reports.
  MetricsSnapshot Snapshot() const EXCLUDES(mu_);

  size_t num_metrics() const EXCLUDES(mu_);

 private:
  /// Leaf latch (below kBroker): registration is legal while holding any
  /// other engine latch; nothing is ever acquired under it.
  mutable latch::Latch mu_{latch::LatchRank::kObsMetrics,
                           "MetricsRegistry::mu_"};
  // Deques give handed-out metric pointers stability across registrations.
  std::deque<Counter> counters_ GUARDED_BY(mu_);
  std::deque<Gauge> gauges_ GUARDED_BY(mu_);
  std::deque<Histogram> histograms_ GUARDED_BY(mu_);
  struct Slot {
    MetricKind kind;
    size_t index;
  };
  std::unordered_map<std::string, Slot> by_name_ GUARDED_BY(mu_);
};

}  // namespace obs
}  // namespace smoothscan

#endif  // SMOOTHSCAN_OBS_METRICS_H_
