// ObsContext: the per-query observability handle threaded through the
// access/exec layers — which registry to count into, which collector to
// trace into, and which query id to stamp on events. All three members are
// optional; a default ObsContext (or a null pointer to one) disables
// everything at the first branch.
//
// Ownership: the QueryEngine (or a test/bench harness) owns the registry
// and collector; paths only borrow them for the duration of Open..Close.

#ifndef SMOOTHSCAN_OBS_OBS_CONTEXT_H_
#define SMOOTHSCAN_OBS_OBS_CONTEXT_H_

#include <cstdint>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace smoothscan {
namespace obs {

struct ObsContext {
  MetricsRegistry* metrics = nullptr;
  TraceCollector* trace = nullptr;
  uint64_t query_id = 0;

  bool enabled() const { return metrics != nullptr || trace != nullptr; }
};

/// Null-safe instant helper: `EmitInstant(obs, "morph_grow", ...)` where
/// `obs` may be nullptr or have no collector.
inline void EmitInstant(const ObsContext* o, const char* name,
                        const char* k0 = nullptr, int64_t v0 = 0,
                        const char* k1 = nullptr, int64_t v1 = 0,
                        const char* k2 = nullptr, int64_t v2 = 0,
                        const char* sk = nullptr, const char* sv = nullptr) {
  if (o == nullptr || o->trace == nullptr) return;
  o->trace->Instant(o->query_id, name, k0, v0, k1, v1, k2, v2, sk, sv);
}

}  // namespace obs
}  // namespace smoothscan

#endif  // SMOOTHSCAN_OBS_OBS_CONTEXT_H_
