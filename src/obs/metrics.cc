#include "obs/metrics.h"

#include <algorithm>

#include "common/status.h"

namespace smoothscan {
namespace obs {

size_t ThisThreadShardIndex() {
  static std::atomic<size_t> next{0};
  thread_local size_t idx = next.fetch_add(1, std::memory_order_relaxed);
  return idx;
}

uint64_t Histogram::count() const {
  uint64_t total = 0;
  for (size_t i = 0; i < kBuckets; ++i) {
    total += buckets_[i].load(std::memory_order_relaxed);
  }
  return total;
}

uint64_t Histogram::ValueAtQuantile(double q) const {
  uint64_t counts[kBuckets];
  uint64_t total = 0;
  for (size_t i = 0; i < kBuckets; ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
    total += counts[i];
  }
  if (total == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Nearest-rank: the smallest bucket whose cumulative count reaches
  // ceil(q * total).
  uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(total));
  if (rank < total) ++rank;
  uint64_t seen = 0;
  for (size_t i = 0; i < kBuckets; ++i) {
    seen += counts[i];
    if (seen >= rank) return BucketUpperBound(i);
  }
  return BucketUpperBound(kBuckets - 1);
}

bool MetricsSnapshot::Has(std::string_view name) const {
  for (const MetricValue& v : values) {
    if (v.name == name) return true;
  }
  return false;
}

double MetricsSnapshot::Value(std::string_view name, double def) const {
  for (const MetricValue& v : values) {
    if (v.name == name) return v.value;
  }
  return def;
}

Counter* MetricsRegistry::counter(std::string_view name) {
  latch::LatchGuard g(mu_);
  auto it = by_name_.find(std::string(name));
  if (it != by_name_.end() && it->second.kind == MetricKind::kCounter) {
    return &counters_[it->second.index];
  }
  SMOOTHSCAN_CHECK(it == by_name_.end());  // Same name, different kind.
  by_name_.emplace(std::string(name),
                   Slot{MetricKind::kCounter, counters_.size()});
  return &counters_.emplace_back();
}

Gauge* MetricsRegistry::gauge(std::string_view name) {
  latch::LatchGuard g(mu_);
  auto it = by_name_.find(std::string(name));
  if (it != by_name_.end() && it->second.kind == MetricKind::kGauge) {
    return &gauges_[it->second.index];
  }
  SMOOTHSCAN_CHECK(it == by_name_.end());
  by_name_.emplace(std::string(name), Slot{MetricKind::kGauge, gauges_.size()});
  return &gauges_.emplace_back();
}

Histogram* MetricsRegistry::histogram(std::string_view name) {
  latch::LatchGuard g(mu_);
  auto it = by_name_.find(std::string(name));
  if (it != by_name_.end() && it->second.kind == MetricKind::kHistogram) {
    return &histograms_[it->second.index];
  }
  SMOOTHSCAN_CHECK(it == by_name_.end());
  by_name_.emplace(std::string(name),
                   Slot{MetricKind::kHistogram, histograms_.size()});
  return &histograms_.emplace_back();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snap;
  {
    latch::LatchGuard g(mu_);
    snap.values.reserve(by_name_.size() + 4 * histograms_.size());
    for (const auto& [name, slot] : by_name_) {
      switch (slot.kind) {
        case MetricKind::kCounter:
          snap.values.push_back(
              {name, MetricKind::kCounter,
               static_cast<double>(counters_[slot.index].value())});
          break;
        case MetricKind::kGauge:
          snap.values.push_back(
              {name, MetricKind::kGauge,
               static_cast<double>(gauges_[slot.index].value())});
          break;
        case MetricKind::kHistogram: {
          const Histogram& h = histograms_[slot.index];
          snap.values.push_back({name + ".count", MetricKind::kHistogram,
                                 static_cast<double>(h.count())});
          snap.values.push_back({name + ".sum", MetricKind::kHistogram,
                                 static_cast<double>(h.sum())});
          snap.values.push_back({name + ".p50", MetricKind::kHistogram,
                                 static_cast<double>(h.ValueAtQuantile(0.50))});
          snap.values.push_back({name + ".p95", MetricKind::kHistogram,
                                 static_cast<double>(h.ValueAtQuantile(0.95))});
          snap.values.push_back({name + ".p99", MetricKind::kHistogram,
                                 static_cast<double>(h.ValueAtQuantile(0.99))});
          break;
        }
      }
    }
  }
  std::sort(snap.values.begin(), snap.values.end(),
            [](const MetricValue& a, const MetricValue& b) {
              return a.name < b.name;
            });
  return snap;
}

size_t MetricsRegistry::num_metrics() const {
  latch::LatchGuard g(mu_);
  return by_name_.size();
}

}  // namespace obs
}  // namespace smoothscan
