// Structured tracing: per-query span trees (submit → queue → admission →
// morsel execution → publish waits) and SmoothScan morph instants, recorded
// into fixed-capacity per-thread ring buffers and exported as Chrome
// trace-event JSON (load chrome://tracing or https://ui.perfetto.dev).
//
// Design constraints, in order:
//   1. Determinism: emission reads the wall clock and bumps atomics/ring
//      slots — it never touches SimDisk/CpuMeter (lint: obs-accounting), so
//      simulated cost is bit-identical traced or not.
//   2. Near-zero cost when disabled: a null TraceCollector* short-circuits
//      every emission helper before any argument is materialized; the
//      disabled scan loop stays allocation-free (gated by obs_test).
//   3. Bounded memory: each thread writes its own TraceRing (capacity fixed
//      at collector construction). A full ring drops the *oldest* event and
//      counts the drop; Export() surfaces drops as `ring_overflow` instants
//      plus per-ring counts in the `smoothscanMeta` side channel, which
//      scripts/check_trace.py cross-checks.
//
// Locking: TraceRing::mu_ (LatchRank::kObsTraceRing) is a per-thread leaf —
// uncontended on the hot path (only Export locks another thread's ring) but
// a real latch so TSan sees a clean happens-before at export. The collector
// directory latch (kObsTrace) is taken once per thread (first emission
// registers the ring; a thread-local cache makes later emissions latch-free
// down to the ring) and at Export.
//
// Event payloads are PODs: names and string values must be string literals
// (static storage duration) — emission never allocates.

#ifndef SMOOTHSCAN_OBS_TRACE_H_
#define SMOOTHSCAN_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/latch_rank.h"
#include "common/thread_annotations.h"

namespace smoothscan {
namespace obs {

enum class TraceEventType : uint8_t {
  kBegin,    ///< Chrome "B" — opens a span on this thread's stack.
  kEnd,      ///< Chrome "E" — closes the innermost open span.
  kInstant,  ///< Chrome "i" — a point event (morph step, publish, fallback).
};

/// One recorded event. POD; all pointers must be string literals.
struct TraceEvent {
  uint64_t ts_us = 0;     ///< Microseconds since the collector's epoch.
  uint64_t query_id = 0;  ///< 0 = not attributable to a query.
  const char* name = nullptr;
  TraceEventType type = TraceEventType::kInstant;
  // Up to three integer args and one string arg; key == nullptr ⇒ unused.
  const char* k0 = nullptr;
  int64_t v0 = 0;
  const char* k1 = nullptr;
  int64_t v1 = 0;
  const char* k2 = nullptr;
  int64_t v2 = 0;
  const char* sk = nullptr;
  const char* sv = nullptr;
};

/// Fixed-capacity per-thread event ring; drops oldest when full.
class TraceRing {
 public:
  TraceRing(uint64_t tid, size_t capacity) : tid_(tid), buf_(capacity) {}

  void Push(const TraceEvent& e) EXCLUDES(mu_);

  uint64_t tid() const { return tid_; }

  struct Drained {
    std::vector<TraceEvent> events;  ///< Oldest → newest.
    uint64_t recorded = 0;           ///< Total ever pushed.
    uint64_t dropped = 0;            ///< Overwritten by overflow.
  };
  /// Copies out the current contents (does not consume them).
  Drained Snapshot() const EXCLUDES(mu_);

 private:
  const uint64_t tid_;
  mutable latch::Latch mu_{latch::LatchRank::kObsTraceRing, "TraceRing::mu_"};
  std::vector<TraceEvent> buf_ GUARDED_BY(mu_);  // Sized once, never grows.
  size_t head_ GUARDED_BY(mu_) = 0;              // Oldest element.
  size_t size_ GUARDED_BY(mu_) = 0;
  uint64_t recorded_ GUARDED_BY(mu_) = 0;
  uint64_t dropped_ GUARDED_BY(mu_) = 0;
};

/// Owns the per-thread rings and the export path (see file comment).
class TraceCollector {
 public:
  static constexpr size_t kDefaultRingCapacity = 8192;

  explicit TraceCollector(size_t ring_capacity = kDefaultRingCapacity);
  TraceCollector(const TraceCollector&) = delete;
  TraceCollector& operator=(const TraceCollector&) = delete;

  /// Microseconds since this collector's construction (steady clock).
  uint64_t NowMicros() const;

  void Begin(uint64_t query_id, const char* name, const char* k0 = nullptr,
             int64_t v0 = 0, const char* k1 = nullptr, int64_t v1 = 0)
      EXCLUDES(mu_);
  void End(uint64_t query_id, const char* name) EXCLUDES(mu_);
  void Instant(uint64_t query_id, const char* name, const char* k0 = nullptr,
               int64_t v0 = 0, const char* k1 = nullptr, int64_t v1 = 0,
               const char* k2 = nullptr, int64_t v2 = 0,
               const char* sk = nullptr, const char* sv = nullptr)
      EXCLUDES(mu_);

  /// Chrome trace-event JSON (object form). Spans are repaired at export so
  /// the output always balances: an End with no open span on its thread is
  /// dropped (its Begin was overwritten by ring overflow), an unclosed Begin
  /// gets a synthetic End at the thread's last timestamp. Rings that dropped
  /// events additionally get a `ring_overflow` instant, and every ring's
  /// recorded/dropped counts land in `smoothscanMeta.rings` for
  /// check_trace.py to cross-check.
  std::string ExportJson() const EXCLUDES(mu_);
  /// ExportJson() to a file; returns false on I/O failure.
  bool ExportJsonFile(const std::string& path) const EXCLUDES(mu_);

  size_t num_rings() const EXCLUDES(mu_);
  size_t ring_capacity() const { return ring_capacity_; }

 private:
  TraceRing* ThisThreadRing() EXCLUDES(mu_);

  const uint64_t collector_id_;  ///< Process-unique; keys the TL ring cache.
  const size_t ring_capacity_;
  const std::chrono::steady_clock::time_point epoch_;
  mutable latch::Latch mu_{latch::LatchRank::kObsTrace,
                           "TraceCollector::mu_"};
  // unique_ptr per ring: ring addresses must survive vector growth (threads
  // cache their ring pointer latch-free).
  std::vector<std::unique_ptr<TraceRing>> rings_ GUARDED_BY(mu_);
};

/// RAII span: Begin at construction, End at destruction. A null collector
/// makes both no-ops, so call sites don't branch.
class TraceSpan {
 public:
  TraceSpan(TraceCollector* tc, uint64_t query_id, const char* name,
            const char* k0 = nullptr, int64_t v0 = 0, const char* k1 = nullptr,
            int64_t v1 = 0)
      : tc_(tc), query_id_(query_id), name_(name) {
    if (tc_ != nullptr) tc_->Begin(query_id_, name_, k0, v0, k1, v1);
  }
  ~TraceSpan() {
    if (tc_ != nullptr) tc_->End(query_id_, name_);
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  TraceCollector* const tc_;
  const uint64_t query_id_;
  const char* const name_;
};

}  // namespace obs
}  // namespace smoothscan

#endif  // SMOOTHSCAN_OBS_TRACE_H_
