#include "obs/trace.h"

#include <atomic>
#include <cstdio>
#include <utility>

namespace smoothscan {
namespace obs {
namespace {

uint64_t NextCollectorId() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

// Thread-local (collector_id → ring) cache so steady-state emission skips
// the collector directory latch entirely. Keyed by the process-unique
// collector id, never by address: a stale entry for a destroyed collector
// can never match a live one, so the dangling ring pointer is unreachable.
struct RingCacheEntry {
  uint64_t collector_id;
  TraceRing* ring;
};
thread_local std::vector<RingCacheEntry> t_ring_cache;

}  // namespace

void TraceRing::Push(const TraceEvent& e) {
  latch::LatchGuard g(mu_);
  ++recorded_;
  if (buf_.empty()) {
    ++dropped_;
    return;
  }
  if (size_ == buf_.size()) {
    // Full: overwrite the oldest slot (head_) and advance.
    buf_[head_] = e;
    head_ = (head_ + 1) % buf_.size();
    ++dropped_;
    return;
  }
  buf_[(head_ + size_) % buf_.size()] = e;
  ++size_;
}

TraceRing::Drained TraceRing::Snapshot() const {
  latch::LatchGuard g(mu_);
  Drained d;
  d.recorded = recorded_;
  d.dropped = dropped_;
  d.events.reserve(size_);
  for (size_t i = 0; i < size_; ++i) {
    d.events.push_back(buf_[(head_ + i) % buf_.size()]);
  }
  return d;
}

TraceCollector::TraceCollector(size_t ring_capacity)
    : collector_id_(NextCollectorId()),
      ring_capacity_(ring_capacity),
      epoch_(std::chrono::steady_clock::now()) {}

uint64_t TraceCollector::NowMicros() const {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

TraceRing* TraceCollector::ThisThreadRing() {
  for (const RingCacheEntry& e : t_ring_cache) {
    if (e.collector_id == collector_id_) return e.ring;
  }
  TraceRing* ring = nullptr;
  {
    latch::LatchGuard g(mu_);
    rings_.push_back(std::make_unique<TraceRing>(
        static_cast<uint64_t>(rings_.size()) + 1, ring_capacity_));
    ring = rings_.back().get();
  }
  t_ring_cache.push_back({collector_id_, ring});
  return ring;
}

void TraceCollector::Begin(uint64_t query_id, const char* name, const char* k0,
                           int64_t v0, const char* k1, int64_t v1) {
  TraceEvent e;
  e.ts_us = NowMicros();
  e.query_id = query_id;
  e.name = name;
  e.type = TraceEventType::kBegin;
  e.k0 = k0;
  e.v0 = v0;
  e.k1 = k1;
  e.v1 = v1;
  ThisThreadRing()->Push(e);
}

void TraceCollector::End(uint64_t query_id, const char* name) {
  TraceEvent e;
  e.ts_us = NowMicros();
  e.query_id = query_id;
  e.name = name;
  e.type = TraceEventType::kEnd;
  ThisThreadRing()->Push(e);
}

void TraceCollector::Instant(uint64_t query_id, const char* name,
                             const char* k0, int64_t v0, const char* k1,
                             int64_t v1, const char* k2, int64_t v2,
                             const char* sk, const char* sv) {
  TraceEvent e;
  e.ts_us = NowMicros();
  e.query_id = query_id;
  e.name = name;
  e.type = TraceEventType::kInstant;
  e.k0 = k0;
  e.v0 = v0;
  e.k1 = k1;
  e.v1 = v1;
  e.k2 = k2;
  e.v2 = v2;
  e.sk = sk;
  e.sv = sv;
  ThisThreadRing()->Push(e);
}

size_t TraceCollector::num_rings() const {
  latch::LatchGuard g(mu_);
  return rings_.size();
}

namespace {

void AppendEventJson(std::string* out, uint64_t tid, const TraceEvent& e,
                     char ph) {
  out->append("{\"name\":\"");
  out->append(e.name);
  out->append("\",\"ph\":\"");
  out->push_back(ph);
  out->append("\",\"ts\":");
  out->append(std::to_string(e.ts_us));
  out->append(",\"pid\":1,\"tid\":");
  out->append(std::to_string(tid));
  if (ph == 'i') out->append(",\"s\":\"t\"");  // Thread-scoped instant.
  bool any_arg = e.query_id != 0 || e.k0 != nullptr || e.k1 != nullptr ||
                 e.k2 != nullptr || (e.sk != nullptr && e.sv != nullptr);
  if (any_arg && ph != 'E') {
    out->append(",\"args\":{");
    bool first = true;
    if (e.query_id != 0) {
      out->append("\"qid\":");
      out->append(std::to_string(e.query_id));
      first = false;
    }
    if (e.k0 != nullptr) {
      if (!first) out->push_back(',');
      out->push_back('"');
      out->append(e.k0);
      out->append("\":");
      out->append(std::to_string(e.v0));
      first = false;
    }
    if (e.k1 != nullptr) {
      if (!first) out->push_back(',');
      out->push_back('"');
      out->append(e.k1);
      out->append("\":");
      out->append(std::to_string(e.v1));
      first = false;
    }
    if (e.k2 != nullptr) {
      if (!first) out->push_back(',');
      out->push_back('"');
      out->append(e.k2);
      out->append("\":");
      out->append(std::to_string(e.v2));
      first = false;
    }
    if (e.sk != nullptr && e.sv != nullptr) {
      if (!first) out->push_back(',');
      out->push_back('"');
      out->append(e.sk);
      out->append("\":\"");
      out->append(e.sv);
      out->append("\"");
    }
    out->push_back('}');
  }
  out->push_back('}');
}

}  // namespace

std::string TraceCollector::ExportJson() const {
  // Snapshot every ring first (collector latch → each ring latch, 104 → 102),
  // then build JSON with no latch held.
  std::vector<std::pair<uint64_t, TraceRing::Drained>> rings;
  {
    latch::LatchGuard g(mu_);
    rings.reserve(rings_.size());
    for (const auto& r : rings_) {
      rings.emplace_back(r->tid(), r->Snapshot());
    }
  }

  std::string out;
  out.append("{\"traceEvents\":[");
  bool first_event = true;
  auto comma = [&] {
    if (!first_event) out.push_back(',');
    first_event = false;
  };

  for (const auto& [tid, drained] : rings) {
    // Thread-name metadata so Perfetto rows are labelled.
    comma();
    out.append("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":");
    out.append(std::to_string(tid));
    out.append(",\"args\":{\"name\":\"worker-");
    out.append(std::to_string(tid));
    out.append("\"}}");

    if (drained.dropped > 0) {
      // Overflow marker at the ring's first surviving timestamp (or 0 when
      // everything was dropped) — check_trace.py requires one whenever
      // meta reports drops.
      TraceEvent marker;
      marker.ts_us = drained.events.empty() ? 0 : drained.events.front().ts_us;
      marker.name = "ring_overflow";
      marker.type = TraceEventType::kInstant;
      marker.k0 = "dropped";
      marker.v0 = static_cast<int64_t>(drained.dropped);
      comma();
      AppendEventJson(&out, tid, marker, 'i');
    }

    // Balance repair: ring overflow can orphan an End (its Begin was
    // overwritten) or the snapshot can catch a span still open. Replay the
    // ring against a span stack — orphan Ends are dropped, unclosed Begins
    // get a synthetic End at the thread's last timestamp.
    std::vector<const TraceEvent*> open;
    uint64_t last_ts = 0;
    for (const TraceEvent& e : drained.events) {
      last_ts = e.ts_us;
      switch (e.type) {
        case TraceEventType::kBegin:
          open.push_back(&e);
          comma();
          AppendEventJson(&out, tid, e, 'B');
          break;
        case TraceEventType::kEnd:
          if (open.empty()) break;  // Orphan: Begin lost to overflow.
          open.pop_back();
          comma();
          AppendEventJson(&out, tid, e, 'E');
          break;
        case TraceEventType::kInstant:
          comma();
          AppendEventJson(&out, tid, e, 'i');
          break;
      }
    }
    while (!open.empty()) {
      TraceEvent synth = *open.back();
      open.pop_back();
      synth.ts_us = last_ts;
      synth.type = TraceEventType::kEnd;
      comma();
      AppendEventJson(&out, tid, synth, 'E');
    }
  }

  out.append("],\"smoothscanMeta\":{\"rings\":[");
  bool first_ring = true;
  for (const auto& [tid, drained] : rings) {
    if (!first_ring) out.push_back(',');
    first_ring = false;
    out.append("{\"tid\":");
    out.append(std::to_string(tid));
    out.append(",\"recorded\":");
    out.append(std::to_string(drained.recorded));
    out.append(",\"dropped\":");
    out.append(std::to_string(drained.dropped));
    out.push_back('}');
  }
  out.append("]}}");
  return out;
}

bool TraceCollector::ExportJsonFile(const std::string& path) const {
  std::string json = ExportJson();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  size_t n = std::fwrite(json.data(), 1, json.size(), f);
  bool ok = (n == json.size());
  ok = (std::fclose(f) == 0) && ok;
  return ok;
}

}  // namespace obs
}  // namespace smoothscan
