#include "sharing/scan_sharing.h"

#include <algorithm>

namespace smoothscan {

SharedScanGroup::SharedScanGroup(Engine* engine, FileId file,
                                 PageId num_pages, SharedScanOptions options)
    : engine_(engine),
      file_(file),
      num_pages_(num_pages),
      options_(options),
      num_chunks_((num_pages + options.chunk_pages - 1) /
                  options.chunk_pages) {
  SMOOTHSCAN_CHECK(options_.chunk_pages >= 1);
  SMOOTHSCAN_CHECK(options_.drift_chunks >= 1);
  if (options_.broker != nullptr) {
    mem_ = options_.broker->Register(MemoryClass::kSharedScanWindow,
                                     "shared_scan_window");
  }
}

SharedScanGroupStats SharedScanGroup::stats() const {
  latch::LatchGuard lock(mu_);
  return stats_;
}

void SharedScanGroup::Attach(SharedScanConsumer* out) {
  latch::LatchGuard lock(mu_);
  uint32_t id;
  if (!free_ids_.empty()) {
    id = free_ids_.back();
    free_ids_.pop_back();
  } else {
    id = static_cast<uint32_t>(consumers_.size());
    consumers_.emplace_back();
  }
  ConsumerState state;
  // A late arrival joins at the scan's current chunk — the oldest one still
  // in the window — claiming every produced-but-unreleased chunk so it rides
  // the pinned window from behind instead of starting drift-blocked at the
  // production head. Its lap wraps around from there.
  state.next_seq = window_base_;
  state.end_seq = window_base_ + num_chunks_;
  state.active = true;
  for (const std::shared_ptr<SharedChunk>& chunk : window_) {
    // Tiny tables can have a window longer than a lap; claim only what this
    // consumer will actually consume.
    if (chunk->seq < state.end_seq) ++chunk->readers;
  }
  consumers_[id] = state;
  ++active_consumers_;
  ++stats_.consumers_attached;
  stats_.chunk_claims += num_chunks_;
  stats_.active_consumers = active_consumers_;
  out->group_ = shared_from_this();
  out->id_ = id;
  out->start_seq_ = state.next_seq;
  out->lap_chunks_ = num_chunks_;
  PumpLocked();
}

bool SharedScanGroup::CanProduceLocked() {
  if (active_consumers_ == 0) return false;
  uint64_t min_next = UINT64_MAX;
  uint64_t max_end = 0;
  for (const ConsumerState& c : consumers_) {
    if (!c.active) continue;
    min_next = std::min(min_next, c.next_seq);
    max_end = std::max(max_end, c.end_seq);
  }
  if (head_seq_ >= max_end) return false;  // No one needs another chunk.
  // Never drift more than the bound ahead of the slowest consumer (bounds
  // the pinned window). Under broker pressure the bound collapses to 1 —
  // the minimum that still lets every consumer make progress — shedding the
  // window's slack pages back to the pool instead of growing it.
  uint64_t drift = options_.drift_chunks;
  if (options_.broker != nullptr && drift > 1 &&
      options_.broker->UnderPressure()) {
    drift = 1;
    if (head_seq_ >= min_next + drift &&
        head_seq_ < min_next + options_.drift_chunks) {
      ++stats_.drift_sheds;  // The full bound would have produced here.
    }
  }
  return head_seq_ < min_next + drift;
}

void SharedScanGroup::ProduceOneLocked() {
  const uint64_t seq = head_seq_;
  const PageId first =
      static_cast<PageId>((seq % num_chunks_) * options_.chunk_pages);
  const uint32_t count =
      std::min<uint32_t>(options_.chunk_pages, num_pages_ - first);

  auto chunk = std::make_shared<SharedChunk>();
  chunk->seq = seq;
  chunk->first_page = first;
  chunk->num_pages = count;
  // The one communal fetch: charged to the engine's shared stream, pinned so
  // every attached consumer can read the pages latch-free.
  BufferPool& pool = engine_->pool();
  pool.FetchExtent(file_, first, count);
  chunk->guards.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    chunk->guards.push_back(pool.Pin(file_, first + i));
  }
  for (const ConsumerState& c : consumers_) {
    if (c.active && c.end_seq > seq) ++chunk->readers;
  }
  SMOOTHSCAN_CHECK(chunk->readers > 0);  // CanProduceLocked guarantees need.
  window_.push_back(std::move(chunk));
  ++head_seq_;
  ++stats_.chunks_produced;
  stats_.pages_fetched += count;
  if (mem_.valid()) {
    mem_.Charge(static_cast<uint64_t>(count) * engine_->options().page_size);
  }
}

void SharedScanGroup::PumpRunLocked() {
  while (CanProduceLocked()) ProduceOneLocked();
  cv_.notify_all();
}

void SharedScanGroup::PumpLocked() {
  if (pump_pending_ || !CanProduceLocked()) return;
  if (options_.scheduler == nullptr) {
    // No data-plane pool: the thread that uncovered the capacity produces.
    PumpRunLocked();
    return;
  }
  pump_pending_ = true;
  // The task owns the group, so a pump scheduled just before the last
  // consumer (or the coordinator) goes away still runs against live state —
  // it simply finds nothing to produce.
  auto self = shared_from_this();
  options_.scheduler->Submit({[self] {
    latch::LatchGuard lock(self->mu_);
    self->pump_pending_ = false;
    self->PumpRunLocked();
  }});
}

void SharedScanGroup::PopFreeChunksLocked() {
  while (!window_.empty() && window_.front()->readers == 0) {
    if (mem_.valid()) {
      mem_.Uncharge(static_cast<uint64_t>(window_.front()->num_pages) *
                    engine_->options().page_size);
    }
    window_.pop_front();  // Drops the guards: the pages become evictable.
    ++window_base_;
  }
}

void SharedScanGroup::ReleaseHeldLocked(ConsumerState* c) {
  SMOOTHSCAN_CHECK(c->holding);
  SMOOTHSCAN_CHECK(c->next_seq >= window_base_ && c->next_seq < head_seq_);
  SharedChunk* chunk = window_[c->next_seq - window_base_].get();
  SMOOTHSCAN_CHECK(chunk->readers > 0);
  --chunk->readers;
  c->holding = false;
  ++c->next_seq;
  PopFreeChunksLocked();
  // This consumer may have been the slowest: its advance can open drift
  // capacity for everyone else.
  PumpLocked();
}

void SharedScanGroup::DropClaimsLocked(uint64_t from_seq, uint64_t end_seq) {
  const uint64_t lo = std::max(from_seq, window_base_);
  const uint64_t hi = std::min(end_seq, head_seq_);
  for (uint64_t seq = lo; seq < hi; ++seq) {
    SharedChunk* chunk = window_[seq - window_base_].get();
    SMOOTHSCAN_CHECK(chunk->readers > 0);
    --chunk->readers;
  }
  PopFreeChunksLocked();
}

const SharedChunk* SharedScanGroup::NextChunk(uint32_t id) {
  latch::UniqueLatch lock(mu_);
  ConsumerState& c = consumers_[id];
  SMOOTHSCAN_CHECK(c.active);
  if (c.holding) ReleaseHeldLocked(&c);
  if (c.next_seq >= c.end_seq) {
    // Full lap: every chunk seen exactly once — detach.
    c.active = false;
    --active_consumers_;
    stats_.active_consumers = active_consumers_;
    free_ids_.push_back(id);  // The handle drops the group before any reuse.
    PumpLocked();
    cv_.notify_all();
    return nullptr;
  }
  while (c.next_seq >= head_seq_) {
    PumpLocked();
    if (c.next_seq < head_seq_) break;
    // Waiting either for the pump task or — when this consumer has hit the
    // drift bound — for the slowest consumer to advance.
    cv_.wait(lock);
  }
  c.holding = true;
  return window_[c.next_seq - window_base_].get();
}

void SharedScanGroup::Detach(uint32_t id) {
  latch::LatchGuard lock(mu_);
  ConsumerState& c = consumers_[id];
  if (!c.active) return;
  if (c.holding) {
    // Cancelled mid-chunk: the held chunk's claim goes with the rest below.
    c.holding = false;
  }
  c.active = false;
  --active_consumers_;
  stats_.active_consumers = active_consumers_;
  free_ids_.push_back(id);
  DropClaimsLocked(c.next_seq, std::min(c.end_seq, head_seq_));
  // The cancelled consumer may have been the drift bound; wake everyone.
  PumpLocked();
  cv_.notify_all();
}

const SharedChunk* SharedScanConsumer::NextChunk() {
  if (group_ == nullptr) return nullptr;
  const SharedChunk* chunk = group_->NextChunk(id_);
  if (chunk == nullptr) group_.reset();  // Lap done; the group detached us.
  return chunk;
}

void SharedScanConsumer::Detach() {
  if (group_ == nullptr) return;
  group_->Detach(id_);
  group_.reset();
}

ScanSharingCoordinator::ScanSharingCoordinator(Engine* engine,
                                               SharedScanOptions options)
    : engine_(engine), options_(options) {}

ScanSharingCoordinator::~ScanSharingCoordinator() {
  latch::LatchGuard lock(mu_);
  for (const auto& [file, group] : groups_) {
    // Destroying the coordinator with live consumers would dangle their
    // handles; the engine drains queries first.
    SMOOTHSCAN_CHECK(group->stats().active_consumers == 0);
  }
}

SharedScanConsumer ScanSharingCoordinator::Attach(const HeapFile* heap) {
  return AttachExtent(heap->file_id(),
                      static_cast<PageId>(heap->num_pages()));
}

SharedScanConsumer ScanSharingCoordinator::AttachExtent(FileId file,
                                                        PageId num_pages) {
  std::shared_ptr<SharedScanGroup> group;
  {
    latch::LatchGuard lock(mu_);
    std::shared_ptr<SharedScanGroup>& slot = groups_[file];
    if (slot == nullptr) {
      slot = std::make_shared<SharedScanGroup>(engine_, file, num_pages,
                                               options_);
    }
    group = slot;
  }
  SharedScanConsumer consumer;
  group->Attach(&consumer);
  return consumer;
}

std::shared_ptr<SharedSmoothGroup> ScanSharingCoordinator::SmoothSharingFor(
    const HeapFile* heap) {
  latch::LatchGuard lock(mu_);
  std::shared_ptr<SharedSmoothGroup>& slot = smooth_groups_[heap->file_id()];
  if (slot == nullptr) {
    slot = std::make_shared<SharedSmoothGroup>(heap->num_pages(),
                                               &engine_->pool(),
                                               heap->file_id());
  }
  return slot;
}

std::shared_ptr<const SharedScanGroup> ScanSharingCoordinator::GroupFor(
    const HeapFile* heap) const {
  latch::LatchGuard lock(mu_);
  auto it = groups_.find(heap->file_id());
  return it == groups_.end() ? nullptr : it->second;
}

void ScanSharingCoordinator::InvalidateFile(FileId file) {
  std::shared_ptr<SharedScanGroup> retired;  // Destroyed outside the latch.
  latch::LatchGuard lock(mu_);
  auto it = groups_.find(file);
  if (it != groups_.end()) {
    // Publish runs at table quiescence, so the group must be parked; its
    // window pins drop with it.
    SMOOTHSCAN_CHECK(it->second->stats().active_consumers == 0);
    retired = std::move(it->second);
    groups_.erase(it);
  }
  // Live SmoothScans keep their shared_ptr; only future queries re-group.
  smooth_groups_.erase(file);
}

ScanSharingStats ScanSharingCoordinator::stats() const {
  latch::LatchGuard lock(mu_);
  ScanSharingStats total;
  total.groups = groups_.size();
  for (const auto& [file, group] : groups_) {
    const SharedScanGroupStats s = group->stats();
    total.consumers_attached += s.consumers_attached;
    total.active_consumers += s.active_consumers;
    total.chunks_produced += s.chunks_produced;
    total.pages_fetched += s.pages_fetched;
    total.chunk_claims += s.chunk_claims;
  }
  return total;
}

}  // namespace smoothscan
