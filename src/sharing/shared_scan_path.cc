#include "sharing/shared_scan_path.h"

namespace smoothscan {

SharedScanPath::SharedScanPath(ScanSharingCoordinator* coordinator,
                               const HeapFile* heap, ScanPredicate predicate)
    : coordinator_(coordinator),
      heap_(heap),
      predicate_(std::move(predicate)) {
  SMOOTHSCAN_CHECK(coordinator_ != nullptr);
  SMOOTHSCAN_CHECK(coordinator_->engine() == heap_->engine());
}

Status SharedScanPath::OpenImpl() {
  consumer_.Detach();  // Re-Open mid-lap starts a fresh lap.
  chunk_ = nullptr;
  chunk_page_ = 0;
  cur_slot_ = 0;
  done_ = false;
  chunks_consumed_ = 0;
  consumer_ = coordinator_->Attach(heap_);
  start_seq_ = consumer_.start_seq();
  lap_chunks_ = consumer_.lap_chunks();
  return Status::OK();
}

void SharedScanPath::CloseImpl() {
  chunk_ = nullptr;
  consumer_.Detach();  // Mid-lap close = cancelled consumer.
}

bool SharedScanPath::NextBatchImpl(TupleBatch* out) {
  const ExecContext& ctx = this->ctx();
  const Schema& schema = heap_->schema();
  const int key_col = predicate_.column;
  const int64_t lo = predicate_.lo;
  const int64_t hi = predicate_.hi;
  const bool has_residual = static_cast<bool>(predicate_.residual);
  // Same dense-fill kernel as FullScan, reading the group's pinned pages.
  Tuple* rows = out->fill_rows();
  size_t filled = out->fill_begin();
  const size_t cap = out->capacity();
  uint64_t inspected = 0;
  while (filled < cap && !done_) {
    if (chunk_ == nullptr) {
      // Releases the previous chunk and blocks for the next one.
      chunk_ = consumer_.NextChunk();
      chunk_page_ = 0;
      cur_slot_ = 0;
      if (chunk_ == nullptr) {
        done_ = true;  // Lap complete: the consumer detached itself.
        break;
      }
      ++chunks_consumed_;
    }
    const Page& page = *chunk_->guards[chunk_page_];
    if (cur_slot_ == 0) ++stats_.heap_pages_probed;
    const uint16_t num_slots = page.num_slots();
    uint16_t slot = cur_slot_;
    while (slot < num_slots && filled < cap) {
      uint32_t size = 0;
      const uint8_t* data = page.GetTuple(slot, &size);
      ++slot;
      if (data == nullptr) continue;  // Tombstoned slot.
      ++inspected;
      const int64_t key = schema.ReadInt64Column(data, size, key_col);
      if (key < lo || key >= hi) continue;
      Tuple* decoded = &rows[filled];
      schema.DeserializeInto(data, size, decoded);
      if (has_residual && !predicate_.residual(*decoded)) continue;
      ++filled;
    }
    cur_slot_ = slot;
    if (cur_slot_ >= num_slots) {
      ++chunk_page_;
      cur_slot_ = 0;
      if (chunk_page_ >= chunk_->num_pages) chunk_ = nullptr;
    }
  }
  const uint64_t produced = filled - out->fill_begin();
  out->set_filled(filled);
  stats_.tuples_inspected += inspected;
  stats_.tuples_produced += produced;
  ctx.cpu->ChargeInspect(inspected);
  ctx.cpu->ChargeProduce(produced);
  return !out->empty();
}

}  // namespace smoothscan
