// SharedScanPath: the consumer-facing access path over the cooperative
// circular scan (see scan_sharing.h). Open() attaches to the table's shared
// scan group; NextBatch() decodes qualifying tuples straight out of the
// group's pinned chunk pages with the same dense-fill kernel as FullScan.
// The page *fetches* were paid once by the group on the engine's shared
// stream, so this path charges only its own inspection/production CPU to its
// ExecContext — under the QueryEngine that is the query's private stack.
//
// Result contract: one full lap delivers every heap page exactly once, so
// the produced multiset is identical to a solo FullScan's; only the order
// differs (a mid-scan attach starts mid-table and wraps around). Close()
// detaches — mid-lap if the consumer is cancelled.

#ifndef SMOOTHSCAN_SHARING_SHARED_SCAN_PATH_H_
#define SMOOTHSCAN_SHARING_SHARED_SCAN_PATH_H_

#include "access/access_path.h"
#include "sharing/scan_sharing.h"
#include "storage/heap_file.h"

namespace smoothscan {

class SharedScanPath : public AccessPath {
 public:
  SharedScanPath(ScanSharingCoordinator* coordinator, const HeapFile* heap,
                 ScanPredicate predicate);

  const char* name() const override { return "SharedScan"; }

  /// Chunk sequence this consumer's lap started at (0 = it founded the
  /// group; > 0 = it attached to an in-flight scan and wrapped around).
  uint64_t start_seq() const { return start_seq_; }
  /// Chunks consumed in the current Open() cycle (== lap length at EOS).
  uint64_t chunks_consumed() const { return chunks_consumed_; }
  uint64_t lap_chunks() const { return lap_chunks_; }

 protected:
  Status OpenImpl() override;
  bool NextBatchImpl(TupleBatch* out) override;
  void CloseImpl() override;
  ExecContext DefaultContext() const override {
    return EngineContext(heap_->engine());
  }

 private:
  ScanSharingCoordinator* coordinator_;
  const HeapFile* heap_;
  ScanPredicate predicate_;

  SharedScanConsumer consumer_;
  const SharedChunk* chunk_ = nullptr;  ///< Held until the next pull.
  uint32_t chunk_page_ = 0;             ///< Cursor within chunk_.
  uint16_t cur_slot_ = 0;
  bool done_ = false;
  uint64_t start_seq_ = 0;
  uint64_t chunks_consumed_ = 0;
  uint64_t lap_chunks_ = 0;
};

}  // namespace smoothscan

#endif  // SMOOTHSCAN_SHARING_SHARED_SCAN_PATH_H_
