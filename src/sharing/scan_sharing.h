// Scan sharing (QPipe-style cooperative scans): when N concurrent queries
// scan the same table, running N independent passes wastes N-1 of them — the
// pages are identical, only the predicates differ. The ScanSharingCoordinator
// instead elects ONE in-flight *circular chunk scan* per table: the table's
// page space is cut into fixed page-range chunks, a producer fetches each
// chunk exactly once through the shared BufferPool (pinned PageGuards), and
// every attached consumer reads the pinned pages and applies its own
// predicate. A late arrival attaches at the scan's current chunk and wraps
// around; after one full lap (every chunk exactly once) it detaches. Results
// therefore stay a pure function of the query — the multiset a consumer
// produces is identical to a solo scan's — while the *aggregate* pages
// fetched for N concurrent queries drop from ~N passes toward one.
//
// Delivery and pacing: chunk production runs as tasks on the shared
// TaskScheduler when one is provided (inline in the consumer's thread
// otherwise) and is bounded by a *slowest-consumer drift bound* — the
// producer never runs more than `drift_chunks` chunks ahead of the least
// advanced attached consumer, which caps the pinned chunk window at
// `drift_chunks * chunk_pages` pages and throttles fast consumers instead of
// letting the window grow without bound.
//
// Accounting: chunk fetches charge the engine's shared stream (they are paid
// once, on behalf of everyone), while each consumer's tuple inspection and
// production CPU flows through its own ExecContext — under the multi-query
// engine that is the query's private QueryContext, so per-query CPU remains
// per-query while the I/O becomes communal. A shared-scan query's private
// pages_read is ~0 by design: the whole point is that it did not pay the
// pass.
//
// Groups are per table and persistent: when the last consumer detaches the
// circular scan simply parks at its current chunk, and the next arrival
// resumes from there (Crescando-style). The coordinator also hands out the
// per-table SharedSmoothGroup that backs the shared-SmoothScan mode (see
// smooth_scan.h).

#ifndef SMOOTHSCAN_SHARING_SCAN_SHARING_H_
#define SMOOTHSCAN_SHARING_SCAN_SHARING_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "access/smooth_scan.h"
#include "common/latch_rank.h"
#include "common/thread_annotations.h"
#include "exec/task_scheduler.h"
#include "mem/memory_broker.h"
#include "storage/engine.h"
#include "storage/heap_file.h"

namespace smoothscan {

struct SharedScanOptions {
  /// Pages per chunk — the unit of production (one FetchExtent request) and
  /// of fan-out to consumers. Matches FullScan's default read-ahead window.
  uint32_t chunk_pages = 32;
  /// Slowest-consumer drift bound: the producer stays within this many chunks
  /// of the least advanced consumer, so at most `drift_chunks * chunk_pages`
  /// pages are pinned per group at any moment.
  uint32_t drift_chunks = 4;
  /// Chunk production runs as tasks on this pool (the engine's shared
  /// data-plane scheduler). Null: the consumer needing the chunk produces it
  /// inline.
  TaskScheduler* scheduler = nullptr;
  /// Memory broker each group reports its pinned window to (null =
  /// ungoverned). Under global pressure the effective drift bound drops to 1
  /// — the window sheds slack, but production never stops: correctness and
  /// per-consumer results are untouched, only pacing tightens.
  MemoryBroker* broker = nullptr;
};

/// One produced chunk of the circular scan: a page range held resident by
/// pinned guards until every consumer counted in `readers` has moved past it.
/// Immutable after production; concurrent consumers read `guards` freely.
struct SharedChunk {
  uint64_t seq = 0;        ///< Absolute position in the circular sequence.
  PageId first_page = 0;
  uint32_t num_pages = 0;
  std::vector<PageGuard> guards;  ///< One pin per page of the range.

 private:
  friend class SharedScanGroup;
  uint32_t readers = 0;  ///< Attached consumers still to consume it (under
                         ///< the group latch).
};

/// Counters of one table's scan group (snapshot under the group latch).
struct SharedScanGroupStats {
  uint64_t consumers_attached = 0;  ///< Total Attach() calls, ever.
  uint32_t active_consumers = 0;
  uint64_t chunks_produced = 0;
  uint64_t pages_fetched = 0;  ///< Pages covered by production requests.
  uint64_t drift_sheds = 0;    ///< Productions deferred by broker pressure.
  uint64_t chunk_claims = 0;   ///< Sum of lap chunks claimed by attaches;
                               ///< chunk_claims / chunks_produced is the
                               ///< sharing fan-out ratio.
};

class SharedScanGroup;

/// A consumer's handle on its group: pull chunks one at a time with
/// NextChunk() — each call releases the previously returned chunk — until it
/// returns null at the end of the lap (the consumer auto-detaches). Detach()
/// cancels early. Move-only; detaches on destruction.
class SharedScanConsumer {
 public:
  SharedScanConsumer() = default;
  SharedScanConsumer(const SharedScanConsumer&) = delete;
  SharedScanConsumer& operator=(const SharedScanConsumer&) = delete;
  SharedScanConsumer(SharedScanConsumer&& other) noexcept { Swap(&other); }
  SharedScanConsumer& operator=(SharedScanConsumer&& other) noexcept {
    if (this != &other) {
      Detach();
      Swap(&other);
    }
    return *this;
  }
  ~SharedScanConsumer() { Detach(); }

  /// Releases the previously returned chunk (if any) and blocks until the
  /// consumer's next chunk is produced. Returns null once the lap is complete
  /// — the consumer is then detached — or when the handle is empty. The
  /// returned chunk stays valid until the next NextChunk()/Detach() call.
  const SharedChunk* NextChunk();

  /// Cancels the consumer: releases its held chunk and its claim on every
  /// produced-but-unconsumed chunk, and unblocks the group. Idempotent.
  void Detach();

  bool attached() const { return group_ != nullptr; }
  /// First chunk sequence of this consumer's lap (0 for the founder of a
  /// fresh group; > 0 after a mid-scan attach).
  uint64_t start_seq() const { return start_seq_; }
  /// Chunks of one full lap (= the group's chunk count).
  uint64_t lap_chunks() const { return lap_chunks_; }

 private:
  friend class SharedScanGroup;
  void Swap(SharedScanConsumer* other) {
    std::swap(group_, other->group_);
    std::swap(id_, other->id_);
    std::swap(start_seq_, other->start_seq_);
    std::swap(lap_chunks_, other->lap_chunks_);
  }

  std::shared_ptr<SharedScanGroup> group_;
  uint32_t id_ = 0;
  uint64_t start_seq_ = 0;
  uint64_t lap_chunks_ = 0;
};

/// One table's circular chunk scan (internal to the coordinator; consumers
/// interact through SharedScanConsumer).
class SharedScanGroup : public std::enable_shared_from_this<SharedScanGroup> {
 public:
  /// A group is defined by a page range, not a table: `file` may be a heap
  /// file or a compressed sibling extent — production only ever needs
  /// (file, num_pages), and every page access goes through the shared pool.
  SharedScanGroup(Engine* engine, FileId file, PageId num_pages,
                  SharedScanOptions options);

  SharedScanGroup(const SharedScanGroup&) = delete;
  SharedScanGroup& operator=(const SharedScanGroup&) = delete;

  SharedScanGroupStats stats() const EXCLUDES(mu_);
  uint64_t num_chunks() const { return num_chunks_; }

 private:
  friend class ScanSharingCoordinator;
  friend class SharedScanConsumer;

  struct ConsumerState {
    uint64_t next_seq = 0;  ///< Next chunk to consume (== held chunk's seq
                            ///< while one is held).
    uint64_t end_seq = 0;   ///< next_seq reaching this completes the lap.
    bool active = false;
    bool holding = false;   ///< Between NextChunk() and the release.
  };

  void Attach(SharedScanConsumer* out) EXCLUDES(mu_);
  const SharedChunk* NextChunk(uint32_t id) EXCLUDES(mu_);
  void Detach(uint32_t id) EXCLUDES(mu_);

  bool CanProduceLocked() REQUIRES(mu_);
  void ProduceOneLocked() REQUIRES(mu_);
  /// Produces while capacity allows, then wakes waiters.
  void PumpRunLocked() REQUIRES(mu_);
  /// Ensures production is in flight: schedules a pump task (or runs it
  /// inline without a scheduler) unless one is already pending.
  void PumpLocked() REQUIRES(mu_);
  void ReleaseHeldLocked(ConsumerState* c) REQUIRES(mu_);
  void DropClaimsLocked(uint64_t from_seq, uint64_t end_seq) REQUIRES(mu_);
  void PopFreeChunksLocked() REQUIRES(mu_);

  Engine* const engine_;
  const FileId file_;
  const PageId num_pages_;
  const SharedScanOptions options_;
  const uint64_t num_chunks_;
  /// Broker charge for the pinned chunk window (page bytes under guards).
  MemoryBroker::Consumer mem_;

  /// Held across chunk production: fetches through the shared pool (shard
  /// latches), broker window charges and pump-task submission all nest under
  /// the group latch, hence its rank above scheduler/pool/broker.
  mutable latch::Latch mu_{latch::LatchRank::kSharedGroup,
                           "SharedScanGroup::mu_"};
  std::condition_variable_any cv_;  ///< Signaled on production and detach.
  /// Produced, not-yet-released chunks: seqs [window_base_, head_seq_).
  std::deque<std::shared_ptr<SharedChunk>> window_ GUARDED_BY(mu_);
  uint64_t window_base_ GUARDED_BY(mu_) = 0;
  uint64_t head_seq_ GUARDED_BY(mu_) = 0;  ///< Next sequence to produce.
  /// Indexed by consumer id. A deque: consumers hold references across
  /// cv_ waits, so Attach() must never invalidate them. Slots of detached
  /// consumers are recycled through free_ids_ (safe: a handle never touches
  /// its id again once the group deactivated it), so the deque is bounded by
  /// the group's peak concurrency, not its lifetime attach count.
  std::deque<ConsumerState> consumers_ GUARDED_BY(mu_);
  std::vector<uint32_t> free_ids_ GUARDED_BY(mu_);
  uint32_t active_consumers_ GUARDED_BY(mu_) = 0;
  bool pump_pending_ GUARDED_BY(mu_) = false;
  SharedScanGroupStats stats_ GUARDED_BY(mu_);
};

/// Aggregate counters over every group of the coordinator.
struct ScanSharingStats {
  uint64_t groups = 0;
  uint64_t consumers_attached = 0;
  uint32_t active_consumers = 0;
  uint64_t chunks_produced = 0;
  uint64_t pages_fetched = 0;
  uint64_t chunk_claims = 0;  ///< See SharedScanGroupStats::chunk_claims.
};

/// The per-engine registry of shared scans: one group per table, one shared
/// Smooth Scan page-cache group per table (see file comment).
class ScanSharingCoordinator {
 public:
  explicit ScanSharingCoordinator(Engine* engine,
                                  SharedScanOptions options = {});
  /// Every consumer must be detached first (queries drained).
  ~ScanSharingCoordinator();

  ScanSharingCoordinator(const ScanSharingCoordinator&) = delete;
  ScanSharingCoordinator& operator=(const ScanSharingCoordinator&) = delete;

  /// Attaches a consumer to `heap`'s circular scan, forming the group on
  /// first use (or resuming a parked one at its current chunk).
  SharedScanConsumer Attach(const HeapFile* heap);

  /// Same, over an arbitrary page range — the compressed tier attaches
  /// consumers to a table's compressed sibling extent (`file` = the sibling's
  /// FileId). The group is keyed by `file`, so heap and compressed groups of
  /// one table coexist and are invalidated independently. `num_pages` must
  /// match the file's page count and stays fixed for the group's lifetime
  /// (extents are immutable until invalidated).
  SharedScanConsumer AttachExtent(FileId file, PageId num_pages)
      EXCLUDES(mu_);

  /// The table's shared-SmoothScan group: attached Smooth Scans feed (and
  /// consult) one common concurrent Page ID Cache over the engine's shared
  /// pool. Created on first use; the same instance is handed to every caller.
  std::shared_ptr<SharedSmoothGroup> SmoothSharingFor(const HeapFile* heap)
      EXCLUDES(mu_);

  /// The group serving `heap`, or null before any Attach (tests,
  /// observability).
  std::shared_ptr<const SharedScanGroup> GroupFor(const HeapFile* heap) const
      EXCLUDES(mu_);

  /// Retires the table's parked groups after a snapshot publish: the circular
  /// scan's chunk decomposition (and the shared Smooth Scan's page-id bitmap)
  /// were sized to the pre-publish page count, so the next arrival must form
  /// a fresh group over the new snapshot. Requires zero active consumers —
  /// guaranteed at publish time, because every consumer's query holds a table
  /// read lease and publish only runs at quiescence (the "drain" half of
  /// drain-or-invalidate). No-op for tables without groups.
  void InvalidateFile(FileId file) EXCLUDES(mu_);

  ScanSharingStats stats() const EXCLUDES(mu_);

  Engine* engine() const { return engine_; }
  const SharedScanOptions& options() const { return options_; }

 private:
  Engine* const engine_;
  const SharedScanOptions options_;

  /// Ranked just above the group latch: stats()/InvalidateFile read group
  /// stats while holding the registry latch.
  mutable latch::Latch mu_{latch::LatchRank::kCoordinator,
                           "ScanSharingCoordinator::mu_"};
  std::unordered_map<FileId, std::shared_ptr<SharedScanGroup>> groups_
      GUARDED_BY(mu_);
  std::unordered_map<FileId, std::shared_ptr<SharedSmoothGroup>>
      smooth_groups_ GUARDED_BY(mu_);
};

}  // namespace smoothscan

#endif  // SMOOTHSCAN_SHARING_SCAN_SHARING_H_
