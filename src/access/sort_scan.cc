#include "access/sort_scan.h"

#include <algorithm>

namespace smoothscan {

SortScanExtent CoalesceSortedTidExtent(const std::vector<Tid>& tids, size_t i,
                                       size_t end) {
  SortScanExtent extent;
  size_t j = i;
  const PageId first_page = tids[i].page_id;
  PageId last_page = first_page;
  extent.num_pages = 1;
  while (j + 1 < end &&
         (tids[j + 1].page_id == last_page ||
          tids[j + 1].page_id == last_page + 1) &&
         tids[j + 1].page_id - first_page < kSortScanChunkPages) {
    if (tids[j + 1].page_id == last_page + 1) {
      ++extent.num_pages;
      last_page = tids[j + 1].page_id;
    }
    ++j;
  }
  extent.last_entry = j;
  return extent;
}

SortScan::SortScan(const BPlusTree* index, ScanPredicate predicate,
                   SortScanOptions options)
    : index_(index), predicate_(std::move(predicate)), options_(options) {
  SMOOTHSCAN_CHECK(predicate_.column == index_->key_column());
}

ExecContext SortScan::DefaultContext() const {
  return EngineContext(index_->heap()->engine());
}

Status SortScan::OpenImpl() {
  const HeapFile* heap = index_->heap();
  const ExecContext& ctx = this->ctx();
  results_.clear();
  next_result_ = 0;
  pages_fetched_ = 0;

  // Phase 1: harvest qualifying TIDs from the index leaves.
  std::vector<Tid> tids;
  for (BPlusTree::Iterator it = index_->Seek(predicate_.lo, &ctx);
       it.Valid() && it.key() < predicate_.hi; it.Next()) {
    tids.push_back(it.tid());
  }

  // Phase 2: sort TIDs in heap order — the blocking pre-sort.
  ctx.cpu->ChargeSort(tids.size());
  std::sort(tids.begin(), tids.end());

  // Phase 3: fetch the result pages, coalescing consecutive page ids into
  // single extent requests ("easily detected by disk prefetchers").
  struct KeyedTuple {
    int64_t key;
    Tid tid;
    Tuple tuple;
  };
  std::vector<KeyedTuple> keyed;
  uint64_t inspected = 0;
  uint64_t produced = 0;
  size_t i = 0;
  while (i < tids.size()) {
    // Extent of consecutive distinct pages starting at tids[i].
    const SortScanExtent extent =
        CoalesceSortedTidExtent(tids, i, tids.size());
    const size_t j = extent.last_entry;
    ctx.pool->FetchExtent(heap->file_id(), tids[i].page_id, extent.num_pages);
    pages_fetched_ += extent.num_pages;
    stats_.heap_pages_probed += extent.num_pages;
    for (size_t k = i; k <= j; ++k) {
      Tuple tuple = heap->Read(tids[k], ctx);  // Resident: buffer-pool hit.
      ++inspected;
      if (predicate_.residual && !predicate_.residual(tuple)) continue;
      ++produced;
      keyed.push_back(
          {tuple[predicate_.column].AsInt64(), tids[k], std::move(tuple)});
    }
    i = j + 1;
  }
  stats_.tuples_inspected += inspected;
  ctx.cpu->ChargeInspect(inspected);
  ctx.cpu->ChargeProduce(produced);

  // Phase 4 (optional): posterior sort restoring the interesting order.
  if (options_.preserve_order) {
    ctx.cpu->ChargeSort(keyed.size());
    std::stable_sort(keyed.begin(), keyed.end(),
                     [](const KeyedTuple& a, const KeyedTuple& b) {
                       return a.key != b.key ? a.key < b.key : a.tid < b.tid;
                     });
  }
  results_.reserve(keyed.size());
  for (KeyedTuple& kt : keyed) results_.push_back(std::move(kt.tuple));
  return Status::OK();
}

bool SortScan::NextBatchImpl(TupleBatch* out) {
  while (next_result_ < results_.size() && !out->full()) {
    out->Append(std::move(results_[next_result_++]));
    ++stats_.tuples_produced;
  }
  return !out->empty();
}

}  // namespace smoothscan
