// Tuple ID Cache (Section IV-A): records the TIDs produced by the plain
// index scan that ran *before* morphing was triggered (Optimizer- or
// SLA-driven strategies) so that Smooth Scan never duplicates a result when
// it later re-reads those pages. Also used by Switch Scan across its
// index-to-full-scan seam.

#ifndef SMOOTHSCAN_ACCESS_TUPLE_ID_CACHE_H_
#define SMOOTHSCAN_ACCESS_TUPLE_ID_CACHE_H_

#include <cstdint>
#include <unordered_set>

#include "common/types.h"

namespace smoothscan {

/// Set of produced TIDs. The paper uses a bitmap-like structure; a hash set
/// over packed 48-bit TIDs has the same observable behaviour and is sized by
/// the (small) number of pre-trigger results rather than the table.
class TupleIdCache {
 public:
  void Insert(Tid tid) { set_.insert(Pack(tid)); }
  bool Contains(Tid tid) const { return set_.count(Pack(tid)) > 0; }
  size_t size() const { return set_.size(); }
  void Clear() { set_.clear(); }

 private:
  static uint64_t Pack(Tid tid) {
    return (static_cast<uint64_t>(tid.page_id) << 16) | tid.slot;
  }

  std::unordered_set<uint64_t> set_;
};

}  // namespace smoothscan

#endif  // SMOOTHSCAN_ACCESS_TUPLE_ID_CACHE_H_
