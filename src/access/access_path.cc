#include "access/access_path.h"

namespace smoothscan {

Status AccessPath::Open() {
  stats_ = AccessPathStats();
  carry_.Reset();
  ctx_ = ctx_override_ != nullptr ? *ctx_override_ : DefaultContext();
  return OpenImpl();
}

bool AccessPath::NextBatch(TupleBatch* out) {
  return carry_.NextBatch(out,
                          [this](TupleBatch* b) { return NextBatchImpl(b); });
}

bool AccessPath::Next(Tuple* out) {
  return carry_.Next(out,
                     [this](TupleBatch* b) { return NextBatchImpl(b); });
}

void AccessPath::Close() {
  carry_.MarkClosed();
  CloseImpl();
}

}  // namespace smoothscan
