// Morsels: the scheduling quanta of parallel scans. A morsel is either a
// contiguous heap-page range (full-scan-shaped work) or a contiguous index
// key range (index-driven work); MorselSource is the thread-safe dispenser
// workers pull from.
//
// The morsel *decomposition* is a pure function of the data — page counts and
// key distribution — never of the degree of parallelism. Combined with
// per-morsel accounting streams (MorselContext) this makes simulated cost
// DOP-invariant: running the same morsel list with 1, 2 or 8 workers charges
// bit-identical simulated time.

#ifndef SMOOTHSCAN_ACCESS_MORSEL_SOURCE_H_
#define SMOOTHSCAN_ACCESS_MORSEL_SOURCE_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/types.h"

namespace smoothscan {

/// One unit of parallel scan work. Page-range morsels use [page_begin,
/// page_end); key-range morsels use [key_lo, key_hi). `index` is the morsel's
/// position in the decomposition — accounting is merged in this order.
struct Morsel {
  uint32_t index = 0;
  PageId page_begin = 0;
  PageId page_end = 0;
  int64_t key_lo = 0;
  int64_t key_hi = 0;
};

/// Thread-safe morsel dispenser (an atomic cursor over the fixed list).
class MorselSource {
 public:
  explicit MorselSource(std::vector<Morsel> morsels)
      : morsels_(std::move(morsels)) {}

  /// Hands out the next morsel; false once the list is exhausted.
  bool Next(Morsel* out) {
    const size_t i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= morsels_.size()) return false;
    *out = morsels_[i];
    return true;
  }

  void Reset() { next_.store(0, std::memory_order_relaxed); }
  size_t size() const { return morsels_.size(); }
  const Morsel& morsel(size_t i) const { return morsels_[i]; }

  /// Fixed-size page-range decomposition of [0, num_pages). `morsel_pages`
  /// should be a multiple of the scan's read-ahead window so parallel extent
  /// boundaries coincide with the serial scan's (bit-identical I/O charges).
  static std::vector<Morsel> PageRanges(PageId num_pages,
                                        uint32_t morsel_pages);

  /// Key-range decomposition from ascending bounds {b0, ..., bk}: morsel i
  /// covers keys [b_i, b_{i+1}).
  static std::vector<Morsel> KeyRanges(const std::vector<int64_t>& bounds);

 private:
  std::vector<Morsel> morsels_;
  std::atomic<size_t> next_{0};
};

}  // namespace smoothscan

#endif  // SMOOTHSCAN_ACCESS_MORSEL_SOURCE_H_
