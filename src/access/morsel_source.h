// Morsels: the scheduling quanta of parallel scans. A morsel is either a
// contiguous heap-page range (full-scan-shaped work) or a contiguous index
// key range (index-driven work); MorselSource is the thread-safe dispenser
// workers pull from.
//
// The morsel *decomposition* is a pure function of the data — page counts and
// key distribution — never of the degree of parallelism. Combined with
// per-morsel accounting streams (MorselContext) this makes simulated cost
// DOP-invariant: running the same morsel list with 1, 2 or 8 workers charges
// bit-identical simulated time.

#ifndef SMOOTHSCAN_ACCESS_MORSEL_SOURCE_H_
#define SMOOTHSCAN_ACCESS_MORSEL_SOURCE_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/types.h"

namespace smoothscan {

/// One unit of parallel scan work. Page-range morsels use [page_begin,
/// page_end); key-range morsels use [key_lo, key_hi). `index` is the morsel's
/// position in the decomposition — accounting is merged in this order.
struct Morsel {
  uint32_t index = 0;
  PageId page_begin = 0;
  PageId page_end = 0;
  int64_t key_lo = 0;
  int64_t key_hi = 0;
};

/// Batch fill-rate telemetry aggregated across all workers of one scan cycle.
/// Mostly-empty emitted batches mean the morsel size is too small for the
/// selectivity (per-morsel flushes truncate every batch), wasting the
/// amortization a batch exists for.
struct MorselFillStats {
  uint64_t batches = 0;         ///< Non-empty batches emitted.
  uint64_t tuples = 0;          ///< Tuples across those batches.
  uint64_t capacity = 0;        ///< Summed batch capacities.
  double fill_rate() const {
    return capacity == 0 ? 0.0 : static_cast<double>(tuples) / capacity;
  }
};

/// Thread-safe morsel dispenser (an atomic cursor over the fixed list).
class MorselSource {
 public:
  explicit MorselSource(std::vector<Morsel> morsels)
      : morsels_(std::move(morsels)) {
    for (const Morsel& m : morsels_) {
      total_pages_ += m.page_end - m.page_begin;
    }
  }

  /// Hands out the next morsel; false once the list is exhausted.
  bool Next(Morsel* out) {
    const size_t i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= morsels_.size()) return false;
    *out = morsels_[i];
    return true;
  }

  void Reset() { next_.store(0, std::memory_order_relaxed); }
  size_t size() const { return morsels_.size(); }
  const Morsel& morsel(size_t i) const { return morsels_[i]; }
  /// Total heap pages across page-range morsels (0 for key-range lists).
  uint64_t total_pages() const { return total_pages_; }

  /// Records one emitted batch (called by the parallel scan driver; any
  /// thread). Telemetry only — never consulted by the scan itself.
  void RecordBatchFill(size_t tuples, size_t capacity) {
    fill_batches_.fetch_add(1, std::memory_order_relaxed);
    fill_tuples_.fetch_add(tuples, std::memory_order_relaxed);
    fill_capacity_.fetch_add(capacity, std::memory_order_relaxed);
  }

  MorselFillStats fill_stats() const {
    MorselFillStats s;
    s.batches = fill_batches_.load(std::memory_order_relaxed);
    s.tuples = fill_tuples_.load(std::memory_order_relaxed);
    s.capacity = fill_capacity_.load(std::memory_order_relaxed);
    return s;
  }

  /// Advisory morsel size for the *next* scan of this shape, from the
  /// observed fill rate: pick the page count whose expected output fills
  /// `target_batches_per_morsel` batches, aligned down to the read-ahead
  /// window (never below one window). Returns `current_morsel_pages`
  /// unchanged when there is no page/tuple telemetry to extrapolate from.
  /// A hint for callers — nothing in the engine applies it automatically.
  uint32_t SuggestMorselPages(uint32_t current_morsel_pages,
                              uint32_t read_ahead_pages,
                              uint32_t target_batches_per_morsel = 4) const;

  /// Fixed-size page-range decomposition of [0, num_pages). `morsel_pages`
  /// should be a multiple of the scan's read-ahead window so parallel extent
  /// boundaries coincide with the serial scan's (bit-identical I/O charges).
  static std::vector<Morsel> PageRanges(PageId num_pages,
                                        uint32_t morsel_pages);

  /// Key-range decomposition from ascending bounds {b0, ..., bk}: morsel i
  /// covers keys [b_i, b_{i+1}).
  static std::vector<Morsel> KeyRanges(const std::vector<int64_t>& bounds);

 private:
  std::vector<Morsel> morsels_;
  std::atomic<size_t> next_{0};
  uint64_t total_pages_ = 0;
  std::atomic<uint64_t> fill_batches_{0};
  std::atomic<uint64_t> fill_tuples_{0};
  std::atomic<uint64_t> fill_capacity_{0};
};

}  // namespace smoothscan

#endif  // SMOOTHSCAN_ACCESS_MORSEL_SOURCE_H_
