// Page ID Cache (Section IV-A): one bit per heap page, set once the page has
// been fully probed. Smooth Scan consults it before following an index leaf
// pointer, skipping pages it has already analyzed — the fix for the repeated
// page accesses an index scan suffers from. For a 1 M-page (8 GB) table the
// bitmap is 128 KB, matching the paper's "140 KB for LINEITEM" footprint.

#ifndef SMOOTHSCAN_ACCESS_PAGE_ID_CACHE_H_
#define SMOOTHSCAN_ACCESS_PAGE_ID_CACHE_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/status.h"
#include "common/types.h"

namespace smoothscan {

class PageIdCache {
 public:
  explicit PageIdCache(size_t num_pages) : bits_(num_pages, false) {}

  void Mark(PageId page) {
    SMOOTHSCAN_CHECK(page < bits_.size());
    if (!bits_[page]) {
      bits_[page] = true;
      ++count_;
    }
  }

  bool IsMarked(PageId page) const {
    SMOOTHSCAN_CHECK(page < bits_.size());
    return bits_[page];
  }

  /// Number of marked pages.
  uint64_t count() const { return count_; }
  size_t num_pages() const { return bits_.size(); }

  /// Bitmap footprint in bytes (reported by the memory-overhead analyses).
  size_t SizeBytes() const { return (bits_.size() + 7) / 8; }

 private:
  std::vector<bool> bits_;
  uint64_t count_ = 0;
};

/// The Page ID Cache shared by the workers of a parallel Smooth Scan: the
/// same one-bit-per-page bitmap, packed into atomic words so concurrent
/// marking is race-free. Morsel workers own disjoint page ranges, so relaxed
/// ordering suffices — the bitmap is shared state, but no bit is contended;
/// this is what keeps the parallel scan's behaviour deterministic (see the
/// README threading-model notes).
class ConcurrentPageIdCache {
 public:
  explicit ConcurrentPageIdCache(size_t num_pages)
      : num_pages_(num_pages), words_((num_pages + 63) / 64) {}

  /// Sets the page's bit; returns true when this call newly marked it.
  bool Mark(PageId page) {
    SMOOTHSCAN_CHECK(page < num_pages_);
    const uint64_t bit = 1ULL << (page % 64);
    const uint64_t prev =
        words_[page / 64].fetch_or(bit, std::memory_order_relaxed);
    return (prev & bit) == 0;
  }

  bool IsMarked(PageId page) const {
    SMOOTHSCAN_CHECK(page < num_pages_);
    return (words_[page / 64].load(std::memory_order_relaxed) &
            (1ULL << (page % 64))) != 0;
  }

  size_t num_pages() const { return num_pages_; }
  size_t SizeBytes() const { return words_.size() * sizeof(uint64_t); }

 private:
  size_t num_pages_;
  std::vector<std::atomic<uint64_t>> words_;
};

}  // namespace smoothscan

#endif  // SMOOTHSCAN_ACCESS_PAGE_ID_CACHE_H_
