// Page ID Cache (Section IV-A): one bit per heap page, set once the page has
// been fully probed. Smooth Scan consults it before following an index leaf
// pointer, skipping pages it has already analyzed — the fix for the repeated
// page accesses an index scan suffers from. For a 1 M-page (8 GB) table the
// bitmap is 128 KB, matching the paper's "140 KB for LINEITEM" footprint.

#ifndef SMOOTHSCAN_ACCESS_PAGE_ID_CACHE_H_
#define SMOOTHSCAN_ACCESS_PAGE_ID_CACHE_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "common/types.h"

namespace smoothscan {

class PageIdCache {
 public:
  explicit PageIdCache(size_t num_pages) : bits_(num_pages, false) {}

  void Mark(PageId page) {
    SMOOTHSCAN_CHECK(page < bits_.size());
    if (!bits_[page]) {
      bits_[page] = true;
      ++count_;
    }
  }

  bool IsMarked(PageId page) const {
    SMOOTHSCAN_CHECK(page < bits_.size());
    return bits_[page];
  }

  /// Number of marked pages.
  uint64_t count() const { return count_; }
  size_t num_pages() const { return bits_.size(); }

  /// Bitmap footprint in bytes (reported by the memory-overhead analyses).
  size_t SizeBytes() const { return (bits_.size() + 7) / 8; }

 private:
  std::vector<bool> bits_;
  uint64_t count_ = 0;
};

}  // namespace smoothscan

#endif  // SMOOTHSCAN_ACCESS_PAGE_ID_CACHE_H_
