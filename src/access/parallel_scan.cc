#include "access/parallel_scan.h"

#include <algorithm>
#include <atomic>
#include <utility>

#include "access/index_scan.h"
#include "access/page_id_cache.h"
#include "access/tuple_id_cache.h"
#include "index/bplus_tree.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace smoothscan {

namespace {

void Accumulate(AccessPathStats* into, const AccessPathStats& from) {
  into->tuples_produced += from.tuples_produced;
  into->tuples_inspected += from.tuples_inspected;
  into->heap_pages_probed += from.heap_pages_probed;
}

/// Rounds the morsel size down to a multiple of the read-ahead window (and up
/// to at least one window), so parallel extent requests coincide with the
/// serial scan's.
uint32_t AlignMorselPages(uint32_t morsel_pages, uint32_t read_ahead) {
  if (morsel_pages <= read_ahead) return read_ahead;
  return morsel_pages - morsel_pages % read_ahead;
}

}  // namespace

// ---------------------------------------------------------------------------
// ParallelScan
// ---------------------------------------------------------------------------

ParallelScan::ParallelScan(Engine* engine,
                           std::unique_ptr<ParallelScanKernel> kernel,
                           ParallelScanOptions options)
    : engine_(engine), kernel_(std::move(kernel)), options_(options) {
  SMOOTHSCAN_CHECK(options_.dop >= 1);
  SMOOTHSCAN_CHECK(options_.morsel_pages >= 1);
  // Half-redirected accounting would silently split a query's charges
  // between its private stack and the engine's shared stream.
  SMOOTHSCAN_CHECK((options_.account_disk == nullptr) ==
                   (options_.account_cpu == nullptr));
  if (options_.batch_pool != nullptr) {
    pool_ = options_.batch_pool;
  } else {
    // Owned pool lives as long as the operator, not one Open cycle, so a
    // re-Open starts with every batch of the previous cycle warm.
    BatchPoolOptions pool_options;
    pool_options.recycle = options_.recycle_batches;
    pool_options.metrics = options_.batch_metrics;
    owned_pool_ = std::make_unique<BatchPool>(pool_options, options_.mem);
    pool_ = owned_pool_.get();
  }
}

ParallelScan::~ParallelScan() {
  // Make sure no worker outlives the slots it emits into.
  if (group_ != nullptr) group_->Wait();
}

ExecContext ParallelScan::DefaultContext() const {
  return EngineContext(engine_);
}

TaskScheduler* ParallelScan::scheduler() {
  if (options_.scheduler != nullptr) return options_.scheduler;
  if (owned_scheduler_ == nullptr) {
    owned_scheduler_ = std::make_unique<TaskScheduler>(options_.dop);
  }
  return owned_scheduler_.get();
}

void ParallelScan::EmitTo(size_t slot, PooledBatch&& batch) {
  // Empty batches go straight back to the pool (the handle's destructor).
  if (!batch || batch->empty()) return;
  source_->RecordBatchFill(batch->size(), batch->capacity());
  {
    latch::LatchGuard lock(mu_);
    slots_[slot].batches.push_back(std::move(batch));
  }
  cv_.notify_one();
}

Status ParallelScan::OpenImpl() {
  Finalize();  // A re-Open mid-stream settles the previous cycle first.
  // Finalize() repopulates stats_ with the settled cycle's totals; this cycle
  // starts from zero, as the stats() contract requires.
  stats_ = AccessPathStats();
  {
    // No workers are live here (Finalize waited on the group), but the slot
    // state is latch-guarded, so reset it under the latch like everyone else.
    latch::LatchGuard lock(mu_);
    slots_.clear();
    emit_slot_ = 0;
  }
  contexts_.clear();
  morsel_stats_.clear();
  prolog_stats_ = AccessPathStats();
  group_.reset();
  pending_.Release();
  pending_pos_ = 0;
  finalized_ = false;

  // Observability bind before Plan, mirroring the serial operators'
  // resolve-at-Open (the engine SetObs()s the path before Open).
  kernel_->BindObs(obs() != nullptr ? obs()->metrics : nullptr);

  // Serial prolog on the planning stream. Workers are not running yet, so the
  // prolog emits into slot 0 without locking concerns.
  planning_ = std::make_unique<MorselContext>(engine_, options_.mirror_pool);
  planning_->pool().SetMetricsSink(options_.pool_metrics);
  planning_->SetBatchPool(pool_);
  planning_->SetMemScope(options_.mem);
  std::vector<PooledBatch> prolog;
  std::vector<Morsel> morsels = kernel_->Plan(
      planning_->ctx(),
      [&prolog](PooledBatch&& b) {
        if (b && !b->empty()) prolog.push_back(std::move(b));
      },
      &prolog_stats_);

  {
    latch::LatchGuard lock(mu_);
    slots_.resize(1 + morsels.size());
    for (PooledBatch& b : prolog) slots_[0].batches.push_back(std::move(b));
    slots_[0].done = true;
  }

  morsel_stats_.resize(morsels.size());
  contexts_.reserve(morsels.size());
  for (size_t i = 0; i < morsels.size(); ++i) {
    contexts_.push_back(
        std::make_unique<MorselContext>(engine_, options_.mirror_pool));
    contexts_.back()->pool().SetMetricsSink(options_.pool_metrics);
    contexts_.back()->SetBatchPool(pool_);
    contexts_.back()->SetMemScope(options_.mem);
  }
  source_ = std::make_unique<MorselSource>(std::move(morsels));
  if (source_->size() == 0) return Status::OK();

  // One puller task per worker; each drains the shared morsel source.
  std::vector<TaskScheduler::Task> tasks;
  const uint32_t pullers =
      std::min<uint32_t>(options_.dop, static_cast<uint32_t>(source_->size()));
  tasks.reserve(pullers);
  for (uint32_t t = 0; t < pullers; ++t) {
    tasks.push_back([this] {
      Morsel m;
      while (source_->Next(&m)) {
        MorselContext& mc = *contexts_[m.index];
        // Worker-ring span around the morsel; the index payload lets a
        // Perfetto view line morsels up against the queue they drained from.
        obs::TraceSpan morsel_span(options_.trace, options_.trace_query_id,
                                   "morsel", "morsel_index",
                                   static_cast<int64_t>(m.index));
        morsel_stats_[m.index] = kernel_->RunMorsel(
            m, mc.ctx(),
            [this, &m](PooledBatch&& b) { EmitTo(m.index + 1, std::move(b)); });
        {
          latch::LatchGuard lock(mu_);
          slots_[m.index + 1].done = true;
        }
        cv_.notify_all();
      }
    });
  }
  group_ = scheduler()->Submit(std::move(tasks));
  return Status::OK();
}

bool ParallelScan::NextBatchImpl(TupleBatch* out) {
  while (!out->full()) {
    if (pending_) {
      TupleBatch& pb = *pending_;
      if (out->empty() && pending_pos_ == 0 &&
          pb.capacity() == out->capacity()) {
        // Whole-batch hand-off: the exchange swaps the buffers, not the
        // rows, then recycles the caller's old storage through the pool —
        // the recycled-Value-storage contract the old `pending_ =
        // TupleBatch()` reset silently broke.
        std::swap(*out, pb);
        pending_.Release();
        return !out->empty();
      }
      const size_t n = pb.size();
      while (pending_pos_ < n && !out->full()) {
        out->Append(pb.Take(pending_pos_++));
      }
      if (pending_pos_ >= n) {
        pending_.Release();
        pending_pos_ = 0;
      }
      continue;
    }
    // Pull the next batch in morsel order, waiting on the producers.
    latch::UniqueLatch lock(mu_);
    for (;;) {
      if (emit_slot_ >= slots_.size()) {
        lock.unlock();
        Finalize();  // End of stream: settle accounting before reporting it.
        return !out->empty();
      }
      Slot& slot = slots_[emit_slot_];
      if (slot.head < slot.batches.size()) {
        pending_ = std::move(slot.batches[slot.head++]);
        pending_pos_ = 0;
        break;
      }
      if (slot.done) {
        slot.batches.clear();
        slot.head = 0;
        ++emit_slot_;
        continue;
      }
      cv_.wait(lock);
    }
  }
  return !out->empty();
}

void ParallelScan::Finalize() {
  if (finalized_) return;
  finalized_ = true;
  if (group_ != nullptr) group_->Wait();
  // Merge in deterministic order: prolog stream first, then morsel streams by
  // index. This fixes the floating-point accumulation order, so engine-level
  // simulated time is bit-identical at any DOP.
  // lint:allow(ctx-charging) — this IS the settle step: the per-morsel
  // context streams merge into the engine stream (or the query's private
  // account) exactly once, in deterministic order.
  SimDisk* const engine_disk = &engine_->disk();
  SimDisk* disk = options_.account_disk != nullptr ? options_.account_disk
                                                   : engine_disk;
  CpuMeter* cpu = options_.account_cpu != nullptr ? options_.account_cpu
                                                  : &engine_->cpu();
  stats_ = AccessPathStats();
  Accumulate(&stats_, prolog_stats_);
  if (planning_ != nullptr) planning_->MergeInto(disk, cpu);
  for (size_t i = 0; i < contexts_.size(); ++i) {
    Accumulate(&stats_, morsel_stats_[i]);
    contexts_[i]->MergeInto(disk, cpu);
  }
  planning_.reset();
  contexts_.clear();
}

void ParallelScan::CloseImpl() {
  Finalize();
  group_.reset();
  // Undrained batches (a consumer that Closed mid-stream) return to the pool
  // warm with the slots; the pool itself outlives the cycle, so a re-Open
  // starts with recycled storage instead of a cold heap.
  {
    latch::LatchGuard lock(mu_);
    slots_.clear();
    slots_.shrink_to_fit();
    emit_slot_ = 0;
  }
  pending_.Release();
  pending_pos_ = 0;
  source_.reset();
}

// ---------------------------------------------------------------------------
// FullScan kernel: page-range morsels, streams seeded at page_begin - 1.
// ---------------------------------------------------------------------------

namespace {

class ParallelFullScanKernel : public ParallelScanKernel {
 public:
  ParallelFullScanKernel(const HeapFile* heap, ScanPredicate predicate,
                         FullScanOptions scan_options, uint32_t morsel_pages)
      : heap_(heap),
        predicate_(std::move(predicate)),
        scan_options_(scan_options),
        morsel_pages_(
            AlignMorselPages(morsel_pages, scan_options.read_ahead_pages)) {}

  const char* name() const override { return "ParallelFullScan"; }

  std::vector<Morsel> Plan(const ExecContext&, const EmitFn&,
                           AccessPathStats*) override {
    return MorselSource::PageRanges(
        static_cast<PageId>(heap_->num_pages()), morsel_pages_);
  }

  AccessPathStats RunMorsel(const Morsel& m, const ExecContext& ctx,
                            const EmitFn& emit) override {
    // Seed the morsel's stream at the page the serial scan would have just
    // read, so the summed parallel charges equal the serial charges exactly.
    if (m.page_begin > 0) {
      ctx.disk->SeedPosition(heap_->file_id(), m.page_begin - 1);
    }
    FullScanOptions options = scan_options_;
    options.page_begin = m.page_begin;
    options.page_end = m.page_end;
    FullScan scan(heap_, predicate_, options);
    scan.SetExecContext(&ctx);
    SMOOTHSCAN_CHECK(scan.Open().ok());
    PooledBatch batch = ctx.batch_pool->Acquire();
    while (scan.NextBatch(batch.get())) {
      emit(std::move(batch));
      batch = ctx.batch_pool->Acquire();
    }
    const AccessPathStats stats = scan.stats();
    scan.Close();
    return stats;
  }

 private:
  const HeapFile* heap_;
  ScanPredicate predicate_;
  FullScanOptions scan_options_;
  uint32_t morsel_pages_;
};

// ---------------------------------------------------------------------------
// IndexScan kernel: key-range morsels from the leaf-level histogram.
// ---------------------------------------------------------------------------

class ParallelIndexScanKernel : public ParallelScanKernel {
 public:
  ParallelIndexScanKernel(const BPlusTree* index, ScanPredicate predicate,
                          uint32_t max_key_morsels)
      : index_(index),
        predicate_(std::move(predicate)),
        max_key_morsels_(max_key_morsels) {}

  const char* name() const override { return "ParallelIndexScan"; }

  std::vector<Morsel> Plan(const ExecContext&, const EmitFn&,
                           AccessPathStats*) override {
    return MorselSource::KeyRanges(index_->PartitionKeyRange(
        predicate_.lo, predicate_.hi, max_key_morsels_));
  }

  AccessPathStats RunMorsel(const Morsel& m, const ExecContext& ctx,
                            const EmitFn& emit) override {
    ScanPredicate predicate = predicate_;
    predicate.lo = m.key_lo;
    predicate.hi = m.key_hi;
    IndexScan scan(index_, std::move(predicate));
    scan.SetExecContext(&ctx);
    SMOOTHSCAN_CHECK(scan.Open().ok());
    PooledBatch batch = ctx.batch_pool->Acquire();
    while (scan.NextBatch(batch.get())) {
      emit(std::move(batch));
      batch = ctx.batch_pool->Acquire();
    }
    const AccessPathStats stats = scan.stats();
    scan.Close();
    return stats;
  }

 private:
  const BPlusTree* index_;
  ScanPredicate predicate_;
  uint32_t max_key_morsels_;
};

// ---------------------------------------------------------------------------
// SortScan kernel: serial leaf walk + TID sort in the prolog, page-range
// morsels over the sorted-TID array for the nearly sequential heap phase.
// ---------------------------------------------------------------------------

class ParallelSortScanKernel : public ParallelScanKernel {
 public:
  ParallelSortScanKernel(const BPlusTree* index, ScanPredicate predicate,
                         uint32_t morsel_pages)
      : index_(index),
        predicate_(std::move(predicate)),
        morsel_pages_(AlignMorselPages(morsel_pages, kSortScanChunkPages)) {}

  const char* name() const override { return "ParallelSortScan"; }

  std::vector<Morsel> Plan(const ExecContext& planning, const EmitFn&,
                           AccessPathStats*) override {
    tids_.clear();
    for (BPlusTree::Iterator it = index_->Seek(predicate_.lo, &planning);
         it.Valid() && it.key() < predicate_.hi; it.Next()) {
      tids_.push_back(it.tid());
    }
    planning.cpu->ChargeSort(tids_.size());
    std::sort(tids_.begin(), tids_.end());

    // One morsel per populated page-range bucket; each morsel's span of the
    // sorted array is fixed here, so workers touch disjoint read-only slices.
    std::vector<Morsel> morsels;
    spans_.clear();
    size_t i = 0;
    while (i < tids_.size()) {
      const PageId bucket = tids_[i].page_id / morsel_pages_;
      size_t j = i;
      while (j < tids_.size() && tids_[j].page_id / morsel_pages_ == bucket) {
        ++j;
      }
      Morsel m;
      m.index = static_cast<uint32_t>(morsels.size());
      m.page_begin = bucket * morsel_pages_;
      m.page_end = m.page_begin + morsel_pages_;
      morsels.push_back(m);
      spans_.emplace_back(i, j);
      i = j;
    }
    return morsels;
  }

  AccessPathStats RunMorsel(const Morsel& m, const ExecContext& ctx,
                            const EmitFn& emit) override {
    AccessPathStats stats;
    const HeapFile* heap = index_->heap();
    const auto [begin, end] = spans_[m.index];
    PooledBatch batch = ctx.batch_pool->Acquire();
    uint64_t inspected = 0;
    uint64_t produced = 0;
    size_t i = begin;
    while (i < end) {
      // The serial phase 3's extent coalescing, applied to the morsel's span.
      const SortScanExtent extent = CoalesceSortedTidExtent(tids_, i, end);
      const size_t j = extent.last_entry;
      ctx.pool->FetchExtent(heap->file_id(), tids_[i].page_id,
                            extent.num_pages);
      stats.heap_pages_probed += extent.num_pages;
      for (size_t k = i; k <= j; ++k) {
        Tuple tuple = heap->Read(tids_[k], ctx);  // Resident: pool hit.
        ++inspected;
        if (predicate_.residual && !predicate_.residual(tuple)) continue;
        ++produced;
        batch->Append(std::move(tuple));
        if (batch->full()) {
          emit(std::move(batch));
          batch = ctx.batch_pool->Acquire();
        }
      }
      i = j + 1;
    }
    emit(std::move(batch));
    stats.tuples_inspected = inspected;
    stats.tuples_produced = produced;
    ctx.cpu->ChargeInspect(inspected);
    ctx.cpu->ChargeProduce(produced);
    return stats;
  }

 private:
  const BPlusTree* index_;
  ScanPredicate predicate_;
  uint32_t morsel_pages_;
  std::vector<Tid> tids_;
  std::vector<std::pair<size_t, size_t>> spans_;
};

// ---------------------------------------------------------------------------
// SwitchScan kernel: the index phase is inherently serial (the switch fires
// on the *global* produced cardinality), so it runs in the prolog; if the
// switch fires, the post-switch full scan is parallelized over page-range
// morsels, all sharing the read-only Tuple ID Cache built before the switch.
// ---------------------------------------------------------------------------

class ParallelSwitchScanKernel : public ParallelScanKernel {
 public:
  ParallelSwitchScanKernel(const BPlusTree* index, ScanPredicate predicate,
                           SwitchScanOptions scan_options,
                           uint32_t morsel_pages)
      : index_(index),
        predicate_(std::move(predicate)),
        scan_options_(scan_options),
        morsel_pages_(
            AlignMorselPages(morsel_pages, scan_options.read_ahead_pages)) {}

  const char* name() const override { return "ParallelSwitchScan"; }

  std::vector<Morsel> Plan(const ExecContext& planning, const EmitFn& emit,
                           AccessPathStats* stats) override {
    produced_.Clear();
    bool switched = false;
    const HeapFile* heap = index_->heap();
    PooledBatch batch = planning.batch_pool->Acquire();
    uint64_t inspected = 0;
    uint64_t produced = 0;
    uint64_t cache_ops = 0;
    BPlusTree::Iterator it = index_->Seek(predicate_.lo, &planning);
    while (it.Valid() && it.key() < predicate_.hi) {
      const Tid tid = it.tid();
      Tuple tuple = heap->Read(tid, planning);
      ++stats->heap_pages_probed;
      ++inspected;
      if (predicate_.residual && !predicate_.residual(tuple)) {
        it.Next();
        continue;
      }
      if (produced >= scan_options_.estimated_cardinality) {
        switched = true;  // Estimate violated: abandon the index.
        break;
      }
      it.Next();
      produced_.Insert(tid);
      ++cache_ops;
      ++produced;
      batch->Append(std::move(tuple));
      if (batch->full()) {
        emit(std::move(batch));
        batch = planning.batch_pool->Acquire();
      }
    }
    emit(std::move(batch));
    stats->tuples_inspected += inspected;
    stats->tuples_produced += produced;
    planning.cpu->ChargeInspect(inspected);
    planning.cpu->ChargeCacheOp(cache_ops);
    planning.cpu->ChargeProduce(produced);
    if (!switched) return {};
    return MorselSource::PageRanges(
        static_cast<PageId>(heap->num_pages()), morsel_pages_);
  }

  AccessPathStats RunMorsel(const Morsel& m, const ExecContext& ctx,
                            const EmitFn& emit) override {
    AccessPathStats stats;
    const HeapFile* heap = index_->heap();
    const Schema& schema = heap->schema();
    if (m.page_begin > 0) {
      ctx.disk->SeedPosition(heap->file_id(), m.page_begin - 1);
    }
    PooledBatch batch = ctx.batch_pool->Acquire();
    uint64_t inspected = 0;
    uint64_t produced = 0;
    uint64_t cache_ops = 0;
    PageId window_end = m.page_begin;
    for (PageId pid = m.page_begin; pid < m.page_end; ++pid) {
      if (pid >= window_end) {
        const uint32_t window = std::min<uint32_t>(
            scan_options_.read_ahead_pages, m.page_end - window_end);
        ctx.pool->FetchExtent(heap->file_id(), window_end, window);
        window_end += window;
      }
      const PageGuard guard = ctx.pool->Pin(heap->file_id(), pid);
      const Page& page = *guard;
      ++stats.heap_pages_probed;
      for (uint16_t s = 0; s < page.num_slots(); ++s) {
        uint32_t size = 0;
        const uint8_t* data = page.GetTuple(s, &size);
        if (data == nullptr) continue;  // Tombstoned slot.
        ++inspected;
        const int64_t key =
            schema.ReadInt64Column(data, size, predicate_.column);
        if (!predicate_.MatchesKey(key)) continue;
        Tuple* slot = batch->AppendSlot();
        schema.DeserializeInto(data, size, slot);
        if (predicate_.residual && !predicate_.residual(*slot)) {
          batch->PopLast();
          continue;
        }
        // Suppress tuples already produced pre-switch (read-only lookups:
        // the cache was frozen when the prolog finished).
        ++cache_ops;
        if (produced_.Contains(Tid{pid, s})) {
          batch->PopLast();
          continue;
        }
        ++produced;
        if (batch->full()) {
          emit(std::move(batch));
          batch = ctx.batch_pool->Acquire();
        }
      }
    }
    emit(std::move(batch));
    stats.tuples_inspected = inspected;
    stats.tuples_produced = produced;
    ctx.cpu->ChargeInspect(inspected);
    ctx.cpu->ChargeCacheOp(cache_ops);
    ctx.cpu->ChargeProduce(produced);
    return stats;
  }

 private:
  const BPlusTree* index_;
  ScanPredicate predicate_;
  SwitchScanOptions scan_options_;
  uint32_t morsel_pages_;
  TupleIdCache produced_;
};

// ---------------------------------------------------------------------------
// SmoothScan kernel: page-range morsels; the prolog buckets the index entries
// by owning morsel, workers morph within their page range. The Page ID Cache
// is one bitmap shared by all workers under atomics; region-growth decisions
// use each stream's own selectivity counters (kept in per-morsel
// SmoothScanStats slots), which is what keeps the policy deterministic — a
// cross-worker counter read would make region sizes depend on scheduling.
// ---------------------------------------------------------------------------

class ParallelSmoothScanKernel : public ParallelScanKernel {
 public:
  ParallelSmoothScanKernel(const BPlusTree* index, ScanPredicate predicate,
                           SmoothScanOptions scan_options,
                           uint32_t morsel_pages, obs::TraceCollector* trace,
                           uint64_t trace_query_id)
      : index_(index),
        predicate_(std::move(predicate)),
        scan_options_(scan_options),
        morsel_pages_(morsel_pages),
        trace_(trace),
        trace_query_id_(trace_query_id) {}

  const char* name() const override { return "ParallelSmoothScan"; }

  void BindObs(obs::MetricsRegistry* metrics) override {
    // Same counter names as the serial operator: the registry aggregates
    // serial and parallel smooth activity into one smooth.* family. (No
    // smooth.morph_triggers bump here: the parallel kernel is eager-only, and
    // eager never fires the deferred trigger — exactly like serial Eager.)
    c_region_grows_ = nullptr;
    c_region_shrinks_ = nullptr;
    c_page_cache_hits_ = nullptr;
    if (metrics != nullptr) {
      c_region_grows_ = metrics->counter("smooth.region_grows");
      c_region_shrinks_ = metrics->counter("smooth.region_shrinks");
      c_page_cache_hits_ = metrics->counter("smooth.page_cache_hits");
    }
  }

  SmoothScanStats smooth_stats() const override {
    // Morsel-order merge, like Finalize's accounting merge.
    SmoothScanStats total;
    for (const SmoothScanStats& ss : sstats_) {
      total.card_mode1 += ss.card_mode1;
      total.card_mode2 += ss.card_mode2;
      total.probes += ss.probes;
      total.expansions += ss.expansions;
      total.shrinks += ss.shrinks;
      total.pages_seen += ss.pages_seen;
      total.pages_with_results += ss.pages_with_results;
      total.morph_checked_pages += ss.morph_checked_pages;
      total.morph_result_pages += ss.morph_result_pages;
      total.page_cache_hits += ss.page_cache_hits;
    }
    return total;
  }

  std::vector<Morsel> Plan(const ExecContext& planning, const EmitFn&,
                           AccessPathStats*) override {
    const PageId num_pages = static_cast<PageId>(index_->heap()->num_pages());
    std::vector<Morsel> morsels =
        MorselSource::PageRanges(num_pages, morsel_pages_);
    shared_cache_ = std::make_unique<ConcurrentPageIdCache>(num_pages);
    buckets_.assign(morsels.size(), {});
    sstats_.assign(morsels.size(), SmoothScanStats());
    // The full leaf traversal of the qualifying range (charged once, like the
    // serial operator's), bucketed by the heap page each entry targets.
    for (BPlusTree::Iterator it = index_->Seek(predicate_.lo, &planning);
         it.Valid() && it.key() < predicate_.hi; it.Next()) {
      buckets_[it.tid().page_id / morsel_pages_].push_back(it.tid());
    }
    return morsels;
  }

  AccessPathStats RunMorsel(const Morsel& m, const ExecContext& ctx,
                            const EmitFn& emit) override {
    AccessPathStats stats;
    SmoothScanStats& ss = sstats_[m.index];
    const HeapFile* heap = index_->heap();
    const Schema& schema = heap->schema();
    uint32_t region_pages = 1;
    PooledBatch batch = ctx.batch_pool->Acquire();

    for (const Tid target : buckets_[m.index]) {
      ctx.cpu->ChargeCacheOp();  // Page ID Cache bit check.
      if (shared_cache_->IsMarked(target.page_id)) {
        // Target already harvested (the X marks in Fig. 3) — the same skip
        // the serial operator counts as a page-cache hit.
        ++ss.page_cache_hits;
        if (c_page_cache_hits_ != nullptr) c_page_cache_hits_->Add();
        continue;
      }

      // Fetch the morphing region anchored at the target, clipped to the
      // morsel's page range, skipping already-harvested pages.
      const uint32_t want =
          scan_options_.enable_flattening ? region_pages : 1;
      const uint32_t count =
          std::min<uint32_t>(want, m.page_end - target.page_id);
      for (uint32_t i = 0; i < count;) {
        if (shared_cache_->IsMarked(target.page_id + i)) {
          ++i;
          continue;
        }
        uint32_t run = 1;
        while (i + run < count &&
               !shared_cache_->IsMarked(target.page_id + i + run)) {
          ++run;
        }
        ctx.pool->FetchExtent(heap->file_id(), target.page_id + i, run);
        i += run;
      }
      ++ss.probes;

      uint64_t inspected = 0;
      uint64_t produced = 0;
      uint64_t cache_ops = 0;
      uint64_t region_pages_seen = 0;
      uint64_t region_result_pages = 0;
      for (uint32_t i = 0; i < count; ++i) {
        const PageId pid = target.page_id + i;
        // Workers own disjoint page ranges, so this worker is the only
        // writer of these bits; Mark returns false only for pages this very
        // morsel harvested already.
        ++cache_ops;
        if (!shared_cache_->Mark(pid)) continue;
        ++stats.heap_pages_probed;
        ++region_pages_seen;
        const PageGuard guard = ctx.pool->Pin(heap->file_id(), pid);
        const Page& page = *guard;
        bool page_has_result = false;
        for (uint16_t s = 0; s < page.num_slots(); ++s) {
          uint32_t size = 0;
          const uint8_t* data = page.GetTuple(s, &size);
          if (data == nullptr) continue;  // Tombstoned slot.
          ++inspected;
          const int64_t key =
              schema.ReadInt64Column(data, size, predicate_.column);
          if (!predicate_.MatchesKey(key)) continue;
          Tuple tuple = schema.Deserialize(data, size);
          if (predicate_.residual && !predicate_.residual(tuple)) continue;
          page_has_result = true;
          if (count > 1) {
            ++ss.card_mode2;
          } else {
            ++ss.card_mode1;
          }
          ++produced;
          batch->Append(std::move(tuple));
          if (batch->full()) {
            emit(std::move(batch));
            batch = ctx.batch_pool->Acquire();
          }
        }
        if (page_has_result) ++region_result_pages;
        if (pid != target.page_id) {
          ++ss.morph_checked_pages;
          if (page_has_result) ++ss.morph_result_pages;
        }
      }
      stats.tuples_inspected += inspected;
      stats.tuples_produced += produced;
      ctx.cpu->ChargeInspect(inspected);
      ctx.cpu->ChargeProduce(produced);
      ctx.cpu->ChargeCacheOp(cache_ops);
      if (scan_options_.enable_flattening) {
        // Serial policy applied to this stream's own observations (Eqs. 1-2
        // over the morsel's pages) — deterministic at any DOP.
        const uint32_t region_before = region_pages;
        region_pages = MorphRegionStep(
            scan_options_.policy, region_pages, scan_options_.max_region_pages,
            ss.pages_seen, ss.pages_with_results, region_pages_seen,
            region_result_pages, &ss.expansions, &ss.shrinks);
        // Counter-backed morph metrics at any DOP (previously trace-only
        // here): one bump per region change, like the serial operator.
        if (region_pages > region_before) {
          if (c_region_grows_ != nullptr) c_region_grows_->Add();
        } else if (region_pages < region_before) {
          if (c_region_shrinks_ != nullptr) c_region_shrinks_->Add();
        }
        if (trace_ != nullptr && region_pages != region_before) {
          // Morph timeline at any DOP: each worker's instants land on its
          // own ring. Bookkeeping only — the step above already settled.
          trace_->Instant(
              trace_query_id_,
              region_pages > region_before ? "morph_grow" : "morph_shrink",
              "region_pages", region_pages, "morsel",
              static_cast<int64_t>(m.index), nullptr, 0, "policy",
              MorphPolicyToString(scan_options_.policy));
        }
      }
      ss.pages_seen += region_pages_seen;
      ss.pages_with_results += region_result_pages;
    }
    emit(std::move(batch));
    return stats;
  }

 private:
  const BPlusTree* index_;
  ScanPredicate predicate_;
  SmoothScanOptions scan_options_;
  uint32_t morsel_pages_;
  obs::TraceCollector* trace_;
  uint64_t trace_query_id_;

  // Registry counters (null without a bound registry). Relaxed adds from
  // worker threads — pure bookkeeping, never policy input.
  obs::Counter* c_region_grows_ = nullptr;
  obs::Counter* c_region_shrinks_ = nullptr;
  obs::Counter* c_page_cache_hits_ = nullptr;

  std::unique_ptr<ConcurrentPageIdCache> shared_cache_;
  std::vector<std::vector<Tid>> buckets_;
  /// Per-morsel operator counters; slot i is written only by morsel i's
  /// worker and carries that stream's policy inputs (Eqs. 1-2).
  std::vector<SmoothScanStats> sstats_;
};

}  // namespace

// ---------------------------------------------------------------------------
// Factories
// ---------------------------------------------------------------------------

std::unique_ptr<ParallelScan> MakeParallelFullScan(
    const HeapFile* heap, ScanPredicate predicate, FullScanOptions scan_options,
    ParallelScanOptions options) {
  return std::make_unique<ParallelScan>(
      heap->engine(),
      std::make_unique<ParallelFullScanKernel>(
          heap, std::move(predicate), scan_options, options.morsel_pages),
      options);
}

std::unique_ptr<ParallelScan> MakeParallelIndexScan(
    const BPlusTree* index, ScanPredicate predicate,
    ParallelScanOptions options) {
  return std::make_unique<ParallelScan>(
      index->heap()->engine(),
      std::make_unique<ParallelIndexScanKernel>(index, std::move(predicate),
                                                options.max_key_morsels),
      options);
}

std::unique_ptr<ParallelScan> MakeParallelSortScan(
    const BPlusTree* index, ScanPredicate predicate,
    SortScanOptions scan_options, ParallelScanOptions options) {
  // Cross-morsel key order would need a merge above the workers; the serial
  // SortScan covers order-preserving plans.
  if (scan_options.preserve_order) return nullptr;
  return std::make_unique<ParallelScan>(
      index->heap()->engine(),
      std::make_unique<ParallelSortScanKernel>(index, std::move(predicate),
                                               options.morsel_pages),
      options);
}

std::unique_ptr<ParallelScan> MakeParallelSwitchScan(
    const BPlusTree* index, ScanPredicate predicate,
    SwitchScanOptions scan_options, ParallelScanOptions options) {
  return std::make_unique<ParallelScan>(
      index->heap()->engine(),
      std::make_unique<ParallelSwitchScanKernel>(
          index, std::move(predicate), scan_options, options.morsel_pages),
      options);
}

std::unique_ptr<ParallelScan> MakeParallelSmoothScan(
    const BPlusTree* index, ScanPredicate predicate,
    SmoothScanOptions scan_options, ParallelScanOptions options) {
  // The pre-trigger Mode 0 phase gates on the *global* produced cardinality
  // and the Result Cache needs cross-morsel key order; the parallel variant
  // covers the paper's default Eager + unordered configuration. Everything
  // else keeps the serial operator (null, per the factory contract).
  if (scan_options.trigger != MorphTrigger::kEager) return nullptr;
  if (scan_options.preserve_order) return nullptr;
  return std::make_unique<ParallelScan>(
      index->heap()->engine(),
      std::make_unique<ParallelSmoothScanKernel>(
          index, std::move(predicate), scan_options, options.morsel_pages,
          options.trace, options.trace_query_id),
      options);
}

}  // namespace smoothscan
