#include "access/full_scan.h"

#include <algorithm>

namespace smoothscan {

FullScan::FullScan(const HeapFile* heap, ScanPredicate predicate,
                   FullScanOptions options)
    : heap_(heap), predicate_(std::move(predicate)), options_(options) {
  SMOOTHSCAN_CHECK(options_.read_ahead_pages > 0);
}

Status FullScan::OpenImpl() {
  cur_page_ = 0;
  cur_slot_ = 0;
  window_end_ = 0;
  num_pages_ = static_cast<PageId>(heap_->num_pages());
  return Status::OK();
}

void FullScan::CloseImpl() {
  // Forget the cursor; pages themselves are owned by the StorageManager and
  // the buffer pool holds no pins, so there is nothing else to release.
  cur_page_ = num_pages_;
  cur_slot_ = 0;
}

bool FullScan::NextBatchImpl(TupleBatch* out) {
  Engine* engine = heap_->engine();
  const Schema& schema = heap_->schema();
  const FileId file = heap_->file_id();
  const int key_col = predicate_.column;
  const int64_t lo = predicate_.lo;
  const int64_t hi = predicate_.hi;
  const bool has_residual = static_cast<bool>(predicate_.residual);
  // Dense-fill kernel: the running count stays in a register; failed
  // residuals simply do not advance it, reusing the slot.
  Tuple* rows = out->fill_rows();
  size_t filled = out->fill_begin();
  const size_t cap = out->capacity();
  uint64_t inspected = 0;
  while (filled < cap && cur_page_ < num_pages_) {
    if (cur_page_ >= window_end_) {
      const uint32_t window = std::min<uint32_t>(options_.read_ahead_pages,
                                                 num_pages_ - window_end_);
      engine->pool().FetchExtent(file, window_end_, window);
      window_end_ += window;
    }
    const Page& page = engine->storage().GetPage(file, cur_page_);
    if (cur_slot_ == 0) ++stats_.heap_pages_probed;
    const uint16_t num_slots = page.num_slots();
    uint16_t slot = cur_slot_;
    while (slot < num_slots && filled < cap) {
      uint32_t size = 0;
      const uint8_t* data = page.GetTuple(slot, &size);
      ++slot;
      ++inspected;
      // Cheap key check on the serialized bytes before materializing.
      const int64_t key = schema.ReadInt64Column(data, size, key_col);
      if (key < lo || key >= hi) continue;
      Tuple* decoded = &rows[filled];
      schema.DeserializeInto(data, size, decoded);
      if (has_residual && !predicate_.residual(*decoded)) continue;
      ++filled;
    }
    cur_slot_ = slot;
    if (cur_slot_ >= num_slots) {
      ++cur_page_;
      cur_slot_ = 0;
    }
  }
  const uint64_t produced = filled - out->fill_begin();
  out->set_filled(filled);
  stats_.tuples_inspected += inspected;
  stats_.tuples_produced += produced;
  engine->cpu().ChargeInspect(inspected);
  engine->cpu().ChargeProduce(produced);
  return !out->empty();
}

}  // namespace smoothscan
