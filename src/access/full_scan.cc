#include "access/full_scan.h"

namespace smoothscan {

FullScan::FullScan(const HeapFile* heap, ScanPredicate predicate,
                   FullScanOptions options)
    : heap_(heap), predicate_(std::move(predicate)), options_(options) {
  SMOOTHSCAN_CHECK(options_.read_ahead_pages > 0);
}

Status FullScan::Open() {
  next_page_ = 0;
  num_pages_ = static_cast<PageId>(heap_->num_pages());
  pending_.clear();
  return Status::OK();
}

void FullScan::FillWindow() {
  Engine* engine = heap_->engine();
  const Schema& schema = heap_->schema();
  while (pending_.empty() && next_page_ < num_pages_) {
    const uint32_t window =
        std::min<uint32_t>(options_.read_ahead_pages, num_pages_ - next_page_);
    engine->pool().FetchExtent(heap_->file_id(), next_page_, window);
    for (uint32_t i = 0; i < window; ++i) {
      const Page& page =
          engine->storage().GetPage(heap_->file_id(), next_page_ + i);
      ++stats_.heap_pages_probed;
      for (uint16_t s = 0; s < page.num_slots(); ++s) {
        uint32_t size = 0;
        const uint8_t* data = page.GetTuple(s, &size);
        ++stats_.tuples_inspected;
        engine->cpu().ChargeInspect();
        // Cheap key check on the serialized bytes before materializing.
        const int64_t key =
            schema.DeserializeColumn(data, size, predicate_.column).AsInt64();
        if (!predicate_.MatchesKey(key)) continue;
        Tuple tuple = schema.Deserialize(data, size);
        if (predicate_.residual && !predicate_.residual(tuple)) continue;
        engine->cpu().ChargeProduce();
        pending_.push_back(std::move(tuple));
      }
    }
    next_page_ += window;
  }
}

bool FullScan::Next(Tuple* out) {
  if (pending_.empty()) FillWindow();
  if (pending_.empty()) return false;
  *out = std::move(pending_.front());
  pending_.pop_front();
  ++stats_.tuples_produced;
  return true;
}

}  // namespace smoothscan
