#include "access/full_scan.h"

#include <algorithm>

namespace smoothscan {

FullScan::FullScan(const HeapFile* heap, ScanPredicate predicate,
                   FullScanOptions options)
    : heap_(heap), predicate_(std::move(predicate)), options_(options) {
  SMOOTHSCAN_CHECK(options_.read_ahead_pages > 0);
  SMOOTHSCAN_CHECK(options_.page_begin <= options_.page_end);
}

ExecContext FullScan::DefaultContext() const {
  return EngineContext(heap_->engine());
}

Status FullScan::OpenImpl() {
  num_pages_ = std::min<PageId>(static_cast<PageId>(heap_->num_pages()),
                                options_.page_end);
  cur_page_ = std::min(options_.page_begin, num_pages_);
  cur_slot_ = 0;
  window_end_ = cur_page_;
  return Status::OK();
}

void FullScan::CloseImpl() {
  // Forget the cursor; no pins outlive a NextBatch call.
  cur_page_ = num_pages_;
  cur_slot_ = 0;
}

bool FullScan::NextBatchImpl(TupleBatch* out) {
  const ExecContext& ctx = this->ctx();
  const Schema& schema = heap_->schema();
  const FileId file = heap_->file_id();
  const int key_col = predicate_.column;
  const int64_t lo = predicate_.lo;
  const int64_t hi = predicate_.hi;
  const bool has_residual = static_cast<bool>(predicate_.residual);
  // Dense-fill kernel: the running count stays in a register; failed
  // residuals simply do not advance it, reusing the slot.
  Tuple* rows = out->fill_rows();
  size_t filled = out->fill_begin();
  const size_t cap = out->capacity();
  uint64_t inspected = 0;
  while (filled < cap && cur_page_ < num_pages_) {
    if (cur_page_ >= window_end_) {
      const uint32_t window = std::min<uint32_t>(options_.read_ahead_pages,
                                                 num_pages_ - window_end_);
      ctx.pool->FetchExtent(file, window_end_, window);
      window_end_ += window;
    }
    const PageGuard guard = ctx.pool->Pin(file, cur_page_);
    const Page& page = *guard;
    if (cur_slot_ == 0) ++stats_.heap_pages_probed;
    const uint16_t num_slots = page.num_slots();
    uint16_t slot = cur_slot_;
    while (slot < num_slots && filled < cap) {
      uint32_t size = 0;
      const uint8_t* data = page.GetTuple(slot, &size);
      ++slot;
      if (data == nullptr) continue;  // Tombstoned slot.
      ++inspected;
      // Cheap key check on the serialized bytes before materializing.
      const int64_t key = schema.ReadInt64Column(data, size, key_col);
      if (key < lo || key >= hi) continue;
      Tuple* decoded = &rows[filled];
      schema.DeserializeInto(data, size, decoded);
      if (has_residual && !predicate_.residual(*decoded)) continue;
      ++filled;
    }
    cur_slot_ = slot;
    if (cur_slot_ >= num_slots) {
      ++cur_page_;
      cur_slot_ = 0;
    }
  }
  const uint64_t produced = filled - out->fill_begin();
  out->set_filled(filled);
  stats_.tuples_inspected += inspected;
  stats_.tuples_produced += produced;
  ctx.cpu->ChargeInspect(inspected);
  ctx.cpu->ChargeProduce(produced);
  return !out->empty();
}

}  // namespace smoothscan
