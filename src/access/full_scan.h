// FullScan: sequential scan of the entire heap file (Section II, Fig. 2a).
// Reads pages in order with extent-sized read-ahead (modelling the disk
// prefetcher that makes sequential access 1–2 orders of magnitude faster than
// random access), inspects every tuple, and emits qualifiers in heap order.
// Vectorized: tuples are decoded straight into the output batch's recycled
// slots, so the hot loop performs no per-tuple allocation or dispatch.

#ifndef SMOOTHSCAN_ACCESS_FULL_SCAN_H_
#define SMOOTHSCAN_ACCESS_FULL_SCAN_H_

#include "access/access_path.h"
#include "storage/heap_file.h"

namespace smoothscan {

struct FullScanOptions {
  /// Pages fetched per I/O request (read-ahead window).
  uint32_t read_ahead_pages = 32;
  /// Heap-page range [page_begin, page_end) to scan. The defaults cover the
  /// whole file; morsel-driven execution restricts each worker's scan to its
  /// page-range morsel.
  PageId page_begin = 0;
  PageId page_end = kInvalidPageId;
};

class FullScan : public AccessPath {
 public:
  FullScan(const HeapFile* heap, ScanPredicate predicate,
           FullScanOptions options = FullScanOptions());

  const char* name() const override { return "FullScan"; }

 protected:
  Status OpenImpl() override;
  bool NextBatchImpl(TupleBatch* out) override;
  void CloseImpl() override;
  ExecContext DefaultContext() const override;

 private:
  const HeapFile* heap_;
  ScanPredicate predicate_;
  FullScanOptions options_;

  // Scan cursor: current page / slot, and the end of the extent already
  // requested from the disk (read-ahead is decoupled from batch size).
  PageId cur_page_ = 0;
  uint16_t cur_slot_ = 0;
  PageId window_end_ = 0;
  PageId num_pages_ = 0;
};

}  // namespace smoothscan

#endif  // SMOOTHSCAN_ACCESS_FULL_SCAN_H_
