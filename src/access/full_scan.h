// FullScan: sequential scan of the entire heap file (Section II, Fig. 2a).
// Reads pages in order with extent-sized read-ahead (modelling the disk
// prefetcher that makes sequential access 1–2 orders of magnitude faster than
// random access), inspects every tuple, and emits qualifiers in heap order.

#ifndef SMOOTHSCAN_ACCESS_FULL_SCAN_H_
#define SMOOTHSCAN_ACCESS_FULL_SCAN_H_

#include <deque>

#include "access/access_path.h"
#include "storage/heap_file.h"

namespace smoothscan {

struct FullScanOptions {
  /// Pages fetched per I/O request (read-ahead window).
  uint32_t read_ahead_pages = 32;
};

class FullScan : public AccessPath {
 public:
  FullScan(const HeapFile* heap, ScanPredicate predicate,
           FullScanOptions options = FullScanOptions());

  Status Open() override;
  bool Next(Tuple* out) override;
  const char* name() const override { return "FullScan"; }

 private:
  /// Fetches and filters the next read-ahead window into `pending_`.
  void FillWindow();

  const HeapFile* heap_;
  ScanPredicate predicate_;
  FullScanOptions options_;

  PageId next_page_ = 0;
  PageId num_pages_ = 0;
  std::deque<Tuple> pending_;
};

}  // namespace smoothscan

#endif  // SMOOTHSCAN_ACCESS_FULL_SCAN_H_
