// AccessPath: the common Volcano-style interface of every access path
// operator (Full Scan, Index Scan, Sort Scan, Switch Scan, Smooth Scan).
// Open() prepares the scan, Next() produces one tuple at a time, Close()
// releases state. All I/O flows through the engine's buffer pool and all CPU
// work through its meter, so a caller can diff engine counters around a scan
// to obtain the paper's measurements.

#ifndef SMOOTHSCAN_ACCESS_ACCESS_PATH_H_
#define SMOOTHSCAN_ACCESS_ACCESS_PATH_H_

#include <cstdint>

#include "access/predicate.h"
#include "common/status.h"
#include "storage/schema.h"

namespace smoothscan {

/// Counters common to all access paths.
struct AccessPathStats {
  uint64_t tuples_produced = 0;
  uint64_t tuples_inspected = 0;
  uint64_t heap_pages_probed = 0;  ///< Heap page fetch events (incl. repeats).
};

/// Abstract pipelined access path.
class AccessPath {
 public:
  virtual ~AccessPath() = default;

  /// Prepares the scan. Must be called exactly once before Next().
  virtual Status Open() = 0;

  /// Produces the next qualifying tuple. Returns false at end of stream.
  virtual bool Next(Tuple* out) = 0;

  /// Releases scan state. Idempotent.
  virtual void Close() {}

  /// Operator name for reports ("FullScan", "SmoothScan", ...).
  virtual const char* name() const = 0;

  const AccessPathStats& stats() const { return stats_; }

 protected:
  AccessPathStats stats_;
};

}  // namespace smoothscan

#endif  // SMOOTHSCAN_ACCESS_ACCESS_PATH_H_
