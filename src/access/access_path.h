// AccessPath: the common interface of every access path operator (Full Scan,
// Index Scan, Sort Scan, Switch Scan, Smooth Scan). The substrate is
// *batch-first*: NextBatch() is the native producing call and fills up to a
// TupleBatch of qualifying tuples per virtual dispatch; Next() remains as a
// thin compatibility adapter that drains an internal batch one tuple at a
// time. All I/O flows through the engine's buffer pool and all CPU work
// through its meter (charged per batch, amortized), so a caller can diff
// engine counters around a scan to obtain the paper's measurements.
//
// Lifecycle contract:
//   * Open() — prepares the scan and RESETS all iteration state and stats.
//     Calling Open() again after Close() (or even mid-stream) restarts the
//     scan from the beginning; the second run produces exactly the same
//     tuples as a fresh instance would (I/O counters differ only through
//     buffer-pool residency).
//   * NextBatch(b) — clears `b`, then appends up to b->capacity() qualifying
//     tuples. Returns true iff at least one tuple was appended; false means
//     end of stream (and stays false until re-Open).
//   * Next(t) — equivalent tuple-at-a-time view over the same batch stream.
//     Mixing Next() and NextBatch() on one scan is supported; tuples buffered
//     by the adapter are handed to NextBatch first so none is lost or
//     duplicated.
//   * Close() — releases scan state: drops PageGuard pins, index iterators,
//     auxiliary caches and any buffered tuples. Idempotent, and safe to
//     follow with a re-Open(). Page references obtained inside the scan are
//     held as pinned PageGuards (never raw `const Page&`), so they stay valid
//     against concurrent eviction until released here or at end of batch.
//   * stats() — counters of the CURRENT Open() cycle (Open resets them).
//     Read them before re-Open.
//
// Implementations override OpenImpl / NextBatchImpl / CloseImpl; the base
// class owns the adapter buffering and the end-of-stream latch.

#ifndef SMOOTHSCAN_ACCESS_ACCESS_PATH_H_
#define SMOOTHSCAN_ACCESS_ACCESS_PATH_H_

#include <cstdint>

#include "access/predicate.h"
#include "common/batch_carry.h"
#include "common/status.h"
#include "common/tuple_batch.h"
#include "obs/obs_context.h"
#include "storage/exec_context.h"
#include "storage/schema.h"

namespace smoothscan {

/// Counters common to all access paths.
struct AccessPathStats {
  uint64_t tuples_produced = 0;
  uint64_t tuples_inspected = 0;
  uint64_t heap_pages_probed = 0;  ///< Heap page fetch events (incl. repeats).

  friend bool operator==(const AccessPathStats&,
                         const AccessPathStats&) = default;
};

/// Abstract pipelined access path (see the lifecycle contract above).
class AccessPath {
 public:
  virtual ~AccessPath() = default;

  /// Prepares the scan, resetting iteration state and stats.
  Status Open();

  /// Fills `out` with up to out->capacity() qualifying tuples. Returns false
  /// at end of stream (with `out` empty).
  bool NextBatch(TupleBatch* out);

  /// Tuple-at-a-time adapter over NextBatch(). Returns false at end.
  bool Next(Tuple* out);

  /// Releases scan state (see contract). Idempotent; re-Open is safe.
  void Close();

  /// Operator name for reports ("FullScan", "SmoothScan", ...).
  virtual const char* name() const = 0;

  const AccessPathStats& stats() const { return stats_; }

  /// Redirects all page fetches and CPU charges of this scan to `ctx`
  /// (morsel-driven execution charges each morsel's private stream). Must be
  /// set before Open(); `ctx` must outlive the scan's open cycle. Pass null
  /// to restore the default (engine) accounting.
  void SetExecContext(const ExecContext* ctx) { ctx_override_ = ctx; }

  /// Attaches the query's observability handle (metric registry + trace
  /// collector + query id). Same contract as SetExecContext: set before
  /// Open(), must outlive the open cycle, null to detach. Emission is
  /// bookkeeping only — attaching never changes simulated cost.
  void SetObs(const obs::ObsContext* o) { obs_ = o; }

 protected:
  /// Subclass hooks. NextBatchImpl appends to `out` (already cleared) and
  /// returns !out->empty(); it is never called again after returning false
  /// until the next Open().
  virtual Status OpenImpl() = 0;
  virtual bool NextBatchImpl(TupleBatch* out) = 0;
  virtual void CloseImpl() {}

  /// The engine-owned context this path charges when none is injected.
  virtual ExecContext DefaultContext() const = 0;

  /// The active execution context (valid from Open() on). Stable address per
  /// path instance, so index iterators may hold &ctx().
  const ExecContext& ctx() const { return ctx_; }

  /// The attached observability handle, or null (most call sites pass this
  /// straight to obs:: helpers, which are null-safe).
  const obs::ObsContext* obs() const { return obs_; }

  AccessPathStats stats_;

 private:
  BatchCarry carry_;  ///< Shared adapter buffering (see batch_carry.h).
  const ExecContext* ctx_override_ = nullptr;
  const obs::ObsContext* obs_ = nullptr;
  ExecContext ctx_;
};

}  // namespace smoothscan

#endif  // SMOOTHSCAN_ACCESS_ACCESS_PATH_H_
