// Result Cache (Section IV-A): holds qualifying tuples that Smooth Scan
// harvested ahead of their position in the index order, so that a plan
// relying on the index's interesting order (e.g. ORDER BY, Merge Join input)
// still receives tuples in key order.
//
// The cache is partitioned by index-key range, with partition boundaries
// taken from the separators in the B+-tree root ("the root page is a good
// indicator of the key value distributions"). Once the scan cursor passes a
// partition's upper bound the partition can be dropped wholesale — the bulk
// deletion scheme the paper describes.
//
// Spilling: "if memory becomes scarce, cache spilling could be employed by
// using overflow files. Caches containing the ranges the furthest from the
// current key range are spilled into the overflow files that are read upon
// reaching the range keys belong to." With a resident-tuple budget and an
// engine attached, the cache spills its furthest partitions to a simulated
// overflow file (write I/O charged) and restores them on demand (read I/O
// charged).

#ifndef SMOOTHSCAN_ACCESS_RESULT_CACHE_H_
#define SMOOTHSCAN_ACCESS_RESULT_CACHE_H_

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "mem/memory_broker.h"
#include "storage/engine.h"
#include "storage/schema.h"

namespace smoothscan {

namespace obs {
class Counter;
}  // namespace obs

class TableVersionRegistry;

struct ResultCacheOptions {
  /// Maximum tuples resident in memory before the furthest partitions spill.
  /// Default: unbounded (no spilling).
  uint64_t max_resident_tuples = UINT64_MAX;
  /// Tuples that fit in one overflow-file page (sizing the charged I/O).
  uint32_t spill_tuples_per_page = 64;
  /// Memory broker the cache reports its resident bytes to. Under global
  /// pressure the cache spills furthest partitions even below its own tuple
  /// budget — the broker's preferred alternative to refusing memory. Needs
  /// `engine` (spill I/O is charged); null = ungoverned.
  MemoryBroker* broker = nullptr;
  /// Resident-footprint estimate per cached tuple for broker accounting.
  uint32_t bytes_per_tuple = 128;
  /// Live registry counters for spill/restore events (all-null = off). The
  /// owning SmoothScan latches ResultCacheStats into SmoothScanStats only at
  /// Close(); these fire at the event itself, so mid-query pressure response
  /// is visible in a snapshot or trace taken while the scan is running.
  obs::Counter* spill_events = nullptr;
  obs::Counter* pressure_spill_events = nullptr;
  obs::Counter* restore_events = nullptr;
};

struct ResultCacheStats {
  uint64_t spills = 0;           ///< Partition spill events.
  uint64_t restores = 0;         ///< Partition restore events.
  uint64_t spilled_tuples = 0;   ///< Cumulative tuples written out.
  uint64_t restored_tuples = 0;  ///< Cumulative tuples read back.
  uint64_t pressure_spills = 0;  ///< Spills forced by broker pressure.
};

class ResultCache {
 public:
  /// `separators` are ascending partition boundaries; partition i holds keys
  /// in [separators[i-1], separators[i]). Empty separators = one partition.
  /// `engine` may be null when `options` disables spilling.
  explicit ResultCache(std::vector<int64_t> separators,
                       Engine* engine = nullptr,
                       ResultCacheOptions options = ResultCacheOptions());
  ~ResultCache();

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// Subscribes the cache to `table`'s publish notifications: any publish of
  /// that table Clear()s the cache, because cached tuples were harvested from
  /// the pre-publish snapshot and may now be stale (deleted, updated, or
  /// re-keyed). The hook unregisters in the destructor. At most one
  /// attachment per cache.
  void AttachInvalidation(TableVersionRegistry* registry, FileId table);

  /// Drops every cached tuple in every partition (spilled ones included) and
  /// rewinds the live-partition cursor, making all partitions insertable
  /// again. Cumulative counters (inserts, max_size, spill stats) survive —
  /// only content is invalidated.
  void Clear();

  /// Inserts the tuple for `tid` under `key`.
  void Insert(int64_t key, Tid tid, Tuple tuple);

  /// Removes and returns the tuple for (`key`, `tid`), if cached. Restores
  /// the owning partition from the overflow file when it was spilled.
  std::optional<Tuple> Take(int64_t key, Tid tid);

  /// Drops all partitions whose key range lies entirely below `key` — the
  /// scan cursor has passed them. Returns the number of evicted tuples.
  uint64_t EvictBelow(int64_t key);

  /// Tuples held (resident + spilled).
  uint64_t size() const { return size_; }
  uint64_t resident_size() const { return resident_size_; }
  uint64_t max_size() const { return max_size_; }
  uint64_t inserts() const { return inserts_; }
  /// Publish-triggered Clear()s since attachment.
  uint64_t invalidations() const { return invalidations_; }
  const ResultCacheStats& spill_stats() const { return spill_stats_; }

 private:
  static uint64_t Pack(Tid tid) {
    return (static_cast<uint64_t>(tid.page_id) << 16) | tid.slot;
  }
  struct Partition {
    std::unordered_map<uint64_t, Tuple> tuples;
    bool spilled = false;
  };

  /// Partition index owning `key`.
  size_t PartitionOf(int64_t key) const;
  /// Writes one partition to the overflow file (charged) and marks it
  /// non-resident.
  void SpillPartition(size_t p);
  /// Spills furthest partitions until the resident budget is met. Never
  /// spills `keep` (the partition being inserted into).
  void MaybeSpill(size_t keep);
  /// Broker-pressure path: spills furthest partitions (skipping `keep`)
  /// until the broker drops below its global budget or nothing resident
  /// remains. Queries never fail — they just read the overflow file later.
  void SpillForPressure(size_t keep);
  void Restore(size_t p);
  /// Re-syncs the broker consumer to `resident_size_ * bytes_per_tuple`.
  void SyncBrokerCharge();
  /// Overflow-file pages for `n` tuples.
  uint32_t SpillPages(size_t n) const;

  std::vector<int64_t> separators_;
  std::vector<Partition> partitions_;
  Engine* engine_;
  ResultCacheOptions options_;
  MemoryBroker::Consumer mem_;
  ResultCacheStats spill_stats_;
  FileId spill_file_ = 0;
  bool spill_file_created_ = false;
  PageId next_spill_page_ = 0;

  size_t first_live_partition_ = 0;
  uint64_t size_ = 0;
  uint64_t resident_size_ = 0;
  uint64_t max_size_ = 0;
  uint64_t inserts_ = 0;
  uint64_t invalidations_ = 0;

  TableVersionRegistry* registry_ = nullptr;
  uint64_t hook_token_ = 0;
};

}  // namespace smoothscan

#endif  // SMOOTHSCAN_ACCESS_RESULT_CACHE_H_
