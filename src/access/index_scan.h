// IndexScan: classic non-clustered index scan (Section II, Fig. 2b). One
// tree descent, then a leaf-order traversal of the qualifying key range with
// one heap page fetch per entry — the random, possibly repeated access
// pattern whose degradation under growing selectivity motivates the paper.
// Emits tuples in index-key order; batched, the per-entry heap look-ups of a
// whole batch are issued from one virtual call.

#ifndef SMOOTHSCAN_ACCESS_INDEX_SCAN_H_
#define SMOOTHSCAN_ACCESS_INDEX_SCAN_H_

#include <optional>

#include "access/access_path.h"
#include "index/bplus_tree.h"

namespace smoothscan {

class IndexScan : public AccessPath {
 public:
  /// `predicate.column` must equal `index->key_column()`.
  IndexScan(const BPlusTree* index, ScanPredicate predicate);

  const char* name() const override { return "IndexScan"; }

 protected:
  Status OpenImpl() override;
  bool NextBatchImpl(TupleBatch* out) override;
  void CloseImpl() override { it_.reset(); }
  ExecContext DefaultContext() const override;

 private:
  const BPlusTree* index_;
  ScanPredicate predicate_;
  std::optional<BPlusTree::Iterator> it_;
};

}  // namespace smoothscan

#endif  // SMOOTHSCAN_ACCESS_INDEX_SCAN_H_
