// SortScan (PostgreSQL's Bitmap Heap Scan; Section II). Collects all
// qualifying TIDs from the index, sorts them in heap-page order, then fetches
// the matching pages (and only those) with a nearly sequential pattern. The
// price is a blocking execution model, and — when the consumer needs the
// index order — a posterior sort of the result tuples. Batches are emitted as
// dense slices of the materialized result.

#ifndef SMOOTHSCAN_ACCESS_SORT_SCAN_H_
#define SMOOTHSCAN_ACCESS_SORT_SCAN_H_

#include <vector>

#include "access/access_path.h"
#include "index/bplus_tree.h"

namespace smoothscan {

struct SortScanOptions {
  /// Re-sort the results by index key before emitting, restoring the
  /// "interesting order" that TID sorting destroyed (Section II's discussion
  /// of the broken natural index ordering).
  bool preserve_order = false;
};

/// Extent-coalescing cap of the sorted-TID heap phase: chunks stay well below
/// the buffer-pool capacity so a long run of consecutive result pages is
/// consumed before any of it is evicted. Shared by the serial phase 3 and the
/// parallel SortScan kernel so the two cannot silently diverge.
inline constexpr uint32_t kSortScanChunkPages = 64;

/// Coalesced extent starting at `tids[i]` within `tids[i, end)` (page-sorted):
/// entries sharing one physical request because each targets the same or the
/// next page, capped at kSortScanChunkPages.
struct SortScanExtent {
  size_t last_entry = 0;    ///< Last entry index covered (inclusive).
  uint32_t num_pages = 0;   ///< Distinct pages spanned, from tids[i].page_id.
};
SortScanExtent CoalesceSortedTidExtent(const std::vector<Tid>& tids, size_t i,
                                       size_t end);

class SortScan : public AccessPath {
 public:
  SortScan(const BPlusTree* index, ScanPredicate predicate,
           SortScanOptions options = SortScanOptions());

  const char* name() const override { return "SortScan"; }

  /// Heap pages fetched (distinct by construction).
  uint64_t pages_fetched() const { return pages_fetched_; }

 protected:
  /// Blocking: performs the index traversal, TID sort and all heap I/O.
  Status OpenImpl() override;
  bool NextBatchImpl(TupleBatch* out) override;
  void CloseImpl() override {
    results_.clear();
    results_.shrink_to_fit();
    next_result_ = 0;
  }
  ExecContext DefaultContext() const override;

 private:
  const BPlusTree* index_;
  ScanPredicate predicate_;
  SortScanOptions options_;

  std::vector<Tuple> results_;
  size_t next_result_ = 0;
  uint64_t pages_fetched_ = 0;
};

}  // namespace smoothscan

#endif  // SMOOTHSCAN_ACCESS_SORT_SCAN_H_
