#include "access/smooth_scan.h"

#include <algorithm>

namespace smoothscan {

const char* MorphPolicyToString(MorphPolicy policy) {
  switch (policy) {
    case MorphPolicy::kGreedy:
      return "Greedy";
    case MorphPolicy::kSelectivityIncrease:
      return "SelectivityIncrease";
    case MorphPolicy::kElastic:
      return "Elastic";
  }
  return "?";
}

const char* MorphTriggerToString(MorphTrigger trigger) {
  switch (trigger) {
    case MorphTrigger::kEager:
      return "Eager";
    case MorphTrigger::kOptimizerDriven:
      return "OptimizerDriven";
    case MorphTrigger::kSlaDriven:
      return "SlaDriven";
  }
  return "?";
}

uint32_t MorphRegionStep(MorphPolicy policy, uint32_t region_pages,
                         uint32_t max_region_pages, uint64_t pages_seen_before,
                         uint64_t pages_with_results_before,
                         uint64_t region_pages_seen,
                         uint64_t region_result_pages, uint64_t* expansions,
                         uint64_t* shrinks) {
  const bool denser =
      pages_seen_before == 0 ||
      static_cast<double>(region_result_pages) *
              static_cast<double>(pages_seen_before) >=
          static_cast<double>(pages_with_results_before) *
              static_cast<double>(region_pages_seen);
  // Counters record *actual* morphing activity: a step that leaves the region
  // at the cap (or an Elastic halving already at one page) is a no-op and
  // must not count — otherwise Fig. 7's expansion/shrink series overstate how
  // much the operator morphed once the region saturates.
  const uint32_t grown = std::min(region_pages * 2, max_region_pages);
  const uint32_t shrunk = std::max(region_pages / 2, 1u);
  switch (policy) {
    case MorphPolicy::kGreedy:
      if (grown != region_pages) ++*expansions;
      region_pages = grown;
      break;
    case MorphPolicy::kSelectivityIncrease:
      if (denser) {
        if (grown != region_pages) ++*expansions;
        region_pages = grown;
      }
      break;
    case MorphPolicy::kElastic:
      if (denser) {
        if (grown != region_pages) ++*expansions;
        region_pages = grown;
      } else {
        if (shrunk != region_pages) ++*shrinks;
        region_pages = shrunk;
      }
      break;
  }
  return region_pages;
}

SmoothScan::SmoothScan(const BPlusTree* index, ScanPredicate predicate,
                       SmoothScanOptions options)
    : index_(index), predicate_(std::move(predicate)), options_(options) {
  SMOOTHSCAN_CHECK(predicate_.column == index_->key_column());
  SMOOTHSCAN_CHECK(options_.max_region_pages >= 1);
}

ExecContext SmoothScan::DefaultContext() const {
  return EngineContext(index_->heap()->engine());
}

Status SmoothScan::OpenImpl() {
  sstats_ = SmoothScanStats();
  emit_.clear();
  emit_pos_ = 0;
  region_pages_ = 1;
  tuple_cache_.reset();
  result_cache_.reset();
  page_cache_ = std::make_unique<PageIdCache>(index_->heap()->num_pages());

  cache_skip_run_ = 0;
  c_morph_triggers_ = nullptr;
  c_region_grows_ = nullptr;
  c_region_shrinks_ = nullptr;
  c_page_cache_hits_ = nullptr;
  if (obs() != nullptr && obs()->metrics != nullptr) {
    obs::MetricsRegistry* m = obs()->metrics;
    c_morph_triggers_ = m->counter("smooth.morph_triggers");
    c_region_grows_ = m->counter("smooth.region_grows");
    c_region_shrinks_ = m->counter("smooth.region_shrinks");
    c_page_cache_hits_ = m->counter("smooth.page_cache_hits");
  }

  switch (options_.trigger) {
    case MorphTrigger::kEager:
      morphing_ = true;
      active_policy_ = options_.policy;
      break;
    case MorphTrigger::kOptimizerDriven:
      morphing_ = false;
      pretrigger_bound_ = options_.optimizer_estimate;
      active_policy_ = options_.post_trigger_policy;
      if (!options_.positional_dedup) {
        tuple_cache_ = std::make_unique<TupleIdCache>();
      }
      break;
    case MorphTrigger::kSlaDriven:
      morphing_ = false;
      pretrigger_bound_ = options_.sla_trigger_cardinality;
      active_policy_ = options_.post_trigger_policy;
      if (!options_.positional_dedup) {
        tuple_cache_ = std::make_unique<TupleIdCache>();
      }
      break;
  }
  m0_any_ = false;
  if (options_.preserve_order) {
    ResultCacheOptions rc_options;
    rc_options.max_resident_tuples = options_.result_cache_budget;
    rc_options.broker = options_.broker;
    if (obs() != nullptr && obs()->metrics != nullptr) {
      // Live spill/restore counters: SmoothScanStats only latches the
      // ResultCache spill numbers at Close(), but these fire at the event,
      // making mid-query pressure response observable.
      obs::MetricsRegistry* m = obs()->metrics;
      rc_options.spill_events = m->counter("rc.spills");
      rc_options.pressure_spill_events = m->counter("rc.pressure_spills");
      rc_options.restore_events = m->counter("rc.restores");
    }
    result_cache_ = std::make_unique<ResultCache>(
        index_->RootSeparators(), index_->heap()->engine(), rc_options);
  }
  obs::EmitInstant(obs(), "smooth_open", "max_region_pages",
                   options_.max_region_pages, nullptr, 0, nullptr, 0, "policy",
                   MorphPolicyToString(active_policy_));
  it_ = index_->Seek(predicate_.lo, &ctx());
  // A zero pre-trigger bound (e.g. an optimizer estimate of 0 tuples) means
  // the very first tuple already violates it: morph immediately.
  MaybeTrigger();
  return Status::OK();
}

void SmoothScan::CloseImpl() {
  FlushCacheSkipRun();
  // Release every auxiliary structure (page/tuple caches, result cache and
  // its spill file references, buffered tuples, the index iterator). The
  // next Open() rebuilds them from scratch.
  it_.reset();
  page_cache_.reset();
  tuple_cache_.reset();
  if (result_cache_ != nullptr) {
    const ResultCacheStats& rc = result_cache_->spill_stats();
    sstats_.rc_spills += rc.spills;
    sstats_.rc_pressure_spills += rc.pressure_spills;
    sstats_.rc_spilled_tuples += rc.spilled_tuples;
    sstats_.rc_restored_tuples += rc.restored_tuples;
  }
  result_cache_.reset();
  emit_.clear();
  emit_.shrink_to_fit();
  emit_pos_ = 0;
}

void SmoothScan::MaybeTrigger() {
  if (morphing_) return;
  if (stats_.tuples_produced >= pretrigger_bound_) {
    morphing_ = true;
    sstats_.triggered = true;
    sstats_.trigger_cardinality = stats_.tuples_produced;
    if (c_morph_triggers_ != nullptr) c_morph_triggers_->Add();
    obs::EmitInstant(obs(), "morph_trigger", "cardinality",
                     static_cast<int64_t>(stats_.tuples_produced),
                     "region_pages", region_pages_, nullptr, 0, "trigger",
                     MorphTriggerToString(options_.trigger));
  }
}

void SmoothScan::Mode0Step(TupleBatch* out) {
  const HeapFile* heap = index_->heap();
  const ExecContext& ctx = this->ctx();
  const Tid tid = it_->tid();
  it_->Next();
  Tuple tuple = heap->Read(tid, ctx);  // Single-tuple look-up: random I/O.
  ++stats_.heap_pages_probed;
  ++stats_.tuples_inspected;
  ctx.cpu->ChargeInspect();
  if (predicate_.residual && !predicate_.residual(tuple)) return;
  if (tuple_cache_ != nullptr) {
    tuple_cache_->Insert(tid);
    ctx.cpu->ChargeCacheOp();
  } else {
    // Positional dedup: the index is strictly (key, Tid)-ordered, so the
    // last produced position identifies everything produced so far.
    m0_any_ = true;
    m0_last_key_ = tuple[predicate_.column].AsInt64();
    m0_last_tid_ = tid;
  }
  ctx.cpu->ChargeProduce();
  ++stats_.tuples_produced;
  ++sstats_.card_mode0;
  out->Append(std::move(tuple));
  MaybeTrigger();
}

int64_t SmoothScan::GlobalSelectivityPpm() const {
  if (sstats_.pages_seen == 0) return 0;
  return static_cast<int64_t>(sstats_.pages_with_results * 1000000 /
                              sstats_.pages_seen);
}

void SmoothScan::FlushCacheSkipRun() {
  if (cache_skip_run_ == 0) return;
  obs::EmitInstant(obs(), "page_cache_skip_run", "pages",
                   static_cast<int64_t>(cache_skip_run_));
  cache_skip_run_ = 0;
}

void SmoothScan::UpdatePolicy(uint64_t region_pages,
                              uint64_t region_result_pages) {
  if (!options_.enable_flattening) return;
  const uint32_t before = region_pages_;
  // Eq. 1 (local, this region) vs Eq. 2 (global, pages seen before it) —
  // captured before MorphRegionStep folds the region into the globals.
  const int64_t local_ppm =
      region_pages == 0 ? 0
                        : static_cast<int64_t>(region_result_pages * 1000000 /
                                               region_pages);
  const int64_t global_ppm = GlobalSelectivityPpm();
  region_pages_ = MorphRegionStep(
      active_policy_, region_pages_, options_.max_region_pages,
      sstats_.pages_seen, sstats_.pages_with_results, region_pages,
      region_result_pages, &sstats_.expansions, &sstats_.shrinks);
  if (region_pages_ > before) {
    if (c_region_grows_ != nullptr) c_region_grows_->Add();
    obs::EmitInstant(obs(), "morph_grow", "region_pages", region_pages_,
                     "local_sel_ppm", local_ppm, "global_sel_ppm", global_ppm,
                     "policy", MorphPolicyToString(active_policy_));
  } else if (region_pages_ < before) {
    if (c_region_shrinks_ != nullptr) c_region_shrinks_->Add();
    obs::EmitInstant(obs(), "morph_shrink", "region_pages", region_pages_,
                     "local_sel_ppm", local_ppm, "global_sel_ppm", global_ppm,
                     "policy", MorphPolicyToString(active_policy_));
  }
}

void SmoothScan::FetchRegionAndHarvest(PageId target, TupleBatch* out) {
  const HeapFile* heap = index_->heap();
  const ExecContext& ctx = this->ctx();
  const Schema& schema = heap->schema();
  const PageId num_pages = static_cast<PageId>(heap->num_pages());

  const uint32_t want = options_.enable_flattening ? region_pages_ : 1;
  const uint32_t count = std::min<uint32_t>(want, num_pages - target);
  // Fetch only the pages of the region that were not processed before
  // ("pages processed in Mode 1 are skipped in Mode 2"), coalescing
  // contiguous unprocessed pages into single extent requests. In the
  // shared-SmoothScan mode a page a *peer* query probed that is still
  // resident in the shared pool is excluded from the charged extents too:
  // the peer paid its fetch, this scan only probes the resident copy.
  SharedSmoothGroup* shared = options_.shared_group.get();
  // Guards of peer-paid pages, indexed by region offset. Taking the guard IS
  // the classification: PinIfResident checks and pins under one shard latch,
  // so a page decided "free" stays pinned (and resident) until harvested — a
  // concurrent eviction can never turn the free ride into an uncharged read.
  std::vector<PageGuard> free_guards(shared != nullptr ? count : 0);
  auto take_free = [&](uint32_t i) -> bool {
    if (shared == nullptr) return false;
    if (free_guards[i]) return true;
    const PageId pid = target + i;
    if (!shared->cache.IsMarked(pid)) return false;
    free_guards[i] = shared->pool->PinIfResident(shared->file, pid);
    return static_cast<bool>(free_guards[i]);
  };
  for (uint32_t i = 0; i < count;) {
    if (page_cache_->IsMarked(target + i)) {
      ++i;
      continue;
    }
    if (take_free(i)) {
      ++sstats_.shared_free_pages;
      ++i;
      continue;
    }
    uint32_t run = 1;
    while (i + run < count && !page_cache_->IsMarked(target + i + run) &&
           !take_free(i + run)) {
      ++run;
    }
    ctx.pool->FetchExtent(heap->file_id(), target + i, run);
    i += run;
  }
  ++sstats_.probes;

  // Per-region CPU accounting, charged once (amortized) after the harvest.
  uint64_t inspected = 0;
  uint64_t produced = 0;
  uint64_t cache_ops = 0;
  uint64_t region_pages_seen = 0;
  uint64_t region_result_pages = 0;
  for (uint32_t i = 0; i < count; ++i) {
    const PageId pid = target + i;
    if (page_cache_->IsMarked(pid)) continue;  // Harvested earlier.
    page_cache_->Mark(pid);
    // Publish the probe to peers: the page is fully analyzed and (having
    // just been fetched or pinned) resident for them to reuse.
    if (shared != nullptr) shared->cache.Mark(pid);
    ++cache_ops;
    ++stats_.heap_pages_probed;
    ++region_pages_seen;

    // A peer-paid page is read through its already-held shared-pool guard;
    // everything else was charged above and pins the scan's own pool.
    const uint32_t off = static_cast<uint32_t>(pid - target);
    const bool free_ride = shared != nullptr && free_guards[off];
    const PageGuard guard =
        free_ride ? PageGuard() : ctx.pool->Pin(heap->file_id(), pid);
    const Page& page = free_ride ? *free_guards[off] : *guard;
    bool page_has_result = false;
    for (uint16_t s = 0; s < page.num_slots(); ++s) {
      uint32_t size = 0;
      const uint8_t* data = page.GetTuple(s, &size);
      if (data == nullptr) continue;  // Tombstoned slot.
      ++inspected;
      const int64_t key =
          schema.ReadInt64Column(data, size, predicate_.column);
      if (!predicate_.MatchesKey(key)) continue;
      Tuple tuple = schema.Deserialize(data, size);
      if (predicate_.residual && !predicate_.residual(tuple)) continue;
      page_has_result = true;
      const Tid tid{pid, s};
      // Under a non-eager trigger, tuples already produced in Mode 0 must
      // not be produced again.
      if (tuple_cache_ != nullptr) {
        ++cache_ops;
        if (tuple_cache_->Contains(tid)) continue;
      } else if (options_.positional_dedup && m0_any_) {
        // Mode 0 produced every qualifying tuple positioned at or before
        // (m0_last_key_, m0_last_tid_) in the strict (key, Tid) order.
        if (key < m0_last_key_ ||
            (key == m0_last_key_ && !(m0_last_tid_ < tid))) {
          continue;
        }
      }
      if (count > 1) {
        ++sstats_.card_mode2;
      } else {
        ++sstats_.card_mode1;
      }
      ++produced;
      if (options_.preserve_order) {
        ++cache_ops;
        result_cache_->Insert(key, tid, std::move(tuple));
        ++sstats_.rc_inserts;
        sstats_.rc_max_size =
            std::max(sstats_.rc_max_size, result_cache_->max_size());
      } else if (out != nullptr && !out->full()) {
        // Emit straight into the caller's batch — the vectorized fast path.
        out->Append(std::move(tuple));
        ++stats_.tuples_produced;
      } else {
        emit_.push_back(std::move(tuple));
      }
    }
    if (page_has_result) ++region_result_pages;
    if (pid != target) {
      ++sstats_.morph_checked_pages;
      if (page_has_result) ++sstats_.morph_result_pages;
    }
  }
  stats_.tuples_inspected += inspected;
  ctx.cpu->ChargeInspect(inspected);
  ctx.cpu->ChargeProduce(produced);
  ctx.cpu->ChargeCacheOp(cache_ops);
  // The policy compares the region's local selectivity (Eq. 1) against the
  // global selectivity of the pages seen *before* this region (Eq. 2).
  UpdatePolicy(region_pages_seen, region_result_pages);
  sstats_.pages_seen += region_pages_seen;
  sstats_.pages_with_results += region_result_pages;
}

void SmoothScan::NextUnordered(TupleBatch* out) {
  const ExecContext& ctx = this->ctx();
  while (!out->full()) {
    if (emit_pos_ < emit_.size()) {
      while (emit_pos_ < emit_.size() && !out->full()) {
        out->Append(std::move(emit_[emit_pos_++]));
        ++stats_.tuples_produced;
      }
      if (emit_pos_ >= emit_.size()) {
        emit_.clear();
        emit_pos_ = 0;
      }
      continue;
    }
    if (!it_->Valid() || it_->key() >= predicate_.hi) return;
    if (!morphing_) {
      Mode0Step(out);
      continue;
    }
    const Tid tid = it_->tid();
    ctx.cpu->ChargeCacheOp();  // Page ID Cache bit check.
    if (page_cache_->IsMarked(tid.page_id)) {
      ++sstats_.page_cache_hits;
      if (c_page_cache_hits_ != nullptr) c_page_cache_hits_->Add();
      ++cache_skip_run_;
      it_->Next();  // Skip the leaf pointer (the X marks in Fig. 3).
      continue;
    }
    FlushCacheSkipRun();
    FetchRegionAndHarvest(tid.page_id, out);
    it_->Next();
  }
}

void SmoothScan::NextOrdered(TupleBatch* out) {
  const ExecContext& ctx = this->ctx();
  while (!out->full()) {
    if (!it_->Valid() || it_->key() >= predicate_.hi) return;
    if (!morphing_) {
      // Plain index scan is naturally ordered.
      Mode0Step(out);
      continue;
    }
    const Tid tid = it_->tid();
    const int64_t key = it_->key();
    ++sstats_.rc_probes;
    ctx.cpu->ChargeCacheOp();
    std::optional<Tuple> cached = result_cache_->Take(key, tid);
    if (cached) {
      ++sstats_.rc_hits;  // Served from the cache without new I/O.
    } else {
      ctx.cpu->ChargeCacheOp();  // Page ID Cache bit check.
      if (!page_cache_->IsMarked(tid.page_id)) {
        FlushCacheSkipRun();
        FetchRegionAndHarvest(tid.page_id, /*out=*/nullptr);
        // The entry's tuple is now cached unless it failed the residual
        // predicate or was produced pre-trigger.
        cached = result_cache_->Take(key, tid);
      } else {
        ++sstats_.page_cache_hits;
        if (c_page_cache_hits_ != nullptr) c_page_cache_hits_->Add();
        ++cache_skip_run_;
      }
    }
    it_->Next();
    if (!cached) continue;  // Residual failure / Mode-0 duplicate: skip.
    result_cache_->EvictBelow(key);
    ++stats_.tuples_produced;
    out->Append(std::move(*cached));
  }
}

bool SmoothScan::NextBatchImpl(TupleBatch* out) {
  if (options_.preserve_order) {
    NextOrdered(out);
  } else {
    NextUnordered(out);
  }
  return !out->empty();
}

}  // namespace smoothscan
