#include "access/index_scan.h"

namespace smoothscan {

IndexScan::IndexScan(const BPlusTree* index, ScanPredicate predicate)
    : index_(index), predicate_(std::move(predicate)) {
  SMOOTHSCAN_CHECK(predicate_.column == index_->key_column());
}

Status IndexScan::OpenImpl() {
  it_ = index_->Seek(predicate_.lo);
  return Status::OK();
}

bool IndexScan::NextBatchImpl(TupleBatch* out) {
  const HeapFile* heap = index_->heap();
  Engine* engine = heap->engine();
  uint64_t inspected = 0;
  uint64_t produced = 0;
  while (!out->full() && it_->Valid() && it_->key() < predicate_.hi) {
    const Tid tid = it_->tid();
    it_->Next();
    // One heap look-up per entry: random I/O unless the page happens to be
    // resident — exactly the pattern of Eq. (11).
    Tuple tuple = heap->Read(tid);
    ++stats_.heap_pages_probed;
    ++inspected;
    if (predicate_.residual && !predicate_.residual(tuple)) continue;
    ++produced;
    out->Append(std::move(tuple));
  }
  stats_.tuples_inspected += inspected;
  stats_.tuples_produced += produced;
  engine->cpu().ChargeInspect(inspected);
  engine->cpu().ChargeProduce(produced);
  return !out->empty();
}

}  // namespace smoothscan
