#include "access/index_scan.h"

namespace smoothscan {

IndexScan::IndexScan(const BPlusTree* index, ScanPredicate predicate)
    : index_(index), predicate_(std::move(predicate)) {
  SMOOTHSCAN_CHECK(predicate_.column == index_->key_column());
}

Status IndexScan::Open() {
  it_ = index_->Seek(predicate_.lo);
  return Status::OK();
}

bool IndexScan::Next(Tuple* out) {
  const HeapFile* heap = index_->heap();
  Engine* engine = heap->engine();
  while (it_->Valid() && it_->key() < predicate_.hi) {
    const Tid tid = it_->tid();
    it_->Next();
    // One heap look-up per entry: random I/O unless the page happens to be
    // resident — exactly the pattern of Eq. (11).
    Tuple tuple = heap->Read(tid);
    ++stats_.heap_pages_probed;
    ++stats_.tuples_inspected;
    engine->cpu().ChargeInspect();
    if (predicate_.residual && !predicate_.residual(tuple)) continue;
    engine->cpu().ChargeProduce();
    ++stats_.tuples_produced;
    *out = std::move(tuple);
    return true;
  }
  return false;
}

}  // namespace smoothscan
