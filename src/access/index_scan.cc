#include "access/index_scan.h"

namespace smoothscan {

IndexScan::IndexScan(const BPlusTree* index, ScanPredicate predicate)
    : index_(index), predicate_(std::move(predicate)) {
  SMOOTHSCAN_CHECK(predicate_.column == index_->key_column());
}

ExecContext IndexScan::DefaultContext() const {
  return EngineContext(index_->heap()->engine());
}

Status IndexScan::OpenImpl() {
  it_ = index_->Seek(predicate_.lo, &ctx());
  return Status::OK();
}

bool IndexScan::NextBatchImpl(TupleBatch* out) {
  const HeapFile* heap = index_->heap();
  const ExecContext& ctx = this->ctx();
  uint64_t inspected = 0;
  uint64_t produced = 0;
  while (!out->full() && it_->Valid() && it_->key() < predicate_.hi) {
    const Tid tid = it_->tid();
    it_->Next();
    // One heap look-up per entry: random I/O unless the page happens to be
    // resident — exactly the pattern of Eq. (11).
    Tuple tuple = heap->Read(tid, ctx);
    ++stats_.heap_pages_probed;
    ++inspected;
    if (predicate_.residual && !predicate_.residual(tuple)) continue;
    ++produced;
    out->Append(std::move(tuple));
  }
  stats_.tuples_inspected += inspected;
  stats_.tuples_produced += produced;
  ctx.cpu->ChargeInspect(inspected);
  ctx.cpu->ChargeProduce(produced);
  return !out->empty();
}

}  // namespace smoothscan
