// ScanPredicate: the selection an access path evaluates. The paper's
// workloads are range selections on the indexed column (`c2 >= lo AND
// c2 < hi`) optionally conjoined with residual predicates on other columns
// (the TPC-H queries). The indexed-column range is what the B+-tree can
// serve; residuals are evaluated on fetched tuples.

#ifndef SMOOTHSCAN_ACCESS_PREDICATE_H_
#define SMOOTHSCAN_ACCESS_PREDICATE_H_

#include <cstdint>
#include <functional>
#include <limits>

#include "storage/schema.h"

namespace smoothscan {

/// A half-open key range [lo, hi) on one INT64/DATE column plus an optional
/// residual predicate over the full tuple.
struct ScanPredicate {
  /// Column the range applies to (the indexed column for index-based paths).
  int column = 0;
  int64_t lo = std::numeric_limits<int64_t>::min();
  int64_t hi = std::numeric_limits<int64_t>::max();  ///< Exclusive.
  /// Optional residual conjunct; null means "always true".
  std::function<bool(const Tuple&)> residual;

  bool MatchesKey(int64_t key) const { return key >= lo && key < hi; }

  /// Full evaluation against a materialized tuple.
  bool Matches(const Tuple& tuple) const {
    const int64_t key = tuple[column].AsInt64();
    if (!MatchesKey(key)) return false;
    return !residual || residual(tuple);
  }
};

}  // namespace smoothscan

#endif  // SMOOTHSCAN_ACCESS_PREDICATE_H_
