#include "access/switch_scan.h"

#include <algorithm>

namespace smoothscan {

SwitchScan::SwitchScan(const BPlusTree* index, ScanPredicate predicate,
                       SwitchScanOptions options)
    : index_(index), predicate_(std::move(predicate)), options_(options) {
  SMOOTHSCAN_CHECK(predicate_.column == index_->key_column());
}

ExecContext SwitchScan::DefaultContext() const {
  return EngineContext(index_->heap()->engine());
}

Status SwitchScan::OpenImpl() {
  it_ = index_->Seek(predicate_.lo, &ctx());
  produced_.Clear();
  switched_ = false;
  cur_page_ = 0;
  cur_slot_ = 0;
  window_end_ = 0;
  num_pages_ = static_cast<PageId>(index_->heap()->num_pages());
  return Status::OK();
}

void SwitchScan::CloseImpl() {
  it_.reset();
  produced_.Clear();
}

void SwitchScan::IndexPhase(TupleBatch* out) {
  const HeapFile* heap = index_->heap();
  const ExecContext& ctx = this->ctx();
  uint64_t inspected = 0;
  uint64_t produced = 0;
  uint64_t cache_ops = 0;
  while (!out->full() && it_->Valid() && it_->key() < predicate_.hi) {
    const Tid tid = it_->tid();
    Tuple tuple = heap->Read(tid, ctx);
    ++stats_.heap_pages_probed;
    ++inspected;
    if (predicate_.residual && !predicate_.residual(tuple)) {
      it_->Next();
      continue;
    }
    // A qualifying tuple. If producing it would exceed the estimate, the
    // estimate is wrong: switch *before producing the next result tuple*
    // (Section VI-F). The tuple is not produced here — the full scan will
    // re-discover it, since its TID was never recorded.
    if (stats_.tuples_produced + produced >= options_.estimated_cardinality) {
      switched_ = true;
      break;
    }
    it_->Next();
    produced_.Insert(tid);
    ++cache_ops;
    ++produced;
    out->Append(std::move(tuple));
  }
  stats_.tuples_inspected += inspected;
  stats_.tuples_produced += produced;
  ctx.cpu->ChargeInspect(inspected);
  ctx.cpu->ChargeCacheOp(cache_ops);
  ctx.cpu->ChargeProduce(produced);
}

void SwitchScan::FullScanPhase(TupleBatch* out) {
  const HeapFile* heap = index_->heap();
  const ExecContext& ctx = this->ctx();
  const Schema& schema = heap->schema();
  uint64_t inspected = 0;
  uint64_t produced = 0;
  uint64_t cache_ops = 0;
  while (!out->full() && cur_page_ < num_pages_) {
    if (cur_page_ >= window_end_) {
      const uint32_t window = std::min<uint32_t>(options_.read_ahead_pages,
                                                 num_pages_ - window_end_);
      ctx.pool->FetchExtent(heap->file_id(), window_end_, window);
      window_end_ += window;
    }
    const PageGuard guard = ctx.pool->Pin(heap->file_id(), cur_page_);
    const Page& page = *guard;
    if (cur_slot_ == 0) ++stats_.heap_pages_probed;
    const uint16_t num_slots = page.num_slots();
    while (cur_slot_ < num_slots && !out->full()) {
      const SlotId s = cur_slot_++;
      uint32_t size = 0;
      const uint8_t* data = page.GetTuple(s, &size);
      if (data == nullptr) continue;  // Tombstoned slot.
      ++inspected;
      const int64_t key =
          schema.ReadInt64Column(data, size, predicate_.column);
      if (!predicate_.MatchesKey(key)) continue;
      Tuple* slot = out->AppendSlot();
      schema.DeserializeInto(data, size, slot);
      if (predicate_.residual && !predicate_.residual(*slot)) {
        out->PopLast();
        continue;
      }
      // Suppress tuples already produced by the index phase.
      ++cache_ops;
      if (produced_.Contains(Tid{cur_page_, s})) {
        out->PopLast();
        continue;
      }
      ++produced;
    }
    if (cur_slot_ >= num_slots) {
      ++cur_page_;
      cur_slot_ = 0;
    }
  }
  stats_.tuples_inspected += inspected;
  stats_.tuples_produced += produced;
  ctx.cpu->ChargeInspect(inspected);
  ctx.cpu->ChargeCacheOp(cache_ops);
  ctx.cpu->ChargeProduce(produced);
}

bool SwitchScan::NextBatchImpl(TupleBatch* out) {
  if (!switched_) {
    IndexPhase(out);
    // Keep the batch from the index phase even if the switch just fired; the
    // full scan continues in the next call.
    if (!out->empty()) return true;
    if (!switched_) return false;  // Index phase finished without violation.
  }
  FullScanPhase(out);
  return !out->empty();
}

}  // namespace smoothscan
