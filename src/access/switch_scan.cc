#include "access/switch_scan.h"

namespace smoothscan {

SwitchScan::SwitchScan(const BPlusTree* index, ScanPredicate predicate,
                       SwitchScanOptions options)
    : index_(index), predicate_(std::move(predicate)), options_(options) {
  SMOOTHSCAN_CHECK(predicate_.column == index_->key_column());
}

Status SwitchScan::Open() {
  it_ = index_->Seek(predicate_.lo);
  switched_ = false;
  next_page_ = 0;
  num_pages_ = static_cast<PageId>(index_->heap()->num_pages());
  pending_.clear();
  return Status::OK();
}

bool SwitchScan::NextFromIndex(Tuple* out) {
  const HeapFile* heap = index_->heap();
  Engine* engine = heap->engine();
  while (it_->Valid() && it_->key() < predicate_.hi) {
    const Tid tid = it_->tid();
    Tuple tuple = heap->Read(tid);
    ++stats_.heap_pages_probed;
    ++stats_.tuples_inspected;
    engine->cpu().ChargeInspect();
    if (predicate_.residual && !predicate_.residual(tuple)) {
      it_->Next();
      continue;
    }
    // A qualifying tuple. If producing it would exceed the estimate, the
    // estimate is wrong: switch *before producing the next result tuple*
    // (Section VI-F). The tuple is not produced here — the full scan will
    // re-discover it, since its TID was never recorded.
    if (stats_.tuples_produced >= options_.estimated_cardinality) {
      switched_ = true;
      return false;
    }
    it_->Next();
    produced_.Insert(tid);
    engine->cpu().ChargeCacheOp();
    engine->cpu().ChargeProduce();
    ++stats_.tuples_produced;
    *out = std::move(tuple);
    return true;
  }
  return false;
}

bool SwitchScan::NextFromFullScan(Tuple* out) {
  const HeapFile* heap = index_->heap();
  Engine* engine = heap->engine();
  const Schema& schema = heap->schema();
  while (true) {
    if (!pending_.empty()) {
      *out = std::move(pending_.front());
      pending_.pop_front();
      ++stats_.tuples_produced;
      return true;
    }
    if (next_page_ >= num_pages_) return false;
    const uint32_t window =
        std::min<uint32_t>(options_.read_ahead_pages, num_pages_ - next_page_);
    engine->pool().FetchExtent(heap->file_id(), next_page_, window);
    for (uint32_t i = 0; i < window; ++i) {
      const PageId pid = next_page_ + i;
      const Page& page = engine->storage().GetPage(heap->file_id(), pid);
      ++stats_.heap_pages_probed;
      for (uint16_t s = 0; s < page.num_slots(); ++s) {
        uint32_t size = 0;
        const uint8_t* data = page.GetTuple(s, &size);
        ++stats_.tuples_inspected;
        engine->cpu().ChargeInspect();
        const int64_t key =
            schema.DeserializeColumn(data, size, predicate_.column).AsInt64();
        if (!predicate_.MatchesKey(key)) continue;
        Tuple tuple = schema.Deserialize(data, size);
        if (predicate_.residual && !predicate_.residual(tuple)) continue;
        // Suppress tuples already produced by the index phase.
        engine->cpu().ChargeCacheOp();
        if (produced_.Contains(Tid{pid, s})) continue;
        engine->cpu().ChargeProduce();
        pending_.push_back(std::move(tuple));
      }
    }
    next_page_ += window;
  }
}

bool SwitchScan::Next(Tuple* out) {
  if (!switched_) {
    if (NextFromIndex(out)) return true;
    if (!switched_) return false;  // Index phase finished without violation.
  }
  return NextFromFullScan(out);
}

}  // namespace smoothscan
