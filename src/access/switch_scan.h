// SwitchScan (Section III / VI-F): the straw-man run-time adaptivity. Runs a
// plain index scan while the produced cardinality stays within the
// optimizer's estimate; the moment the estimate is violated it abandons the
// index and restarts as a full table scan, using a Tuple ID Cache to avoid
// duplicating the tuples already produced. The binary switch bounds the worst
// case but creates the performance cliff Fig. 11 shows.

#ifndef SMOOTHSCAN_ACCESS_SWITCH_SCAN_H_
#define SMOOTHSCAN_ACCESS_SWITCH_SCAN_H_

#include <optional>

#include "access/access_path.h"
#include "access/tuple_id_cache.h"
#include "index/bplus_tree.h"

namespace smoothscan {

struct SwitchScanOptions {
  /// The optimizer's result-cardinality estimate; exceeding it triggers the
  /// switch to a full scan.
  uint64_t estimated_cardinality = 0;
  /// Read-ahead of the post-switch full scan.
  uint32_t read_ahead_pages = 32;
};

class SwitchScan : public AccessPath {
 public:
  SwitchScan(const BPlusTree* index, ScanPredicate predicate,
             SwitchScanOptions options);

  const char* name() const override { return "SwitchScan"; }

  bool switched() const { return switched_; }

 protected:
  Status OpenImpl() override;
  bool NextBatchImpl(TupleBatch* out) override;
  void CloseImpl() override;
  ExecContext DefaultContext() const override;

 private:
  /// Index phase: appends until the batch is full, the range ends, or the
  /// estimate is violated (which flips `switched_`).
  void IndexPhase(TupleBatch* out);
  /// Post-switch full-scan phase.
  void FullScanPhase(TupleBatch* out);

  const BPlusTree* index_;
  ScanPredicate predicate_;
  SwitchScanOptions options_;

  std::optional<BPlusTree::Iterator> it_;
  TupleIdCache produced_;
  bool switched_ = false;

  // Full-scan cursor (see FullScan).
  PageId cur_page_ = 0;
  uint16_t cur_slot_ = 0;
  PageId window_end_ = 0;
  PageId num_pages_ = 0;
};

}  // namespace smoothscan

#endif  // SMOOTHSCAN_ACCESS_SWITCH_SCAN_H_
