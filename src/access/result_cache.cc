#include "access/result_cache.h"

#include <algorithm>

#include "obs/metrics.h"
#include "write/table_version.h"

namespace smoothscan {

ResultCache::ResultCache(std::vector<int64_t> separators, Engine* engine,
                         ResultCacheOptions options)
    : separators_(std::move(separators)), engine_(engine), options_(options) {
  SMOOTHSCAN_CHECK(std::is_sorted(separators_.begin(), separators_.end()));
  SMOOTHSCAN_CHECK(options_.spill_tuples_per_page > 0);
  if (options_.max_resident_tuples != UINT64_MAX) {
    SMOOTHSCAN_CHECK(engine_ != nullptr);
  }
  if (options_.broker != nullptr) {
    SMOOTHSCAN_CHECK(engine_ != nullptr);  // Pressure spill charges I/O.
    mem_ = options_.broker->Register(MemoryClass::kResultCache, "result_cache");
  }
  partitions_.resize(separators_.size() + 1);
}

ResultCache::~ResultCache() {
  if (registry_ != nullptr) registry_->RemovePublishHook(hook_token_);
}

void ResultCache::AttachInvalidation(TableVersionRegistry* registry,
                                     FileId table) {
  SMOOTHSCAN_CHECK(registry != nullptr && registry_ == nullptr);
  registry_ = registry;
  hook_token_ = registry_->AddPublishHook([this, table](FileId file) {
    if (file != table) return;
    Clear();
    ++invalidations_;
  });
}

void ResultCache::Clear() {
  for (Partition& part : partitions_) {
    part.tuples.clear();
    part.spilled = false;
  }
  first_live_partition_ = 0;
  size_ = 0;
  resident_size_ = 0;
  SyncBrokerCharge();
}

void ResultCache::SyncBrokerCharge() {
  if (!mem_.valid()) return;
  const uint64_t want = resident_size_ * options_.bytes_per_tuple;
  const uint64_t have = mem_.bytes();
  if (want > have) {
    mem_.Charge(want - have);
  } else if (want < have) {
    mem_.Uncharge(have - want);
  }
}

size_t ResultCache::PartitionOf(int64_t key) const {
  // Partition i holds keys below separators_[i] (and at/above sep[i-1]).
  return static_cast<size_t>(
      std::upper_bound(separators_.begin(), separators_.end(), key) -
      separators_.begin());
}

uint32_t ResultCache::SpillPages(size_t n) const {
  return static_cast<uint32_t>(
      (n + options_.spill_tuples_per_page - 1) / options_.spill_tuples_per_page);
}

void ResultCache::SpillPartition(size_t p) {
  Partition& part = partitions_[p];
  if (!spill_file_created_) {
    spill_file_ = engine_->storage().CreateFile("result_cache_overflow");
    spill_file_created_ = true;
  }
  const uint32_t pages = SpillPages(part.tuples.size());
  // lint:allow(ctx-charging) — spill I/O is communal maintenance on the
  // engine's shared stream (like write-backs), not a query's scan charge.
  engine_->disk().WriteExtent(spill_file_, next_spill_page_, pages);
  next_spill_page_ += pages;
  part.spilled = true;  // Contents retained in memory; I/O is simulated.
  resident_size_ -= part.tuples.size();
  ++spill_stats_.spills;
  spill_stats_.spilled_tuples += part.tuples.size();
  if (options_.spill_events != nullptr) options_.spill_events->Add();
}

void ResultCache::MaybeSpill(size_t keep) {
  if (resident_size_ <= options_.max_resident_tuples) return;
  // Spill from the furthest key range backwards, skipping the partition
  // currently being filled (spilling it would thrash).
  for (size_t p = partitions_.size(); p-- > first_live_partition_;) {
    if (resident_size_ <= options_.max_resident_tuples) break;
    Partition& part = partitions_[p];
    if (p == keep || part.spilled || part.tuples.empty()) continue;
    SpillPartition(p);
  }
}

void ResultCache::SpillForPressure(size_t keep) {
  if (!mem_.valid() || !options_.broker->UnderPressure()) return;
  // Same furthest-first order as the budget path: the overflow file is read
  // back "upon reaching the range keys belong to", so far ranges cost least.
  for (size_t p = partitions_.size(); p-- > first_live_partition_;) {
    Partition& part = partitions_[p];
    if (p == keep || part.spilled || part.tuples.empty()) continue;
    SpillPartition(p);
    ++spill_stats_.pressure_spills;
    if (options_.pressure_spill_events != nullptr) {
      options_.pressure_spill_events->Add();
    }
    SyncBrokerCharge();  // Uncharge before re-checking global pressure.
    if (!options_.broker->UnderPressure()) break;
  }
}

void ResultCache::Restore(size_t p) {
  Partition& part = partitions_[p];
  SMOOTHSCAN_CHECK(part.spilled);
  const uint32_t pages = SpillPages(part.tuples.size());
  // lint:allow(ctx-charging) — restore I/O lands on the shared stream, the
  // mirror of the spill charge above.
  engine_->disk().ReadExtent(spill_file_, 0, pages);
  part.spilled = false;
  resident_size_ += part.tuples.size();
  ++spill_stats_.restores;
  spill_stats_.restored_tuples += part.tuples.size();
  if (options_.restore_events != nullptr) options_.restore_events->Add();
  SyncBrokerCharge();
}

void ResultCache::Insert(int64_t key, Tid tid, Tuple tuple) {
  const size_t p = PartitionOf(key);
  SMOOTHSCAN_CHECK(p >= first_live_partition_);
  Partition& part = partitions_[p];
  if (part.spilled) Restore(p);
  auto [it, inserted] = part.tuples.emplace(Pack(tid), std::move(tuple));
  (void)it;
  if (inserted) {
    ++size_;
    ++resident_size_;
    ++inserts_;
    max_size_ = std::max(max_size_, size_);
    MaybeSpill(p);
    SyncBrokerCharge();
    SpillForPressure(p);
  }
}

std::optional<Tuple> ResultCache::Take(int64_t key, Tid tid) {
  const size_t p = PartitionOf(key);
  if (p < first_live_partition_) return std::nullopt;
  Partition& part = partitions_[p];
  if (part.spilled) {
    // "Overflow files ... are read upon reaching the range keys belong to."
    Restore(p);
  }
  auto it = part.tuples.find(Pack(tid));
  if (it == part.tuples.end()) return std::nullopt;
  Tuple tuple = std::move(it->second);
  part.tuples.erase(it);
  --size_;
  --resident_size_;
  SyncBrokerCharge();
  return tuple;
}

uint64_t ResultCache::EvictBelow(int64_t key) {
  uint64_t evicted = 0;
  // Partition p's keys are < separators_[p]; it is dead once key >= sep[p].
  while (first_live_partition_ < separators_.size() &&
         key >= separators_[first_live_partition_]) {
    Partition& part = partitions_[first_live_partition_];
    evicted += part.tuples.size();
    size_ -= part.tuples.size();
    if (!part.spilled) resident_size_ -= part.tuples.size();
    part.tuples.clear();
    part.spilled = false;
    ++first_live_partition_;
  }
  SyncBrokerCharge();
  return evicted;
}

}  // namespace smoothscan
