// SmoothScan: the paper's statistics-oblivious morphable access path
// (Sections III–IV). Starts from index-driven access and *continuously*
// morphs toward a full table scan as observed selectivity grows — no binary
// switch, no reliance on optimizer statistics.
//
// Modes (Section III-A):
//   Mode 0  Index Scan        — only under non-eager triggers, before the
//                               trigger fires: plain tuple look-ups.
//   Mode 1  Entire Page Probe — every fetched heap page is probed fully,
//                               trading CPU for the elimination of repeated
//                               page accesses (Page ID Cache).
//   Mode 2+ Flattening Access — each index-driven fetch reads a *morphing
//                               region* of adjacent pages with one I/O
//                               request; the region size expands (and, under
//                               Elastic, shrinks) in powers of two.
//
// Policies (Section III-B): Greedy, Selectivity-Increase, Elastic. Region
// growth compares the local selectivity of the last region (Eq. 1) against
// the global selectivity of all pages seen (Eq. 2). We grow on
// `local >= global`: with the paper's strict `>` a uniformly selective table
// would keep local == global forever and freeze the operator in Mode 1,
// contradicting the convergence toward a full scan shown in Figs. 5–7.
//
// Triggers (Section III-C): Eager (default — morph from the first tuple),
// Optimizer-driven (morph once the estimate is violated) and SLA-driven
// (morph at the trigger cardinality derived from the cost model; compute it
// with CostModel::SlaTriggerCardinality and pass it in).

#ifndef SMOOTHSCAN_ACCESS_SMOOTH_SCAN_H_
#define SMOOTHSCAN_ACCESS_SMOOTH_SCAN_H_

#include <memory>
#include <optional>
#include <vector>

#include "access/access_path.h"
#include "access/page_id_cache.h"
#include "access/result_cache.h"
#include "access/tuple_id_cache.h"
#include "index/bplus_tree.h"

namespace smoothscan {

/// Morphing-region growth policy (Section III-B).
enum class MorphPolicy {
  kGreedy,               ///< Double after every index-driven probe.
  kSelectivityIncrease,  ///< Double when local sel >= global sel; never shrink.
  kElastic,              ///< Two-way: double on denser, halve on sparser.
};

/// When morphing begins (Section III-C).
enum class MorphTrigger {
  kEager,            ///< From the first tuple (the paper's default).
  kOptimizerDriven,  ///< After the optimizer's cardinality estimate is hit.
  kSlaDriven,        ///< At the cost-model-derived SLA trigger cardinality.
};

const char* MorphPolicyToString(MorphPolicy policy);
const char* MorphTriggerToString(MorphTrigger trigger);

/// Cross-query Smooth Scan sharing (the shared-SmoothScan mode of the scan
/// sharing subsystem, handed out by ScanSharingCoordinator::SmoothSharingFor):
/// every attached scan over the table feeds one common concurrent Page ID
/// Cache recording pages *some* query has already fully probed. A scan still
/// probes every page its own lap needs — results stay solo-identical — but a
/// page that a peer marked AND that is still resident in the shared pool is
/// taken without an I/O charge: the peer already paid the fetch, and the
/// residency check keeps the free ride honest under eviction. The aggregate
/// I/O of N same-table Smooth Scans thus drops toward one pass while each
/// query's private Page ID Cache keeps its result dedup exact.
struct SharedSmoothGroup {
  SharedSmoothGroup(size_t num_pages, BufferPool* shared_pool, FileId file_id)
      : cache(num_pages), pool(shared_pool), file(file_id) {}

  ConcurrentPageIdCache cache;  ///< Pages fully probed by any attached scan.
  BufferPool* pool;             ///< The shared residency pool (the engine's).
  FileId file;
};

/// One region-growth policy step (Section III-B), shared by the serial scan
/// and the parallel morsel kernel. Compares the finished region's local
/// selectivity (Eq. 1) against the global selectivity of the pages seen
/// *before* it (Eq. 2) and returns the next region size, counting the
/// expansion/shrink into the provided counters.
uint32_t MorphRegionStep(MorphPolicy policy, uint32_t region_pages,
                         uint32_t max_region_pages, uint64_t pages_seen_before,
                         uint64_t pages_with_results_before,
                         uint64_t region_pages_seen,
                         uint64_t region_result_pages, uint64_t* expansions,
                         uint64_t* shrinks);

struct SmoothScanOptions {
  MorphPolicy policy = MorphPolicy::kElastic;
  MorphTrigger trigger = MorphTrigger::kEager;
  /// Policy adopted once a non-eager trigger fires. The paper continues with
  /// Selectivity-Increase after an optimizer trigger and with Greedy after an
  /// SLA trigger (Section VI-D).
  MorphPolicy post_trigger_policy = MorphPolicy::kSelectivityIncrease;
  /// kOptimizerDriven: the estimate whose violation triggers morphing.
  uint64_t optimizer_estimate = 0;
  /// kSlaDriven: trigger cardinality (see CostModel::SlaTriggerCardinality).
  uint64_t sla_trigger_cardinality = 0;
  /// Cap on the morphing region (the paper found 2 K pages = 16 MB optimal).
  uint32_t max_region_pages = 2048;
  /// When false the operator never leaves Mode 1 (Fig. 6's
  /// "Entire Page Probe" curve).
  bool enable_flattening = true;
  /// Maintain the index's interesting order via the Result Cache (needed for
  /// ORDER BY / Merge Join consumers).
  bool preserve_order = false;
  /// Resident-tuple budget of the Result Cache before its furthest key-range
  /// partitions spill to a simulated overflow file (Section IV-A).
  uint64_t result_cache_budget = UINT64_MAX;
  /// Memory broker the Result Cache registers with (null = ungoverned):
  /// under global pressure the cache spills early instead of growing.
  MemoryBroker* broker = nullptr;
  /// Deduplicate pre-trigger results positionally instead of with the Tuple
  /// ID Cache: the paper notes that with a strict (indexkey, TID) ordering in
  /// the secondary index "it is sufficient to remember the last tuple we
  /// reached with the traditional index". Requires a bulk-built (globally
  /// (key, TID)-ordered) index; only meaningful for non-eager triggers.
  bool positional_dedup = false;
  /// Shared-SmoothScan mode: attach this scan to the table's common Page ID
  /// Cache (see SharedSmoothGroup). Null = solo behaviour, bit-identical
  /// accounting to a cold run.
  std::shared_ptr<SharedSmoothGroup> shared_group;
};

/// Operator-specific counters, exposed for the paper's Figs. 6–9 analyses.
struct SmoothScanStats {
  uint64_t card_mode0 = 0;  ///< Tuples produced pre-trigger (plain index).
  uint64_t card_mode1 = 0;  ///< Tuples from single-page probes.
  uint64_t card_mode2 = 0;  ///< Tuples from flattened regions.
  uint64_t probes = 0;      ///< Index-driven region fetches.
  uint64_t expansions = 0;
  uint64_t shrinks = 0;
  uint64_t pages_seen = 0;          ///< Distinct heap pages probed.
  uint64_t pages_with_results = 0;  ///< ... of which contained a result.
  /// Morphing accuracy inputs (Fig. 9b): pages fetched *beyond* the
  /// index-targeted page, and how many of them contained results.
  uint64_t morph_checked_pages = 0;
  uint64_t morph_result_pages = 0;
  /// Result Cache counters (Fig. 9a).
  uint64_t rc_probes = 0;
  uint64_t rc_hits = 0;
  uint64_t rc_inserts = 0;
  uint64_t rc_max_size = 0;
  /// Result Cache spill counters, latched at Close (the cache itself is an
  /// Open-to-Close structure; these survive it for benches and tests).
  uint64_t rc_spills = 0;
  uint64_t rc_pressure_spills = 0;
  uint64_t rc_spilled_tuples = 0;
  uint64_t rc_restored_tuples = 0;
  /// Shared-SmoothScan mode: pages taken for free because a peer query had
  /// already probed them and they were still resident in the shared pool.
  uint64_t shared_free_pages = 0;
  /// Index entries skipped because their target page was already harvested
  /// (Page ID Cache bit set) — the operator-side twin of the registry's
  /// smooth.page_cache_hits counter, serial and parallel.
  uint64_t page_cache_hits = 0;
  bool triggered = false;         ///< Non-eager trigger fired.
  uint64_t trigger_cardinality = 0;

  double MorphingAccuracy() const {
    return morph_checked_pages == 0
               ? 1.0
               : static_cast<double>(morph_result_pages) /
                     static_cast<double>(morph_checked_pages);
  }
  double ResultCacheHitRate() const {
    return rc_probes == 0
               ? 0.0
               : static_cast<double>(rc_hits) / static_cast<double>(rc_probes);
  }
};

class SmoothScan : public AccessPath {
 public:
  SmoothScan(const BPlusTree* index, ScanPredicate predicate,
             SmoothScanOptions options = SmoothScanOptions());

  const char* name() const override { return "SmoothScan"; }

  const SmoothScanOptions& options() const { return options_; }
  const SmoothScanStats& smooth_stats() const { return sstats_; }
  uint32_t current_region_pages() const { return region_pages_; }

 protected:
  Status OpenImpl() override;
  bool NextBatchImpl(TupleBatch* out) override;
  void CloseImpl() override;
  ExecContext DefaultContext() const override;

 private:
  void NextUnordered(TupleBatch* out);
  void NextOrdered(TupleBatch* out);
  /// Pre-trigger plain index-scan step; appends at most one tuple to `out`.
  void Mode0Step(TupleBatch* out);
  /// Fires the trigger when the pre-trigger cardinality bound is exceeded.
  void MaybeTrigger();
  /// Fetches the morphing region anchored at `target` (one I/O request) and
  /// harvests all qualifying tuples from unprocessed pages — into `out`
  /// while it has room, spilling the remainder of the region to `emit_` —
  /// then updates the policy state. `out` may be null (ordered mode inserts
  /// into the Result Cache instead).
  void FetchRegionAndHarvest(PageId target, TupleBatch* out);
  void UpdatePolicy(uint64_t region_pages, uint64_t region_result_pages);

  /// Observed global selectivity so far (Eq. 2), in parts per million — the
  /// integer payload the morph trace instants carry.
  int64_t GlobalSelectivityPpm() const;
  /// Emits the pending Page-ID-Cache skip run (if any) as one coalesced
  /// trace instant. Per-hit instants would flood the ring and evict the
  /// grow/shrink timeline; the counter still counts every hit.
  void FlushCacheSkipRun();

  const BPlusTree* index_;
  ScanPredicate predicate_;
  SmoothScanOptions options_;
  SmoothScanStats sstats_;

  MorphPolicy active_policy_;
  bool morphing_ = false;  ///< False while Mode 0 (pre-trigger) is running.
  uint64_t pretrigger_bound_ = 0;
  // Positional dedup state: last (key, Tid) produced by Mode 0.
  bool m0_any_ = false;
  int64_t m0_last_key_ = 0;
  Tid m0_last_tid_{};

  std::optional<BPlusTree::Iterator> it_;
  std::unique_ptr<PageIdCache> page_cache_;
  std::unique_ptr<TupleIdCache> tuple_cache_;
  std::unique_ptr<ResultCache> result_cache_;
  /// Overflow of harvested-but-not-yet-emitted tuples (a morphing region can
  /// exceed one batch). `emit_pos_` is the consumption cursor — rows are
  /// never erased from the front (that would be quadratic at small batch
  /// sizes); the vector is cleared once fully drained.
  std::vector<Tuple> emit_;
  size_t emit_pos_ = 0;
  uint32_t region_pages_ = 1;

  // Registry handles cached at Open (null when no registry is attached) and
  // the pending coalesced Page-ID-Cache skip run (see FlushCacheSkipRun).
  obs::Counter* c_morph_triggers_ = nullptr;
  obs::Counter* c_region_grows_ = nullptr;
  obs::Counter* c_region_shrinks_ = nullptr;
  obs::Counter* c_page_cache_hits_ = nullptr;
  uint64_t cache_skip_run_ = 0;
};

}  // namespace smoothscan

#endif  // SMOOTHSCAN_ACCESS_SMOOTH_SCAN_H_
