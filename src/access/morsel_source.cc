#include "access/morsel_source.h"

#include "common/status.h"

namespace smoothscan {

std::vector<Morsel> MorselSource::PageRanges(PageId num_pages,
                                             uint32_t morsel_pages) {
  SMOOTHSCAN_CHECK(morsel_pages > 0);
  std::vector<Morsel> morsels;
  for (PageId begin = 0; begin < num_pages; begin += morsel_pages) {
    Morsel m;
    m.index = static_cast<uint32_t>(morsels.size());
    m.page_begin = begin;
    m.page_end = begin + morsel_pages < num_pages ? begin + morsel_pages
                                                  : num_pages;
    morsels.push_back(m);
  }
  return morsels;
}

std::vector<Morsel> MorselSource::KeyRanges(
    const std::vector<int64_t>& bounds) {
  std::vector<Morsel> morsels;
  for (size_t i = 0; i + 1 < bounds.size(); ++i) {
    SMOOTHSCAN_CHECK(bounds[i] <= bounds[i + 1]);
    if (bounds[i] == bounds[i + 1]) continue;  // Empty range.
    Morsel m;
    m.index = static_cast<uint32_t>(morsels.size());
    m.key_lo = bounds[i];
    m.key_hi = bounds[i + 1];
    morsels.push_back(m);
  }
  return morsels;
}

uint32_t MorselSource::SuggestMorselPages(
    uint32_t current_morsel_pages, uint32_t read_ahead_pages,
    uint32_t target_batches_per_morsel) const {
  SMOOTHSCAN_CHECK(read_ahead_pages > 0);
  const MorselFillStats fill = fill_stats();
  if (total_pages_ == 0 || fill.tuples == 0 || fill.batches == 0) {
    return current_morsel_pages;  // Nothing observed; keep the current size.
  }
  const double tuples_per_page =
      static_cast<double>(fill.tuples) / static_cast<double>(total_pages_);
  if (tuples_per_page <= 0.0) return current_morsel_pages;
  const double avg_capacity =
      static_cast<double>(fill.capacity) / static_cast<double>(fill.batches);
  const double want_tuples = target_batches_per_morsel * avg_capacity;
  const double want_pages = want_tuples / tuples_per_page;
  uint64_t pages = static_cast<uint64_t>(want_pages);
  // Align down to the read-ahead window (extent boundaries must still
  // coincide with the serial scan's), but never below one window.
  pages -= pages % read_ahead_pages;
  if (pages < read_ahead_pages) pages = read_ahead_pages;
  if (pages > UINT32_MAX) pages = UINT32_MAX - UINT32_MAX % read_ahead_pages;
  return static_cast<uint32_t>(pages);
}

}  // namespace smoothscan
