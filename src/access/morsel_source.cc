#include "access/morsel_source.h"

#include "common/status.h"

namespace smoothscan {

std::vector<Morsel> MorselSource::PageRanges(PageId num_pages,
                                             uint32_t morsel_pages) {
  SMOOTHSCAN_CHECK(morsel_pages > 0);
  std::vector<Morsel> morsels;
  for (PageId begin = 0; begin < num_pages; begin += morsel_pages) {
    Morsel m;
    m.index = static_cast<uint32_t>(morsels.size());
    m.page_begin = begin;
    m.page_end = begin + morsel_pages < num_pages ? begin + morsel_pages
                                                  : num_pages;
    morsels.push_back(m);
  }
  return morsels;
}

std::vector<Morsel> MorselSource::KeyRanges(
    const std::vector<int64_t>& bounds) {
  std::vector<Morsel> morsels;
  for (size_t i = 0; i + 1 < bounds.size(); ++i) {
    SMOOTHSCAN_CHECK(bounds[i] <= bounds[i + 1]);
    if (bounds[i] == bounds[i + 1]) continue;  // Empty range.
    Morsel m;
    m.index = static_cast<uint32_t>(morsels.size());
    m.key_lo = bounds[i];
    m.key_hi = bounds[i + 1];
    morsels.push_back(m);
  }
  return morsels;
}

}  // namespace smoothscan
