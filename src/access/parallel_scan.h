// ParallelScan: morsel-driven parallel execution of the access paths
// (Leis et al.'s morsel model adapted to the paper's simulated substrate).
//
// A kernel decomposes its scan into a fixed list of morsels — page ranges or
// key ranges, derived from the data alone, never from the worker count — plus
// an optional serial prolog (index leaf walks, TID sorts, pre-switch index
// phases). Workers pull morsels from a shared MorselSource and run each one
// against a private MorselContext (its own simulated disk, buffer pool and
// CPU meter: one logical access stream per morsel). Produced batches flow
// through per-morsel output slots that the consumer drains in morsel order.
//
// Determinism: because the decomposition is DOP-independent and every
// morsel's accounting is stream-local, the simulated cost of a parallel scan
// is bit-identical at any degree of parallelism — contexts merge into the
// engine in morsel order, fixing even the floating-point summation order.
// For the page-range FullScan decomposition the per-morsel streams are seeded
// at `page_begin - 1` (the position the serial scan would have), making the
// parallel cost bit-identical to the *serial* scan as well. Wall-clock time
// is the only thing the workers change.
//
// Ordering: workers emit morsel-locally in scan order, and the consumer sees
// morsels in index order, so a page-range decomposition yields heap order and
// a key-range decomposition yields index-key order — but order-*preserving*
// configurations that need cross-morsel merges (SortScan/SmoothScan with
// preserve_order) are serial-only and rejected by the factories.
//
// Run-to-completion: a started scan always executes every morsel, even when
// the consumer falls behind or Closes mid-stream, and the per-morsel output
// queues are unbounded — peak buffering is bounded by the result set, not by
// a backpressure window. This is deliberate: cancelling or throttling workers
// would make the charges of an abandoned run depend on scheduling, and the
// whole design exists to keep simulated cost schedule-independent. Consumers
// that need only a prefix of a huge result should bound the scan itself
// (predicate or page range), not rely on early Close to shed work.

#ifndef SMOOTHSCAN_ACCESS_PARALLEL_SCAN_H_
#define SMOOTHSCAN_ACCESS_PARALLEL_SCAN_H_

#include <condition_variable>
#include <functional>
#include <memory>
#include <vector>

#include "access/access_path.h"
#include "access/full_scan.h"
#include "access/morsel_source.h"
#include "access/smooth_scan.h"
#include "access/sort_scan.h"
#include "access/switch_scan.h"
#include "common/latch_rank.h"
#include "common/thread_annotations.h"
#include "exec/task_scheduler.h"
#include "mem/batch_pool.h"
#include "storage/exec_context.h"

namespace smoothscan {

struct ParallelScanOptions {
  /// Workers draining the morsel queue (1 = serial schedule, same cost).
  uint32_t dop = 1;
  /// Page-range morsel size; rounded to a multiple of the scan's read-ahead
  /// window so parallel extent boundaries coincide with the serial scan's.
  uint32_t morsel_pages = 128;
  /// Cap on the key-range decomposition of index-driven scans.
  uint32_t max_key_morsels = 32;
  /// Optional shared worker pool; the scan owns a private one when null.
  TaskScheduler* scheduler = nullptr;
  /// Where the settled per-morsel accounting merges (both set, or neither —
  /// enforced). Null: the engine's shared stream, as before. The multi-query
  /// engine points these at the query's private stack so that concurrent
  /// queries never interleave their merges into one meter.
  SimDisk* account_disk = nullptr;
  CpuMeter* account_cpu = nullptr;
  /// Optional shared pool mirrored by every morsel (and planning) pool, so a
  /// parallel query's residency and pins land in it too (no accounting
  /// there). See BufferPool::SetMirror.
  BufferPool* mirror_pool = nullptr;
  /// Recycled-batch pool the kernels draw output batches from. Null: the
  /// scan owns a private pool that persists across Open cycles (steady-state
  /// reuse). An external pool lets one query's operators share a free list.
  BatchPool* batch_pool = nullptr;
  /// Per-query execution-memory account charged for the owned pool's warm
  /// batches (ignored when `batch_pool` is external — that pool already has
  /// its own account). Accounting only; simulated cost never changes.
  QueryMemoryScope* mem = nullptr;
  /// Ablation knob for the owned pool: false reverts to allocate-per-batch
  /// (bench_mem_governance's baseline). No effect on an external pool.
  bool recycle_batches = true;
  /// Trace collector for per-morsel worker spans ("morsel" B/E on each
  /// worker's ring, stamped with `trace_query_id`). Null = no tracing.
  /// Bookkeeping only — never touches morsel accounting.
  obs::TraceCollector* trace = nullptr;
  uint64_t trace_query_id = 0;
  /// Registry counters for the owned batch pool (ignored for an external
  /// pool, which carries its own sink in its own options).
  BatchPoolMetricsSink batch_metrics;
  /// Registry counters fed by every morsel (and planning) pool's hit/miss
  /// bumps — the pools that actually do accounting; the mirror pool does
  /// none. Relaxed counter adds only; simulated cost never changes.
  BufferPoolMetricsSink pool_metrics;
};

/// The path-specific logic of a parallel scan. Plan() runs serially on the
/// consumer thread against the planning stream; RunMorsel() runs once per
/// morsel, concurrently, each call against its own stream.
class ParallelScanKernel {
 public:
  /// Kernels Acquire() batches from ctx.batch_pool, fill, and emit; the
  /// consumer (or the pool handle's destructor) releases them — so batch
  /// storage cycles between producers and consumer without heap traffic.
  using EmitFn = std::function<void(PooledBatch&&)>;

  virtual ~ParallelScanKernel() = default;
  virtual const char* name() const = 0;

  /// Observability bind, called once per Open cycle (before Plan) with the
  /// owning path's registry — kernels resolve their live counters here, the
  /// parallel analogue of the serial operators' resolve-at-Open. Bookkeeping
  /// only; default no-op. `metrics` may be null.
  virtual void BindObs(obs::MetricsRegistry* metrics) { (void)metrics; }

  /// The smooth kernel's operator counters, merged over all morsels in
  /// morsel order (valid once the cycle settled — after the consumer drained
  /// the scan or Close). Empty for every other kernel. Lets tests reconcile
  /// the registry's counter-backed smooth.* metrics against the operator's
  /// own bookkeeping at any DOP.
  virtual SmoothScanStats smooth_stats() const { return SmoothScanStats(); }

  /// Serial prolog: builds the morsel list; may emit prolog tuples and
  /// accumulate prolog counters. Charged to the planning stream.
  virtual std::vector<Morsel> Plan(const ExecContext& planning,
                                   const EmitFn& emit,
                                   AccessPathStats* stats) = 0;

  /// Runs one morsel. Must touch only morsel-local and read-only state (plus
  /// explicitly thread-safe shared structures); charges `ctx`.
  virtual AccessPathStats RunMorsel(const Morsel& morsel,
                                    const ExecContext& ctx,
                                    const EmitFn& emit) = 0;
};

/// AccessPath adapter running a kernel on a worker pool (see file comment).
/// Also usable as the source below a Gather exchange operator.
class ParallelScan : public AccessPath {
 public:
  ParallelScan(Engine* engine, std::unique_ptr<ParallelScanKernel> kernel,
               ParallelScanOptions options);
  ~ParallelScan() override;

  const char* name() const override { return kernel_->name(); }
  uint32_t dop() const { return options_.dop; }
  /// Valid after Open().
  size_t num_morsels() const { return source_ != nullptr ? source_->size() : 0; }
  const ParallelScanKernel* kernel() const { return kernel_.get(); }
  /// The batch pool the kernels draw from (owned or external).
  const BatchPool* batch_pool() const { return pool_; }
  /// The morsel dispenser of the current/last Open cycle (fill-rate
  /// telemetry and SuggestMorselPages live here). Null before first Open.
  const MorselSource* morsel_source() const { return source_.get(); }

 protected:
  Status OpenImpl() override;
  bool NextBatchImpl(TupleBatch* out) override;
  void CloseImpl() override;
  ExecContext DefaultContext() const override;

 private:
  /// Per-slot output queue: slot 0 is the prolog, slot i+1 is morsel i. A
  /// vector + head cursor instead of a deque: entries are tiny pool handles,
  /// pushes amortize into the retained capacity, and a drained slot frees in
  /// one shot.
  struct Slot {
    std::vector<PooledBatch> batches;
    size_t head = 0;
    bool done = false;
  };

  TaskScheduler* scheduler();
  void EmitTo(size_t slot, PooledBatch&& batch) EXCLUDES(mu_);
  /// Waits for the workers and merges all stream accounting into the engine
  /// (planning first, then morsels in index order). Idempotent per cycle.
  void Finalize();

  Engine* engine_;
  std::unique_ptr<ParallelScanKernel> kernel_;
  ParallelScanOptions options_;
  std::unique_ptr<TaskScheduler> owned_scheduler_;
  std::unique_ptr<BatchPool> owned_pool_;
  BatchPool* pool_ = nullptr;

  std::unique_ptr<MorselSource> source_;
  std::unique_ptr<MorselContext> planning_;
  std::vector<std::unique_ptr<MorselContext>> contexts_;
  std::vector<AccessPathStats> morsel_stats_;
  AccessPathStats prolog_stats_;
  std::shared_ptr<TaskScheduler::TaskGroup> group_;
  bool finalized_ = true;

  /// Clearing a drained slot under this latch runs PooledBatch destructors,
  /// which release into the BatchPool (and possibly the broker) — hence its
  /// rank above both.
  latch::Latch mu_{latch::LatchRank::kParallelScan, "ParallelScan::mu_"};
  std::condition_variable_any cv_;
  std::vector<Slot> slots_ GUARDED_BY(mu_);
  size_t emit_slot_ GUARDED_BY(mu_) = 0;
  // Consumer-thread-only staging of the batch being drained; never touched by
  // workers, so deliberately outside the latch.
  PooledBatch pending_;
  size_t pending_pos_ = 0;
};

/// Kernel factories. Each returns null for configurations whose semantics
/// require a serial scan (order preservation, non-eager Smooth Scan
/// triggers); callers fall back to the serial operator.
std::unique_ptr<ParallelScan> MakeParallelFullScan(
    const HeapFile* heap, ScanPredicate predicate, FullScanOptions scan_options,
    ParallelScanOptions options);
std::unique_ptr<ParallelScan> MakeParallelIndexScan(
    const BPlusTree* index, ScanPredicate predicate,
    ParallelScanOptions options);
std::unique_ptr<ParallelScan> MakeParallelSortScan(
    const BPlusTree* index, ScanPredicate predicate,
    SortScanOptions scan_options, ParallelScanOptions options);
std::unique_ptr<ParallelScan> MakeParallelSwitchScan(
    const BPlusTree* index, ScanPredicate predicate,
    SwitchScanOptions scan_options, ParallelScanOptions options);
std::unique_ptr<ParallelScan> MakeParallelSmoothScan(
    const BPlusTree* index, ScanPredicate predicate,
    SmoothScanOptions scan_options, ParallelScanOptions options);

}  // namespace smoothscan

#endif  // SMOOTHSCAN_ACCESS_PARALLEL_SCAN_H_
