#include "tpch/tpch_gen.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"

namespace smoothscan::tpch {

int64_t DateDays(int year, int month, int day) {
  // Howard Hinnant's days_from_civil.
  year -= month <= 2;
  const int era = (year >= 0 ? year : year - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(year - era * 400);
  const unsigned doy =
      (153u * static_cast<unsigned>(month + (month > 2 ? -3 : 9)) + 2) / 5 +
      static_cast<unsigned>(day) - 1;
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return static_cast<int64_t>(era) * 146097 +
         static_cast<int64_t>(doe) - 719468;
}

namespace {

const char* const kPriorities[] = {"1-URGENT", "2-HIGH", "3-MEDIUM",
                                   "4-NOT SPECIFIED", "5-LOW"};
const char* const kSegments[] = {"AUTOMOBILE", "BUILDING", "FURNITURE",
                                 "HOUSEHOLD", "MACHINERY"};
const char* const kShipModes[] = {"AIR", "FOB", "MAIL", "RAIL",
                                  "REG AIR", "SHIP", "TRUCK"};
const char* const kTypePrefixes[] = {"PROMO", "STANDARD", "SMALL",
                                     "MEDIUM", "LARGE", "ECONOMY"};
const char* const kTypeMids[] = {"ANODIZED", "BURNISHED", "PLATED",
                                 "POLISHED", "BRUSHED"};
const char* const kTypeSuffixes[] = {"TIN", "NICKEL", "BRASS", "STEEL",
                                     "COPPER"};
const char* const kNations[] = {
    "ALGERIA", "ARGENTINA", "BRAZIL",  "CANADA",       "EGYPT",
    "ETHIOPIA", "FRANCE",   "GERMANY", "INDIA",        "INDONESIA",
    "IRAN",     "IRAQ",     "JAPAN",   "JORDAN",       "KENYA",
    "MOROCCO",  "MOZAMBIQUE", "PERU",  "CHINA",        "ROMANIA",
    "SAUDI ARABIA", "VIETNAM", "RUSSIA", "UNITED KINGDOM", "UNITED STATES"};
const char* const kRegions[] = {"AFRICA", "AMERICA", "ASIA", "EUROPE",
                                "MIDDLE EAST"};

template <size_t N>
const char* Pick(Rng* rng, const char* const (&arr)[N]) {
  return arr[rng->UniformInt(0, static_cast<int64_t>(N) - 1)];
}

Schema LineitemSchema() {
  return Schema({{"l_orderkey", ValueType::kInt64},
                 {"l_partkey", ValueType::kInt64},
                 {"l_suppkey", ValueType::kInt64},
                 {"l_linenumber", ValueType::kInt64},
                 {"l_quantity", ValueType::kDouble},
                 {"l_extendedprice", ValueType::kDouble},
                 {"l_discount", ValueType::kDouble},
                 {"l_tax", ValueType::kDouble},
                 {"l_returnflag", ValueType::kString},
                 {"l_linestatus", ValueType::kString},
                 {"l_shipdate", ValueType::kDate},
                 {"l_commitdate", ValueType::kDate},
                 {"l_receiptdate", ValueType::kDate},
                 {"l_shipmode", ValueType::kString}});
}

Schema OrdersSchema() {
  return Schema({{"o_orderkey", ValueType::kInt64},
                 {"o_custkey", ValueType::kInt64},
                 {"o_orderstatus", ValueType::kString},
                 {"o_totalprice", ValueType::kDouble},
                 {"o_orderdate", ValueType::kDate},
                 {"o_orderpriority", ValueType::kString}});
}

Schema CustomerSchema() {
  return Schema({{"c_custkey", ValueType::kInt64},
                 {"c_nationkey", ValueType::kInt64},
                 {"c_acctbal", ValueType::kDouble},
                 {"c_mktsegment", ValueType::kString}});
}

Schema SupplierSchema() {
  return Schema({{"s_suppkey", ValueType::kInt64},
                 {"s_nationkey", ValueType::kInt64},
                 {"s_acctbal", ValueType::kDouble}});
}

Schema NationSchema() {
  return Schema({{"n_nationkey", ValueType::kInt64},
                 {"n_regionkey", ValueType::kInt64},
                 {"n_name", ValueType::kString}});
}

Schema RegionSchema() {
  return Schema({{"r_regionkey", ValueType::kInt64},
                 {"r_name", ValueType::kString}});
}

Schema PartSchema() {
  return Schema({{"p_partkey", ValueType::kInt64},
                 {"p_retailprice", ValueType::kDouble},
                 {"p_type", ValueType::kString}});
}

Schema PartsuppSchema() {
  return Schema({{"ps_partkey", ValueType::kInt64},
                 {"ps_suppkey", ValueType::kInt64},
                 {"ps_availqty", ValueType::kInt64},
                 {"ps_supplycost", ValueType::kDouble}});
}

}  // namespace

TpchDb::TpchDb(Engine* engine, const TpchSpec& spec)
    : engine_(engine), spec_(spec) {
  SMOOTHSCAN_CHECK(spec.scale_factor > 0.0);
  const double sf = spec.scale_factor;
  const uint64_t num_orders =
      std::max<uint64_t>(10, static_cast<uint64_t>(1500000.0 * sf));
  const uint64_t num_customers =
      std::max<uint64_t>(5, static_cast<uint64_t>(150000.0 * sf));
  const uint64_t num_parts =
      std::max<uint64_t>(5, static_cast<uint64_t>(200000.0 * sf));
  const uint64_t num_suppliers =
      std::max<uint64_t>(2, static_cast<uint64_t>(10000.0 * sf));

  Rng rng(spec.seed);

  // region / nation.
  region_ = std::make_unique<HeapFile>(engine, "region", RegionSchema());
  for (int r = 0; r < 5; ++r) {
    SMOOTHSCAN_CHECK(region_
                         ->Append({Value::Int64(r),
                                   Value::String(kRegions[r])})
                         .ok());
  }
  nation_ = std::make_unique<HeapFile>(engine, "nation", NationSchema());
  for (int n = 0; n < 25; ++n) {
    SMOOTHSCAN_CHECK(nation_
                         ->Append({Value::Int64(n), Value::Int64(n % 5),
                                   Value::String(kNations[n])})
                         .ok());
  }

  // supplier.
  supplier_ = std::make_unique<HeapFile>(engine, "supplier", SupplierSchema());
  for (uint64_t s = 1; s <= num_suppliers; ++s) {
    SMOOTHSCAN_CHECK(supplier_
                         ->Append({Value::Int64(static_cast<int64_t>(s)),
                                   Value::Int64(rng.UniformInt(0, 24)),
                                   Value::Double(rng.UniformDouble(-999, 9999))})
                         .ok());
  }

  // customer.
  customer_ = std::make_unique<HeapFile>(engine, "customer", CustomerSchema());
  for (uint64_t c = 1; c <= num_customers; ++c) {
    SMOOTHSCAN_CHECK(customer_
                         ->Append({Value::Int64(static_cast<int64_t>(c)),
                                   Value::Int64(rng.UniformInt(0, 24)),
                                   Value::Double(rng.UniformDouble(-999, 9999)),
                                   Value::String(Pick(&rng, kSegments))})
                         .ok());
  }

  // part.
  part_ = std::make_unique<HeapFile>(engine, "part", PartSchema());
  for (uint64_t p = 1; p <= num_parts; ++p) {
    std::string type = Pick(&rng, kTypePrefixes);
    type += ' ';
    type += Pick(&rng, kTypeMids);
    type += ' ';
    type += Pick(&rng, kTypeSuffixes);
    SMOOTHSCAN_CHECK(
        part_
            ->Append({Value::Int64(static_cast<int64_t>(p)),
                      Value::Double(rng.UniformDouble(900, 2000)),
                      Value::String(std::move(type))})
            .ok());
  }

  // partsupp: 4 suppliers per part.
  partsupp_ = std::make_unique<HeapFile>(engine, "partsupp", PartsuppSchema());
  for (uint64_t p = 1; p <= num_parts; ++p) {
    for (int k = 0; k < 4; ++k) {
      SMOOTHSCAN_CHECK(
          partsupp_
              ->Append({Value::Int64(static_cast<int64_t>(p)),
                        Value::Int64(rng.UniformInt(
                            1, static_cast<int64_t>(num_suppliers))),
                        Value::Int64(rng.UniformInt(1, 9999)),
                        Value::Double(rng.UniformDouble(1, 1000))})
              .ok());
    }
  }

  // orders + lineitem.
  const int64_t kOrderDateLo = DateDays(1992, 1, 1);
  const int64_t kOrderDateHi = DateDays(1998, 8, 2);
  orders_ = std::make_unique<HeapFile>(engine, "orders", OrdersSchema());
  lineitem_ = std::make_unique<HeapFile>(engine, "lineitem", LineitemSchema());
  for (uint64_t o = 1; o <= num_orders; ++o) {
    const int64_t orderdate = rng.UniformInt(kOrderDateLo, kOrderDateHi);
    const int64_t custkey =
        rng.UniformInt(1, static_cast<int64_t>(num_customers));
    const int num_lines = static_cast<int>(rng.UniformInt(1, 7));
    double total = 0.0;
    for (int l = 1; l <= num_lines; ++l) {
      const double quantity = static_cast<double>(rng.UniformInt(1, 50));
      const double price = quantity * rng.UniformDouble(900.0, 2000.0) / 10.0;
      const double discount =
          static_cast<double>(rng.UniformInt(0, 10)) / 100.0;
      const double tax = static_cast<double>(rng.UniformInt(0, 8)) / 100.0;
      const int64_t shipdate = orderdate + rng.UniformInt(1, 121);
      const int64_t commitdate = orderdate + rng.UniformInt(30, 90);
      const int64_t receiptdate = shipdate + rng.UniformInt(1, 30);
      const bool shipped_by_cutoff = shipdate <= DateDays(1995, 6, 17);
      total += price * (1.0 - discount) * (1.0 + tax);
      SMOOTHSCAN_CHECK(
          lineitem_
              ->Append({Value::Int64(static_cast<int64_t>(o)),
                        Value::Int64(rng.UniformInt(
                            1, static_cast<int64_t>(num_parts))),
                        Value::Int64(rng.UniformInt(
                            1, static_cast<int64_t>(num_suppliers))),
                        Value::Int64(l), Value::Double(quantity),
                        Value::Double(price), Value::Double(discount),
                        Value::Double(tax),
                        Value::String(rng.Bernoulli(0.25)
                                          ? "R"
                                          : (rng.Bernoulli(0.33) ? "A" : "N")),
                        Value::String(shipped_by_cutoff ? "F" : "O"),
                        Value::Date(shipdate), Value::Date(commitdate),
                        Value::Date(receiptdate),
                        Value::String(Pick(&rng, kShipModes))})
              .ok());
    }
    SMOOTHSCAN_CHECK(
        orders_
            ->Append({Value::Int64(static_cast<int64_t>(o)),
                      Value::Int64(custkey),
                      Value::String(rng.Bernoulli(0.5) ? "F" : "O"),
                      Value::Double(total), Value::Date(orderdate),
                      Value::String(Pick(&rng, kPriorities))})
            .ok());
  }

  // The tuned index set.
  l_shipdate_idx_ = std::make_unique<BPlusTree>(
      engine, "lineitem_shipdate_idx", lineitem_.get(), lineitem::kShipDate);
  l_shipdate_idx_->BulkBuild();
  o_orderkey_idx_ = std::make_unique<BPlusTree>(
      engine, "orders_pk_idx", orders_.get(), orders::kOrderKey);
  o_orderkey_idx_->BulkBuild();
  p_partkey_idx_ = std::make_unique<BPlusTree>(engine, "part_pk_idx",
                                               part_.get(), part::kPartKey);
  p_partkey_idx_->BulkBuild();
  s_suppkey_idx_ = std::make_unique<BPlusTree>(
      engine, "supplier_pk_idx", supplier_.get(), supplier::kSuppKey);
  s_suppkey_idx_->BulkBuild();
  c_custkey_idx_ = std::make_unique<BPlusTree>(
      engine, "customer_pk_idx", customer_.get(), customer::kCustKey);
  c_custkey_idx_->BulkBuild();
}

}  // namespace smoothscan::tpch
