// Deterministic dbgen-style TPC-H data generator (Section VI-A/B substrate).
// Generates the eight TPC-H tables at a configurable scale factor with the
// value distributions the paper's five evaluated queries depend on (date
// ranges, discount/quantity domains, PROMO part types, commit-vs-receipt
// ordering), plus the index set the commercial tuning tool proposed: a
// non-clustered index on LINEITEM(l_shipdate) and primary-key indexes used by
// the nested-loop joins.

#ifndef SMOOTHSCAN_TPCH_TPCH_GEN_H_
#define SMOOTHSCAN_TPCH_TPCH_GEN_H_

#include <cstdint>
#include <memory>

#include "index/bplus_tree.h"
#include "storage/engine.h"
#include "storage/heap_file.h"

namespace smoothscan::tpch {

/// Days since 1970-01-01 for a civil date (proleptic Gregorian).
int64_t DateDays(int year, int month, int day);

// ---- Column indexes (kept in sync with the schemas in tpch_gen.cc) ----
namespace lineitem {
inline constexpr int kOrderKey = 0;
inline constexpr int kPartKey = 1;
inline constexpr int kSuppKey = 2;
inline constexpr int kLineNumber = 3;
inline constexpr int kQuantity = 4;
inline constexpr int kExtendedPrice = 5;
inline constexpr int kDiscount = 6;
inline constexpr int kTax = 7;
inline constexpr int kReturnFlag = 8;
inline constexpr int kLineStatus = 9;
inline constexpr int kShipDate = 10;
inline constexpr int kCommitDate = 11;
inline constexpr int kReceiptDate = 12;
inline constexpr int kShipMode = 13;
inline constexpr int kNumColumns = 14;
}  // namespace lineitem

namespace orders {
inline constexpr int kOrderKey = 0;
inline constexpr int kCustKey = 1;
inline constexpr int kOrderStatus = 2;
inline constexpr int kTotalPrice = 3;
inline constexpr int kOrderDate = 4;
inline constexpr int kOrderPriority = 5;
inline constexpr int kNumColumns = 6;
}  // namespace orders

namespace customer {
inline constexpr int kCustKey = 0;
inline constexpr int kNationKey = 1;
inline constexpr int kAcctBal = 2;
inline constexpr int kMktSegment = 3;
inline constexpr int kNumColumns = 4;
}  // namespace customer

namespace supplier {
inline constexpr int kSuppKey = 0;
inline constexpr int kNationKey = 1;
inline constexpr int kAcctBal = 2;
inline constexpr int kNumColumns = 3;
}  // namespace supplier

namespace nation {
inline constexpr int kNationKey = 0;
inline constexpr int kRegionKey = 1;
inline constexpr int kName = 2;
inline constexpr int kNumColumns = 3;
}  // namespace nation

namespace region {
inline constexpr int kRegionKey = 0;
inline constexpr int kName = 1;
inline constexpr int kNumColumns = 2;
}  // namespace region

namespace part {
inline constexpr int kPartKey = 0;
inline constexpr int kRetailPrice = 1;
inline constexpr int kType = 2;
inline constexpr int kNumColumns = 3;
}  // namespace part

namespace partsupp {
inline constexpr int kPartKey = 0;
inline constexpr int kSuppKey = 1;
inline constexpr int kAvailQty = 2;
inline constexpr int kSupplyCost = 3;
inline constexpr int kNumColumns = 4;
}  // namespace partsupp

struct TpchSpec {
  /// TPC-H scale factor. SF 1 = 6 M lineitems; the paper uses SF 10, this
  /// repository's benchmarks default to a laptop-scale fraction.
  double scale_factor = 0.01;
  uint64_t seed = 19920101;
};

/// The generated database: heaps plus the tuned index set.
class TpchDb {
 public:
  TpchDb(Engine* engine, const TpchSpec& spec);

  const HeapFile& lineitem() const { return *lineitem_; }
  const HeapFile& orders() const { return *orders_; }
  const HeapFile& customer() const { return *customer_; }
  const HeapFile& supplier() const { return *supplier_; }
  const HeapFile& nation() const { return *nation_; }
  const HeapFile& region() const { return *region_; }
  const HeapFile& part() const { return *part_; }
  const HeapFile& partsupp() const { return *partsupp_; }

  /// The tuning-tool index under study: LINEITEM(l_shipdate), non-clustered.
  const BPlusTree& lineitem_shipdate_index() const { return *l_shipdate_idx_; }
  /// PK indexes for the nested-loop inner sides.
  const BPlusTree& orders_pk_index() const { return *o_orderkey_idx_; }
  const BPlusTree& part_pk_index() const { return *p_partkey_idx_; }
  const BPlusTree& supplier_pk_index() const { return *s_suppkey_idx_; }
  const BPlusTree& customer_pk_index() const { return *c_custkey_idx_; }

  Engine* engine() const { return engine_; }
  const TpchSpec& spec() const { return spec_; }

 private:
  Engine* engine_;
  TpchSpec spec_;
  std::unique_ptr<HeapFile> lineitem_;
  std::unique_ptr<HeapFile> orders_;
  std::unique_ptr<HeapFile> customer_;
  std::unique_ptr<HeapFile> supplier_;
  std::unique_ptr<HeapFile> nation_;
  std::unique_ptr<HeapFile> region_;
  std::unique_ptr<HeapFile> part_;
  std::unique_ptr<HeapFile> partsupp_;
  std::unique_ptr<BPlusTree> l_shipdate_idx_;
  std::unique_ptr<BPlusTree> o_orderkey_idx_;
  std::unique_ptr<BPlusTree> p_partkey_idx_;
  std::unique_ptr<BPlusTree> s_suppkey_idx_;
  std::unique_ptr<BPlusTree> c_custkey_idx_;
};

}  // namespace smoothscan::tpch

#endif  // SMOOTHSCAN_TPCH_TPCH_GEN_H_
