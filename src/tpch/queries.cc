#include "tpch/queries.h"

#include <string>

#include "exec/gather.h"
#include "exec/operators.h"

namespace smoothscan::tpch {

namespace {

namespace li = lineitem;
namespace ord = orders;

/// Builds the LINEITEM access path of `kind` for `pred`, exposing the raw
/// pointer so stats survive until after the drain. With `dop > 1` the leaf
/// becomes a morsel-driven parallel scan below a Gather exchange; the rest of
/// the plan (and its simulated cost) is unchanged — only wall time drops.
std::unique_ptr<Operator> MakeLineitemScan(const TpchDb& db,
                                           const ScanPredicate& pred,
                                           PathKind kind, bool need_order,
                                           uint32_t dop,
                                           const AccessPath** out_path) {
  if (dop >= 1) {
    ParallelScanOptions parallel;
    parallel.dop = dop;
    std::unique_ptr<ParallelScan> par =
        MakeParallelPath(kind, &db.lineitem_shipdate_index(), pred, need_order,
                         /*estimate=*/0, parallel);
    if (par != nullptr) {
      *out_path = par.get();
      return std::make_unique<GatherOp>(std::move(par));
    }
  }
  std::unique_ptr<AccessPath> path =
      MakePath(kind, &db.lineitem_shipdate_index(), pred, need_order,
               /*estimate=*/0);
  *out_path = path.get();
  return std::make_unique<ScanOp>(std::move(path));
}

/// Trivially-true scan over a dimension table (always a full scan).
std::unique_ptr<Operator> DimScan(const HeapFile& heap) {
  return std::make_unique<ScanOp>(
      std::make_unique<FullScan>(&heap, ScanPredicate{}));
}

QueryOutput Finish(std::unique_ptr<Operator> root, const AccessPath* li_path) {
  QueryOutput out;
  SMOOTHSCAN_CHECK(root->Open().ok());
  Drain(root.get(), &out.rows);
  root->Close();
  if (li_path != nullptr) out.lineitem_stats = li_path->stats();
  return out;
}

}  // namespace

QueryOutput RunQ1(const TpchDb& db, PathKind lineitem_path,
                  uint32_t dop) {
  Engine* engine = db.engine();
  // l_shipdate <= date '1998-12-01' - 90 days.
  ScanPredicate pred;
  pred.column = li::kShipDate;
  pred.lo = DateDays(1992, 1, 1);
  pred.hi = DateDays(1998, 9, 2) + 1;

  const AccessPath* li_path = nullptr;
  std::unique_ptr<Operator> scan =
      MakeLineitemScan(db, pred, lineitem_path, /*need_order=*/false, dop,
                       &li_path);

  std::vector<AggSpec> aggs;
  aggs.push_back({AggFn::kSum, [](const Tuple& t) {
                    return t[li::kQuantity].AsDouble();
                  }});
  aggs.push_back({AggFn::kSum, [](const Tuple& t) {
                    return t[li::kExtendedPrice].AsDouble();
                  }});
  aggs.push_back({AggFn::kSum, [](const Tuple& t) {
                    return t[li::kExtendedPrice].AsDouble() *
                           (1.0 - t[li::kDiscount].AsDouble());
                  }});
  aggs.push_back({AggFn::kSum, [](const Tuple& t) {
                    return t[li::kExtendedPrice].AsDouble() *
                           (1.0 - t[li::kDiscount].AsDouble()) *
                           (1.0 + t[li::kTax].AsDouble());
                  }});
  aggs.push_back({AggFn::kAvg, [](const Tuple& t) {
                    return t[li::kQuantity].AsDouble();
                  }});
  aggs.push_back({AggFn::kAvg, [](const Tuple& t) {
                    return t[li::kExtendedPrice].AsDouble();
                  }});
  aggs.push_back({AggFn::kAvg, [](const Tuple& t) {
                    return t[li::kDiscount].AsDouble();
                  }});
  aggs.push_back({AggFn::kCount, nullptr});

  auto agg = std::make_unique<HashAggregateOp>(
      engine, std::move(scan),
      std::vector<int>{li::kReturnFlag, li::kLineStatus}, std::move(aggs));
  auto sort = std::make_unique<SortOp>(
      engine, std::move(agg), [](const Tuple& a, const Tuple& b) {
        const int c = a[0].Compare(b[0]);
        return c != 0 ? c < 0 : a[1].Compare(b[1]) < 0;
      });
  return Finish(std::move(sort), li_path);
}

QueryOutput RunQ4(const TpchDb& db, PathKind lineitem_path,
                  uint32_t dop) {
  Engine* engine = db.engine();
  // LINEITEM side: l_commitdate < l_receiptdate (~65% of the table); the
  // shipdate range is unbounded, so an index-driven path walks the whole
  // leaf level — the situation where the access-path choice matters most.
  ScanPredicate pred;
  pred.column = li::kShipDate;
  pred.residual = [](const Tuple& t) {
    return t[li::kCommitDate].AsInt64() < t[li::kReceiptDate].AsInt64();
  };

  const AccessPath* li_path = nullptr;
  std::unique_ptr<Operator> scan =
      MakeLineitemScan(db, pred, lineitem_path, /*need_order=*/false, dop,
                       &li_path);

  // INLJ with ORDERS on the ORDERS PK; joined = L(14) ++ O(6).
  auto join = std::make_unique<IndexNestedLoopJoinOp>(
      std::move(scan), &db.orders_pk_index(), li::kOrderKey);
  constexpr int kJoinedOrderDate = li::kNumColumns + ord::kOrderDate;
  constexpr int kJoinedPriority = li::kNumColumns + ord::kOrderPriority;

  const int64_t date_lo = DateDays(1993, 7, 1);
  const int64_t date_hi = DateDays(1993, 10, 1);
  auto filter = std::make_unique<FilterOp>(
      engine, std::move(join), [=](const Tuple& t) {
        const int64_t d = t[kJoinedOrderDate].AsInt64();
        return d >= date_lo && d < date_hi;
      });

  // EXISTS semantics: distinct orders first, then count per priority.
  auto distinct = std::make_unique<HashAggregateOp>(
      engine, std::move(filter),
      std::vector<int>{li::kOrderKey, kJoinedPriority}, std::vector<AggSpec>{});
  auto count = std::make_unique<HashAggregateOp>(
      engine, std::move(distinct), std::vector<int>{1},
      std::vector<AggSpec>{{AggFn::kCount, nullptr}});
  auto sort = std::make_unique<SortOp>(
      engine, std::move(count), [](const Tuple& a, const Tuple& b) {
        return a[0].Compare(b[0]) < 0;
      });
  return Finish(std::move(sort), li_path);
}

QueryOutput RunQ6(const TpchDb& db, PathKind lineitem_path,
                  uint32_t dop) {
  Engine* engine = db.engine();
  ScanPredicate pred;
  pred.column = li::kShipDate;
  pred.lo = DateDays(1994, 1, 1);
  pred.hi = DateDays(1995, 1, 1);
  pred.residual = [](const Tuple& t) {
    const double discount = t[li::kDiscount].AsDouble();
    return discount >= 0.05 - 1e-9 && discount <= 0.07 + 1e-9 &&
           t[li::kQuantity].AsDouble() < 24.0;
  };

  const AccessPath* li_path = nullptr;
  std::unique_ptr<Operator> scan =
      MakeLineitemScan(db, pred, lineitem_path, /*need_order=*/false, dop,
                       &li_path);

  std::vector<AggSpec> aggs;
  aggs.push_back({AggFn::kSum, [](const Tuple& t) {
                    return t[li::kExtendedPrice].AsDouble() *
                           t[li::kDiscount].AsDouble();
                  }});
  auto agg = std::make_unique<HashAggregateOp>(
      engine, std::move(scan), std::vector<int>{}, std::move(aggs));
  return Finish(std::move(agg), li_path);
}

QueryOutput RunQ7(const TpchDb& db, PathKind lineitem_path,
                  uint32_t dop) {
  Engine* engine = db.engine();
  ScanPredicate pred;
  pred.column = li::kShipDate;
  pred.lo = DateDays(1995, 1, 1);
  pred.hi = DateDays(1996, 12, 31) + 1;

  const AccessPath* li_path = nullptr;
  std::unique_ptr<Operator> scan =
      MakeLineitemScan(db, pred, lineitem_path, /*need_order=*/false, dop,
                       &li_path);

  // L(14) ++ O(6) = 20 columns.
  auto j1 = std::make_unique<IndexNestedLoopJoinOp>(
      std::move(scan), &db.orders_pk_index(), li::kOrderKey);
  constexpr int kOCustKey = li::kNumColumns + ord::kCustKey;  // 15

  // ++ CUSTOMER(4) = 24 columns (customer at 20).
  auto j2 = std::make_unique<HashJoinOp>(engine, std::move(j1),
                                         DimScan(db.customer()), kOCustKey,
                                         customer::kCustKey);
  constexpr int kCNationKey = 20 + customer::kNationKey;  // 21

  // ++ SUPPLIER(3) = 27 columns (supplier at 24).
  auto j3 = std::make_unique<HashJoinOp>(engine, std::move(j2),
                                         DimScan(db.supplier()), li::kSuppKey,
                                         supplier::kSuppKey);
  constexpr int kSNationKey = 24 + supplier::kNationKey;  // 25

  // ++ NATION n1 (supplier nation, 3) = 30 columns (n1 at 27).
  auto j4 = std::make_unique<HashJoinOp>(engine, std::move(j3),
                                         DimScan(db.nation()), kSNationKey,
                                         nation::kNationKey);
  constexpr int kN1Name = 27 + nation::kName;  // 29

  // ++ NATION n2 (customer nation, 3) = 33 columns (n2 at 30).
  auto j5 = std::make_unique<HashJoinOp>(engine, std::move(j4),
                                         DimScan(db.nation()), kCNationKey,
                                         nation::kNationKey);
  constexpr int kN2Name = 30 + nation::kName;  // 32

  auto filter = std::make_unique<FilterOp>(
      engine, std::move(j5), [=](const Tuple& t) {
        const std::string& n1 = t[kN1Name].AsString();
        const std::string& n2 = t[kN2Name].AsString();
        return (n1 == "FRANCE" && n2 == "GERMANY") ||
               (n1 == "GERMANY" && n2 == "FRANCE");
      });

  std::vector<AggSpec> aggs;
  aggs.push_back({AggFn::kSum, [](const Tuple& t) {
                    return t[li::kExtendedPrice].AsDouble() *
                           (1.0 - t[li::kDiscount].AsDouble());
                  }});
  auto agg = std::make_unique<HashAggregateOp>(
      engine, std::move(filter), std::vector<int>{kN1Name, kN2Name},
      std::move(aggs));
  auto sort = std::make_unique<SortOp>(
      engine, std::move(agg), [](const Tuple& a, const Tuple& b) {
        const int c = a[0].Compare(b[0]);
        return c != 0 ? c < 0 : a[1].Compare(b[1]) < 0;
      });
  return Finish(std::move(sort), li_path);
}

QueryOutput RunQ14(const TpchDb& db, PathKind lineitem_path,
                  uint32_t dop) {
  Engine* engine = db.engine();
  ScanPredicate pred;
  pred.column = li::kShipDate;
  pred.lo = DateDays(1995, 9, 1);
  pred.hi = DateDays(1995, 10, 1);

  const AccessPath* li_path = nullptr;
  std::unique_ptr<Operator> scan =
      MakeLineitemScan(db, pred, lineitem_path, /*need_order=*/false, dop,
                       &li_path);

  // INLJ with PART on the PART PK; joined = L(14) ++ P(3).
  auto join = std::make_unique<IndexNestedLoopJoinOp>(
      std::move(scan), &db.part_pk_index(), li::kPartKey);
  constexpr int kPType = li::kNumColumns + part::kType;  // 16

  std::vector<AggSpec> aggs;
  aggs.push_back({AggFn::kSum, [=](const Tuple& t) {
                    const bool promo =
                        t[kPType].AsString().rfind("PROMO", 0) == 0;
                    return promo ? t[li::kExtendedPrice].AsDouble() *
                                       (1.0 - t[li::kDiscount].AsDouble())
                                 : 0.0;
                  }});
  aggs.push_back({AggFn::kSum, [](const Tuple& t) {
                    return t[li::kExtendedPrice].AsDouble() *
                           (1.0 - t[li::kDiscount].AsDouble());
                  }});
  auto agg = std::make_unique<HashAggregateOp>(
      engine, std::move(join), std::vector<int>{}, std::move(aggs));
  return Finish(std::move(agg), li_path);
}

QueryOutput RunQ12(const TpchDb& db, PathKind lineitem_path,
                  uint32_t dop) {
  Engine* engine = db.engine();
  // Receipt dates within 1994 imply ship dates in a ~14-month window (the
  // index-serviceable part); shipmode and the date ordering are residuals.
  ScanPredicate pred;
  pred.column = li::kShipDate;
  pred.lo = DateDays(1993, 11, 25);
  pred.hi = DateDays(1995, 1, 1);
  const int64_t receipt_lo = DateDays(1994, 1, 1);
  const int64_t receipt_hi = DateDays(1995, 1, 1);
  pred.residual = [=](const Tuple& t) {
    const std::string& mode = t[li::kShipMode].AsString();
    if (mode != "MAIL" && mode != "SHIP") return false;
    const int64_t ship = t[li::kShipDate].AsInt64();
    const int64_t commit = t[li::kCommitDate].AsInt64();
    const int64_t receipt = t[li::kReceiptDate].AsInt64();
    return commit < receipt && ship < commit && receipt >= receipt_lo &&
           receipt < receipt_hi;
  };

  const AccessPath* li_path = nullptr;
  std::unique_ptr<Operator> scan =
      MakeLineitemScan(db, pred, lineitem_path, /*need_order=*/false, dop,
                       &li_path);

  // INLJ with ORDERS on the ORDERS PK; joined = L(14) ++ O(6).
  auto join = std::make_unique<IndexNestedLoopJoinOp>(
      std::move(scan), &db.orders_pk_index(), li::kOrderKey);
  constexpr int kJoinedPriority = li::kNumColumns + ord::kOrderPriority;

  // Q12's two output numbers: high-priority and low-priority line counts.
  std::vector<AggSpec> aggs;
  aggs.push_back({AggFn::kSum, [=](const Tuple& t) {
                    const std::string& p = t[kJoinedPriority].AsString();
                    return (p == "1-URGENT" || p == "2-HIGH") ? 1.0 : 0.0;
                  }});
  aggs.push_back({AggFn::kSum, [=](const Tuple& t) {
                    const std::string& p = t[kJoinedPriority].AsString();
                    return (p == "1-URGENT" || p == "2-HIGH") ? 0.0 : 1.0;
                  }});
  auto agg = std::make_unique<HashAggregateOp>(
      engine, std::move(join), std::vector<int>{}, std::move(aggs));
  return Finish(std::move(agg), li_path);
}

QueryOutput RunQ19(const TpchDb& db, PathKind lineitem_path,
                  uint32_t dop) {
  Engine* engine = db.engine();
  // Whole shipdate range; the selective work is the residual + the part
  // branches, which is what made the optimizer's estimate so fragile.
  ScanPredicate pred;
  pred.column = li::kShipDate;
  pred.residual = [](const Tuple& t) {
    const std::string& mode = t[li::kShipMode].AsString();
    return (mode == "AIR" || mode == "REG AIR") &&
           t[li::kQuantity].AsDouble() <= 30.0;
  };

  const AccessPath* li_path = nullptr;
  std::unique_ptr<Operator> scan =
      MakeLineitemScan(db, pred, lineitem_path, /*need_order=*/false, dop,
                       &li_path);

  // INLJ with PART; joined = L(14) ++ P(3).
  auto join = std::make_unique<IndexNestedLoopJoinOp>(
      std::move(scan), &db.part_pk_index(), li::kPartKey);
  constexpr int kPType = li::kNumColumns + part::kType;

  auto filter = std::make_unique<FilterOp>(
      engine, std::move(join), [=](const Tuple& t) {
        const std::string& type = t[kPType].AsString();
        const double qty = t[li::kQuantity].AsDouble();
        const bool b1 = type.rfind("PROMO", 0) == 0 && qty >= 1 && qty <= 11;
        const bool b2 =
            type.rfind("STANDARD", 0) == 0 && qty >= 10 && qty <= 20;
        const bool b3 = type.rfind("SMALL", 0) == 0 && qty >= 20 && qty <= 30;
        return b1 || b2 || b3;
      });

  std::vector<AggSpec> aggs;
  aggs.push_back({AggFn::kSum, [](const Tuple& t) {
                    return t[li::kExtendedPrice].AsDouble() *
                           (1.0 - t[li::kDiscount].AsDouble());
                  }});
  auto agg = std::make_unique<HashAggregateOp>(
      engine, std::move(filter), std::vector<int>{}, std::move(aggs));
  return Finish(std::move(agg), li_path);
}

QueryOutput RunQuery(int query, const TpchDb& db, PathKind lineitem_path,
                     uint32_t dop) {
  switch (query) {
    case 1:
      return RunQ1(db, lineitem_path, dop);
    case 4:
      return RunQ4(db, lineitem_path, dop);
    case 6:
      return RunQ6(db, lineitem_path, dop);
    case 7:
      return RunQ7(db, lineitem_path, dop);
    case 12:
      return RunQ12(db, lineitem_path, dop);
    case 14:
      return RunQ14(db, lineitem_path, dop);
    case 19:
      return RunQ19(db, lineitem_path, dop);
    default:
      SMOOTHSCAN_CHECK(false);
  }
  return {};
}

PathKind PlainPostgresChoice(int query) {
  // Section VI-B: Q1 -> Sort (bitmap heap) scan; Q4 -> full scan;
  // Q6, Q7, Q14 -> index scan.
  switch (query) {
    case 1:
      return PathKind::kSortScan;
    case 4:
      return PathKind::kFullScan;
    case 6:
    case 7:
    case 12:
    case 14:
    case 19:
      return PathKind::kIndexScan;
    default:
      SMOOTHSCAN_CHECK(false);
  }
  return PathKind::kFullScan;
}

double PaperLineitemSelectivity(int query) {
  switch (query) {
    case 1:
      return 0.98;
    case 4:
      return 0.65;
    case 6:
      return 0.02;
    case 7:
      return 0.30;
    case 12:
      return 0.17;  // Shipdate window serviced by the index.
    case 14:
      return 0.01;
    case 19:
      return 1.00;  // Unbounded shipdate range; residuals do the filtering.
    default:
      SMOOTHSCAN_CHECK(false);
  }
  return 0.0;
}

}  // namespace smoothscan::tpch
