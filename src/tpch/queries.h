// The five TPC-H queries of the paper's Fig. 4 / Table II, parameterized by
// the LINEITEM access path so that the "plain PostgreSQL" plan and the
// Smooth Scan plan can be compared (the rest of each plan is identical,
// exactly as in the paper). LINEITEM selectivities: Q1 ~98%, Q4 ~65%,
// Q6 ~2%, Q7 ~30%, Q14 ~1%.

#ifndef SMOOTHSCAN_TPCH_QUERIES_H_
#define SMOOTHSCAN_TPCH_QUERIES_H_

#include <vector>

#include "plan/access_path_chooser.h"
#include "tpch/tpch_gen.h"

namespace smoothscan::tpch {

struct QueryOutput {
  std::vector<Tuple> rows;
  /// Counters of the LINEITEM access path (the operator under study).
  AccessPathStats lineitem_stats;
};

/// Pricing-summary report: ~98% of LINEITEM, aggregation by
/// (returnflag, linestatus).
QueryOutput RunQ1(const TpchDb& db, PathKind lineitem_path,
                  uint32_t dop = 0);

/// Order-priority checking: LINEITEM semi-joins ORDERS (INLJ on the ORDERS
/// PK); LINEITEM residual selectivity ~65%.
QueryOutput RunQ4(const TpchDb& db, PathKind lineitem_path,
                  uint32_t dop = 0);

/// Forecasting-revenue change: single-table selection, ~2% of LINEITEM.
QueryOutput RunQ6(const TpchDb& db, PathKind lineitem_path,
                  uint32_t dop = 0);

/// Volume shipping: 6-table join (LINEITEM, ORDERS, CUSTOMER, SUPPLIER,
/// NATION x2); LINEITEM shipdate selectivity ~30%.
QueryOutput RunQ7(const TpchDb& db, PathKind lineitem_path,
                  uint32_t dop = 0);

/// Promotion effect: LINEITEM (~1%) INLJ PART on the PART PK.
QueryOutput RunQ14(const TpchDb& db, PathKind lineitem_path,
                  uint32_t dop = 0);

/// Shipping-modes-and-order-priority: the query whose tuned plan regressed
/// 400x in the paper's Fig. 1. LINEITEM shipdate window ~17% with shipmode /
/// date-ordering residuals, INLJ ORDERS, priority-class counts.
QueryOutput RunQ12(const TpchDb& db, PathKind lineitem_path,
                  uint32_t dop = 0);

/// Discounted-revenue (disjunctive part/quantity predicate; 20x regression
/// in Fig. 1): LINEITEM INLJ PART with an OR of three branch conditions.
QueryOutput RunQ19(const TpchDb& db, PathKind lineitem_path,
                  uint32_t dop = 0);

/// Dispatch by query number (1, 4, 6, 7, 12, 14, 19). `dop` selects the
/// LINEITEM leaf's execution model: 0 (default) runs the serial operator as
/// the paper does; dop >= 1 runs the morsel-driven parallel variant below a
/// Gather exchange with that many workers — the parallel plan's simulated
/// cost is DOP-invariant, so 1 vs. 8 isolates the wall-clock effect.
QueryOutput RunQuery(int query, const TpchDb& db, PathKind lineitem_path,
                     uint32_t dop = 0);

/// The access path plain PostgreSQL chose in the paper's experiment.
PathKind PlainPostgresChoice(int query);

/// The paper's reported LINEITEM selectivity for the query (fraction).
double PaperLineitemSelectivity(int query);

}  // namespace smoothscan::tpch

#endif  // SMOOTHSCAN_TPCH_QUERIES_H_
