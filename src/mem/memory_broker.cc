#include "mem/memory_broker.h"

#include <algorithm>

namespace smoothscan {

const char* MemoryClassName(MemoryClass cls) {
  switch (cls) {
    case MemoryClass::kBufferPool:
      return "buffer_pool";
    case MemoryClass::kResultCache:
      return "result_cache";
    case MemoryClass::kSharedScanWindow:
      return "shared_scan_window";
    case MemoryClass::kExecBatches:
      return "exec_batches";
    case MemoryClass::kOther:
      return "other";
  }
  return "?";
}

void MemoryBroker::UpdatePressureLocked(uint64_t before, uint64_t after) {
  if (!pressured_.load(std::memory_order_relaxed)) {
    if (before <= options_.global_budget_bytes &&
        after > options_.global_budget_bytes) {
      pressured_.store(true, std::memory_order_relaxed);
      pressure_epoch_.fetch_add(1, std::memory_order_relaxed);
    }
  } else if (after <= low_water_) {
    pressured_.store(false, std::memory_order_relaxed);
  }
}

MemoryBroker::Consumer MemoryBroker::Register(MemoryClass cls,
                                              std::string name) {
  latch::LatchGuard lock(mu_);
  size_t id;
  if (!free_ids_.empty()) {
    id = free_ids_.back();
    free_ids_.pop_back();
  } else {
    id = entries_.size();
    entries_.emplace_back();
  }
  Entry& e = entries_[id];
  e = Entry();
  e.cls = cls;
  e.name = std::move(name);
  e.live = true;
  Consumer c;
  c.broker_ = this;
  c.id_ = id;
  return c;
}

void MemoryBroker::Charge(size_t id, uint64_t bytes) {
  if (bytes == 0) return;
  latch::LatchGuard lock(mu_);
  Entry& e = entries_[id];
  SMOOTHSCAN_CHECK(e.live);
  e.bytes += bytes;
  e.peak_bytes = std::max(e.peak_bytes, e.bytes);
  class_bytes_[static_cast<size_t>(e.cls)] += bytes;
  const uint64_t before = total_.load(std::memory_order_relaxed);
  const uint64_t after = before + bytes;
  total_.store(after, std::memory_order_relaxed);
  peak_total_ = std::max(peak_total_, after);
  UpdatePressureLocked(before, after);
}

void MemoryBroker::Uncharge(size_t id, uint64_t bytes) {
  if (bytes == 0) return;
  latch::LatchGuard lock(mu_);
  Entry& e = entries_[id];
  SMOOTHSCAN_CHECK(e.live && e.bytes >= bytes);
  e.bytes -= bytes;
  class_bytes_[static_cast<size_t>(e.cls)] -= bytes;
  const uint64_t before = total_.load(std::memory_order_relaxed);
  const uint64_t after = before - bytes;
  total_.store(after, std::memory_order_relaxed);
  UpdatePressureLocked(before, after);
}

void MemoryBroker::Unregister(size_t id) {
  latch::LatchGuard lock(mu_);
  Entry& e = entries_[id];
  SMOOTHSCAN_CHECK(e.live);
  class_bytes_[static_cast<size_t>(e.cls)] -= e.bytes;
  const uint64_t before = total_.load(std::memory_order_relaxed);
  const uint64_t after = before - e.bytes;
  total_.store(after, std::memory_order_relaxed);
  UpdatePressureLocked(before, after);
  e = Entry();
  free_ids_.push_back(id);
}

uint64_t MemoryBroker::ConsumerBytes(size_t id) const {
  latch::LatchGuard lock(mu_);
  return entries_[id].bytes;
}

uint64_t MemoryBroker::peak_total_bytes() const {
  latch::LatchGuard lock(mu_);
  return peak_total_;
}

uint64_t MemoryBroker::class_bytes(MemoryClass cls) const {
  latch::LatchGuard lock(mu_);
  return class_bytes_[static_cast<size_t>(cls)];
}

std::vector<MemoryConsumerStats> MemoryBroker::ConsumerSnapshots() const {
  latch::LatchGuard lock(mu_);
  std::vector<MemoryConsumerStats> out;
  for (const Entry& e : entries_) {
    if (!e.live) continue;
    MemoryConsumerStats s;
    s.name = e.name;
    s.cls = e.cls;
    s.bytes = e.bytes;
    s.peak_bytes = e.peak_bytes;
    out.push_back(std::move(s));
  }
  return out;
}

QueryMemoryScope::QueryMemoryScope(MemoryBroker* broker, uint64_t quota_bytes)
    : broker_(broker), quota_(quota_bytes) {
  if (broker_ != nullptr) {
    consumer_ = broker_->Register(MemoryClass::kExecBatches, "query_exec");
  }
}

void QueryMemoryScope::Charge(uint64_t bytes) {
  const uint64_t after =
      bytes_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  uint64_t peak = peak_bytes_.load(std::memory_order_relaxed);
  while (after > peak && !peak_bytes_.compare_exchange_weak(
                             peak, after, std::memory_order_relaxed)) {
  }
  if (after > quota_) breaches_.fetch_add(1, std::memory_order_relaxed);
  consumer_.Charge(bytes);
}

void QueryMemoryScope::Uncharge(uint64_t bytes) {
  bytes_.fetch_sub(bytes, std::memory_order_relaxed);
  consumer_.Uncharge(bytes);
}

bool QueryMemoryScope::OverQuota() const {
  if (bytes_.load(std::memory_order_relaxed) > quota_) return true;
  return broker_ != nullptr && broker_->UnderPressure();
}

}  // namespace smoothscan
