// BatchPool: a free-list of recycled TupleBatches whose headers live in a
// bump Arena and whose row `Value` storage survives recycling — the morsel
// engine's answer to per-batch heap allocation (Leis et al., SIGMOD 2014
// design away exactly this steady-state tax). Producers Acquire() a batch,
// fill it, and move it downstream as a PooledBatch; whoever drains it last
// releases it (possibly on a different thread), putting the fully-allocated
// row storage back on the free list for the next fill cycle. In steady state
// a scan therefore performs zero heap allocations per batch: the header is
// arena-resident, the row vectors and their Value payloads are the ones the
// previous cycle populated.
//
// Memory governance: an optional MemoryAccount (the query's
// QueryMemoryScope) is charged a fixed per-batch estimate when a batch's
// storage goes warm and uncharged when it is shed. When the account reports
// OverQuota() — the query breached its quota, or the global MemoryBroker is
// under pressure — Release() drops the batch's row storage instead of
// keeping it warm: recycling degrades gracefully to the old allocate-per-
// batch behavior, trading CPU for memory, never failing the query and never
// touching its simulated cost.

#ifndef SMOOTHSCAN_MEM_BATCH_POOL_H_
#define SMOOTHSCAN_MEM_BATCH_POOL_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/latch_rank.h"
#include "common/thread_annotations.h"
#include "common/tuple_batch.h"
#include "mem/arena.h"
#include "mem/memory_broker.h"

namespace smoothscan {

namespace obs {
class Counter;
}  // namespace obs

class BatchPool;

/// Optional push-style observability sink (see BufferPoolMetricsSink): when
/// attached via BatchPoolOptions::metrics, every stats bump also feeds the
/// matching registry counter. Null members are not fed.
struct BatchPoolMetricsSink {
  obs::Counter* acquires = nullptr;
  obs::Counter* reuses = nullptr;
  obs::Counter* releases = nullptr;
  obs::Counter* sheds = nullptr;
};

/// Move-only owning handle on a pooled batch; returns it to the pool on
/// destruction (or explicit Release()). Default-constructed handles are
/// empty and inert.
class PooledBatch {
 public:
  PooledBatch() = default;
  PooledBatch(const PooledBatch&) = delete;
  PooledBatch& operator=(const PooledBatch&) = delete;
  PooledBatch(PooledBatch&& other) noexcept { Swap(&other); }
  PooledBatch& operator=(PooledBatch&& other) noexcept {
    if (this != &other) {
      Release();
      Swap(&other);
    }
    return *this;
  }
  ~PooledBatch() { Release(); }

  explicit operator bool() const { return batch_ != nullptr; }
  TupleBatch* get() const { return batch_; }
  TupleBatch& operator*() const { return *batch_; }
  TupleBatch* operator->() const { return batch_; }

  /// Returns the batch to its pool now. Idempotent.
  void Release();

 private:
  friend class BatchPool;
  PooledBatch(BatchPool* pool, size_t slot, TupleBatch* batch)
      : pool_(pool), slot_(slot), batch_(batch) {}
  void Swap(PooledBatch* other) {
    std::swap(pool_, other->pool_);
    std::swap(slot_, other->slot_);
    std::swap(batch_, other->batch_);
  }

  BatchPool* pool_ = nullptr;
  size_t slot_ = 0;
  TupleBatch* batch_ = nullptr;
};

struct BatchPoolOptions {
  /// Capacity of every batch the pool hands out.
  size_t batch_capacity = kDefaultBatchSize;
  /// When false, released batches drop their row storage instead of keeping
  /// it warm — the allocate-per-batch baseline, kept for ablation benches.
  bool recycle = true;
  /// Bytes one warm batch is charged to the MemoryAccount. 0 derives a
  /// conservative estimate from the capacity (row headers + a nominal Value
  /// payload per row).
  uint64_t batch_bytes_hint = 0;
  /// Registry counters mirroring this pool's stats bumps (all-null = off).
  BatchPoolMetricsSink metrics;
};

struct BatchPoolStats {
  uint64_t acquires = 0;   ///< Batches handed out.
  uint64_t reuses = 0;     ///< ... of which came warm off the free list.
  uint64_t releases = 0;   ///< Batches returned.
  uint64_t sheds = 0;      ///< Returns that dropped storage (quota/ablation).
  uint64_t fresh_batches = 0;  ///< Headers constructed in the arena, ever.
  /// Acquires that could NOT reuse warm storage — the steady-state metric:
  /// zero over a cycle means the cycle allocated no batch memory.
  uint64_t cold_acquires() const { return acquires - reuses; }
};

class BatchPool {
 public:
  /// `account` (optional, must outlive the pool) is charged for warm batch
  /// storage and consulted for shedding; see the file comment.
  explicit BatchPool(BatchPoolOptions options = BatchPoolOptions(),
                     MemoryAccount* account = nullptr);
  /// Destroys every batch ever created (all must have been released) and
  /// uncharges the account.
  ~BatchPool();

  BatchPool(const BatchPool&) = delete;
  BatchPool& operator=(const BatchPool&) = delete;

  /// Hands out an empty batch of `batch_capacity`, warm when the free list
  /// has one. Thread-safe.
  PooledBatch Acquire() EXCLUDES(mu_);

  size_t batch_capacity() const { return options_.batch_capacity; }
  /// The per-warm-batch charge (resolved from the hint).
  uint64_t batch_bytes() const { return batch_bytes_; }
  BatchPoolStats stats() const EXCLUDES(mu_);
  MemoryAccount* account() const { return account_; }

 private:
  friend class PooledBatch;

  struct Slot {
    TupleBatch* batch = nullptr;
    bool warm = false;     ///< Row storage populated (free-list entries only).
    bool charged = false;  ///< Currently charged to the account.
  };

  void Release(size_t slot_index) EXCLUDES(mu_);

  const BatchPoolOptions options_;
  MemoryAccount* const account_;
  uint64_t batch_bytes_ = 0;

  /// Ranked just above the broker: Release() charges/uncharges the account
  /// scope (which forwards into MemoryBroker::mu_) while holding this latch.
  mutable latch::Latch mu_{latch::LatchRank::kBatchPool, "BatchPool::mu_"};
  Arena arena_ GUARDED_BY(mu_);
  std::vector<Slot> slots_ GUARDED_BY(mu_);
  std::vector<size_t> free_ GUARDED_BY(mu_);
  BatchPoolStats stats_ GUARDED_BY(mu_);
};

}  // namespace smoothscan

#endif  // SMOOTHSCAN_MEM_BATCH_POOL_H_
