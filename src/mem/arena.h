// Arena: a chunked bump allocator for execution-lifetime objects. Allocation
// is a pointer bump within the current chunk; a new chunk is appended when the
// current one is exhausted. Nothing is ever freed individually — the arena
// releases all chunks at once on destruction — which is exactly the lifetime
// of the batch headers the BatchPool places here: they live as long as the
// operator (or query) that owns the pool, and recycling happens *within* the
// arena, not against the global heap.
//
// The arena does not run destructors: callers placing non-trivially-
// destructible objects (New<T>) must destroy them before the arena goes away.

#ifndef SMOOTHSCAN_MEM_ARENA_H_
#define SMOOTHSCAN_MEM_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <utility>
#include <vector>

#include "common/status.h"

namespace smoothscan {

class Arena {
 public:
  /// Default chunk size: large enough that a pool of tens of batch headers
  /// fits in one or two chunks, small enough to not dwarf a tiny test arena.
  static constexpr size_t kDefaultChunkBytes = 16 * 1024;

  explicit Arena(size_t chunk_bytes = kDefaultChunkBytes)
      : chunk_bytes_(chunk_bytes) {
    SMOOTHSCAN_CHECK(chunk_bytes_ > 0);
  }

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Bump-allocates `bytes` aligned to `alignment` (a power of two).
  /// Oversized requests get a dedicated chunk.
  void* Allocate(size_t bytes, size_t alignment = alignof(std::max_align_t)) {
    SMOOTHSCAN_CHECK(alignment > 0 && (alignment & (alignment - 1)) == 0);
    if (bytes == 0) bytes = 1;
    // Align the absolute address, not the chunk-relative offset: new[] only
    // guarantees __STDCPP_DEFAULT_NEW_ALIGNMENT__ for the chunk base.
    if (!chunks_.empty()) {
      Chunk& chunk = chunks_.back();
      const uintptr_t base = reinterpret_cast<uintptr_t>(chunk.data.get());
      const size_t aligned = Align(base + chunk.used, alignment) - base;
      if (aligned + bytes <= chunk.size) {
        chunk.used = aligned + bytes;
        bytes_used_ += bytes;
        return chunk.data.get() + aligned;
      }
    }
    // Fresh chunk, padded so any base can be aligned up within it.
    const size_t need = bytes + alignment - 1;
    const size_t size = need > chunk_bytes_ ? need : chunk_bytes_;
    Chunk chunk;
    chunk.data.reset(new std::byte[size]);
    chunk.size = size;
    const uintptr_t base = reinterpret_cast<uintptr_t>(chunk.data.get());
    const size_t offset = Align(base, alignment) - base;
    chunk.used = offset + bytes;
    bytes_used_ += bytes;
    bytes_reserved_ += size;
    chunks_.push_back(std::move(chunk));
    return chunks_.back().data.get() + offset;
  }

  /// Placement-constructs a T in arena storage. The arena never calls ~T —
  /// the caller owns destruction.
  template <typename T, typename... Args>
  T* New(Args&&... args) {
    void* p = Allocate(sizeof(T), alignof(T));
    return new (p) T(std::forward<Args>(args)...);
  }

  size_t bytes_used() const { return bytes_used_; }
  size_t bytes_reserved() const { return bytes_reserved_; }
  size_t num_chunks() const { return chunks_.size(); }

 private:
  struct Chunk {
    std::unique_ptr<std::byte[]> data;
    size_t size = 0;
    size_t used = 0;
  };

  static size_t Align(size_t offset, size_t alignment) {
    return (offset + alignment - 1) & ~(alignment - 1);
  }

  size_t chunk_bytes_;
  size_t bytes_used_ = 0;
  size_t bytes_reserved_ = 0;
  std::vector<Chunk> chunks_;
};

}  // namespace smoothscan

#endif  // SMOOTHSCAN_MEM_ARENA_H_
