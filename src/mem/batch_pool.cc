#include "mem/batch_pool.h"

#include "obs/metrics.h"
#include "storage/schema.h"

namespace smoothscan {

namespace {

/// Conservative per-row footprint estimate for the default charge: the Tuple
/// vector header plus a nominal ten-column Value payload (the micro-benchmark
/// schema). A hint, not a measurement — governance needs a stable, cheap
/// number, not per-vector bookkeeping.
uint64_t DefaultBatchBytes(size_t capacity) {
  const uint64_t per_row = sizeof(Tuple) + 10 * sizeof(Value);
  return capacity * per_row;
}

}  // namespace

BatchPool::BatchPool(BatchPoolOptions options, MemoryAccount* account)
    : options_(options),
      account_(account),
      batch_bytes_(options.batch_bytes_hint != 0
                       ? options.batch_bytes_hint
                       : DefaultBatchBytes(options.batch_capacity)) {
  SMOOTHSCAN_CHECK(options_.batch_capacity > 0);
}

BatchPool::~BatchPool() {
  latch::LatchGuard lock(mu_);
  // Every batch must be back home; a PooledBatch outliving its pool would
  // release into freed state.
  SMOOTHSCAN_CHECK(free_.size() == slots_.size());
  for (Slot& slot : slots_) {
    if (slot.charged && account_ != nullptr) account_->Uncharge(batch_bytes_);
    slot.batch->~TupleBatch();  // Header memory goes with the arena.
  }
}

PooledBatch BatchPool::Acquire() {
  latch::LatchGuard lock(mu_);
  ++stats_.acquires;
  if (options_.metrics.acquires != nullptr) options_.metrics.acquires->Add();
  if (!free_.empty()) {
    const size_t index = free_.back();
    free_.pop_back();
    Slot& slot = slots_[index];
    if (slot.warm) {
      ++stats_.reuses;
      if (options_.metrics.reuses != nullptr) options_.metrics.reuses->Add();
    }
    slot.warm = false;
    return PooledBatch(this, index, slot.batch);
  }
  Slot slot;
  slot.batch = arena_.New<TupleBatch>(options_.batch_capacity);
  slots_.push_back(slot);
  ++stats_.fresh_batches;
  return PooledBatch(this, slots_.size() - 1, slots_.back().batch);
}

void BatchPool::Release(size_t slot_index) {
  latch::LatchGuard lock(mu_);
  ++stats_.releases;
  if (options_.metrics.releases != nullptr) options_.metrics.releases->Add();
  Slot& slot = slots_[slot_index];
  slot.batch->Clear();
  const bool shed =
      !options_.recycle || (account_ != nullptr && account_->OverQuota());
  if (shed) {
    slot.batch->ReleaseMemory();
    slot.warm = false;
    ++stats_.sheds;
    if (options_.metrics.sheds != nullptr) options_.metrics.sheds->Add();
    if (slot.charged) {
      if (account_ != nullptr) account_->Uncharge(batch_bytes_);
      slot.charged = false;
    }
  } else {
    slot.warm = true;
    if (!slot.charged) {
      if (account_ != nullptr) account_->Charge(batch_bytes_);
      slot.charged = true;
    }
  }
  free_.push_back(slot_index);
}

BatchPoolStats BatchPool::stats() const {
  latch::LatchGuard lock(mu_);
  return stats_;
}

void PooledBatch::Release() {
  if (pool_ != nullptr) pool_->Release(slot_);
  pool_ = nullptr;
  batch_ = nullptr;
}

}  // namespace smoothscan
