// MemoryBroker: one accounting authority over every memory consumer of the
// engine — buffer-pool frames, ResultCache resident tuples, shared-scan
// pinned chunk windows, and per-query execution memory (pooled batches) — the
// multi-class memory-allocation problem of Brown et al. (VLDB 1994) applied
// to this engine's consumers.
//
// The broker is *advisory*, not a gatekeeper: consumers charge and uncharge
// bytes as their footprint changes, and poll UnderPressure() / their own
// QueryMemoryScope quota on their own thread. Under pressure each consumer
// sheds in its own way — the ResultCache spills its furthest partitions to
// the simulated overflow file, shared-scan groups clamp their drift window
// to one chunk, batch pools drop recycled row storage instead of free-listing
// it. Nothing ever fails: shedding converts memory into (simulated or real)
// time, never into an error.
//
// Accounting invariant: broker charges are bookkeeping only. No charge or
// shed decision touches a per-query SimDisk or CpuMeter, and every shed path
// either charges the engine's *communal* stream (ResultCache spill, like the
// pre-broker budget spills) or changes only pinned-window slack (shared-scan
// drift), so per-query simulated cost is bit-identical with the broker on or
// off, at any quota.

#ifndef SMOOTHSCAN_MEM_MEMORY_BROKER_H_
#define SMOOTHSCAN_MEM_MEMORY_BROKER_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/latch_rank.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace smoothscan {

/// Consumer classes the broker accounts separately (reporting/shedding
/// policy is per class; the budget is global).
enum class MemoryClass {
  kBufferPool = 0,
  kResultCache,
  kSharedScanWindow,
  kExecBatches,
  kOther,
};
inline constexpr size_t kNumMemoryClasses = 5;

const char* MemoryClassName(MemoryClass cls);

struct MemoryBrokerOptions {
  /// Global byte budget across all consumers; charges past it raise the
  /// pressure flag (never fail). Default: unbounded.
  uint64_t global_budget_bytes = UINT64_MAX;
  /// Hysteresis low-water mark: once raised, the pressure flag stays up
  /// until the total falls to or below this, damping the spill/restore
  /// ping-pong of consumers hovering at the budget line. 0 (default)
  /// derives `budget - budget / 8`; must not exceed the budget.
  uint64_t pressure_low_water_bytes = 0;
};

/// Snapshot of one registered consumer.
struct MemoryConsumerStats {
  std::string name;
  MemoryClass cls = MemoryClass::kOther;
  uint64_t bytes = 0;
  uint64_t peak_bytes = 0;
};

class MemoryBroker {
 public:
  /// A registered consumer's charging handle. Move-only; unregisters (and
  /// uncharges any remaining bytes) on destruction.
  class Consumer {
   public:
    Consumer() = default;
    Consumer(const Consumer&) = delete;
    Consumer& operator=(const Consumer&) = delete;
    Consumer(Consumer&& other) noexcept { Swap(&other); }
    Consumer& operator=(Consumer&& other) noexcept {
      if (this != &other) {
        Unregister();
        Swap(&other);
      }
      return *this;
    }
    ~Consumer() { Unregister(); }

    bool valid() const { return broker_ != nullptr; }
    void Charge(uint64_t bytes) {
      if (broker_ != nullptr) broker_->Charge(id_, bytes);
    }
    void Uncharge(uint64_t bytes) {
      if (broker_ != nullptr) broker_->Uncharge(id_, bytes);
    }
    uint64_t bytes() const {
      return broker_ != nullptr ? broker_->ConsumerBytes(id_) : 0;
    }
    /// Uncharges whatever is still charged and releases the registration.
    void Unregister() {
      if (broker_ != nullptr) broker_->Unregister(id_);
      broker_ = nullptr;
    }

   private:
    friend class MemoryBroker;
    void Swap(Consumer* other) {
      std::swap(broker_, other->broker_);
      std::swap(id_, other->id_);
    }
    MemoryBroker* broker_ = nullptr;
    size_t id_ = 0;
  };

  explicit MemoryBroker(MemoryBrokerOptions options = MemoryBrokerOptions())
      : options_(options),
        low_water_(options.pressure_low_water_bytes != 0
                       ? options.pressure_low_water_bytes
                       : options.global_budget_bytes -
                             options.global_budget_bytes / 8) {
    SMOOTHSCAN_CHECK(low_water_ <= options_.global_budget_bytes);
  }

  MemoryBroker(const MemoryBroker&) = delete;
  MemoryBroker& operator=(const MemoryBroker&) = delete;

  Consumer Register(MemoryClass cls, std::string name) EXCLUDES(mu_);

  uint64_t total_bytes() const {
    return total_.load(std::memory_order_relaxed);
  }
  uint64_t budget() const { return options_.global_budget_bytes; }
  uint64_t pressure_low_water() const { return low_water_; }

  /// True from the charge that pushes the total past the global budget until
  /// the uncharge that brings it back to the low-water mark (hysteresis: a
  /// consumer that sheds just below the budget and immediately re-charges no
  /// longer flaps the flag). Lock-free: consumers poll this on hot paths.
  bool UnderPressure() const {
    return pressured_.load(std::memory_order_relaxed);
  }

  /// Bumped every time the pressure flag rises — consumers (and tests) can
  /// detect "pressure happened" even if it was relieved.
  uint64_t pressure_epoch() const {
    return pressure_epoch_.load(std::memory_order_relaxed);
  }

  uint64_t peak_total_bytes() const EXCLUDES(mu_);
  uint64_t class_bytes(MemoryClass cls) const EXCLUDES(mu_);
  std::vector<MemoryConsumerStats> ConsumerSnapshots() const EXCLUDES(mu_);

 private:
  struct Entry {
    MemoryClass cls = MemoryClass::kOther;
    std::string name;
    uint64_t bytes = 0;
    uint64_t peak_bytes = 0;
    bool live = false;
  };

  void Charge(size_t id, uint64_t bytes) EXCLUDES(mu_);
  void Uncharge(size_t id, uint64_t bytes) EXCLUDES(mu_);
  void Unregister(size_t id) EXCLUDES(mu_);
  uint64_t ConsumerBytes(size_t id) const EXCLUDES(mu_);

  /// Re-derives the pressure flag after `total_` moved to `after`. The flag
  /// is written only under `mu_` (so rise/fall transitions serialize) but
  /// read lock-free by UnderPressure().
  void UpdatePressureLocked(uint64_t before, uint64_t after) REQUIRES(mu_);

  const MemoryBrokerOptions options_;
  const uint64_t low_water_;
  /// The broker latch is a leaf: BatchPool charges its query scope (which
  /// forwards here) while holding the pool latch, and shared-scan groups
  /// charge window bytes under the group latch.
  mutable latch::Latch mu_{latch::LatchRank::kBroker, "MemoryBroker::mu_"};
  std::vector<Entry> entries_ GUARDED_BY(mu_);
  std::vector<size_t> free_ids_ GUARDED_BY(mu_);
  uint64_t class_bytes_[kNumMemoryClasses] GUARDED_BY(mu_) = {};
  uint64_t peak_total_ GUARDED_BY(mu_) = 0;
  /// Mirror of the summed entry bytes, readable without the latch.
  std::atomic<uint64_t> total_{0};
  /// Hysteresis pressure flag (see UnderPressure); written under `mu_` only.
  std::atomic<bool> pressured_{false};
  std::atomic<uint64_t> pressure_epoch_{0};
};

/// The interface a memory pool charges its footprint through when it serves
/// one specific owner (a query) rather than a global consumer class.
class MemoryAccount {
 public:
  virtual ~MemoryAccount() = default;
  virtual void Charge(uint64_t bytes) = 0;
  virtual void Uncharge(uint64_t bytes) = 0;
  /// True when the owner should shed memory instead of retaining more.
  virtual bool OverQuota() const = 0;
};

/// Per-query execution-memory account: charged through ExecContext by the
/// query's batch pools, counted against a per-query quota and (when a broker
/// is attached) against the global kExecBatches class. Breaching the quota —
/// or global broker pressure — makes the pools shed recycled storage; the
/// query itself never fails and its simulated cost never changes.
class QueryMemoryScope : public MemoryAccount {
 public:
  /// `broker` may be null: the scope then enforces only its own quota.
  explicit QueryMemoryScope(MemoryBroker* broker = nullptr,
                            uint64_t quota_bytes = UINT64_MAX);
  ~QueryMemoryScope() override = default;

  QueryMemoryScope(const QueryMemoryScope&) = delete;
  QueryMemoryScope& operator=(const QueryMemoryScope&) = delete;

  void Charge(uint64_t bytes) override;
  void Uncharge(uint64_t bytes) override;
  bool OverQuota() const override;

  uint64_t bytes() const { return bytes_.load(std::memory_order_relaxed); }
  uint64_t peak_bytes() const {
    return peak_bytes_.load(std::memory_order_relaxed);
  }
  uint64_t quota_bytes() const { return quota_; }
  /// Charges that landed (or stayed) above the quota.
  uint64_t quota_breaches() const {
    return breaches_.load(std::memory_order_relaxed);
  }

 private:
  MemoryBroker* broker_;
  const uint64_t quota_;
  MemoryBroker::Consumer consumer_;
  std::atomic<uint64_t> bytes_{0};
  std::atomic<uint64_t> peak_bytes_{0};
  std::atomic<uint64_t> breaches_{0};
};

}  // namespace smoothscan

#endif  // SMOOTHSCAN_MEM_MEMORY_BROKER_H_
