// Analytical cost model of Section V: Eqs. (3)–(23) expressing access path
// I/O costs in terms of random/sequential page accesses, plus the SLA
// trigger-point computation and the competitive-ratio analysis of
// Section V-A. Cost units: one sequential page access = `seq_cost`.

#ifndef SMOOTHSCAN_COST_COST_MODEL_H_
#define SMOOTHSCAN_COST_COST_MODEL_H_

#include <cstdint>

#include "storage/sim_disk.h"

namespace smoothscan {

/// The inputs of Table I.
struct CostModelParams {
  uint64_t tuple_size = 80;          ///< TS, bytes (includes tuple overhead).
  uint64_t num_tuples = 0;           ///< #T.
  uint32_t page_size = 8192;         ///< PS, bytes.
  uint32_t key_size = 8;             ///< KS, bytes.
  double rand_cost = 10.0;           ///< randcost (per page).
  double seq_cost = 1.0;             ///< seqcost (per page).

  static CostModelParams ForDevice(const DeviceProfile& device,
                                   uint64_t num_tuples, uint64_t tuple_size,
                                   uint32_t page_size = 8192) {
    CostModelParams p;
    p.tuple_size = tuple_size;
    p.num_tuples = num_tuples;
    p.page_size = page_size;
    p.rand_cost = device.rand_cost;
    p.seq_cost = device.seq_cost;
    return p;
  }
};

/// Per-path CPU cost constants in simulated-time units (seq page read =
/// 1.0), fitted against the executing substrate by the calibration sweep in
/// bench_cost_model_validation (--calibrate). The committed defaults are the
/// sweep's output on the reference configuration; cost_model_test pins the
/// estimate-vs-measured error within bounds so drift between the model and
/// the substrate is caught in CI. The chooser applies these only when a
/// caller passes a model (ChooserOptions::cpu) — the paper's I/O-only ranking
/// stays the default.
struct CalibratedCpuModel {
  double inspect_tuple = 5e-4;  ///< Per heap tuple inspected.
  double produce_tuple = 2e-4;  ///< Per result tuple materialized.
  double index_entry = 5e-5;    ///< Per index-leaf entry advanced.
  double key_check = 5e-4;      ///< Per compressed key check (run or value).
  double zone_consult = 5e-5;   ///< Per compressed zone-map consult.

  /// Full scan: inspect every tuple, produce the qualifiers.
  double FullScanCpu(uint64_t num_tuples, uint64_t card) const {
    return inspect_tuple * static_cast<double>(num_tuples) +
           produce_tuple * static_cast<double>(card);
  }
  /// Index scan: advance `card` leaf entries, materialize each result.
  double IndexScanCpu(uint64_t card) const {
    return (index_entry + inspect_tuple + produce_tuple) *
           static_cast<double>(card);
  }
  /// Compressed scan: one consult per block, one check per key run (dense
  /// fallbacks degrade toward one per tuple — callers fold that into
  /// `key_checks`), one produce per emitted tuple.
  double CompressedScanCpu(uint64_t zone_consults, uint64_t key_checks,
                           uint64_t card) const {
    return zone_consult * static_cast<double>(zone_consults) +
           key_check * static_cast<double>(key_checks) +
           produce_tuple * static_cast<double>(card);
  }
};

/// Per-mode cardinality split of a Smooth Scan execution (Eq. 12).
struct SmoothScanCardinalities {
  uint64_t mode0 = 0;  ///< Tuples produced with the plain index (pre-trigger).
  uint64_t mode1 = 0;  ///< Tuples produced with Entire Page Probe.
  uint64_t mode2 = 0;  ///< Tuples produced with Flattening Access.
};

class CostModel {
 public:
  explicit CostModel(CostModelParams params);

  // ---- Derived values (Eqs. 3–9) ----
  uint64_t TuplesPerPage() const { return tuples_per_page_; }   ///< Eq. (3).
  uint64_t NumPages() const { return num_pages_; }              ///< Eq. (4).
  uint64_t Fanout() const { return fanout_; }                   ///< Eq. (5).
  uint64_t NumLeaves() const { return num_leaves_; }            ///< Eq. (6).
  uint64_t Height() const { return height_; }                   ///< Eq. (7).
  /// Eq. (8): result cardinality at `selectivity` in [0, 1].
  uint64_t Cardinality(double selectivity) const;
  /// Eq. (9): leaf pages holding pointers to `card` results.
  uint64_t LeavesForResults(uint64_t card) const;

  // ---- Operator costs ----
  /// Eq. (10): full scan, independent of selectivity.
  double FullScanCost() const;
  /// Compressed-tier scan: one sequential pass over `compressed_pages`
  /// sibling pages (Eq. 10's shape, shrunk by the measured compression
  /// ratio; zone skipping only ever removes pages from this upper bound).
  double CompressedScanCost(uint64_t compressed_pages) const {
    return static_cast<double>(compressed_pages) * params_.seq_cost;
  }
  /// Eq. (11): non-clustered index scan producing `card` tuples.
  double IndexScanCost(uint64_t card) const;
  /// Eq. (15): Mode 1 over `card_m1` tuples (one random access per result
  /// page, Eq. 14 capping at #P).
  double Mode1Cost(uint64_t card_m1) const;
  /// Eq. (22): Mode 2 over `card_m2` tuples after `pages_m1` pages were
  /// already consumed by Mode 1 (Eq. 16), using the converged random-access
  /// count of Eqs. (20)–(21).
  double Mode2Cost(uint64_t card_m2, uint64_t pages_m1) const;
  /// Eq. (23): total Smooth Scan cost for a per-mode cardinality split.
  double SmoothScanCost(const SmoothScanCardinalities& cards) const;
  /// Convenience: Eager Smooth Scan at `selectivity`, worst-case uniform
  /// spread (Eq. 13), with the first probed page in Mode 1 and the morphed
  /// remainder in Mode 2.
  double EagerSmoothScanCost(double selectivity) const;

  /// Number of random accesses ("jumps") Mode 2 performs to fetch
  /// `pages_m2` pages — Eqs. (20)/(21), which converge to log2(#P + 1).
  double Mode2RandomAccesses(uint64_t pages_m2) const;

  // ---- Section III-C / V: SLA trigger ----
  /// Largest Mode-0 cardinality c such that, even in the worst case
  /// (selectivity 100% from here on), IndexScanCost(c) + the remaining
  /// morphed cost stays within `sla_bound`. Returns 0 when the bound is
  /// unreachable even with immediate morphing.
  uint64_t SlaTriggerCardinality(double sla_bound) const;

  /// Worst-case total cost when morphing is triggered after `card_m0`
  /// index-produced tuples (the monotone function the SLA search inverts).
  double WorstCaseTriggeredCost(uint64_t card_m0) const;

  // ---- Section V-A: competitive analysis ----
  /// Cost of the optimal non-adaptive choice at `selectivity`:
  /// min(full scan, index scan).
  double OptimalCost(double selectivity) const;
  /// Numeric competitive ratio of Eager Smooth Scan: max over a selectivity
  /// grid of EagerSmoothScanCost / OptimalCost.
  double EagerCompetitiveRatio() const;
  /// The paper's analytic worst case for Elastic Smooth Scan — every second
  /// page has a match, so flattening never engages: (randcost + seqcost) /
  /// (2 * seqcost) relative to a full scan. 5.5 for HDD, 3 for SSD.
  double ElasticWorstCaseRatio() const;
  /// The theoretical bound (1 + randcost / seqcost): 11 for HDD, 6 for SSD.
  double TheoreticalBound() const;

  const CostModelParams& params() const { return params_; }

 private:
  CostModelParams params_;
  uint64_t tuples_per_page_;
  uint64_t num_pages_;
  uint64_t fanout_;
  uint64_t num_leaves_;
  uint64_t height_;
};

}  // namespace smoothscan

#endif  // SMOOTHSCAN_COST_COST_MODEL_H_
