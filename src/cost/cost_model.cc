#include "cost/cost_model.h"

#include <algorithm>
#include <cmath>

#include "common/status.h"

namespace smoothscan {

CostModel::CostModel(CostModelParams params) : params_(params) {
  SMOOTHSCAN_CHECK(params_.tuple_size > 0 && params_.page_size > 0);
  SMOOTHSCAN_CHECK(params_.tuple_size <= params_.page_size);
  // Eq. (3): #TP = floor(PS / TS).
  tuples_per_page_ = params_.page_size / params_.tuple_size;
  // Eq. (4): #P = ceil(#T / #TP).
  num_pages_ = (params_.num_tuples + tuples_per_page_ - 1) / tuples_per_page_;
  // Eq. (5): fanout = floor(PS / (1.2 * KS)).
  fanout_ = static_cast<uint64_t>(params_.page_size /
                                  (1.2 * static_cast<double>(params_.key_size)));
  SMOOTHSCAN_CHECK(fanout_ >= 2);
  // Eq. (6): #leaves = ceil(#T / fanout).
  num_leaves_ = (params_.num_tuples + fanout_ - 1) / fanout_;
  // Eq. (7): height = ceil(log_fanout(#leaves)) + 1.
  if (num_leaves_ <= 1) {
    height_ = 1;
  } else {
    height_ = static_cast<uint64_t>(
                  std::ceil(std::log(static_cast<double>(num_leaves_)) /
                            std::log(static_cast<double>(fanout_)))) +
              1;
  }
}

uint64_t CostModel::Cardinality(double selectivity) const {
  SMOOTHSCAN_CHECK(selectivity >= 0.0 && selectivity <= 1.0);
  return static_cast<uint64_t>(selectivity *
                               static_cast<double>(params_.num_tuples));
}

uint64_t CostModel::LeavesForResults(uint64_t card) const {
  // Eq. (9): ceil(card / fanout).
  return (card + fanout_ - 1) / fanout_;
}

double CostModel::FullScanCost() const {
  // Eq. (10).
  return static_cast<double>(num_pages_) * params_.seq_cost;
}

double CostModel::IndexScanCost(uint64_t card) const {
  if (card == 0) return 0.0;
  // Eq. (11): one descent, one random heap access per result, sequential
  // traversal of the result-bearing leaves.
  return (static_cast<double>(height_) + static_cast<double>(card)) *
             params_.rand_cost +
         static_cast<double>(LeavesForResults(card)) * params_.seq_cost;
}

double CostModel::Mode1Cost(uint64_t card_m1) const {
  // Eq. (14): #Pm1 = min(cardm1, #P) — worst-case uniform spread puts every
  // result on its own page. Eq. (15): every page fetched randomly.
  const uint64_t pages_m1 = std::min(card_m1, num_pages_);
  return static_cast<double>(pages_m1) * params_.rand_cost;
}

double CostModel::Mode2RandomAccesses(uint64_t pages_m2) const {
  // Eqs. (20)–(21) converge to log2(#P + 1); the paper uses that value.
  const double bound = std::log2(static_cast<double>(num_pages_) + 1.0);
  return std::min(static_cast<double>(pages_m2), bound);
}

double CostModel::Mode2Cost(uint64_t card_m2, uint64_t pages_m1) const {
  // Eq. (16): pages already processed in Mode 1 are skipped.
  const uint64_t pages_m2 =
      std::min(card_m2, num_pages_ - std::min(pages_m1, num_pages_));
  if (pages_m2 == 0) return 0.0;
  // Eq. (22).
  const double jumps = Mode2RandomAccesses(pages_m2);
  return jumps * params_.rand_cost +
         (static_cast<double>(pages_m2) - jumps) * params_.seq_cost;
}

double CostModel::SmoothScanCost(const SmoothScanCardinalities& cards) const {
  // Eq. (23): SScost = SScost_m0 + SScost_m1 + SScost_m2.
  const uint64_t pages_m1 = std::min(cards.mode1, num_pages_);
  return IndexScanCost(cards.mode0) + Mode1Cost(cards.mode1) +
         Mode2Cost(cards.mode2, pages_m1);
}

double CostModel::EagerSmoothScanCost(double selectivity) const {
  const uint64_t card = Cardinality(selectivity);
  if (card == 0) {
    // Just the tree descent.
    return static_cast<double>(height_) * params_.rand_cost;
  }
  SmoothScanCardinalities cards;
  cards.mode1 = std::min<uint64_t>(card, 1);
  cards.mode2 = card - cards.mode1;
  return static_cast<double>(height_) * params_.rand_cost +
         SmoothScanCost(cards);
}

double CostModel::WorstCaseTriggeredCost(uint64_t card_m0) const {
  // After card_m0 index-produced tuples, assume the worst: everything else
  // qualifies, so Smooth Scan must morph across the whole table in Mode 2.
  SmoothScanCardinalities cards;
  cards.mode0 = card_m0;
  cards.mode2 = params_.num_tuples > card_m0 ? params_.num_tuples - card_m0 : 0;
  return SmoothScanCost(cards);
}

uint64_t CostModel::SlaTriggerCardinality(double sla_bound) const {
  if (WorstCaseTriggeredCost(0) > sla_bound) return 0;
  // WorstCaseTriggeredCost is monotonically increasing in card_m0 (each
  // Mode-0 tuple adds a full random access while removing at most one
  // sequential Mode-2 page): binary-search the largest card within bound.
  uint64_t lo = 0;
  uint64_t hi = params_.num_tuples;
  while (lo < hi) {
    const uint64_t mid = lo + (hi - lo + 1) / 2;
    if (WorstCaseTriggeredCost(mid) <= sla_bound) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  return lo;
}

double CostModel::OptimalCost(double selectivity) const {
  return std::min(FullScanCost(), IndexScanCost(Cardinality(selectivity)));
}

double CostModel::EagerCompetitiveRatio() const {
  double worst = 1.0;
  // Log-spaced selectivity grid covering the paper's 0.0001%–100% interval.
  for (double sel = 1e-6; sel <= 1.0; sel *= 1.5) {
    const double optimal = OptimalCost(std::min(sel, 1.0));
    if (optimal <= 0.0) continue;
    worst = std::max(worst, EagerSmoothScanCost(std::min(sel, 1.0)) / optimal);
  }
  return worst;
}

double CostModel::ElasticWorstCaseRatio() const {
  // Every second page has a match: Smooth Scan pays one random access per
  // result page over #P/2 pages; the full scan pays #P sequential accesses.
  return (params_.rand_cost + params_.seq_cost) / (2.0 * params_.seq_cost);
}

double CostModel::TheoreticalBound() const {
  return 1.0 + params_.rand_cost / params_.seq_cost;
}

}  // namespace smoothscan
