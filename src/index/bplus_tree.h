// Non-clustered B+-tree secondary index over INT64 keys (integers and dates;
// every indexed column in the paper's workloads is one of the two).
//
// Leaf entries are (key, Tid) pairs kept in strict (key, Tid) order — the
// ordering the paper notes lets a DBMS avoid the Tuple ID Cache. Leaves are
// chained; a bulk-built tree lays leaves out at consecutive page ids so that
// a leaf-to-leaf traversal is a sequential access pattern, matching the
// #leaves_res * seq_cost term of the paper's Eq. (11).
//
// I/O accounting: each node occupies one logical page of the index file.
// Node *content* is kept in memory (serializing nodes to page bytes would add
// code without changing any measured quantity), while node *accesses* go
// through the buffer pool, so tree descents charge random I/Os until the
// internal nodes become resident — the paper's assumption that internal nodes
// (~1% of the data) end up cached.

#ifndef SMOOTHSCAN_INDEX_BPLUS_TREE_H_
#define SMOOTHSCAN_INDEX_BPLUS_TREE_H_

#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "storage/engine.h"
#include "storage/exec_context.h"
#include "storage/heap_file.h"

namespace smoothscan {

/// Structural metadata mirroring the derived values of the paper's Table I.
struct IndexMeta {
  uint32_t fanout = 0;       ///< Max children of an internal node (Eq. 5).
  uint32_t leaf_capacity = 0;///< Max (key, Tid) entries per leaf.
  uint32_t height = 0;       ///< Levels including the leaf level (Eq. 7).
  uint64_t num_leaves = 0;   ///< Leaf count (Eq. 6).
  uint64_t num_entries = 0;  ///< Total (key, Tid) entries.
};

/// Tuning knobs. Defaults follow the paper's cost model: fanout derived from
/// the page size with 20% per-key pointer overhead (Eq. 5).
struct BPlusTreeOptions {
  /// Indexed key size in bytes (KS in Table I).
  uint32_t key_size = 8;
  /// When nonzero, overrides the Eq.-5-derived fanout (useful in tests to
  /// force deep trees with little data).
  uint32_t fanout_override = 0;
  /// When nonzero, overrides the derived leaf capacity.
  uint32_t leaf_capacity_override = 0;
};

/// Non-clustered secondary B+-tree index.
class BPlusTree {
 public:
  /// An index over `heap`'s column `key_column` (must be INT64 or DATE).
  /// The tree starts empty; use BulkBuild or Insert to populate it.
  BPlusTree(Engine* engine, std::string name, const HeapFile* heap,
            int key_column, BPlusTreeOptions options = BPlusTreeOptions());

  BPlusTree(const BPlusTree&) = delete;
  BPlusTree& operator=(const BPlusTree&) = delete;

  /// Builds the tree bottom-up from all tuples currently in the heap file.
  /// Build-time operation: not I/O-accounted. Replaces any existing content.
  void BulkBuild();

  /// Inserts one entry (standard top-down insert with node splits).
  /// Build-time operation: not I/O-accounted.
  void Insert(int64_t key, Tid tid);

  /// Removes the entry (key, tid); returns false when absent. Like
  /// PostgreSQL, leaves are never merged or rebalanced on delete — a leaf may
  /// go underfull or empty (iterators skip empty leaves), and the space is
  /// reclaimed by later inserts into the leaf. Maintenance operation: not
  /// I/O-accounted (applied at snapshot publish; see write/table_version.h).
  bool Remove(int64_t key, Tid tid);

  /// Forward iterator over leaf entries; query-time accesses are charged to
  /// the engine's buffer pool / CPU meter — or, when the iterator was
  /// obtained with an ExecContext, to that context's stream instead.
  class Iterator {
   public:
    bool Valid() const { return leaf_ != kInvalidPageId; }
    int64_t key() const;
    Tid tid() const;
    /// Advances to the next entry in (key, Tid) order.
    void Next();

   private:
    friend class BPlusTree;
    Iterator(const BPlusTree* tree, PageId leaf, uint32_t pos,
             const ExecContext* ctx)
        : tree_(tree), leaf_(leaf), pos_(pos), ctx_(ctx) {}

    BufferPool& pool() const;
    CpuMeter& cpu() const;

    const BPlusTree* tree_;
    PageId leaf_;
    uint32_t pos_;
    /// Borrowed accounting context; null = the tree's engine. Must outlive
    /// the iterator (morsel contexts outlive their morsel's scan).
    const ExecContext* ctx_;
  };

  /// First entry with key >= `lo`, charging the tree descent (height random
  /// I/Os on a cold buffer pool). Invalid iterator when no such entry exists.
  /// `ctx` redirects the descent and all iteration charges (null = engine).
  Iterator Seek(int64_t lo, const ExecContext* ctx = nullptr) const;

  /// First entry of the index (also charges a descent).
  Iterator Begin() const;

  /// Splits the qualifying key range [lo, hi) into up to `max_parts`
  /// contiguous sub-ranges covering roughly equal numbers of index entries,
  /// using the leaf level as an exact histogram. Returns ascending bounds
  /// {lo, b1, ..., hi}; part i is [bounds[i], bounds[i+1]). Planning helper:
  /// walks the in-memory nodes free of charge, like the optimizer's
  /// statistics would be consulted.
  std::vector<int64_t> PartitionKeyRange(int64_t lo, int64_t hi,
                                         uint32_t max_parts) const;

  /// Key separators stored in the root node. The paper uses these as the
  /// key-range partition boundaries of the Result Cache ("the root page is a
  /// good indicator of the key value distributions").
  std::vector<int64_t> RootSeparators() const;

  IndexMeta meta() const;
  const std::string& name() const { return name_; }
  int key_column() const { return key_column_; }
  const HeapFile* heap() const { return heap_; }
  FileId file_id() const { return file_id_; }

  /// Smallest / largest key present (undefined when empty).
  int64_t MinKey() const;
  int64_t MaxKey() const;
  uint64_t num_entries() const { return num_entries_; }

  /// Verifies structural invariants (sorted keys, balanced depth, fanout
  /// bounds, leaf chain completeness). Test support; aborts on violation.
  void CheckInvariants() const;

 private:
  struct Node {
    bool is_leaf = true;
    std::vector<int64_t> keys;      // Leaf: entry keys. Internal: separators.
    std::vector<Tid> tids;          // Leaf only, parallel to keys.
    std::vector<PageId> children;   // Internal only, keys.size() + 1 entries.
    PageId next_leaf = kInvalidPageId;
  };

  PageId NewNode(bool is_leaf);
  Node& node(PageId id) { return *nodes_[id]; }
  const Node& node(PageId id) const { return *nodes_[id]; }

  /// Descends from the root to the leaf that may contain `key`, charging one
  /// buffer-pool fetch per visited node to `pool`. Returns the leaf page id.
  PageId DescendAccounted(int64_t key, BufferPool* pool) const;

  /// Recursive insert; returns the (separator, new right sibling) on split.
  struct SplitResult {
    bool split = false;
    int64_t separator = 0;
    PageId right = kInvalidPageId;
  };
  SplitResult InsertRec(PageId node_id, int64_t key, Tid tid);

  void CheckRec(PageId node_id, uint32_t depth, uint32_t leaf_depth,
                int64_t lo, int64_t hi, uint64_t* entries_seen) const;

  Engine* engine_;
  std::string name_;
  const HeapFile* heap_;
  int key_column_;
  BPlusTreeOptions options_;
  uint32_t fanout_;
  uint32_t leaf_capacity_;

  FileId file_id_;
  std::vector<std::unique_ptr<Node>> nodes_;
  PageId root_ = kInvalidPageId;
  PageId first_leaf_ = kInvalidPageId;
  uint64_t num_entries_ = 0;
  uint32_t height_ = 0;
};

}  // namespace smoothscan

#endif  // SMOOTHSCAN_INDEX_BPLUS_TREE_H_
