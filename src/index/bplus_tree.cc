#include "index/bplus_tree.h"

#include <algorithm>

namespace smoothscan {

namespace {

/// Eq. (5): fanout = PS / (1.2 * KS) — 20% per-key overhead for the child
/// pointer.
uint32_t DeriveFanout(uint32_t page_size, uint32_t key_size) {
  return std::max<uint32_t>(2, static_cast<uint32_t>(
      page_size / (1.2 * static_cast<double>(key_size))));
}

/// Leaf entries carry the key plus an 8-byte Tid.
uint32_t DeriveLeafCapacity(uint32_t page_size, uint32_t key_size) {
  return std::max<uint32_t>(2, static_cast<uint32_t>(
      page_size / (1.2 * static_cast<double>(key_size + 8))));
}

}  // namespace

BPlusTree::BPlusTree(Engine* engine, std::string name, const HeapFile* heap,
                     int key_column, BPlusTreeOptions options)
    : engine_(engine),
      name_(std::move(name)),
      heap_(heap),
      key_column_(key_column),
      options_(options) {
  SMOOTHSCAN_CHECK(heap_ != nullptr);
  SMOOTHSCAN_CHECK(key_column_ >= 0 &&
                   static_cast<size_t>(key_column_) < heap_->schema().num_columns());
  const ValueType type = heap_->schema().column(key_column_).type;
  SMOOTHSCAN_CHECK(type == ValueType::kInt64 || type == ValueType::kDate);
  const uint32_t page_size = engine_->storage().page_size();
  fanout_ = options_.fanout_override != 0
                ? options_.fanout_override
                : DeriveFanout(page_size, options_.key_size);
  leaf_capacity_ = options_.leaf_capacity_override != 0
                       ? options_.leaf_capacity_override
                       : DeriveLeafCapacity(page_size, options_.key_size);
  file_id_ = engine_->storage().CreateFile(name_);
}

PageId BPlusTree::NewNode(bool is_leaf) {
  const PageId mirror = engine_->storage().AppendPage(file_id_);
  nodes_.push_back(std::make_unique<Node>());
  nodes_.back()->is_leaf = is_leaf;
  SMOOTHSCAN_CHECK(mirror == nodes_.size() - 1);
  return mirror;
}

void BPlusTree::BulkBuild() {
  SMOOTHSCAN_CHECK(nodes_.empty());  // A tree is bulk-built at most once.

  struct Entry {
    int64_t key;
    Tid tid;
  };
  std::vector<Entry> entries;
  entries.reserve(heap_->num_tuples());
  heap_->ForEachDirect([&](Tid tid, const Tuple& tuple) {
    entries.push_back({tuple[key_column_].AsInt64(), tid});
  });
  std::sort(entries.begin(), entries.end(), [](const Entry& a, const Entry& b) {
    return a.key != b.key ? a.key < b.key : a.tid < b.tid;
  });
  num_entries_ = entries.size();

  if (entries.empty()) {
    root_ = NewNode(/*is_leaf=*/true);
    first_leaf_ = root_;
    height_ = 1;
    return;
  }

  // Level 0: fully packed leaves at consecutive page ids, chained in order.
  struct LevelNode {
    PageId id;
    int64_t min_key;
  };
  std::vector<LevelNode> level;
  for (size_t i = 0; i < entries.size(); i += leaf_capacity_) {
    const PageId id = NewNode(/*is_leaf=*/true);
    Node& n = node(id);
    const size_t end = std::min(entries.size(), i + leaf_capacity_);
    for (size_t j = i; j < end; ++j) {
      n.keys.push_back(entries[j].key);
      n.tids.push_back(entries[j].tid);
    }
    if (!level.empty()) node(level.back().id).next_leaf = id;
    level.push_back({id, n.keys.front()});
  }
  first_leaf_ = level.front().id;
  height_ = 1;

  // Upper levels: group `fanout_` children per internal node; separator i is
  // the min key of child i (i >= 1).
  while (level.size() > 1) {
    std::vector<LevelNode> next;
    for (size_t i = 0; i < level.size(); i += fanout_) {
      const PageId id = NewNode(/*is_leaf=*/false);
      Node& n = node(id);
      const size_t end = std::min(level.size(), i + fanout_);
      for (size_t j = i; j < end; ++j) {
        if (j > i) n.keys.push_back(level[j].min_key);
        n.children.push_back(level[j].id);
      }
      next.push_back({id, level[i].min_key});
    }
    level = std::move(next);
    ++height_;
  }
  root_ = level.front().id;
}

void BPlusTree::Insert(int64_t key, Tid tid) {
  if (nodes_.empty()) {
    root_ = NewNode(/*is_leaf=*/true);
    first_leaf_ = root_;
    height_ = 1;
  }
  const SplitResult split = InsertRec(root_, key, tid);
  if (split.split) {
    const PageId new_root = NewNode(/*is_leaf=*/false);
    Node& r = node(new_root);
    r.keys.push_back(split.separator);
    r.children.push_back(root_);
    r.children.push_back(split.right);
    root_ = new_root;
    ++height_;
  }
  ++num_entries_;
}

BPlusTree::SplitResult BPlusTree::InsertRec(PageId node_id, int64_t key,
                                            Tid tid) {
  Node& n = node(node_id);
  if (n.is_leaf) {
    // Position by (key, Tid) to keep the strict leaf ordering.
    size_t pos = 0;
    while (pos < n.keys.size() &&
           (n.keys[pos] < key || (n.keys[pos] == key && n.tids[pos] < tid))) {
      ++pos;
    }
    n.keys.insert(n.keys.begin() + pos, key);
    n.tids.insert(n.tids.begin() + pos, tid);
    if (n.keys.size() <= leaf_capacity_) return {};

    // Split in half; the right sibling takes the upper entries.
    const size_t mid = n.keys.size() / 2;
    const PageId right_id = NewNode(/*is_leaf=*/true);
    Node& left = node(node_id);  // NewNode may reallocate nodes_.
    Node& right = node(right_id);
    right.keys.assign(left.keys.begin() + mid, left.keys.end());
    right.tids.assign(left.tids.begin() + mid, left.tids.end());
    left.keys.resize(mid);
    left.tids.resize(mid);
    right.next_leaf = left.next_leaf;
    left.next_leaf = right_id;
    return {true, right.keys.front(), right_id};
  }

  // Internal: child index = number of separators < key (see Seek comment).
  const size_t child_idx = static_cast<size_t>(
      std::lower_bound(n.keys.begin(), n.keys.end(), key) - n.keys.begin());
  const PageId child = n.children[child_idx];
  const SplitResult child_split = InsertRec(child, key, tid);
  if (!child_split.split) return {};

  Node& self = node(node_id);  // Re-fetch: recursion may have reallocated.
  self.keys.insert(self.keys.begin() + child_idx, child_split.separator);
  self.children.insert(self.children.begin() + child_idx + 1,
                       child_split.right);
  if (self.children.size() <= fanout_) return {};

  // Split the internal node; the middle separator moves up.
  const size_t mid_key = self.keys.size() / 2;
  const int64_t up = self.keys[mid_key];
  const PageId right_id = NewNode(/*is_leaf=*/false);
  Node& left = node(node_id);
  Node& right = node(right_id);
  right.keys.assign(left.keys.begin() + mid_key + 1, left.keys.end());
  right.children.assign(left.children.begin() + mid_key + 1,
                        left.children.end());
  left.keys.resize(mid_key);
  left.children.resize(mid_key + 1);
  return {true, up, right_id};
}

bool BPlusTree::Remove(int64_t key, Tid tid) {
  if (nodes_.empty() || num_entries_ == 0) return false;
  // Free descent to the leftmost candidate leaf, then walk right through the
  // (possibly duplicate-straddling) run until the exact (key, tid) entry.
  PageId cur = root_;
  while (!node(cur).is_leaf) {
    const Node& n = node(cur);
    const size_t idx = static_cast<size_t>(
        std::lower_bound(n.keys.begin(), n.keys.end(), key) - n.keys.begin());
    cur = n.children[idx];
  }
  for (PageId leaf = cur; leaf != kInvalidPageId; leaf = node(leaf).next_leaf) {
    Node& n = node(leaf);
    if (n.keys.empty()) continue;      // Deletion-emptied leaf mid-run.
    if (n.keys.front() > key) break;   // Walked past any possible match.
    size_t pos = static_cast<size_t>(
        std::lower_bound(n.keys.begin(), n.keys.end(), key) - n.keys.begin());
    while (pos < n.keys.size() && n.keys[pos] == key) {
      if (n.tids[pos] == tid) {
        n.keys.erase(n.keys.begin() + pos);
        n.tids.erase(n.tids.begin() + pos);
        --num_entries_;
        return true;
      }
      ++pos;
    }
    // pos stopped on a key > `key`: the run is over. Otherwise every key from
    // lower_bound to the end equals `key`, so the run may continue right.
    if (pos < n.keys.size()) break;
  }
  return false;
}

PageId BPlusTree::DescendAccounted(int64_t key, BufferPool* pool) const {
  SMOOTHSCAN_CHECK(!nodes_.empty());
  PageId cur = root_;
  while (true) {
    pool->Fetch(file_id_, cur);
    const Node& n = node(cur);
    if (n.is_leaf) return cur;
    // Child index = number of separators strictly below `key`. Because a run
    // of duplicate keys may straddle a leaf boundary (the separator equals
    // the duplicate), a lookup must land on the *leftmost* candidate leaf.
    const size_t idx = static_cast<size_t>(
        std::lower_bound(n.keys.begin(), n.keys.end(), key) - n.keys.begin());
    cur = n.children[idx];
  }
}

BPlusTree::Iterator BPlusTree::Seek(int64_t lo, const ExecContext* ctx) const {
  BufferPool* pool = ctx != nullptr ? ctx->pool : &engine_->pool();
  if (nodes_.empty() || num_entries_ == 0) {
    return Iterator(this, kInvalidPageId, 0, ctx);
  }
  PageId leaf = DescendAccounted(lo, pool);
  const Node& n = node(leaf);
  uint32_t pos = static_cast<uint32_t>(
      std::lower_bound(n.keys.begin(), n.keys.end(), lo) - n.keys.begin());
  // All keys in this leaf below `lo` (or the leaf deletion-emptied): the
  // first match, if any, starts in a following non-empty leaf.
  while (leaf != kInvalidPageId && pos >= node(leaf).keys.size()) {
    leaf = node(leaf).next_leaf;
    pos = 0;
    if (leaf != kInvalidPageId) pool->Fetch(file_id_, leaf);
  }
  return Iterator(this, leaf, pos, ctx);
}

BPlusTree::Iterator BPlusTree::Begin() const {
  if (nodes_.empty() || num_entries_ == 0) {
    return Iterator(this, kInvalidPageId, 0, nullptr);
  }
  // Charge the leftmost descent, then skip any deletion-emptied leaves.
  PageId cur = root_;
  while (true) {
    engine_->pool().Fetch(file_id_, cur);
    const Node& n = node(cur);
    if (n.is_leaf) break;
    cur = n.children.front();
  }
  while (cur != kInvalidPageId && node(cur).keys.empty()) {
    cur = node(cur).next_leaf;
    if (cur != kInvalidPageId) engine_->pool().Fetch(file_id_, cur);
  }
  return Iterator(this, cur, 0, nullptr);
}

BufferPool& BPlusTree::Iterator::pool() const {
  return ctx_ != nullptr ? *ctx_->pool : tree_->engine_->pool();
}

CpuMeter& BPlusTree::Iterator::cpu() const {
  return ctx_ != nullptr ? *ctx_->cpu : tree_->engine_->cpu();
}

int64_t BPlusTree::Iterator::key() const {
  SMOOTHSCAN_CHECK(Valid());
  return tree_->node(leaf_).keys[pos_];
}

Tid BPlusTree::Iterator::tid() const {
  SMOOTHSCAN_CHECK(Valid());
  return tree_->node(leaf_).tids[pos_];
}

void BPlusTree::Iterator::Next() {
  SMOOTHSCAN_CHECK(Valid());
  cpu().ChargeIndexEntry();
  ++pos_;
  // Advance across leaf boundaries, skipping deletion-emptied leaves (each
  // visited leaf is still a charged node access).
  while (leaf_ != kInvalidPageId && pos_ >= tree_->node(leaf_).keys.size()) {
    leaf_ = tree_->node(leaf_).next_leaf;
    pos_ = 0;
    if (leaf_ != kInvalidPageId) {
      pool().Fetch(tree_->file_id_, leaf_);
    }
  }
}

std::vector<int64_t> BPlusTree::PartitionKeyRange(int64_t lo, int64_t hi,
                                                  uint32_t max_parts) const {
  std::vector<int64_t> bounds = {lo};
  if (max_parts <= 1 || nodes_.empty() || num_entries_ == 0 || lo >= hi) {
    bounds.push_back(hi);
    return bounds;
  }
  // Count qualifying entries with a free leaf walk (exact histogram).
  uint64_t in_range = 0;
  for (PageId leaf = first_leaf_; leaf != kInvalidPageId;
       leaf = node(leaf).next_leaf) {
    for (const int64_t k : node(leaf).keys) {
      if (k >= lo && k < hi) ++in_range;
    }
  }
  if (in_range == 0) {
    bounds.push_back(hi);
    return bounds;
  }
  const uint64_t per_part = (in_range + max_parts - 1) / max_parts;
  uint64_t seen = 0;
  uint64_t next_cut = per_part;
  for (PageId leaf = first_leaf_; leaf != kInvalidPageId;
       leaf = node(leaf).next_leaf) {
    for (const int64_t k : node(leaf).keys) {
      if (k < lo || k >= hi) continue;
      if (seen >= next_cut && k > bounds.back()) {
        // Cut *before* this key so a duplicate run never straddles parts.
        bounds.push_back(k);
        next_cut = seen + per_part;
      }
      ++seen;
    }
  }
  bounds.push_back(hi);
  return bounds;
}

std::vector<int64_t> BPlusTree::RootSeparators() const {
  if (nodes_.empty()) return {};
  return node(root_).keys;
}

IndexMeta BPlusTree::meta() const {
  IndexMeta m;
  m.fanout = fanout_;
  m.leaf_capacity = leaf_capacity_;
  m.height = height_;
  m.num_entries = num_entries_;
  uint64_t leaves = 0;
  for (PageId leaf = first_leaf_; leaf != kInvalidPageId;
       leaf = node(leaf).next_leaf) {
    ++leaves;
  }
  m.num_leaves = leaves;
  return m;
}

int64_t BPlusTree::MinKey() const {
  SMOOTHSCAN_CHECK(num_entries_ > 0);
  PageId cur = first_leaf_;
  while (node(cur).keys.empty()) cur = node(cur).next_leaf;
  return node(cur).keys.front();
}

int64_t BPlusTree::MaxKey() const {
  SMOOTHSCAN_CHECK(num_entries_ > 0);
  // Deletes may empty the rightmost leaves, so descend-to-rightmost is not
  // enough; walk the (in-memory, free) chain tracking the last non-empty.
  int64_t max_key = 0;
  for (PageId leaf = first_leaf_; leaf != kInvalidPageId;
       leaf = node(leaf).next_leaf) {
    if (!node(leaf).keys.empty()) max_key = node(leaf).keys.back();
  }
  return max_key;
}

void BPlusTree::CheckRec(PageId node_id, uint32_t depth, uint32_t leaf_depth,
                         int64_t lo, int64_t hi,
                         uint64_t* entries_seen) const {
  const Node& n = node(node_id);
  SMOOTHSCAN_CHECK(std::is_sorted(n.keys.begin(), n.keys.end()));
  for (const int64_t k : n.keys) {
    SMOOTHSCAN_CHECK(k >= lo && k <= hi);
  }
  if (n.is_leaf) {
    SMOOTHSCAN_CHECK(depth == leaf_depth);
    SMOOTHSCAN_CHECK(n.keys.size() == n.tids.size());
    SMOOTHSCAN_CHECK(n.keys.size() <= leaf_capacity_);
    for (size_t i = 1; i < n.keys.size(); ++i) {
      // Strict (key, Tid) order within a leaf.
      SMOOTHSCAN_CHECK(n.keys[i - 1] < n.keys[i] ||
                       (n.keys[i - 1] == n.keys[i] && n.tids[i - 1] < n.tids[i]));
    }
    *entries_seen += n.keys.size();
    return;
  }
  SMOOTHSCAN_CHECK(n.children.size() == n.keys.size() + 1);
  SMOOTHSCAN_CHECK(n.children.size() <= fanout_);
  if (node_id != root_) SMOOTHSCAN_CHECK(n.children.size() >= 2);
  for (size_t i = 0; i < n.children.size(); ++i) {
    // Duplicates may straddle separators, so both bounds are inclusive.
    const int64_t child_lo = i == 0 ? lo : n.keys[i - 1];
    const int64_t child_hi = i == n.keys.size() ? hi : n.keys[i];
    CheckRec(n.children[i], depth + 1, leaf_depth, child_lo, child_hi,
             entries_seen);
  }
}

void BPlusTree::CheckInvariants() const {
  if (nodes_.empty()) return;
  uint64_t entries = 0;
  CheckRec(root_, 1, height_, std::numeric_limits<int64_t>::min(),
           std::numeric_limits<int64_t>::max(), &entries);
  SMOOTHSCAN_CHECK(entries == num_entries_);
  // The leaf chain must visit every entry in order.
  uint64_t chained = 0;
  for (PageId leaf = first_leaf_; leaf != kInvalidPageId;
       leaf = node(leaf).next_leaf) {
    chained += node(leaf).keys.size();
  }
  SMOOTHSCAN_CHECK(chained == num_entries_);
}

}  // namespace smoothscan
