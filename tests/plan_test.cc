// Optimizer tests: histogram-based selectivity estimation, the textbook
// access-path choice as a function of (possibly corrupted) statistics, and
// the MakePath factory.

#include <gtest/gtest.h>

#include "plan/access_path_chooser.h"
#include "workload/micro_bench.h"

namespace smoothscan {
namespace {

class PlanTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    engine_ = new Engine();
    MicroBenchSpec spec;
    spec.num_tuples = 20000;
    db_ = new MicroBenchDb(engine_, spec);
    stats_ = new TableStats(
        TableStats::Compute(db_->heap(), MicroBenchDb::kIndexedColumn));
  }
  static void TearDownTestSuite() {
    delete stats_;
    delete db_;
    delete engine_;
    stats_ = nullptr;
    db_ = nullptr;
    engine_ = nullptr;
  }

  static CostModel Model() {
    CostModelParams params;
    params.num_tuples = db_->heap().num_tuples();
    params.tuple_size =
        8192 / (db_->heap().num_tuples() / db_->heap().num_pages());
    return CostModel(params);
  }

  static Engine* engine_;
  static MicroBenchDb* db_;
  static TableStats* stats_;
};

Engine* PlanTest::engine_ = nullptr;
MicroBenchDb* PlanTest::db_ = nullptr;
TableStats* PlanTest::stats_ = nullptr;

TEST_F(PlanTest, HistogramEstimatesUniformRange) {
  // c2 is uniform on [0, 100000]: a quarter range is ~25% selective.
  const double sel = stats_->EstimateSelectivity(0, 25000);
  EXPECT_NEAR(sel, 0.25, 0.03);
}

TEST_F(PlanTest, EstimateFullAndEmptyRanges) {
  EXPECT_NEAR(stats_->EstimateSelectivity(0, 100001), 1.0, 1e-6);
  EXPECT_DOUBLE_EQ(stats_->EstimateSelectivity(10, 10), 0.0);
  EXPECT_DOUBLE_EQ(stats_->EstimateSelectivity(200000, 300000), 0.0);
}

TEST_F(PlanTest, CardinalityMatchesSelectivity) {
  const uint64_t card = stats_->EstimateCardinality(0, 50000);
  EXPECT_NEAR(static_cast<double>(card), 10000.0, 800.0);
}

TEST_F(PlanTest, CorruptionScalesEstimates) {
  TableStats corrupted = *stats_;
  corrupted.CorruptScale(0.01);
  EXPECT_NEAR(corrupted.EstimateSelectivity(0, 100001), 0.01, 0.001);
}

TEST_F(PlanTest, ChoosesFullScanForHighSelectivity) {
  const PlanChoice c =
      AccessPathChooser::Choose(*stats_, Model(), 0, 90000, false);
  EXPECT_NE(c.kind, PathKind::kIndexScan);
  EXPECT_GT(c.estimated_selectivity, 0.8);
}

TEST_F(PlanTest, ChoosesIndexForPointQuery) {
  const PlanChoice c = AccessPathChooser::Choose(*stats_, Model(), 0, 3, false);
  // A handful of tuples: an index-based path must win over the full scan.
  EXPECT_NE(c.kind, PathKind::kFullScan);
}

TEST_F(PlanTest, CorruptedStatsFlipTheChoice) {
  // The Fig. 1 mechanism: with honest stats a 60% predicate gets a scan-like
  // path; with 1000x-underestimating stats the optimizer believes it's a
  // point query and picks an index-based path.
  const CostModel model = Model();
  const PlanChoice honest =
      AccessPathChooser::Choose(*stats_, model, 0, 60000, false);
  TableStats corrupted = *stats_;
  corrupted.CorruptScale(0.001);
  const PlanChoice fooled =
      AccessPathChooser::Choose(corrupted, model, 0, 60000, false);
  EXPECT_NE(honest.kind, PathKind::kIndexScan);
  // The fooled optimizer picks an index-based path (index or bitmap scan).
  EXPECT_NE(fooled.kind, PathKind::kFullScan);
  EXPECT_LT(fooled.estimated_cardinality, honest.estimated_cardinality / 100);
}

TEST_F(PlanTest, OrderRequirementPenalizesScans) {
  // With an interesting order, index-based paths avoid the posterior sort.
  const CostModel model = Model();
  const PlanChoice without =
      AccessPathChooser::Choose(*stats_, model, 0, 50, false);
  const PlanChoice with =
      AccessPathChooser::Choose(*stats_, model, 0, 50, true);
  EXPECT_LE(with.estimated_cost, without.estimated_cost * 100);
  EXPECT_NE(with.kind, PathKind::kFullScan);
}

TEST_F(PlanTest, DopScalesWallEstimateNotSimulatedCost) {
  const CostModel model = Model();
  ChooserOptions serial;
  const PlanChoice at1 = AccessPathChooser::Choose(*stats_, model, 0, 90000,
                                                   serial);
  ChooserOptions eight;
  eight.dop = 8;
  const PlanChoice at8 = AccessPathChooser::Choose(*stats_, model, 0, 90000,
                                                   eight);
  // Simulated cost is DOP-invariant; only the wall estimate shrinks.
  EXPECT_DOUBLE_EQ(at8.estimated_cost, at1.estimated_cost);
  EXPECT_LT(at8.estimated_wall_cost, at1.estimated_cost);
  EXPECT_DOUBLE_EQ(at1.estimated_wall_cost, at1.estimated_cost);
  EXPECT_EQ(at8.dop, 8u);
}

TEST_F(PlanTest, MakePathWithDopReturnsParallelVariant) {
  const ScanPredicate pred = db_->PredicateForSelectivity(0.05);
  ParallelScanOptions parallel;
  parallel.dop = 4;
  for (const PathKind kind :
       {PathKind::kFullScan, PathKind::kIndexScan, PathKind::kSortScan,
        PathKind::kSwitchScan, PathKind::kSmoothScan}) {
    std::unique_ptr<AccessPath> path =
        MakePath(kind, &db_->index(), pred, false, 100, parallel);
    ASSERT_NE(path, nullptr) << PathKindToString(kind);
    engine_->ColdRestart();
    ASSERT_TRUE(path->Open().ok());
    Tuple t;
    uint64_t n = 0;
    while (path->Next(&t)) ++n;
    EXPECT_GT(n, 0u) << PathKindToString(kind);
    path->Close();
  }
  // Order-preserving consumers keep the serial operator.
  EXPECT_EQ(MakeParallelPath(PathKind::kSmoothScan, &db_->index(), pred,
                             /*need_order=*/true, 100, parallel),
            nullptr);
}

TEST_F(PlanTest, MakePathConstructsEveryKind) {
  const ScanPredicate pred = db_->PredicateForSelectivity(0.01);
  for (const PathKind kind :
       {PathKind::kFullScan, PathKind::kIndexScan, PathKind::kSortScan,
        PathKind::kSwitchScan, PathKind::kSmoothScan}) {
    std::unique_ptr<AccessPath> path =
        MakePath(kind, &db_->index(), pred, false, 100);
    ASSERT_NE(path, nullptr) << PathKindToString(kind);
    engine_->ColdRestart();
    ASSERT_TRUE(path->Open().ok());
    Tuple t;
    uint64_t n = 0;
    while (path->Next(&t)) ++n;
    EXPECT_GT(n, 0u) << PathKindToString(kind);
  }
}

TEST_F(PlanTest, PathKindNames) {
  EXPECT_STREQ(PathKindToString(PathKind::kFullScan), "FullScan");
  EXPECT_STREQ(PathKindToString(PathKind::kSmoothScan), "SmoothScan");
}

}  // namespace
}  // namespace smoothscan
