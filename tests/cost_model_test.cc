// Cost model tests: Eqs. (3)-(23) consistency, crossover positions, the SLA
// trigger computation, the competitive-ratio values of Section V-A, and
// agreement between the model and the simulated execution.

#include <gtest/gtest.h>

#include <cmath>

#include "access/full_scan.h"
#include "access/index_scan.h"
#include "compress/compressed_scan.h"
#include "cost/cost_model.h"
#include "workload/micro_bench.h"

namespace smoothscan {
namespace {

CostModelParams PaperScaleParams() {
  // The paper's micro-benchmark: 400 M tuples of ~64 B in 8 KB pages
  // (3 M pages), HDD costs.
  CostModelParams p;
  p.tuple_size = 64;
  p.num_tuples = 400000000;
  p.page_size = 8192;
  p.key_size = 8;
  p.rand_cost = 10.0;
  p.seq_cost = 1.0;
  return p;
}

TEST(CostModelTest, DerivedValuesEqs3to7) {
  const CostModel m(PaperScaleParams());
  EXPECT_EQ(m.TuplesPerPage(), 128u);                  // Eq. (3).
  EXPECT_EQ(m.NumPages(), 3125000u);                   // Eq. (4).
  EXPECT_EQ(m.Fanout(), 853u);                         // Eq. (5).
  EXPECT_EQ(m.NumLeaves(), (400000000u + 852) / 853);  // Eq. (6).
  // Eq. (7): ceil(log_853(469 K leaves)) + 1 = 2 + 1.
  EXPECT_EQ(m.Height(), 3u);
}

TEST(CostModelTest, CardinalityEq8) {
  const CostModel m(PaperScaleParams());
  EXPECT_EQ(m.Cardinality(0.0), 0u);
  EXPECT_EQ(m.Cardinality(0.01), 4000000u);
  EXPECT_EQ(m.Cardinality(1.0), 400000000u);
}

TEST(CostModelTest, FullScanCostEq10) {
  const CostModel m(PaperScaleParams());
  EXPECT_DOUBLE_EQ(m.FullScanCost(), 3125000.0);
  // Independent of selectivity by definition.
}

TEST(CostModelTest, IndexScanCostEq11GrowsLinearly) {
  const CostModel m(PaperScaleParams());
  EXPECT_DOUBLE_EQ(m.IndexScanCost(0), 0.0);
  const double c1 = m.IndexScanCost(1000);
  const double c2 = m.IndexScanCost(2000);
  EXPECT_GT(c2, c1 * 1.9);
  EXPECT_LT(c2, c1 * 2.1);
  // Dominated by card * randcost.
  EXPECT_NEAR(m.IndexScanCost(1000000), 1000000.0 * 10.0, 1000000.0 * 0.2);
}

TEST(CostModelTest, CrossoverNearOnePercentOfPages) {
  // The textbook tipping point: the index scan beats the full scan only while
  // card * randcost < #P * seqcost, i.e. below ~0.08% of tuples here.
  const CostModel m(PaperScaleParams());
  EXPECT_LT(m.IndexScanCost(m.Cardinality(0.0005)), m.FullScanCost());
  EXPECT_GT(m.IndexScanCost(m.Cardinality(0.002)), m.FullScanCost());
}

TEST(CostModelTest, Mode1CostCapsAtTablePages) {
  const CostModel m(PaperScaleParams());
  // Eq. (14): #Pm1 = min(cardm1, #P).
  EXPECT_DOUBLE_EQ(m.Mode1Cost(100), 1000.0);
  EXPECT_DOUBLE_EQ(m.Mode1Cost(500000000), 3125000.0 * 10.0);
}

TEST(CostModelTest, Mode2RandomAccessesLogBound) {
  const CostModel m(PaperScaleParams());
  // Eqs. (20)/(21): converge to log2(#P + 1).
  const double bound = std::log2(3125000.0 + 1.0);
  EXPECT_DOUBLE_EQ(m.Mode2RandomAccesses(1u << 30), bound);
  EXPECT_DOUBLE_EQ(m.Mode2RandomAccesses(3), 3.0);
}

TEST(CostModelTest, Mode2ApproachesSequentialForLargeResults) {
  const CostModel m(PaperScaleParams());
  const double cost = m.Mode2Cost(400000000, 0);
  // All pages, essentially sequential: within 1% of the full-scan cost.
  EXPECT_NEAR(cost, m.FullScanCost(), 0.01 * m.FullScanCost());
}

TEST(CostModelTest, SmoothScanCostEq23Sums) {
  const CostModel m(PaperScaleParams());
  SmoothScanCardinalities cards;
  cards.mode0 = 1000;
  cards.mode1 = 2000;
  cards.mode2 = 3000;
  const double total = m.SmoothScanCost(cards);
  EXPECT_DOUBLE_EQ(total, m.IndexScanCost(1000) + m.Mode1Cost(2000) +
                              m.Mode2Cost(3000, 2000));
}

TEST(CostModelTest, EagerSmoothScanBoundedByFullScanPlusOverhead) {
  const CostModel m(PaperScaleParams());
  for (double sel = 1e-6; sel <= 1.0; sel *= 4) {
    EXPECT_LE(m.EagerSmoothScanCost(std::min(sel, 1.0)),
              m.FullScanCost() * 1.2)
        << sel;
  }
}

TEST(CostModelTest, SlaTriggerRespectsbound) {
  const CostModel m(PaperScaleParams());
  const double sla = 2.0 * m.FullScanCost();
  const uint64_t trigger = m.SlaTriggerCardinality(sla);
  EXPECT_GT(trigger, 0u);
  EXPECT_LE(m.WorstCaseTriggeredCost(trigger), sla);
  EXPECT_GT(m.WorstCaseTriggeredCost(trigger + 1), sla);
}

TEST(CostModelTest, SlaTriggerZeroWhenUnreachable) {
  const CostModel m(PaperScaleParams());
  EXPECT_EQ(m.SlaTriggerCardinality(1.0), 0u);
}

TEST(CostModelTest, SlaTriggerMatchesPaperScale) {
  // Section VI-D: with an SLA of 2 full scans, the paper's model derives a
  // trigger point of 32 K tuples on the 400 M-tuple table. Our slightly
  // different Mode-2 accounting should land in the same ballpark.
  const CostModel m(PaperScaleParams());
  const uint64_t trigger = m.SlaTriggerCardinality(2.0 * m.FullScanCost());
  EXPECT_GT(trigger, 10000u);
  EXPECT_LT(trigger, 1000000u);
}

TEST(CostModelTest, CompetitiveRatiosSectionVA) {
  const CostModel hdd(PaperScaleParams());
  EXPECT_DOUBLE_EQ(hdd.ElasticWorstCaseRatio(), 5.5);
  EXPECT_DOUBLE_EQ(hdd.TheoreticalBound(), 11.0);

  // The paper reports an Elastic worst case of 3 and a bound of 6 "for
  // randcost = 2": those values actually correspond to a 5:1 ratio under its
  // own closed forms ((r+s)/2s and (r+s)/s). With the measured 2:1 SSD ratio
  // the forms give 1.5 and 3; we verify both readings.
  CostModelParams ssd = PaperScaleParams();
  ssd.rand_cost = 2.0;
  const CostModel ssd_model(ssd);
  EXPECT_DOUBLE_EQ(ssd_model.ElasticWorstCaseRatio(), 1.5);
  EXPECT_DOUBLE_EQ(ssd_model.TheoreticalBound(), 3.0);

  CostModelParams ssd_paper = PaperScaleParams();
  ssd_paper.rand_cost = 5.0;
  const CostModel ssd_paper_model(ssd_paper);
  EXPECT_DOUBLE_EQ(ssd_paper_model.ElasticWorstCaseRatio(), 3.0);
  EXPECT_DOUBLE_EQ(ssd_paper_model.TheoreticalBound(), 6.0);
}

TEST(CostModelTest, EagerCompetitiveRatioIsSmall) {
  const CostModel m(PaperScaleParams());
  const double cr = m.EagerCompetitiveRatio();
  EXPECT_GE(cr, 1.0);
  // The paper empirically observes a CR of ~2 for the Elastic policy.
  EXPECT_LE(cr, 12.0);
}

// ---------- Model vs. simulation ----------

TEST(CostModelValidationTest, PredictionsTrackSimulatedCosts) {
  EngineOptions eo;
  eo.buffer_pool_pages = 128;
  Engine engine(eo);
  MicroBenchSpec spec;
  spec.num_tuples = 30000;
  MicroBenchDb db(&engine, spec);

  CostModelParams params;
  params.num_tuples = db.heap().num_tuples();
  params.tuple_size = 8192 / (db.heap().num_tuples() / db.heap().num_pages());
  const CostModel model(params);

  // Full scan: model within 35% of simulation (the model ignores read-ahead
  // request grouping, which only changes request counts, not page costs).
  {
    const ScanPredicate pred = db.PredicateForSelectivity(0.5);
    FullScan full(&db.heap(), pred);
    engine.ColdRestart();
    const IoStats before = engine.disk().stats();
    SMOOTHSCAN_CHECK(full.Open().ok());
    Tuple t;
    while (full.Next(&t)) {
    }
    const double simulated = (engine.disk().stats() - before).io_time;
    EXPECT_NEAR(model.FullScanCost(), simulated, 0.35 * simulated);
  }

  // Index scan at low selectivity: dominated by card random I/Os in both.
  {
    const ScanPredicate pred = db.PredicateForSelectivity(0.01);
    IndexScan index(&db.index(), pred);
    engine.ColdRestart();
    const IoStats before = engine.disk().stats();
    SMOOTHSCAN_CHECK(index.Open().ok());
    Tuple t;
    uint64_t card = 0;
    while (index.Next(&t)) ++card;
    const double simulated = (engine.disk().stats() - before).io_time;
    const double predicted = model.IndexScanCost(card);
    EXPECT_GT(predicted, simulated * 0.4);
    EXPECT_LT(predicted, simulated * 2.5);
  }
}

// The committed CalibratedCpuModel constants are the calibration sweep's
// output (bench_cost_model_validation); this pins estimate-vs-measured CPU
// drift so a substrate change that invalidates them fails in CI.
TEST(CalibratedCpuModelTest, PerPathEstimatesTrackMeasuredCpu) {
  EngineOptions eo;
  eo.buffer_pool_pages = 512;
  Engine engine(eo);
  MicroBenchSpec spec;
  spec.num_tuples = 30000;
  spec.value_max = 4000;
  MicroBenchDb db(&engine, spec);
  CompressedExtentMap map(&engine);
  const CompressedExtentRef extent =
      map.Enable(db.mutable_heap(), MicroBenchDb::kIndexedColumn);
  ASSERT_NE(extent, nullptr);
  const CalibratedCpuModel cpu;
  const uint64_t n = db.heap().num_tuples();

  const auto measure = [&](AccessPath* path) {
    engine.ColdRestart();
    const double before = engine.cpu().time();
    EXPECT_TRUE(path->Open().ok());
    TupleBatch batch;
    uint64_t card = 0;
    while (path->NextBatch(&batch)) card += batch.size();
    path->Close();
    return std::pair<double, uint64_t>(engine.cpu().time() - before, card);
  };
  const auto expect_within = [](double estimate, double measured, double tol,
                                const char* label) {
    EXPECT_LE(std::abs(estimate - measured), tol * measured)
        << label << ": estimate=" << estimate << " measured=" << measured;
  };

  for (const double sel : {0.05, 0.5}) {
    const ScanPredicate pred = db.PredicateForSelectivity(sel);

    // Full scan charges exactly inspect * #T + produce * card: tight bound.
    FullScan full(&db.heap(), pred);
    const auto [full_cpu, full_card] = measure(&full);
    expect_within(cpu.FullScanCpu(n, full_card), full_cpu, 0.01, "full");

    // Index scan: the leaf walk advances ~card entries (plus boundary
    // seeks), so the fused per-result constant is near but not exact.
    IndexScan index(&db.index(), pred);
    const auto [index_cpu, index_card] = measure(&index);
    expect_within(cpu.IndexScanCpu(index_card), index_cpu, 0.10, "index");

    // Compressed scan with *measured* counts (zone consults = extent pages,
    // key checks = inspected runs): tight. The chooser's a-priori estimate
    // replaces checks by tuples / avg_run_length: looser, still bounded.
    CompressedScan comp(&engine, extent, pred);
    const auto [comp_cpu, comp_card] = measure(&comp);
    expect_within(cpu.CompressedScanCpu(extent->num_pages(),
                                        comp.stats().tuples_inspected,
                                        comp_card),
                  comp_cpu, 0.02, "compressed/measured");
    const uint64_t est_checks = static_cast<uint64_t>(
        static_cast<double>(extent->num_tuples) /
        std::max(1.0, extent->avg_run_length()));
    expect_within(
        cpu.CompressedScanCpu(extent->num_pages(), est_checks, comp_card),
        comp_cpu, 0.25, "compressed/a-priori");
  }
}

}  // namespace
}  // namespace smoothscan
