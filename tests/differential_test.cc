// Randomized differential testing: for randomly drawn table shapes,
// predicates and Smooth Scan configurations, every access path must produce
// exactly the Full-Scan oracle's result multiset, and order-preserving
// variants must emit non-decreasing keys. This fuzz-style sweep is the broad
// safety net behind the targeted suites.

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "access/full_scan.h"
#include "access/index_scan.h"
#include "access/smooth_scan.h"
#include "access/sort_scan.h"
#include "access/switch_scan.h"
#include "common/rng.h"
#include "workload/micro_bench.h"

namespace smoothscan {
namespace {

struct Scenario {
  uint64_t num_tuples;
  int64_t value_max;
  size_t pool_pages;
  double selectivity;
  bool with_residual;
  uint64_t seed;
};

class DifferentialTest : public ::testing::TestWithParam<int> {};

Scenario DrawScenario(Rng* rng) {
  Scenario s;
  s.num_tuples = static_cast<uint64_t>(rng->UniformInt(100, 30000));
  s.value_max = rng->UniformInt(1, 5000);
  s.pool_pages = static_cast<size_t>(rng->UniformInt(8, 512));
  const double pick = rng->UniformDouble();
  // Mix point-ish, mid and full selectivities.
  if (pick < 0.3) {
    s.selectivity = rng->UniformDouble(0.0, 0.01);
  } else if (pick < 0.7) {
    s.selectivity = rng->UniformDouble(0.01, 0.3);
  } else {
    s.selectivity = rng->UniformDouble(0.3, 1.0);
  }
  s.with_residual = rng->Bernoulli(0.4);
  s.seed = rng->Next();
  return s;
}

TEST_P(DifferentialTest, AllPathsAgreeWithOracle) {
  Rng rng(0xd1ffe7 + static_cast<uint64_t>(GetParam()) * 7919);
  const Scenario s = DrawScenario(&rng);

  EngineOptions eo;
  eo.buffer_pool_pages = s.pool_pages;
  Engine engine(eo);
  MicroBenchSpec spec;
  spec.num_tuples = s.num_tuples;
  spec.value_max = s.value_max;
  spec.seed = s.seed;
  MicroBenchDb db(&engine, spec);
  db.index().CheckInvariants();

  ScanPredicate pred = db.PredicateForSelectivity(s.selectivity);
  const int64_t mod = 2 + rng.UniformInt(0, 5);
  if (s.with_residual) {
    pred.residual = [mod](const Tuple& t) {
      return t[2].AsInt64() % mod != 0;
    };
  }

  std::multiset<int64_t> oracle;
  db.heap().ForEachDirect([&](Tid, const Tuple& t) {
    if (pred.Matches(t)) oracle.insert(t[0].AsInt64());
  });

  auto check = [&](AccessPath* path, bool ordered, const char* label) {
    engine.ColdRestart();
    ASSERT_TRUE(path->Open().ok());
    std::multiset<int64_t> got;
    Tuple t;
    int64_t prev_key = INT64_MIN;
    while (path->Next(&t)) {
      if (ordered) {
        const int64_t key = t[MicroBenchDb::kIndexedColumn].AsInt64();
        EXPECT_GE(key, prev_key) << label;
        prev_key = key;
      }
      got.insert(t[0].AsInt64());
    }
    EXPECT_EQ(got, oracle) << label << " tuples=" << s.num_tuples
                           << " sel=" << s.selectivity
                           << " pool=" << s.pool_pages << " seed=" << s.seed;
  };

  FullScan full(&db.heap(), pred);
  check(&full, false, "FullScan");
  IndexScan index(&db.index(), pred);
  check(&index, true, "IndexScan");
  SortScanOptions sorted;
  sorted.preserve_order = true;
  SortScan sort(&db.index(), pred, sorted);
  check(&sort, true, "SortScan");

  SwitchScanOptions sw;
  sw.estimated_cardinality = static_cast<uint64_t>(rng.UniformInt(0, 2000));
  SwitchScan switch_scan(&db.index(), pred, sw);
  check(&switch_scan, false, "SwitchScan");

  // A random Smooth Scan configuration.
  SmoothScanOptions so;
  so.policy = static_cast<MorphPolicy>(rng.UniformInt(0, 2));
  so.trigger = static_cast<MorphTrigger>(rng.UniformInt(0, 2));
  so.post_trigger_policy = static_cast<MorphPolicy>(rng.UniformInt(0, 2));
  so.optimizer_estimate = static_cast<uint64_t>(rng.UniformInt(0, 500));
  so.sla_trigger_cardinality = static_cast<uint64_t>(rng.UniformInt(0, 500));
  so.max_region_pages = static_cast<uint32_t>(rng.UniformInt(1, 4096));
  so.enable_flattening = rng.Bernoulli(0.9);
  so.preserve_order = rng.Bernoulli(0.5);
  if (so.preserve_order && rng.Bernoulli(0.5)) {
    so.result_cache_budget = static_cast<uint64_t>(rng.UniformInt(8, 4096));
  }
  if (so.trigger != MorphTrigger::kEager) {
    so.positional_dedup = rng.Bernoulli(0.5);
  }
  SmoothScan smooth(&db.index(), pred, so);
  check(&smooth, so.preserve_order, "SmoothScan");

  // Robustness invariant: eager Smooth Scan never probes more heap pages
  // than the table holds.
  if (so.trigger == MorphTrigger::kEager) {
    EXPECT_LE(smooth.smooth_stats().pages_seen, db.heap().num_pages());
  }
}

INSTANTIATE_TEST_SUITE_P(Trials, DifferentialTest, ::testing::Range(0, 24));

}  // namespace
}  // namespace smoothscan
