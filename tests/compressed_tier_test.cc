// Compressed read-tier testing: the run/RLE-encoded sibling extent must be a
// pure performance artifact — every scan over it produces exactly the
// multiset a heap FullScan produces, for strictly fewer simulated page
// fetches. Covers: the serial / shared / morsel-parallel compressed policies
// across a selectivity sweep, zone-map block skipping on a clustered key,
// index-only emission and CompressedCountRange, staleness fallback after a
// publish (auto-rebuild on and off), pin/eviction hygiene under the shared
// buffer-pool mirror, and DOP 1/2/8 bit-identical parallel accounting.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <set>
#include <vector>

#include "access/full_scan.h"
#include "compress/compressed_scan.h"
#include "engine/query_engine.h"
#include "sharing/scan_sharing.h"
#include "workload/micro_bench.h"
#include "write/table_writer.h"

namespace smoothscan {
namespace {

/// Column-0 multiset plus an all-column checksum: c0 is the generated PK, so
/// the multiset pins *which* rows were produced and the checksum pins that
/// every payload column decoded to the right value.
struct ScanDigest {
  std::multiset<int64_t> keys;
  int64_t checksum = 0;

  bool operator==(const ScanDigest& o) const {
    return keys == o.keys && checksum == o.checksum;
  }
};

ScanDigest DrainDigest(AccessPath* path) {
  EXPECT_TRUE(path->Open().ok());
  ScanDigest d;
  TupleBatch batch;
  while (path->NextBatch(&batch)) {
    for (size_t i = 0; i < batch.size(); ++i) {
      const Tuple& row = batch.row(i);
      d.keys.insert(row[0].AsInt64());
      for (const Value& v : row) d.checksum += v.AsInt64();
    }
  }
  path->Close();
  return d;
}

Tuple MakeRow(const Schema& schema, int64_t c1, int64_t c2) {
  Tuple t(schema.num_columns());
  t[0] = Value::Int64(c1);
  t[1] = Value::Int64(c2);
  for (size_t c = 2; c < schema.num_columns(); ++c) {
    t[c] = Value::Int64(static_cast<int64_t>(c));
  }
  return t;
}

ScanDigest OracleDigest(const HeapFile& heap, const ScanPredicate& pred) {
  ScanDigest d;
  heap.ForEachDirect([&](Tid, const Tuple& t) {
    if (!pred.Matches(t)) return;
    d.keys.insert(t[0].AsInt64());
    for (const Value& v : t) d.checksum += v.AsInt64();
  });
  return d;
}

class CompressedTierTest : public ::testing::Test {
 protected:
  CompressedTierTest() {
    EngineOptions eo;
    eo.buffer_pool_pages = 1024;  // Holds heap + sibling comfortably.
    engine_ = std::make_unique<Engine>(eo);
    MicroBenchSpec spec;
    spec.num_tuples = 30000;
    spec.value_max = 4000;  // Narrow domain: every column FOR-packs.
    spec.seed = 23;
    db_ = std::make_unique<MicroBenchDb>(engine_.get(), spec);
    map_ = std::make_unique<CompressedExtentMap>(engine_.get());
    extent_ = map_->Enable(db_->mutable_heap(), MicroBenchDb::kIndexedColumn);
  }

  /// Fresh cold accounting stack (no mirror) for one measured run.
  struct Measured {
    ScanDigest digest;
    IoStats io;
    double cpu = 0.0;
  };
  Measured Run(AccessPath* path, QueryContext* qctx) {
    path->SetExecContext(&qctx->ctx());
    Measured m;
    m.digest = DrainDigest(path);
    m.io = qctx->disk().stats();
    m.cpu = qctx->cpu().time();
    return m;
  }

  std::unique_ptr<Engine> engine_;
  std::unique_ptr<MicroBenchDb> db_;
  std::unique_ptr<CompressedExtentMap> map_;
  CompressedExtentRef extent_;
};

TEST_F(CompressedTierTest, ExtentShrinksByAtLeast2x) {
  ASSERT_NE(extent_, nullptr);
  EXPECT_EQ(extent_->num_tuples, db_->heap().num_tuples());
  EXPECT_EQ(extent_->source_pages, db_->heap().num_pages());
  // The 10 uniform columns on [0, 4000] FOR-pack to ~2 bytes each; the
  // acceptance bar is the conservative 2x.
  EXPECT_GE(extent_->page_ratio(), 2.0);
  EXPECT_LT(extent_->num_pages(), db_->heap().num_pages() / 2);
}

TEST_F(CompressedTierTest, IneligibleSchemasAreRefused) {
  // Out-of-range key column.
  EXPECT_EQ(map_->Enable(db_->mutable_heap(), 99), nullptr);
  // Enable is idempotent per table: re-enabling returns a (fresh) extent.
  EXPECT_NE(map_->Enable(db_->mutable_heap(), MicroBenchDb::kIndexedColumn),
            nullptr);
}

// ---------- Differential: three policies x selectivity sweep ----------

TEST_F(CompressedTierTest, SerialSharedParallelMatchFullScanForFewerFetches) {
  ASSERT_NE(extent_, nullptr);
  ScanSharingCoordinator sharing(engine_.get());
  for (const double sel : {0.001, 0.02, 0.2, 1.0}) {
    const ScanPredicate pred = db_->PredicateForSelectivity(sel);
    const ScanDigest oracle = OracleDigest(db_->heap(), pred);

    QueryContext full_ctx(engine_.get());
    FullScan full(&db_->heap(), pred);
    const Measured full_run = Run(&full, &full_ctx);
    EXPECT_EQ(full_run.digest, oracle) << "sel=" << sel;

    // Policy 1: serial compressed scan.
    QueryContext serial_ctx(engine_.get());
    CompressedScan serial(engine_.get(), extent_, pred);
    const Measured serial_run = Run(&serial, &serial_ctx);
    EXPECT_EQ(serial_run.digest, oracle) << "sel=" << sel;
    EXPECT_LT(serial_run.io.pages_read, full_run.io.pages_read)
        << "sel=" << sel;

    // Policy 2: shared compressed scan (single consumer: one communal lap).
    QueryContext shared_ctx(engine_.get());
    CompressedScan shared(&sharing, extent_, pred);
    const Measured shared_run = Run(&shared, &shared_ctx);
    EXPECT_EQ(shared_run.digest, oracle) << "sel=" << sel;
    EXPECT_LT(shared_run.io.pages_read, full_run.io.pages_read)
        << "sel=" << sel;

    // Policy 3: morsel-parallel compressed scan.
    QueryContext par_ctx(engine_.get());
    ParallelScanOptions po;
    po.dop = 2;
    po.account_disk = &par_ctx.disk();
    po.account_cpu = &par_ctx.cpu();
    std::unique_ptr<ParallelScan> par = MakeParallelCompressedScan(
        engine_.get(), extent_, pred, CompressedScanOptions(), po);
    ASSERT_NE(par, nullptr);
    const Measured par_run = Run(par.get(), &par_ctx);
    EXPECT_EQ(par_run.digest, oracle) << "sel=" << sel;
    EXPECT_LT(par_run.io.pages_read, full_run.io.pages_read) << "sel=" << sel;
  }
}

TEST_F(CompressedTierTest, ResidualPredicateAppliesAfterExpansion) {
  ScanPredicate pred = db_->PredicateForSelectivity(0.5);
  pred.residual = [](const Tuple& t) { return t[3].AsInt64() % 2 == 0; };
  const ScanDigest oracle = OracleDigest(db_->heap(), pred);
  QueryContext qctx(engine_.get());
  CompressedScan scan(engine_.get(), extent_, pred);
  EXPECT_EQ(Run(&scan, &qctx).digest, oracle);
}

// ---------- Zone-map skipping on a clustered key ----------

TEST(CompressedZoneMapTest, ClusteredKeySkipsBlocksWithoutIo) {
  Engine engine(EngineOptions{});
  HeapFile heap(&engine, "clustered", MakeIntSchema(4));
  Tuple tuple(4);
  constexpr uint64_t kTuples = 40000;
  constexpr int64_t kRun = 200;  // c1 ascends in 200-tuple runs (RLE food).
  for (uint64_t i = 0; i < kTuples; ++i) {
    tuple[0] = Value::Int64(static_cast<int64_t>(i));
    tuple[1] = Value::Int64(static_cast<int64_t>(i) / kRun);
    tuple[2] = Value::Int64(static_cast<int64_t>(i) % 7);
    tuple[3] = Value::Int64(static_cast<int64_t>(i) % 97);
    SMOOTHSCAN_CHECK(heap.Append(tuple).ok());
  }
  CompressedExtentMap map(&engine);
  CompressedExtentRef extent = map.Enable(&heap, /*key_column=*/1);
  ASSERT_NE(extent, nullptr);
  // 200-tuple runs compress the key column to a handful of RLE runs/block.
  EXPECT_GE(extent->avg_run_length(), 50.0);

  // A 1% key slice: the zone map confines the scan to a contiguous sliver of
  // blocks; everything else is skipped without a fetch.
  ScanPredicate pred;
  pred.column = 1;
  pred.lo = 100;
  pred.hi = 102;
  const ScanDigest oracle = OracleDigest(heap, pred);

  QueryContext full_ctx(&engine);
  FullScan full(&heap, pred);
  full.SetExecContext(&full_ctx.ctx());
  EXPECT_EQ(DrainDigest(&full), oracle);

  QueryContext qctx(&engine);
  CompressedScan scan(&engine, extent, pred);
  scan.SetExecContext(&qctx.ctx());
  EXPECT_EQ(DrainDigest(&scan), oracle);
  // ~2000-tuple blocks: the 400 matching rows live in at most 2 of ~20.
  EXPECT_GE(extent->num_pages(), 15u);
  EXPECT_LE(scan.blocks_needed(), 2u);
  // Compression ratio *times* zone-skip rate: well past the 2x bar.
  EXPECT_LT(qctx.disk().stats().pages_read * 4,
            full_ctx.disk().stats().pages_read);
}

// ---------- Index-only path ----------

TEST_F(CompressedTierTest, IndexOnlyEmitsKeysWithoutPayloadColumns) {
  const ScanPredicate pred = db_->PredicateForSelectivity(0.1);
  std::multiset<int64_t> oracle_keys;
  db_->heap().ForEachDirect([&](Tid, const Tuple& t) {
    if (pred.Matches(t)) {
      oracle_keys.insert(t[MicroBenchDb::kIndexedColumn].AsInt64());
    }
  });
  QueryContext qctx(engine_.get());
  CompressedScanOptions opts;
  opts.index_only = true;
  CompressedScan scan(engine_.get(), extent_, pred, opts);
  scan.SetExecContext(&qctx.ctx());
  EXPECT_TRUE(scan.Open().ok());
  std::multiset<int64_t> keys;
  TupleBatch batch;
  while (scan.NextBatch(&batch)) {
    for (size_t i = 0; i < batch.size(); ++i) {
      ASSERT_EQ(batch.row(i).size(), 1u);  // Key column only.
      keys.insert(batch.row(i)[0].AsInt64());
    }
  }
  scan.Close();
  EXPECT_EQ(keys, oracle_keys);
}

TEST_F(CompressedTierTest, CountRangeMatchesOracleAndSkipsInteriorBlocks) {
  for (const auto& [lo, hi] :
       std::vector<std::pair<int64_t, int64_t>>{{0, 1},
                                                {100, 300},
                                                {0, 4001},
                                                {3999, 4001},
                                                {5000, 6000}}) {
    uint64_t oracle = 0;
    db_->heap().ForEachDirect([&](Tid, const Tuple& t) {
      const int64_t k = t[MicroBenchDb::kIndexedColumn].AsInt64();
      if (k >= lo && k < hi) ++oracle;
    });
    QueryContext qctx(engine_.get());
    EXPECT_EQ(CompressedCountRange(extent_, lo, hi, qctx.ctx()), oracle)
        << "[" << lo << "," << hi << ")";
    // The full-domain probe is answered from zone metadata alone: every
    // block's interval lies inside the range, so no page is fetched.
    if (lo <= 0 && hi > 4000) {
      EXPECT_EQ(qctx.disk().stats().pages_read, 0u);
    }
  }
}

// ---------- Staleness across publishes ----------

TEST(CompressedPublishTest, PublishInvalidatesThenAutoRebuildServesNewData) {
  EngineOptions eo;
  eo.buffer_pool_pages = 1024;
  Engine engine(eo);
  MicroBenchSpec spec;
  spec.num_tuples = 20000;
  spec.value_max = 4000;
  MicroBenchDb db(&engine, spec);
  TableVersionRegistry registry(&engine);
  TableWriter writer(db.mutable_heap(),
                     std::vector<BPlusTree*>{db.mutable_index()}, &registry);
  CompressedExtentMap map(&engine);
  ASSERT_NE(map.Enable(db.mutable_heap(), MicroBenchDb::kIndexedColumn),
            nullptr);
  ScanSharingCoordinator sharing(&engine);
  QueryEngineOptions qeo;
  qeo.max_admitted = 2;
  qeo.sharing = &sharing;
  qeo.versions = &registry;
  qeo.compressed = &map;
  QueryEngine qe(&engine, qeo);

  const TableStats stats =
      TableStats::Compute(db.heap(), MicroBenchDb::kIndexedColumn);
  CostModelParams params;
  params.num_tuples = db.heap().num_tuples();
  params.tuple_size = 8192 / (db.heap().num_tuples() / db.heap().num_pages());
  const CostModel model(params);

  QuerySpec read;
  read.index = db.mutable_index();
  read.predicate = db.PredicateForSelectivity(0.5);
  read.use_chooser = true;
  read.stats = &stats;
  read.cost_model = &model;
  read.collect_keys = true;

  // Scan-bound regime over a 2x-shrunk extent: the chooser must take it.
  QueryResult before = qe.WaitSpec(qe.SubmitSpec(read));
  ASSERT_TRUE(before.status.ok());
  EXPECT_EQ(before.metrics.kind, PathKind::kCompressedScan);

  // Mutate: delete one matching tuple, insert two new matching ones.
  QuerySpec write;
  write.writer = &writer;
  write.write_ops.push_back(WriteOp::MakeDelete(Tid{0, 0}));
  write.write_ops.push_back(
      WriteOp::MakeInsert(MakeRow(db.heap().schema(), 1000001, 10)));
  write.write_ops.push_back(
      WriteOp::MakeInsert(MakeRow(db.heap().schema(), 1000002, 11)));
  ASSERT_TRUE(qe.WaitSpec(qe.SubmitSpec(write)).status.ok());
  qe.DrainAll();
  // Publish at quiescence: force it by taking (and dropping) a read lease.
  registry.AcquireRead(db.heap().file_id()).Release();
  EXPECT_EQ(map.rebuilds(), 1u);

  // The rebuilt extent serves the *published* table: differential against a
  // fresh heap oracle, still on the compressed path.
  std::multiset<int64_t> oracle;
  db.heap().ForEachDirect([&](Tid, const Tuple& t) {
    if (read.predicate.Matches(t)) oracle.insert(t[0].AsInt64());
  });
  QueryResult after = qe.WaitSpec(qe.SubmitSpec(read));
  ASSERT_TRUE(after.status.ok());
  EXPECT_EQ(after.metrics.kind, PathKind::kCompressedScan);
  EXPECT_EQ(std::multiset<int64_t>(after.keys.begin(), after.keys.end()),
            oracle);
  EXPECT_NE(std::multiset<int64_t>(before.keys.begin(), before.keys.end()),
            oracle);
}

TEST(CompressedPublishTest, WithoutAutoRebuildQueriesFallBackToHeap) {
  EngineOptions eo;
  eo.buffer_pool_pages = 1024;
  Engine engine(eo);
  MicroBenchSpec spec;
  spec.num_tuples = 20000;
  spec.value_max = 4000;
  MicroBenchDb db(&engine, spec);
  TableVersionRegistry registry(&engine);
  TableWriter writer(db.mutable_heap(),
                     std::vector<BPlusTree*>{db.mutable_index()}, &registry);
  CompressedExtentMap map(&engine);
  ASSERT_NE(map.Enable(db.mutable_heap(), MicroBenchDb::kIndexedColumn,
                       /*auto_rebuild=*/false),
            nullptr);
  QueryEngineOptions qeo;
  qeo.max_admitted = 2;
  qeo.versions = &registry;
  qeo.compressed = &map;
  QueryEngine qe(&engine, qeo);

  QuerySpec read;
  read.index = db.mutable_index();
  read.predicate = db.PredicateForSelectivity(0.5);
  read.kind = PathKind::kCompressedScan;  // Fixed-kind: asks for the tier.
  read.collect_keys = true;
  QueryResult before = qe.WaitSpec(qe.SubmitSpec(read));
  ASSERT_TRUE(before.status.ok());
  EXPECT_EQ(before.metrics.kind, PathKind::kCompressedScan);

  QuerySpec write;
  write.writer = &writer;
  write.write_ops.push_back(
      WriteOp::MakeInsert(MakeRow(db.heap().schema(), 1000001, 10)));
  ASSERT_TRUE(qe.WaitSpec(qe.SubmitSpec(write)).status.ok());
  qe.DrainAll();
  registry.AcquireRead(db.heap().file_id()).Release();
  EXPECT_EQ(map.Lookup(db.heap().file_id()), nullptr);

  // Graceful staleness: the same spec now runs the heap full scan and sees
  // the published write.
  std::multiset<int64_t> oracle;
  db.heap().ForEachDirect([&](Tid, const Tuple& t) {
    if (read.predicate.Matches(t)) oracle.insert(t[0].AsInt64());
  });
  QueryResult after = qe.WaitSpec(qe.SubmitSpec(read));
  ASSERT_TRUE(after.status.ok());
  EXPECT_EQ(after.metrics.kind, PathKind::kFullScan);
  EXPECT_EQ(std::multiset<int64_t>(after.keys.begin(), after.keys.end()),
            oracle);
}

// ---------- Pin / eviction hygiene under the shared-pool mirror ----------

TEST_F(CompressedTierTest, MirroredRunsLeaveNoPinsBehind) {
  // Shared pool smaller than heap + sibling: mirrored compressed pages must
  // pin only for the access's lifetime, or eviction (and the rebuild's
  // EvictFile) CHECK-aborts on a pinned frame.
  QueryEngineOptions qeo;
  qeo.max_admitted = 4;
  qeo.mirror_pages = true;
  qeo.compressed = map_.get();
  QueryEngine qe(engine_.get(), qeo);
  QuerySpec read;
  read.index = db_->mutable_index();
  read.predicate = db_->PredicateForSelectivity(0.3);
  read.kind = PathKind::kCompressedScan;
  std::vector<QueryEngine::QueryId> ids;
  for (int i = 0; i < 8; ++i) ids.push_back(qe.SubmitSpec(read));
  for (const auto id : ids) {
    EXPECT_EQ(qe.WaitSpec(id).metrics.kind, PathKind::kCompressedScan);
  }
  // Every frame unpinned: a full rebuild evicts the sibling wholesale.
  EXPECT_NE(map_->Rebuild(db_->heap().file_id()), nullptr);
  engine_->pool().FlushAll();
}

// ---------- Parallel morsel decomposition: DOP-invariance ----------

TEST_F(CompressedTierTest, ParallelAccountingBitIdenticalAtDop128) {
  const ScanPredicate pred = db_->PredicateForSelectivity(0.2);
  QueryContext serial_ctx(engine_.get());
  CompressedScan serial(engine_.get(), extent_, pred);
  const Measured base = Run(&serial, &serial_ctx);

  for (const uint32_t dop : {1u, 2u, 8u}) {
    QueryContext qctx(engine_.get());
    ParallelScanOptions po;
    po.dop = dop;
    po.account_disk = &qctx.disk();
    po.account_cpu = &qctx.cpu();
    std::unique_ptr<ParallelScan> par = MakeParallelCompressedScan(
        engine_.get(), extent_, pred, CompressedScanOptions(), po);
    ASSERT_NE(par, nullptr);
    const Measured run = Run(par.get(), &qctx);
    EXPECT_EQ(run.digest, base.digest) << "dop=" << dop;
    EXPECT_EQ(run.io.io_requests, base.io.io_requests) << "dop=" << dop;
    EXPECT_EQ(run.io.random_ios, base.io.random_ios) << "dop=" << dop;
    EXPECT_EQ(run.io.seq_ios, base.io.seq_ios) << "dop=" << dop;
    EXPECT_EQ(run.io.pages_read, base.io.pages_read) << "dop=" << dop;
    EXPECT_EQ(run.io.io_time, base.io.io_time) << "dop=" << dop;
    EXPECT_EQ(run.cpu, base.cpu) << "dop=" << dop;
  }
}

}  // namespace
}  // namespace smoothscan
