// Memory-governance differential and allocation-regression testing.
//
// The contract under test (ISSUE 7): the arena-backed batch pool and the
// unified memory broker are *accounting and recycling* layers — they may
// shed storage, spill cached tuples and clamp the shared-scan drift window,
// but they must never change any query's simulated cost by a single bit,
// and a warm steady-state scan loop must perform zero heap allocations per
// batch. The allocation claim is proven with a counting global allocator
// (suite AllocationRegression, run as its own CI step); the cost claim with
// exact EXPECT_EQ differentials — pooled vs allocate-per-batch ablation at
// DOP 1/2/8, and broker on (tight budget + per-query quota, governance
// visibly firing) vs off through the QueryEngine at admission caps 1/2/8.
// Also covers: the recycled-batch hand-off across Open cycles (the
// `pending_ = TupleBatch()` storage-discard regression), deterministic
// ResultCache pressure spills that lose no tuple, and the shared-scan drift
// clamp under pressure.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <new>
#include <set>
#include <thread>
#include <vector>

#include "access/full_scan.h"
#include "access/parallel_scan.h"
#include "access/result_cache.h"
#include "engine/query_engine.h"
#include "exec/task_scheduler.h"
#include "mem/batch_pool.h"
#include "mem/memory_broker.h"
#include "sharing/scan_sharing.h"
#include "sharing/shared_scan_path.h"
#include "workload/micro_bench.h"

namespace {
std::atomic<uint64_t> g_heap_allocs{0};
}  // namespace

// Counting global allocator: every heap allocation in the binary bumps the
// counter, so "zero allocations in the steady-state loop" is checked against
// the real allocator, not a proxy. Frees are not counted (ordering with
// static destructors makes them uninteresting here). GCC flags free() inside
// a replaced operator delete as a new/delete mismatch; the pairing here is
// malloc/free on both sides, so the warning is a false positive.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
void* operator new(std::size_t size) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#pragma GCC diagnostic pop

namespace smoothscan {
namespace {

uint64_t AllocCount() { return g_heap_allocs.load(std::memory_order_relaxed); }

/// Per-query engine charges of one measured run (the idiom of
/// parallel_differential_test.cc — bit-identity is defined from a zeroed
/// meter after a cold restart).
struct CostSnapshot {
  IoStats io;
  double cpu = 0.0;
  uint64_t tuples = 0;

  void ExpectBitIdentical(const CostSnapshot& other, const char* label) const {
    EXPECT_EQ(io.io_requests, other.io.io_requests) << label;
    EXPECT_EQ(io.random_ios, other.io.random_ios) << label;
    EXPECT_EQ(io.seq_ios, other.io.seq_ios) << label;
    EXPECT_EQ(io.pages_read, other.io.pages_read) << label;
    EXPECT_EQ(io.io_time, other.io.io_time) << label;  // Exact, not NEAR.
    EXPECT_EQ(cpu, other.cpu) << label;                // Exact, not NEAR.
    EXPECT_EQ(tuples, other.tuples) << label;
  }

  void ExpectBitIdentical(const QueryMetrics& m, const char* label) const {
    EXPECT_EQ(io.io_requests, m.io_requests) << label;
    EXPECT_EQ(io.random_ios, m.random_ios) << label;
    EXPECT_EQ(io.seq_ios, m.seq_ios) << label;
    EXPECT_EQ(io.pages_read, m.pages_read) << label;
    EXPECT_EQ(io.io_time, m.io_time) << label;
    EXPECT_EQ(cpu, m.cpu_time) << label;
    EXPECT_EQ(tuples, m.tuples) << label;
  }
};

class MemGovernanceTest : public ::testing::Test {
 protected:
  MemGovernanceTest() {
    EngineOptions eo;
    eo.buffer_pool_pages = 512;  // Holds the whole ~330-page table.
    engine_ = std::make_unique<Engine>(eo);
    MicroBenchSpec spec;
    spec.num_tuples = 30000;
    spec.value_max = 4000;
    spec.seed = 17;
    db_ = std::make_unique<MicroBenchDb>(engine_.get(), spec);
  }

  std::multiset<int64_t> Oracle(const ScanPredicate& pred) const {
    std::multiset<int64_t> oracle;
    db_->heap().ForEachDirect([&](Tid, const Tuple& t) {
      if (pred.Matches(t)) oracle.insert(t[0].AsInt64());
    });
    return oracle;
  }

  /// Cold measured run against the engine's own stack, counters zeroed.
  CostSnapshot MeasuredRun(AccessPath* path) {
    engine_->ColdRestart();
    engine_->disk().ResetAll();
    engine_->cpu().Reset();
    EXPECT_TRUE(path->Open().ok());
    CostSnapshot snap;
    TupleBatch batch;
    while (path->NextBatch(&batch)) snap.tuples += batch.size();
    path->Close();
    snap.io = engine_->disk().stats();
    snap.cpu = engine_->cpu().time();
    return snap;
  }

  ParallelScanOptions Par(uint32_t dop, bool recycle = true) const {
    ParallelScanOptions o;
    o.dop = dop;
    o.morsel_pages = 64;
    o.max_key_morsels = 13;
    o.recycle_batches = recycle;
    return o;
  }

  std::unique_ptr<Engine> engine_;
  std::unique_ptr<MicroBenchDb> db_;
};

using AllocationRegression = MemGovernanceTest;

// ---------------------------------------------------------------------------
// Allocation regression: the steady-state scan loop allocates nothing.
// ---------------------------------------------------------------------------

// A warm serial Full Scan — buffer pool resident, carry batch's Value
// storage grown — must run its fill loop with strictly ZERO heap
// allocations: pages pin out of the pool, tuples deserialize into recycled
// Value slots, the batch recycles its own rows.
TEST_F(AllocationRegression, SerialWarmScanLoopAllocatesNothing) {
  const ScanPredicate pred = db_->PredicateForSelectivity(1.0);
  // Pass 1: fault the table into the (large enough) buffer pool.
  {
    FullScan warmer(&db_->heap(), pred);
    ASSERT_TRUE(warmer.Open().ok());
    TupleBatch batch;
    while (warmer.NextBatch(&batch)) {
    }
    warmer.Close();
  }
  // Pass 2: warm carry batch over a warm pool, then count.
  FullScan scan(&db_->heap(), pred);
  ASSERT_TRUE(scan.Open().ok());
  TupleBatch batch;
  uint64_t tuples = 0;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(scan.NextBatch(&batch));
    tuples += batch.size();
  }
  const uint64_t before = AllocCount();
  uint64_t counted_batches = 0;
  while (scan.NextBatch(&batch)) {
    tuples += batch.size();
    ++counted_batches;
  }
  const uint64_t allocs = AllocCount() - before;
  scan.Close();
  ASSERT_GT(counted_batches, 10u) << "loop too short to be a steady state";
  EXPECT_EQ(allocs, 0u) << "steady-state scan loop hit the heap ("
                        << counted_batches << " batches)";
  EXPECT_EQ(tuples, 30000u);
}

// The parallel scan's pooled batches reach steady state across Open cycles:
// after warm cycles, a whole drain cycle performs no cold acquire — every
// batch the kernels emit comes warm off the free list, and every batch goes
// home (none leaked, none discarded by the NextBatch hand-off). The
// stabilization loop tolerates scheduling skew in how many batches are in
// flight at once; the pool's high-water mark is bounded by the cycle's
// total batch count, so two consecutive all-warm cycles must appear.
TEST_F(AllocationRegression, ParallelScanCyclesReachZeroColdAcquires) {
  const ScanPredicate pred = db_->PredicateForSelectivity(1.0);
  const std::multiset<int64_t> oracle = Oracle(pred);
  auto par =
      MakeParallelFullScan(&db_->heap(), pred, FullScanOptions(), Par(2));

  uint64_t prev_cold = 0;
  int warm_cycles = 0;
  for (int cycle = 0; cycle < 25 && warm_cycles < 2; ++cycle) {
    ASSERT_TRUE(par->Open().ok());
    std::multiset<int64_t> got;
    TupleBatch batch;
    while (par->NextBatch(&batch)) {
      for (size_t i = 0; i < batch.size(); ++i) {
        got.insert(batch.row(i)[0].AsInt64());
      }
    }
    par->Close();
    ASSERT_EQ(got, oracle) << "cycle " << cycle;

    const BatchPoolStats s = par->batch_pool()->stats();
    EXPECT_EQ(s.releases, s.acquires) << "batches leaked in cycle " << cycle;
    EXPECT_EQ(s.sheds, 0u) << "unquota'd pool shed storage";
    if (cycle > 0 && s.cold_acquires() == prev_cold) {
      ++warm_cycles;
    } else {
      warm_cycles = 0;
    }
    prev_cold = s.cold_acquires();
  }
  EXPECT_EQ(warm_cycles, 2) << "pool never reached all-warm steady state";
  const BatchPoolStats s = par->batch_pool()->stats();
  EXPECT_GT(s.reuses, 0u);
  EXPECT_GT(s.fresh_batches, 0u);
  EXPECT_LE(s.fresh_batches, s.acquires);
}

// Regression for the partial-consumer hand-off (`pending_`): a consumer
// that stops mid-stream must not strand pooled batches — Close drains and
// releases everything, so reopening stays warm. The old code path
// (`pending_ = TupleBatch()`) discarded the recycled storage instead.
TEST_F(AllocationRegression, AbandonedPendingBatchReturnsToPool) {
  const ScanPredicate pred = db_->PredicateForSelectivity(1.0);
  auto par =
      MakeParallelFullScan(&db_->heap(), pred, FullScanOptions(), Par(2));
  for (int cycle = 0; cycle < 3; ++cycle) {
    ASSERT_TRUE(par->Open().ok());
    TupleBatch batch;
    // Consume a couple of batches, then walk away mid-stream.
    ASSERT_TRUE(par->NextBatch(&batch));
    ASSERT_TRUE(par->NextBatch(&batch));
    par->Close();
    const BatchPoolStats s = par->batch_pool()->stats();
    EXPECT_EQ(s.releases, s.acquires)
        << "abandoned cycle " << cycle << " stranded pooled batches";
  }
}

// ---------------------------------------------------------------------------
// Cost differentials: recycling and governance never change simulated cost.
// ---------------------------------------------------------------------------

TEST_F(MemGovernanceTest, PooledCostsMatchAblationBitForBit) {
  for (const double sel : {0.05, 0.5}) {
    const ScanPredicate pred = db_->PredicateForSelectivity(sel);
    const std::multiset<int64_t> oracle = Oracle(pred);
    for (const uint32_t dop : {1u, 2u, 8u}) {
      auto pooled = MakeParallelFullScan(&db_->heap(), pred,
                                         FullScanOptions(),
                                         Par(dop, /*recycle=*/true));
      auto ablated = MakeParallelFullScan(&db_->heap(), pred,
                                          FullScanOptions(),
                                          Par(dop, /*recycle=*/false));
      const CostSnapshot a = MeasuredRun(pooled.get());
      const CostSnapshot b = MeasuredRun(ablated.get());
      a.ExpectBitIdentical(b, "pooled vs allocate-per-batch");
      EXPECT_EQ(a.tuples, oracle.size());
      // The ablation really did run cold every time.
      EXPECT_EQ(ablated->batch_pool()->stats().reuses, 0u);
      EXPECT_GT(ablated->batch_pool()->stats().sheds, 0u);
    }
  }
}

// The full governance stack — global broker under permanent pressure (the
// engine's buffer-pool frames alone exceed the budget) plus a tiny per-query
// quota — must leave every per-query simulated cost bit-identical to the
// ungoverned engine, at admission caps 1, 2 and 8 with serial and parallel
// plans in the mix. Governance sheds batch storage; it never touches the
// simulated meters and never fails a query.
TEST_F(MemGovernanceTest, BrokerOnOffCostsBitIdenticalAcrossCaps) {
  constexpr PathKind kKinds[] = {PathKind::kFullScan, PathKind::kIndexScan,
                                 PathKind::kSmoothScan};
  constexpr double kSels[] = {0.001, 0.5};
  constexpr uint32_t kSpecDops[] = {0, 2, 8};

  std::vector<QuerySpec> specs;
  std::vector<std::multiset<int64_t>> oracles;
  for (const PathKind kind : kKinds) {
    for (const double sel : kSels) {
      for (const uint32_t dop : kSpecDops) {
        QuerySpec spec;
        spec.index = &db_->index();
        spec.predicate = db_->PredicateForSelectivity(sel);
        spec.kind = kind;
        spec.estimate = 100;
        spec.dop = dop;
        spec.collect_keys = true;
        specs.push_back(spec);
        oracles.push_back(Oracle(spec.predicate));
      }
    }
  }

  TaskScheduler scheduler(4);

  // Reference: the ungoverned engine, serialized admission.
  std::vector<CostSnapshot> reference;
  {
    QueryEngineOptions qeo;
    qeo.max_admitted = 1;
    qeo.scheduler = &scheduler;
    QueryEngine qe(engine_.get(), qeo);
    for (size_t i = 0; i < specs.size(); ++i) {
      const QueryResult r = qe.WaitSpec(qe.SubmitSpec(specs[i]));
      ASSERT_TRUE(r.status.ok());
      const std::multiset<int64_t> got(r.keys.begin(), r.keys.end());
      ASSERT_EQ(got, oracles[i]) << "reference spec " << i;
      CostSnapshot snap;
      snap.io.io_requests = r.metrics.io_requests;
      snap.io.random_ios = r.metrics.random_ios;
      snap.io.seq_ios = r.metrics.seq_ios;
      snap.io.pages_read = r.metrics.pages_read;
      snap.io.io_time = r.metrics.io_time;
      snap.cpu = r.metrics.cpu_time;
      snap.tuples = r.metrics.tuples;
      reference.push_back(snap);
      EXPECT_EQ(r.metrics.mem_quota_breaches, 0u) << "ungoverned engine";
    }
  }

  // Budget sits a hair above the engine's buffer-pool frame charge, so warm
  // exec batches repeatedly push the broker over it (pressure episodes →
  // shedding) and back; the per-query quota is below one batch, so every
  // warm charge is also a breach. Maximal governance activity.
  MemoryBrokerOptions bo;
  bo.global_budget_bytes =
      uint64_t{engine_->options().buffer_pool_pages} *
          engine_->options().page_size +
      64 * 1024;
  for (const uint32_t cap : {1u, 2u, 8u}) {
    MemoryBroker broker(bo);
    QueryEngineOptions qeo;
    qeo.max_admitted = cap;
    qeo.scheduler = &scheduler;
    qeo.broker = &broker;
    qeo.query_quota_bytes = 4 * 1024;  // Below one batch: every charge breaches.
    QueryEngine qe(engine_.get(), qeo);
    ASSERT_FALSE(broker.UnderPressure());

    std::vector<QueryEngine::QueryId> ids;
    for (const QuerySpec& spec : specs) ids.push_back(qe.SubmitSpec(spec));
    uint64_t breaches = 0;
    uint64_t peak = 0;
    for (size_t i = 0; i < ids.size(); ++i) {
      const QueryResult r = qe.WaitSpec(ids[i]);
      ASSERT_TRUE(r.status.ok()) << "governance must never fail a query";
      const std::multiset<int64_t> got(r.keys.begin(), r.keys.end());
      EXPECT_EQ(got, oracles[i]) << "spec " << i << " cap " << cap;
      reference[i].ExpectBitIdentical(r.metrics, "broker on vs off");
      breaches += r.metrics.mem_quota_breaches;
      peak = std::max(peak, r.metrics.mem_peak_bytes);
    }
    // Governance was visibly active, not vacuously satisfied: parallel
    // queries charged exec memory, breached the tiny quota, and pushed the
    // broker into at least one pressure episode.
    EXPECT_GT(breaches, 0u) << "cap " << cap;
    EXPECT_GT(peak, 0u) << "cap " << cap;
    EXPECT_GT(broker.pressure_epoch(), 0u) << "cap " << cap;
  }
}

// ---------------------------------------------------------------------------
// Pressure responses: spill and shed, deterministically, losing nothing.
// ---------------------------------------------------------------------------

TEST_F(MemGovernanceTest, ResultCachePressureSpillIsDeterministicAndLossless) {
  auto run_once = [&](MemoryBroker* broker) {
    ResultCacheOptions rco;
    rco.broker = broker;
    rco.bytes_per_tuple = 128;
    ResultCache cache({100, 200, 300}, engine_.get(), rco);
    // Interleave inserts across all four partitions so the pressure scan
    // always has a "furthest" partition distinct from the insert target.
    std::vector<std::pair<int64_t, Tid>> inserted;
    for (uint16_t i = 0; i < 24; ++i) {
      const int64_t key = (i % 4) * 100 + 50;  // 50, 150, 250, 350, ...
      const Tid tid{static_cast<PageId>(i / 4), static_cast<SlotId>(i % 4)};
      cache.Insert(key, tid, Tuple{Value::Int64(key), Value::Int64(i)});
      inserted.emplace_back(key, tid);
    }
    // Every tuple must come back intact, spilled partitions restored.
    for (const auto& [key, tid] : inserted) {
      const std::optional<Tuple> t = cache.Take(key, tid);
      if (!t.has_value()) {
        ADD_FAILURE() << "lost tuple key=" << key;
        continue;
      }
      EXPECT_EQ((*t)[0].AsInt64(), key);
    }
    return cache.spill_stats();
  };

  // Control: no pressure, no pressure spills.
  {
    MemoryBroker roomy{MemoryBrokerOptions{}};
    const ResultCacheStats stats = run_once(&roomy);
    EXPECT_EQ(stats.pressure_spills, 0u);
    EXPECT_EQ(stats.spills, 0u);
  }

  // Under permanent pressure the cache spills its furthest partitions —
  // same insert sequence, same spill decisions, run after run.
  MemoryBrokerOptions bo;
  bo.global_budget_bytes = 4 * 1024;
  MemoryBroker broker(bo);
  MemoryBroker::Consumer hog = broker.Register(MemoryClass::kOther, "hog");
  hog.Charge(8 * 1024);
  ASSERT_TRUE(broker.UnderPressure());
  const ResultCacheStats first = run_once(&broker);
  EXPECT_GT(first.pressure_spills, 0u);
  EXPECT_GT(first.spilled_tuples, 0u);
  EXPECT_EQ(first.restored_tuples, first.spilled_tuples)
      << "every spilled tuple must restore on Take";
  const ResultCacheStats second = run_once(&broker);
  EXPECT_EQ(second.pressure_spills, first.pressure_spills)
      << "pressure spilling must be deterministic";
  EXPECT_EQ(second.spilled_tuples, first.spilled_tuples);
}

TEST_F(MemGovernanceTest, SharedScanShedsDriftUnderPressureWithoutLoss) {
  const ScanPredicate pred = db_->PredicateForSelectivity(1.0);
  const std::multiset<int64_t> oracle = Oracle(pred);
  const uint64_t chunk_bytes =
      uint64_t{8} * engine_->options().page_size;

  auto run_once = [&](MemoryBroker* broker, uint64_t* max_window_bytes) {
    SharedScanOptions so;
    so.chunk_pages = 8;
    so.drift_chunks = 8;
    so.broker = broker;
    ScanSharingCoordinator coordinator(engine_.get(), so);
    SharedScanPath path(&coordinator, &db_->heap(), pred);
    EXPECT_TRUE(path.Open().ok());
    std::multiset<int64_t> got;
    TupleBatch batch;
    while (path.NextBatch(&batch)) {
      for (size_t i = 0; i < batch.size(); ++i) {
        got.insert(batch.row(i)[0].AsInt64());
      }
      if (broker != nullptr && max_window_bytes != nullptr) {
        *max_window_bytes =
            std::max(*max_window_bytes,
                     broker->class_bytes(MemoryClass::kSharedScanWindow));
      }
    }
    path.Close();
    EXPECT_EQ(got, oracle);
    return coordinator.GroupFor(&db_->heap())->stats();
  };

  // Control: no broker, the full drift window, no sheds.
  {
    const SharedScanGroupStats stats = run_once(nullptr, nullptr);
    EXPECT_EQ(stats.drift_sheds, 0u);
  }

  // Under pressure the producer is clamped to one chunk of drift: the
  // pinned window stays at most two chunks (one held + one ahead), sheds
  // are counted, and the consumer still completes its full lap.
  MemoryBrokerOptions bo;
  bo.global_budget_bytes = 1024;
  MemoryBroker broker(bo);
  MemoryBroker::Consumer hog = broker.Register(MemoryClass::kOther, "hog");
  hog.Charge(64 * 1024);
  ASSERT_TRUE(broker.UnderPressure());
  uint64_t max_window_bytes = 0;
  const SharedScanGroupStats stats = run_once(&broker, &max_window_bytes);
  EXPECT_GT(stats.drift_sheds, 0u);
  EXPECT_GT(stats.chunks_produced, 0u);
  EXPECT_LE(max_window_bytes, 2 * chunk_bytes)
      << "clamped producer pinned more than held + one ahead";
  EXPECT_EQ(broker.class_bytes(MemoryClass::kSharedScanWindow), 0u)
      << "window charges must fully uncharge after the lap";
}

}  // namespace
}  // namespace smoothscan
