// Smooth Scan tests: result equivalence across the full configuration space
// (policy x trigger x ordering x selectivity), ordering preservation, the
// worst-case page-access bound, smoothness (no performance cliffs), policy
// dynamics (expansion/shrinking, skew adaptation) and the auxiliary
// structures (Page ID / Tuple ID / Result caches).

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <tuple>

#include "access/full_scan.h"
#include "access/index_scan.h"
#include "access/smooth_scan.h"
#include "workload/micro_bench.h"

namespace smoothscan {
namespace {

constexpr int kC2 = MicroBenchDb::kIndexedColumn;

class SmoothScanTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    EngineOptions options;
    // Pool far smaller than the table so repeated accesses actually cost
    // I/O, as in the paper's cold-cache setup.
    options.buffer_pool_pages = 64;
    engine_ = new Engine(options);
    MicroBenchSpec spec;
    spec.num_tuples = 20000;
    db_ = new MicroBenchDb(engine_, spec);
  }
  static void TearDownTestSuite() {
    delete db_;
    delete engine_;
    db_ = nullptr;
    engine_ = nullptr;
  }

  static std::multiset<int64_t> Oracle(const ScanPredicate& pred) {
    std::multiset<int64_t> ids;
    db_->heap().ForEachDirect([&](Tid, const Tuple& t) {
      if (pred.Matches(t)) ids.insert(t[0].AsInt64());
    });
    return ids;
  }

  static std::multiset<int64_t> Collect(AccessPath* path) {
    engine_->ColdRestart();
    SMOOTHSCAN_CHECK(path->Open().ok());
    std::multiset<int64_t> ids;
    Tuple t;
    while (path->Next(&t)) ids.insert(t[0].AsInt64());
    path->Close();
    return ids;
  }

  static double MeasureIoTime(AccessPath* path) {
    engine_->ColdRestart();
    const IoStats before = engine_->disk().stats();
    SMOOTHSCAN_CHECK(path->Open().ok());
    Tuple t;
    while (path->Next(&t)) {
    }
    path->Close();
    return (engine_->disk().stats() - before).io_time;
  }

  static Engine* engine_;
  static MicroBenchDb* db_;
};

Engine* SmoothScanTest::engine_ = nullptr;
MicroBenchDb* SmoothScanTest::db_ = nullptr;

// ---------- Equivalence across the configuration space ----------

using ConfigParam = std::tuple<MorphPolicy, MorphTrigger, bool, double>;

std::string ConfigParamName(const ::testing::TestParamInfo<ConfigParam>& info) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%s_%s_%s_sel%d",
                MorphPolicyToString(std::get<0>(info.param)),
                MorphTriggerToString(std::get<1>(info.param)),
                std::get<2>(info.param) ? "ordered" : "unordered",
                static_cast<int>(std::get<3>(info.param) * 10000));
  return buf;
}

class SmoothScanEquivalence
    : public SmoothScanTest,
      public ::testing::WithParamInterface<ConfigParam> {};

TEST_P(SmoothScanEquivalence, MatchesOracle) {
  const auto [policy, trigger, preserve_order, selectivity] = GetParam();
  const ScanPredicate pred = db_->PredicateForSelectivity(selectivity);

  SmoothScanOptions options;
  options.policy = policy;
  options.trigger = trigger;
  options.preserve_order = preserve_order;
  options.optimizer_estimate = 50;
  options.sla_trigger_cardinality = 120;
  SmoothScan scan(&db_->index(), pred, options);
  EXPECT_EQ(Collect(&scan), Oracle(pred));
}

INSTANTIATE_TEST_SUITE_P(
    ConfigSweep, SmoothScanEquivalence,
    ::testing::Combine(
        ::testing::Values(MorphPolicy::kGreedy,
                          MorphPolicy::kSelectivityIncrease,
                          MorphPolicy::kElastic),
        ::testing::Values(MorphTrigger::kEager, MorphTrigger::kOptimizerDriven,
                          MorphTrigger::kSlaDriven),
        ::testing::Bool(),
        ::testing::Values(0.0, 0.0005, 0.01, 0.2, 1.0)),
    ConfigParamName);

// ---------- Residual predicates ----------

TEST_F(SmoothScanTest, ResidualPredicateRespected) {
  ScanPredicate pred = db_->PredicateForSelectivity(0.1);
  pred.residual = [](const Tuple& t) { return t[3].AsInt64() < 50000; };
  const std::multiset<int64_t> expected = Oracle(pred);
  ASSERT_FALSE(expected.empty());
  for (const bool ordered : {false, true}) {
    SmoothScanOptions options;
    options.preserve_order = ordered;
    SmoothScan scan(&db_->index(), pred, options);
    EXPECT_EQ(Collect(&scan), expected) << (ordered ? "ordered" : "unordered");
  }
}

TEST_F(SmoothScanTest, ResidualWithNonEagerTrigger) {
  ScanPredicate pred = db_->PredicateForSelectivity(0.1);
  pred.residual = [](const Tuple& t) { return t[4].AsInt64() % 3 == 0; };
  SmoothScanOptions options;
  options.trigger = MorphTrigger::kOptimizerDriven;
  options.optimizer_estimate = 25;
  SmoothScan scan(&db_->index(), pred, options);
  EXPECT_EQ(Collect(&scan), Oracle(pred));
  EXPECT_TRUE(scan.smooth_stats().triggered);
}

// ---------- Ordering ----------

TEST_F(SmoothScanTest, OrderedModeEmitsKeyOrder) {
  for (const double sel : {0.001, 0.05, 0.5}) {
    const ScanPredicate pred = db_->PredicateForSelectivity(sel);
    SmoothScanOptions options;
    options.preserve_order = true;
    SmoothScan scan(&db_->index(), pred, options);
    engine_->ColdRestart();
    ASSERT_TRUE(scan.Open().ok());
    Tuple t;
    int64_t prev = INT64_MIN;
    uint64_t n = 0;
    while (scan.Next(&t)) {
      EXPECT_GE(t[kC2].AsInt64(), prev) << "sel=" << sel;
      prev = t[kC2].AsInt64();
      ++n;
    }
    EXPECT_EQ(n, Oracle(pred).size());
  }
}

// ---------- Worst-case bound (Section III-C, Eager) ----------

TEST_F(SmoothScanTest, EagerNeverProbesMorePagesThanTable) {
  for (const double sel : {0.01, 0.5, 1.0}) {
    const ScanPredicate pred = db_->PredicateForSelectivity(sel);
    SmoothScan scan(&db_->index(), pred);
    Collect(&scan);
    EXPECT_LE(scan.stats().heap_pages_probed, db_->heap().num_pages());
    EXPECT_LE(scan.smooth_stats().pages_seen, db_->heap().num_pages());
  }
}

TEST_F(SmoothScanTest, EagerNeverReadsHeapPageTwice) {
  const ScanPredicate pred = db_->PredicateForSelectivity(1.0);
  SmoothScan scan(&db_->index(), pred);
  engine_->ColdRestart();
  const IoStats before = engine_->disk().stats();
  Collect(&scan);
  const IoStats d = engine_->disk().stats() - before;
  // Heap pages read once + index pages; generous slack for the index.
  EXPECT_LE(d.pages_read,
            db_->heap().num_pages() +
                engine_->storage().NumPages(db_->index().file_id()));
}

// ---------- Smoothness: no cliffs ----------

TEST_F(SmoothScanTest, CostIsMonotoneAndCliffFree) {
  // Sweep selectivity; cost must grow monotonically (within noise) and no
  // single step may multiply cost by more than the step's size warrants.
  const double sels[] = {0.0005, 0.001, 0.002, 0.005, 0.01,
                         0.02,   0.05,  0.1,   0.2,   0.5};
  double prev_cost = 0.0;
  for (const double sel : sels) {
    const ScanPredicate pred = db_->PredicateForSelectivity(sel);
    SmoothScan scan(&db_->index(), pred);
    const double cost = MeasureIoTime(&scan);
    if (prev_cost > 0.0) {
      EXPECT_GE(cost, prev_cost * 0.7) << "sel=" << sel;  // Monotone-ish.
      EXPECT_LE(cost, prev_cost * 12.0) << "sel=" << sel;  // No cliff.
    }
    prev_cost = cost;
  }
}

TEST_F(SmoothScanTest, OneExtraTupleNeverDoublesCost) {
  // The paper's core robustness claim: an extra result tuple must not cause
  // a drastic performance change (unlike Switch Scan's cliff).
  const ScanPredicate p1 = db_->PredicateForSelectivity(0.0100);
  const ScanPredicate p2 = db_->PredicateForSelectivity(0.0102);
  SmoothScan s1(&db_->index(), p1);
  SmoothScan s2(&db_->index(), p2);
  const double c1 = MeasureIoTime(&s1);
  const double c2 = MeasureIoTime(&s2);
  EXPECT_LE(std::abs(c2 - c1), 0.25 * c1);
}

// ---------- Competitive behaviour ----------

TEST_F(SmoothScanTest, NearFullScanAtFullSelectivity) {
  const ScanPredicate pred = db_->PredicateForSelectivity(1.0);
  SmoothScan smooth(&db_->index(), pred);
  FullScan full(&db_->heap(), pred);
  const double smooth_cost = MeasureIoTime(&smooth);
  const double full_cost = MeasureIoTime(&full);
  // Fig. 5b: within ~20% of Full Scan at 100% selectivity (we allow 2x).
  EXPECT_LE(smooth_cost, full_cost * 2.0);
}

TEST_F(SmoothScanTest, FarBetterThanIndexScanAtHighSelectivity) {
  const ScanPredicate pred = db_->PredicateForSelectivity(0.5);
  SmoothScan smooth(&db_->index(), pred);
  IndexScan index(&db_->index(), pred);
  const double smooth_cost = MeasureIoTime(&smooth);
  const double index_cost = MeasureIoTime(&index);
  EXPECT_LT(smooth_cost * 3.0, index_cost);
}

TEST_F(SmoothScanTest, CompetitiveAtLowSelectivity) {
  const ScanPredicate pred = db_->PredicateForSelectivity(0.0005);
  SmoothScan smooth(&db_->index(), pred);
  FullScan full(&db_->heap(), pred);
  const double smooth_cost = MeasureIoTime(&smooth);
  const double full_cost = MeasureIoTime(&full);
  // Far below the full-scan cost for a point-ish query.
  EXPECT_LT(smooth_cost, full_cost);
}

// ---------- Policy dynamics ----------

TEST_F(SmoothScanTest, GreedyExpandsEveryProbeUntilCap) {
  const ScanPredicate pred = db_->PredicateForSelectivity(0.001);
  SmoothScanOptions options;
  options.policy = MorphPolicy::kGreedy;
  SmoothScan scan(&db_->index(), pred, options);
  Collect(&scan);
  // Greedy doubles from 1 page, so it can grow at most log2(cap) times; every
  // probe past that point leaves the region at the cap and must not count.
  const uint64_t growth_steps = static_cast<uint64_t>(
      std::ceil(std::log2(static_cast<double>(options.max_region_pages))));
  EXPECT_EQ(scan.smooth_stats().expansions,
            std::min(scan.smooth_stats().probes, growth_steps));
  EXPECT_EQ(scan.smooth_stats().shrinks, 0u);
}

TEST_F(SmoothScanTest, ExpansionCounterStopsAtRegionCap) {
  // High selectivity + a tiny cap: the region saturates after two doublings
  // (1 -> 2 -> 4) and the many remaining probes must not inflate the counter.
  const ScanPredicate pred = db_->PredicateForSelectivity(1.0);
  SmoothScanOptions options;
  options.policy = MorphPolicy::kGreedy;
  options.max_region_pages = 4;
  SmoothScan scan(&db_->index(), pred, options);
  Collect(&scan);
  EXPECT_GT(scan.smooth_stats().probes, 2u);
  EXPECT_EQ(scan.smooth_stats().expansions, 2u);
  EXPECT_EQ(scan.current_region_pages(), 4u);
}

TEST(MorphRegionStepTest, NoCountAtCapOrFloor) {
  uint64_t expansions = 0;
  uint64_t shrinks = 0;
  // At the cap every policy's growth step is a no-op: size and counters hold.
  EXPECT_EQ(MorphRegionStep(MorphPolicy::kGreedy, 16, 16, 0, 0, 16, 16,
                            &expansions, &shrinks),
            16u);
  EXPECT_EQ(MorphRegionStep(MorphPolicy::kSelectivityIncrease, 16, 16, 0, 0,
                            16, 16, &expansions, &shrinks),
            16u);
  EXPECT_EQ(MorphRegionStep(MorphPolicy::kElastic, 16, 16, 0, 0, 16, 16,
                            &expansions, &shrinks),
            16u);
  EXPECT_EQ(expansions, 0u);
  // An Elastic halving already at one page is equally a no-op.
  EXPECT_EQ(MorphRegionStep(MorphPolicy::kElastic, 1, 16, /*seen=*/10,
                            /*with_results=*/10, /*region_seen=*/1,
                            /*region_results=*/0, &expansions, &shrinks),
            1u);
  EXPECT_EQ(shrinks, 0u);
  // Below cap/floor, real steps still count (8 -> 16 clamps to the cap but
  // changes the region, so it is an expansion; 4 -> 2 is a shrink).
  EXPECT_EQ(MorphRegionStep(MorphPolicy::kGreedy, 8, 16, 0, 0, 8, 8,
                            &expansions, &shrinks),
            16u);
  EXPECT_EQ(expansions, 1u);
  EXPECT_EQ(MorphRegionStep(MorphPolicy::kElastic, 4, 16, /*seen=*/10,
                            /*with_results=*/10, /*region_seen=*/4,
                            /*region_results=*/0, &expansions, &shrinks),
            2u);
  EXPECT_EQ(shrinks, 1u);
}

TEST_F(SmoothScanTest, SelectivityIncreaseNeverShrinks) {
  const ScanPredicate pred = db_->PredicateForSelectivity(0.05);
  SmoothScanOptions options;
  options.policy = MorphPolicy::kSelectivityIncrease;
  SmoothScan scan(&db_->index(), pred, options);
  Collect(&scan);
  EXPECT_EQ(scan.smooth_stats().shrinks, 0u);
}

TEST_F(SmoothScanTest, ElasticShrinksInSparseRegions) {
  const ScanPredicate pred = db_->PredicateForSelectivity(0.0005);
  SmoothScanOptions options;
  options.policy = MorphPolicy::kElastic;
  SmoothScan scan(&db_->index(), pred, options);
  Collect(&scan);
  EXPECT_GT(scan.smooth_stats().shrinks, 0u);
}

TEST_F(SmoothScanTest, RegionCappedAtMax) {
  const ScanPredicate pred = db_->PredicateForSelectivity(1.0);
  SmoothScanOptions options;
  options.max_region_pages = 16;
  SmoothScan scan(&db_->index(), pred, options);
  Collect(&scan);
  EXPECT_LE(scan.current_region_pages(), 16u);
}

TEST_F(SmoothScanTest, FlatteningDisabledStaysMode1) {
  const ScanPredicate pred = db_->PredicateForSelectivity(0.1);
  SmoothScanOptions options;
  options.enable_flattening = false;
  SmoothScan scan(&db_->index(), pred, options);
  Collect(&scan);
  EXPECT_EQ(scan.smooth_stats().card_mode2, 0u);
  EXPECT_GT(scan.smooth_stats().card_mode1, 0u);
  // Every probe fetched exactly one page.
  EXPECT_EQ(scan.smooth_stats().probes, scan.smooth_stats().pages_seen);
}

TEST_F(SmoothScanTest, Mode1StillBeatsIndexScanAtFullSelectivity) {
  // Fig. 6: Entire Page Probe alone wins ~10x over Index Scan at 100%.
  const ScanPredicate pred = db_->PredicateForSelectivity(1.0);
  SmoothScanOptions options;
  options.enable_flattening = false;
  SmoothScan mode1(&db_->index(), pred, options);
  IndexScan index(&db_->index(), pred);
  EXPECT_LT(MeasureIoTime(&mode1) * 2.0, MeasureIoTime(&index));
}

// ---------- Triggers ----------

TEST_F(SmoothScanTest, EagerStartsMorphed) {
  const ScanPredicate pred = db_->PredicateForSelectivity(0.01);
  SmoothScan scan(&db_->index(), pred);
  Collect(&scan);
  EXPECT_EQ(scan.smooth_stats().card_mode0, 0u);
}

TEST_F(SmoothScanTest, OptimizerTriggerProducesEstimateViaMode0) {
  const ScanPredicate pred = db_->PredicateForSelectivity(0.05);
  SmoothScanOptions options;
  options.trigger = MorphTrigger::kOptimizerDriven;
  options.optimizer_estimate = 40;
  SmoothScan scan(&db_->index(), pred, options);
  Collect(&scan);
  EXPECT_TRUE(scan.smooth_stats().triggered);
  EXPECT_EQ(scan.smooth_stats().card_mode0, 40u);
  EXPECT_GT(scan.smooth_stats().card_mode1 + scan.smooth_stats().card_mode2,
            0u);
}

TEST_F(SmoothScanTest, NoTriggerWhenCardinalityWithinEstimate) {
  const ScanPredicate pred = db_->PredicateForSelectivity(0.001);
  const size_t card = Oracle(pred).size();
  SmoothScanOptions options;
  options.trigger = MorphTrigger::kOptimizerDriven;
  options.optimizer_estimate = card + 5;
  SmoothScan scan(&db_->index(), pred, options);
  const auto got = Collect(&scan);
  EXPECT_EQ(got.size(), card);
  EXPECT_FALSE(scan.smooth_stats().triggered);
  EXPECT_EQ(scan.smooth_stats().card_mode0, card);
}

TEST_F(SmoothScanTest, SlaTriggerBehavesLikeThreshold) {
  const ScanPredicate pred = db_->PredicateForSelectivity(0.05);
  SmoothScanOptions options;
  options.trigger = MorphTrigger::kSlaDriven;
  options.sla_trigger_cardinality = 25;
  options.post_trigger_policy = MorphPolicy::kGreedy;
  SmoothScan scan(&db_->index(), pred, options);
  EXPECT_EQ(Collect(&scan), Oracle(pred));
  EXPECT_TRUE(scan.smooth_stats().triggered);
  EXPECT_EQ(scan.smooth_stats().card_mode0, 25u);
}

TEST_F(SmoothScanTest, ZeroEstimateTriggersImmediately) {
  const ScanPredicate pred = db_->PredicateForSelectivity(0.01);
  SmoothScanOptions options;
  options.trigger = MorphTrigger::kOptimizerDriven;
  options.optimizer_estimate = 0;
  SmoothScan scan(&db_->index(), pred, options);
  EXPECT_EQ(Collect(&scan), Oracle(pred));
  EXPECT_EQ(scan.smooth_stats().card_mode0, 0u);
}

// ---------- Auxiliary structures ----------

TEST_F(SmoothScanTest, ResultCacheHitRateHighAtModerateSelectivity) {
  const ScanPredicate pred = db_->PredicateForSelectivity(0.03);
  SmoothScanOptions options;
  options.preserve_order = true;
  SmoothScan scan(&db_->index(), pred, options);
  Collect(&scan);
  const SmoothScanStats& ss = scan.smooth_stats();
  EXPECT_GT(ss.rc_probes, 0u);
  // Fig. 9a: hit rate approaches 100% around 1% selectivity.
  EXPECT_GT(ss.ResultCacheHitRate(), 0.8);
}

TEST_F(SmoothScanTest, MorphingAccuracyFullAtHighSelectivity) {
  // Fig. 9b: accuracy reaches 100% once every page holds a result (~2.5%).
  const ScanPredicate pred = db_->PredicateForSelectivity(0.05);
  SmoothScan scan(&db_->index(), pred);
  Collect(&scan);
  EXPECT_GT(scan.smooth_stats().MorphingAccuracy(), 0.95);
}

TEST_F(SmoothScanTest, MorphingAccuracyLowAtTinySelectivity) {
  const ScanPredicate pred = db_->PredicateForSelectivity(0.0002);
  SmoothScan scan(&db_->index(), pred);
  Collect(&scan);
  const SmoothScanStats& ss = scan.smooth_stats();
  if (ss.morph_checked_pages > 0) {
    EXPECT_LT(ss.MorphingAccuracy(), 0.8);
  }
}

TEST_F(SmoothScanTest, ModeCardinalitiesSumToProduced) {
  for (const auto trigger :
       {MorphTrigger::kEager, MorphTrigger::kOptimizerDriven}) {
    const ScanPredicate pred = db_->PredicateForSelectivity(0.05);
    SmoothScanOptions options;
    options.trigger = trigger;
    options.optimizer_estimate = 30;
    SmoothScan scan(&db_->index(), pred, options);
    const auto got = Collect(&scan);
    const SmoothScanStats& ss = scan.smooth_stats();
    EXPECT_EQ(ss.card_mode0 + ss.card_mode1 + ss.card_mode2, got.size());
  }
}

// ---------- Skew adaptation (Section VI-D) ----------

TEST(SmoothScanSkewTest, ElasticReadsFarFewerPagesThanSiUnderSkew) {
  EngineOptions eo;
  eo.buffer_pool_pages = 256;
  Engine engine(eo);
  SkewedBenchSpec spec;
  spec.num_tuples = 40000;
  spec.dense_prefix = 400;
  // Enough scattered matches after the dense head that SI's sticky region
  // keeps fetching big chunks across the table (the Fig. 8 scenario).
  spec.extra_match_fraction = 0.001;
  MicroBenchDb db(&engine, spec);
  const ScanPredicate pred = db.ZeroKeyPredicate();

  auto run = [&](MorphPolicy policy) -> std::pair<uint64_t, size_t> {
    SmoothScanOptions options;
    options.policy = policy;
    SmoothScan scan(&db.index(), pred, options);
    engine.ColdRestart();
    SMOOTHSCAN_CHECK(scan.Open().ok());
    Tuple t;
    size_t n = 0;
    while (scan.Next(&t)) ++n;
    return {scan.smooth_stats().pages_seen, n};
  };

  const auto [si_pages, si_rows] = run(MorphPolicy::kSelectivityIncrease);
  const auto [elastic_pages, elastic_rows] = run(MorphPolicy::kElastic);
  EXPECT_EQ(si_rows, elastic_rows);
  // Fig. 8b: SI keeps fetching big regions after the dense head; Elastic
  // shrinks back and touches far fewer pages.
  EXPECT_LT(elastic_pages * 2, si_pages);
}

}  // namespace
}  // namespace smoothscan
