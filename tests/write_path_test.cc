// Write-path tests: slotted-page mutation primitives, free-space-map re-use,
// insert/update/delete round-trips visible through index and scan paths,
// scan-vs-writer snapshot isolation (multisets AND bit-identical simulated
// cost), B+-tree consistency under mixed mutations, dirty-page write-back
// accounting (pin-aware, deterministic across admission levels), the
// SetMirror write-I/O audit, and shared-scan group invalidation at publish.

#include <gtest/gtest.h>

#include <map>
#include <thread>
#include <vector>

#include "access/full_scan.h"
#include "access/index_scan.h"
#include "common/rng.h"
#include "engine/query_engine.h"
#include "sharing/scan_sharing.h"
#include "sharing/shared_scan_path.h"
#include "storage/engine.h"
#include "workload/micro_bench.h"
#include "workload/workload_driver.h"
#include "write/free_space_map.h"
#include "write/table_version.h"
#include "write/table_writer.h"

namespace smoothscan {
namespace {

// ---------- Page mutation primitives ----------

std::vector<uint8_t> Bytes(uint8_t fill, size_t n) {
  return std::vector<uint8_t>(n, fill);
}

TEST(PageWriteTest, DeleteTombstonesAndRecycles) {
  Page page(512);
  std::vector<uint8_t> a = Bytes(0xAA, 40), b = Bytes(0xBB, 40);
  const SlotId sa = page.Insert(a.data(), 40).value();
  const SlotId sb = page.Insert(b.data(), 40).value();
  ASSERT_TRUE(page.IsLive(sa));
  page.Delete(sa);
  EXPECT_FALSE(page.IsLive(sa));
  EXPECT_TRUE(page.IsLive(sb));
  EXPECT_EQ(page.live_slots(), 1);
  EXPECT_EQ(page.frag_bytes(), 40u);
  uint32_t size = 7;
  EXPECT_EQ(page.GetTuple(sa, &size), nullptr);
  EXPECT_EQ(size, 0u);

  // The next insert recycles the tombstoned slot id.
  std::vector<uint8_t> c = Bytes(0xCC, 20);
  const SlotId sc = page.Insert(c.data(), 20).value();
  EXPECT_EQ(sc, sa);
  EXPECT_EQ(page.num_slots(), 2);
  const uint8_t* data = page.GetTuple(sc, &size);
  ASSERT_EQ(size, 20u);
  EXPECT_EQ(data[0], 0xCC);
}

TEST(PageWriteTest, UpdateInPlaceAndGrowing) {
  Page page(512);
  std::vector<uint8_t> a = Bytes(0xAA, 60);
  const SlotId s = page.Insert(a.data(), 60).value();
  // Shrink in place: tail becomes fragmentation.
  std::vector<uint8_t> small = Bytes(0x11, 20);
  ASSERT_TRUE(page.Update(s, small.data(), 20).ok());
  EXPECT_EQ(page.frag_bytes(), 40u);
  uint32_t size = 0;
  EXPECT_EQ(page.GetTuple(s, &size)[0], 0x11);
  EXPECT_EQ(size, 20u);
  // Grow: relocates within the page, same slot id.
  std::vector<uint8_t> big = Bytes(0x22, 120);
  ASSERT_TRUE(page.Update(s, big.data(), 120).ok());
  const uint8_t* data = page.GetTuple(s, &size);
  ASSERT_EQ(size, 120u);
  EXPECT_EQ(data[119], 0x22);
  EXPECT_EQ(page.live_slots(), 1);
}

TEST(PageWriteTest, CompactionReclaimsFragmentation) {
  Page page(512);
  // Fill the page, then punch holes; a tuple that only fits after
  // compaction must still insert.
  std::vector<SlotId> slots;
  std::vector<uint8_t> t = Bytes(0x33, 40);
  while (page.Fits(40)) slots.push_back(page.Insert(t.data(), 40).value());
  ASSERT_GE(slots.size(), 8u);
  for (size_t i = 0; i < slots.size(); i += 2) page.Delete(slots[i]);
  const uint32_t contiguous = page.free_space();
  std::vector<uint8_t> big = Bytes(0x44, 100);
  ASSERT_GT(100u, contiguous);  // Would not fit without compaction.
  ASSERT_TRUE(page.FitsWithCompaction(100));
  const SlotId s = page.Insert(big.data(), 100).value();
  uint32_t size = 0;
  EXPECT_EQ(page.GetTuple(s, &size)[0], 0x44);
  ASSERT_EQ(size, 100u);
  // Survivors kept their slot ids and bytes.
  for (size_t i = 1; i < slots.size(); i += 2) {
    const uint8_t* data = page.GetTuple(slots[i], &size);
    ASSERT_EQ(size, 40u);
    EXPECT_EQ(data[0], 0x33);
  }
}

// ---------- FreeSpaceMap ----------

TEST(FreeSpaceMapTest, FirstFitAndGrowth) {
  FreeSpaceMap fsm;
  fsm.SetPage(0, 10);
  fsm.SetPage(1, 100);
  fsm.SetPage(2, 500);
  EXPECT_EQ(fsm.FindPageWithSpace(50), 1u);
  EXPECT_EQ(fsm.FindPageWithSpace(200), 2u);
  EXPECT_EQ(fsm.FindPageWithSpace(501), kInvalidPageId);
  fsm.SetPage(1, 20);  // Consumed.
  EXPECT_EQ(fsm.FindPageWithSpace(50), 2u);
  fsm.SetPage(3, 800);  // Appended page.
  EXPECT_EQ(fsm.num_pages(), 4u);
  EXPECT_EQ(fsm.FindPageWithSpace(600), 3u);
}

// ---------- Fixture: small mutable table with an index ----------

struct WriteDb {
  explicit WriteDb(uint64_t tuples = 5000) {
    EngineOptions eo;
    eo.buffer_pool_pages = 256;
    engine = std::make_unique<Engine>(eo);
    MicroBenchSpec spec;
    spec.num_tuples = tuples;
    db = std::make_unique<MicroBenchDb>(engine.get(), spec);
    registry = std::make_unique<TableVersionRegistry>(engine.get());
    writer = std::make_unique<TableWriter>(
        db->mutable_heap(), std::vector<BPlusTree*>{db->mutable_index()},
        registry.get());
  }

  ExecContext ctx() { return EngineContext(engine.get()); }

  /// Oracle: multiset of (c1, c2) over live tuples, read directly.
  std::multiset<std::pair<int64_t, int64_t>> Oracle() const {
    std::multiset<std::pair<int64_t, int64_t>> out;
    db->heap().ForEachDirect([&](Tid, const Tuple& t) {
      out.insert({t[0].AsInt64(), t[1].AsInt64()});
    });
    return out;
  }

  /// Multiset of (c1, c2) produced by a full scan through the engine.
  std::multiset<std::pair<int64_t, int64_t>> ScanAll() {
    std::multiset<std::pair<int64_t, int64_t>> out;
    FullScan scan(&db->heap(), db->PredicateForSelectivity(1.0));
    EXPECT_TRUE(scan.Open().ok());
    TupleBatch batch;
    while (scan.NextBatch(&batch)) {
      for (size_t i = 0; i < batch.size(); ++i) {
        out.insert({batch.row(i)[0].AsInt64(), batch.row(i)[1].AsInt64()});
      }
    }
    scan.Close();
    return out;
  }

  /// Multiset of (c1, c2) produced through the secondary index.
  std::multiset<std::pair<int64_t, int64_t>> IndexAll() {
    std::multiset<std::pair<int64_t, int64_t>> out;
    IndexScan scan(&db->index(), db->PredicateForSelectivity(1.0));
    EXPECT_TRUE(scan.Open().ok());
    TupleBatch batch;
    while (scan.NextBatch(&batch)) {
      for (size_t i = 0; i < batch.size(); ++i) {
        out.insert({batch.row(i)[0].AsInt64(), batch.row(i)[1].AsInt64()});
      }
    }
    scan.Close();
    return out;
  }

  std::unique_ptr<Engine> engine;
  std::unique_ptr<MicroBenchDb> db;
  std::unique_ptr<TableVersionRegistry> registry;
  std::unique_ptr<TableWriter> writer;
};

Tuple MakeRow(const Schema& schema, int64_t c1, int64_t c2) {
  Tuple t(schema.num_columns());
  t[0] = Value::Int64(c1);
  t[1] = Value::Int64(c2);
  for (size_t c = 2; c < schema.num_columns(); ++c) {
    t[c] = Value::Int64(static_cast<int64_t>(c));
  }
  return t;
}

// ---------- Round-trips via index and scan ----------

TEST(TableWriterTest, InsertUpdateDeleteRoundTrip) {
  WriteDb w(2000);
  const Schema& schema = w.db->heap().schema();
  auto expected = w.Oracle();

  // Inserts land (publish at quiescence) and are visible via scan AND index.
  std::vector<Tid> inserted;
  for (int i = 0; i < 500; ++i) {
    const int64_t c1 = 1000000 + i;
    const int64_t c2 = 77777 + (i % 5);
    Result<Tid> tid = w.writer->Insert(MakeRow(schema, c1, c2), w.ctx());
    ASSERT_TRUE(tid.ok());
    inserted.push_back(tid.value());
    expected.insert({c1, c2});
  }
  EXPECT_EQ(w.ScanAll(), expected);
  EXPECT_EQ(w.IndexAll(), expected);
  EXPECT_EQ(w.db->heap().num_tuples(), 2500u);
  w.db->index().CheckInvariants();

  // Updates: change the indexed key; index must follow.
  for (int i = 0; i < 100; ++i) {
    const int64_t old_c1 = 1000000 + i;
    const int64_t old_c2 = 77777 + (i % 5);
    const int64_t new_c2 = 88888;
    Result<Tid> moved =
        w.writer->Update(inserted[i], MakeRow(schema, old_c1, new_c2), w.ctx());
    ASSERT_TRUE(moved.ok());
    expected.erase(expected.find({old_c1, old_c2}));
    expected.insert({old_c1, new_c2});
  }
  EXPECT_EQ(w.ScanAll(), expected);
  EXPECT_EQ(w.IndexAll(), expected);
  w.db->index().CheckInvariants();

  // Deletes: gone from scan and index; double delete reports NotFound.
  for (int i = 100; i < 200; ++i) {
    ASSERT_TRUE(w.writer->Delete(inserted[i], w.ctx()).ok());
    expected.erase(
        expected.find({1000000 + i, 77777 + (i % 5)}));
  }
  EXPECT_EQ(w.writer->Delete(inserted[150], w.ctx()).code(),
            StatusCode::kNotFound);
  EXPECT_EQ(w.ScanAll(), expected);
  EXPECT_EQ(w.IndexAll(), expected);
  EXPECT_EQ(w.db->heap().num_tuples(), 2400u);
  w.db->index().CheckInvariants();
}

TEST(TableWriterTest, OversizedTupleRejectedGracefully) {
  // A tuple that cannot fit even an empty page must fail with
  // kResourceExhausted (not abort), for insert and for update — the
  // moved-update path must not half-apply.
  EngineOptions eo;
  eo.page_size = 256;  // 10 INT64 columns serialize to 80 bytes; strings
  Engine engine(eo);   // can exceed a tiny page.
  HeapFile heap(&engine, "t", Schema({{"k", ValueType::kInt64},
                                      {"s", ValueType::kString}}));
  TableVersionRegistry registry(&engine);
  TableWriter writer(&heap, {}, &registry);
  const ExecContext ctx = EngineContext(&engine);

  Tuple small{Value::Int64(1), Value::String("x")};
  Result<Tid> tid = writer.Insert(small, ctx);
  ASSERT_TRUE(tid.ok());

  Tuple huge{Value::Int64(2), Value::String(std::string(1000, 'y'))};
  EXPECT_EQ(writer.Insert(huge, ctx).status().code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(writer.Update(tid.value(), huge, ctx).status().code(),
            StatusCode::kResourceExhausted);
  // The failed update left the original tuple untouched and live.
  TableVersionRegistry::ReadLease lease = registry.AcquireRead(heap.file_id());
  EXPECT_EQ(heap.Read(tid.value())[1].AsString(), "x");
  EXPECT_EQ(heap.num_tuples(), 1u);
}

// ---------- Free-space-map re-use ----------

TEST(TableWriterTest, FreeSpaceMapReusesDeletedSpace) {
  WriteDb w(2000);
  const Schema& schema = w.db->heap().schema();
  const size_t pages_before = w.db->heap().num_pages();

  // Delete a swath of early tuples, then insert the same number of
  // same-sized tuples: first-fit placement must re-fill the holes and the
  // table must not grow by a single page.
  int deleted = 0;
  for (PageId p = 0; p < 3; ++p) {
    const Page& page = w.engine->storage().GetPage(w.db->heap().file_id(), p);
    for (SlotId s = 0; s < page.num_slots(); ++s) {
      ASSERT_TRUE(w.writer->Delete(Tid{p, s}, w.ctx()).ok());
      ++deleted;
    }
  }
  ASSERT_GT(deleted, 50);
  for (int i = 0; i < deleted; ++i) {
    Result<Tid> tid =
        w.writer->Insert(MakeRow(schema, 2000000 + i, 1), w.ctx());
    ASSERT_TRUE(tid.ok());
    EXPECT_LT(tid.value().page_id, 3u);  // Holes are re-used, in page order.
  }
  EXPECT_EQ(w.db->heap().num_pages(), pages_before);
  EXPECT_GT(w.writer->stats().recycled_inserts, 0u);
  EXPECT_EQ(w.writer->stats().pages_appended, 0u);

  // One more insert of a full page's worth must eventually append.
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(w.writer->Insert(MakeRow(schema, 3000000 + i, 2), w.ctx()).ok());
  }
  EXPECT_GT(w.db->heap().num_pages(), pages_before);
  EXPECT_GT(w.writer->stats().pages_appended, 0u);
}

// ---------- Snapshot isolation: multiset and bit-identical cost ----------

TEST(SnapshotIsolationTest, ScanUnchangedByConcurrentWrites) {
  // Reference run: identical db, no writer anywhere near it.
  WriteDb ref(3000);
  const auto ref_before = ref.engine->TotalTime();
  const auto ref_result = ref.ScanAll();
  const double ref_cost = ref.engine->TotalTime() - ref_before;

  WriteDb w(3000);
  const Schema& schema = w.db->heap().schema();
  const auto snapshot = w.Oracle();

  // Open a scan mid-flight: lease held, a large write batch lands while the
  // scan is parked between batches.
  TableVersionRegistry::ReadLease lease =
      w.registry->AcquireRead(w.db->heap().file_id());
  // The writer charges a private stack (as a write query would under the
  // engine), so the engine counters measure the scan alone.
  QueryContext wctx(w.engine.get());
  const double before = w.engine->TotalTime();
  FullScan scan(&w.db->heap(), w.db->PredicateForSelectivity(1.0));
  ASSERT_TRUE(scan.Open().ok());
  TupleBatch batch;
  std::multiset<std::pair<int64_t, int64_t>> seen;
  bool wrote = false;
  while (scan.NextBatch(&batch)) {
    for (size_t i = 0; i < batch.size(); ++i) {
      seen.insert({batch.row(i)[0].AsInt64(), batch.row(i)[1].AsInt64()});
    }
    if (!wrote) {
      // Mutations race the scan: inserts, deletes of pages the scan has not
      // reached yet, updates of pages it already passed.
      for (int i = 0; i < 300; ++i) {
        ASSERT_TRUE(w.writer->Insert(MakeRow(schema, 5000000 + i, 3),
                                     wctx.ctx())
                        .ok());
      }
      for (SlotId s = 0; s < 20; ++s) {
        (void)w.writer->Delete(Tid{static_cast<PageId>(
                                       w.db->heap().num_pages() - 1),
                                   s},
                               wctx.ctx());
        (void)w.writer->Update(Tid{0, s}, MakeRow(schema, -1, 4), wctx.ctx());
      }
      EXPECT_TRUE(w.registry->era_open(w.db->heap().file_id()));
      wrote = true;
    }
  }
  scan.Close();
  const double cost = w.engine->TotalTime() - before;

  // The scan saw exactly the pre-write snapshot, at exactly the undisturbed
  // run's simulated cost.
  EXPECT_EQ(seen, snapshot);
  EXPECT_EQ(cost, ref_cost);  // Bit-identical doubles.

  // After the lease drops, the era publishes and a fresh scan sees it all.
  lease.Release();
  EXPECT_FALSE(w.registry->era_open(w.db->heap().file_id()));
  EXPECT_EQ(w.registry->published_epoch(w.db->heap().file_id()), 1u);
  const auto after = w.ScanAll();
  EXPECT_EQ(after, w.Oracle());
  EXPECT_NE(after, snapshot);
  EXPECT_EQ(w.IndexAll(), after);
  w.db->index().CheckInvariants();
}

// ---------- B+-tree consistency under mixed mutations ----------

TEST(BPlusTreeWriteTest, MixedMutationsKeepInvariants) {
  EngineOptions eo;
  Engine engine(eo);
  HeapFile heap(&engine, "t", MakeIntSchema(2));
  // Deep little tree so splits and empty leaves actually occur.
  BPlusTreeOptions opts;
  opts.fanout_override = 4;
  opts.leaf_capacity_override = 4;
  BPlusTree tree(&engine, "t_idx", &heap, 1, opts);

  std::multimap<int64_t, Tid> reference;
  Rng rng(99);
  Tuple row(2);
  for (int i = 0; i < 2000; ++i) {
    row[0] = Value::Int64(i);
    const int64_t key = rng.UniformInt(0, 50);  // Heavy duplicates.
    row[1] = Value::Int64(key);
    const Tid tid = heap.Append(row).value();
    tree.Insert(key, tid);
    reference.emplace(key, tid);
  }
  tree.CheckInvariants();

  // Interleave removes (including whole-key wipes that empty leaves) with
  // fresh inserts.
  for (int round = 0; round < 40; ++round) {
    const int64_t key = rng.UniformInt(0, 50);
    auto [lo, hi] = reference.equal_range(key);
    std::vector<Tid> victims;
    for (auto it = lo; it != hi; ++it) victims.push_back(it->second);
    for (const Tid& tid : victims) {
      ASSERT_TRUE(tree.Remove(key, tid));
    }
    reference.erase(key);
    tree.CheckInvariants();
    EXPECT_FALSE(tree.Remove(key, Tid{0, 0}));  // Already gone.
    if (round % 3 == 0) {
      row[0] = Value::Int64(100000 + round);
      row[1] = Value::Int64(key);
      const Tid tid = heap.Append(row).value();
      tree.Insert(key, tid);
      reference.emplace(key, tid);
      tree.CheckInvariants();
    }
  }
  ASSERT_EQ(tree.num_entries(), reference.size());

  // Full iteration equals the reference, in (key, Tid) order, across the
  // deletion-emptied leaves.
  std::vector<std::pair<int64_t, Tid>> expected(reference.begin(),
                                                reference.end());
  size_t i = 0;
  for (auto it = tree.Seek(std::numeric_limits<int64_t>::min()); it.Valid();
       it.Next()) {
    ASSERT_LT(i, expected.size());
    EXPECT_EQ(it.key(), expected[i].first);
    ++i;
  }
  EXPECT_EQ(i, expected.size());
  // Seek lands correctly even when the run starts behind empty leaves.
  for (int64_t key = 0; key <= 51; ++key) {
    auto it = tree.Seek(key);
    auto ref_it = reference.lower_bound(key);
    if (ref_it == reference.end()) {
      EXPECT_FALSE(it.Valid());
    } else {
      ASSERT_TRUE(it.Valid());
      EXPECT_EQ(it.key(), ref_it->first);
    }
  }
}

// ---------- Write-back accounting ----------

TEST(WriteBackTest, PinAwareFlushRetriesDirtyPages) {
  EngineOptions eo;
  eo.buffer_pool_pages = 64;
  Engine engine(eo);
  const FileId file = engine.storage().CreateFile("wb");
  for (int i = 0; i < 8; ++i) engine.storage().AppendPage(file);
  BufferPool& pool = engine.pool();

  pool.MarkDirty(file, 1);
  pool.MarkDirty(file, 2);
  pool.MarkDirty(file, 3);
  EXPECT_EQ(pool.dirty_pages(), 3u);

  // Pin page 2: FlushAll writes back 1 and 3 (one coalesced... they are not
  // adjacent: pages 1 and 3 → two write requests), keeps 2 dirty+resident.
  PageGuard guard = pool.Pin(file, 2);
  const IoStats before = engine.disk().stats();
  const size_t pinned = pool.FlushAll();
  IoStats flushed = engine.disk().stats() - before;
  EXPECT_EQ(pinned, 1u);
  EXPECT_EQ(flushed.pages_written, 2u);
  EXPECT_EQ(pool.dirty_pages(), 1u);  // Page 2 queued, not dropped.

  // Unpin and flush again: the deferred write-back happens exactly once.
  guard.Release();
  const IoStats before2 = engine.disk().stats();
  EXPECT_EQ(pool.FlushAll(), 0u);
  flushed = engine.disk().stats() - before2;
  EXPECT_EQ(flushed.pages_written, 1u);
  EXPECT_EQ(pool.dirty_pages(), 0u);

  // Adjacent dirty pages coalesce into one extent write request.
  pool.MarkDirty(file, 4);
  pool.MarkDirty(file, 5);
  pool.MarkDirty(file, 6);
  const IoStats before3 = engine.disk().stats();
  pool.FlushAll();
  flushed = engine.disk().stats() - before3;
  EXPECT_EQ(flushed.pages_written, 3u);
  EXPECT_EQ(flushed.io_requests, 1u);
}

TEST(WriteBackTest, MirroredPoolsNeverDoubleChargeWrites) {
  EngineOptions eo;
  eo.buffer_pool_pages = 64;
  Engine engine(eo);
  const FileId file = engine.storage().CreateFile("m");
  for (int i = 0; i < 4; ++i) engine.storage().AppendPage(file);

  // Engine pool holds a dirty page; a query-private pool mirrors into it.
  engine.pool().MarkDirty(file, 0);
  QueryContext qctx(&engine, &engine.pool());
  // The mirrored fetch pins the dirty page in the engine pool — it must not
  // clear the dirty bit, and flushing the *private* pool must charge no
  // write anywhere (its frames are clean by construction).
  PageGuard g = qctx.pool().Fetch(file, 0);
  EXPECT_EQ(engine.pool().dirty_pages(), 1u);
  const IoStats engine_before = engine.disk().stats();
  const IoStats query_before = qctx.disk().stats();
  qctx.pool().FlushAll();
  EXPECT_EQ((engine.disk().stats() - engine_before).pages_written, 0u);
  EXPECT_EQ((qctx.disk().stats() - query_before).pages_written, 0u);
  g.Release();
  // The engine pool's own flush charges the write-back exactly once, on the
  // engine stream.
  engine.pool().FlushAll();
  EXPECT_EQ((engine.disk().stats() - engine_before).pages_written, 1u);
  EXPECT_EQ((qctx.disk().stats() - query_before).pages_written, 0u);
}

/// Runs the mixed workload at the given admission cap and DOP; returns
/// (write-back pages at final flush, per-read sim costs).
std::pair<uint64_t, std::vector<double>> RunMixed(uint32_t cap, uint32_t dop) {
  EngineOptions eo;
  eo.buffer_pool_pages = 256;
  Engine engine(eo);
  MicroBenchSpec spec;
  spec.num_tuples = 20000;
  MicroBenchDb db(&engine, spec);
  TableVersionRegistry registry(&engine);
  TableWriter writer(db.mutable_heap(),
                     std::vector<BPlusTree*>{db.mutable_index()}, &registry);
  QueryEngineOptions qeo;
  qeo.max_admitted = cap;
  qeo.versions = &registry;
  QueryEngine qe(&engine, qeo);
  WorkloadDriver driver(&engine, &db, &qe);
  WorkloadOptions wo;
  wo.clients = 4;
  wo.dop = dop;
  wo.policy = DriverPolicy::kSmoothScan;
  wo.seed = 5;
  wo.phases = WorkloadOptions::MixedWritePhases(/*queries_per_phase=*/2,
                                                /*write_queries_per_phase=*/3);
  wo.writer = &writer;
  wo.versions = &registry;
  wo.phase_barrier = true;
  const WorkloadReport report = driver.Run(wo);

  std::vector<double> read_costs;
  for (const QueryMetrics& m : report.per_query) {
    if (!m.write) read_costs.push_back(m.sim_time);
  }
  const IoStats before = engine.disk().stats();
  engine.pool().FlushAll();
  return {(engine.disk().stats() - before).pages_written,
          std::move(read_costs)};
}

TEST(WriteBackTest, AccountingDeterministicAcrossAdmissionAndDop) {
  // Same seed → same op stream → same dirty set and same per-read costs, no
  // matter how many queries run concurrently (1/2/8). The morsel-parallel
  // leaf is a different operator with its own (equally deterministic) cost
  // profile, so DOP 2 is compared against DOP 2, across admission levels.
  const auto base = RunMixed(1, 0);
  EXPECT_GT(base.first, 0u);
  for (const uint32_t cap : {2u, 8u}) {
    const auto run = RunMixed(cap, 0);
    EXPECT_EQ(run.first, base.first) << "cap=" << cap;
    EXPECT_EQ(run.second, base.second) << "cap=" << cap;
  }
  const auto base_dop = RunMixed(1, 2);
  const auto dop = RunMixed(8, 2);
  EXPECT_EQ(dop.first, base_dop.first);
  EXPECT_EQ(dop.second, base_dop.second);
  EXPECT_EQ(base_dop.first, base.first);  // The dirty set is DOP-invariant.
}

// ---------- Shared-scan groups across publishes ----------

TEST(SharedScanWriteTest, PublishInvalidatesParkedGroupAndNewLapSeesWrites) {
  EngineOptions eo;
  eo.buffer_pool_pages = 512;
  Engine engine(eo);
  MicroBenchSpec spec;
  spec.num_tuples = 20000;
  MicroBenchDb db(&engine, spec);
  TableVersionRegistry registry(&engine);
  TableWriter writer(db.mutable_heap(),
                     std::vector<BPlusTree*>{db.mutable_index()}, &registry);
  ScanSharingCoordinator sharing(&engine);
  QueryEngineOptions qeo;
  qeo.max_admitted = 4;
  qeo.sharing = &sharing;
  qeo.versions = &registry;
  QueryEngine qe(&engine, qeo);

  auto shared_count = [&](int64_t hi) {
    QuerySpec spec;
    spec.index = &db.index();
    spec.predicate = db.PredicateForSelectivity(1.0);
    spec.predicate.hi = hi;
    spec.kind = PathKind::kSharedScan;
    return qe.WaitSpec(qe.SubmitSpec(std::move(spec))).metrics.tuples;
  };

  const uint64_t before = shared_count(1);  // Tuples with c2 == 0.
  ASSERT_NE(sharing.GroupFor(&db.heap()), nullptr);  // Parked group exists.
  const size_t pages_before = db.heap().num_pages();

  // A write query grows the table and piles 500 tuples into c2 == 0.
  QuerySpec wspec;
  wspec.writer = &writer;
  for (int i = 0; i < 500; ++i) {
    wspec.write_ops.push_back(
        WriteOp::MakeInsert(MakeRow(db.heap().schema(), 7000000 + i, 0)));
  }
  ASSERT_TRUE(qe.WaitSpec(qe.SubmitSpec(std::move(wspec))).status.ok());
  // Quiescent engine → the era published and the hook retired the group.
  EXPECT_EQ(sharing.GroupFor(&db.heap()), nullptr);
  EXPECT_GT(db.heap().num_pages(), pages_before);

  // The next shared lap forms a fresh group over the grown table and sees
  // every new tuple.
  EXPECT_EQ(shared_count(1), before + 500);
  ASSERT_NE(sharing.GroupFor(&db.heap()), nullptr);
}

// ---------- Writer vs. scanner under real concurrency (TSan fodder) ----------

TEST(WriteConcurrencyTest, ScannersRaceWritersSafely) {
  EngineOptions eo;
  eo.buffer_pool_pages = 256;
  Engine engine(eo);
  MicroBenchSpec spec;
  spec.num_tuples = 10000;
  MicroBenchDb db(&engine, spec);
  TableVersionRegistry registry(&engine);
  TableWriter writer(db.mutable_heap(),
                     std::vector<BPlusTree*>{db.mutable_index()}, &registry);
  QueryEngineOptions qeo;
  qeo.max_admitted = 4;
  qeo.versions = &registry;
  QueryEngine qe(&engine, qeo);

  const uint64_t initial = db.heap().num_tuples();
  std::vector<std::thread> threads;
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&] {
      for (int q = 0; q < 6; ++q) {
        QuerySpec spec;
        spec.index = &db.index();
        spec.predicate = db.PredicateForSelectivity(0.5);
        spec.kind = q % 2 == 0 ? PathKind::kFullScan : PathKind::kSmoothScan;
        const QueryResult res = qe.WaitSpec(qe.SubmitSpec(std::move(spec)));
        ASSERT_TRUE(res.status.ok());
      }
    });
  }
  threads.emplace_back([&] {
    Rng rng(3);
    for (int b = 0; b < 10; ++b) {
      QuerySpec spec;
      spec.writer = &writer;
      for (int i = 0; i < 20; ++i) {
        spec.write_ops.push_back(WriteOp::MakeInsert(MakeRow(
            db.heap().schema(), 9000000 + b * 20 + i,
            rng.UniformInt(0, 100000))));
      }
      ASSERT_TRUE(qe.WaitSpec(qe.SubmitSpec(std::move(spec))).status.ok());
    }
  });
  for (std::thread& t : threads) t.join();
  qe.DrainAll();

  // All writes landed (publishes interleaved with scans at quiescent gaps).
  TableVersionRegistry::ReadLease lease =
      registry.AcquireRead(db.heap().file_id());
  lease.Release();
  EXPECT_EQ(db.heap().num_tuples(), initial + 200);
  db.index().CheckInvariants();
}

}  // namespace
}  // namespace smoothscan
