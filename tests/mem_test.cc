// Unit tests of the memory subsystem (src/mem/): the chunked bump Arena, the
// recycled-TupleBatch BatchPool (warm reuse, quota shedding, the ablation
// mode), the MemoryBroker's class accounting and pressure signal, the
// per-query QueryMemoryScope, and the MorselSource fill-rate telemetry +
// morsel-size hint that rides on the pooled emit path.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "access/morsel_source.h"
#include "mem/arena.h"
#include "mem/batch_pool.h"
#include "mem/memory_broker.h"

namespace smoothscan {
namespace {

// ---------------------------------------------------------------- Arena

TEST(ArenaTest, BumpAllocatesWithAlignment) {
  Arena arena;
  void* a = arena.Allocate(3, 1);
  void* b = arena.Allocate(8, 8);
  void* c = arena.Allocate(1, 64);
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(b) % 8, 0u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(c) % 64, 0u);
  EXPECT_GE(arena.bytes_used(), 3u + 8u + 1u);
  EXPECT_GE(arena.bytes_reserved(), arena.bytes_used());
}

TEST(ArenaTest, OversizedRequestGetsDedicatedChunk) {
  Arena arena;
  const size_t huge = Arena::kDefaultChunkBytes * 4;
  void* p = arena.Allocate(huge, 8);
  ASSERT_NE(p, nullptr);
  EXPECT_GE(arena.bytes_reserved(), huge);
  // The bump chunk stays usable for small allocations afterwards.
  EXPECT_NE(arena.Allocate(16, 8), nullptr);
}

TEST(ArenaTest, NewPlacementConstructs) {
  Arena arena;
  std::vector<int>* v = arena.New<std::vector<int>>(5, 7);
  ASSERT_EQ(v->size(), 5u);
  EXPECT_EQ((*v)[4], 7);
  v->~vector();  // Caller owns destruction; memory goes with the arena.
}

TEST(ArenaTest, ManySmallAllocationsSpanChunks) {
  Arena arena;
  for (int i = 0; i < 10000; ++i) {
    ASSERT_NE(arena.Allocate(16, 8), nullptr);
  }
  EXPECT_GT(arena.num_chunks(), 1u);
}

// ------------------------------------------------------------- BatchPool

TEST(BatchPoolTest, RecyclesWarmBatches) {
  BatchPool pool(BatchPoolOptions{});
  {
    PooledBatch b = pool.Acquire();
    ASSERT_TRUE(b);
    EXPECT_EQ(b->capacity(), kDefaultBatchSize);
    b->Append(Tuple{Value::Int64(1)});
  }  // Released by the handle's destructor.
  TupleBatch* first = nullptr;
  {
    PooledBatch b = pool.Acquire();
    first = b.get();
    EXPECT_TRUE(b->empty());  // Released clean.
  }
  {
    PooledBatch b = pool.Acquire();
    EXPECT_EQ(b.get(), first);  // Same header, recycled.
  }
  const BatchPoolStats stats = pool.stats();
  EXPECT_EQ(stats.acquires, 3u);
  EXPECT_EQ(stats.fresh_batches, 1u);
  EXPECT_EQ(stats.reuses, 2u);
  EXPECT_EQ(stats.cold_acquires(), 1u);
  EXPECT_EQ(stats.sheds, 0u);
}

TEST(BatchPoolTest, ValueStorageSurvivesRecycling) {
  BatchPoolOptions options;
  options.batch_capacity = 8;
  BatchPool pool(options);
  {
    PooledBatch b = pool.Acquire();
    for (int i = 0; i < 8; ++i) {
      b->Append(Tuple{Value::Int64(i), Value::Int64(i * 2)});
    }
  }
  PooledBatch b = pool.Acquire();
  // AppendSlot hands back the recycled slot with its Value storage intact —
  // the zero-allocation decode contract.
  Tuple* slot = b->AppendSlot();
  EXPECT_EQ(slot->size(), 2u);
}

TEST(BatchPoolTest, AblationModeShedsEveryRelease) {
  BatchPoolOptions options;
  options.recycle = false;
  BatchPool pool(options);
  { PooledBatch b = pool.Acquire(); }
  { PooledBatch b = pool.Acquire(); }
  const BatchPoolStats stats = pool.stats();
  EXPECT_EQ(stats.reuses, 0u);  // Headers recycle, storage never does.
  EXPECT_EQ(stats.sheds, 2u);
  EXPECT_EQ(stats.cold_acquires(), 2u);
}

TEST(BatchPoolTest, ConcurrentHandlesGetDistinctBatches) {
  BatchPool pool(BatchPoolOptions{});
  PooledBatch a = pool.Acquire();
  PooledBatch b = pool.Acquire();
  EXPECT_NE(a.get(), b.get());
  a.Release();
  b.Release();
  EXPECT_EQ(pool.stats().fresh_batches, 2u);
}

TEST(BatchPoolTest, ChargesAccountAndShedsOverQuota) {
  QueryMemoryScope scope(nullptr, /*quota_bytes=*/1);  // Any charge breaches.
  BatchPool pool(BatchPoolOptions{}, &scope);
  { PooledBatch b = pool.Acquire(); }
  // Release found the scope over quota (first release charged then shed, or
  // shed outright) — either way the pool must not retain storage forever.
  { PooledBatch b = pool.Acquire(); }
  const BatchPoolStats stats = pool.stats();
  EXPECT_GT(stats.sheds, 0u);
  EXPECT_GT(scope.quota_breaches(), 0u);
}

TEST(BatchPoolTest, UnchargesOnDestruction) {
  QueryMemoryScope scope;
  {
    BatchPool pool(BatchPoolOptions{}, &scope);
    { PooledBatch b = pool.Acquire(); }
    EXPECT_GT(scope.bytes(), 0u);  // One warm batch charged.
  }
  EXPECT_EQ(scope.bytes(), 0u);
}

// ---------------------------------------------------------- MemoryBroker

TEST(MemoryBrokerTest, TracksClassesAndTotal) {
  MemoryBroker broker;
  MemoryBroker::Consumer pool =
      broker.Register(MemoryClass::kBufferPool, "pool");
  MemoryBroker::Consumer cache =
      broker.Register(MemoryClass::kResultCache, "cache");
  pool.Charge(1000);
  cache.Charge(500);
  EXPECT_EQ(broker.total_bytes(), 1500u);
  EXPECT_EQ(broker.class_bytes(MemoryClass::kBufferPool), 1000u);
  EXPECT_EQ(broker.class_bytes(MemoryClass::kResultCache), 500u);
  cache.Uncharge(200);
  EXPECT_EQ(broker.total_bytes(), 1300u);
  EXPECT_EQ(cache.bytes(), 300u);

  const auto snaps = broker.ConsumerSnapshots();
  ASSERT_EQ(snaps.size(), 2u);
  EXPECT_EQ(snaps[1].name, "cache");
  EXPECT_EQ(snaps[1].peak_bytes, 500u);
}

TEST(MemoryBrokerTest, PressureFlagAndEpoch) {
  MemoryBrokerOptions options;
  options.global_budget_bytes = 1000;
  MemoryBroker broker(options);
  MemoryBroker::Consumer c = broker.Register(MemoryClass::kOther, "c");
  EXPECT_FALSE(broker.UnderPressure());
  c.Charge(1000);
  EXPECT_FALSE(broker.UnderPressure());  // At budget, not past it.
  EXPECT_EQ(broker.pressure_epoch(), 0u);
  c.Charge(1);
  EXPECT_TRUE(broker.UnderPressure());
  EXPECT_EQ(broker.pressure_epoch(), 1u);
  c.Uncharge(500);
  EXPECT_FALSE(broker.UnderPressure());
  c.Charge(600);  // Crosses again.
  EXPECT_EQ(broker.pressure_epoch(), 2u);
  EXPECT_EQ(broker.peak_total_bytes(), 1101u);
}

TEST(MemoryBrokerTest, PressureHysteresis) {
  MemoryBrokerOptions options;
  options.global_budget_bytes = 1000;
  options.pressure_low_water_bytes = 600;
  MemoryBroker broker(options);
  EXPECT_EQ(broker.pressure_low_water(), 600u);
  MemoryBroker::Consumer c = broker.Register(MemoryClass::kOther, "c");
  c.Charge(1001);
  EXPECT_TRUE(broker.UnderPressure());
  EXPECT_EQ(broker.pressure_epoch(), 1u);
  // Dipping below budget but above the low water keeps the flag raised —
  // this is the damping that stops spill/restore ping-pong at the boundary.
  c.Uncharge(300);  // Total 701.
  EXPECT_TRUE(broker.UnderPressure());
  c.Charge(200);  // Total 901: re-crossing nothing, same episode.
  EXPECT_TRUE(broker.UnderPressure());
  EXPECT_EQ(broker.pressure_epoch(), 1u);
  c.Uncharge(301);  // Total 600: at the low water, the episode ends.
  EXPECT_FALSE(broker.UnderPressure());
  c.Charge(401);  // Total 1001: a fresh episode, new epoch.
  EXPECT_TRUE(broker.UnderPressure());
  EXPECT_EQ(broker.pressure_epoch(), 2u);
}

TEST(MemoryBrokerTest, PressureClearsOnUnregister) {
  MemoryBrokerOptions options;
  options.global_budget_bytes = 1000;
  MemoryBroker broker(options);
  // Default low water derives as budget - budget / 8.
  EXPECT_EQ(broker.pressure_low_water(), 875u);
  {
    MemoryBroker::Consumer c = broker.Register(MemoryClass::kOther, "c");
    c.Charge(1500);
    EXPECT_TRUE(broker.UnderPressure());
  }
  // The consumer's teardown returned every byte: pressure must not stick.
  EXPECT_FALSE(broker.UnderPressure());
}

TEST(MemoryBrokerTest, UnregisterReturnsBytes) {
  MemoryBroker broker;
  {
    MemoryBroker::Consumer c = broker.Register(MemoryClass::kOther, "c");
    c.Charge(4096);
    EXPECT_EQ(broker.total_bytes(), 4096u);
  }
  EXPECT_EQ(broker.total_bytes(), 0u);
  // Ids recycle without mixing accounts.
  MemoryBroker::Consumer d = broker.Register(MemoryClass::kOther, "d");
  EXPECT_EQ(d.bytes(), 0u);
  d.Charge(1);
  EXPECT_EQ(broker.total_bytes(), 1u);
}

TEST(MemoryBrokerTest, MemoryClassNames) {
  EXPECT_STREQ(MemoryClassName(MemoryClass::kBufferPool), "buffer_pool");
  EXPECT_STREQ(MemoryClassName(MemoryClass::kExecBatches), "exec_batches");
}

// ------------------------------------------------------ QueryMemoryScope

TEST(QueryMemoryScopeTest, CountsQuotaBreaches) {
  QueryMemoryScope scope(nullptr, /*quota_bytes=*/100);
  scope.Charge(60);
  EXPECT_FALSE(scope.OverQuota());
  EXPECT_EQ(scope.quota_breaches(), 0u);
  scope.Charge(60);
  EXPECT_TRUE(scope.OverQuota());
  EXPECT_EQ(scope.quota_breaches(), 1u);
  scope.Uncharge(60);
  EXPECT_FALSE(scope.OverQuota());
  EXPECT_EQ(scope.peak_bytes(), 120u);
}

TEST(QueryMemoryScopeTest, BrokerPressurePropagatesToOverQuota) {
  MemoryBrokerOptions options;
  options.global_budget_bytes = 100;
  MemoryBroker broker(options);
  MemoryBroker::Consumer other = broker.Register(MemoryClass::kOther, "hog");
  QueryMemoryScope scope(&broker, /*quota_bytes=*/UINT64_MAX);
  scope.Charge(10);
  EXPECT_FALSE(scope.OverQuota());
  other.Charge(200);  // Someone else exhausts the global budget.
  EXPECT_TRUE(scope.OverQuota());  // The scope sheds on the hog's behalf.
  other.Uncharge(200);
  EXPECT_FALSE(scope.OverQuota());
  // The scope's own charge flowed into the broker's kExecBatches class.
  EXPECT_EQ(broker.class_bytes(MemoryClass::kExecBatches), 10u);
  scope.Uncharge(10);
}

// ------------------------------------- MorselSource fill-rate telemetry

TEST(MorselSourceTest, RecordsFillStats) {
  MorselSource source(MorselSource::PageRanges(256, 64));
  EXPECT_EQ(source.total_pages(), 256u);
  source.RecordBatchFill(512, 1024);
  source.RecordBatchFill(256, 1024);
  const MorselFillStats fill = source.fill_stats();
  EXPECT_EQ(fill.batches, 2u);
  EXPECT_EQ(fill.tuples, 768u);
  EXPECT_DOUBLE_EQ(fill.fill_rate(), 768.0 / 2048.0);
}

TEST(MorselSourceTest, SuggestMorselPagesScalesToFillRate) {
  // 256 pages produced 2560 tuples => 10 tuples/page. Four full 1024-tuple
  // batches per morsel need 409.6 pages => aligned down to 384 (multiple of
  // the 32-page read-ahead window).
  MorselSource source(MorselSource::PageRanges(256, 64));
  for (int i = 0; i < 10; ++i) source.RecordBatchFill(256, 1024);
  const uint32_t suggested = source.SuggestMorselPages(
      /*current_morsel_pages=*/64, /*read_ahead_pages=*/32);
  EXPECT_EQ(suggested, 384u);
  EXPECT_EQ(suggested % 32, 0u);
}

TEST(MorselSourceTest, SuggestMorselPagesNeverBelowOneWindow) {
  // Dense output: tiny morsels would suffice, but the suggestion never drops
  // under one read-ahead window (extent boundaries must stay aligned).
  MorselSource source(MorselSource::PageRanges(256, 64));
  source.RecordBatchFill(1024, 1024);
  for (int i = 0; i < 200; ++i) source.RecordBatchFill(1024, 1024);
  EXPECT_EQ(source.SuggestMorselPages(64, 32), 32u);
}

TEST(MorselSourceTest, SuggestMorselPagesWithoutTelemetryIsIdentity) {
  MorselSource source(MorselSource::PageRanges(256, 64));
  EXPECT_EQ(source.SuggestMorselPages(64, 32), 64u);  // Nothing observed.
  // Key-range morsels carry no page spans: also identity.
  MorselSource keyed(MorselSource::KeyRanges({0, 10, 20}));
  keyed.RecordBatchFill(100, 1024);
  EXPECT_EQ(keyed.SuggestMorselPages(64, 32), 64u);
}

}  // namespace
}  // namespace smoothscan
