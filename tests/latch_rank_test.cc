// Tests for the runtime latch-hierarchy validator (src/common/latch_rank.h):
// legal strictly-decreasing acquisition passes, rank inversion / recursive /
// unranked acquisition abort with a diagnostic naming the offending latch.
//
// The validator defaults off in Release builds, so every test flips it on
// explicitly — inside the death statement too, because gtest's death-test
// styles differ in how much parent state the child inherits.

#include "common/latch_rank.h"

#include <thread>

#include "gtest/gtest.h"

namespace smoothscan {
namespace latch {
namespace {

/// RAII enable (and restore-to-off) so tests don't leak checker state into
/// other suites running in the same binary.
struct ScopedChecks {
  ScopedChecks() { SetChecksEnabled(true); }
  ~ScopedChecks() { SetChecksEnabled(false); }
};

TEST(LatchRankTest, DecreasingOrderPasses) {
  ScopedChecks checks;
  Latch outer(LatchRank::kQueryEngine, "test::outer");
  Latch middle(LatchRank::kPoolShard, "test::middle");
  Latch inner(LatchRank::kBroker, "test::inner");
  {
    LatchGuard a(outer);
    LatchGuard b(middle);
    LatchGuard c(inner);
  }
  // Releasing everything resets the thread's stack: the same order passes
  // again, and so does a different (still decreasing) chain.
  {
    LatchGuard b(middle);
    LatchGuard c(inner);
  }
}

TEST(LatchRankTest, ReacquireAfterReleasePasses) {
  ScopedChecks checks;
  Latch outer(LatchRank::kCoordinator, "test::outer");
  Latch inner(LatchRank::kDisk, "test::inner");
  {
    LatchGuard a(outer);
  }
  {
    // inner-then-outer is fine when they are not held simultaneously.
    LatchGuard b(inner);
  }
  {
    LatchGuard a(outer);
  }
}

TEST(LatchRankTest, UniqueLatchWaitStyleUnlockRelock) {
  ScopedChecks checks;
  Latch outer(LatchRank::kScheduler, "test::outer");
  Latch inner(LatchRank::kBatchPool, "test::inner");
  UniqueLatch lock(outer);
  // A cv wait unlocks and relocks through the same rank bookkeeping.
  lock.unlock();
  {
    LatchGuard b(inner);  // Legal: nothing held.
  }
  lock.lock();
  EXPECT_TRUE(lock.owns_lock());
}

TEST(LatchRankTest, TryLockParticipates) {
  ScopedChecks checks;
  Latch outer(LatchRank::kStorage, "test::outer");
  Latch inner(LatchRank::kDisk, "test::inner");
  LatchGuard a(outer);
  ASSERT_TRUE(inner.try_lock());
  inner.unlock();
}

TEST(LatchRankTest, PerThreadStacksAreIndependent) {
  ScopedChecks checks;
  Latch outer(LatchRank::kRegistryTable, "test::outer");
  Latch inner(LatchRank::kPoolShard, "test::inner");
  LatchGuard a(outer);
  // Another thread holds nothing, so it may take `inner` alone even though
  // this thread's stack is non-empty.
  std::thread t([&] {
    LatchGuard b(inner);
  });
  t.join();
}

TEST(LatchRankDeathTests, RankInversionAborts) {
  Latch outer(LatchRank::kQueryEngine, "test::outer");
  Latch inner(LatchRank::kDisk, "test::inner");
  EXPECT_DEATH(
      {
        SetChecksEnabled(true);
        LatchGuard a(inner);
        LatchGuard b(outer);  // kQueryEngine > kDisk while kDisk held.
      },
      "rank inversion.*test::outer");
}

TEST(LatchRankDeathTests, SameRankIsAnInversion) {
  Latch a_latch(LatchRank::kPoolShard, "test::shard_a");
  Latch b_latch(LatchRank::kPoolShard, "test::shard_b");
  EXPECT_DEATH(
      {
        SetChecksEnabled(true);
        LatchGuard a(a_latch);
        LatchGuard b(b_latch);  // No latch class self-nests in the engine.
      },
      "rank inversion.*test::shard_b");
}

TEST(LatchRankDeathTests, RecursiveAcquisitionAborts) {
  Latch l(LatchRank::kStorage, "test::recursive");
  EXPECT_DEATH(
      {
        SetChecksEnabled(true);
        l.lock();
        l.lock();  // Would deadlock on the real mutex; the checker fires first.
      },
      "recursive acquisition.*test::recursive");
}

TEST(LatchRankDeathTests, UnrankedLatchRejected) {
  Latch l(LatchRank::kUnranked, "test::unranked");
  EXPECT_DEATH(
      {
        SetChecksEnabled(true);
        l.lock();
      },
      "unranked latch.*test::unranked");
}

TEST(LatchRankDeathTests, DisabledChecksDoNotFire) {
  // With checking off, an out-of-order acquisition of two distinct latches
  // proceeds (it cannot deadlock by itself); this pins the Release default.
  SetChecksEnabled(false);
  Latch outer(LatchRank::kQueryEngine, "test::outer");
  Latch inner(LatchRank::kDisk, "test::inner");
  LatchGuard a(inner);
  LatchGuard b(outer);
}

}  // namespace
}  // namespace latch
}  // namespace smoothscan
