// MergeJoin tests, including the paper's signature composition: an
// order-preserving Smooth Scan feeding a Merge Join directly — the scenario
// the Result Cache was designed for (Section IV-B).

#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "access/smooth_scan.h"
#include "access/sort_scan.h"
#include "common/rng.h"
#include "exec/merge_join.h"
#include "exec/operators.h"
#include "workload/micro_bench.h"

namespace smoothscan {
namespace {

class VectorSource : public Operator {
 public:
  explicit VectorSource(std::vector<Tuple> rows) : rows_(std::move(rows)) {}
  const char* name() const override { return "VectorSource"; }

 protected:
  Status OpenImpl() override {
    next_ = 0;
    return Status::OK();
  }
  bool NextBatchImpl(TupleBatch* out) override {
    while (next_ < rows_.size() && !out->full()) out->Append(rows_[next_++]);
    return !out->empty();
  }

 private:
  std::vector<Tuple> rows_;
  size_t next_ = 0;
};

std::unique_ptr<Operator> SortedInts(std::vector<int64_t> keys) {
  std::sort(keys.begin(), keys.end());
  std::vector<Tuple> rows;
  for (size_t i = 0; i < keys.size(); ++i) {
    rows.push_back({Value::Int64(keys[i]), Value::Int64(static_cast<int64_t>(i))});
  }
  return std::make_unique<VectorSource>(std::move(rows));
}

// Close()/re-Open must restart an identical stream even when the first run
// left the ordered-input trackers mid-stream (regression: stale
// left_last_key_ tripping the ordered-input check on the second Open).
TEST(MergeJoinTest, CloseReopenRestartsStream) {
  Engine engine;
  MergeJoinOp join(&engine, SortedInts({5, 6, 7}), SortedInts({1, 2, 5}), 0,
                   0);
  auto drain = [&join]() {
    SMOOTHSCAN_CHECK(join.Open().ok());
    std::vector<Tuple> rows;
    Drain(&join, &rows);
    join.Close();
    return rows;
  };
  const std::vector<Tuple> first = drain();
  const std::vector<Tuple> second = drain();
  ASSERT_EQ(first.size(), 1u);  // Key 5 matches.
  ASSERT_EQ(first, second);
}

TEST(MergeJoinTest, BasicEquiJoin) {
  Engine engine;
  MergeJoinOp join(&engine, SortedInts({1, 2, 3, 5}), SortedInts({2, 3, 4, 5}),
                   0, 0);
  SMOOTHSCAN_CHECK(join.Open().ok());
  Tuple t;
  int rows = 0;
  while (join.Next(&t)) {
    EXPECT_EQ(t[0].AsInt64(), t[2].AsInt64());
    ++rows;
  }
  EXPECT_EQ(rows, 3);  // Keys 2, 3, 5.
}

TEST(MergeJoinTest, EmptyInputs) {
  Engine engine;
  MergeJoinOp a(&engine, SortedInts({}), SortedInts({1, 2}), 0, 0);
  SMOOTHSCAN_CHECK(a.Open().ok());
  Tuple t;
  EXPECT_FALSE(a.Next(&t));

  MergeJoinOp b(&engine, SortedInts({1, 2}), SortedInts({}), 0, 0);
  SMOOTHSCAN_CHECK(b.Open().ok());
  EXPECT_FALSE(b.Next(&t));
}

TEST(MergeJoinTest, NoOverlap) {
  Engine engine;
  MergeJoinOp join(&engine, SortedInts({1, 2, 3}), SortedInts({10, 11}), 0, 0);
  SMOOTHSCAN_CHECK(join.Open().ok());
  Tuple t;
  EXPECT_FALSE(join.Next(&t));
}

TEST(MergeJoinTest, DuplicatesProduceCrossProductPerKey) {
  Engine engine;
  MergeJoinOp join(&engine, SortedInts({7, 7, 7}), SortedInts({7, 7}), 0, 0);
  SMOOTHSCAN_CHECK(join.Open().ok());
  Tuple t;
  int rows = 0;
  while (join.Next(&t)) ++rows;
  EXPECT_EQ(rows, 6);  // 3 x 2.
}

TEST(MergeJoinTest, MatchesHashJoinOnRandomInputs) {
  Engine engine;
  Rng rng(31);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<int64_t> left, right;
    const int n = static_cast<int>(rng.UniformInt(0, 200));
    const int m = static_cast<int>(rng.UniformInt(0, 200));
    for (int i = 0; i < n; ++i) left.push_back(rng.UniformInt(0, 40));
    for (int i = 0; i < m; ++i) right.push_back(rng.UniformInt(0, 40));

    MergeJoinOp merge(&engine, SortedInts(left), SortedInts(right), 0, 0);
    HashJoinOp hash(&engine, SortedInts(left), SortedInts(right), 0, 0);

    // Compare (left key, right key) multisets.
    auto keys = [](Operator* op) {
      SMOOTHSCAN_CHECK(op->Open().ok());
      std::multiset<std::pair<int64_t, int64_t>> out;
      Tuple t;
      while (op->Next(&t)) out.emplace(t[0].AsInt64(), t[2].AsInt64());
      return out;
    };
    EXPECT_EQ(keys(&merge), keys(&hash)) << "trial " << trial;
  }
}

TEST(MergeJoinTest, OrderedSmoothScanFeedsMergeJoinDirectly) {
  // The paper's Section IV-B composition: Smooth Scan with the Result Cache
  // preserves the index order, so a Merge Join can consume it with no sort.
  EngineOptions eo;
  eo.buffer_pool_pages = 128;
  Engine engine(eo);
  MicroBenchSpec spec;
  spec.num_tuples = 20000;
  spec.value_max = 500;  // Plenty of duplicate join keys.
  MicroBenchDb db(&engine, spec);

  const ScanPredicate pred = db.PredicateForSelectivity(0.3);
  SmoothScanOptions so;
  so.preserve_order = true;

  // Right side: a small sorted dimension keyed on the same domain.
  std::vector<int64_t> dim_keys;
  for (int64_t k = 0; k <= 150; k += 3) dim_keys.push_back(k);

  auto scan = std::make_unique<ScanOp>(
      std::make_unique<SmoothScan>(&db.index(), pred, so));
  MergeJoinOp join(&engine, std::move(scan), SortedInts(dim_keys),
                   MicroBenchDb::kIndexedColumn, 0);

  // Oracle: count matches by brute force.
  std::map<int64_t, int> dim_count;
  for (int64_t k : dim_keys) ++dim_count[k];
  uint64_t expected = 0;
  db.heap().ForEachDirect([&](Tid, const Tuple& t) {
    if (!pred.Matches(t)) return;
    auto it = dim_count.find(t[MicroBenchDb::kIndexedColumn].AsInt64());
    if (it != dim_count.end()) expected += it->second;
  });

  SMOOTHSCAN_CHECK(join.Open().ok());
  Tuple t;
  uint64_t got = 0;
  while (join.Next(&t)) ++got;
  EXPECT_EQ(got, expected);
  EXPECT_GT(got, 0u);
}

TEST(MergeJoinTest, SmoothFeedCheaperThanSortScanFeedAtHighSelectivity) {
  // Above the Sort Scan crossover, feeding the Merge Join from an ordered
  // Smooth Scan avoids the posterior key sort the Sort Scan must pay.
  EngineOptions eo;
  eo.buffer_pool_pages = 128;
  Engine engine(eo);
  MicroBenchSpec spec;
  spec.num_tuples = 50000;
  MicroBenchDb db(&engine, spec);
  const ScanPredicate pred = db.PredicateForSelectivity(0.5);

  auto run = [&](std::unique_ptr<AccessPath> path) {
    engine.ColdRestart();
    const IoStats before = engine.disk().stats();
    const double cpu_before = engine.cpu().time();
    auto scan = std::make_unique<ScanOp>(std::move(path));
    MergeJoinOp join(&engine, std::move(scan), SortedInts({1, 2, 3}),
                     MicroBenchDb::kIndexedColumn, 0);
    SMOOTHSCAN_CHECK(join.Open().ok());
    Tuple t;
    while (join.Next(&t)) {
    }
    return (engine.disk().stats() - before).io_time + engine.cpu().time() -
           cpu_before;
  };

  SmoothScanOptions so;
  so.preserve_order = true;
  SortScanOptions sorted;
  sorted.preserve_order = true;
  const double smooth_cost =
      run(std::make_unique<SmoothScan>(&db.index(), pred, so));
  const double sort_cost =
      run(std::make_unique<SortScan>(&db.index(), pred, sorted));
  EXPECT_LT(smooth_cost, sort_cost);
}

}  // namespace
}  // namespace smoothscan
